#!/usr/bin/env bash
#===- scripts/verify.sh - Tier-1 suite + TSan race check + ASan/UBSan -----===#
#
# Part of fcsl-cpp. Six stages:
#
#   1. Tier-1: configure + build + full ctest in build/ (the gate every
#      PR must keep green).
#   2. TSan: a separate build tree (build-tsan/) compiled with
#      -DFCSL_SANITIZE=thread; the thread pool, the parallel exploration
#      engine, the lock-striped intern arena, and the runtime structures
#      are run under the race detector. The binaries are invoked directly
#      rather than through ctest so only the relevant targets need to
#      build.
#   3. ASan+UBSan: a third build tree (build-asan/) compiled with
#      -DFCSL_SANITIZE=address,undefined; the intern-arena and codec
#      tests run under it, since those two layers do the pointer-identity
#      and raw-byte manipulation where memory bugs would hide.
#   4. POR cross-check: fcsl-verify --por=check runs every Table-1
#      session twice (full and reduced exploration) and fails on any
#      divergence in verdicts or terminal states, at 1 and 4 jobs.
#      The dynamic mode (--por=check-dynamic: ample sets licensed by
#      observed footprints and the env-future closure) gets the same
#      oracle treatment, alone, composed with symmetry reduction, and
#      composed with sharding.
#   5. Symmetry: fcsl-verify --symmetry=on must report the same verdicts
#      and obligation counts as --symmetry=off (per-config check counts
#      shrink — that is the reduction), and --symmetry=check — the
#      full-vs-canonical soundness cross-check — must pass alone,
#      composed with POR, and composed with sharding.
#   6. Shards: fcsl-verify --shards=2 verify all must print the same
#      report as --shards=1 (modulo timings), with POR off and on — the
#      multi-process partitioned exploration (src/dist/) is bit-identical
#      to the in-process engine. Both wire encodings are exercised: the
#      dictionary-streamed protocol (the default) and the legacy
#      standalone encoding (--dist-compress=off) must produce the same
#      report.
#   7. Cache: a cold run against an empty obligation store and a warm
#      rerun must print byte-identical reports (modulo timings), the warm
#      run must be 100% hits, and --cache=check — which re-discharges
#      every hit and compares the stored verdict against the fresh one —
#      must pass alone and composed with POR, symmetry, and sharding.
#   8. Service: fcsl-serve on a temp socket serves every Table-1 session
#      to fcsl-client cold and warm under --por=dynamic --symmetry=on;
#      both passes must print the same report as a direct fcsl-verify run
#      (modulo timings), the warm pass must be 100% fast-path serves with
#      zero additional engine sessions (asserted from the daemon's stats
#      frame), and a client Shutdown must exit the daemon cleanly.
#
# Usage: scripts/verify.sh [--no-tsan] [--no-asan] [--no-por]
#                          [--no-symmetry] [--no-shards] [--no-cache]
#                          [--no-service]
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TSAN=1
RUN_ASAN=1
RUN_POR=1
RUN_SYMMETRY=1
RUN_SHARDS=1
RUN_CACHE=1
RUN_SERVICE=1
for Arg in "$@"; do
  case "$Arg" in
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    --no-por) RUN_POR=0 ;;
    --no-symmetry) RUN_SYMMETRY=0 ;;
    --no-shards) RUN_SHARDS=0 ;;
    --no-cache) RUN_CACHE=0 ;;
    --no-service) RUN_SERVICE=0 ;;
    *) echo "unknown flag: $Arg" >&2; exit 2 ;;
  esac
done

# Shared exit cleanup: scratch dirs registered by stages, plus the service
# daemon if a failure leaves it running.
CLEANUP_DIRS=""
ServePid=""
cleanup() {
  [[ -n "$ServePid" ]] && kill "$ServePid" 2>/dev/null
  [[ -n "$CLEANUP_DIRS" ]] && rm -rf $CLEANUP_DIRS
  true
}
trap cleanup EXIT

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: configure + build (build-tsan/) =="
  cmake -B build-tsan -S . -DFCSL_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target threadpool_test parallel_engine_test runtime_test intern_test \
    --target por_independence_test por_dynamic_test symmetry_test

  echo "== tsan: race-checking thread pool, parallel engine, runtime, arena =="
  # TSan aborts the process on the first data race; a clean exit is the
  # pass condition.
  ./build-tsan/tests/threadpool_test
  ./build-tsan/tests/parallel_engine_test
  ./build-tsan/tests/runtime_test
  ./build-tsan/tests/intern_test
  ./build-tsan/tests/por_independence_test
  ./build-tsan/tests/por_dynamic_test
  ./build-tsan/tests/symmetry_test
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== asan+ubsan: configure + build (build-asan/) =="
  cmake -B build-asan -S . -DFCSL_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$(nproc)" --target intern_test codec_test \
    --target dist_test cache_test service_test

  echo "== asan+ubsan: checking intern arena, codec, dist wire, cache, service =="
  ./build-asan/tests/intern_test
  ./build-asan/tests/codec_test
  ./build-asan/tests/dist_test
  ./build-asan/tests/cache_test
  ./build-asan/tests/service_test
fi

if [[ "$RUN_POR" == 1 ]]; then
  echo "== por: soundness cross-check over every Table-1 session =="
  cmake --build build -j "$(nproc)" --target fcsl-verify
  # Check mode explores each session's state space twice — full and
  # reduced — and any divergence in Safe verdicts, exhaustion, or
  # terminal states fails the session. Run serial and parallel.
  for Jobs in 1 4; do
    ./build/tools/fcsl-verify --jobs "$Jobs" --por=check verify all
  done

  echo "== por: dynamic (observed-footprint) cross-check =="
  # check-dynamic runs full vs dynamically-reduced exploration and fails
  # on any divergence; it must also hold composed with symmetry reduction
  # and with the multi-process sharded engine.
  for Jobs in 1 4; do
    ./build/tools/fcsl-verify --jobs "$Jobs" --por=check-dynamic verify all
  done
  ./build/tools/fcsl-verify --por=check-dynamic --symmetry=on verify all
  ./build/tools/fcsl-verify --por=check-dynamic --shards=2 verify all
fi

if [[ "$RUN_SYMMETRY" == 1 ]]; then
  echo "== symmetry: canonical vs full exploration over every session =="
  cmake --build build -j "$(nproc)" --target fcsl-verify
  # Verdicts and obligation counts must agree between canonical and full
  # exploration; the per-category *check* counts legitimately shrink
  # (fewer configs visited is the whole point), so the third numeric
  # column is stripped along with timings. Check mode — which explores
  # each state space twice and compares verdicts, exhaustion, and
  # terminal sets — must pass composed with POR and with sharding.
  NormalizeSym='s/[0-9]+\.[0-9]+//g; s/^([A-Za-z]+ +[0-9]+ +)[0-9]+/\1/; s/ +/ /g; s/-+/-/g; s/ +$//'
  ./build/tools/fcsl-verify --symmetry=off verify all \
    | sed -E "$NormalizeSym" > build/verify-sym-off.txt
  ./build/tools/fcsl-verify --symmetry=on verify all \
    | sed -E "$NormalizeSym" > build/verify-sym-on.txt
  diff build/verify-sym-off.txt build/verify-sym-on.txt \
    || { echo "symmetry=on diverged from symmetry=off" >&2; exit 1; }
  echo "   symmetry=on verdicts/obligations identical to symmetry=off"
  ./build/tools/fcsl-verify --symmetry=check verify all
  ./build/tools/fcsl-verify --symmetry=check --por=on verify all
  ./build/tools/fcsl-verify --symmetry=check --shards=2 verify all
fi

if [[ "$RUN_SHARDS" == 1 ]]; then
  echo "== shards: sharded exploration vs in-process, por off and on =="
  cmake --build build -j "$(nproc)" --target fcsl-verify
  # The report must be byte-identical once timings (and the column
  # padding they widen) are stripped.
  Normalize='s/[0-9]+\.[0-9]+//g; s/ +/ /g; s/-+/-/g; s/ +$//'
  for Por in off on; do
    ./build/tools/fcsl-verify --por="$Por" --shards=1 verify all \
      | sed -E "$Normalize" > build/verify-shards-1.txt
    ./build/tools/fcsl-verify --por="$Por" --shards=2 verify all \
      | sed -E "$Normalize" > build/verify-shards-2.txt
    diff build/verify-shards-1.txt build/verify-shards-2.txt \
      || { echo "shards=2 diverged from shards=1 (por=$Por)" >&2; exit 1; }
    # The legacy (pre-dictionary) wire encoding must agree too: it is the
    # A/B baseline the compressed protocol is measured against.
    ./build/tools/fcsl-verify --por="$Por" --shards=2 --dist-compress=off \
      verify all | sed -E "$Normalize" > build/verify-shards-2-legacy.txt
    diff build/verify-shards-1.txt build/verify-shards-2-legacy.txt \
      || { echo "legacy wire (--dist-compress=off) diverged from shards=1" \
             "(por=$Por)" >&2; exit 1; }
    echo "   por=$Por: shards=2 identical to shards=1 (dict + legacy wire)"
  done
fi

if [[ "$RUN_CACHE" == 1 ]]; then
  echo "== cache: cold vs warm obligation store over every session =="
  cmake --build build -j "$(nproc)" --target fcsl-verify
  CacheDir="$(mktemp -d)"
  CLEANUP_DIRS="$CLEANUP_DIRS $CacheDir"
  # Cold run populates the store; the warm rerun must replay every
  # obligation verdict bit-identically (timings stripped as usual).
  Normalize='s/[0-9]+\.[0-9]+//g; s/ +/ /g; s/-+/-/g; s/ +$//'
  FCSL_CACHE_DIR="$CacheDir" ./build/tools/fcsl-verify --cache=rw verify all \
    | sed -E "$Normalize" > build/verify-cache-cold.txt
  FCSL_CACHE_DIR="$CacheDir" ./build/tools/fcsl-verify --cache=rw verify all \
    | sed -E "$Normalize" > build/verify-cache-warm.txt
  diff build/verify-cache-cold.txt build/verify-cache-warm.txt \
    || { echo "warm cache run diverged from cold run" >&2; exit 1; }
  # The warm rerun must be pure hits: N > 0, zero misses.
  CacheLine=$(FCSL_CACHE_DIR="$CacheDir" \
    ./build/tools/fcsl-verify --cache=rw --stats verify all \
    | grep '^obligation cache')
  echo "   $CacheLine"
  [[ "$CacheLine" =~ \(rw\):\ ([0-9]+)\ hits,\ 0\ misses ]] \
    || { echo "warm run was not 100% cache hits: $CacheLine" >&2; exit 1; }
  [[ "${BASH_REMATCH[1]}" -gt 0 ]] \
    || { echo "warm run replayed zero obligations" >&2; exit 1; }
  echo "   warm run replayed all ${BASH_REMATCH[1]} obligations from the store"
  # Check mode re-discharges every hit and fails loudly on divergence —
  # alone, then composed with dynamic POR + symmetry + sharding (warming
  # the store under the composed flag fingerprint first, since records
  # are keyed by the resolved engine flags).
  FCSL_CACHE_DIR="$CacheDir" ./build/tools/fcsl-verify --cache=check verify all
  FCSL_CACHE_DIR="$CacheDir" ./build/tools/fcsl-verify --cache=rw \
    --por=dynamic --symmetry=on --shards=2 verify all >/dev/null
  FCSL_CACHE_DIR="$CacheDir" ./build/tools/fcsl-verify --cache=check \
    --por=dynamic --symmetry=on --shards=2 verify all
  echo "   cache=check clean, alone and under por=dynamic symmetry=on shards=2"
fi

if [[ "$RUN_SERVICE" == 1 ]]; then
  echo "== service: daemon-served reports vs direct runs, cold and warm =="
  cmake --build build -j "$(nproc)" --target fcsl-verify fcsl-serve fcsl-client
  ServiceDir="$(mktemp -d)"
  CLEANUP_DIRS="$CLEANUP_DIRS $ServiceDir"
  Normalize='s/[0-9]+\.[0-9]+//g; s/ +/ /g; s/-+/-/g; s/ +$//'
  # The oracle: a direct in-process run under the same flags.
  ./build/tools/fcsl-verify --por=dynamic --symmetry=on verify all \
    | sed -E "$Normalize" > build/verify-service-direct.txt
  FCSL_CACHE_DIR="$ServiceDir" ./build/tools/fcsl-serve \
    --socket "$ServiceDir/daemon.sock" --cache rw &
  ServePid=$!
  for _ in $(seq 1 100); do
    [[ -S "$ServiceDir/daemon.sock" ]] && break
    sleep 0.1
  done
  [[ -S "$ServiceDir/daemon.sock" ]] \
    || { echo "daemon socket never appeared" >&2; exit 1; }
  Client="./build/tools/fcsl-client --socket $ServiceDir/daemon.sock"
  # Cold: every session goes through the engine, populating the store.
  $Client --por dynamic --symmetry on --cache rw --expect pass verify all \
    | sed -E "$Normalize" > build/verify-service-cold.txt
  diff build/verify-service-direct.txt build/verify-service-cold.txt \
    || { echo "daemon cold reports diverged from direct runs" >&2; exit 1; }
  # Warm: the identical resubmits must be answered from the in-memory
  # store index without the engine — and print the same reports.
  $Client --por dynamic --symmetry on --cache rw --expect pass verify all \
    | sed -E "$Normalize" > build/verify-service-warm.txt
  diff build/verify-service-direct.txt build/verify-service-warm.txt \
    || { echo "daemon warm reports diverged from direct runs" >&2; exit 1; }
  $Client stats > build/verify-service-stats.txt
  Sessions=$(awk '$1 == "sessions_run" {print $2}' build/verify-service-stats.txt)
  Cached=$(awk '$1 == "served_from_cache" {print $2}' build/verify-service-stats.txt)
  [[ -n "$Sessions" && "$Sessions" -gt 0 ]] \
    || { echo "daemon ran no engine sessions?" >&2; exit 1; }
  [[ "$Cached" == "$Sessions" ]] \
    || { echo "warm pass was not 100% fast-path serves" \
           "($Cached cached vs $Sessions engine runs)" >&2; exit 1; }
  echo "   cold and warm daemon reports identical to direct runs;" \
       "warm pass served all $Cached sessions from the store"
  $Client shutdown || { echo "daemon did not ack shutdown" >&2; exit 1; }
  wait "$ServePid" \
    || { echo "daemon exited uncleanly after shutdown" >&2; exit 1; }
  ServePid=""
  echo "   daemon drained and exited cleanly"
fi

echo "== verify.sh: all stages passed =="
