#!/usr/bin/env bash
#===- scripts/verify.sh - Tier-1 suite + TSan race check ------------------===#
#
# Part of fcsl-cpp. Two stages:
#
#   1. Tier-1: configure + build + full ctest in build/ (the gate every
#      PR must keep green).
#   2. TSan: a separate build tree (build-tsan/) compiled with
#      -DFCSL_SANITIZE=thread; the thread pool, the parallel exploration
#      engine, and the runtime structures are run under the race
#      detector. The binaries are invoked directly rather than through
#      ctest so only the three relevant targets need to build.
#
# Usage: scripts/verify.sh [--no-tsan]
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: configure + build (build-tsan/) =="
  cmake -B build-tsan -S . -DFCSL_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target threadpool_test parallel_engine_test runtime_test

  echo "== tsan: race-checking thread pool, parallel engine, runtime =="
  # TSan aborts the process on the first data race; a clean exit is the
  # pass condition.
  ./build-tsan/tests/threadpool_test
  ./build-tsan/tests/parallel_engine_test
  ./build-tsan/tests/runtime_test
fi

echo "== verify.sh: all stages passed =="
