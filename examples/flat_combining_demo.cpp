//===- examples/flat_combining_demo.cpp - Helping in action ----------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Demonstrates the *helping* pattern of Section 4.2: a scripted scenario
// in which the environment combines the requester's operation (the history
// entry parks in the publication slot and is ascribed to the requester at
// collection), followed by a quick run of the executable FC-stack.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtFlatCombiner.h"
#include "structures/FlatCombiner.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace fcsl;

int main() {
  std::printf("flat combining and the helping pattern (Section 4.2)\n");
  std::printf("====================================================\n\n");

  FlatCombinerCase Case = makeFlatCombinerCase(/*Fc=*/1, /*EnvHistCap=*/4);
  GlobalState GS = flatCombinerState(Case, /*MySlots=*/1);
  View S0 = GS.viewFor(rootThread());

  std::printf("step 1: I publish the request push(4) into my slot\n");
  auto P = Case.Publish->step(
      S0, {Val::ofPtr(Case.Slot1), Val::ofInt(FcPush), Val::ofInt(4)});
  View S1 = (*P)[0].Post;
  std::printf("        my history: %s\n\n",
              S1.self(1).second().second().getHist().toString().c_str());

  std::printf("step 2: the ENVIRONMENT becomes the combiner\n");
  View Locked;
  for (const View &Succ : Case.C->envSuccessors(S1))
    if (Succ.joint(1).lookup(Case.LockCell).getBool())
      Locked = Succ;
  std::printf("        env holds the combiner lock\n\n");

  std::printf("step 3: the env executes MY request (helping)\n");
  View Combined;
  for (const View &Succ : Case.C->envSuccessors(Locked)) {
    const Val *Slot = Succ.joint(1).tryLookup(Case.Slot1);
    if (Slot && Slot->isPair() && Slot->first().isBool())
      Combined = Succ;
  }
  std::printf("        shared stack is now %s\n",
              Combined.joint(1).lookup(Case.StackCell).toString().c_str());
  std::printf("        my history is still empty: %s\n",
              Combined.self(1).second().second().getHist().toString()
                  .c_str());
  std::printf("        (the entry is parked in my Done slot)\n\n");

  std::printf("step 4: I collect — the operation is ascribed to ME\n");
  auto K = Case.TryCollect->step(Combined, {Val::ofPtr(Case.Slot1)});
  View S4 = (*K)[0].Post;
  std::printf("        my history: %s\n\n",
              S4.self(1).second().second().getHist().toString().c_str());
  std::printf("this is the paper's fc_self s2 = g postcondition: the\n"
              "effect is attributed to the invoking thread even though\n"
              "the combiner executed it.\n\n");

  // The executable FC-stack, briefly.
  std::printf("--- executable FC-stack: 4 threads x 10000 ops ---\n");
  RtFcStack Stack(4);
  std::vector<std::thread> Threads;
  std::atomic<int64_t> Sum{0};
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 10000; ++I) {
        Stack.push(T, I);
        if (auto V = Stack.pop(T))
          Sum.fetch_add(*V);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  std::printf("done; popped-value checksum: %lld\n",
              static_cast<long long>(Sum.load()));
  return 0;
}
