//===- examples/prodcons_demo.cpp - Producer/consumer over Treiber ---------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// The Prod/Cons client of Table 1: the model-checked exact-delivery
// theorem on the small instance, then a large executable run over the
// lock-free Treiber stack with a delivery audit.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtTreiberStack.h"
#include "structures/ProdCons.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

using namespace fcsl;

int main() {
  std::printf("producer/consumer over the Treiber stack\n");
  std::printf("========================================\n\n");

  std::printf("--- exhaustive check of exact delivery (2 items) ---\n");
  SessionReport Report = makeProdConsSession().run();
  if (!Report.AllPassed) {
    for (const std::string &F : Report.Failures)
      std::printf("FAILED: %s\n", F.c_str());
    return 1;
  }
  std::printf("every interleaving delivers exactly the produced multiset "
              "(%llu checks, %.1f ms)\n\n",
              static_cast<unsigned long long>(Report.totalChecks()),
              Report.TotalMs);

  std::printf("--- executable run: 2 producers, 2 consumers, 50000 items "
              "---\n");
  RtTreiberStack Stack;
  const int64_t PerProducer = 25000;
  std::atomic<int64_t> Received{0};
  std::map<int64_t, int> Audit;
  std::mutex AuditMutex;

  auto Producer = [&](int64_t Base) {
    for (int64_t I = 0; I < PerProducer; ++I)
      Stack.push(Base + I);
  };
  auto Consumer = [&] {
    std::map<int64_t, int> Local;
    while (Received.load() < 2 * PerProducer) {
      if (auto V = Stack.pop()) {
        ++Local[*V];
        Received.fetch_add(1);
      }
    }
    std::lock_guard<std::mutex> Guard(AuditMutex);
    for (const auto &Entry : Local)
      Audit[Entry.first] += Entry.second;
  };

  std::thread P1(Producer, 0), P2(Producer, PerProducer);
  std::thread C1(Consumer), C2(Consumer);
  P1.join();
  P2.join();
  C1.join();
  C2.join();

  bool ExactlyOnce = Audit.size() == static_cast<size_t>(2 * PerProducer);
  for (const auto &Entry : Audit)
    ExactlyOnce &= Entry.second == 1;
  std::printf("received %lld items, each exactly once: %s\n",
              static_cast<long long>(Received.load()),
              ExactlyOnce ? "yes" : "NO");
  return ExactlyOnce ? 0 : 1;
}
