//===- examples/quickstart.cpp - fcsl-cpp in five minutes ------------------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Quickstart: verify the paper's "CG increment" client — a shared counter
// protected by the CAS lock — including the parallel-increment theorem
// that two concurrent increments add exactly two. Every proof obligation
// of the Coq development has a checkable counterpart here; this example
// runs the whole session and prints the ledger.
//
//===----------------------------------------------------------------------===//

#include "structures/CgIncrement.h"
#include "support/Format.h"

#include <cstdio>

using namespace fcsl;

int main() {
  std::printf("fcsl-cpp quickstart: verifying CG increment\n");
  std::printf("===========================================\n\n");

  VerificationSession Session = makeCgIncrementSession();
  std::printf("registered %zu proof obligations\n\n",
              Session.numObligations());

  SessionReport Report = Session.run();

  TextTable Table;
  Table.setHeader({"category", "obligations", "elementary checks",
                   "time (ms)"});
  for (unsigned I = 1; I <= 3; ++I)
    Table.setRightAligned(I);
  for (ObCategory C : {ObCategory::Libs, ObCategory::Conc, ObCategory::Acts,
                       ObCategory::Stab, ObCategory::Main}) {
    const CategoryStats &S = Report.PerCategory[size_t(C)];
    Table.addRow({obCategoryName(C), std::to_string(S.Obligations),
                  std::to_string(S.Checks),
                  formatString("%.1f", S.ElapsedMs)});
  }
  std::printf("%s\n", Table.render().c_str());

  if (!Report.AllPassed) {
    std::printf("FAILED:\n");
    for (const std::string &F : Report.Failures)
      std::printf("  %s\n", F.c_str());
    return 1;
  }
  std::printf("all obligations discharged in %.1f ms\n", Report.TotalMs);
  std::printf("\nVerified facts include:\n"
              "  {self = c} incr() {self = c + 1}   (under interference,\n"
              "      with the CAS lock AND the ticketed lock)\n"
              "  par(incr, incr) adds exactly 2     (the subjective-state\n"
              "      argument of Ley-Wild & Nanevski)\n");
  return 0;
}
