//===- examples/spanning_tree_demo.cpp - The paper's running example -------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// Runs the concurrent spanning-tree construction (Figures 1-4) three ways:
//   1. prints the span program in the embedded DSL (Figure 3),
//   2. exhaustively verifies span_root on the Figure 2 graph — every
//      interleaving yields a spanning tree,
//   3. runs the *real* multithreaded implementation on larger random
//      graphs and checks the verified property on each result.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtSpanTree.h"
#include "structures/SpanTree.h"
#include "support/Rng.h"

#include <cstdio>

using namespace fcsl;

int main() {
  std::printf("concurrent spanning-tree construction (paper Sections 2-3)\n");
  std::printf("==========================================================\n\n");

  SpanTreeCase Case = makeSpanTreeCase(/*Pv=*/1, /*Sp=*/2);

  std::printf("--- the span program (Figure 3), as embedded DSL ---\n%s\n\n",
              Case.Defs.lookup("span").Body->toString(2).c_str());

  // Exhaustive closed-world verification on the Figure 2 graph.
  Heap G = figure2Graph();
  std::printf("--- verifying span_root on the Figure 2 graph ---\n");
  ProgRef Main = makeSpanRootProg(Case, Ptr(1));
  EngineOptions Opts;
  Opts.Ambient = Case.PrivOnly;
  Opts.EnvInterference = false;
  Opts.Defs = &Case.Defs;
  RunResult R = explore(Main, spanRootState(Case, G), Opts);
  if (!R.complete()) {
    std::printf("verification FAILED: %s\n", R.FailureNote.c_str());
    return 1;
  }
  unsigned Spanning = 0;
  for (const Terminal &T : R.Terminals) {
    const Heap &G2 = T.FinalView.self(1).getHeap();
    PtrSet All;
    for (const auto &Cell : G2)
      All.insert(Cell.first);
    if (isTreeIn(G2, Ptr(1), All))
      ++Spanning;
  }
  std::printf("explored %llu configurations, %llu action steps\n",
              static_cast<unsigned long long>(R.ConfigsExplored),
              static_cast<unsigned long long>(R.ActionSteps));
  std::printf("%zu distinct final states, all %u spanning trees\n\n",
              R.Terminals.size(), Spanning);
  if (Spanning != R.Terminals.size())
    return 1;

  // The distinct resulting trees (different schedules win different
  // edges, as in Figure 2's ticks and crosses).
  std::printf("--- distinct spanning trees found ---\n");
  for (const Terminal &T : R.Terminals) {
    const Heap &G2 = T.FinalView.self(1).getHeap();
    std::printf("  ");
    for (const auto &Cell : G2) {
      const NodeCell &Node = Cell.second.getNode();
      if (!Node.Left.isNull())
        std::printf("%s->%s ", figure2NodeName(Cell.first).c_str(),
                    figure2NodeName(Node.Left).c_str());
      if (!Node.Right.isNull())
        std::printf("%s->%s ", figure2NodeName(Cell.first).c_str(),
                    figure2NodeName(Node.Right).c_str());
    }
    std::printf("\n");
  }

  // The real thing: std::thread-parallel span on random graphs.
  std::printf("\n--- multithreaded span on random 1000-node graphs ---\n");
  Rng Random(42);
  for (int Iter = 0; Iter < 3; ++Iter) {
    unsigned N = 1000;
    RtGraph Rt(N);
    for (unsigned I = 0; I < N; ++I) {
      int L = Random.chance(1, 4) ? -1
                                  : static_cast<int>(Random.nextBelow(N));
      int Rr = Random.chance(1, 4) ? -1
                                   : static_cast<int>(Random.nextBelow(N));
      Rt.setEdges(I, L, Rr);
    }
    rtSpan(Rt, 0);
    unsigned Marked = 0;
    for (unsigned I = 0; I < N; ++I)
      Marked += Rt.isMarked(I);
    bool Ok = rtIsSpanningTree(Rt, 0);
    std::printf("  run %d: %u nodes claimed, spanning tree: %s\n", Iter,
                Marked, Ok ? "yes" : "NO");
    if (!Ok)
      return 1;
  }
  std::printf("\nall runs produced spanning trees of the reachable "
              "component, as verified.\n");
  return 0;
}
