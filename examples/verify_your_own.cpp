//===- examples/verify_your_own.cpp - Rolling your own concurroid ----------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
// A walkthrough of the recurring verification pattern the paper's
// conclusion describes: "Verification of a new library in FCSL starts
// from describing its invariants and evolution in terms of an STS", with
// the shared resource split between threads as PCM elements. We build a
// tiny fine-grained structure from scratch — a one-shot "flag" that any
// thread may raise exactly once with CAS — and run every obligation class
// against it: metatheory, action erasure/correspondence, stability and
// the client Hoare triple.
//
//===----------------------------------------------------------------------===//

#include "action/ActionChecks.h"
#include "spec/Stability.h"
#include "spec/Verifier.h"

#include <cstdio>

using namespace fcsl;

namespace {

constexpr Label Fl = 1;
const Ptr FlagCell = Ptr(1);

/// Step 1 — the STS: joint = {flag :-> bool}; self/other = mutex-like
/// tokens recording who raised it. Coherence: the flag is up iff someone
/// holds the raised token.
ConcurroidRef makeFlagConcurroid() {
  auto Coh = [](const View &S) {
    if (!S.hasLabel(Fl))
      return false;
    const Val *Flag = S.joint(Fl).tryLookup(FlagCell);
    if (!Flag || !Flag->isBool() || S.joint(Fl).size() != 1)
      return false;
    std::optional<PCMVal> Total = S.selfOtherJoin(Fl);
    return Total && Flag->getBool() == Total->isOwn();
  };
  auto C = makeConcurroid("Flag", {OwnedLabel{Fl, "fl",
                                              PCMType::mutex()}},
                          Coh);
  // Step 2 — the transition: raise an unraised flag, take the token.
  C->addTransition(Transition(
      "raise_trans", TransitionKind::Internal,
      [](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Fl) ||
            Pre.joint(Fl).lookup(FlagCell).getBool())
          return {};
        View Post = Pre;
        Post.setJoint(Fl, Heap::singleton(FlagCell, Val::ofBool(true)));
        Post.setSelf(Fl, PCMVal::mutexOwn());
        return {Post};
      }));
  return C;
}

} // namespace

int main() {
  std::printf("building and verifying your own fine-grained structure\n");
  std::printf("======================================================\n\n");

  ConcurroidRef Flag = makeFlagConcurroid();

  // Sample states for the decidable obligations.
  std::vector<View> Samples;
  for (int Mode = 0; Mode < 3; ++Mode) {
    View S;
    bool Up = Mode != 0;
    S.addLabel(Fl, LabelSlice{Mode == 1 ? PCMVal::mutexOwn()
                                        : PCMVal::mutexFree(),
                              Heap::singleton(FlagCell, Val::ofBool(Up)),
                              Mode == 2 ? PCMVal::mutexOwn()
                                        : PCMVal::mutexFree()});
    Samples.push_back(std::move(S));
  }

  // Step 3 — metatheory obligations.
  MetaReport Meta = checkConcurroidWellFormed(*Flag, Samples);
  std::printf("[conc] metatheory: %s (%llu checks)\n",
              Meta.Passed ? "ok" : Meta.CounterExample.c_str(),
              static_cast<unsigned long long>(Meta.ChecksRun));

  // Step 4 — the atomic action try_raise, erasing to CAS.
  ActionRef TryRaise = makeAction(
      "try_raise", Flag, 0,
      [](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *Cell = Pre.joint(Fl).tryLookup(FlagCell);
        if (!Cell)
          return std::nullopt;
        if (Cell->getBool())
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        View Post = Pre;
        Post.setJoint(Fl, Heap::singleton(FlagCell, Val::ofBool(true)));
        Post.setSelf(Fl, PCMVal::mutexOwn());
        return std::vector<ActOutcome>{{Val::ofBool(true),
                                        std::move(Post)}};
      });
  MetaReport Acts = checkActionWellFormed(*TryRaise, Samples, {{}});
  std::printf("[acts] erasure + correspondence + coherence: %s\n",
              Acts.Passed ? "ok" : Acts.CounterExample.c_str());

  // Step 5 — stability: "I raised it" survives interference; "the flag
  // is down" does not.
  Assertion IRaised("I raised the flag", [](const View &S) {
    return S.self(Fl).isOwn();
  });
  Assertion StillDown("the flag is down", [](const View &S) {
    return !S.joint(Fl).lookup(FlagCell).getBool();
  });
  StabilityReport Stable = checkStability(IRaised, *Flag, Samples);
  StabilityReport Unstable = checkStability(StillDown, *Flag, Samples);
  std::printf("[stab] 'I raised it' stable: %s\n",
              Stable.Stable ? "yes" : "NO");
  std::printf("[stab] 'flag is down' stable: %s (expected: no)\n",
              Unstable.Stable ? "yes" : "no");
  if (!Stable.Stable || Unstable.Stable)
    return 1;

  // Step 6 — the client triple: after ensure_raised(), the flag is up.
  DefTable Defs;
  Defs.define("ensure_raised",
              FuncDef{{},
                      Prog::bind(Prog::act(TryRaise, {}), "b",
                                 Prog::retUnit())});
  Spec S;
  S.Name = "ensure_raised";
  S.C = Flag;
  S.Pre = assertTrue();
  S.PostName = "the flag is up";
  S.Post = [](const Val &, const View &, const View &F) {
    return F.joint(Fl).lookup(FlagCell).getBool();
  };
  GlobalState GS;
  GS.addLabel(Fl, PCMType::mutex(),
              Heap::singleton(FlagCell, Val::ofBool(false)),
              PCMVal::mutexFree(), false);
  EngineOptions Opts;
  Opts.Ambient = Flag;
  Opts.EnvInterference = true;
  Opts.Defs = &Defs;
  VerifyResult R = verifyTriple(Prog::call("ensure_raised", {}), S,
                                {VerifyInstance{GS, {}}}, Opts);
  std::printf("[main] {true} ensure_raised() {flag up}: %s "
              "(%llu configurations)\n",
              R.Holds ? "verified" : R.FailureNote.c_str(),
              static_cast<unsigned long long>(R.ConfigsExplored));
  return R.Holds && Meta.Passed && Acts.Passed ? 0 : 1;
}
