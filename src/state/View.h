//===- state/View.h - Subjective [self|joint|other] states ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A View is one thread's subjective snapshot of the labelled state: for
/// each concurroid label it carries the triple [self | joint | other]
/// (Section 2.2.1). `joint` is real heap shared by every thread; `self` is
/// the observing thread's own (possibly auxiliary) PCM contribution and
/// `other` the combined contribution of everyone else. Specifications,
/// coherence predicates, transitions and atomic actions are all predicates
/// or relations on Views — exactly the paper's state model, with the label
/// indexing of Section 3.3 (`sp ->> [self, joint, other]`) and the getters
/// of Section 5.3 (`self pv s`, `joint sp s`, ...).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STATE_VIEW_H
#define FCSL_STATE_VIEW_H

#include "pcm/PCMVal.h"
#include "support/Intern.h"

#include <map>
#include <string>
#include <vector>

namespace fcsl {

/// Identifies one installed concurroid instance (the paper's label, e.g. the
/// variable `sp` parameterizing the SpanTree concurroid).
using Label = uint32_t;

/// The per-label state triple. Each component is a canonical interned
/// handle, so a slice is itself canonical up to component identity:
/// equality is three pointer compares and the fingerprint combines three
/// cached fingerprints.
struct LabelSlice {
  PCMVal Self;
  Heap Joint;
  PCMVal Other;

  friend bool operator==(const LabelSlice &A, const LabelSlice &B) {
    return A.Self == B.Self && A.Joint == B.Joint && A.Other == B.Other;
  }

  /// Process-stable structural fingerprint of the triple.
  uint64_t fingerprint() const {
    return fpCombine(fpCombine(Self.fingerprint(), Joint.fingerprint()),
                     Other.fingerprint());
  }
};

/// A labelled subjective state: finite map from labels to slices.
class View {
public:
  View() = default;

  bool hasLabel(Label L) const { return Slices.count(L) != 0; }
  size_t numLabels() const { return Slices.size(); }
  std::vector<Label> labels() const;

  /// Adds a fresh label; asserts it is not already present.
  void addLabel(Label L, LabelSlice S);

  /// Removes a label; asserts it is present.
  void removeLabel(Label L);

  const LabelSlice &slice(Label L) const;
  LabelSlice &sliceMut(Label L);

  /// The paper's getters: self/joint/other projections at a label.
  const PCMVal &self(Label L) const { return slice(L).Self; }
  const Heap &joint(Label L) const { return slice(L).Joint; }
  const PCMVal &other(Label L) const { return slice(L).Other; }

  void setSelf(Label L, PCMVal V) { sliceMut(L).Self = std::move(V); }
  void setJoint(Label L, Heap H) { sliceMut(L).Joint = std::move(H); }
  void setOther(Label L, PCMVal V) { sliceMut(L).Other = std::move(V); }

  /// self \+ other at \p L; std::nullopt when the contributions clash (such
  /// a view is incoherent for any concurroid).
  std::optional<PCMVal> selfOtherJoin(Label L) const;

  /// Realigns the subjective split at \p L: moves \p Delta from self to
  /// other. Returns false when self cannot be split as Delta \+ rest. This
  /// is the fork-join realignment the concurroid state spaces must be closed
  /// under (the paper's "subjectivity" / fork-join closure requirement);
  /// note it needs PCM cancellativity to be well-defined, which
  /// pcm/Algebra.h checks per carrier.
  bool realignSelfToOther(Label L, const PCMVal &Delta);

  int compare(const View &Other) const;
  friend bool operator==(const View &A, const View &B) {
    return A.compare(B) == 0;
  }
  friend bool operator!=(const View &A, const View &B) {
    return A.compare(B) != 0;
  }
  friend bool operator<(const View &A, const View &B) {
    return A.compare(B) < 0;
  }

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

  auto begin() const { return Slices.begin(); }
  auto end() const { return Slices.end(); }

private:
  std::map<Label, LabelSlice> Slices;
};

/// Attempts to subtract \p Part from \p Whole in the PCM sense: returns R
/// with Part \+ R == Whole if such an element exists among candidates
/// constructible for the carrier. Implemented exactly for the cancellative
/// carriers used in the case studies (nat, mutex, ptrset, heap, hist, and
/// pairs thereof); returns std::nullopt if Part is not a sub-element.
std::optional<PCMVal> pcmSubtract(const PCMVal &Whole, const PCMVal &Part);

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::View> {
  size_t operator()(const fcsl::View &V) const {
    size_t Seed = 0;
    V.hashInto(Seed);
    return Seed;
  }
};
} // namespace std

#endif // FCSL_STATE_VIEW_H
