//===- state/GlobalState.h - Whole-system instrumented state ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model checker's global configuration state. Where a View is one
/// thread's subjective [self|joint|other] snapshot, the GlobalState keeps,
/// per label: the shared joint heap, every live thread's self contribution,
/// and the abstract environment's contribution. A thread's View is derived
/// by taking its own contribution as self and joining everything else into
/// other — which is precisely the paper's subjective semantics, and makes
/// the proofs (here: explorations) "insensitive to the number of threads
/// forked" (Section 2.2.1): forking splits a contribution, joining reunites
/// it, and the global state never changes shape.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STATE_GLOBALSTATE_H
#define FCSL_STATE_GLOBALSTATE_H

#include "state/View.h"

#include <set>

namespace fcsl {

/// Thread identifiers form a binary tree: the root program is thread 1, and
/// the children of thread t are 2t and 2t+1 (the `par` combinator). Ids are
/// deterministic across explorations so configurations hash stably.
using ThreadId = uint64_t;

inline ThreadId rootThread() { return 1; }
inline ThreadId leftChild(ThreadId T) { return 2 * T; }
inline ThreadId rightChild(ThreadId T) { return 2 * T + 1; }

/// The whole-system state over which the interleaving engine runs.
class GlobalState {
public:
  GlobalState() = default;

  /// Installs a concurroid instance at \p L. \p EnvClosed marks labels that
  /// external interference may not touch (the effect of `hide`).
  void addLabel(Label L, PCMTypeRef SelfType, Heap Joint, PCMVal EnvSelf,
                bool EnvClosed);

  /// Uninstalls \p L, returning its joint heap (used by `hide` on exit).
  Heap removeLabel(Label L);

  bool hasLabel(Label L) const { return SelfTypes.count(L) != 0; }
  std::vector<Label> labels() const;
  bool isEnvClosed(Label L) const { return EnvClosed.count(L) != 0; }

  const PCMTypeRef &selfType(Label L) const;
  const Heap &joint(Label L) const;
  void setJoint(Label L, Heap H);

  /// Thread \p T's contribution at \p L (unit if none recorded). Unit
  /// contributions are canonically not stored, so states compare equal
  /// independently of which threads ever touched a label.
  PCMVal selfOf(Label L, ThreadId T) const;
  void setSelf(Label L, ThreadId T, PCMVal V);

  const PCMVal &envSelf(Label L) const;
  void setEnvSelf(Label L, PCMVal V);

  /// All stored (non-unit) thread contributions at \p L, keyed by thread.
  /// Used by the codec; unit contributions are canonically absent.
  const std::map<ThreadId, PCMVal> &selves(Label L) const;

  /// Joined contribution of every thread except \p T, plus the environment;
  /// std::nullopt if contributions clash (the state is then globally
  /// incoherent and the engine reports a soundness violation).
  std::optional<PCMVal> otherFor(Label L, ThreadId T) const;

  /// Joined contribution of every thread (no environment).
  std::optional<PCMVal> allThreadsJoin(Label L) const;

  /// Builds thread \p T's subjective view of all labels.
  View viewFor(ThreadId T) const;

  /// Builds the environment's subjective view (self = env contribution,
  /// other = all threads). Environment transitions step this view.
  View viewForEnv() const;

  /// Writes back thread \p T's post-view: joints and T's selves are
  /// updated; asserts the other components were left untouched.
  void applyThread(ThreadId T, const View &Pre, const View &Post);

  /// Writes back an environment step.
  void applyEnv(const View &Pre, const View &Post);

  /// Forks \p Parent into \p Left and \p Right, distributing the parent's
  /// contribution at every label according to \p Splits (labels missing
  /// from \p Splits give the whole contribution to the left child).
  void fork(ThreadId Parent, ThreadId Left, ThreadId Right,
            const std::map<Label, std::pair<PCMVal, PCMVal>> &Splits);

  /// Joins children back into \p Parent: the parent's contribution becomes
  /// the PCM join of the children's. Asserts definedness.
  void joinChildren(ThreadId Parent, ThreadId Left, ThreadId Right);

  /// Rewrites the thread keys of every per-label contribution map through
  /// \p M (threads absent from the map keep their id). Asserts the renaming
  /// is injective per label. Used by the symmetry layer when two subtree
  /// programs are swapped into canonical order (DESIGN.md §11).
  void renameThreads(const std::map<ThreadId, ThreadId> &M);

  /// Rewrites every pointer in joints, thread contributions and environment
  /// contributions through \p M. Used by the symmetry layer's canonical
  /// renaming of fresh heap names (DESIGN.md §11).
  void renamePtrs(const std::map<Ptr, Ptr> &M);

  int compare(const GlobalState &Other) const;
  friend bool operator==(const GlobalState &A, const GlobalState &B) {
    return A.compare(B) == 0;
  }
  friend bool operator<(const GlobalState &A, const GlobalState &B) {
    return A.compare(B) < 0;
  }

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

  /// Approximate handle-level footprint in bytes: the per-state container
  /// overhead, NOT the interned nodes (those are shared arena-wide). Used
  /// for visited-set memory accounting.
  size_t approxBytes() const;

private:
  std::map<Label, PCMTypeRef> SelfTypes;
  std::map<Label, Heap> Joints;
  std::map<Label, std::map<ThreadId, PCMVal>> Selves;
  std::map<Label, PCMVal> EnvSelves;
  std::set<Label> EnvClosed;
};

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::GlobalState> {
  size_t operator()(const fcsl::GlobalState &S) const {
    size_t Seed = 0;
    S.hashInto(Seed);
    return Seed;
  }
};
} // namespace std

#endif // FCSL_STATE_GLOBALSTATE_H
