//===- state/GlobalState.cpp - Whole-system instrumented state -------------===//
//
// Part of fcsl-cpp. See GlobalState.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "state/GlobalState.h"

#include <cassert>

using namespace fcsl;

void GlobalState::addLabel(Label L, PCMTypeRef SelfType, Heap Joint,
                           PCMVal EnvSelf, bool Closed) {
  assert(!hasLabel(L) && "label already installed");
  assert(SelfType && "label needs a self-PCM carrier");
  SelfTypes.emplace(L, std::move(SelfType));
  Joints.emplace(L, std::move(Joint));
  Selves.emplace(L, std::map<ThreadId, PCMVal>());
  setEnvSelf(L, std::move(EnvSelf));
  if (Closed)
    EnvClosed.insert(L);
}

Heap GlobalState::removeLabel(Label L) {
  assert(hasLabel(L) && "label not installed");
  Heap Out = Joints.at(L);
  SelfTypes.erase(L);
  Joints.erase(L);
  Selves.erase(L);
  EnvSelves.erase(L);
  EnvClosed.erase(L);
  return Out;
}

std::vector<Label> GlobalState::labels() const {
  std::vector<Label> Out;
  Out.reserve(SelfTypes.size());
  for (const auto &Entry : SelfTypes)
    Out.push_back(Entry.first);
  return Out;
}

const PCMTypeRef &GlobalState::selfType(Label L) const {
  auto It = SelfTypes.find(L);
  assert(It != SelfTypes.end() && "label not installed");
  return It->second;
}

const Heap &GlobalState::joint(Label L) const {
  auto It = Joints.find(L);
  assert(It != Joints.end() && "label not installed");
  return It->second;
}

void GlobalState::setJoint(Label L, Heap H) {
  auto It = Joints.find(L);
  assert(It != Joints.end() && "label not installed");
  It->second = std::move(H);
}

PCMVal GlobalState::selfOf(Label L, ThreadId T) const {
  auto LabelIt = Selves.find(L);
  assert(LabelIt != Selves.end() && "label not installed");
  auto It = LabelIt->second.find(T);
  if (It == LabelIt->second.end())
    return selfType(L)->unit();
  return It->second;
}

void GlobalState::setSelf(Label L, ThreadId T, PCMVal V) {
  auto LabelIt = Selves.find(L);
  assert(LabelIt != Selves.end() && "label not installed");
  // Units are canonically absent so state equality ignores which threads
  // ever held a contribution.
  if (V.isUnitOf(*selfType(L))) {
    LabelIt->second.erase(T);
    return;
  }
  LabelIt->second[T] = std::move(V);
}

const PCMVal &GlobalState::envSelf(Label L) const {
  auto It = EnvSelves.find(L);
  assert(It != EnvSelves.end() && "label not installed");
  return It->second;
}

void GlobalState::setEnvSelf(Label L, PCMVal V) {
  EnvSelves[L] = std::move(V);
}

const std::map<ThreadId, PCMVal> &GlobalState::selves(Label L) const {
  auto It = Selves.find(L);
  assert(It != Selves.end() && "label not installed");
  return It->second;
}

std::optional<PCMVal> GlobalState::otherFor(Label L, ThreadId T) const {
  std::optional<PCMVal> Acc = envSelf(L);
  for (const auto &Entry : Selves.at(L)) {
    if (Entry.first == T)
      continue;
    Acc = PCMVal::join(*Acc, Entry.second);
    if (!Acc)
      return std::nullopt;
  }
  return Acc;
}

std::optional<PCMVal> GlobalState::allThreadsJoin(Label L) const {
  std::optional<PCMVal> Acc = selfType(L)->unit();
  for (const auto &Entry : Selves.at(L)) {
    Acc = PCMVal::join(*Acc, Entry.second);
    if (!Acc)
      return std::nullopt;
  }
  return Acc;
}

View GlobalState::viewFor(ThreadId T) const {
  View Out;
  for (const auto &Entry : SelfTypes) {
    Label L = Entry.first;
    std::optional<PCMVal> Other = otherFor(L, T);
    assert(Other && "globally incoherent state: contributions clash");
    Out.addLabel(L, LabelSlice{selfOf(L, T), joint(L), std::move(*Other)});
  }
  return Out;
}

View GlobalState::viewForEnv() const {
  View Out;
  for (const auto &Entry : SelfTypes) {
    Label L = Entry.first;
    std::optional<PCMVal> Threads = allThreadsJoin(L);
    assert(Threads && "globally incoherent state: contributions clash");
    Out.addLabel(L, LabelSlice{envSelf(L), joint(L), std::move(*Threads)});
  }
  return Out;
}

void GlobalState::applyThread(ThreadId T, const View &Pre, const View &Post) {
  (void)Pre;
  assert(Pre.labels() == Post.labels() &&
         "thread steps may not install or remove labels");
  for (Label L : Post.labels()) {
    assert(Pre.other(L) == Post.other(L) &&
           "thread step mutated the other component");
    setJoint(L, Post.joint(L));
    setSelf(L, T, Post.self(L));
  }
}

void GlobalState::applyEnv(const View &Pre, const View &Post) {
  (void)Pre;
  assert(Pre.labels() == Post.labels() &&
         "environment steps may not install or remove labels");
  for (Label L : Post.labels()) {
    assert(Pre.other(L) == Post.other(L) &&
           "environment step mutated the threads' contributions");
    assert((!isEnvClosed(L) || (Pre.joint(L) == Post.joint(L) &&
                                Pre.self(L) == Post.self(L))) &&
           "environment stepped a hidden label");
    setJoint(L, Post.joint(L));
    setEnvSelf(L, Post.self(L));
  }
}

void GlobalState::fork(ThreadId Parent, ThreadId Left, ThreadId Right,
                       const std::map<Label, std::pair<PCMVal, PCMVal>>
                           &Splits) {
  for (const auto &Entry : SelfTypes) {
    Label L = Entry.first;
    PCMVal Whole = selfOf(L, Parent);
    auto SplitIt = Splits.find(L);
    if (SplitIt == Splits.end()) {
      // Default split: everything to the left child.
      setSelf(L, Left, Whole);
      setSelf(L, Right, Entry.second->unit());
    } else {
      // The split must recombine to the parent's contribution.
      std::optional<PCMVal> Recombined =
          PCMVal::join(SplitIt->second.first, SplitIt->second.second);
      assert(Recombined && *Recombined == Whole &&
             "fork split does not partition the parent contribution");
      (void)Recombined;
      setSelf(L, Left, SplitIt->second.first);
      setSelf(L, Right, SplitIt->second.second);
    }
    setSelf(L, Parent, Entry.second->unit());
  }
}

void GlobalState::joinChildren(ThreadId Parent, ThreadId Left,
                               ThreadId Right) {
  for (const auto &Entry : SelfTypes) {
    Label L = Entry.first;
    std::optional<PCMVal> Joined =
        PCMVal::join(selfOf(L, Left), selfOf(L, Right));
    assert(Joined && "children contributions clash at join");
    setSelf(L, Parent, std::move(*Joined));
    setSelf(L, Left, Entry.second->unit());
    setSelf(L, Right, Entry.second->unit());
  }
}

void GlobalState::renameThreads(const std::map<ThreadId, ThreadId> &M) {
  if (M.empty())
    return;
  for (auto &Entry : Selves) {
    std::map<ThreadId, PCMVal> Renamed;
    bool Changed = false;
    for (const auto &Contribution : Entry.second) {
      auto It = M.find(Contribution.first);
      ThreadId T = It == M.end() ? Contribution.first : It->second;
      Changed |= T != Contribution.first;
      bool Inserted = Renamed.emplace(T, Contribution.second).second;
      assert(Inserted && "thread renaming must stay injective per label");
      (void)Inserted;
    }
    if (Changed)
      Entry.second = std::move(Renamed);
  }
}

void GlobalState::renamePtrs(const std::map<Ptr, Ptr> &M) {
  if (M.empty())
    return;
  for (auto &Entry : Joints)
    Entry.second = Entry.second.renamePtrs(M);
  for (auto &Entry : EnvSelves)
    Entry.second = Entry.second.renamePtrs(M);
  for (auto &Label : Selves)
    for (auto &Contribution : Label.second)
      Contribution.second = Contribution.second.renamePtrs(M);
}

int GlobalState::compare(const GlobalState &Other) const {
  // Label sets (with their env-closed flags) first.
  {
    auto AIt = SelfTypes.begin(), AEnd = SelfTypes.end();
    auto BIt = Other.SelfTypes.begin(), BEnd = Other.SelfTypes.end();
    for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt)
      if (AIt->first != BIt->first)
        return AIt->first < BIt->first ? -1 : 1;
    if (AIt != AEnd)
      return 1;
    if (BIt != BEnd)
      return -1;
  }
  if (EnvClosed != Other.EnvClosed)
    return EnvClosed < Other.EnvClosed ? -1 : 1;
  for (const auto &Entry : Joints) {
    int Cmp = Entry.second.compare(Other.Joints.at(Entry.first));
    if (Cmp != 0)
      return Cmp;
  }
  for (const auto &Entry : EnvSelves) {
    int Cmp = Entry.second.compare(Other.EnvSelves.at(Entry.first));
    if (Cmp != 0)
      return Cmp;
  }
  for (const auto &Entry : Selves) {
    const auto &A = Entry.second;
    const auto &B = Other.Selves.at(Entry.first);
    auto AIt = A.begin(), AEnd = A.end();
    auto BIt = B.begin(), BEnd = B.end();
    for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
      if (AIt->first != BIt->first)
        return AIt->first < BIt->first ? -1 : 1;
      int Cmp = AIt->second.compare(BIt->second);
      if (Cmp != 0)
        return Cmp;
    }
    if (AIt != AEnd)
      return 1;
    if (BIt != BEnd)
      return -1;
  }
  return 0;
}

void GlobalState::hashInto(std::size_t &Seed) const {
  hashValue(Seed, SelfTypes.size());
  for (const auto &Entry : SelfTypes)
    hashValue(Seed, Entry.first);
  for (Label L : EnvClosed)
    hashValue(Seed, ~static_cast<size_t>(L));
  for (const auto &Entry : Joints)
    Entry.second.hashInto(Seed);
  for (const auto &Entry : EnvSelves)
    Entry.second.hashInto(Seed);
  for (const auto &Entry : Selves)
    for (const auto &Contribution : Entry.second) {
      hashValue(Seed, Contribution.first);
      Contribution.second.hashInto(Seed);
    }
}

size_t GlobalState::approxBytes() const {
  // Red-black tree node overhead per entry on a 64-bit libstdc++/libc++:
  // three pointers, a color and padding.
  constexpr size_t MapNode = 48;
  size_t Bytes = sizeof(GlobalState);
  Bytes += SelfTypes.size() * (MapNode + sizeof(Label) + sizeof(PCMTypeRef));
  Bytes += Joints.size() * (MapNode + sizeof(Label) + sizeof(Heap));
  for (const auto &Entry : Selves)
    Bytes += MapNode + sizeof(Label) + sizeof(Entry.second) +
             Entry.second.size() *
                 (MapNode + sizeof(ThreadId) + sizeof(PCMVal));
  Bytes += EnvSelves.size() * (MapNode + sizeof(Label) + sizeof(PCMVal));
  Bytes += EnvClosed.size() * (MapNode + sizeof(Label));
  return Bytes;
}

std::string GlobalState::toString() const {
  std::string Out;
  for (const auto &Entry : SelfTypes) {
    Label L = Entry.first;
    Out += std::to_string(L);
    if (isEnvClosed(L))
      Out += " (hidden)";
    Out += " joint = " + joint(L).toString() + "\n";
    for (const auto &Contribution : Selves.at(L))
      Out += "  thread " + std::to_string(Contribution.first) + " self = " +
             Contribution.second.toString() + "\n";
    Out += "  env self = " + envSelf(L).toString() + "\n";
  }
  return Out;
}
