//===- state/View.cpp - Subjective [self|joint|other] states ---------------===//
//
// Part of fcsl-cpp. See View.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "state/View.h"

#include "support/Format.h"

#include <cassert>

using namespace fcsl;

std::vector<Label> View::labels() const {
  std::vector<Label> Out;
  Out.reserve(Slices.size());
  for (const auto &Entry : Slices)
    Out.push_back(Entry.first);
  return Out;
}

void View::addLabel(Label L, LabelSlice S) {
  bool Inserted = Slices.emplace(L, std::move(S)).second;
  assert(Inserted && "label already installed");
  (void)Inserted;
}

void View::removeLabel(Label L) {
  size_t Erased = Slices.erase(L);
  assert(Erased == 1 && "label not installed");
  (void)Erased;
}

const LabelSlice &View::slice(Label L) const {
  auto It = Slices.find(L);
  assert(It != Slices.end() && "label not installed");
  return It->second;
}

LabelSlice &View::sliceMut(Label L) {
  auto It = Slices.find(L);
  assert(It != Slices.end() && "label not installed");
  return It->second;
}

std::optional<PCMVal> View::selfOtherJoin(Label L) const {
  const LabelSlice &S = slice(L);
  return PCMVal::join(S.Self, S.Other);
}

bool View::realignSelfToOther(Label L, const PCMVal &Delta) {
  LabelSlice &S = sliceMut(L);
  std::optional<PCMVal> Rest = pcmSubtract(S.Self, Delta);
  if (!Rest)
    return false;
  std::optional<PCMVal> NewOther = PCMVal::join(S.Other, Delta);
  if (!NewOther)
    return false;
  S.Self = std::move(*Rest);
  S.Other = std::move(*NewOther);
  return true;
}

int View::compare(const View &Other) const {
  auto AIt = Slices.begin(), AEnd = Slices.end();
  auto BIt = Other.Slices.begin(), BEnd = Other.Slices.end();
  for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return AIt->first < BIt->first ? -1 : 1;
    int Cmp = AIt->second.Self.compare(BIt->second.Self);
    if (Cmp != 0)
      return Cmp;
    Cmp = AIt->second.Joint.compare(BIt->second.Joint);
    if (Cmp != 0)
      return Cmp;
    Cmp = AIt->second.Other.compare(BIt->second.Other);
    if (Cmp != 0)
      return Cmp;
  }
  if (AIt != AEnd)
    return 1;
  if (BIt != BEnd)
    return -1;
  return 0;
}

void View::hashInto(std::size_t &Seed) const {
  hashValue(Seed, Slices.size());
  for (const auto &Entry : Slices) {
    hashValue(Seed, Entry.first);
    hashCombine(Seed, static_cast<std::size_t>(Entry.second.fingerprint()));
  }
}

std::string View::toString() const {
  std::string Out;
  for (const auto &Entry : Slices) {
    Out += formatString("%u ->> [", Entry.first);
    Out += Entry.second.Self.toString() + " | " +
           Entry.second.Joint.toString() + " | " +
           Entry.second.Other.toString() + "]\n";
  }
  return Out;
}

std::optional<PCMVal> fcsl::pcmSubtract(const PCMVal &Whole,
                                        const PCMVal &Part) {
  if (Whole.kind() != Part.kind())
    return std::nullopt;
  switch (Whole.kind()) {
  case PCMKind::Nat:
    if (Part.getNat() > Whole.getNat())
      return std::nullopt;
    return PCMVal::ofNat(Whole.getNat() - Part.getNat());
  case PCMKind::Mutex:
    if (Part.isOwn())
      return Whole.isOwn() ? std::optional<PCMVal>(PCMVal::mutexFree())
                           : std::nullopt;
    return Whole;
  case PCMKind::PtrSet: {
    std::set<Ptr> Rest = Whole.getPtrSet();
    for (Ptr P : Part.getPtrSet()) {
      auto It = Rest.find(P);
      if (It == Rest.end())
        return std::nullopt;
      Rest.erase(It);
    }
    return PCMVal::ofPtrSet(std::move(Rest));
  }
  case PCMKind::HeapPCM: {
    const Heap &WholeHeap = Whole.getHeap();
    Heap Rest = WholeHeap;
    for (const auto &Cell : Part.getHeap()) {
      const Val *V = WholeHeap.tryLookup(Cell.first);
      if (!V || *V != Cell.second)
        return std::nullopt;
      Rest.remove(Cell.first);
    }
    return PCMVal::ofHeap(std::move(Rest));
  }
  case PCMKind::Hist: {
    const History &WholeHist = Whole.getHist();
    History Rest;
    for (const auto &Entry : WholeHist) {
      const HistEntry *E = Part.getHist().tryLookup(Entry.first);
      if (E) {
        if (!(*E == Entry.second))
          return std::nullopt;
        continue;
      }
      Rest.add(Entry.first, Entry.second);
    }
    // Every Part stamp must occur in Whole.
    if (Rest.size() + Part.getHist().size() != WholeHist.size())
      return std::nullopt;
    return PCMVal::ofHist(std::move(Rest));
  }
  case PCMKind::Pair: {
    std::optional<PCMVal> First = pcmSubtract(Whole.first(), Part.first());
    if (!First)
      return std::nullopt;
    std::optional<PCMVal> Second = pcmSubtract(Whole.second(), Part.second());
    if (!Second)
      return std::nullopt;
    return PCMVal::makePair(std::move(*First), std::move(*Second));
  }
  case PCMKind::Lift: {
    if (Whole.isLiftUndef() || Part.isLiftUndef())
      return std::nullopt;
    std::optional<PCMVal> Inner =
        pcmSubtract(Whole.liftInner(), Part.liftInner());
    if (!Inner)
      return std::nullopt;
    return PCMVal::liftDef(std::move(*Inner));
  }
  }
  assert(false && "unknown PCM kind");
  return std::nullopt;
}
