//===- action/AtomicAction.h - Atomic actions -------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic actions (Sections 2.2.2 and 3.4): program operations that perform
/// one read-modify-write step on the real heap and simultaneously update
/// auxiliary state. An action is a relation between an input view, argument
/// values, a result value and an output view — e.g. the paper's
/// `trymark_step`. Actions must erase to a physical operation (the
/// auxiliary part does not influence the heap effect) and every step must
/// correspond to a transition of the action's concurroid; both obligations
/// are checked in ActionChecks.h.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_ACTION_ATOMICACTION_H
#define FCSL_ACTION_ATOMICACTION_H

#include "concurroid/Concurroid.h"
#include "concurroid/Footprint.h"

#include <optional>

namespace fcsl {

/// One possible outcome of an atomic action: the returned value and the
/// post-view. Actions may be nondeterministic (several outcomes).
struct ActOutcome {
  Val Result;
  View Post;
};

class AtomicAction;
using ActionRef = std::shared_ptr<const AtomicAction>;

/// An atomic action over the views of a fixed concurroid.
class AtomicAction {
public:
  /// The stepping relation. Returning std::nullopt means the action is
  /// *unsafe* in this view with these arguments (a precondition violation:
  /// the verifier reports it as a crash). A defined result must be
  /// non-empty: FCSL actions are total on their safe states.
  using StepFn = std::function<std::optional<std::vector<ActOutcome>>(
      const View &, const std::vector<Val> &)>;

  /// Dynamic footprint generator: the components one step from the given
  /// pre-view with the given arguments may read/write (see Footprint.h for
  /// the honesty contract backing the engine's partial-order reduction).
  using FootprintFn =
      std::function<Footprint(const View &, const std::vector<Val> &)>;

  AtomicAction(std::string Name, ConcurroidRef C, unsigned Arity,
               StepFn Step, Footprint StaticFp = Footprint(),
               FootprintFn DynFp = nullptr);

  const std::string &name() const { return Name; }
  unsigned arity() const { return Arity; }
  const ConcurroidRef &concurroid() const { return C; }

  /// Runs the stepping relation; asserts the arity matches.
  std::optional<std::vector<ActOutcome>>
  step(const View &Pre, const std::vector<Val> &Args) const;

  /// The static footprint, covering every step from every view with any
  /// arguments; unknown (dependent on everything) unless supplied.
  const Footprint &staticFootprint() const { return StaticFp; }

  /// The footprint of one step: the dynamic generator when present, else
  /// the static footprint.
  Footprint footprint(const View &Pre, const std::vector<Val> &Args) const {
    return DynFp ? DynFp(Pre, Args) : StaticFp;
  }

private:
  std::string Name;
  ConcurroidRef C;
  unsigned Arity;
  StepFn Step;
  Footprint StaticFp;
  FootprintFn DynFp;
};

/// Convenience factory.
ActionRef makeAction(std::string Name, ConcurroidRef C, unsigned Arity,
                     AtomicAction::StepFn Step,
                     Footprint StaticFp = Footprint(),
                     AtomicAction::FootprintFn DynFp = nullptr);

/// Generic actions over a Priv label (their physical effect is a single
/// cell operation inside the calling thread's private heap; they correspond
/// to the priv_local transition):
///  - privAlloc(pv):       v -> allocates a fresh cell holding Args[0].
///  - privRead(pv):        p -> contents of cell p.
///  - privWrite(pv):       (p, v) -> unit, stores v into p.
///  - privFree(pv):        p -> unit, deallocates p.
ActionRef makePrivAlloc(ConcurroidRef C, Label Pv);
ActionRef makePrivRead(ConcurroidRef C, Label Pv);
ActionRef makePrivWrite(ConcurroidRef C, Label Pv);
ActionRef makePrivFree(ConcurroidRef C, Label Pv);

} // namespace fcsl

#endif // FCSL_ACTION_ATOMICACTION_H
