//===- action/ActionChecks.cpp - Action proof obligations ------------------===//
//
// Part of fcsl-cpp. See ActionChecks.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "action/ActionChecks.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace fcsl;

MetaReport
fcsl::checkActionCorrespondence(const AtomicAction &A,
                                const std::vector<View> &Sample,
                                const std::vector<ActionArgs> &ArgSets) {
  MetaReport Report;
  const Concurroid &C = *A.concurroid();
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const ActionArgs &Args : ArgSets) {
      std::optional<std::vector<ActOutcome>> Outcomes = A.step(Pre, Args);
      if (!Outcomes)
        continue;
      for (const ActOutcome &O : *Outcomes) {
        ++Report.ChecksRun;
        if (!C.someTransitionCovers(Pre, O.Post)) {
          Report.Passed = false;
          Report.CounterExample = formatString(
              "action %s takes a step not covered by any transition of %s",
              A.name().c_str(), C.name().c_str());
          return Report;
        }
      }
    }
  }
  return Report;
}

namespace {

/// Collects the heap-typed leaves of a PCM element: heap components of
/// self/other are *real* state (e.g. Priv's private heaps), while nat,
/// mutex, pointer-set and history components are auxiliary and erased.
void collectHeapLeaves(const PCMVal &V, std::vector<Heap> &Out) {
  switch (V.kind()) {
  case PCMKind::HeapPCM:
    Out.push_back(V.getHeap());
    break;
  case PCMKind::Pair:
    collectHeapLeaves(V.first(), Out);
    collectHeapLeaves(V.second(), Out);
    break;
  case PCMKind::Lift:
    if (!V.isLiftUndef())
      collectHeapLeaves(V.liftInner(), Out);
    break;
  default:
    break;
  }
}

/// The physically observable part of a view: the per-label joint heaps
/// plus the heap-typed components of the self contributions.
std::vector<std::pair<Label, Heap>> physicalPart(const View &S) {
  std::vector<std::pair<Label, Heap>> Out;
  for (Label L : S.labels()) {
    Out.emplace_back(L, S.joint(L));
    std::vector<Heap> Leaves;
    collectHeapLeaves(S.self(L), Leaves);
    for (Heap &H : Leaves)
      Out.emplace_back(L, std::move(H));
  }
  return Out;
}

/// A canonical rendering of the physically observable outcomes of a step.
std::string physicalOutcomes(const std::vector<ActOutcome> &Outcomes) {
  std::vector<std::string> Rendered;
  for (const ActOutcome &O : Outcomes) {
    std::string Entry = O.Result.toString() + " / ";
    for (const auto &Part : physicalPart(O.Post))
      Entry += std::to_string(Part.first) + ":" + Part.second.toString();
    Rendered.push_back(std::move(Entry));
  }
  std::sort(Rendered.begin(), Rendered.end());
  std::string Out;
  for (const std::string &R : Rendered)
    Out += R + ";";
  return Out;
}

} // namespace

MetaReport fcsl::checkActionErasure(const AtomicAction &A,
                                    const std::vector<View> &Sample,
                                    const std::vector<ActionArgs> &ArgSets) {
  MetaReport Report;
  const Concurroid &C = *A.concurroid();
  for (const ActionArgs &Args : ArgSets) {
    // Key: canonical rendering of the physical pre-state. Value: canonical
    // rendering of the physical outcomes first observed for that pre-state.
    std::map<std::string, std::string> SeenByPhysical;
    for (const View &Pre : Sample) {
      if (!C.coherent(Pre))
        continue;
      std::optional<std::vector<ActOutcome>> Outcomes = A.step(Pre, Args);
      if (!Outcomes)
        continue;
      std::string Key;
      for (const auto &Part : physicalPart(Pre))
        Key += std::to_string(Part.first) + ":" + Part.second.toString();
      std::string Physical = physicalOutcomes(*Outcomes);
      auto [It, Inserted] = SeenByPhysical.emplace(Key, Physical);
      ++Report.ChecksRun;
      if (!Inserted && It->second != Physical) {
        Report.Passed = false;
        Report.CounterExample = formatString(
            "action %s does not erase: identical physical pre-states with "
            "different auxiliary state yield different physical outcomes",
            A.name().c_str());
        return Report;
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkActionTotality(
    const AtomicAction &A, const std::vector<View> &Sample,
    const std::vector<ActionArgs> &ArgSets,
    const std::function<bool(const View &, const ActionArgs &)>
        &Precondition) {
  MetaReport Report;
  const Concurroid &C = *A.concurroid();
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const ActionArgs &Args : ArgSets) {
      if (!Precondition(Pre, Args))
        continue;
      ++Report.ChecksRun;
      if (!A.step(Pre, Args)) {
        Report.Passed = false;
        Report.CounterExample = formatString(
            "action %s is unsafe on a coherent state satisfying its "
            "precondition:\n%s",
            A.name().c_str(), Pre.toString().c_str());
        return Report;
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkActionCoherence(const AtomicAction &A,
                                      const std::vector<View> &Sample,
                                      const std::vector<ActionArgs> &ArgSets) {
  MetaReport Report;
  const Concurroid &C = *A.concurroid();
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const ActionArgs &Args : ArgSets) {
      std::optional<std::vector<ActOutcome>> Outcomes = A.step(Pre, Args);
      if (!Outcomes)
        continue;
      for (const ActOutcome &O : *Outcomes) {
        ++Report.ChecksRun;
        if (!C.coherent(O.Post)) {
          Report.Passed = false;
          Report.CounterExample = formatString(
              "action %s leaves a coherent state for an incoherent one",
              A.name().c_str());
          return Report;
        }
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkActionWellFormed(const AtomicAction &A,
                                       const std::vector<View> &Sample,
                                       const std::vector<ActionArgs>
                                           &ArgSets) {
  MetaReport Report;
  Report.absorb(checkActionCorrespondence(A, Sample, ArgSets));
  Report.absorb(checkActionErasure(A, Sample, ArgSets));
  Report.absorb(checkActionCoherence(A, Sample, ArgSets));
  return Report;
}
