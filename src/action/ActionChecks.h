//===- action/ActionChecks.h - Action proof obligations ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-action proof obligations of Section 3.4, rendered as decision
/// procedures over samples of coherent views:
///
///  - *erasure*: the action's effect on the real (joint) heap and its
///    result are functions of the real heap alone — changing only auxiliary
///    self/other components cannot change the physical outcome (so, e.g.,
///    `trymark` erases to CAS);
///  - *correspondence*: every step the action can take is an instance of
///    some transition of its concurroid;
///  - *totality*: the action is safe on every coherent view satisfying its
///    declared precondition;
///  - *coherence*: outcomes land in coherent views.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_ACTION_ACTIONCHECKS_H
#define FCSL_ACTION_ACTIONCHECKS_H

#include "action/AtomicAction.h"
#include "concurroid/Metatheory.h"

namespace fcsl {

/// An argument vector for exercising an action.
using ActionArgs = std::vector<Val>;

/// Every (Pre, Post) step of \p A on the sampled views/arguments is covered
/// by some transition of A's concurroid.
MetaReport checkActionCorrespondence(const AtomicAction &A,
                                     const std::vector<View> &Sample,
                                     const std::vector<ActionArgs> &ArgSets);

/// Erasure: group sampled views by their per-label joint heaps; within a
/// group (same physical state, different auxiliary state) the action must
/// produce the same multiset of (result, per-label joint heaps) outcomes.
MetaReport checkActionErasure(const AtomicAction &A,
                              const std::vector<View> &Sample,
                              const std::vector<ActionArgs> &ArgSets);

/// Totality: \p A is safe on every coherent sampled view satisfying
/// \p Precondition (with the paired arguments).
MetaReport checkActionTotality(
    const AtomicAction &A, const std::vector<View> &Sample,
    const std::vector<ActionArgs> &ArgSets,
    const std::function<bool(const View &, const ActionArgs &)>
        &Precondition);

/// Outcome views are coherent.
MetaReport checkActionCoherence(const AtomicAction &A,
                                const std::vector<View> &Sample,
                                const std::vector<ActionArgs> &ArgSets);

/// Runs correspondence + erasure + coherence (totality needs the
/// action-specific precondition, so it stays separate).
MetaReport checkActionWellFormed(const AtomicAction &A,
                                 const std::vector<View> &Sample,
                                 const std::vector<ActionArgs> &ArgSets);

} // namespace fcsl

#endif // FCSL_ACTION_ACTIONCHECKS_H
