//===- action/AtomicAction.cpp - Atomic actions ----------------------------===//
//
// Part of fcsl-cpp. See AtomicAction.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "action/AtomicAction.h"

#include <cassert>

using namespace fcsl;

AtomicAction::AtomicAction(std::string Name, ConcurroidRef C, unsigned Arity,
                           StepFn Step, Footprint StaticFp, FootprintFn DynFp)
    : Name(std::move(Name)), C(std::move(C)), Arity(Arity),
      Step(std::move(Step)), StaticFp(std::move(StaticFp)),
      DynFp(std::move(DynFp)) {
  assert(this->C && "action needs a concurroid");
  assert(this->Step && "action needs a stepping relation");
}

std::optional<std::vector<ActOutcome>>
AtomicAction::step(const View &Pre, const std::vector<Val> &Args) const {
  assert(Args.size() == Arity && "action arity mismatch");
  std::optional<std::vector<ActOutcome>> Out = Step(Pre, Args);
  assert((!Out || !Out->empty()) &&
         "atomic actions are total: a safe step has at least one outcome");
  return Out;
}

ActionRef fcsl::makeAction(std::string Name, ConcurroidRef C, unsigned Arity,
                           AtomicAction::StepFn Step, Footprint StaticFp,
                           AtomicAction::FootprintFn DynFp) {
  return std::make_shared<AtomicAction>(std::move(Name), std::move(C), Arity,
                                        std::move(Step), std::move(StaticFp),
                                        std::move(DynFp));
}

ActionRef fcsl::makePrivAlloc(ConcurroidRef C, Label Pv) {
  return makeAction(
      "priv_alloc", std::move(C), 1,
      [Pv](const View &Pre,
           const std::vector<Val> &Args) -> std::optional<std::vector<ActOutcome>> {
        Heap Mine = Pre.self(Pv).getHeap();
        // Choose a pointer fresh for the *whole* view so allocation cannot
        // collide with any installed label's heap.
        uint32_t Candidate = 1;
        auto Clashes = [&](Ptr P) {
          for (Label L : Pre.labels()) {
            if (Pre.joint(L).contains(P))
              return true;
            if (Pre.self(L).kind() == PCMKind::HeapPCM &&
                Pre.self(L).getHeap().contains(P))
              return true;
            if (Pre.other(L).kind() == PCMKind::HeapPCM &&
                Pre.other(L).getHeap().contains(P))
              return true;
          }
          return false;
        };
        while (Clashes(Ptr(Candidate)))
          ++Candidate;
        Ptr Fresh(Candidate);
        Mine.insert(Fresh, Args[0]);
        View Post = Pre;
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
        return std::vector<ActOutcome>{{Val::ofPtr(Fresh), std::move(Post)}};
      });
}

ActionRef fcsl::makePrivRead(ConcurroidRef C, Label Pv) {
  return makeAction(
      "priv_read", std::move(C), 1,
      [Pv](const View &Pre,
           const std::vector<Val> &Args) -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        const Heap &Mine = Pre.self(Pv).getHeap();
        const Val *Cell = Mine.tryLookup(Args[0].getPtr());
        if (!Cell)
          return std::nullopt; // Reading outside the private heap: unsafe.
        return std::vector<ActOutcome>{{*Cell, Pre}};
      },
      Footprint::none().read(FpAtom::selfAux(Pv)));
}

ActionRef fcsl::makePrivWrite(ConcurroidRef C, Label Pv) {
  return makeAction(
      "priv_write", std::move(C), 2,
      [Pv](const View &Pre,
           const std::vector<Val> &Args) -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        Heap Mine = Pre.self(Pv).getHeap();
        if (!Mine.contains(Args[0].getPtr()))
          return std::nullopt;
        Mine.update(Args[0].getPtr(), Args[1]);
        View Post = Pre;
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      },
      Footprint::none().readWrite(FpAtom::selfAux(Pv)));
}

ActionRef fcsl::makePrivFree(ConcurroidRef C, Label Pv) {
  return makeAction(
      "priv_free", std::move(C), 1,
      [Pv](const View &Pre,
           const std::vector<Val> &Args) -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        Heap Mine = Pre.self(Pv).getHeap();
        if (!Mine.contains(Args[0].getPtr()))
          return std::nullopt;
        Mine.remove(Args[0].getPtr());
        View Post = Pre;
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
        return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
      },
      Footprint::none().readWrite(FpAtom::selfAux(Pv)));
}
