//===- lincheck/LinCheck.h - Linearizability checking -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Wing&Gong-style linearizability checker: searches for a sequential
/// ordering of a recorded concurrent history that (a) respects the
/// real-time precedence order and (b) replays correctly against a
/// sequential specification. Memoizes on (set of linearized operations,
/// abstract state) to keep the search tractable for the bench-sized
/// histories.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_LINCHECK_LINCHECK_H
#define FCSL_LINCHECK_LINCHECK_H

#include "lincheck/History.h"

#include <functional>
#include <optional>

namespace fcsl {

/// A sequential specification over an abstract state encoded as a Val.
struct SeqSpec {
  Val Initial;
  /// Applies operation (Op, Arg) to \p State; returns the new state and
  /// the specified return value, or std::nullopt if the operation is not
  /// applicable (the checker then rejects the candidate ordering unless
  /// the recorded return matches a defined outcome).
  std::function<std::optional<std::pair<Val, Val>>(
      const Val &State, const std::string &Op, const Val &Arg)>
      Apply;
};

/// Result of a linearizability check.
struct LinResult {
  bool Linearizable = false;
  uint64_t StatesSearched = 0;
  /// A witness ordering (indices into the history) when linearizable.
  std::vector<size_t> Witness;
};

/// Decides whether \p H is linearizable with respect to \p Spec.
/// \p MaxStates bounds the memoized search.
LinResult checkLinearizable(const ConcurrentHistory &H, const SeqSpec &Spec,
                            uint64_t MaxStates = 5000000);

/// The sequential stack spec over cons-list states (push/pop), matching
/// the Treiber stack runtime: "pop" on the empty stack returns int 0
/// (the runtime's empty marker), "push v" returns unit.
SeqSpec stackSeqSpec();

/// Sequential spec of the pair snapshot structure: cells hold integers;
/// ops are "writeX v" / "writeY v" (return unit) and "read" returning the
/// pair (x, y).
SeqSpec pairSnapshotSeqSpec(int64_t InitialX, int64_t InitialY);

/// Sequential spec of a counter with "incr" (returns previous value).
SeqSpec counterSeqSpec(int64_t Initial);

} // namespace fcsl

#endif // FCSL_LINCHECK_LINCHECK_H
