//===- lincheck/History.cpp - Concurrent operation histories ---------------===//
//
// Part of fcsl-cpp. See History.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "lincheck/History.h"

using namespace fcsl;

void HistoryRecorder::record(unsigned ThreadIndex, std::string Op, Val Arg,
                             Val Ret, uint64_t InvokeTime) {
  uint64_t ReturnTime = Clock.fetch_add(1) + 1;
  std::lock_guard<std::mutex> Guard(Mutex);
  History.add(OpRecord{ThreadIndex, std::move(Op), std::move(Arg),
                       std::move(Ret), InvokeTime, ReturnTime});
}

ConcurrentHistory HistoryRecorder::take() {
  std::lock_guard<std::mutex> Guard(Mutex);
  ConcurrentHistory Out = std::move(History);
  History = ConcurrentHistory();
  return Out;
}
