//===- lincheck/History.h - Concurrent operation histories ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recording of concurrent operation histories from the runtime (really
/// multi-threaded) data structures. The paper gives the snapshot and stack
/// structures specs "via a PCM of time-stamped histories in the spirit of
/// linearizability [21]"; the lincheck module closes the loop on the
/// executable side by validating recorded histories against a sequential
/// specification with a Wing&Gong-style linearizability checker.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_LINCHECK_HISTORY_H
#define FCSL_LINCHECK_HISTORY_H

#include "heap/Val.h"

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace fcsl {

/// One completed operation: its identity, payloads and the global
/// invocation/response timestamps.
struct OpRecord {
  unsigned ThreadIndex = 0;
  std::string Op; ///< e.g. "push", "pop", "read".
  Val Arg;
  Val Ret;
  uint64_t InvokeTime = 0;
  uint64_t ReturnTime = 0;
};

/// A finished concurrent history.
class ConcurrentHistory {
public:
  void add(OpRecord R) { Records.push_back(std::move(R)); }
  const std::vector<OpRecord> &records() const { return Records; }
  size_t size() const { return Records.size(); }

private:
  std::vector<OpRecord> Records;
};

/// Thread-safe recorder handed to runtime worker threads. Timestamps come
/// from a single atomic counter, so the real-time partial order of
/// operations is captured faithfully.
class HistoryRecorder {
public:
  /// Draws an invocation timestamp.
  uint64_t invoke() { return Clock.fetch_add(1) + 1; }

  /// Records a completed operation (draws the return timestamp).
  void record(unsigned ThreadIndex, std::string Op, Val Arg, Val Ret,
              uint64_t InvokeTime);

  /// Takes the accumulated history (call after joining all threads).
  ConcurrentHistory take();

private:
  std::atomic<uint64_t> Clock{0};
  std::mutex Mutex;
  ConcurrentHistory History;
};

} // namespace fcsl

#endif // FCSL_LINCHECK_HISTORY_H
