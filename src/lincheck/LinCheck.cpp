//===- lincheck/LinCheck.cpp - Linearizability checking --------------------===//
//
// Part of fcsl-cpp. See LinCheck.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "lincheck/LinCheck.h"

#include "support/Hashing.h"

#include <cassert>
#include <unordered_set>

using namespace fcsl;

namespace {

/// Search node identity: which ops are already linearized plus the
/// abstract state reached.
struct SearchKey {
  std::vector<bool> Done;
  Val State;

  friend bool operator==(const SearchKey &A, const SearchKey &B) {
    return A.Done == B.Done && A.State == B.State;
  }
};

struct SearchKeyHash {
  size_t operator()(const SearchKey &K) const {
    size_t Seed = 0;
    hashValue(Seed, K.Done.size());
    for (bool B : K.Done)
      hashValue(Seed, B);
    K.State.hashInto(Seed);
    return Seed;
  }
};

class LinSearcher {
public:
  LinSearcher(const ConcurrentHistory &H, const SeqSpec &Spec,
              uint64_t MaxStates)
      : Records(H.records()), Spec(Spec), MaxStates(MaxStates) {}

  LinResult run() {
    LinResult Res;
    std::vector<bool> Done(Records.size(), false);
    std::vector<size_t> Order;
    Res.Linearizable = search(Done, Spec.Initial, Order, Res);
    if (Res.Linearizable)
      Res.Witness = std::move(Order);
    return Res;
  }

private:
  bool search(std::vector<bool> &Done, const Val &State,
              std::vector<size_t> &Order, LinResult &Res) {
    if (Order.size() == Records.size())
      return true;
    if (Res.StatesSearched >= MaxStates)
      return false; // Bound hit: treated as not linearizable.
    ++Res.StatesSearched;
    SearchKey Key{Done, State};
    if (!Visited.insert(std::move(Key)).second)
      return false;

    // Minimal return time among unlinearized ops: any candidate must have
    // invoked before it, or it would contradict real-time order.
    uint64_t MinReturn = UINT64_MAX;
    for (size_t I = 0; I < Records.size(); ++I)
      if (!Done[I])
        MinReturn = std::min(MinReturn, Records[I].ReturnTime);

    for (size_t I = 0; I < Records.size(); ++I) {
      if (Done[I] || Records[I].InvokeTime > MinReturn)
        continue;
      std::optional<std::pair<Val, Val>> Applied =
          Spec.Apply(State, Records[I].Op, Records[I].Arg);
      if (!Applied || Applied->second != Records[I].Ret)
        continue;
      Done[I] = true;
      Order.push_back(I);
      if (search(Done, Applied->first, Order, Res))
        return true;
      Order.pop_back();
      Done[I] = false;
    }
    return false;
  }

  const std::vector<OpRecord> &Records;
  const SeqSpec &Spec;
  uint64_t MaxStates;
  std::unordered_set<SearchKey, SearchKeyHash> Visited;
};

} // namespace

LinResult fcsl::checkLinearizable(const ConcurrentHistory &H,
                                  const SeqSpec &Spec, uint64_t MaxStates) {
  LinSearcher Searcher(H, Spec, MaxStates);
  return Searcher.run();
}

SeqSpec fcsl::stackSeqSpec() {
  SeqSpec Spec;
  Spec.Initial = Val::unit(); // Empty stack: the unit value.
  Spec.Apply = [](const Val &State, const std::string &Op,
                  const Val &Arg) -> std::optional<std::pair<Val, Val>> {
    if (Op == "push")
      return std::make_pair(Val::pair(Arg, State), Val::unit());
    if (Op == "pop") {
      if (State.isUnit())
        return std::make_pair(State, Val::ofInt(0)); // Empty marker.
      return std::make_pair(State.second(), State.first());
    }
    return std::nullopt;
  };
  return Spec;
}

SeqSpec fcsl::pairSnapshotSeqSpec(int64_t InitialX, int64_t InitialY) {
  SeqSpec Spec;
  Spec.Initial = Val::pair(Val::ofInt(InitialX), Val::ofInt(InitialY));
  Spec.Apply = [](const Val &State, const std::string &Op,
                  const Val &Arg) -> std::optional<std::pair<Val, Val>> {
    if (Op == "writeX")
      return std::make_pair(Val::pair(Arg, State.second()), Val::unit());
    if (Op == "writeY")
      return std::make_pair(Val::pair(State.first(), Arg), Val::unit());
    if (Op == "read")
      return std::make_pair(State, State);
    return std::nullopt;
  };
  return Spec;
}

SeqSpec fcsl::counterSeqSpec(int64_t Initial) {
  SeqSpec Spec;
  Spec.Initial = Val::ofInt(Initial);
  Spec.Apply = [](const Val &State, const std::string &Op,
                  const Val &Arg) -> std::optional<std::pair<Val, Val>> {
    (void)Arg;
    if (Op == "incr")
      return std::make_pair(Val::ofInt(State.getInt() + 1), State);
    if (Op == "read")
      return std::make_pair(State, State);
    return std::nullopt;
  };
  return Spec;
}
