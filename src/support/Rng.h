//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xoshiro-style PRNG. Property tests and random graph
/// generation must be reproducible across platforms, so we do not rely on
/// std::mt19937's distribution implementations.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_RNG_H
#define FCSL_SUPPORT_RNG_H

#include <cstdint>

namespace fcsl {

/// Deterministic splitmix64/xorshift generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next();

  /// Returns a value uniformly in [0, Bound); Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den);

private:
  uint64_t State;
};

} // namespace fcsl

#endif // FCSL_SUPPORT_RNG_H
