//===- support/Rng.cpp - Deterministic random number generator -----------===//
//
// Part of fcsl-cpp. See Rng.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>

using namespace fcsl;

uint64_t Rng::next() {
  // splitmix64: good distribution, tiny state, fully deterministic.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  return next() % Bound;
}

bool Rng::chance(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "chance requires a nonzero denominator");
  return nextBelow(Den) < Num;
}
