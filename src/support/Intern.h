//===- support/Intern.h - Hash-consing arena + stable fingerprints -*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical interned-state layer. Every structured value of the model
/// checker (Val, Heap, History, PCMVal) is represented by a handle to an
/// immutable node owned by a process-wide arena; structurally equal values
/// share one node, so equality is pointer comparison, copies are O(1), and
/// hashing reads a precomputed 64-bit structural fingerprint instead of
/// walking the structure.
///
/// Fingerprints are computed from payload bytes and child fingerprints with
/// the fixed mixers below — never from node addresses or std::hash — so they
/// are stable across runs and processes. That stability is what makes them
/// usable as cross-shard dedup keys for the distributed exploration
/// follow-on (see ROADMAP.md) and lets tests pin golden values.
///
/// The arena is lock-striped (64 stripes keyed by fingerprint, matching the
/// visited-set striping in prog/Engine.cpp) so parallel exploration workers
/// intern without contending on one mutex. Nodes are never freed: the arena
/// is a deliberately leaked singleton, which keeps canonical pointers valid
/// for the life of the process (and through static destructors).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_INTERN_H
#define FCSL_SUPPORT_INTERN_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

namespace fcsl {

//===----------------------------------------------------------------------===//
// Fingerprint mixing
//===----------------------------------------------------------------------===//

/// Finalizing scramble (splitmix64): spreads low-entropy inputs (small
/// integers, kind tags) over the full 64-bit space. Unsigned arithmetic
/// only, so the result is identical on every conforming platform.
inline uint64_t fpScramble(uint64_t V) {
  V ^= V >> 30;
  V *= 0xbf58476d1ce4e5b9ULL;
  V ^= V >> 27;
  V *= 0x94d049bb133111ebULL;
  V ^= V >> 31;
  return V;
}

/// Mixes \p V into the running fingerprint \p Seed, order-sensitively.
inline uint64_t fpCombine(uint64_t Seed, uint64_t V) {
  return Seed ^ (fpScramble(V) + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                 (Seed >> 2));
}

/// FNV-1a over the bytes of \p S; used for names and salts.
inline uint64_t fpString(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// FNV-1a over a raw byte range. Fingerprinting a value's canonical codec
/// encoding this way yields a process-stable content address for any
/// serializable state type (the obligation cache keys on these).
inline uint64_t fpBytes(const void *Data, size_t N) {
  uint64_t H = 0xcbf29ce484222325ULL;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Arena statistics
//===----------------------------------------------------------------------===//

/// Per-node-type interning counters.
struct InternTypeStats {
  std::string Name;
  uint64_t Requests = 0; ///< intern() calls.
  uint64_t Nodes = 0;    ///< distinct nodes materialized.
};

/// A snapshot of every arena in the process.
struct InternStats {
  std::vector<InternTypeStats> PerType;

  uint64_t totalRequests() const {
    uint64_t N = 0;
    for (const InternTypeStats &S : PerType)
      N += S.Requests;
    return N;
  }
  uint64_t totalNodes() const {
    uint64_t N = 0;
    for (const InternTypeStats &S : PerType)
      N += S.Nodes;
    return N;
  }
  /// Requests per materialized node; > 1 whenever sharing happened.
  double dedupRatio() const {
    uint64_t Nodes = totalNodes();
    return Nodes == 0 ? 1.0
                      : static_cast<double>(totalRequests()) /
                            static_cast<double>(Nodes);
  }
};

/// Snapshots every registered arena (thread-safe).
InternStats internStats();

namespace detail {

/// Registers a stats provider under \p Name; called once per arena.
void registerArenaStats(const char *Name,
                        std::function<std::pair<uint64_t, uint64_t>()> Fn);

/// A lock-striped hash-consing arena. NodeT must expose a `uint64_t Fp`
/// member (the precomputed structural fingerprint) and
/// `bool samePayload(const NodeT &) const` (structural equality; children
/// held as canonical node pointers compare by address, so "structural"
/// equality is one shallow level deep).
template <typename NodeT> class InternArena {
public:
  explicit InternArena(const char *Name) {
    registerArenaStats(Name, [this] { return snapshot(); });
  }

  InternArena(const InternArena &) = delete;
  InternArena &operator=(const InternArena &) = delete;

  /// Returns the canonical node structurally equal to \p Candidate,
  /// materializing it on first sight. The returned pointer is valid for
  /// the life of the process.
  const NodeT *intern(NodeT &&Candidate) {
    Stripe &S = Stripes[Candidate.Fp & (NumStripes - 1)];
    std::lock_guard<std::mutex> Lock(S.M);
    ++S.Requests;
    auto It = S.Set.find(&Candidate);
    if (It != S.Set.end())
      return *It;
    const NodeT *N = new NodeT(std::move(Candidate));
    S.Set.insert(N);
    return N;
  }

private:
  struct FpHash {
    size_t operator()(const NodeT *N) const {
      return static_cast<size_t>(N->Fp);
    }
  };
  struct PayloadEq {
    bool operator()(const NodeT *A, const NodeT *B) const {
      return A->samePayload(*B);
    }
  };
  struct Stripe {
    std::mutex M;
    std::unordered_set<const NodeT *, FpHash, PayloadEq> Set;
    uint64_t Requests = 0;
  };

  std::pair<uint64_t, uint64_t> snapshot() {
    uint64_t Requests = 0, Nodes = 0;
    for (Stripe &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      Requests += S.Requests;
      Nodes += S.Set.size();
    }
    return {Requests, Nodes};
  }

  static constexpr size_t NumStripes = 64;
  Stripe Stripes[NumStripes];
};

} // namespace detail
} // namespace fcsl

#endif // FCSL_SUPPORT_INTERN_H
