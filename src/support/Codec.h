//===- support/Codec.h - Deterministic binary state codec -------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic binary encoding for the model checker's state types:
/// Val, Heap, History, PCMType, PCMVal, View, GlobalState, and frontier
/// configurations. The format is versioned (magic "FCSL" + a u32 version),
/// little-endian and fixed-width, so encoding the same value always yields
/// the same bytes — on any platform — and decode(encode(x)) == x for every
/// state type (the round-trip guarantee codec_test.cpp pins down).
///
/// This is the serialization layer the distributed/sharded exploration
/// follow-on needs (see ROADMAP.md): a frontier configuration references
/// program AST nodes, which are encoded as indices into a ProgTable — a
/// deterministic pre-order enumeration of every Prog node reachable from a
/// root program and a definition table, identical in every process that
/// builds the same program.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_CODEC_H
#define FCSL_SUPPORT_CODEC_H

#include "concurroid/Footprint.h"
#include "prog/Prog.h"
#include "state/GlobalState.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fcsl {

/// Format version; bump when the wire layout changes.
/// v2: frontier configs carry sleep sets, EnvCloseMask, and footprints.
/// v3: frontier threads carry the symmetry flag (SymChildren).
/// v4: sleep sets and EnvCloseMask left the identity prefix (they are
///     merged wake state, not identity — DESIGN.md §12) and configs carry
///     the dedup-accounting flag (FrontierConfig::Counts).
/// v5: dictionary-streamed frontier frames (DESIGN.md §14): batch frames
///     carry the source shard and per-config ownership fingerprints, and
///     a FrontierBatchDict frame ships each interned node once per
///     connection as a NodeDef, then as a varint dictionary reference.
constexpr uint32_t CodecVersion = 5;

/// Appends fixed-width little-endian primitives to a byte buffer.
class Encoder {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// LEB128 varint: small values (dictionary references, counts) cost one
  /// byte instead of four or eight.
  void vu(uint64_t V) {
    while (V >= 0x80) {
      Buf.push_back(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    Buf.push_back(static_cast<uint8_t>(V));
  }
  /// Zigzag-mapped signed varint.
  void vi(int64_t V) {
    vu((static_cast<uint64_t>(V) << 1) ^
       static_cast<uint64_t>(V >> 63));
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  /// Appends another encoder's buffer verbatim (composite dictionary
  /// definitions are built in a scratch encoder, then spliced in).
  void raw(const std::vector<uint8_t> &Bytes) {
    Buf.insert(Buf.end(), Bytes.begin(), Bytes.end());
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Reads primitives back, fail-soft: the first out-of-bounds or malformed
/// read latches the error flag and every subsequent read returns a default.
/// Callers check failed() once at the end instead of after every field.
class Decoder {
public:
  explicit Decoder(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}
  Decoder(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return Data[Pos - 1];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos - 4 + I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos - 8 + I]) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  /// LEB128 varint; more than ten bytes (or a truncated stream) is
  /// malformed and latches the error flag.
  uint64_t vu() {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 70; Shift += 7) {
      uint8_t B = u8();
      if (Failed)
        return 0;
      if (Shift == 63 && (B & 0xFE)) {
        Failed = true;
        return 0;
      }
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return V;
    }
    Failed = true;
    return 0;
  }
  int64_t vi() {
    uint64_t V = vu();
    return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
  }
  std::string str() {
    uint32_t Len = u32();
    if (!take(Len))
      return std::string();
    return std::string(reinterpret_cast<const char *>(Data) + Pos - Len, Len);
  }

  /// Marks the stream malformed (used by decoders on bad tags).
  void fail() { Failed = true; }

  bool failed() const { return Failed; }
  bool atEnd() const { return Failed || Pos == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

private:
  bool take(size_t N) {
    if (Failed || Size - Pos < N) {
      Failed = true;
      return false;
    }
    Pos += N;
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// Writes the versioned header (magic "FCSL" + CodecVersion).
void encodeHeader(Encoder &E);

/// Consumes and validates the header; on mismatch latches the decoder's
/// error flag and returns false.
bool decodeHeader(Decoder &D);

// Scalar state types. Decoders return defaults once the stream is failed.
void encode(Encoder &E, Ptr P);
Ptr decodePtr(Decoder &D);

void encode(Encoder &E, const Val &V);
Val decodeVal(Decoder &D);

void encode(Encoder &E, const Heap &H);
Heap decodeHeap(Decoder &D);

void encode(Encoder &E, const History &H);
History decodeHistory(Decoder &D);

/// Nullable: liftUndef carriers may be absent.
void encode(Encoder &E, const PCMTypeRef &T);
PCMTypeRef decodePCMType(Decoder &D);

void encode(Encoder &E, const PCMVal &V);
PCMVal decodePCMVal(Decoder &D);

void encode(Encoder &E, const View &V);
View decodeView(Decoder &D);

void encode(Encoder &E, const GlobalState &S);
GlobalState decodeGlobalState(Decoder &D);

void encode(Encoder &E, const FpAtom &A);
FpAtom decodeFpAtom(Decoder &D);

void encode(Encoder &E, const Footprint &F);
Footprint decodeFootprint(Decoder &D);

/// A deterministic enumeration of every Prog node reachable from \p Root
/// and the bodies of \p Defs (pre-order; definition bodies in sorted name
/// order). Two processes that build the same program structurally build
/// the same table, so u32 indices are a portable representation of AST
/// node references.
class ProgTable {
public:
  static constexpr uint32_t NoProg = ~0u;

  explicit ProgTable(const Prog *Root, const DefTable *Defs = nullptr);

  uint32_t indexOf(const Prog *P) const; ///< asserts P was enumerated.
  const Prog *progAt(uint32_t I) const;  ///< asserts I < size().
  size_t size() const { return Nodes.size(); }

private:
  void visit(const Prog *P);

  std::vector<const Prog *> Nodes;
  std::map<const Prog *, uint32_t> Index;
};

/// One suspended continuation frame of a frontier thread, with program
/// references lowered to ProgTable indices (NoProg encodes "none").
struct FrontierFrame {
  uint8_t Kind = 0; ///< mirrors the engine's Frame::Kind tags.
  uint32_t Node = ProgTable::NoProg;
  uint32_t Rest = ProgTable::NoProg;
  std::string Var;
  VarEnv Env;

  friend bool operator==(const FrontierFrame &A, const FrontierFrame &B) {
    return A.Kind == B.Kind && A.Node == B.Node && A.Rest == B.Rest &&
           A.Var == B.Var && A.Env == B.Env;
  }
};

/// One thread of a frontier configuration.
struct FrontierThread {
  ThreadId Id = 0;
  bool Waiting = false;
  /// This thread forked structurally-equivalent children with equal
  /// contributions (DESIGN.md §11); part of config identity, so it must
  /// survive the wire or shards would merge symmetric and asymmetric
  /// parents.
  bool SymChildren = false;
  std::optional<Val> Done;
  std::vector<FrontierFrame> Frames;

  friend bool operator==(const FrontierThread &A, const FrontierThread &B) {
    return A.Id == B.Id && A.Waiting == B.Waiting &&
           A.SymChildren == B.SymChildren && A.Done == B.Done &&
           A.Frames == B.Frames;
  }
};

/// One sleep-set entry of a frontier configuration (DESIGN.md §9): a step
/// already explored along a sibling branch, suppressed until a dependent
/// step wakes it. Sleep entries are *wake payload*, not config identity
/// (v4): the receiving shard intersects them into its visited node, so
/// backtracking state travels with the owning config across processes.
struct FrontierSleep {
  bool IsEnv = false;
  ThreadId T = 0;
  uint32_t ActNode = ProgTable::NoProg;
  uint64_t EnvIdx = 0;
  Footprint Fp;

  friend bool operator==(const FrontierSleep &A, const FrontierSleep &B) {
    return A.IsEnv == B.IsEnv && A.T == B.T && A.ActNode == B.ActNode &&
           A.EnvIdx == B.EnvIdx && A.Fp == B.Fp;
  }
};

/// A portable frontier configuration: the instrumented global state plus
/// every thread's control stack, the POR wake payload (sleep set and
/// terminal env-closure mask), and the dedup-accounting flag. This is the
/// unit of work sharded exploration ships between processes (src/dist/,
/// DESIGN.md §10).
struct FrontierConfig {
  GlobalState GS;
  std::vector<FrontierThread> Threads;
  std::vector<FrontierSleep> Sleep;
  uint32_t EnvCloseMask = 0;
  /// False when the generating step was a wakeup re-execution: the edge
  /// was produced (and accounted) once before, so the receiving shard
  /// merges the wake payload without counting another dedup hit. Keeps
  /// sharded counters bit-identical to the in-process engine.
  bool Counts = true;

  friend bool operator==(const FrontierConfig &A, const FrontierConfig &B) {
    return A.GS == B.GS && A.Threads == B.Threads && A.Sleep == B.Sleep &&
           A.EnvCloseMask == B.EnvCloseMask && A.Counts == B.Counts;
  }
};

void encode(Encoder &E, const FrontierConfig &C);

/// Encodes \p C and returns the length in bytes of its *identity prefix*:
/// the bytes, counted from the first byte this call appends, that cover
/// exactly the components the engine's config equality compares (state
/// and threads). The wake payload — sleep entries, EnvCloseMask, and the
/// Counts flag, all merged rather than compared on arrival — is appended
/// after the prefix, so two configs that the engine deduplicates against
/// each other encode to identical prefixes. Shard ownership fingerprints
/// hash the prefix only.
size_t encodeFrontierConfigPrefix(Encoder &E, const FrontierConfig &C);

FrontierConfig decodeFrontierConfig(Decoder &D);

//===----------------------------------------------------------------------===//
// Dictionary-scoped encode/decode contexts (DESIGN.md §14)
//===----------------------------------------------------------------------===//
//
// FCSL states are hash-consed: two configs that share a heap, history, or
// auxiliary subtree share the interned node, and the node's handle is a
// process-stable fingerprint. The plain codec above re-serializes every
// shared subtree per config; the dictionary contexts below serialize each
// node once per logical connection. An encoder context assigns every
// distinct node a dense index the first time it appears, appends its
// definition (children as references to lower indices) to a NodeDef
// stream, and thereafter encodes the node as a varint reference. The
// matching decoder context replays the definition stream into a table and
// resolves references against it — an out-of-range or kind-mismatched
// reference is malformed, never a crash.

/// The definition tags of the NodeDef stream. One shared index space: the
/// Nth definition in the stream — of any kind — gets index N. Thread and
/// LabelState are *composite* definitions: a whole thread stack or one
/// label's global-state slice, interned by its encoded body. Successive
/// configs mostly differ in one thread and one label slice, so the others
/// collapse to single varint references.
enum class DictDef : uint8_t {
  Val = 1,
  Heap = 2,
  Hist = 3,
  Pcm = 4,
  PcmType = 5,
  Str = 6,
  Thread = 7,
  LabelState = 8,
};

/// The sender side of one connection's dictionary. Feed every config of
/// the connection through the same context, in send order; ship each
/// call's definition bytes before (or with) its reference bytes.
class NodeDictEncoder {
public:
  /// Encodes \p C as dictionary references into \p Refs, appending any
  /// definitions this config introduces to \p Defs.
  void encodeConfig(Encoder &Defs, Encoder &Refs, const FrontierConfig &C);

  /// Distinct nodes interned so far (== next index to assign).
  size_t size() const { return Count; }

private:
  uint32_t internVal(Encoder &Defs, const Val &V);
  uint32_t internHeap(Encoder &Defs, const Heap &H);
  uint32_t internHist(Encoder &Defs, const History &H);
  uint32_t internPcm(Encoder &Defs, const PCMVal &V);
  uint32_t internPcmType(Encoder &Defs, const PCMTypeRef &T);
  uint32_t internStr(Encoder &Defs, const std::string &S);
  uint32_t internThread(Encoder &Defs, const FrontierThread &T);
  uint32_t internLabelState(Encoder &Defs, const GlobalState &GS, Label L);

  struct HistHash {
    size_t operator()(const History &H) const {
      return static_cast<size_t>(H.fingerprint());
    }
  };

  std::unordered_map<Val, uint32_t> ValIdx;
  std::unordered_map<Heap, uint32_t> HeapIdx;
  std::unordered_map<History, uint32_t, HistHash> HistIdx;
  std::unordered_map<PCMVal, uint32_t> PcmIdx;
  /// PCMTypes are not interned (deep equality); key by encoded bytes.
  std::map<std::vector<uint8_t>, uint32_t> TypeIdx;
  std::unordered_map<std::string, uint32_t> StrIdx;
  /// Composite definitions are keyed by their encoded bodies: child
  /// references are deterministic per dictionary, so byte equality is
  /// structural equality.
  std::map<std::vector<uint8_t>, uint32_t> ThreadIdx;
  std::map<std::vector<uint8_t>, uint32_t> LabelIdx;
  uint32_t Count = 0;
};

/// The receiver side: one per peer connection. feedDefs() must see the
/// definition streams in send order; decodeConfig() then resolves
/// references. Corruption latches — after a malformed definition stream
/// the table is unusable and every later decode fails.
class NodeDictDecoder {
public:
  /// Replays one frame's definition stream into the table. Returns false
  /// (and latches corrupt()) on any malformed definition.
  bool feedDefs(const uint8_t *Data, size_t N);

  /// Decodes one dictionary-encoded config. Malformed references latch
  /// \p D's error flag; callers check D.failed() as with the plain codec.
  FrontierConfig decodeConfig(Decoder &D);

  bool corrupt() const { return Corrupt; }
  size_t size() const { return Entries.size(); }

private:
  const Val *valAt(Decoder &D);
  const Heap *heapAt(Decoder &D);
  const History *histAt(Decoder &D);
  const PCMVal *pcmAt(Decoder &D);
  const PCMTypeRef *typeAt(Decoder &D);
  const std::string *strAt(Decoder &D);

  struct Entry {
    DictDef Kind = DictDef::Val;
    Val V;
    Heap H;
    History Hist;
    PCMVal P;
    PCMTypeRef T;
    std::string S;
    FrontierThread FT;
    /// One label's global-state slice (DictDef::LabelState).
    Label LsLabel = 0;
    PCMTypeRef LsType;
    Heap LsJoint;
    PCMVal LsEnv;
    bool LsClosed = false;
    std::vector<std::pair<ThreadId, PCMVal>> LsSelves;
  };
  const Entry *entryAt(Decoder &D, DictDef Kind);

  std::vector<Entry> Entries;
  bool Corrupt = false;
};

} // namespace fcsl

#endif // FCSL_SUPPORT_CODEC_H
