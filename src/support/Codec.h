//===- support/Codec.h - Deterministic binary state codec -------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic binary encoding for the model checker's state types:
/// Val, Heap, History, PCMType, PCMVal, View, GlobalState, and frontier
/// configurations. The format is versioned (magic "FCSL" + a u32 version),
/// little-endian and fixed-width, so encoding the same value always yields
/// the same bytes — on any platform — and decode(encode(x)) == x for every
/// state type (the round-trip guarantee codec_test.cpp pins down).
///
/// This is the serialization layer the distributed/sharded exploration
/// follow-on needs (see ROADMAP.md): a frontier configuration references
/// program AST nodes, which are encoded as indices into a ProgTable — a
/// deterministic pre-order enumeration of every Prog node reachable from a
/// root program and a definition table, identical in every process that
/// builds the same program.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_CODEC_H
#define FCSL_SUPPORT_CODEC_H

#include "concurroid/Footprint.h"
#include "prog/Prog.h"
#include "state/GlobalState.h"

#include <cstdint>
#include <vector>

namespace fcsl {

/// Format version; bump when the wire layout changes.
/// v2: frontier configs carry sleep sets, EnvCloseMask, and footprints.
/// v3: frontier threads carry the symmetry flag (SymChildren).
/// v4: sleep sets and EnvCloseMask left the identity prefix (they are
///     merged wake state, not identity — DESIGN.md §12) and configs carry
///     the dedup-accounting flag (FrontierConfig::Counts).
constexpr uint32_t CodecVersion = 4;

/// Appends fixed-width little-endian primitives to a byte buffer.
class Encoder {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Reads primitives back, fail-soft: the first out-of-bounds or malformed
/// read latches the error flag and every subsequent read returns a default.
/// Callers check failed() once at the end instead of after every field.
class Decoder {
public:
  explicit Decoder(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Size(Buf.size()) {}
  Decoder(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return Data[Pos - 1];
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos - 4 + I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos - 8 + I]) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t Len = u32();
    if (!take(Len))
      return std::string();
    return std::string(reinterpret_cast<const char *>(Data) + Pos - Len, Len);
  }

  /// Marks the stream malformed (used by decoders on bad tags).
  void fail() { Failed = true; }

  bool failed() const { return Failed; }
  bool atEnd() const { return Failed || Pos == Size; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

private:
  bool take(size_t N) {
    if (Failed || Size - Pos < N) {
      Failed = true;
      return false;
    }
    Pos += N;
    return true;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// Writes the versioned header (magic "FCSL" + CodecVersion).
void encodeHeader(Encoder &E);

/// Consumes and validates the header; on mismatch latches the decoder's
/// error flag and returns false.
bool decodeHeader(Decoder &D);

// Scalar state types. Decoders return defaults once the stream is failed.
void encode(Encoder &E, Ptr P);
Ptr decodePtr(Decoder &D);

void encode(Encoder &E, const Val &V);
Val decodeVal(Decoder &D);

void encode(Encoder &E, const Heap &H);
Heap decodeHeap(Decoder &D);

void encode(Encoder &E, const History &H);
History decodeHistory(Decoder &D);

/// Nullable: liftUndef carriers may be absent.
void encode(Encoder &E, const PCMTypeRef &T);
PCMTypeRef decodePCMType(Decoder &D);

void encode(Encoder &E, const PCMVal &V);
PCMVal decodePCMVal(Decoder &D);

void encode(Encoder &E, const View &V);
View decodeView(Decoder &D);

void encode(Encoder &E, const GlobalState &S);
GlobalState decodeGlobalState(Decoder &D);

void encode(Encoder &E, const FpAtom &A);
FpAtom decodeFpAtom(Decoder &D);

void encode(Encoder &E, const Footprint &F);
Footprint decodeFootprint(Decoder &D);

/// A deterministic enumeration of every Prog node reachable from \p Root
/// and the bodies of \p Defs (pre-order; definition bodies in sorted name
/// order). Two processes that build the same program structurally build
/// the same table, so u32 indices are a portable representation of AST
/// node references.
class ProgTable {
public:
  static constexpr uint32_t NoProg = ~0u;

  explicit ProgTable(const Prog *Root, const DefTable *Defs = nullptr);

  uint32_t indexOf(const Prog *P) const; ///< asserts P was enumerated.
  const Prog *progAt(uint32_t I) const;  ///< asserts I < size().
  size_t size() const { return Nodes.size(); }

private:
  void visit(const Prog *P);

  std::vector<const Prog *> Nodes;
  std::map<const Prog *, uint32_t> Index;
};

/// One suspended continuation frame of a frontier thread, with program
/// references lowered to ProgTable indices (NoProg encodes "none").
struct FrontierFrame {
  uint8_t Kind = 0; ///< mirrors the engine's Frame::Kind tags.
  uint32_t Node = ProgTable::NoProg;
  uint32_t Rest = ProgTable::NoProg;
  std::string Var;
  VarEnv Env;

  friend bool operator==(const FrontierFrame &A, const FrontierFrame &B) {
    return A.Kind == B.Kind && A.Node == B.Node && A.Rest == B.Rest &&
           A.Var == B.Var && A.Env == B.Env;
  }
};

/// One thread of a frontier configuration.
struct FrontierThread {
  ThreadId Id = 0;
  bool Waiting = false;
  /// This thread forked structurally-equivalent children with equal
  /// contributions (DESIGN.md §11); part of config identity, so it must
  /// survive the wire or shards would merge symmetric and asymmetric
  /// parents.
  bool SymChildren = false;
  std::optional<Val> Done;
  std::vector<FrontierFrame> Frames;

  friend bool operator==(const FrontierThread &A, const FrontierThread &B) {
    return A.Id == B.Id && A.Waiting == B.Waiting &&
           A.SymChildren == B.SymChildren && A.Done == B.Done &&
           A.Frames == B.Frames;
  }
};

/// One sleep-set entry of a frontier configuration (DESIGN.md §9): a step
/// already explored along a sibling branch, suppressed until a dependent
/// step wakes it. Sleep entries are *wake payload*, not config identity
/// (v4): the receiving shard intersects them into its visited node, so
/// backtracking state travels with the owning config across processes.
struct FrontierSleep {
  bool IsEnv = false;
  ThreadId T = 0;
  uint32_t ActNode = ProgTable::NoProg;
  uint64_t EnvIdx = 0;
  Footprint Fp;

  friend bool operator==(const FrontierSleep &A, const FrontierSleep &B) {
    return A.IsEnv == B.IsEnv && A.T == B.T && A.ActNode == B.ActNode &&
           A.EnvIdx == B.EnvIdx && A.Fp == B.Fp;
  }
};

/// A portable frontier configuration: the instrumented global state plus
/// every thread's control stack, the POR wake payload (sleep set and
/// terminal env-closure mask), and the dedup-accounting flag. This is the
/// unit of work sharded exploration ships between processes (src/dist/,
/// DESIGN.md §10).
struct FrontierConfig {
  GlobalState GS;
  std::vector<FrontierThread> Threads;
  std::vector<FrontierSleep> Sleep;
  uint32_t EnvCloseMask = 0;
  /// False when the generating step was a wakeup re-execution: the edge
  /// was produced (and accounted) once before, so the receiving shard
  /// merges the wake payload without counting another dedup hit. Keeps
  /// sharded counters bit-identical to the in-process engine.
  bool Counts = true;

  friend bool operator==(const FrontierConfig &A, const FrontierConfig &B) {
    return A.GS == B.GS && A.Threads == B.Threads && A.Sleep == B.Sleep &&
           A.EnvCloseMask == B.EnvCloseMask && A.Counts == B.Counts;
  }
};

void encode(Encoder &E, const FrontierConfig &C);

/// Encodes \p C and returns the length in bytes of its *identity prefix*:
/// the bytes, counted from the first byte this call appends, that cover
/// exactly the components the engine's config equality compares (state
/// and threads). The wake payload — sleep entries, EnvCloseMask, and the
/// Counts flag, all merged rather than compared on arrival — is appended
/// after the prefix, so two configs that the engine deduplicates against
/// each other encode to identical prefixes. Shard ownership fingerprints
/// hash the prefix only.
size_t encodeFrontierConfigPrefix(Encoder &E, const FrontierConfig &C);

FrontierConfig decodeFrontierConfig(Decoder &D);

} // namespace fcsl

#endif // FCSL_SUPPORT_CODEC_H
