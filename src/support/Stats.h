//===- support/Stats.h - Counters and wall-clock timers ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters and a scoped wall-clock timer. The verification session
/// uses these to report per-program effort, the analogue of the paper's
/// Table 1 LOC/build-time statistics.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_STATS_H
#define FCSL_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace fcsl {

/// A bag of named monotone counters.
class StatBag {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Returns the value of \p Name, or zero if never touched.
  uint64_t get(const std::string &Name) const;

  /// Merges all counters of \p Other into this bag.
  void merge(const StatBag &Other);

  const std::map<std::string, uint64_t> &all() const { return Counters; }

private:
  std::map<std::string, uint64_t> Counters;
};

/// Measures wall-clock time between construction and elapsedMs() calls.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Returns milliseconds elapsed since construction (fractional).
  double elapsedMs() const;

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace fcsl

#endif // FCSL_SUPPORT_STATS_H
