//===- support/Format.cpp - String formatting helpers --------------------===//
//
// Part of fcsl-cpp. See Format.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

using namespace fcsl;

std::string fcsl::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "invalid format string");
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string fcsl::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string fcsl::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string fcsl::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

void TextTable::setHeader(std::vector<std::string> Cells) {
  assert(Rows.empty() && "header must precede rows");
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::setRightAligned(unsigned Index) {
  if (RightAligned.size() <= Index)
    RightAligned.resize(Index + 1, false);
  RightAligned[Index] = true;
}

std::string TextTable::render() const {
  // Compute per-column widths across header and body.
  std::vector<unsigned> Widths;
  auto Grow = [&](const std::vector<std::string> &Row) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max<unsigned>(Widths[I],
                                     static_cast<unsigned>(Row[I].size()));
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0, E = Widths.size(); I != E; ++I) {
      std::string Cell = I < Row.size() ? Row[I] : std::string();
      bool Right = I < RightAligned.size() && RightAligned[I];
      Line += Right ? padLeft(Cell, Widths[I]) : padRight(Cell, Widths[I]);
      if (I + 1 != E)
        Line += "  ";
    }
    // Trim trailing spaces so the output is stable under diffing.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out;
  if (!Header.empty()) {
    Out += RenderRow(Header);
    Out += '\n';
    unsigned Total = 0;
    for (size_t I = 0, E = Widths.size(); I != E; ++I)
      Total += Widths[I] + (I + 1 != E ? 2 : 0);
    Out += std::string(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows) {
    Out += RenderRow(Row);
    Out += '\n';
  }
  return Out;
}
