//===- support/Stats.cpp - Counters and wall-clock timers ----------------===//
//
// Part of fcsl-cpp. See Stats.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

using namespace fcsl;

void StatBag::add(const std::string &Name, uint64_t Delta) {
  Counters[Name] += Delta;
}

uint64_t StatBag::get(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

void StatBag::merge(const StatBag &Other) {
  for (const auto &Entry : Other.Counters)
    Counters[Entry.first] += Entry.second;
}

double Timer::elapsedMs() const {
  auto Delta = Clock::now() - Start;
  return std::chrono::duration<double, std::milli>(Delta).count();
}
