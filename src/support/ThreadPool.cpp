//===- support/ThreadPool.cpp - Lightweight task pool ----------------------===//
//
// Part of fcsl-cpp. See ThreadPool.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

using namespace fcsl;

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "submitting an empty task");
  {
    std::lock_guard<std::mutex> Lock(M);
    Tasks.push_back(std::move(Task));
    ++Pending;
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(M);
  AllDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::workerLoop() {
  ParallelRegionGuard Region;
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkReady.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Stopping and drained.
      Task = std::move(Tasks.front());
      Tasks.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Pending == 0)
        AllDone.notify_all();
    }
  }
}

void fcsl::parallelFor(size_t N, unsigned Jobs,
                       const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Jobs <= 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  unsigned Workers = static_cast<unsigned>(
      std::min<size_t>(Jobs, N));
  std::atomic<size_t> NextIndex{0};
  {
    ThreadPool Pool(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.submit([&] {
        for (size_t I = NextIndex.fetch_add(1); I < N;
             I = NextIndex.fetch_add(1))
          Fn(I);
      });
    Pool.wait();
  }
}

unsigned fcsl::hardwareJobs() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

namespace {

thread_local unsigned ParallelDepth = 0;

std::atomic<unsigned> &defaultJobsSlot() {
  // 0 = "not set yet": fall back to FCSL_JOBS / 1 on first read.
  static std::atomic<unsigned> Slot{0};
  return Slot;
}

unsigned envJobs() {
  static const unsigned Parsed = [] {
    const char *Env = std::getenv("FCSL_JOBS");
    if (!Env || !*Env)
      return 1u;
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End == Env || *End != '\0' || V < 0)
      return 1u;
    return V == 0 ? hardwareJobs() : static_cast<unsigned>(V);
  }();
  return Parsed;
}

} // namespace

bool fcsl::inParallelRegion() { return ParallelDepth > 0; }

ParallelRegionGuard::ParallelRegionGuard() { ++ParallelDepth; }
ParallelRegionGuard::~ParallelRegionGuard() { --ParallelDepth; }

void fcsl::setDefaultJobs(unsigned Jobs) {
  defaultJobsSlot().store(Jobs == 0 ? hardwareJobs() : Jobs);
}

unsigned fcsl::defaultJobs() {
  unsigned Set = defaultJobsSlot().load();
  return Set == 0 ? envJobs() : Set;
}

unsigned fcsl::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  return inParallelRegion() ? 1 : defaultJobs();
}

unsigned fcsl::effectiveJobs(unsigned Requested, size_t WorkItems) {
  if (WorkItems <= 1)
    return 1;
  unsigned Resolved = resolveJobs(Requested);
  if (Resolved <= 1)
    return 1;
  // Thread spin-up costs more than it saves on a single hardware thread,
  // and for a handful of items the pool barely overlaps anything.
  if (hardwareJobs() == 1 || WorkItems < 4)
    return 1;
  return static_cast<unsigned>(std::min<size_t>(Resolved, WorkItems));
}
