//===- support/Intern.cpp - Hash-consing arena statistics ------------------===//
//
// Part of fcsl-cpp. See Intern.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Intern.h"

using namespace fcsl;

namespace {

struct StatsRegistry {
  std::mutex M;
  std::vector<std::pair<std::string,
                        std::function<std::pair<uint64_t, uint64_t>()>>>
      Providers;
};

// Leaked singleton: arenas register during static init and live forever,
// so the registry must too.
StatsRegistry &registry() {
  static StatsRegistry *R = new StatsRegistry;
  return *R;
}

} // namespace

void fcsl::detail::registerArenaStats(
    const char *Name, std::function<std::pair<uint64_t, uint64_t>()> Fn) {
  StatsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Providers.emplace_back(Name, std::move(Fn));
}

InternStats fcsl::internStats() {
  StatsRegistry &R = registry();
  InternStats Out;
  std::lock_guard<std::mutex> Lock(R.M);
  for (const auto &Entry : R.Providers) {
    auto [Requests, Nodes] = Entry.second();
    Out.PerType.push_back(InternTypeStats{Entry.first, Requests, Nodes});
  }
  return Out;
}
