//===- support/Dot.h - Graphviz DOT emitter ---------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny Graphviz DOT writer used to regenerate the paper's Figure 5
/// (dependencies between concurrent libraries) from the live registry.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_DOT_H
#define FCSL_SUPPORT_DOT_H

#include <string>
#include <utility>
#include <vector>

namespace fcsl {

/// Accumulates nodes and edges and renders a digraph in DOT syntax.
class DotGraph {
public:
  explicit DotGraph(std::string Name) : Name(std::move(Name)) {}

  /// Adds a node with an optional display label (defaults to the id).
  void addNode(const std::string &Id, const std::string &Label = "");

  /// Adds a directed edge From -> To (nodes are added implicitly).
  void addEdge(const std::string &From, const std::string &To);

  /// Renders the graph in DOT syntax.
  std::string render() const;

  /// Renders an indented ASCII adjacency listing ("A -> B, C").
  std::string renderAscii() const;

  /// Returns true if the directed graph has no cycles.
  bool isAcyclic() const;

  const std::vector<std::pair<std::string, std::string>> &edges() const {
    return Edges;
  }

private:
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Nodes; // (id, label)
  std::vector<std::pair<std::string, std::string>> Edges; // (from, to)
};

} // namespace fcsl

#endif // FCSL_SUPPORT_DOT_H
