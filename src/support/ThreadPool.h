//===- support/ThreadPool.h - Lightweight task pool -------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool and a `parallelFor` helper used to
/// parallelize the verification pipeline: obligation discharge in
/// `spec/Session`, instance-level fan-out in `spec/Verifier`, and tests.
/// The exploration engine itself (`prog/Engine`) uses its own
/// work-stealing scheduler; this pool is for coarse-grained, independent
/// units of work.
///
/// Job-count policy lives here too: `EngineOptions::Jobs == 0` (and
/// `VerificationSession::run(0)`) mean "use the process default", which is
/// the `FCSL_JOBS` environment variable when set, else 1. Tools expose it
/// as `--jobs N` via `setDefaultJobs`. Nested parallel regions resolve a
/// default job count to 1 so a parallel session does not multiply with a
/// parallel engine underneath it.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_THREADPOOL_H
#define FCSL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fcsl {

/// A fixed-size pool of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

private:
  void workerLoop();

  std::mutex M;
  std::condition_variable WorkReady; ///< signalled on submit/shutdown.
  std::condition_variable AllDone;   ///< signalled when Pending hits 0.
  std::deque<std::function<void()>> Tasks;
  std::vector<std::thread> Threads;
  size_t Pending = 0; ///< queued + running tasks.
  bool Stopping = false;
};

/// Runs `Fn(I)` for every I in [0, N), fanning out over up to \p Jobs
/// worker threads. Jobs <= 1 (or N <= 1) runs inline on the caller.
/// Worker-side invocations execute inside a parallel region (see
/// `inParallelRegion`), so nested default job counts resolve to 1.
void parallelFor(size_t N, unsigned Jobs,
                 const std::function<void(size_t)> &Fn);

/// `std::thread::hardware_concurrency`, clamped to at least 1.
unsigned hardwareJobs();

/// True while the calling thread is executing a task spawned by
/// `parallelFor` or by the exploration engine's worker team.
bool inParallelRegion();

/// RAII marker for a parallel region on the current thread.
class ParallelRegionGuard {
public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard &) = delete;
  ParallelRegionGuard &operator=(const ParallelRegionGuard &) = delete;
};

/// Sets the process-default job count used when a requested count is 0.
/// Passing 0 selects `hardwareJobs()`.
void setDefaultJobs(unsigned Jobs);

/// The process-default job count: the last `setDefaultJobs` value, else
/// the `FCSL_JOBS` environment variable, else 1.
unsigned defaultJobs();

/// Resolves a requested job count: nonzero counts pass through; 0 becomes
/// `defaultJobs()`, forced to 1 inside a parallel region (no
/// multiplicative nesting unless explicitly asked for).
unsigned resolveJobs(unsigned Requested);

/// Resolves a job count for a fan-out over \p WorkItems independent units:
/// `resolveJobs(Requested)` clamped to the item count, and forced serial
/// when parallelism cannot pay for itself — a single-core host, or too few
/// items to amortize pool spin-up (fixes the table-1 case where the
/// parallel path was slower than serial on one core).
unsigned effectiveJobs(unsigned Requested, size_t WorkItems);

} // namespace fcsl

#endif // FCSL_SUPPORT_THREADPOOL_H
