//===- support/Codec.cpp - Deterministic binary state codec ----------------===//
//
// Part of fcsl-cpp. See Codec.h for the interface and format notes.
//
//===----------------------------------------------------------------------===//

#include "support/Codec.h"

#include <cassert>

using namespace fcsl;

static const char CodecMagic[4] = {'F', 'C', 'S', 'L'};

void fcsl::encodeHeader(Encoder &E) {
  for (char C : CodecMagic)
    E.u8(static_cast<uint8_t>(C));
  E.u32(CodecVersion);
}

bool fcsl::decodeHeader(Decoder &D) {
  for (char C : CodecMagic)
    if (D.u8() != static_cast<uint8_t>(C)) {
      D.fail();
      return false;
    }
  if (D.u32() != CodecVersion) {
    D.fail();
    return false;
  }
  return !D.failed();
}

//===----------------------------------------------------------------------===//
// Ptr / Val
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, Ptr P) { E.u32(P.id()); }

Ptr fcsl::decodePtr(Decoder &D) { return Ptr(D.u32()); }

void fcsl::encode(Encoder &E, const Val &V) {
  E.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Val::Kind::Unit:
    break;
  case Val::Kind::Int:
    E.i64(V.getInt());
    break;
  case Val::Kind::Bool:
    E.u8(V.getBool());
    break;
  case Val::Kind::Pointer:
    encode(E, V.getPtr());
    break;
  case Val::Kind::Node: {
    const NodeCell &N = V.getNode();
    E.u8(N.Marked);
    encode(E, N.Left);
    encode(E, N.Right);
    break;
  }
  case Val::Kind::Pair:
    encode(E, V.first());
    encode(E, V.second());
    break;
  }
}

Val fcsl::decodeVal(Decoder &D) {
  switch (static_cast<Val::Kind>(D.u8())) {
  case Val::Kind::Unit:
    return Val::unit();
  case Val::Kind::Int:
    return Val::ofInt(D.i64());
  case Val::Kind::Bool:
    return Val::ofBool(D.u8() != 0);
  case Val::Kind::Pointer:
    return Val::ofPtr(decodePtr(D));
  case Val::Kind::Node: {
    bool Marked = D.u8() != 0;
    Ptr Left = decodePtr(D);
    Ptr Right = decodePtr(D);
    return Val::node(Marked, Left, Right);
  }
  case Val::Kind::Pair: {
    Val First = decodeVal(D);
    Val Second = decodeVal(D);
    return Val::pair(std::move(First), std::move(Second));
  }
  }
  D.fail();
  return Val();
}

//===----------------------------------------------------------------------===//
// Heap / History
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const Heap &H) {
  E.u32(static_cast<uint32_t>(H.size()));
  for (const auto &Cell : H) {
    encode(E, Cell.first);
    encode(E, Cell.second);
  }
}

Heap fcsl::decodeHeap(Decoder &D) {
  Heap H;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Ptr P = decodePtr(D);
    Val V = decodeVal(D);
    if (D.failed() || P.isNull() || H.contains(P)) {
      D.fail();
      break;
    }
    H.insert(P, std::move(V));
  }
  return D.failed() ? Heap() : H;
}

void fcsl::encode(Encoder &E, const History &H) {
  E.u32(static_cast<uint32_t>(H.size()));
  for (const auto &Entry : H) {
    E.u64(Entry.first);
    encode(E, Entry.second.Before);
    encode(E, Entry.second.After);
  }
}

History fcsl::decodeHistory(Decoder &D) {
  History H;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    uint64_t Stamp = D.u64();
    Val Before = decodeVal(D);
    Val After = decodeVal(D);
    if (D.failed() || Stamp == 0 || H.contains(Stamp)) {
      D.fail();
      break;
    }
    H.add(Stamp, HistEntry{std::move(Before), std::move(After)});
  }
  return D.failed() ? History() : H;
}

//===----------------------------------------------------------------------===//
// PCMType / PCMVal
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const PCMTypeRef &T) {
  // Tag 0 is "absent"; otherwise kind + 1 so the nullable case is explicit.
  if (!T) {
    E.u8(0);
    return;
  }
  E.u8(static_cast<uint8_t>(T->kind()) + 1);
  switch (T->kind()) {
  case PCMKind::Pair:
    encode(E, T->first());
    encode(E, T->second());
    break;
  case PCMKind::Lift:
    encode(E, T->inner());
    break;
  default:
    break;
  }
}

PCMTypeRef fcsl::decodePCMType(Decoder &D) {
  uint8_t Tag = D.u8();
  if (Tag == 0)
    return nullptr;
  switch (static_cast<PCMKind>(Tag - 1)) {
  case PCMKind::Nat:
    return PCMType::nat();
  case PCMKind::Mutex:
    return PCMType::mutex();
  case PCMKind::PtrSet:
    return PCMType::ptrSet();
  case PCMKind::HeapPCM:
    return PCMType::heap();
  case PCMKind::Hist:
    return PCMType::hist();
  case PCMKind::Pair: {
    PCMTypeRef First = decodePCMType(D);
    PCMTypeRef Second = decodePCMType(D);
    if (D.failed() || !First || !Second) {
      D.fail();
      return nullptr;
    }
    return PCMType::pairOf(std::move(First), std::move(Second));
  }
  case PCMKind::Lift: {
    PCMTypeRef Inner = decodePCMType(D);
    if (D.failed() || !Inner) {
      D.fail();
      return nullptr;
    }
    return PCMType::lifted(std::move(Inner));
  }
  }
  D.fail();
  return nullptr;
}

void fcsl::encode(Encoder &E, const PCMVal &V) {
  E.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case PCMKind::Nat:
    E.u64(V.getNat());
    break;
  case PCMKind::Mutex:
    E.u8(V.isOwn());
    break;
  case PCMKind::PtrSet: {
    const std::set<Ptr> &S = V.getPtrSet();
    E.u32(static_cast<uint32_t>(S.size()));
    for (Ptr P : S)
      encode(E, P);
    break;
  }
  case PCMKind::HeapPCM:
    encode(E, V.getHeap());
    break;
  case PCMKind::Hist:
    encode(E, V.getHist());
    break;
  case PCMKind::Pair:
    encode(E, V.first());
    encode(E, V.second());
    break;
  case PCMKind::Lift:
    E.u8(!V.isLiftUndef());
    if (V.isLiftUndef())
      encode(E, PCMTypeRef()); // carrier advisory; undefs share one node.
    else
      encode(E, V.liftInner());
    break;
  }
}

PCMVal fcsl::decodePCMVal(Decoder &D) {
  switch (static_cast<PCMKind>(D.u8())) {
  case PCMKind::Nat:
    return PCMVal::ofNat(D.u64());
  case PCMKind::Mutex:
    return D.u8() != 0 ? PCMVal::mutexOwn() : PCMVal::mutexFree();
  case PCMKind::PtrSet: {
    uint32_t Count = D.u32();
    std::set<Ptr> S;
    for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
      Ptr P = decodePtr(D);
      if (P.isNull() || !S.insert(P).second) {
        D.fail();
        break;
      }
    }
    if (D.failed())
      return PCMVal();
    return PCMVal::ofPtrSet(std::move(S));
  }
  case PCMKind::HeapPCM:
    return PCMVal::ofHeap(decodeHeap(D));
  case PCMKind::Hist:
    return PCMVal::ofHist(decodeHistory(D));
  case PCMKind::Pair: {
    PCMVal First = decodePCMVal(D);
    PCMVal Second = decodePCMVal(D);
    return PCMVal::makePair(std::move(First), std::move(Second));
  }
  case PCMKind::Lift: {
    bool Defined = D.u8() != 0;
    if (!Defined)
      return PCMVal::liftUndef(decodePCMType(D));
    return PCMVal::liftDef(decodePCMVal(D));
  }
  }
  D.fail();
  return PCMVal();
}

//===----------------------------------------------------------------------===//
// View / GlobalState
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const View &V) {
  E.u32(static_cast<uint32_t>(V.numLabels()));
  for (const auto &Entry : V) {
    E.u32(Entry.first);
    encode(E, Entry.second.Self);
    encode(E, Entry.second.Joint);
    encode(E, Entry.second.Other);
  }
}

View fcsl::decodeView(Decoder &D) {
  View V;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Label L = D.u32();
    PCMVal Self = decodePCMVal(D);
    Heap Joint = decodeHeap(D);
    PCMVal Other = decodePCMVal(D);
    if (D.failed() || V.hasLabel(L)) {
      D.fail();
      break;
    }
    V.addLabel(L, LabelSlice{std::move(Self), std::move(Joint),
                             std::move(Other)});
  }
  return D.failed() ? View() : V;
}

void fcsl::encode(Encoder &E, const GlobalState &S) {
  std::vector<Label> Labels = S.labels();
  E.u32(static_cast<uint32_t>(Labels.size()));
  for (Label L : Labels) {
    E.u32(L);
    encode(E, S.selfType(L));
    encode(E, S.joint(L));
    encode(E, S.envSelf(L));
    E.u8(S.isEnvClosed(L));
    const std::map<ThreadId, PCMVal> &Selves = S.selves(L);
    E.u32(static_cast<uint32_t>(Selves.size()));
    for (const auto &Entry : Selves) {
      E.u64(Entry.first);
      encode(E, Entry.second);
    }
  }
}

GlobalState fcsl::decodeGlobalState(Decoder &D) {
  GlobalState S;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Label L = D.u32();
    PCMTypeRef SelfType = decodePCMType(D);
    Heap Joint = decodeHeap(D);
    PCMVal EnvSelf = decodePCMVal(D);
    bool Closed = D.u8() != 0;
    if (D.failed() || !SelfType || S.hasLabel(L)) {
      D.fail();
      break;
    }
    S.addLabel(L, SelfType, std::move(Joint), std::move(EnvSelf), Closed);
    uint32_t NumSelves = D.u32();
    for (uint32_t J = 0; J != NumSelves && !D.failed(); ++J) {
      ThreadId T = D.u64();
      PCMVal V = decodePCMVal(D);
      if (!D.failed())
        S.setSelf(L, T, std::move(V));
    }
  }
  return D.failed() ? GlobalState() : S;
}

//===----------------------------------------------------------------------===//
// Footprints
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const FpAtom &A) {
  E.u32(A.L);
  E.u8(static_cast<uint8_t>(A.Comp));
  E.u8(static_cast<uint8_t>(A.Region));
  E.u8(A.Fields);
  E.u8(A.AllCells);
  if (!A.AllCells) {
    E.u32(static_cast<uint32_t>(A.Cells.size()));
    for (Ptr P : A.Cells)
      encode(E, P);
  }
}

FpAtom fcsl::decodeFpAtom(Decoder &D) {
  FpAtom A;
  A.L = D.u32();
  uint8_t Comp = D.u8();
  uint8_t Region = D.u8();
  A.Fields = D.u8();
  A.AllCells = D.u8() != 0;
  if (Comp > static_cast<uint8_t>(FpComp::OtherAux) ||
      Region > static_cast<uint8_t>(FpRegion::Unowned)) {
    D.fail();
    return FpAtom();
  }
  A.Comp = static_cast<FpComp>(Comp);
  A.Region = static_cast<FpRegion>(Region);
  if (!A.AllCells) {
    uint32_t Count = D.u32();
    for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
      Ptr P = decodePtr(D);
      // Cell lists are sorted and duplicate-free by construction.
      if (P.isNull() || (!A.Cells.empty() && !(A.Cells.back() < P))) {
        D.fail();
        break;
      }
      A.Cells.push_back(P);
    }
  }
  return D.failed() ? FpAtom() : A;
}

void fcsl::encode(Encoder &E, const Footprint &F) {
  E.u8(F.known());
  if (!F.known())
    return;
  E.u32(static_cast<uint32_t>(F.reads().size()));
  for (const FpAtom &A : F.reads())
    encode(E, A);
  E.u32(static_cast<uint32_t>(F.writes().size()));
  for (const FpAtom &A : F.writes())
    encode(E, A);
}

Footprint fcsl::decodeFootprint(Decoder &D) {
  if (D.u8() == 0)
    return Footprint();
  Footprint F = Footprint::none();
  uint32_t NumReads = D.u32();
  for (uint32_t I = 0; I != NumReads && !D.failed(); ++I)
    F.read(decodeFpAtom(D));
  uint32_t NumWrites = D.u32();
  for (uint32_t I = 0; I != NumWrites && !D.failed(); ++I)
    F.write(decodeFpAtom(D));
  return D.failed() ? Footprint() : F;
}

//===----------------------------------------------------------------------===//
// ProgTable / frontier configurations
//===----------------------------------------------------------------------===//

ProgTable::ProgTable(const Prog *Root, const DefTable *Defs) {
  if (Root)
    visit(Root);
  if (Defs)
    for (const std::string &Name : Defs->names())
      visit(Defs->lookup(Name).Body.get());
}

void ProgTable::visit(const Prog *P) {
  if (!P || Index.count(P))
    return;
  Index.emplace(P, static_cast<uint32_t>(Nodes.size()));
  Nodes.push_back(P);
  switch (P->kind()) {
  case Prog::Kind::Ret:
  case Prog::Kind::Act:
  case Prog::Kind::Call:
    break;
  case Prog::Kind::Bind:
    visit(P->first().get());
    visit(P->rest().get());
    break;
  case Prog::Kind::If:
    visit(P->thenProg().get());
    visit(P->elseProg().get());
    break;
  case Prog::Kind::Par:
    visit(P->left().get());
    visit(P->right().get());
    break;
  case Prog::Kind::Hide:
    visit(P->body().get());
    break;
  }
}

uint32_t ProgTable::indexOf(const Prog *P) const {
  auto It = Index.find(P);
  assert(It != Index.end() && "program node not in the table");
  return It->second;
}

const Prog *ProgTable::progAt(uint32_t I) const {
  assert(I < Nodes.size() && "program index out of range");
  return Nodes[I];
}

void fcsl::encode(Encoder &E, const FrontierConfig &C) {
  encodeFrontierConfigPrefix(E, C);
}

size_t fcsl::encodeFrontierConfigPrefix(Encoder &E, const FrontierConfig &C) {
  size_t Start = E.buffer().size();
  encode(E, C.GS);
  E.u32(static_cast<uint32_t>(C.Threads.size()));
  for (const FrontierThread &T : C.Threads) {
    E.u64(T.Id);
    E.u8(T.Waiting);
    E.u8(T.SymChildren);
    E.u8(T.Done.has_value());
    if (T.Done)
      encode(E, *T.Done);
    E.u32(static_cast<uint32_t>(T.Frames.size()));
    for (const FrontierFrame &F : T.Frames) {
      E.u8(F.Kind);
      E.u32(F.Node);
      E.u32(F.Rest);
      E.str(F.Var);
      E.u32(static_cast<uint32_t>(F.Env.size()));
      for (const auto &Binding : F.Env) {
        E.str(Binding.first);
        encode(E, Binding.second);
      }
    }
  }
  // The identity prefix ends with the thread stacks (v4): the wake
  // payload below is merged into the receiving shard's visited node, not
  // compared, so it must not perturb ownership fingerprints.
  size_t Prefix = E.buffer().size() - Start;
  E.u32(static_cast<uint32_t>(C.Sleep.size()));
  for (const FrontierSleep &S : C.Sleep) {
    E.u8(S.IsEnv);
    E.u64(S.T);
    E.u32(S.ActNode);
    E.u64(S.EnvIdx);
  }
  E.u32(C.EnvCloseMask);
  for (const FrontierSleep &S : C.Sleep)
    encode(E, S.Fp);
  E.u8(C.Counts);
  return Prefix;
}

FrontierConfig fcsl::decodeFrontierConfig(Decoder &D) {
  FrontierConfig C;
  C.GS = decodeGlobalState(D);
  uint32_t NumThreads = D.u32();
  for (uint32_t I = 0; I != NumThreads && !D.failed(); ++I) {
    FrontierThread T;
    T.Id = D.u64();
    T.Waiting = D.u8() != 0;
    T.SymChildren = D.u8() != 0;
    if (D.u8() != 0)
      T.Done = decodeVal(D);
    uint32_t NumFrames = D.u32();
    for (uint32_t J = 0; J != NumFrames && !D.failed(); ++J) {
      FrontierFrame F;
      F.Kind = D.u8();
      F.Node = D.u32();
      F.Rest = D.u32();
      F.Var = D.str();
      uint32_t NumBindings = D.u32();
      for (uint32_t K = 0; K != NumBindings && !D.failed(); ++K) {
        std::string Name = D.str();
        Val V = decodeVal(D);
        if (!D.failed())
          F.Env.emplace(std::move(Name), std::move(V));
      }
      T.Frames.push_back(std::move(F));
    }
    C.Threads.push_back(std::move(T));
  }
  uint32_t NumSleep = D.u32();
  for (uint32_t I = 0; I != NumSleep && !D.failed(); ++I) {
    FrontierSleep S;
    uint8_t IsEnv = D.u8();
    if (IsEnv > 1) {
      D.fail();
      break;
    }
    S.IsEnv = IsEnv != 0;
    S.T = D.u64();
    S.ActNode = D.u32();
    S.EnvIdx = D.u64();
    C.Sleep.push_back(std::move(S));
  }
  C.EnvCloseMask = D.u32();
  for (size_t I = 0; I != C.Sleep.size() && !D.failed(); ++I)
    C.Sleep[I].Fp = decodeFootprint(D);
  uint8_t Counts = D.u8();
  if (Counts > 1)
    D.fail();
  C.Counts = Counts != 0;
  return D.failed() ? FrontierConfig() : C;
}
