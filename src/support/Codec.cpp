//===- support/Codec.cpp - Deterministic binary state codec ----------------===//
//
// Part of fcsl-cpp. See Codec.h for the interface and format notes.
//
//===----------------------------------------------------------------------===//

#include "support/Codec.h"

#include "spec/Session.h"

#include <cassert>
#include <cstring>

using namespace fcsl;

static const char CodecMagic[4] = {'F', 'C', 'S', 'L'};

void fcsl::encodeHeader(Encoder &E) {
  for (char C : CodecMagic)
    E.u8(static_cast<uint8_t>(C));
  E.u32(CodecVersion);
}

bool fcsl::decodeHeader(Decoder &D) {
  for (char C : CodecMagic)
    if (D.u8() != static_cast<uint8_t>(C)) {
      D.fail();
      return false;
    }
  if (D.u32() != CodecVersion) {
    D.fail();
    return false;
  }
  return !D.failed();
}

//===----------------------------------------------------------------------===//
// Ptr / Val
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, Ptr P) { E.u32(P.id()); }

Ptr fcsl::decodePtr(Decoder &D) { return Ptr(D.u32()); }

void fcsl::encode(Encoder &E, const Val &V) {
  E.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Val::Kind::Unit:
    break;
  case Val::Kind::Int:
    E.i64(V.getInt());
    break;
  case Val::Kind::Bool:
    E.u8(V.getBool());
    break;
  case Val::Kind::Pointer:
    encode(E, V.getPtr());
    break;
  case Val::Kind::Node: {
    const NodeCell &N = V.getNode();
    E.u8(N.Marked);
    encode(E, N.Left);
    encode(E, N.Right);
    break;
  }
  case Val::Kind::Pair:
    encode(E, V.first());
    encode(E, V.second());
    break;
  }
}

Val fcsl::decodeVal(Decoder &D) {
  switch (static_cast<Val::Kind>(D.u8())) {
  case Val::Kind::Unit:
    return Val::unit();
  case Val::Kind::Int:
    return Val::ofInt(D.i64());
  case Val::Kind::Bool:
    return Val::ofBool(D.u8() != 0);
  case Val::Kind::Pointer:
    return Val::ofPtr(decodePtr(D));
  case Val::Kind::Node: {
    bool Marked = D.u8() != 0;
    Ptr Left = decodePtr(D);
    Ptr Right = decodePtr(D);
    return Val::node(Marked, Left, Right);
  }
  case Val::Kind::Pair: {
    Val First = decodeVal(D);
    Val Second = decodeVal(D);
    return Val::pair(std::move(First), std::move(Second));
  }
  }
  D.fail();
  return Val();
}

//===----------------------------------------------------------------------===//
// Heap / History
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const Heap &H) {
  E.u32(static_cast<uint32_t>(H.size()));
  for (const auto &Cell : H) {
    encode(E, Cell.first);
    encode(E, Cell.second);
  }
}

Heap fcsl::decodeHeap(Decoder &D) {
  Heap H;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Ptr P = decodePtr(D);
    Val V = decodeVal(D);
    if (D.failed() || P.isNull() || H.contains(P)) {
      D.fail();
      break;
    }
    H.insert(P, std::move(V));
  }
  return D.failed() ? Heap() : H;
}

void fcsl::encode(Encoder &E, const History &H) {
  E.u32(static_cast<uint32_t>(H.size()));
  for (const auto &Entry : H) {
    E.u64(Entry.first);
    encode(E, Entry.second.Before);
    encode(E, Entry.second.After);
  }
}

History fcsl::decodeHistory(Decoder &D) {
  History H;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    uint64_t Stamp = D.u64();
    Val Before = decodeVal(D);
    Val After = decodeVal(D);
    if (D.failed() || Stamp == 0 || H.contains(Stamp)) {
      D.fail();
      break;
    }
    H.add(Stamp, HistEntry{std::move(Before), std::move(After)});
  }
  return D.failed() ? History() : H;
}

//===----------------------------------------------------------------------===//
// PCMType / PCMVal
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const PCMTypeRef &T) {
  // Tag 0 is "absent"; otherwise kind + 1 so the nullable case is explicit.
  if (!T) {
    E.u8(0);
    return;
  }
  E.u8(static_cast<uint8_t>(T->kind()) + 1);
  switch (T->kind()) {
  case PCMKind::Pair:
    encode(E, T->first());
    encode(E, T->second());
    break;
  case PCMKind::Lift:
    encode(E, T->inner());
    break;
  default:
    break;
  }
}

PCMTypeRef fcsl::decodePCMType(Decoder &D) {
  uint8_t Tag = D.u8();
  if (Tag == 0)
    return nullptr;
  switch (static_cast<PCMKind>(Tag - 1)) {
  case PCMKind::Nat:
    return PCMType::nat();
  case PCMKind::Mutex:
    return PCMType::mutex();
  case PCMKind::PtrSet:
    return PCMType::ptrSet();
  case PCMKind::HeapPCM:
    return PCMType::heap();
  case PCMKind::Hist:
    return PCMType::hist();
  case PCMKind::Pair: {
    PCMTypeRef First = decodePCMType(D);
    PCMTypeRef Second = decodePCMType(D);
    if (D.failed() || !First || !Second) {
      D.fail();
      return nullptr;
    }
    return PCMType::pairOf(std::move(First), std::move(Second));
  }
  case PCMKind::Lift: {
    PCMTypeRef Inner = decodePCMType(D);
    if (D.failed() || !Inner) {
      D.fail();
      return nullptr;
    }
    return PCMType::lifted(std::move(Inner));
  }
  }
  D.fail();
  return nullptr;
}

void fcsl::encode(Encoder &E, const PCMVal &V) {
  E.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case PCMKind::Nat:
    E.u64(V.getNat());
    break;
  case PCMKind::Mutex:
    E.u8(V.isOwn());
    break;
  case PCMKind::PtrSet: {
    const std::set<Ptr> &S = V.getPtrSet();
    E.u32(static_cast<uint32_t>(S.size()));
    for (Ptr P : S)
      encode(E, P);
    break;
  }
  case PCMKind::HeapPCM:
    encode(E, V.getHeap());
    break;
  case PCMKind::Hist:
    encode(E, V.getHist());
    break;
  case PCMKind::Pair:
    encode(E, V.first());
    encode(E, V.second());
    break;
  case PCMKind::Lift:
    E.u8(!V.isLiftUndef());
    if (V.isLiftUndef())
      encode(E, PCMTypeRef()); // carrier advisory; undefs share one node.
    else
      encode(E, V.liftInner());
    break;
  }
}

PCMVal fcsl::decodePCMVal(Decoder &D) {
  switch (static_cast<PCMKind>(D.u8())) {
  case PCMKind::Nat:
    return PCMVal::ofNat(D.u64());
  case PCMKind::Mutex:
    return D.u8() != 0 ? PCMVal::mutexOwn() : PCMVal::mutexFree();
  case PCMKind::PtrSet: {
    uint32_t Count = D.u32();
    std::set<Ptr> S;
    for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
      Ptr P = decodePtr(D);
      if (P.isNull() || !S.insert(P).second) {
        D.fail();
        break;
      }
    }
    if (D.failed())
      return PCMVal();
    return PCMVal::ofPtrSet(std::move(S));
  }
  case PCMKind::HeapPCM:
    return PCMVal::ofHeap(decodeHeap(D));
  case PCMKind::Hist:
    return PCMVal::ofHist(decodeHistory(D));
  case PCMKind::Pair: {
    PCMVal First = decodePCMVal(D);
    PCMVal Second = decodePCMVal(D);
    return PCMVal::makePair(std::move(First), std::move(Second));
  }
  case PCMKind::Lift: {
    bool Defined = D.u8() != 0;
    if (!Defined)
      return PCMVal::liftUndef(decodePCMType(D));
    return PCMVal::liftDef(decodePCMVal(D));
  }
  }
  D.fail();
  return PCMVal();
}

//===----------------------------------------------------------------------===//
// View / GlobalState
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const View &V) {
  E.u32(static_cast<uint32_t>(V.numLabels()));
  for (const auto &Entry : V) {
    E.u32(Entry.first);
    encode(E, Entry.second.Self);
    encode(E, Entry.second.Joint);
    encode(E, Entry.second.Other);
  }
}

View fcsl::decodeView(Decoder &D) {
  View V;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Label L = D.u32();
    PCMVal Self = decodePCMVal(D);
    Heap Joint = decodeHeap(D);
    PCMVal Other = decodePCMVal(D);
    if (D.failed() || V.hasLabel(L)) {
      D.fail();
      break;
    }
    V.addLabel(L, LabelSlice{std::move(Self), std::move(Joint),
                             std::move(Other)});
  }
  return D.failed() ? View() : V;
}

void fcsl::encode(Encoder &E, const GlobalState &S) {
  std::vector<Label> Labels = S.labels();
  E.u32(static_cast<uint32_t>(Labels.size()));
  for (Label L : Labels) {
    E.u32(L);
    encode(E, S.selfType(L));
    encode(E, S.joint(L));
    encode(E, S.envSelf(L));
    E.u8(S.isEnvClosed(L));
    const std::map<ThreadId, PCMVal> &Selves = S.selves(L);
    E.u32(static_cast<uint32_t>(Selves.size()));
    for (const auto &Entry : Selves) {
      E.u64(Entry.first);
      encode(E, Entry.second);
    }
  }
}

GlobalState fcsl::decodeGlobalState(Decoder &D) {
  GlobalState S;
  uint32_t Count = D.u32();
  for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
    Label L = D.u32();
    PCMTypeRef SelfType = decodePCMType(D);
    Heap Joint = decodeHeap(D);
    PCMVal EnvSelf = decodePCMVal(D);
    bool Closed = D.u8() != 0;
    if (D.failed() || !SelfType || S.hasLabel(L)) {
      D.fail();
      break;
    }
    S.addLabel(L, SelfType, std::move(Joint), std::move(EnvSelf), Closed);
    uint32_t NumSelves = D.u32();
    for (uint32_t J = 0; J != NumSelves && !D.failed(); ++J) {
      ThreadId T = D.u64();
      PCMVal V = decodePCMVal(D);
      if (!D.failed())
        S.setSelf(L, T, std::move(V));
    }
  }
  return D.failed() ? GlobalState() : S;
}

//===----------------------------------------------------------------------===//
// Footprints
//===----------------------------------------------------------------------===//

void fcsl::encode(Encoder &E, const FpAtom &A) {
  E.u32(A.L);
  E.u8(static_cast<uint8_t>(A.Comp));
  E.u8(static_cast<uint8_t>(A.Region));
  E.u8(A.Fields);
  E.u8(A.AllCells);
  if (!A.AllCells) {
    E.u32(static_cast<uint32_t>(A.Cells.size()));
    for (Ptr P : A.Cells)
      encode(E, P);
  }
}

FpAtom fcsl::decodeFpAtom(Decoder &D) {
  FpAtom A;
  A.L = D.u32();
  uint8_t Comp = D.u8();
  uint8_t Region = D.u8();
  A.Fields = D.u8();
  A.AllCells = D.u8() != 0;
  if (Comp > static_cast<uint8_t>(FpComp::OtherAux) ||
      Region > static_cast<uint8_t>(FpRegion::Unowned)) {
    D.fail();
    return FpAtom();
  }
  A.Comp = static_cast<FpComp>(Comp);
  A.Region = static_cast<FpRegion>(Region);
  if (!A.AllCells) {
    uint32_t Count = D.u32();
    for (uint32_t I = 0; I != Count && !D.failed(); ++I) {
      Ptr P = decodePtr(D);
      // Cell lists are sorted and duplicate-free by construction.
      if (P.isNull() || (!A.Cells.empty() && !(A.Cells.back() < P))) {
        D.fail();
        break;
      }
      A.Cells.push_back(P);
    }
  }
  return D.failed() ? FpAtom() : A;
}

void fcsl::encode(Encoder &E, const Footprint &F) {
  E.u8(F.known());
  if (!F.known())
    return;
  E.u32(static_cast<uint32_t>(F.reads().size()));
  for (const FpAtom &A : F.reads())
    encode(E, A);
  E.u32(static_cast<uint32_t>(F.writes().size()));
  for (const FpAtom &A : F.writes())
    encode(E, A);
}

Footprint fcsl::decodeFootprint(Decoder &D) {
  if (D.u8() == 0)
    return Footprint();
  Footprint F = Footprint::none();
  uint32_t NumReads = D.u32();
  for (uint32_t I = 0; I != NumReads && !D.failed(); ++I)
    F.read(decodeFpAtom(D));
  uint32_t NumWrites = D.u32();
  for (uint32_t I = 0; I != NumWrites && !D.failed(); ++I)
    F.write(decodeFpAtom(D));
  return D.failed() ? Footprint() : F;
}

//===----------------------------------------------------------------------===//
// ProgTable / frontier configurations
//===----------------------------------------------------------------------===//

ProgTable::ProgTable(const Prog *Root, const DefTable *Defs) {
  if (Root)
    visit(Root);
  if (Defs)
    for (const std::string &Name : Defs->names())
      visit(Defs->lookup(Name).Body.get());
}

void ProgTable::visit(const Prog *P) {
  if (!P || Index.count(P))
    return;
  Index.emplace(P, static_cast<uint32_t>(Nodes.size()));
  Nodes.push_back(P);
  switch (P->kind()) {
  case Prog::Kind::Ret:
  case Prog::Kind::Act:
  case Prog::Kind::Call:
    break;
  case Prog::Kind::Bind:
    visit(P->first().get());
    visit(P->rest().get());
    break;
  case Prog::Kind::If:
    visit(P->thenProg().get());
    visit(P->elseProg().get());
    break;
  case Prog::Kind::Par:
    visit(P->left().get());
    visit(P->right().get());
    break;
  case Prog::Kind::Hide:
    visit(P->body().get());
    break;
  }
}

uint32_t ProgTable::indexOf(const Prog *P) const {
  auto It = Index.find(P);
  assert(It != Index.end() && "program node not in the table");
  return It->second;
}

const Prog *ProgTable::progAt(uint32_t I) const {
  assert(I < Nodes.size() && "program index out of range");
  return Nodes[I];
}

void fcsl::encode(Encoder &E, const FrontierConfig &C) {
  encodeFrontierConfigPrefix(E, C);
}

size_t fcsl::encodeFrontierConfigPrefix(Encoder &E, const FrontierConfig &C) {
  size_t Start = E.buffer().size();
  encode(E, C.GS);
  E.u32(static_cast<uint32_t>(C.Threads.size()));
  for (const FrontierThread &T : C.Threads) {
    E.u64(T.Id);
    E.u8(T.Waiting);
    E.u8(T.SymChildren);
    E.u8(T.Done.has_value());
    if (T.Done)
      encode(E, *T.Done);
    E.u32(static_cast<uint32_t>(T.Frames.size()));
    for (const FrontierFrame &F : T.Frames) {
      E.u8(F.Kind);
      E.u32(F.Node);
      E.u32(F.Rest);
      E.str(F.Var);
      E.u32(static_cast<uint32_t>(F.Env.size()));
      for (const auto &Binding : F.Env) {
        E.str(Binding.first);
        encode(E, Binding.second);
      }
    }
  }
  // The identity prefix ends with the thread stacks (v4): the wake
  // payload below is merged into the receiving shard's visited node, not
  // compared, so it must not perturb ownership fingerprints.
  size_t Prefix = E.buffer().size() - Start;
  E.u32(static_cast<uint32_t>(C.Sleep.size()));
  for (const FrontierSleep &S : C.Sleep) {
    E.u8(S.IsEnv);
    E.u64(S.T);
    E.u32(S.ActNode);
    E.u64(S.EnvIdx);
  }
  E.u32(C.EnvCloseMask);
  for (const FrontierSleep &S : C.Sleep)
    encode(E, S.Fp);
  E.u8(C.Counts);
  return Prefix;
}

//===----------------------------------------------------------------------===//
// Dictionary-scoped contexts (DESIGN.md §14)
//===----------------------------------------------------------------------===//

namespace {

/// ProgTable::NoProg and "no entry" both need a spare value under varint
/// encoding; indices shift up by one so zero can mean "absent".
uint64_t shifted(uint32_t Idx) {
  return Idx == ProgTable::NoProg ? 0 : static_cast<uint64_t>(Idx) + 1;
}

uint32_t unshifted(Decoder &D, uint64_t V) {
  if (V == 0)
    return ProgTable::NoProg;
  if (V > 0xFFFFFFFFull) {
    D.fail();
    return ProgTable::NoProg;
  }
  return static_cast<uint32_t>(V - 1);
}

} // namespace

uint32_t NodeDictEncoder::internVal(Encoder &Defs, const Val &V) {
  auto It = ValIdx.find(V);
  if (It != ValIdx.end())
    return It->second;
  // Children first: a definition's references always point at lower
  // indices, so the decoder can resolve the stream in one pass.
  uint32_t A = 0, B = 0;
  if (V.kind() == Val::Kind::Pair) {
    A = internVal(Defs, V.first());
    B = internVal(Defs, V.second());
  }
  Defs.u8(static_cast<uint8_t>(DictDef::Val));
  Defs.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Val::Kind::Unit:
    break;
  case Val::Kind::Int:
    Defs.vi(V.getInt());
    break;
  case Val::Kind::Bool:
    Defs.u8(V.getBool());
    break;
  case Val::Kind::Pointer:
    Defs.vu(V.getPtr().id());
    break;
  case Val::Kind::Node: {
    const NodeCell &N = V.getNode();
    Defs.u8(N.Marked);
    Defs.vu(N.Left.id());
    Defs.vu(N.Right.id());
    break;
  }
  case Val::Kind::Pair:
    Defs.vu(A);
    Defs.vu(B);
    break;
  }
  uint32_t Idx = Count++;
  ValIdx.emplace(V, Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internHeap(Encoder &Defs, const Heap &H) {
  auto It = HeapIdx.find(H);
  if (It != HeapIdx.end())
    return It->second;
  std::vector<uint32_t> Cells;
  Cells.reserve(H.size());
  for (const auto &Cell : H)
    Cells.push_back(internVal(Defs, Cell.second));
  Defs.u8(static_cast<uint8_t>(DictDef::Heap));
  Defs.vu(H.size());
  size_t I = 0;
  for (const auto &Cell : H) {
    Defs.vu(Cell.first.id());
    Defs.vu(Cells[I++]);
  }
  uint32_t Idx = Count++;
  HeapIdx.emplace(H, Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internHist(Encoder &Defs, const History &H) {
  auto It = HistIdx.find(H);
  if (It != HistIdx.end())
    return It->second;
  std::vector<std::pair<uint32_t, uint32_t>> Vals;
  Vals.reserve(H.size());
  for (const auto &Entry : H)
    Vals.emplace_back(internVal(Defs, Entry.second.Before),
                      internVal(Defs, Entry.second.After));
  Defs.u8(static_cast<uint8_t>(DictDef::Hist));
  Defs.vu(H.size());
  size_t I = 0;
  for (const auto &Entry : H) {
    Defs.vu(Entry.first);
    Defs.vu(Vals[I].first);
    Defs.vu(Vals[I].second);
    ++I;
  }
  uint32_t Idx = Count++;
  HistIdx.emplace(H, Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internPcm(Encoder &Defs, const PCMVal &V) {
  auto It = PcmIdx.find(V);
  if (It != PcmIdx.end())
    return It->second;
  uint32_t A = 0, B = 0;
  switch (V.kind()) {
  case PCMKind::HeapPCM:
    A = internHeap(Defs, V.getHeap());
    break;
  case PCMKind::Hist:
    A = internHist(Defs, V.getHist());
    break;
  case PCMKind::Pair:
    A = internPcm(Defs, V.first());
    B = internPcm(Defs, V.second());
    break;
  case PCMKind::Lift:
    if (!V.isLiftUndef())
      A = internPcm(Defs, V.liftInner());
    break;
  default:
    break;
  }
  Defs.u8(static_cast<uint8_t>(DictDef::Pcm));
  Defs.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case PCMKind::Nat:
    Defs.vu(V.getNat());
    break;
  case PCMKind::Mutex:
    Defs.u8(V.isOwn());
    break;
  case PCMKind::PtrSet: {
    const std::set<Ptr> &S = V.getPtrSet();
    Defs.vu(S.size());
    for (Ptr P : S)
      Defs.vu(P.id());
    break;
  }
  case PCMKind::HeapPCM:
  case PCMKind::Hist:
    Defs.vu(A);
    break;
  case PCMKind::Pair:
    Defs.vu(A);
    Defs.vu(B);
    break;
  case PCMKind::Lift:
    Defs.u8(!V.isLiftUndef());
    if (V.isLiftUndef())
      Defs.vu(0); // carrier advisory; undefs share one node.
    else
      Defs.vu(A);
    break;
  }
  uint32_t Idx = Count++;
  PcmIdx.emplace(V, Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internPcmType(Encoder &Defs, const PCMTypeRef &T) {
  assert(T && "nullable carriers encode as index 0 at the use site");
  Encoder Key;
  encode(Key, T);
  auto It = TypeIdx.find(Key.buffer());
  if (It != TypeIdx.end())
    return It->second;
  uint32_t A = 0, B = 0;
  switch (T->kind()) {
  case PCMKind::Pair:
    A = internPcmType(Defs, T->first());
    B = internPcmType(Defs, T->second());
    break;
  case PCMKind::Lift:
    A = internPcmType(Defs, T->inner());
    break;
  default:
    break;
  }
  Defs.u8(static_cast<uint8_t>(DictDef::PcmType));
  Defs.u8(static_cast<uint8_t>(T->kind()));
  switch (T->kind()) {
  case PCMKind::Pair:
    Defs.vu(A);
    Defs.vu(B);
    break;
  case PCMKind::Lift:
    Defs.vu(A);
    break;
  default:
    break;
  }
  uint32_t Idx = Count++;
  TypeIdx.emplace(Key.take(), Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internStr(Encoder &Defs, const std::string &S) {
  auto It = StrIdx.find(S);
  if (It != StrIdx.end())
    return It->second;
  Defs.u8(static_cast<uint8_t>(DictDef::Str));
  Defs.vu(S.size());
  for (char C : S)
    Defs.u8(static_cast<uint8_t>(C));
  uint32_t Idx = Count++;
  StrIdx.emplace(S, Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internThread(Encoder &Defs, const FrontierThread &T) {
  // Build the body in a scratch encoder: interning children first keeps
  // the children-before-parents stream invariant, and the finished body
  // bytes double as the dedup key (child references are deterministic per
  // dictionary, so byte equality is structural equality). A dedup hit
  // appends no definitions — its children were interned by the first copy.
  Encoder Body;
  Body.vu(T.Id);
  Body.u8(T.Waiting);
  Body.u8(T.SymChildren);
  Body.u8(T.Done.has_value());
  if (T.Done)
    Body.vu(internVal(Defs, *T.Done));
  Body.vu(T.Frames.size());
  for (const FrontierFrame &F : T.Frames) {
    Body.u8(F.Kind);
    Body.vu(shifted(F.Node));
    Body.vu(shifted(F.Rest));
    Body.vu(internStr(Defs, F.Var));
    Body.vu(F.Env.size());
    for (const auto &Binding : F.Env) {
      Body.vu(internStr(Defs, Binding.first));
      Body.vu(internVal(Defs, Binding.second));
    }
  }
  auto It = ThreadIdx.find(Body.buffer());
  if (It != ThreadIdx.end())
    return It->second;
  Defs.u8(static_cast<uint8_t>(DictDef::Thread));
  Defs.raw(Body.buffer());
  uint32_t Idx = Count++;
  ThreadIdx.emplace(Body.take(), Idx);
  return Idx;
}

uint32_t NodeDictEncoder::internLabelState(Encoder &Defs,
                                           const GlobalState &GS, Label L) {
  Encoder Body;
  Body.vu(L);
  Body.vu(internPcmType(Defs, GS.selfType(L)));
  Body.vu(internHeap(Defs, GS.joint(L)));
  Body.vu(internPcm(Defs, GS.envSelf(L)));
  Body.u8(GS.isEnvClosed(L));
  const std::map<ThreadId, PCMVal> &Selves = GS.selves(L);
  Body.vu(Selves.size());
  for (const auto &Entry : Selves) {
    Body.vu(Entry.first);
    Body.vu(internPcm(Defs, Entry.second));
  }
  auto It = LabelIdx.find(Body.buffer());
  if (It != LabelIdx.end())
    return It->second;
  Defs.u8(static_cast<uint8_t>(DictDef::LabelState));
  Defs.raw(Body.buffer());
  uint32_t Idx = Count++;
  LabelIdx.emplace(Body.take(), Idx);
  return Idx;
}

void NodeDictEncoder::encodeConfig(Encoder &Defs, Encoder &Refs,
                                   const FrontierConfig &C) {
  // Global state: one composite reference per label slice. Successive
  // configs usually change one label's slice (or none), so the rest cost
  // one varint each.
  std::vector<Label> Labels = C.GS.labels();
  Refs.vu(Labels.size());
  for (Label L : Labels)
    Refs.vu(internLabelState(Defs, C.GS, L));
  // Threads: one composite reference per stack — only the thread that
  // stepped since the last shipped config defines a new node.
  Refs.vu(C.Threads.size());
  for (const FrontierThread &T : C.Threads)
    Refs.vu(internThread(Defs, T));
  // Wake payload and the accounting flag, as in the plain codec (sleep
  // footprints are rare and stay plainly encoded).
  Refs.vu(C.Sleep.size());
  for (const FrontierSleep &S : C.Sleep) {
    Refs.u8(S.IsEnv);
    Refs.vu(S.T);
    Refs.vu(shifted(S.ActNode));
    Refs.vu(S.EnvIdx);
  }
  Refs.vu(C.EnvCloseMask);
  for (const FrontierSleep &S : C.Sleep)
    encode(Refs, S.Fp);
  Refs.u8(C.Counts);
}

const NodeDictDecoder::Entry *NodeDictDecoder::entryAt(Decoder &D,
                                                       DictDef Kind) {
  if (Corrupt) {
    D.fail();
    return nullptr;
  }
  uint64_t Idx = D.vu();
  if (D.failed())
    return nullptr;
  if (Idx >= Entries.size() || Entries[Idx].Kind != Kind) {
    D.fail(); // Out-of-range or kind-mismatched dictionary reference.
    return nullptr;
  }
  return &Entries[Idx];
}

const Val *NodeDictDecoder::valAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::Val);
  return E ? &E->V : nullptr;
}
const Heap *NodeDictDecoder::heapAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::Heap);
  return E ? &E->H : nullptr;
}
const History *NodeDictDecoder::histAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::Hist);
  return E ? &E->Hist : nullptr;
}
const PCMVal *NodeDictDecoder::pcmAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::Pcm);
  return E ? &E->P : nullptr;
}
const PCMTypeRef *NodeDictDecoder::typeAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::PcmType);
  return E ? &E->T : nullptr;
}
const std::string *NodeDictDecoder::strAt(Decoder &D) {
  const Entry *E = entryAt(D, DictDef::Str);
  return E ? &E->S : nullptr;
}

bool NodeDictDecoder::feedDefs(const uint8_t *Data, size_t N) {
  if (Corrupt)
    return false;
  Decoder D(Data, N);
  while (!D.atEnd()) {
    uint8_t Tag = D.u8();
    Entry E;
    switch (static_cast<DictDef>(Tag)) {
    case DictDef::Val: {
      E.Kind = DictDef::Val;
      switch (static_cast<Val::Kind>(D.u8())) {
      case Val::Kind::Unit:
        E.V = Val::unit();
        break;
      case Val::Kind::Int:
        E.V = Val::ofInt(D.vi());
        break;
      case Val::Kind::Bool:
        E.V = Val::ofBool(D.u8() != 0);
        break;
      case Val::Kind::Pointer:
        E.V = Val::ofPtr(Ptr(static_cast<uint32_t>(D.vu())));
        break;
      case Val::Kind::Node: {
        bool Marked = D.u8() != 0;
        Ptr Left(static_cast<uint32_t>(D.vu()));
        Ptr Right(static_cast<uint32_t>(D.vu()));
        E.V = Val::node(Marked, Left, Right);
        break;
      }
      case Val::Kind::Pair: {
        const Val *A = valAt(D);
        const Val *B = valAt(D);
        if (A && B)
          E.V = Val::pair(*A, *B);
        break;
      }
      default:
        D.fail();
        break;
      }
      break;
    }
    case DictDef::Heap: {
      E.Kind = DictDef::Heap;
      uint64_t Cells = D.vu();
      Heap H;
      for (uint64_t I = 0; I != Cells && !D.failed(); ++I) {
        Ptr P(static_cast<uint32_t>(D.vu()));
        const Val *V = valAt(D);
        if (!V || P.isNull() || H.contains(P)) {
          D.fail();
          break;
        }
        H.insert(P, *V);
      }
      E.H = std::move(H);
      break;
    }
    case DictDef::Hist: {
      E.Kind = DictDef::Hist;
      uint64_t N2 = D.vu();
      History H;
      for (uint64_t I = 0; I != N2 && !D.failed(); ++I) {
        uint64_t Stamp = D.vu();
        const Val *Before = valAt(D);
        const Val *After = valAt(D);
        if (!Before || !After || Stamp == 0 || H.contains(Stamp)) {
          D.fail();
          break;
        }
        H.add(Stamp, HistEntry{*Before, *After});
      }
      E.Hist = std::move(H);
      break;
    }
    case DictDef::Pcm: {
      E.Kind = DictDef::Pcm;
      switch (static_cast<PCMKind>(D.u8())) {
      case PCMKind::Nat:
        E.P = PCMVal::ofNat(D.vu());
        break;
      case PCMKind::Mutex:
        E.P = D.u8() != 0 ? PCMVal::mutexOwn() : PCMVal::mutexFree();
        break;
      case PCMKind::PtrSet: {
        uint64_t N2 = D.vu();
        std::set<Ptr> S;
        for (uint64_t I = 0; I != N2 && !D.failed(); ++I) {
          Ptr P(static_cast<uint32_t>(D.vu()));
          if (P.isNull() || !S.insert(P).second) {
            D.fail();
            break;
          }
        }
        if (!D.failed())
          E.P = PCMVal::ofPtrSet(std::move(S));
        break;
      }
      case PCMKind::HeapPCM: {
        const Heap *H = heapAt(D);
        if (H)
          E.P = PCMVal::ofHeap(*H);
        break;
      }
      case PCMKind::Hist: {
        const History *H = histAt(D);
        if (H)
          E.P = PCMVal::ofHist(*H);
        break;
      }
      case PCMKind::Pair: {
        const PCMVal *A = pcmAt(D);
        const PCMVal *B = pcmAt(D);
        if (A && B)
          E.P = PCMVal::makePair(*A, *B);
        break;
      }
      case PCMKind::Lift: {
        bool Defined = D.u8() != 0;
        if (!Defined) {
          uint64_t TRef = D.vu();
          if (TRef == 0) {
            E.P = PCMVal::liftUndef(nullptr);
          } else if (TRef - 1 >= Entries.size() ||
                     Entries[TRef - 1].Kind != DictDef::PcmType) {
            D.fail();
          } else {
            E.P = PCMVal::liftUndef(Entries[TRef - 1].T);
          }
        } else {
          const PCMVal *Inner = pcmAt(D);
          if (Inner)
            E.P = PCMVal::liftDef(*Inner);
        }
        break;
      }
      default:
        D.fail();
        break;
      }
      break;
    }
    case DictDef::PcmType: {
      E.Kind = DictDef::PcmType;
      switch (static_cast<PCMKind>(D.u8())) {
      case PCMKind::Nat:
        E.T = PCMType::nat();
        break;
      case PCMKind::Mutex:
        E.T = PCMType::mutex();
        break;
      case PCMKind::PtrSet:
        E.T = PCMType::ptrSet();
        break;
      case PCMKind::HeapPCM:
        E.T = PCMType::heap();
        break;
      case PCMKind::Hist:
        E.T = PCMType::hist();
        break;
      case PCMKind::Pair: {
        const PCMTypeRef *A = typeAt(D);
        const PCMTypeRef *B = typeAt(D);
        if (A && B)
          E.T = PCMType::pairOf(*A, *B);
        break;
      }
      case PCMKind::Lift: {
        const PCMTypeRef *Inner = typeAt(D);
        if (Inner)
          E.T = PCMType::lifted(*Inner);
        break;
      }
      default:
        D.fail();
        break;
      }
      break;
    }
    case DictDef::Str: {
      E.Kind = DictDef::Str;
      uint64_t Len = D.vu();
      if (Len > D.remaining()) {
        D.fail();
        break;
      }
      std::string S;
      S.reserve(Len);
      for (uint64_t I = 0; I != Len && !D.failed(); ++I)
        S.push_back(static_cast<char>(D.u8()));
      E.S = std::move(S);
      break;
    }
    case DictDef::Thread: {
      E.Kind = DictDef::Thread;
      FrontierThread T;
      T.Id = D.vu();
      T.Waiting = D.u8() != 0;
      T.SymChildren = D.u8() != 0;
      if (D.u8() != 0) {
        const Val *V = valAt(D);
        if (V)
          T.Done = *V;
      }
      uint64_t NumFrames = D.vu();
      if (NumFrames > D.remaining()) {
        D.fail();
        break;
      }
      for (uint64_t I = 0; I != NumFrames && !D.failed(); ++I) {
        FrontierFrame F;
        F.Kind = D.u8();
        F.Node = unshifted(D, D.vu());
        F.Rest = unshifted(D, D.vu());
        const std::string *Var = strAt(D);
        if (Var)
          F.Var = *Var;
        uint64_t NumBindings = D.vu();
        for (uint64_t K = 0; K != NumBindings && !D.failed(); ++K) {
          const std::string *Name = strAt(D);
          const Val *V = valAt(D);
          if (Name && V)
            F.Env.emplace(*Name, *V);
        }
        T.Frames.push_back(std::move(F));
      }
      E.FT = std::move(T);
      break;
    }
    case DictDef::LabelState: {
      E.Kind = DictDef::LabelState;
      E.LsLabel = static_cast<Label>(D.vu());
      const PCMTypeRef *T = typeAt(D);
      const Heap *J = heapAt(D);
      const PCMVal *Env = pcmAt(D);
      E.LsClosed = D.u8() != 0;
      if (!T || !*T || !J || !Env) {
        D.fail();
        break;
      }
      E.LsType = *T;
      E.LsJoint = *J;
      E.LsEnv = *Env;
      uint64_t NumSelves = D.vu();
      if (NumSelves > D.remaining()) {
        D.fail();
        break;
      }
      for (uint64_t I = 0; I != NumSelves && !D.failed(); ++I) {
        ThreadId Tid = D.vu();
        const PCMVal *V = pcmAt(D);
        if (V)
          E.LsSelves.emplace_back(Tid, *V);
      }
      break;
    }
    default:
      D.fail();
      break;
    }
    if (D.failed()) {
      Corrupt = true;
      return false;
    }
    Entries.push_back(std::move(E));
  }
  return true;
}

FrontierConfig NodeDictDecoder::decodeConfig(Decoder &D) {
  FrontierConfig C;
  if (Corrupt) {
    D.fail();
    return C;
  }
  uint64_t NumLabels = D.vu();
  for (uint64_t I = 0; I != NumLabels && !D.failed(); ++I) {
    const Entry *E = entryAt(D, DictDef::LabelState);
    if (!E || C.GS.hasLabel(E->LsLabel)) {
      D.fail();
      break;
    }
    C.GS.addLabel(E->LsLabel, E->LsType, E->LsJoint, E->LsEnv, E->LsClosed);
    for (const auto &Self : E->LsSelves)
      C.GS.setSelf(E->LsLabel, Self.first, Self.second);
  }
  uint64_t NumThreads = D.vu();
  for (uint64_t I = 0; I != NumThreads && !D.failed(); ++I) {
    const Entry *E = entryAt(D, DictDef::Thread);
    if (!E)
      break;
    C.Threads.push_back(E->FT);
  }
  uint64_t NumSleep = D.vu();
  if (NumSleep > D.remaining())
    D.fail();
  for (uint64_t I = 0; I != NumSleep && !D.failed(); ++I) {
    FrontierSleep S;
    uint8_t IsEnv = D.u8();
    if (IsEnv > 1) {
      D.fail();
      break;
    }
    S.IsEnv = IsEnv != 0;
    S.T = D.vu();
    S.ActNode = unshifted(D, D.vu());
    S.EnvIdx = D.vu();
    C.Sleep.push_back(std::move(S));
  }
  C.EnvCloseMask = static_cast<uint32_t>(D.vu());
  for (size_t I = 0; I != C.Sleep.size() && !D.failed(); ++I)
    C.Sleep[I].Fp = decodeFootprint(D);
  uint8_t Counts = D.u8();
  if (Counts > 1)
    D.fail();
  C.Counts = Counts != 0;
  return D.failed() ? FrontierConfig() : C;
}

FrontierConfig fcsl::decodeFrontierConfig(Decoder &D) {
  FrontierConfig C;
  C.GS = decodeGlobalState(D);
  uint32_t NumThreads = D.u32();
  for (uint32_t I = 0; I != NumThreads && !D.failed(); ++I) {
    FrontierThread T;
    T.Id = D.u64();
    T.Waiting = D.u8() != 0;
    T.SymChildren = D.u8() != 0;
    if (D.u8() != 0)
      T.Done = decodeVal(D);
    uint32_t NumFrames = D.u32();
    for (uint32_t J = 0; J != NumFrames && !D.failed(); ++J) {
      FrontierFrame F;
      F.Kind = D.u8();
      F.Node = D.u32();
      F.Rest = D.u32();
      F.Var = D.str();
      uint32_t NumBindings = D.u32();
      for (uint32_t K = 0; K != NumBindings && !D.failed(); ++K) {
        std::string Name = D.str();
        Val V = decodeVal(D);
        if (!D.failed())
          F.Env.emplace(std::move(Name), std::move(V));
      }
      T.Frames.push_back(std::move(F));
    }
    C.Threads.push_back(std::move(T));
  }
  uint32_t NumSleep = D.u32();
  for (uint32_t I = 0; I != NumSleep && !D.failed(); ++I) {
    FrontierSleep S;
    uint8_t IsEnv = D.u8();
    if (IsEnv > 1) {
      D.fail();
      break;
    }
    S.IsEnv = IsEnv != 0;
    S.T = D.u64();
    S.ActNode = D.u32();
    S.EnvIdx = D.u64();
    C.Sleep.push_back(std::move(S));
  }
  C.EnvCloseMask = D.u32();
  for (size_t I = 0; I != C.Sleep.size() && !D.failed(); ++I)
    C.Sleep[I].Fp = decodeFootprint(D);
  uint8_t Counts = D.u8();
  if (Counts > 1)
    D.fail();
  C.Counts = Counts != 0;
  return D.failed() ? FrontierConfig() : C;
}

//===----------------------------------------------------------------------===//
// SessionReport — the payload of the service's Report frame.
//===----------------------------------------------------------------------===//

namespace {

// Doubles travel as their IEEE-754 bit pattern so a daemon-served report
// round-trips bit-identically (the codec has no native float lane).
void encodeDouble(Encoder &E, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  E.u64(Bits);
}

double decodeDouble(Decoder &D) {
  uint64_t Bits = D.u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace

void fcsl::encode(Encoder &E, const SessionReport &R) {
  E.str(R.Program);
  E.u8(R.AllPassed ? 1 : 0);
  for (const CategoryStats &S : R.PerCategory) {
    E.u64(S.Obligations);
    E.u64(S.Checks);
    encodeDouble(E, S.ElapsedMs);
  }
  encodeDouble(E, R.TotalMs);
  E.u32(static_cast<uint32_t>(R.Failures.size()));
  for (const std::string &F : R.Failures)
    E.str(F);
  E.u64(R.Cache.Hits);
  E.u64(R.Cache.Misses);
  E.u64(R.Cache.StaleFlags);
  E.u64(R.Cache.Stores);
  E.u64(R.Cache.CheckRuns);
  E.u64(R.Cache.Divergences);
  E.u64(R.Cache.Unkeyed);
  E.u64(R.Cache.ReplayedChecks);
  E.u64(R.Cache.ReplayedConfigs);
  E.u64(R.Cache.ReplayedUs);
}

SessionReport fcsl::decodeSessionReport(Decoder &D) {
  SessionReport R;
  R.Program = D.str();
  uint8_t Passed = D.u8();
  if (Passed > 1)
    D.fail();
  R.AllPassed = Passed != 0;
  for (CategoryStats &S : R.PerCategory) {
    S.Obligations = D.u64();
    S.Checks = D.u64();
    S.ElapsedMs = decodeDouble(D);
  }
  R.TotalMs = decodeDouble(D);
  uint32_t NumFailures = D.u32();
  for (uint32_t I = 0; I != NumFailures && !D.failed(); ++I)
    R.Failures.push_back(D.str());
  R.Cache.Hits = D.u64();
  R.Cache.Misses = D.u64();
  R.Cache.StaleFlags = D.u64();
  R.Cache.Stores = D.u64();
  R.Cache.CheckRuns = D.u64();
  R.Cache.Divergences = D.u64();
  R.Cache.Unkeyed = D.u64();
  R.Cache.ReplayedChecks = D.u64();
  R.Cache.ReplayedConfigs = D.u64();
  R.Cache.ReplayedUs = D.u64();
  return D.failed() ? SessionReport() : R;
}
