//===- support/Dot.cpp - Graphviz DOT emitter -----------------------------===//
//
// Part of fcsl-cpp. See Dot.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace fcsl;

void DotGraph::addNode(const std::string &Id, const std::string &Label) {
  for (const auto &N : Nodes)
    if (N.first == Id)
      return;
  Nodes.emplace_back(Id, Label.empty() ? Id : Label);
}

void DotGraph::addEdge(const std::string &From, const std::string &To) {
  addNode(From);
  addNode(To);
  Edges.emplace_back(From, To);
}

std::string DotGraph::render() const {
  std::string Out = "digraph \"" + Name + "\" {\n";
  Out += "  rankdir=BT;\n";
  for (const auto &N : Nodes)
    Out += "  \"" + N.first + "\" [label=\"" + N.second + "\"];\n";
  for (const auto &E : Edges)
    Out += "  \"" + E.first + "\" -> \"" + E.second + "\";\n";
  Out += "}\n";
  return Out;
}

std::string DotGraph::renderAscii() const {
  std::map<std::string, std::vector<std::string>> Adj;
  for (const auto &N : Nodes)
    Adj[N.first]; // Ensure isolated nodes appear.
  for (const auto &E : Edges)
    Adj[E.first].push_back(E.second);
  std::string Out;
  for (auto &Entry : Adj) {
    Out += Entry.first;
    if (!Entry.second.empty()) {
      std::sort(Entry.second.begin(), Entry.second.end());
      Out += " -> ";
      for (size_t I = 0, E = Entry.second.size(); I != E; ++I) {
        if (I != 0)
          Out += ", ";
        Out += Entry.second[I];
      }
    }
    Out += '\n';
  }
  return Out;
}

bool DotGraph::isAcyclic() const {
  std::map<std::string, std::vector<std::string>> Adj;
  for (const auto &E : Edges)
    Adj[E.first].push_back(E.second);

  enum class Mark { White, Grey, Black };
  std::map<std::string, Mark> Marks;
  for (const auto &N : Nodes)
    Marks[N.first] = Mark::White;

  // Iterative DFS with grey-set cycle detection.
  std::function<bool(const std::string &)> Visit =
      [&](const std::string &Node) -> bool {
    Marks[Node] = Mark::Grey;
    for (const auto &Succ : Adj[Node]) {
      if (Marks[Succ] == Mark::Grey)
        return false;
      if (Marks[Succ] == Mark::White && !Visit(Succ))
        return false;
    }
    Marks[Node] = Mark::Black;
    return true;
  };
  for (const auto &N : Nodes)
    if (Marks[N.first] == Mark::White && !Visit(N.first))
      return false;
  return true;
}
