//===- support/Format.h - String formatting helpers -------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style string formatting plus small table-rendering helpers used by
/// the bench harness to print Table 1/Table 2-shaped reports.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_FORMAT_H
#define FCSL_SUPPORT_FORMAT_H

#include <string>
#include <vector>

namespace fcsl {

/// Returns the printf-style rendering of \p Fmt with the given arguments.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep ("a, b, c" for Sep = ", ").
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Pads \p S with spaces on the right up to \p Width (no-op if longer).
std::string padRight(const std::string &S, unsigned Width);

/// Pads \p S with spaces on the left up to \p Width (no-op if longer).
std::string padLeft(const std::string &S, unsigned Width);

/// A simple monospaced table renderer: collects rows of cells and renders
/// them with per-column widths, a header rule, and optional right-alignment
/// for numeric columns. Used to regenerate the paper's tables.
class TextTable {
public:
  /// Sets the header row. Must be called before adding rows.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a body row; shorter rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Marks column \p Index as right-aligned (numeric).
  void setRightAligned(unsigned Index);

  /// Renders the table to a string, one row per line.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<bool> RightAligned;
};

} // namespace fcsl

#endif // FCSL_SUPPORT_FORMAT_H
