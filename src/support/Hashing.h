//===- support/Hashing.h - Hash combination utilities -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combination helpers used by the explicit-state model checker to
/// hash heaps, PCM values, subjective states and engine configurations.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SUPPORT_HASHING_H
#define FCSL_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace fcsl {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline void hashCombine(std::size_t &Seed, std::size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes any value with a std::hash specialization into \p Seed.
template <typename T> void hashValue(std::size_t &Seed, const T &V) {
  hashCombine(Seed, std::hash<T>{}(V));
}

/// Hashes a range of hashable elements into \p Seed, order-sensitively.
template <typename Range> void hashRange(std::size_t &Seed, const Range &R) {
  for (const auto &Elem : R)
    hashValue(Seed, Elem);
}

} // namespace fcsl

#endif // FCSL_SUPPORT_HASHING_H
