//===- pcm/Histories.h - Time-stamped action histories ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-stamped action histories, the PCM used by the paper (after Sergey et
/// al., ESOP'15) to specify the pair snapshot, the Treiber stack and the
/// producer/consumer clients "in the spirit of linearizability": each entry
/// t -> (a, a') records that at abstract time t the shared structure's
/// abstract state changed from a to a'. Histories form a PCM under disjoint
/// union of their timestamp domains.
///
/// Like Heap, a History is a handle to a hash-consed node: structurally
/// equal histories share one canonical node (O(1) copies, pointer
/// equality, precomputed fingerprint).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_HISTORIES_H
#define FCSL_PCM_HISTORIES_H

#include "heap/Val.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace fcsl {

namespace detail {
struct HistNode;
}

/// One history entry: the abstract state before and after the step taken at
/// some timestamp.
struct HistEntry {
  Val Before;
  Val After;

  friend bool operator==(const HistEntry &A, const HistEntry &B) {
    return A.Before == B.Before && A.After == B.After;
  }
  friend bool operator<(const HistEntry &A, const HistEntry &B) {
    if (A.Before != B.Before)
      return A.Before < B.Before;
    return A.After < B.After;
  }
};

/// A time-stamped history: a finite map from timestamps to entries.
class History {
public:
  History();

  bool isEmpty() const;
  size_t size() const;

  bool contains(uint64_t T) const;
  const HistEntry *tryLookup(uint64_t T) const;

  /// Adds entry \p E at timestamp \p T; asserts \p T is fresh and nonzero.
  void add(uint64_t T, HistEntry E);

  /// Returns the largest timestamp, or 0 for the empty history.
  uint64_t lastStamp() const;

  /// Disjoint union on timestamps; std::nullopt when stamps overlap.
  static std::optional<History> join(const History &A, const History &B);

  /// Checks the "continuity" shape used as a coherence invariant: timestamps
  /// are exactly 1..size() and each entry's Before matches the previous
  /// entry's After.
  bool isContinuous() const;

  /// Rewrites every pointer inside the entries' Before/After values through
  /// \p M (timestamps are untouched). Used by the symmetry layer's canonical
  /// renaming of fresh heap names (DESIGN.md §11).
  History renamePtrs(const std::map<Ptr, Ptr> &M) const;

  int compare(const History &Other) const;
  friend bool operator==(const History &A, const History &B) {
    return A.N == B.N;
  }
  friend bool operator<(const History &A, const History &B) {
    return A.compare(B) < 0;
  }

  /// The precomputed structural fingerprint (process-stable).
  uint64_t fingerprint() const;

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

  std::map<uint64_t, HistEntry>::const_iterator begin() const;
  std::map<uint64_t, HistEntry>::const_iterator end() const;

private:
  explicit History(const detail::HistNode *N) : N(N) {}

  const detail::HistNode *N; ///< never null; owned by the intern arena.
};

namespace detail {

/// The interned payload of a History.
struct HistNode {
  std::map<uint64_t, HistEntry> Entries;
  uint64_t Fp = 0;

  bool samePayload(const HistNode &O) const {
    return Fp == O.Fp && Entries == O.Entries;
  }
};

const HistNode *histEmptyNode();

} // namespace detail

inline History::History() : N(detail::histEmptyNode()) {}
inline bool History::isEmpty() const { return N->Entries.empty(); }
inline size_t History::size() const { return N->Entries.size(); }
inline bool History::contains(uint64_t T) const {
  return N->Entries.count(T) != 0;
}
inline uint64_t History::fingerprint() const { return N->Fp; }
inline void History::hashInto(std::size_t &Seed) const {
  hashCombine(Seed, static_cast<std::size_t>(N->Fp));
}
inline std::map<uint64_t, HistEntry>::const_iterator History::begin() const {
  return N->Entries.begin();
}
inline std::map<uint64_t, HistEntry>::const_iterator History::end() const {
  return N->Entries.end();
}

} // namespace fcsl

#endif // FCSL_PCM_HISTORIES_H
