//===- pcm/Histories.h - Time-stamped action histories ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-stamped action histories, the PCM used by the paper (after Sergey et
/// al., ESOP'15) to specify the pair snapshot, the Treiber stack and the
/// producer/consumer clients "in the spirit of linearizability": each entry
/// t -> (a, a') records that at abstract time t the shared structure's
/// abstract state changed from a to a'. Histories form a PCM under disjoint
/// union of their timestamp domains.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_HISTORIES_H
#define FCSL_PCM_HISTORIES_H

#include "heap/Val.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace fcsl {

/// One history entry: the abstract state before and after the step taken at
/// some timestamp.
struct HistEntry {
  Val Before;
  Val After;

  friend bool operator==(const HistEntry &A, const HistEntry &B) {
    return A.Before == B.Before && A.After == B.After;
  }
  friend bool operator<(const HistEntry &A, const HistEntry &B) {
    if (A.Before != B.Before)
      return A.Before < B.Before;
    return A.After < B.After;
  }
};

/// A time-stamped history: a finite map from timestamps to entries.
class History {
public:
  History() = default;

  bool isEmpty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }

  bool contains(uint64_t T) const { return Entries.count(T) != 0; }
  const HistEntry *tryLookup(uint64_t T) const;

  /// Adds entry \p E at timestamp \p T; asserts \p T is fresh and nonzero.
  void add(uint64_t T, HistEntry E);

  /// Returns the largest timestamp, or 0 for the empty history.
  uint64_t lastStamp() const;

  /// Disjoint union on timestamps; std::nullopt when stamps overlap.
  static std::optional<History> join(const History &A, const History &B);

  /// Checks the "continuity" shape used as a coherence invariant: timestamps
  /// are exactly 1..size() and each entry's Before matches the previous
  /// entry's After.
  bool isContinuous() const;

  int compare(const History &Other) const;
  friend bool operator==(const History &A, const History &B) {
    return A.compare(B) == 0;
  }
  friend bool operator<(const History &A, const History &B) {
    return A.compare(B) < 0;
  }

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

private:
  std::map<uint64_t, HistEntry> Entries;
};

} // namespace fcsl

#endif // FCSL_PCM_HISTORIES_H
