//===- pcm/Algebra.h - PCM laws as checkable properties ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "theory of PCMs" library, rendered as checkable algebraic
/// laws. Where the Coq development proves commutativity/associativity/unit
/// once and for all, we expose the laws as decision procedures over finite
/// samples of carrier elements; the property-test suites sweep them over
/// generated elements of every carrier used by the case studies.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_ALGEBRA_H
#define FCSL_PCM_ALGEBRA_H

#include "pcm/PCMVal.h"

#include <vector>

namespace fcsl {

/// Outcome of a PCM-law check over a sample of elements.
struct PCMLawReport {
  bool CommutativityHolds = true;
  bool AssociativityHolds = true;
  bool UnitLawHolds = true;
  bool UnitValid = true;
  uint64_t JoinsEvaluated = 0;

  bool allHold() const {
    return CommutativityHolds && AssociativityHolds && UnitLawHolds &&
           UnitValid;
  }
};

/// Checks the PCM laws for carrier \p T over the element \p Sample:
///  - a \+ b == b \+ a (including agreement on definedness),
///  - (a \+ b) \+ c == a \+ (b \+ c) whenever both sides are defined, with
///    definedness itself associative,
///  - unit \+ a == a, and the unit is valid.
inline PCMLawReport checkPCMLaws(const PCMType &T,
                                 const std::vector<PCMVal> &Sample) {
  PCMLawReport Report;
  PCMVal Unit = T.unit();
  Report.UnitValid = Unit.isValid();

  for (const PCMVal &A : Sample) {
    std::optional<PCMVal> WithUnit = PCMVal::join(Unit, A);
    ++Report.JoinsEvaluated;
    if (!WithUnit || *WithUnit != A)
      Report.UnitLawHolds = false;

    for (const PCMVal &B : Sample) {
      std::optional<PCMVal> AB = PCMVal::join(A, B);
      std::optional<PCMVal> BA = PCMVal::join(B, A);
      Report.JoinsEvaluated += 2;
      if (AB.has_value() != BA.has_value() ||
          (AB.has_value() && *AB != *BA))
        Report.CommutativityHolds = false;

      for (const PCMVal &C : Sample) {
        std::optional<PCMVal> Left =
            AB ? PCMVal::join(*AB, C) : std::nullopt;
        std::optional<PCMVal> BC = PCMVal::join(B, C);
        std::optional<PCMVal> Right =
            BC ? PCMVal::join(A, *BC) : std::nullopt;
        Report.JoinsEvaluated += 2;
        if (Left.has_value() != Right.has_value() ||
            (Left.has_value() && *Left != *Right))
          Report.AssociativityHolds = false;
      }
    }
  }
  return Report;
}

/// Checks cancellativity over the sample: a \+ b == a \+ c (both defined)
/// implies b == c. All carriers used in the paper are cancellative, which
/// FCSL's metatheory exploits when splitting self contributions.
inline bool checkCancellativity(const std::vector<PCMVal> &Sample) {
  for (const PCMVal &A : Sample)
    for (const PCMVal &B : Sample)
      for (const PCMVal &C : Sample) {
        std::optional<PCMVal> AB = PCMVal::join(A, B);
        std::optional<PCMVal> AC = PCMVal::join(A, C);
        if (AB && AC && *AB == *AC && B != C)
          return false;
      }
  return true;
}

} // namespace fcsl

#endif // FCSL_PCM_ALGEBRA_H
