//===- pcm/PCMVal.cpp - Dynamic PCM elements -------------------------------===//
//
// Part of fcsl-cpp. See PCMVal.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "pcm/PCMVal.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;

PCMVal PCMVal::ofNat(uint64_t N) {
  PCMVal V;
  V.K = PCMKind::Nat;
  V.Nat = N;
  return V;
}

PCMVal PCMVal::mutexOwn() {
  PCMVal V;
  V.K = PCMKind::Mutex;
  V.Own = true;
  return V;
}

PCMVal PCMVal::mutexFree() {
  PCMVal V;
  V.K = PCMKind::Mutex;
  V.Own = false;
  return V;
}

PCMVal PCMVal::ofPtrSet(std::set<Ptr> S) {
  PCMVal V;
  V.K = PCMKind::PtrSet;
  V.Set = std::move(S);
  return V;
}

PCMVal PCMVal::singletonPtr(Ptr P) {
  assert(!P.isNull() && "null cannot be a set element");
  return ofPtrSet({P});
}

PCMVal PCMVal::ofHeap(Heap H) {
  PCMVal V;
  V.K = PCMKind::HeapPCM;
  V.HeapVal = std::move(H);
  return V;
}

PCMVal PCMVal::ofHist(History H) {
  PCMVal V;
  V.K = PCMKind::Hist;
  V.Hist = std::move(H);
  return V;
}

PCMVal PCMVal::makePair(PCMVal First, PCMVal Second) {
  PCMVal V;
  V.K = PCMKind::Pair;
  V.PairVal = std::make_shared<const std::pair<PCMVal, PCMVal>>(
      std::move(First), std::move(Second));
  return V;
}

PCMVal PCMVal::liftDef(PCMVal Inner) {
  PCMVal V;
  V.K = PCMKind::Lift;
  V.LiftVal = std::make_shared<const PCMVal>(std::move(Inner));
  return V;
}

PCMVal PCMVal::liftUndef(PCMTypeRef Inner) {
  PCMVal V;
  V.K = PCMKind::Lift;
  V.LiftInnerType = std::move(Inner);
  return V;
}

uint64_t PCMVal::getNat() const {
  assert(K == PCMKind::Nat && "not a nat element");
  return Nat;
}

bool PCMVal::isOwn() const {
  assert(K == PCMKind::Mutex && "not a mutex element");
  return Own;
}

const std::set<Ptr> &PCMVal::getPtrSet() const {
  assert(K == PCMKind::PtrSet && "not a pointer-set element");
  return Set;
}

const Heap &PCMVal::getHeap() const {
  assert(K == PCMKind::HeapPCM && "not a heap element");
  return HeapVal;
}

const History &PCMVal::getHist() const {
  assert(K == PCMKind::Hist && "not a history element");
  return Hist;
}

const PCMVal &PCMVal::first() const {
  assert(K == PCMKind::Pair && "not a product element");
  return PairVal->first;
}

const PCMVal &PCMVal::second() const {
  assert(K == PCMKind::Pair && "not a product element");
  return PairVal->second;
}

bool PCMVal::isLiftUndef() const {
  assert(K == PCMKind::Lift && "not a lifted element");
  return LiftVal == nullptr;
}

const PCMVal &PCMVal::liftInner() const {
  assert(K == PCMKind::Lift && LiftVal && "not a defined lifted element");
  return *LiftVal;
}

std::optional<PCMVal> PCMVal::join(const PCMVal &A, const PCMVal &B) {
  assert(A.K == B.K && "joining elements of different PCMs");
  switch (A.K) {
  case PCMKind::Nat:
    return ofNat(A.Nat + B.Nat);
  case PCMKind::Mutex:
    // Own * Own is undefined: at most one thread holds the lock token.
    if (A.Own && B.Own)
      return std::nullopt;
    return A.Own || B.Own ? mutexOwn() : mutexFree();
  case PCMKind::PtrSet: {
    for (Ptr P : A.Set)
      if (B.Set.count(P))
        return std::nullopt;
    std::set<Ptr> Out = A.Set;
    Out.insert(B.Set.begin(), B.Set.end());
    return ofPtrSet(std::move(Out));
  }
  case PCMKind::HeapPCM: {
    std::optional<Heap> H = Heap::join(A.HeapVal, B.HeapVal);
    if (!H)
      return std::nullopt;
    return ofHeap(std::move(*H));
  }
  case PCMKind::Hist: {
    std::optional<History> H = History::join(A.Hist, B.Hist);
    if (!H)
      return std::nullopt;
    return ofHist(std::move(*H));
  }
  case PCMKind::Pair: {
    std::optional<PCMVal> First = join(A.first(), B.first());
    if (!First)
      return std::nullopt;
    std::optional<PCMVal> Second = join(A.second(), B.second());
    if (!Second)
      return std::nullopt;
    return makePair(std::move(*First), std::move(*Second));
  }
  case PCMKind::Lift: {
    // The lifted PCM makes join total by absorbing failures into the
    // explicit undefined element.
    PCMTypeRef InnerTy =
        A.LiftInnerType ? A.LiftInnerType : B.LiftInnerType;
    if (A.isLiftUndef() || B.isLiftUndef())
      return liftUndef(InnerTy);
    std::optional<PCMVal> Inner = join(A.liftInner(), B.liftInner());
    if (!Inner)
      return liftUndef(InnerTy);
    return liftDef(std::move(*Inner));
  }
  }
  assert(false && "unknown PCM kind");
  return std::nullopt;
}

bool PCMVal::isValid() const {
  switch (K) {
  case PCMKind::Pair:
    return first().isValid() && second().isValid();
  case PCMKind::Lift:
    return !isLiftUndef() && liftInner().isValid();
  default:
    return true;
  }
}

bool PCMVal::isUnitOf(const PCMType &T) const {
  return T.admits(*this) && *this == T.unit();
}

int PCMVal::compare(const PCMVal &Other) const {
  if (K != Other.K)
    return K < Other.K ? -1 : 1;
  switch (K) {
  case PCMKind::Nat:
    if (Nat != Other.Nat)
      return Nat < Other.Nat ? -1 : 1;
    return 0;
  case PCMKind::Mutex:
    if (Own != Other.Own)
      return Own < Other.Own ? -1 : 1;
    return 0;
  case PCMKind::PtrSet: {
    if (Set.size() != Other.Set.size())
      return Set.size() < Other.Set.size() ? -1 : 1;
    auto AIt = Set.begin();
    auto BIt = Other.Set.begin();
    for (; AIt != Set.end(); ++AIt, ++BIt)
      if (*AIt != *BIt)
        return *AIt < *BIt ? -1 : 1;
    return 0;
  }
  case PCMKind::HeapPCM:
    return HeapVal.compare(Other.HeapVal);
  case PCMKind::Hist:
    return Hist.compare(Other.Hist);
  case PCMKind::Pair: {
    int First = PairVal->first.compare(Other.PairVal->first);
    if (First != 0)
      return First;
    return PairVal->second.compare(Other.PairVal->second);
  }
  case PCMKind::Lift: {
    bool AUndef = isLiftUndef(), BUndef = Other.isLiftUndef();
    if (AUndef != BUndef)
      return AUndef ? -1 : 1;
    if (AUndef)
      return 0;
    return LiftVal->compare(*Other.LiftVal);
  }
  }
  assert(false && "unknown PCM kind");
  return 0;
}

void PCMVal::hashInto(std::size_t &Seed) const {
  hashValue(Seed, static_cast<uint8_t>(K));
  switch (K) {
  case PCMKind::Nat:
    hashValue(Seed, Nat);
    break;
  case PCMKind::Mutex:
    hashValue(Seed, Own);
    break;
  case PCMKind::PtrSet:
    hashValue(Seed, Set.size());
    for (Ptr P : Set)
      hashValue(Seed, P.id());
    break;
  case PCMKind::HeapPCM:
    HeapVal.hashInto(Seed);
    break;
  case PCMKind::Hist:
    Hist.hashInto(Seed);
    break;
  case PCMKind::Pair:
    PairVal->first.hashInto(Seed);
    PairVal->second.hashInto(Seed);
    break;
  case PCMKind::Lift:
    hashValue(Seed, isLiftUndef());
    if (!isLiftUndef())
      LiftVal->hashInto(Seed);
    break;
  }
}

namespace {

/// Truncates \p Out to \p Limit elements if a limit is set.
void clampTo(std::vector<PCMVal> &Out, size_t Limit) {
  if (Limit != 0 && Out.size() > Limit)
    Out.resize(Limit);
}

} // namespace

std::vector<PCMVal> fcsl::enumerateSubElements(const PCMVal &V,
                                               size_t Limit) {
  std::vector<PCMVal> Out;
  switch (V.kind()) {
  case PCMKind::Nat:
    for (uint64_t N = 0; N <= V.getNat(); ++N)
      Out.push_back(PCMVal::ofNat(N));
    break;
  case PCMKind::Mutex:
    Out.push_back(PCMVal::mutexFree());
    if (V.isOwn())
      Out.push_back(PCMVal::mutexOwn());
    break;
  case PCMKind::PtrSet: {
    // All subsets; carriers in the case studies keep sets small.
    std::vector<Ptr> Elems(V.getPtrSet().begin(), V.getPtrSet().end());
    size_t Count = size_t{1} << std::min<size_t>(Elems.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      std::set<Ptr> Subset;
      for (size_t I = 0; I < Elems.size(); ++I)
        if (Mask & (size_t{1} << I))
          Subset.insert(Elems[I]);
      Out.push_back(PCMVal::ofPtrSet(std::move(Subset)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::HeapPCM: {
    std::vector<std::pair<Ptr, Val>> Cells(V.getHeap().begin(),
                                           V.getHeap().end());
    size_t Count = size_t{1} << std::min<size_t>(Cells.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      Heap Sub;
      for (size_t I = 0; I < Cells.size(); ++I)
        if (Mask & (size_t{1} << I))
          Sub.insert(Cells[I].first, Cells[I].second);
      Out.push_back(PCMVal::ofHeap(std::move(Sub)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Hist: {
    std::vector<std::pair<uint64_t, HistEntry>> Entries(V.getHist().begin(),
                                                        V.getHist().end());
    size_t Count = size_t{1} << std::min<size_t>(Entries.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      History Sub;
      for (size_t I = 0; I < Entries.size(); ++I)
        if (Mask & (size_t{1} << I))
          Sub.add(Entries[I].first, Entries[I].second);
      Out.push_back(PCMVal::ofHist(std::move(Sub)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Pair: {
    std::vector<PCMVal> Firsts = enumerateSubElements(V.first(), Limit);
    std::vector<PCMVal> Seconds = enumerateSubElements(V.second(), Limit);
    for (const PCMVal &F : Firsts) {
      for (const PCMVal &S : Seconds) {
        Out.push_back(PCMVal::makePair(F, S));
        if (Limit != 0 && Out.size() >= Limit)
          break;
      }
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Lift:
    if (V.isLiftUndef()) {
      Out.push_back(V);
    } else {
      for (PCMVal &Inner : enumerateSubElements(V.liftInner(), Limit))
        Out.push_back(PCMVal::liftDef(std::move(Inner)));
    }
    break;
  }
  clampTo(Out, Limit);
  return Out;
}

std::string PCMVal::toString() const {
  switch (K) {
  case PCMKind::Nat:
    return formatString("%llu", static_cast<unsigned long long>(Nat));
  case PCMKind::Mutex:
    return Own ? "Own" : "NotOwn";
  case PCMKind::PtrSet: {
    std::string Out = "{";
    bool First = true;
    for (Ptr P : Set) {
      if (!First)
        Out += ", ";
      First = false;
      Out += P.toString();
    }
    return Out + "}";
  }
  case PCMKind::HeapPCM:
    return HeapVal.toString();
  case PCMKind::Hist:
    return Hist.toString();
  case PCMKind::Pair:
    return "<" + PairVal->first.toString() + " | " +
           PairVal->second.toString() + ">";
  case PCMKind::Lift:
    return isLiftUndef() ? "Undef" : "Def(" + LiftVal->toString() + ")";
  }
  assert(false && "unknown PCM kind");
  return "<?>";
}
