//===- pcm/PCMVal.cpp - Dynamic PCM elements -------------------------------===//
//
// Part of fcsl-cpp. See PCMVal.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "pcm/PCMVal.h"

#include "support/Format.h"
#include "support/Intern.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;
using fcsl::detail::PCMNode;

namespace {

detail::InternArena<PCMNode> &arena() {
  static auto *A = new detail::InternArena<PCMNode>("pcmval");
  return *A;
}

uint64_t pcmSalt() {
  static const uint64_t Salt = fpString("fcsl.pcmval");
  return Salt;
}

uint64_t fpOf(const PCMNode &V) {
  uint64_t Fp = fpCombine(pcmSalt(), static_cast<uint64_t>(V.K));
  switch (V.K) {
  case PCMKind::Nat:
    Fp = fpCombine(Fp, V.Nat);
    break;
  case PCMKind::Mutex:
    Fp = fpCombine(Fp, V.Own);
    break;
  case PCMKind::PtrSet:
    Fp = fpCombine(Fp, V.Set.size());
    for (Ptr P : V.Set)
      Fp = fpCombine(Fp, P.id());
    break;
  case PCMKind::HeapPCM:
    Fp = fpCombine(Fp, V.HeapVal.fingerprint());
    break;
  case PCMKind::Hist:
    Fp = fpCombine(Fp, V.Hist.fingerprint());
    break;
  case PCMKind::Pair:
    Fp = fpCombine(Fp, V.FirstN->Fp);
    Fp = fpCombine(Fp, V.SecondN->Fp);
    break;
  case PCMKind::Lift:
    // The carrier type of an undefined element is deliberately excluded:
    // structural equality (and hence interning) never distinguished
    // undefined elements by carrier, so all of them share one node.
    Fp = fpCombine(Fp, V.LiftN != nullptr);
    if (V.LiftN)
      Fp = fpCombine(Fp, V.LiftN->Fp);
    break;
  }
  return Fp;
}

const PCMNode *intern(PCMNode &&V) {
  V.Fp = fpOf(V);
  return arena().intern(std::move(V));
}

} // namespace

bool PCMNode::samePayload(const PCMNode &O) const {
  if (Fp != O.Fp || K != O.K)
    return false;
  switch (K) {
  case PCMKind::Nat:
    return Nat == O.Nat;
  case PCMKind::Mutex:
    return Own == O.Own;
  case PCMKind::PtrSet:
    return Set == O.Set;
  case PCMKind::HeapPCM:
    return HeapVal == O.HeapVal;
  case PCMKind::Hist:
    return Hist == O.Hist;
  case PCMKind::Pair:
    return FirstN == O.FirstN && SecondN == O.SecondN;
  case PCMKind::Lift:
    return LiftN == O.LiftN;
  }
  return false;
}

const PCMNode *fcsl::detail::pcmNatUnitNode() {
  static const PCMNode *N = [] {
    PCMNode V;
    V.K = PCMKind::Nat;
    return intern(std::move(V));
  }();
  return N;
}

PCMVal PCMVal::ofNat(uint64_t N) {
  PCMNode V;
  V.K = PCMKind::Nat;
  V.Nat = N;
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::mutexOwn() {
  PCMNode V;
  V.K = PCMKind::Mutex;
  V.Own = true;
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::mutexFree() {
  PCMNode V;
  V.K = PCMKind::Mutex;
  V.Own = false;
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::ofPtrSet(std::set<Ptr> S) {
  PCMNode V;
  V.K = PCMKind::PtrSet;
  V.Set = std::move(S);
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::singletonPtr(Ptr P) {
  assert(!P.isNull() && "null cannot be a set element");
  return ofPtrSet({P});
}

PCMVal PCMVal::ofHeap(Heap H) {
  PCMNode V;
  V.K = PCMKind::HeapPCM;
  V.HeapVal = std::move(H);
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::ofHist(History H) {
  PCMNode V;
  V.K = PCMKind::Hist;
  V.Hist = std::move(H);
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::makePair(PCMVal First, PCMVal Second) {
  PCMNode V;
  V.K = PCMKind::Pair;
  V.FirstN = First.N;
  V.SecondN = Second.N;
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::liftDef(PCMVal Inner) {
  PCMNode V;
  V.K = PCMKind::Lift;
  V.LiftN = Inner.N;
  return PCMVal(intern(std::move(V)));
}

PCMVal PCMVal::liftUndef(PCMTypeRef Inner) {
  // All undefined elements intern to one node (they always compared equal),
  // so the stored carrier is whichever one was interned first. That is fine:
  // the carrier is advisory — only join reads it, to decorate another
  // undefined element.
  PCMNode V;
  V.K = PCMKind::Lift;
  V.LiftInnerType = std::move(Inner);
  return PCMVal(intern(std::move(V)));
}

uint64_t PCMVal::getNat() const {
  assert(N->K == PCMKind::Nat && "not a nat element");
  return N->Nat;
}

bool PCMVal::isOwn() const {
  assert(N->K == PCMKind::Mutex && "not a mutex element");
  return N->Own;
}

const std::set<Ptr> &PCMVal::getPtrSet() const {
  assert(N->K == PCMKind::PtrSet && "not a pointer-set element");
  return N->Set;
}

const Heap &PCMVal::getHeap() const {
  assert(N->K == PCMKind::HeapPCM && "not a heap element");
  return N->HeapVal;
}

const History &PCMVal::getHist() const {
  assert(N->K == PCMKind::Hist && "not a history element");
  return N->Hist;
}

PCMVal PCMVal::first() const {
  assert(N->K == PCMKind::Pair && "not a product element");
  return PCMVal(N->FirstN);
}

PCMVal PCMVal::second() const {
  assert(N->K == PCMKind::Pair && "not a product element");
  return PCMVal(N->SecondN);
}

bool PCMVal::isLiftUndef() const {
  assert(N->K == PCMKind::Lift && "not a lifted element");
  return N->LiftN == nullptr;
}

PCMVal PCMVal::liftInner() const {
  assert(N->K == PCMKind::Lift && N->LiftN &&
         "not a defined lifted element");
  return PCMVal(N->LiftN);
}

std::optional<PCMVal> PCMVal::join(const PCMVal &A, const PCMVal &B) {
  assert(A.N->K == B.N->K && "joining elements of different PCMs");
  switch (A.N->K) {
  case PCMKind::Nat:
    return ofNat(A.N->Nat + B.N->Nat);
  case PCMKind::Mutex:
    // Own * Own is undefined: at most one thread holds the lock token.
    if (A.N->Own && B.N->Own)
      return std::nullopt;
    return A.N->Own || B.N->Own ? mutexOwn() : mutexFree();
  case PCMKind::PtrSet: {
    for (Ptr P : A.N->Set)
      if (B.N->Set.count(P))
        return std::nullopt;
    std::set<Ptr> Out = A.N->Set;
    Out.insert(B.N->Set.begin(), B.N->Set.end());
    return ofPtrSet(std::move(Out));
  }
  case PCMKind::HeapPCM: {
    std::optional<Heap> H = Heap::join(A.N->HeapVal, B.N->HeapVal);
    if (!H)
      return std::nullopt;
    return ofHeap(std::move(*H));
  }
  case PCMKind::Hist: {
    std::optional<History> H = History::join(A.N->Hist, B.N->Hist);
    if (!H)
      return std::nullopt;
    return ofHist(std::move(*H));
  }
  case PCMKind::Pair: {
    std::optional<PCMVal> First = join(A.first(), B.first());
    if (!First)
      return std::nullopt;
    std::optional<PCMVal> Second = join(A.second(), B.second());
    if (!Second)
      return std::nullopt;
    return makePair(std::move(*First), std::move(*Second));
  }
  case PCMKind::Lift: {
    // The lifted PCM makes join total by absorbing failures into the
    // explicit undefined element.
    PCMTypeRef InnerTy =
        A.N->LiftInnerType ? A.N->LiftInnerType : B.N->LiftInnerType;
    if (A.isLiftUndef() || B.isLiftUndef())
      return liftUndef(InnerTy);
    std::optional<PCMVal> Inner = join(A.liftInner(), B.liftInner());
    if (!Inner)
      return liftUndef(InnerTy);
    return liftDef(std::move(*Inner));
  }
  }
  assert(false && "unknown PCM kind");
  return std::nullopt;
}

bool PCMVal::isValid() const {
  switch (N->K) {
  case PCMKind::Pair:
    return first().isValid() && second().isValid();
  case PCMKind::Lift:
    return !isLiftUndef() && liftInner().isValid();
  default:
    return true;
  }
}

bool PCMVal::isUnitOf(const PCMType &T) const {
  return T.admits(*this) && *this == T.unit();
}

PCMVal PCMVal::renamePtrs(const std::map<Ptr, Ptr> &M) const {
  if (M.empty())
    return *this;
  switch (N->K) {
  case PCMKind::Nat:
  case PCMKind::Mutex:
    return *this;
  case PCMKind::PtrSet: {
    auto Map = [&M](Ptr P) {
      auto It = M.find(P);
      return It == M.end() ? P : It->second;
    };
    std::set<Ptr> Out;
    bool Changed = false;
    for (Ptr P : N->Set) {
      Ptr Q = Map(P);
      Changed |= Q != P;
      bool Inserted = Out.insert(Q).second;
      assert(Inserted && "pointer renaming must stay injective on the set");
      (void)Inserted;
    }
    return Changed ? ofPtrSet(std::move(Out)) : *this;
  }
  case PCMKind::HeapPCM: {
    Heap H = N->HeapVal.renamePtrs(M);
    return H == N->HeapVal ? *this : ofHeap(std::move(H));
  }
  case PCMKind::Hist: {
    History H = N->Hist.renamePtrs(M);
    return H == N->Hist ? *this : ofHist(std::move(H));
  }
  case PCMKind::Pair: {
    PCMVal First = first().renamePtrs(M);
    PCMVal Second = second().renamePtrs(M);
    if (First.N == N->FirstN && Second.N == N->SecondN)
      return *this;
    return makePair(std::move(First), std::move(Second));
  }
  case PCMKind::Lift: {
    if (isLiftUndef())
      return *this;
    PCMVal Inner = liftInner().renamePtrs(M);
    return Inner.N == N->LiftN ? *this : liftDef(std::move(Inner));
  }
  }
  assert(false && "unknown PCM kind");
  return *this;
}

int PCMVal::compare(const PCMVal &Other) const {
  if (N == Other.N)
    return 0;
  if (N->K != Other.N->K)
    return N->K < Other.N->K ? -1 : 1;
  switch (N->K) {
  case PCMKind::Nat:
    if (N->Nat != Other.N->Nat)
      return N->Nat < Other.N->Nat ? -1 : 1;
    return 0;
  case PCMKind::Mutex:
    if (N->Own != Other.N->Own)
      return N->Own < Other.N->Own ? -1 : 1;
    return 0;
  case PCMKind::PtrSet: {
    const std::set<Ptr> &A = N->Set, &B = Other.N->Set;
    if (A.size() != B.size())
      return A.size() < B.size() ? -1 : 1;
    auto AIt = A.begin();
    auto BIt = B.begin();
    for (; AIt != A.end(); ++AIt, ++BIt)
      if (*AIt != *BIt)
        return *AIt < *BIt ? -1 : 1;
    return 0;
  }
  case PCMKind::HeapPCM:
    return N->HeapVal.compare(Other.N->HeapVal);
  case PCMKind::Hist:
    return N->Hist.compare(Other.N->Hist);
  case PCMKind::Pair: {
    int First = PCMVal(N->FirstN).compare(PCMVal(Other.N->FirstN));
    if (First != 0)
      return First;
    return PCMVal(N->SecondN).compare(PCMVal(Other.N->SecondN));
  }
  case PCMKind::Lift: {
    bool AUndef = isLiftUndef(), BUndef = Other.isLiftUndef();
    if (AUndef != BUndef)
      return AUndef ? -1 : 1;
    if (AUndef)
      return 0;
    return PCMVal(N->LiftN).compare(PCMVal(Other.N->LiftN));
  }
  }
  assert(false && "unknown PCM kind");
  return 0;
}

namespace {

/// Truncates \p Out to \p Limit elements if a limit is set.
void clampTo(std::vector<PCMVal> &Out, size_t Limit) {
  if (Limit != 0 && Out.size() > Limit)
    Out.resize(Limit);
}

} // namespace

std::vector<PCMVal> fcsl::enumerateSubElements(const PCMVal &V,
                                               size_t Limit) {
  std::vector<PCMVal> Out;
  switch (V.kind()) {
  case PCMKind::Nat:
    for (uint64_t N = 0; N <= V.getNat(); ++N)
      Out.push_back(PCMVal::ofNat(N));
    break;
  case PCMKind::Mutex:
    Out.push_back(PCMVal::mutexFree());
    if (V.isOwn())
      Out.push_back(PCMVal::mutexOwn());
    break;
  case PCMKind::PtrSet: {
    // All subsets; carriers in the case studies keep sets small.
    std::vector<Ptr> Elems(V.getPtrSet().begin(), V.getPtrSet().end());
    size_t Count = size_t{1} << std::min<size_t>(Elems.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      std::set<Ptr> Subset;
      for (size_t I = 0; I < Elems.size(); ++I)
        if (Mask & (size_t{1} << I))
          Subset.insert(Elems[I]);
      Out.push_back(PCMVal::ofPtrSet(std::move(Subset)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::HeapPCM: {
    std::vector<std::pair<Ptr, Val>> Cells(V.getHeap().begin(),
                                           V.getHeap().end());
    size_t Count = size_t{1} << std::min<size_t>(Cells.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      Heap Sub;
      for (size_t I = 0; I < Cells.size(); ++I)
        if (Mask & (size_t{1} << I))
          Sub.insert(Cells[I].first, Cells[I].second);
      Out.push_back(PCMVal::ofHeap(std::move(Sub)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Hist: {
    std::vector<std::pair<uint64_t, HistEntry>> Entries(V.getHist().begin(),
                                                        V.getHist().end());
    size_t Count = size_t{1} << std::min<size_t>(Entries.size(), 20);
    for (size_t Mask = 0; Mask < Count; ++Mask) {
      History Sub;
      for (size_t I = 0; I < Entries.size(); ++I)
        if (Mask & (size_t{1} << I))
          Sub.add(Entries[I].first, Entries[I].second);
      Out.push_back(PCMVal::ofHist(std::move(Sub)));
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Pair: {
    std::vector<PCMVal> Firsts = enumerateSubElements(V.first(), Limit);
    std::vector<PCMVal> Seconds = enumerateSubElements(V.second(), Limit);
    for (const PCMVal &F : Firsts) {
      for (const PCMVal &S : Seconds) {
        Out.push_back(PCMVal::makePair(F, S));
        if (Limit != 0 && Out.size() >= Limit)
          break;
      }
      if (Limit != 0 && Out.size() >= Limit)
        break;
    }
    break;
  }
  case PCMKind::Lift:
    if (V.isLiftUndef()) {
      Out.push_back(V);
    } else {
      for (PCMVal &Inner : enumerateSubElements(V.liftInner(), Limit))
        Out.push_back(PCMVal::liftDef(std::move(Inner)));
    }
    break;
  }
  clampTo(Out, Limit);
  return Out;
}

std::string PCMVal::toString() const {
  switch (N->K) {
  case PCMKind::Nat:
    return formatString("%llu", static_cast<unsigned long long>(N->Nat));
  case PCMKind::Mutex:
    return N->Own ? "Own" : "NotOwn";
  case PCMKind::PtrSet: {
    std::string Out = "{";
    bool First = true;
    for (Ptr P : N->Set) {
      if (!First)
        Out += ", ";
      First = false;
      Out += P.toString();
    }
    return Out + "}";
  }
  case PCMKind::HeapPCM:
    return N->HeapVal.toString();
  case PCMKind::Hist:
    return N->Hist.toString();
  case PCMKind::Pair:
    return "<" + first().toString() + " | " + second().toString() + ">";
  case PCMKind::Lift:
    return isLiftUndef() ? "Undef"
                         : "Def(" + liftInner().toString() + ")";
  }
  assert(false && "unknown PCM kind");
  return "<?>";
}
