//===- pcm/PCMType.cpp - PCM type descriptors ------------------------------===//
//
// Part of fcsl-cpp. See PCMType.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "pcm/PCMType.h"

#include "pcm/PCMVal.h"

#include <cassert>

using namespace fcsl;

PCMTypeRef PCMType::nat() {
  static PCMTypeRef T(new PCMType(PCMKind::Nat));
  return T;
}

PCMTypeRef PCMType::mutex() {
  static PCMTypeRef T(new PCMType(PCMKind::Mutex));
  return T;
}

PCMTypeRef PCMType::ptrSet() {
  static PCMTypeRef T(new PCMType(PCMKind::PtrSet));
  return T;
}

PCMTypeRef PCMType::heap() {
  static PCMTypeRef T(new PCMType(PCMKind::HeapPCM));
  return T;
}

PCMTypeRef PCMType::hist() {
  static PCMTypeRef T(new PCMType(PCMKind::Hist));
  return T;
}

PCMTypeRef PCMType::pairOf(PCMTypeRef First, PCMTypeRef Second) {
  assert(First && Second && "pair components must be non-null");
  auto *T = new PCMType(PCMKind::Pair);
  T->First = std::move(First);
  T->Second = std::move(Second);
  return PCMTypeRef(T);
}

PCMTypeRef PCMType::lifted(PCMTypeRef Inner) {
  assert(Inner && "lifted component must be non-null");
  auto *T = new PCMType(PCMKind::Lift);
  T->Inner = std::move(Inner);
  return PCMTypeRef(T);
}

const PCMTypeRef &PCMType::first() const {
  assert(K == PCMKind::Pair && "not a product PCM");
  return First;
}

const PCMTypeRef &PCMType::second() const {
  assert(K == PCMKind::Pair && "not a product PCM");
  return Second;
}

const PCMTypeRef &PCMType::inner() const {
  assert(K == PCMKind::Lift && "not a lifted PCM");
  return Inner;
}

PCMVal PCMType::unit() const {
  switch (K) {
  case PCMKind::Nat:
    return PCMVal::ofNat(0);
  case PCMKind::Mutex:
    return PCMVal::mutexFree();
  case PCMKind::PtrSet:
    return PCMVal::ofPtrSet({});
  case PCMKind::HeapPCM:
    return PCMVal::ofHeap(Heap());
  case PCMKind::Hist:
    return PCMVal::ofHist(History());
  case PCMKind::Pair:
    return PCMVal::makePair(First->unit(), Second->unit());
  case PCMKind::Lift:
    return PCMVal::liftDef(Inner->unit());
  }
  assert(false && "unknown PCM kind");
  return PCMVal();
}

bool PCMType::admits(const PCMVal &V) const {
  if (V.kind() != K)
    return false;
  switch (K) {
  case PCMKind::Pair:
    return First->admits(V.first()) && Second->admits(V.second());
  case PCMKind::Lift:
    return V.isLiftUndef() || Inner->admits(V.liftInner());
  default:
    return true;
  }
}

std::string PCMType::name() const {
  switch (K) {
  case PCMKind::Nat:
    return "nat";
  case PCMKind::Mutex:
    return "mutex";
  case PCMKind::PtrSet:
    return "ptrset";
  case PCMKind::HeapPCM:
    return "heap";
  case PCMKind::Hist:
    return "hist";
  case PCMKind::Pair:
    return "(" + First->name() + " x " + Second->name() + ")";
  case PCMKind::Lift:
    return "lift(" + Inner->name() + ")";
  }
  assert(false && "unknown PCM kind");
  return "<?>";
}

bool fcsl::operator==(const PCMType &A, const PCMType &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case PCMKind::Pair:
    return *A.First == *B.First && *A.Second == *B.Second;
  case PCMKind::Lift:
    return *A.Inner == *B.Inner;
  default:
    return true;
  }
}
