//===- pcm/Histories.cpp - Time-stamped action histories ------------------===//
//
// Part of fcsl-cpp. See Histories.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "pcm/Histories.h"

#include "support/Format.h"
#include "support/Intern.h"

#include <cassert>

using namespace fcsl;
using fcsl::detail::HistNode;

namespace {

detail::InternArena<HistNode> &arena() {
  static auto *A = new detail::InternArena<HistNode>("history");
  return *A;
}

uint64_t histSalt() {
  static const uint64_t Salt = fpString("fcsl.hist");
  return Salt;
}

const HistNode *intern(std::map<uint64_t, HistEntry> Entries) {
  HistNode H;
  uint64_t Fp = fpCombine(histSalt(), Entries.size());
  for (const auto &Entry : Entries) {
    Fp = fpCombine(Fp, Entry.first);
    Fp = fpCombine(Fp, Entry.second.Before.fingerprint());
    Fp = fpCombine(Fp, Entry.second.After.fingerprint());
  }
  H.Entries = std::move(Entries);
  H.Fp = Fp;
  return arena().intern(std::move(H));
}

} // namespace

const HistNode *fcsl::detail::histEmptyNode() {
  static const HistNode *N = intern({});
  return N;
}

const HistEntry *History::tryLookup(uint64_t T) const {
  auto It = N->Entries.find(T);
  return It == N->Entries.end() ? nullptr : &It->second;
}

void History::add(uint64_t T, HistEntry E) {
  assert(T != 0 && "timestamp 0 is reserved");
  std::map<uint64_t, HistEntry> Entries = N->Entries;
  bool Inserted = Entries.emplace(T, std::move(E)).second;
  assert(Inserted && "duplicate timestamp in history");
  (void)Inserted;
  N = intern(std::move(Entries));
}

uint64_t History::lastStamp() const {
  return N->Entries.empty() ? 0 : N->Entries.rbegin()->first;
}

std::optional<History> History::join(const History &A, const History &B) {
  const History &Small = A.size() <= B.size() ? A : B;
  const History &Large = A.size() <= B.size() ? B : A;
  for (const auto &Entry : Small.N->Entries)
    if (Large.contains(Entry.first))
      return std::nullopt;
  if (Small.isEmpty())
    return Large;
  std::map<uint64_t, HistEntry> Entries = Large.N->Entries;
  for (const auto &Entry : Small.N->Entries)
    Entries.emplace(Entry.first, Entry.second);
  return History(intern(std::move(Entries)));
}

bool History::isContinuous() const {
  uint64_t Expected = 1;
  const Val *PrevAfter = nullptr;
  for (const auto &Entry : N->Entries) {
    if (Entry.first != Expected)
      return false;
    if (PrevAfter && !(*PrevAfter == Entry.second.Before))
      return false;
    PrevAfter = &Entry.second.After;
    ++Expected;
  }
  return true;
}

History History::renamePtrs(const std::map<Ptr, Ptr> &M) const {
  if (M.empty() || isEmpty())
    return *this;
  std::map<uint64_t, HistEntry> Entries;
  bool Changed = false;
  for (const auto &Entry : N->Entries) {
    HistEntry E{Entry.second.Before.renamePtrs(M),
                Entry.second.After.renamePtrs(M)};
    Changed |= !(E == Entry.second);
    Entries.emplace(Entry.first, std::move(E));
  }
  return Changed ? History(intern(std::move(Entries))) : *this;
}

int History::compare(const History &Other) const {
  if (N == Other.N)
    return 0;
  auto AIt = N->Entries.begin(), AEnd = N->Entries.end();
  auto BIt = Other.N->Entries.begin(), BEnd = Other.N->Entries.end();
  for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return AIt->first < BIt->first ? -1 : 1;
    if (!(AIt->second == BIt->second))
      return AIt->second < BIt->second ? -1 : 1;
  }
  if (AIt != AEnd)
    return 1;
  if (BIt != BEnd)
    return -1;
  return 0;
}

std::string History::toString() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &Entry : N->Entries) {
    if (!First)
      Out += ", ";
    First = false;
    Out += formatString("%llu: %s ~> %s",
                        static_cast<unsigned long long>(Entry.first),
                        Entry.second.Before.toString().c_str(),
                        Entry.second.After.toString().c_str());
  }
  Out += "]";
  return Out;
}
