//===- pcm/Histories.cpp - Time-stamped action histories ------------------===//
//
// Part of fcsl-cpp. See Histories.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "pcm/Histories.h"

#include "support/Format.h"

#include <cassert>

using namespace fcsl;

const HistEntry *History::tryLookup(uint64_t T) const {
  auto It = Entries.find(T);
  return It == Entries.end() ? nullptr : &It->second;
}

void History::add(uint64_t T, HistEntry E) {
  assert(T != 0 && "timestamp 0 is reserved");
  bool Inserted = Entries.emplace(T, std::move(E)).second;
  assert(Inserted && "duplicate timestamp in history");
  (void)Inserted;
}

uint64_t History::lastStamp() const {
  return Entries.empty() ? 0 : Entries.rbegin()->first;
}

std::optional<History> History::join(const History &A, const History &B) {
  const History &Small = A.size() <= B.size() ? A : B;
  const History &Large = A.size() <= B.size() ? B : A;
  for (const auto &Entry : Small.Entries)
    if (Large.contains(Entry.first))
      return std::nullopt;
  History Out = Large;
  for (const auto &Entry : Small.Entries)
    Out.Entries.emplace(Entry.first, Entry.second);
  return Out;
}

bool History::isContinuous() const {
  uint64_t Expected = 1;
  const Val *PrevAfter = nullptr;
  for (const auto &Entry : Entries) {
    if (Entry.first != Expected)
      return false;
    if (PrevAfter && !(*PrevAfter == Entry.second.Before))
      return false;
    PrevAfter = &Entry.second.After;
    ++Expected;
  }
  return true;
}

int History::compare(const History &Other) const {
  auto AIt = Entries.begin(), AEnd = Entries.end();
  auto BIt = Other.Entries.begin(), BEnd = Other.Entries.end();
  for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return AIt->first < BIt->first ? -1 : 1;
    if (!(AIt->second == BIt->second))
      return AIt->second < BIt->second ? -1 : 1;
  }
  if (AIt != AEnd)
    return 1;
  if (BIt != BEnd)
    return -1;
  return 0;
}

void History::hashInto(std::size_t &Seed) const {
  hashValue(Seed, Entries.size());
  for (const auto &Entry : Entries) {
    hashValue(Seed, Entry.first);
    Entry.second.Before.hashInto(Seed);
    Entry.second.After.hashInto(Seed);
  }
}

std::string History::toString() const {
  std::string Out = "[";
  bool First = true;
  for (const auto &Entry : Entries) {
    if (!First)
      Out += ", ";
    First = false;
    Out += formatString("%llu: %s ~> %s",
                        static_cast<unsigned long long>(Entry.first),
                        Entry.second.Before.toString().c_str(),
                        Entry.second.After.toString().c_str());
  }
  Out += "]";
  return Out;
}
