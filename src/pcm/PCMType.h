//===- pcm/PCMType.h - PCM type descriptors ---------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime descriptors of PCM carriers. The paper treats self/other thread
/// contributions uniformly as elements of user-chosen partial commutative
/// monoids; the case studies of Section 6 use: naturals under addition,
/// mutual exclusion, disjoint pointer sets, heaps, time-stamped histories,
/// lifted PCMs and finite products. A PCMType names one such carrier so that
/// the model checker can manufacture units and validate joins generically.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_PCMTYPE_H
#define FCSL_PCM_PCMTYPE_H

#include <memory>
#include <string>

namespace fcsl {

class PCMVal;
class PCMType;
using PCMTypeRef = std::shared_ptr<const PCMType>;

/// The kinds of PCM carriers supported by the dynamic framework.
enum class PCMKind : uint8_t {
  Nat,    ///< Natural numbers under addition; unit 0 (CG increment).
  Mutex,  ///< {NotOwn, Own}; Own * Own undefined (locks, flat combiner).
  PtrSet, ///< Finite pointer sets under disjoint union (spanning tree).
  HeapPCM,///< Heaps under disjoint union (thread-local state).
  Hist,   ///< Time-stamped histories (snapshot, Treiber stack).
  Pair,   ///< Binary product of two PCMs (lock protecting a client PCM).
  Lift    ///< U + explicit undefined element, making join total.
};

/// An immutable PCM carrier descriptor (a small tree for Pair/Lift).
class PCMType : public std::enable_shared_from_this<PCMType> {
public:
  static PCMTypeRef nat();
  static PCMTypeRef mutex();
  static PCMTypeRef ptrSet();
  static PCMTypeRef heap();
  static PCMTypeRef hist();
  static PCMTypeRef pairOf(PCMTypeRef First, PCMTypeRef Second);
  static PCMTypeRef lifted(PCMTypeRef Inner);

  PCMKind kind() const { return K; }

  /// Component accessors; assert on kind mismatch.
  const PCMTypeRef &first() const;
  const PCMTypeRef &second() const;
  const PCMTypeRef &inner() const;

  /// Manufactures the unit element of this carrier.
  PCMVal unit() const;

  /// Returns true if \p V is an element of this carrier (kind-shape check).
  bool admits(const PCMVal &V) const;

  /// Human-readable carrier name, e.g. "nat", "mutex x heap".
  std::string name() const;

  friend bool operator==(const PCMType &A, const PCMType &B);

private:
  explicit PCMType(PCMKind K) : K(K) {}

  PCMKind K;
  PCMTypeRef First; // Pair
  PCMTypeRef Second; // Pair
  PCMTypeRef Inner; // Lift
};

/// Structural equality of carrier descriptors.
bool operator==(const PCMType &A, const PCMType &B);

} // namespace fcsl

#endif // FCSL_PCM_PCMTYPE_H
