//===- pcm/PCMVal.h - Dynamic PCM elements ----------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged elements of the dynamic PCM framework (see PCMType.h). The paper's
/// `\+` (the PCM join) is PCMVal::join, which is partial: joining two Own
/// tokens, overlapping pointer sets, overlapping heaps or overlapping
/// histories yields std::nullopt. Commutativity, associativity and unit laws
/// are checked by property tests in tests/pcm_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_PCMVAL_H
#define FCSL_PCM_PCMVAL_H

#include "heap/Heap.h"
#include "pcm/Histories.h"
#include "pcm/PCMType.h"

#include <optional>
#include <set>
#include <vector>

namespace fcsl {

/// One element of a PCM carrier. The kind tag matches a PCMType shape.
class PCMVal {
public:
  /// Constructs the Nat unit (0); use the factories for anything else.
  PCMVal() : K(PCMKind::Nat) {}

  static PCMVal ofNat(uint64_t N);
  static PCMVal mutexOwn();
  static PCMVal mutexFree();
  static PCMVal ofPtrSet(std::set<Ptr> S);
  /// The singleton pointer set #x of the paper.
  static PCMVal singletonPtr(Ptr P);
  static PCMVal ofHeap(Heap H);
  static PCMVal ofHist(History H);
  static PCMVal makePair(PCMVal First, PCMVal Second);
  static PCMVal liftDef(PCMVal Inner);
  /// The explicit undefined element of a lifted PCM.
  static PCMVal liftUndef(PCMTypeRef Inner);

  PCMKind kind() const { return K; }

  uint64_t getNat() const;
  bool isOwn() const;
  const std::set<Ptr> &getPtrSet() const;
  const Heap &getHeap() const;
  const History &getHist() const;
  const PCMVal &first() const;
  const PCMVal &second() const;
  bool isLiftUndef() const;
  const PCMVal &liftInner() const;

  /// The PCM join (the paper's \+). Partial: returns std::nullopt on
  /// incompatible elements. Asserts that kinds agree.
  static std::optional<PCMVal> join(const PCMVal &A, const PCMVal &B);

  /// Returns true for elements that are valid (everything except the lifted
  /// undefined element, recursively through pairs).
  bool isValid() const;

  /// Returns true if this element equals \p T's unit.
  bool isUnitOf(const PCMType &T) const;

  int compare(const PCMVal &Other) const;
  friend bool operator==(const PCMVal &A, const PCMVal &B) {
    return A.compare(B) == 0;
  }
  friend bool operator!=(const PCMVal &A, const PCMVal &B) {
    return A.compare(B) != 0;
  }
  friend bool operator<(const PCMVal &A, const PCMVal &B) {
    return A.compare(B) < 0;
  }

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

private:
  PCMKind K;
  uint64_t Nat = 0;
  bool Own = false;
  std::set<Ptr> Set;
  Heap HeapVal;
  History Hist;
  std::shared_ptr<const std::pair<PCMVal, PCMVal>> PairVal;
  std::shared_ptr<const PCMVal> LiftVal; // null => undefined element
  PCMTypeRef LiftInnerType;              // set only for lifted undefined
};

/// Enumerates sub-elements of \p V: elements S for which some R satisfies
/// S \+ R == V. Used to generate the realignments of the fork-join closure
/// check and the self-splits of `par`. The result always contains the unit
/// and \p V itself; at most \p Limit elements are produced (0 = no limit).
std::vector<PCMVal> enumerateSubElements(const PCMVal &V, size_t Limit = 0);

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::PCMVal> {
  size_t operator()(const fcsl::PCMVal &V) const {
    size_t Seed = 0;
    V.hashInto(Seed);
    return Seed;
  }
};
} // namespace std

#endif // FCSL_PCM_PCMVAL_H
