//===- pcm/PCMVal.h - Dynamic PCM elements ----------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged elements of the dynamic PCM framework (see PCMType.h). The paper's
/// `\+` (the PCM join) is PCMVal::join, which is partial: joining two Own
/// tokens, overlapping pointer sets, overlapping heaps or overlapping
/// histories yields std::nullopt. Commutativity, associativity and unit laws
/// are checked by property tests in tests/pcm_test.cpp.
///
/// A PCMVal is a handle to a hash-consed node (support/Intern.h), like Val,
/// Heap and History: equality is pointer comparison, copies are O(1), and
/// hashing reads the node's precomputed structural fingerprint.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PCM_PCMVAL_H
#define FCSL_PCM_PCMVAL_H

#include "heap/Heap.h"
#include "pcm/Histories.h"
#include "pcm/PCMType.h"

#include <optional>
#include <set>
#include <vector>

namespace fcsl {

namespace detail {
struct PCMNode;
}

/// One element of a PCM carrier. The kind tag matches a PCMType shape.
class PCMVal {
public:
  /// Constructs the Nat unit (0); use the factories for anything else.
  PCMVal();

  static PCMVal ofNat(uint64_t N);
  static PCMVal mutexOwn();
  static PCMVal mutexFree();
  static PCMVal ofPtrSet(std::set<Ptr> S);
  /// The singleton pointer set #x of the paper.
  static PCMVal singletonPtr(Ptr P);
  static PCMVal ofHeap(Heap H);
  static PCMVal ofHist(History H);
  static PCMVal makePair(PCMVal First, PCMVal Second);
  static PCMVal liftDef(PCMVal Inner);
  /// The explicit undefined element of a lifted PCM.
  static PCMVal liftUndef(PCMTypeRef Inner);

  PCMKind kind() const;

  uint64_t getNat() const;
  bool isOwn() const;
  const std::set<Ptr> &getPtrSet() const;
  const Heap &getHeap() const;
  const History &getHist() const;
  PCMVal first() const;
  PCMVal second() const;
  bool isLiftUndef() const;
  PCMVal liftInner() const;

  /// The PCM join (the paper's \+). Partial: returns std::nullopt on
  /// incompatible elements. Asserts that kinds agree.
  static std::optional<PCMVal> join(const PCMVal &A, const PCMVal &B);

  /// Returns true for elements that are valid (everything except the lifted
  /// undefined element, recursively through pairs).
  bool isValid() const;

  /// Returns true if this element equals \p T's unit.
  bool isUnitOf(const PCMType &T) const;

  /// Rewrites every pointer in this element — pointer sets, heap domains and
  /// cell values, history entries — through \p M (pointers absent from the
  /// map are kept). Used by the symmetry layer's canonical renaming of fresh
  /// heap names (DESIGN.md §11).
  PCMVal renamePtrs(const std::map<Ptr, Ptr> &M) const;

  int compare(const PCMVal &Other) const;
  friend bool operator==(const PCMVal &A, const PCMVal &B) {
    return A.N == B.N;
  }
  friend bool operator!=(const PCMVal &A, const PCMVal &B) {
    return A.N != B.N;
  }
  friend bool operator<(const PCMVal &A, const PCMVal &B) {
    return A.compare(B) < 0;
  }

  /// The precomputed structural fingerprint (process-stable).
  uint64_t fingerprint() const;

  void hashInto(std::size_t &Seed) const;
  std::string toString() const;

private:
  explicit PCMVal(const detail::PCMNode *N) : N(N) {}

  const detail::PCMNode *N; ///< never null; owned by the intern arena.
};

namespace detail {

/// The interned payload of a PCMVal. Pair/Lift children are canonical node
/// pointers; a null LiftN under PCMKind::Lift is the explicit undefined
/// element. LiftInnerType is advisory (undefined elements of every carrier
/// share one node, as they always compared equal); only join reads it.
struct PCMNode {
  PCMKind K = PCMKind::Nat;
  uint64_t Nat = 0;
  bool Own = false;
  std::set<Ptr> Set;
  Heap HeapVal;
  History Hist;
  const PCMNode *FirstN = nullptr;  ///< Pair
  const PCMNode *SecondN = nullptr; ///< Pair
  const PCMNode *LiftN = nullptr;   ///< Lift; null => undefined element
  PCMTypeRef LiftInnerType;         ///< set only for lifted undefined
  uint64_t Fp = 0;

  bool samePayload(const PCMNode &O) const;
};

const PCMNode *pcmNatUnitNode();

} // namespace detail

inline PCMVal::PCMVal() : N(detail::pcmNatUnitNode()) {}
inline PCMKind PCMVal::kind() const { return N->K; }
inline uint64_t PCMVal::fingerprint() const { return N->Fp; }
inline void PCMVal::hashInto(std::size_t &Seed) const {
  hashCombine(Seed, static_cast<std::size_t>(N->Fp));
}

/// Enumerates sub-elements of \p V: elements S for which some R satisfies
/// S \+ R == V. Used to generate the realignments of the fork-join closure
/// check and the self-splits of `par`. The result always contains the unit
/// and \p V itself; at most \p Limit elements are produced (0 = no limit).
std::vector<PCMVal> enumerateSubElements(const PCMVal &V, size_t Limit = 0);

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::PCMVal> {
  size_t operator()(const fcsl::PCMVal &V) const {
    return static_cast<size_t>(V.fingerprint());
  }
};
} // namespace std

#endif // FCSL_PCM_PCMVAL_H
