//===- spec/Spec.h - Hoare-style specifications -----------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analogue of the paper's `STsep [C] (pre, post)` types (Section 3.1):
/// a specification carries the concurroid it respects, a precondition over
/// pre-views and a binary postcondition over (result, post-view). Logical
/// (ghost) variables — the `{i (g1 : ...)}` binders of span_tp — are
/// realized by quantifying the verification over all sampled initial
/// states and threading a snapshot of the initial view into the
/// postcondition.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_SPEC_H
#define FCSL_SPEC_SPEC_H

#include "spec/Assertion.h"

namespace fcsl {

class Concurroid;
using ConcurroidRef = std::shared_ptr<const Concurroid>;

/// A binary postcondition: result value, initial view (the ghost snapshot
/// `i` of the paper's specs) and final view.
using PostFn =
    std::function<bool(const Val &Result, const View &Initial,
                       const View &Final)>;

/// A Hoare-style partial-correctness spec.
struct Spec {
  std::string Name;
  ConcurroidRef C;  ///< the `[SpanTree sp]` component of STsep.
  Assertion Pre;    ///< precondition over the initial view.
  PostFn Post;      ///< postcondition relating result, initial, final.
  std::string PostName; ///< human-readable postcondition description.
};

} // namespace fcsl

#endif // FCSL_SPEC_SPEC_H
