//===- spec/Session.cpp - Verification obligation ledger -------------------===//
//
// Part of fcsl-cpp. See Session.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Session.h"

#include "prog/Engine.h"

#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;

const char *fcsl::obCategoryName(ObCategory C) {
  switch (C) {
  case ObCategory::Libs:
    return "Libs";
  case ObCategory::Conc:
    return "Conc";
  case ObCategory::Acts:
    return "Acts";
  case ObCategory::Stab:
    return "Stab";
  case ObCategory::Main:
    return "Main";
  }
  assert(false && "unknown obligation category");
  return "<?>";
}

uint64_t SessionReport::totalObligations() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Obligations;
  return Total;
}

uint64_t SessionReport::totalChecks() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Checks;
  return Total;
}

void VerificationSession::addObligation(
    ObCategory Category, std::string Name,
    std::function<ObligationResult()> Run) {
  assert(Run && "obligation needs a discharge function");
  Obligations.push_back(
      Obligation{Category, std::move(Name), std::move(Run)});
}

SessionReport VerificationSession::run(unsigned Jobs) const {
  SessionReport Report;
  Report.Program = Program;
  Timer Total;
  size_t N = Obligations.size();
  unsigned J = effectiveJobs(Jobs, N);
  // Sharded exploration forks worker processes from inside obligations;
  // fork() from a multi-threaded parent is unsafe (and the distributed
  // hook refuses to engage there), so discharge serially instead.
  if (defaultShards() > 1)
    J = 1;

  // Discharge concurrently (obligations are independent), then fold the
  // ledger in registration order so tallies and the failure list do not
  // depend on scheduling.
  std::vector<ObligationResult> Results(N);
  std::vector<double> ElapsedMs(N, 0.0);
  parallelFor(N, J, [&](size_t I) {
    Timer One;
    Results[I] = Obligations[I].Run();
    ElapsedMs[I] = One.elapsedMs();
  });

  for (size_t I = 0; I != N; ++I) {
    const Obligation &Ob = Obligations[I];
    CategoryStats &Stats =
        Report.PerCategory[static_cast<size_t>(Ob.Category)];
    ++Stats.Obligations;
    Stats.Checks += Results[I].Checks;
    Stats.ElapsedMs += ElapsedMs[I];
    if (!Results[I].Passed) {
      Report.AllPassed = false;
      Report.Failures.push_back(Program + "/" + Ob.Name + ": " +
                                Results[I].Note);
    }
  }
  Report.TotalMs = Total.elapsedMs();
  return Report;
}
