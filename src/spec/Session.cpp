//===- spec/Session.cpp - Content-addressed proof-unit scheduler -----------===//
//
// Part of fcsl-cpp. See Session.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Session.h"

#include "prog/Engine.h"

#include "support/Format.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <mutex>

using namespace fcsl;

const char *fcsl::obCategoryName(ObCategory C) {
  switch (C) {
  case ObCategory::Libs:
    return "Libs";
  case ObCategory::Conc:
    return "Conc";
  case ObCategory::Acts:
    return "Acts";
  case ObCategory::Stab:
    return "Stab";
  case ObCategory::Main:
    return "Main";
  }
  assert(false && "unknown obligation category");
  return "<?>";
}

uint64_t fcsl::engineFlagsFingerprintFor(PorMode Por, SymMode Sym) {
  uint64_t Fp = fpString("fcsl-engine-flags");
  Fp = fpCombine(Fp, static_cast<uint64_t>(Por));
  Fp = fpCombine(Fp, static_cast<uint64_t>(Sym));
  return Fp;
}

uint64_t fcsl::engineFlagsFingerprint() {
  return engineFlagsFingerprintFor(defaultPorMode(), defaultSymmetryMode());
}

std::string fcsl::renderSessionReport(const SessionReport &R) {
  TextTable Table;
  Table.setHeader({"category", "obligations", "checks", "ms"});
  for (unsigned I = 1; I <= 3; ++I)
    Table.setRightAligned(I);
  for (ObCategory C : {ObCategory::Libs, ObCategory::Conc, ObCategory::Acts,
                       ObCategory::Stab, ObCategory::Main}) {
    const CategoryStats &S = R.PerCategory[static_cast<size_t>(C)];
    Table.addRow({obCategoryName(C), std::to_string(S.Obligations),
                  std::to_string(S.Checks),
                  formatString("%.1f", S.ElapsedMs)});
  }
  std::string Out = formatString(
      "%s: %s (%.1f ms)\n", R.Program.c_str(),
      R.AllPassed ? "all obligations discharged" : "FAILED", R.TotalMs);
  Out += Table.render();
  for (const std::string &F : R.Failures)
    Out += formatString("  failure: %s\n", F.c_str());
  return Out;
}

uint64_t SessionReport::totalObligations() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Obligations;
  return Total;
}

uint64_t SessionReport::totalChecks() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Checks;
  return Total;
}

void VerificationSession::addObligation(
    ObCategory Category, std::string Name, const ObligationInputs &Inputs,
    std::function<ObligationResult()> Run) {
  assert(Run && "obligation needs a discharge function");
  Units.push_back(
      ProofUnit{Category, std::move(Name), Inputs.fp(), std::move(Run)});
}

void VerificationSession::addObligation(
    ObCategory Category, std::string Name,
    std::function<ObligationResult()> Run) {
  assert(Run && "obligation needs a discharge function");
  Units.push_back(ProofUnit{Category, std::move(Name), 0, std::move(Run)});
}

namespace {

/// Replays a stored verdict as an ObligationResult.
ObligationResult replay(const cache::CacheRecord &R) {
  ObligationResult O;
  O.Passed = R.Passed;
  O.Checks = R.Checks;
  O.Note = R.Note;
  O.Counters = R.Counters;
  O.FromCache = true;
  return O;
}

/// A fresh verdict as the record the store persists.
cache::CacheRecord toRecord(const cache::ObligationKey &Key,
                            const ObligationResult &O, double ElapsedMs) {
  cache::CacheRecord R;
  R.Key = Key;
  R.Passed = O.Passed;
  R.Checks = O.Checks;
  R.Counters = O.Counters;
  R.ElapsedUs = static_cast<uint64_t>(ElapsedMs * 1000.0);
  R.Note = O.Note;
  return R;
}

/// Serializes progress callbacks and numbers them with a completion
/// ordinal; discharge workers call report() concurrently.
class ProgressEmitter {
public:
  ProgressEmitter(const ProgressFn &Fn, size_t Total) : Fn(Fn), Total(Total) {}

  void report(const ProofUnit &U, const ObligationResult &R, double Ms) {
    if (!Fn)
      return;
    std::lock_guard<std::mutex> Lock(M);
    ObligationProgress P;
    P.Completed = ++Completed;
    P.Total = Total;
    P.Category = U.Category;
    P.Name = U.Name;
    P.Passed = R.Passed;
    P.FromCache = R.FromCache;
    P.ElapsedMs = Ms;
    Fn(P);
  }

private:
  const ProgressFn &Fn;
  size_t Total;
  std::mutex M;
  size_t Completed = 0;
};

/// The registration-order aggregation every report goes through — shared
/// by run() and serveFromStore() so the fast path cannot drift from a
/// genuinely warm run.
void aggregateReport(SessionReport &Report,
                     const std::vector<ProofUnit> &Units,
                     const std::vector<ObligationResult> &Results,
                     const std::vector<double> &ElapsedMs) {
  for (size_t I = 0, N = Units.size(); I != N; ++I) {
    const ProofUnit &U = Units[I];
    CategoryStats &Stats = Report.PerCategory[static_cast<size_t>(U.Category)];
    ++Stats.Obligations;
    Stats.Checks += Results[I].Checks;
    Stats.ElapsedMs += ElapsedMs[I];
    if (!Results[I].Passed) {
      Report.AllPassed = false;
      Report.Failures.push_back(Report.Program + "/" + U.Name + ": " +
                                Results[I].Note);
    }
  }
}

} // namespace

SessionReport VerificationSession::run(unsigned Jobs,
                                       const ProgressFn &Progress) const {
  SessionReport Report;
  Report.Program = Program;
  Timer Total;
  size_t N = Units.size();
  ProgressEmitter Emit(Progress, N);

  // Resolve the cache policy once for the whole session, so every unit
  // sees one consistent store and flags fingerprint.
  cache::CacheMode Mode = cache::defaultCacheMode();
  cache::Store *S =
      Mode == cache::CacheMode::Off ? nullptr : cache::activeStore();
  const uint64_t FlagsFp = engineFlagsFingerprint();
  const bool Writes = S && (Mode == cache::CacheMode::Rw ||
                            Mode == cache::CacheMode::Check);

  // Phase 1 (serial): probe the store. A hit is replayed; under Check it
  // is *also* dispatched, and the fresh result must agree. Misses and
  // unkeyed units are always dispatched.
  std::vector<ObligationResult> Results(N);
  std::vector<double> ElapsedMs(N, 0.0);
  std::vector<const cache::CacheRecord *> Hit(N, nullptr);
  std::vector<size_t> ToRun;
  ToRun.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    const ProofUnit &U = Units[I];
    if (!U.keyed()) {
      ++Report.Cache.Unkeyed;
      ToRun.push_back(I);
      continue;
    }
    if (!S) {
      ToRun.push_back(I);
      continue;
    }
    if (const cache::CacheRecord *R = S->lookup(U.key(FlagsFp))) {
      ++Report.Cache.Hits;
      Report.Cache.ReplayedChecks += R->Checks;
      Report.Cache.ReplayedConfigs += R->Counters.Configs;
      Report.Cache.ReplayedUs += R->ElapsedUs;
      Results[I] = replay(*R);
      Emit.report(U, Results[I], 0.0);
      if (Mode == cache::CacheMode::Check) {
        Hit[I] = R;
        ++Report.Cache.CheckRuns;
        ToRun.push_back(I);
      }
      continue;
    }
    ++Report.Cache.Misses;
    if (S->hasContent(U.ContentFp))
      ++Report.Cache.StaleFlags;
    ToRun.push_back(I);
  }

  // Phase 2: discharge the dispatch list concurrently (units are
  // independent), then fold the ledger in registration order so tallies
  // and the failure list do not depend on scheduling.
  unsigned J = effectiveJobs(Jobs, ToRun.size());
  // Sharded exploration forks worker processes from inside obligations;
  // fork() from a multi-threaded parent is unsafe (and the distributed
  // hook refuses to engage there), so discharge serially instead.
  if (defaultShards() > 1)
    J = 1;
  std::vector<ObligationResult> Fresh(ToRun.size());
  std::vector<double> FreshMs(ToRun.size(), 0.0);
  parallelFor(ToRun.size(), J, [&](size_t K) {
    Timer One;
    Fresh[K] = Units[ToRun[K]].Run();
    FreshMs[K] = One.elapsedMs();
    // Check-mode re-runs were already reported at probe time (as the
    // replayed hit); only genuinely fresh discharges stream here.
    if (!Hit[ToRun[K]])
      Emit.report(Units[ToRun[K]], Fresh[K], FreshMs[K]);
  });

  // Phase 3 (serial, registration order): reconcile check-mode re-runs,
  // install fresh results, and append new verdicts to the store.
  for (size_t K = 0; K != ToRun.size(); ++K) {
    size_t I = ToRun[K];
    const ProofUnit &U = Units[I];
    if (const cache::CacheRecord *R = Hit[I]) {
      // Check mode: the stored verdict must match the fresh discharge in
      // verdict, check count, and engine counters (all bit-identical
      // across jobs and shards by the PR 1 / PR 4 invariants).
      if (Fresh[K].Passed != R->Passed || Fresh[K].Checks != R->Checks ||
          Fresh[K].Counters != R->Counters) {
        ++Report.Cache.Divergences;
        ObligationResult Diverged = Fresh[K];
        Diverged.Passed = false;
        Diverged.Note = "cache-check divergence: stored verdict " +
                        std::string(R->Passed ? "pass" : "fail") + "/" +
                        std::to_string(R->Checks) + " checks vs fresh " +
                        std::string(Fresh[K].Passed ? "pass" : "fail") + "/" +
                        std::to_string(Fresh[K].Checks) + " checks";
        Results[I] = Diverged;
      }
      // Agreement: keep the replayed result so the report stays
      // bit-identical to a plain warm run.
      ElapsedMs[I] = FreshMs[K];
      continue;
    }
    Results[I] = Fresh[K];
    ElapsedMs[I] = FreshMs[K];
    if (Writes && U.keyed()) {
      S->append(toRecord(U.key(FlagsFp), Fresh[K], FreshMs[K]));
      ++Report.Cache.Stores;
    }
  }

  aggregateReport(Report, Units, Results, ElapsedMs);
  Report.TotalMs = Total.elapsedMs();
  cache::accumulateCacheStats(Report.Cache);
  return Report;
}

std::optional<SessionReport>
VerificationSession::serveFromStore(cache::Store &S, uint64_t FlagsFp,
                                    const ProgressFn &Progress) const {
  size_t N = Units.size();
  // First pass: the fast path answers only when the store already holds a
  // verdict for *every* unit. Bail before touching any report state so a
  // partial corpus leaves no trace.
  std::vector<const cache::CacheRecord *> Recs(N, nullptr);
  for (size_t I = 0; I != N; ++I) {
    const ProofUnit &U = Units[I];
    if (!U.keyed())
      return std::nullopt;
    Recs[I] = S.lookup(U.key(FlagsFp));
    if (!Recs[I])
      return std::nullopt;
  }

  SessionReport Report;
  Report.Program = Program;
  Timer Total;
  ProgressEmitter Emit(Progress, N);
  std::vector<ObligationResult> Results(N);
  std::vector<double> ElapsedMs(N, 0.0);
  for (size_t I = 0; I != N; ++I) {
    const cache::CacheRecord *R = Recs[I];
    ++Report.Cache.Hits;
    Report.Cache.ReplayedChecks += R->Checks;
    Report.Cache.ReplayedConfigs += R->Counters.Configs;
    Report.Cache.ReplayedUs += R->ElapsedUs;
    Results[I] = replay(*R);
    Emit.report(Units[I], Results[I], 0.0);
  }
  aggregateReport(Report, Units, Results, ElapsedMs);
  Report.TotalMs = Total.elapsedMs();
  cache::accumulateCacheStats(Report.Cache);
  return Report;
}
