//===- spec/Session.cpp - Verification obligation ledger -------------------===//
//
// Part of fcsl-cpp. See Session.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Session.h"

#include "support/Stats.h"

#include <cassert>

using namespace fcsl;

const char *fcsl::obCategoryName(ObCategory C) {
  switch (C) {
  case ObCategory::Libs:
    return "Libs";
  case ObCategory::Conc:
    return "Conc";
  case ObCategory::Acts:
    return "Acts";
  case ObCategory::Stab:
    return "Stab";
  case ObCategory::Main:
    return "Main";
  }
  assert(false && "unknown obligation category");
  return "<?>";
}

uint64_t SessionReport::totalObligations() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Obligations;
  return Total;
}

uint64_t SessionReport::totalChecks() const {
  uint64_t Total = 0;
  for (const CategoryStats &S : PerCategory)
    Total += S.Checks;
  return Total;
}

void VerificationSession::addObligation(
    ObCategory Category, std::string Name,
    std::function<ObligationResult()> Run) {
  assert(Run && "obligation needs a discharge function");
  Obligations.push_back(
      Obligation{Category, std::move(Name), std::move(Run)});
}

SessionReport VerificationSession::run() const {
  SessionReport Report;
  Report.Program = Program;
  Timer Total;
  for (const Obligation &Ob : Obligations) {
    Timer One;
    ObligationResult Result = Ob.Run();
    double Ms = One.elapsedMs();
    CategoryStats &Stats =
        Report.PerCategory[static_cast<size_t>(Ob.Category)];
    ++Stats.Obligations;
    Stats.Checks += Result.Checks;
    Stats.ElapsedMs += Ms;
    if (!Result.Passed) {
      Report.AllPassed = false;
      Report.Failures.push_back(Program + "/" + Ob.Name + ": " +
                                Result.Note);
    }
  }
  Report.TotalMs = Total.elapsedMs();
  return Report;
}
