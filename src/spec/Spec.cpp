//===- spec/Spec.cpp - Hoare-style specifications ---------------------------===//
//
// Part of fcsl-cpp. Spec is a plain aggregate; this file anchors the header.
//
//===----------------------------------------------------------------------===//

#include "spec/Spec.h"
