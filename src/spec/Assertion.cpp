//===- spec/Assertion.cpp - Assertions over subjective states --------------===//
//
// Part of fcsl-cpp. See Assertion.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Assertion.h"

#include <cassert>

using namespace fcsl;

Assertion::Assertion(std::string Name, PredFn Pred)
    : Name(std::move(Name)), Pred(std::move(Pred)) {
  assert(this->Pred && "assertion needs a predicate");
}

bool Assertion::holds(const View &S) const {
  assert(Pred && "evaluating an empty assertion");
  return Pred(S);
}

Assertion fcsl::operator&&(const Assertion &A, const Assertion &B) {
  return Assertion("(" + A.name() + " /\\ " + B.name() + ")",
                   [A, B](const View &S) {
                     return A.holds(S) && B.holds(S);
                   });
}

Assertion fcsl::operator||(const Assertion &A, const Assertion &B) {
  return Assertion("(" + A.name() + " \\/ " + B.name() + ")",
                   [A, B](const View &S) {
                     return A.holds(S) || B.holds(S);
                   });
}

Assertion fcsl::operator!(const Assertion &A) {
  return Assertion("~" + A.name(),
                   [A](const View &S) { return !A.holds(S); });
}

Assertion fcsl::assertTrue() {
  return Assertion("true", [](const View &) { return true; });
}

Assertion fcsl::selfIs(Label L, PCMVal V) {
  return Assertion("self@" + std::to_string(L) + " == " + V.toString(),
                   [L, V](const View &S) {
                     return S.hasLabel(L) && S.self(L) == V;
                   });
}

Assertion fcsl::jointContains(Label L, Ptr P) {
  return Assertion(P.toString() + " in dom(joint@" + std::to_string(L) + ")",
                   [L, P](const View &S) {
                     return S.hasLabel(L) && S.joint(L).contains(P);
                   });
}

Assertion fcsl::contributionsCompatible(Label L) {
  return Assertion("valid(self@" + std::to_string(L) + " \\+ other)",
                   [L](const View &S) {
                     return S.hasLabel(L) &&
                            S.selfOtherJoin(L).has_value();
                   });
}
