//===- spec/Session.h - Content-addressed proof-unit scheduler --*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VerificationSession collects the proof obligations of one case study,
/// classified into the categories of the paper's Table 1 — Libs
/// (program-specific library lemmas), Conc (concurroid definitions and
/// their metatheory), Acts (atomic-action obligations), Stab (stability
/// lemmas) and Main (the main function's Hoare triple) — discharges them,
/// and reports per-category counts and timings. Running every session is
/// how bench_table1 regenerates the shape of Table 1.
///
/// Obligations are first-class *proof units*: each carries a canonical
/// content fingerprint declared at registration from the interned
/// artifacts it depends on (program fp, spec strings, concurroid fp,
/// instance views, engine bounds — never session names or registration
/// order). Together with the process's engine-flag fingerprint this forms
/// the unit's ObligationKey, and `run()` is a scheduler over units: it
/// probes the persistent verdict store (cache/Store.h) first, replays
/// hits bit-identically (stored check counts and engine counters), and
/// dispatches only the misses to the job pool. See DESIGN.md §13.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_SESSION_H
#define FCSL_SPEC_SESSION_H

#include "cache/Store.h"
#include "support/Intern.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fcsl {

/// The obligation categories of Table 1's columns.
enum class ObCategory : uint8_t { Libs, Conc, Acts, Stab, Main };

/// Renders a category as the paper's column heading.
const char *obCategoryName(ObCategory C);

/// What a proof unit checks; part of its content address, so two units
/// over the same artifacts but of different kinds never share a verdict.
enum class ObKind : uint8_t {
  Check,      ///< a plain boolean lemma (PCM laws, library facts).
  Metatheory, ///< concurroid metatheory over sampled states.
  Action,     ///< atomic-action obligations over sampled states.
  Stability,  ///< assertion stability under environment interference.
  Triple,     ///< a Hoare triple discharged by exhaustive exploration.
};

/// Accumulates a proof unit's declared content fingerprint. Obligation
/// closures are opaque, so each registration site *declares* what its
/// verdict depends on — the fingerprints of the interned artifacts it
/// captures — through this builder. The staleness contract (DESIGN.md
/// §13): a unit's verdict may be served from the store exactly when every
/// declared input is unchanged; a site whose closure logic changes in a
/// way no artifact fingerprint reflects must bump its `rev()`.
class ObligationInputs {
public:
  explicit ObligationInputs(ObKind Kind)
      : Fp(fpCombine(fpString("fcsl-obligation"),
                     static_cast<uint64_t>(Kind))) {}

  /// Mixes a precomputed fingerprint (Prog/View/Concurroid/codecFp).
  ObligationInputs &mix(uint64_t V) {
    Fp = fpCombine(Fp, V);
    return *this;
  }
  /// Mixes a semantic string (spec pre/post text, action names).
  ObligationInputs &text(std::string_view S) {
    Fp = fpCombine(Fp, fpString(S));
    return *this;
  }
  /// Mixes a semantic integer (bounds, arities, seed counts).
  ObligationInputs &num(uint64_t V) {
    Fp = fpCombine(Fp, fpScramble(V + 0x9e3779b97f4a7c15ULL));
    return *this;
  }
  /// Mixes a semantic boolean (EnvInterference, closed-world).
  ObligationInputs &flag(bool B) {
    Fp = fpCombine(Fp, B ? 0x2545f4914f6cdd1dULL : 0x9e6c63d0873d7c4dULL);
    return *this;
  }
  /// Closure-logic revision: bump when the discharge code changes in a
  /// way no artifact fingerprint captures (new sample family, tightened
  /// check), so stale verdicts stop answering.
  ObligationInputs &rev(uint64_t N) {
    Fp = fpCombine(Fp, fpCombine(fpString("rev"), N));
    return *this;
  }

  /// The accumulated content fingerprint; never 0 (0 means "unkeyed").
  uint64_t fp() const { return Fp ? Fp : 1; }

private:
  uint64_t Fp;
};

/// What one discharged obligation reports back.
struct ObligationResult {
  bool Passed = true;
  uint64_t Checks = 0; ///< elementary checks run (states, joins, ...).
  std::string Note;    ///< failure description when !Passed.
  /// Exploration work behind the verdict (zero for sample-based checks);
  /// persisted so warm runs replay `--stats` faithfully.
  EngineCounters Counters;
  bool FromCache = false; ///< served from the store, not discharged.
};

/// One first-class obligation: category and name for reporting, a content
/// fingerprint for addressing, and the discharge closure. ContentFp == 0
/// marks a legacy unkeyed unit — always discharged, never cached.
struct ProofUnit {
  ObCategory Category = ObCategory::Libs;
  std::string Name;
  uint64_t ContentFp = 0;
  std::function<ObligationResult()> Run;

  bool keyed() const { return ContentFp != 0; }
  cache::ObligationKey key(uint64_t FlagsFp) const {
    return cache::ObligationKey{ContentFp, FlagsFp};
  }
};

/// The engine-relevant process-flag fingerprint: the *resolved* POR and
/// symmetry modes. Jobs and Shards are deliberately excluded — results
/// are bit-identical across both (PR 1 / PR 4 invariants), so a verdict
/// computed at --shards=2 validly answers a --jobs=8 query. Bounds and
/// interference are content-side (they vary per unit, not per process).
uint64_t engineFlagsFingerprint();

/// The same fingerprint for explicitly-resolved modes, without touching
/// the process defaults. The verification daemon (src/service/) uses this
/// to probe the store under a *request's* flags before deciding whether a
/// session can be served from cache without running the engine.
uint64_t engineFlagsFingerprintFor(PorMode Por, SymMode Sym);

/// Per-category tallies.
struct CategoryStats {
  uint64_t Obligations = 0;
  uint64_t Checks = 0;
  double ElapsedMs = 0.0;
};

/// The report of a completed session (one Table 1 row).
struct SessionReport {
  std::string Program;
  bool AllPassed = true;
  CategoryStats PerCategory[5];
  double TotalMs = 0.0;
  std::vector<std::string> Failures;
  /// This session's cache traffic (also accumulated process-wide for
  /// `--stats`): hits replayed, misses discharged, stale-by-flag misses,
  /// records stored, check-mode re-runs and divergences, unkeyed units.
  cache::CacheStats Cache;

  uint64_t totalObligations() const;
  uint64_t totalChecks() const;
};

/// Codec entry points for a whole report (implemented in support/Codec.cpp
/// with the other state types): the payload of the service's Report frame,
/// so a daemon-served report is bit-identical to a local run's. Doubles
/// travel as their IEEE-754 bit patterns. Decode is fail-soft: check
/// `D.failed()` before trusting the result.
void encode(Encoder &E, const SessionReport &R);
SessionReport decodeSessionReport(Decoder &D);

/// Renders a report exactly as `fcsl-verify verify` prints it (verdict
/// line, per-category table, failure lines). Shared by the CLI and
/// fcsl-client so a daemon round-trip diffs clean against a direct run.
std::string renderSessionReport(const SessionReport &R);

/// One completed obligation, streamed to a progress observer while a
/// session runs. Completion order follows the scheduler (store hits
/// first, then fresh discharges as workers finish them); the report still
/// aggregates in registration order.
struct ObligationProgress {
  size_t Completed = 0; ///< completion ordinal, 1-based.
  size_t Total = 0;     ///< total obligations in the session.
  ObCategory Category = ObCategory::Libs;
  std::string Name;
  bool Passed = true;
  bool FromCache = false;
  double ElapsedMs = 0.0; ///< discharge time (0 for replayed hits).
};

/// Progress observer. Invocations are serialized (an internal mutex), but
/// may come from any discharge worker thread.
using ProgressFn = std::function<void(const ObligationProgress &)>;

/// One case study's bundle of proof units.
class VerificationSession {
public:
  explicit VerificationSession(std::string Program)
      : Program(std::move(Program)) {}

  /// Registers a keyed proof unit. Units must be independent: with a
  /// parallel job count they are discharged concurrently, and the report
  /// always aggregates in registration order. \p Inputs declares the
  /// unit's content (see ObligationInputs).
  void addObligation(ObCategory Category, std::string Name,
                     const ObligationInputs &Inputs,
                     std::function<ObligationResult()> Run);

  /// Registers an unkeyed unit — always discharged, never cached. For
  /// obligations whose inputs cannot (yet) be fingerprinted.
  void addObligation(ObCategory Category, std::string Name,
                     std::function<ObligationResult()> Run);

  /// Schedules every unit and reports. \p Jobs is the worker count for
  /// concurrent discharge: 0 = the process default (see
  /// support/ThreadPool.h), 1 = serial. The scheduler first probes the
  /// verdict store under the process CacheMode (cache/Store.h): hits are
  /// replayed with their stored check counts and engine counters — so the
  /// report is bit-identical to a cold run — and only misses (plus every
  /// unit, under --cache=check) go to the job pool. Fresh verdicts of
  /// keyed units are appended to the store in registration order.
  /// \p Progress, when set, observes each obligation as it completes.
  SessionReport run(unsigned Jobs = 0, const ProgressFn &Progress = {}) const;

  /// The daemon's microsecond fast path: when *every* unit is keyed and
  /// has a verdict in \p S under \p FlagsFp, builds the same report a
  /// fully-warm run() would produce — replayed results, cache counters,
  /// registration-order aggregation — without invoking any discharge
  /// closure (the engine never runs). Returns nullopt the moment one unit
  /// is unkeyed or missing, leaving no trace in the process cache stats.
  std::optional<SessionReport>
  serveFromStore(cache::Store &S, uint64_t FlagsFp,
                 const ProgressFn &Progress = {}) const;

  const std::string &program() const { return Program; }
  size_t numObligations() const { return Units.size(); }
  /// The registered units, in registration order (tests key-stability
  /// and the daemon's scheduling on this).
  const std::vector<ProofUnit> &units() const { return Units; }

private:
  std::string Program;
  std::vector<ProofUnit> Units;
};

} // namespace fcsl

#endif // FCSL_SPEC_SESSION_H
