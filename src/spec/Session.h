//===- spec/Session.h - Verification obligation ledger ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VerificationSession collects the named proof obligations of one case
/// study, classified into the categories of the paper's Table 1 — Libs
/// (program-specific library lemmas), Conc (concurroid definitions and
/// their metatheory), Acts (atomic-action obligations), Stab (stability
/// lemmas) and Main (the main function's Hoare triple) — discharges them,
/// and reports per-category counts and timings. Running every session is
/// how bench_table1 regenerates the shape of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_SESSION_H
#define FCSL_SPEC_SESSION_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fcsl {

/// The obligation categories of Table 1's columns.
enum class ObCategory : uint8_t { Libs, Conc, Acts, Stab, Main };

/// Renders a category as the paper's column heading.
const char *obCategoryName(ObCategory C);

/// What one discharged obligation reports back.
struct ObligationResult {
  bool Passed = true;
  uint64_t Checks = 0; ///< elementary checks run (states, joins, ...).
  std::string Note;    ///< failure description when !Passed.
};

/// Per-category tallies.
struct CategoryStats {
  uint64_t Obligations = 0;
  uint64_t Checks = 0;
  double ElapsedMs = 0.0;
};

/// The report of a completed session (one Table 1 row).
struct SessionReport {
  std::string Program;
  bool AllPassed = true;
  CategoryStats PerCategory[5];
  double TotalMs = 0.0;
  std::vector<std::string> Failures;

  uint64_t totalObligations() const;
  uint64_t totalChecks() const;
};

/// One case study's bundle of obligations.
class VerificationSession {
public:
  explicit VerificationSession(std::string Program)
      : Program(std::move(Program)) {}

  /// Registers an obligation. Obligations must be independent: with a
  /// parallel job count they are discharged concurrently, and the report
  /// always aggregates in registration order.
  void addObligation(ObCategory Category, std::string Name,
                     std::function<ObligationResult()> Run);

  /// Discharges every obligation and reports. \p Jobs is the worker
  /// count for concurrent discharge: 0 = the process default (see
  /// support/ThreadPool.h), 1 = serial. Independent ledger entries
  /// (stability, metatheory, action checks, triples) run concurrently;
  /// per-category tallies and the failure list are deterministic.
  SessionReport run(unsigned Jobs = 0) const;

  const std::string &program() const { return Program; }
  size_t numObligations() const { return Obligations.size(); }

private:
  struct Obligation {
    ObCategory Category;
    std::string Name;
    std::function<ObligationResult()> Run;
  };

  std::string Program;
  std::vector<Obligation> Obligations;
};

} // namespace fcsl

#endif // FCSL_SPEC_SESSION_H
