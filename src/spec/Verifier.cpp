//===- spec/Verifier.cpp - Hoare-triple verification ------------------------===//
//
// Part of fcsl-cpp. See Verifier.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Verifier.h"

#include "support/Format.h"

using namespace fcsl;

std::optional<std::vector<Terminal>>
fcsl::strongestPost(const ProgRef &Prog, const VerifyInstance &Instance,
                    const EngineOptions &Opts) {
  RunResult Run = explore(Prog, Instance.Initial, Opts,
                          Instance.InitialEnv);
  if (!Run.complete())
    return std::nullopt;
  return Run.Terminals;
}

std::vector<size_t>
fcsl::inferPre(const ProgRef &Prog, const PostFn &Post,
               const std::vector<VerifyInstance> &Candidates,
               const EngineOptions &Opts) {
  std::vector<size_t> Good;
  for (size_t I = 0, N = Candidates.size(); I != N; ++I) {
    std::optional<std::vector<Terminal>> Terminals =
        strongestPost(Prog, Candidates[I], Opts);
    if (!Terminals)
      continue;
    View Initial = Candidates[I].Initial.viewFor(rootThread());
    bool AllHold = true;
    for (const Terminal &T : *Terminals)
      AllHold &= Post(T.Result, Initial, T.FinalView);
    if (AllHold)
      Good.push_back(I);
  }
  return Good;
}

VerifyResult fcsl::verifyTriple(const ProgRef &Prog, const Spec &S,
                                const std::vector<VerifyInstance> &Instances,
                                const EngineOptions &Opts) {
  VerifyResult Out;
  for (const VerifyInstance &Inst : Instances) {
    View InitialView = Inst.Initial.viewFor(rootThread());
    if (S.Pre && !S.Pre.holds(InitialView))
      continue; // Outside the triple's domain.
    ++Out.InstancesChecked;

    RunResult Run = explore(Prog, Inst.Initial, Opts, Inst.InitialEnv);
    Out.ConfigsExplored += Run.ConfigsExplored;
    Out.ActionSteps += Run.ActionSteps;
    Out.EnvSteps += Run.EnvSteps;

    if (!Run.Safe) {
      Out.Holds = false;
      Out.FailureNote =
          formatString("%s: safety violation: %s", S.Name.c_str(),
                       Run.FailureNote.c_str());
      if (!Run.FailureTrace.empty())
        Out.FailureNote +=
            "\ncounterexample schedule:\n" + Run.renderTrace();
      return Out;
    }
    if (Run.Exhausted) {
      Out.Holds = false;
      Out.FailureNote = formatString(
          "%s: state space exceeded the exploration bound", S.Name.c_str());
      return Out;
    }
    for (const Terminal &Term : Run.Terminals) {
      ++Out.TerminalsChecked;
      if (!S.Post(Term.Result, InitialView, Term.FinalView)) {
        Out.Holds = false;
        Out.FailureNote = formatString(
            "%s: postcondition %s fails for result %s;\ninitial view:\n%s"
            "final view:\n%s",
            S.Name.c_str(), S.PostName.c_str(),
            Term.Result.toString().c_str(),
            InitialView.toString().c_str(),
            Term.FinalView.toString().c_str());
        return Out;
      }
    }
  }
  return Out;
}
