//===- spec/Verifier.cpp - Hoare-triple verification ------------------------===//
//
// Part of fcsl-cpp. See Verifier.h for the interface.
//
// Instance-level parallelism: the logical-variable quantification of a
// triple yields many independent explorations, so with Jobs > 1 the
// instances fan out across a thread pool (each inner exploration forced
// serial — the parallelism budget is spent at one level, not
// multiplicatively). Results are aggregated in instance order, so the
// outcome — including which instance's failure is reported and every
// counter — is bit-identical to the serial run.
//
//===----------------------------------------------------------------------===//

#include "spec/Verifier.h"

#include "support/Format.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace fcsl;

namespace {

/// Runs `explore` over instances [0, N) with the triple's options,
/// fanning out over up to \p Jobs threads; \p Skip marks instances
/// outside the domain (not explored). Inner explorations run with
/// Jobs = 1 when the fan-out itself is parallel.
std::vector<RunResult>
exploreInstances(const ProgRef &Prog,
                 const std::vector<VerifyInstance> &Instances,
                 const std::vector<bool> &Skip, const EngineOptions &Opts,
                 unsigned Jobs) {
  EngineOptions Inner = Opts;
  if (Jobs > 1)
    Inner.Jobs = 1;
  std::vector<RunResult> Runs(Instances.size());
  parallelFor(Instances.size(), Jobs, [&](size_t I) {
    if (I < Skip.size() && Skip[I])
      return;
    Runs[I] = explore(Prog, Instances[I].Initial, Inner,
                      Instances[I].InitialEnv);
  });
  return Runs;
}

unsigned fanoutJobs(const EngineOptions &Opts, size_t NumInstances) {
  // Sharded exploration forks from inside each instance run; keep the
  // parent single-threaded so fork() is safe and the hook engages.
  if ((Opts.Shards ? Opts.Shards : defaultShards()) > 1)
    return 1;
  return effectiveJobs(Opts.Jobs, NumInstances);
}

} // namespace

std::optional<std::vector<Terminal>>
fcsl::strongestPost(const ProgRef &Prog, const VerifyInstance &Instance,
                    const EngineOptions &Opts) {
  RunResult Run = explore(Prog, Instance.Initial, Opts,
                          Instance.InitialEnv);
  if (!Run.complete())
    return std::nullopt;
  return Run.Terminals;
}

std::vector<size_t>
fcsl::inferPre(const ProgRef &Prog, const PostFn &Post,
               const std::vector<VerifyInstance> &Candidates,
               const EngineOptions &Opts) {
  std::vector<RunResult> Runs = exploreInstances(
      Prog, Candidates, {}, Opts, fanoutJobs(Opts, Candidates.size()));
  std::vector<size_t> Good;
  for (size_t I = 0, N = Candidates.size(); I != N; ++I) {
    if (!Runs[I].complete())
      continue;
    View Initial = Candidates[I].Initial.viewFor(rootThread());
    bool AllHold = true;
    for (const Terminal &T : Runs[I].Terminals)
      AllHold &= Post(T.Result, Initial, T.FinalView);
    if (AllHold)
      Good.push_back(I);
  }
  return Good;
}

VerifyResult fcsl::verifyTriple(const ProgRef &Prog, const Spec &S,
                                const std::vector<VerifyInstance> &Instances,
                                const EngineOptions &Opts) {
  // Domain filtering first: instances failing the precondition are
  // outside the triple and never explored.
  std::vector<bool> Skip(Instances.size(), false);
  for (size_t I = 0, N = Instances.size(); I != N; ++I)
    if (S.Pre &&
        !S.Pre.holds(Instances[I].Initial.viewFor(rootThread())))
      Skip[I] = true;

  std::vector<RunResult> Runs = exploreInstances(
      Prog, Instances, Skip, Opts, fanoutJobs(Opts, Instances.size()));

  // Aggregate in instance order: the first failing instance wins, and
  // counters cover exactly the instances up to and including it —
  // bit-identical to the serial early-exit loop.
  VerifyResult Out;
  for (size_t I = 0, N = Instances.size(); I != N; ++I) {
    if (Skip[I])
      continue;
    ++Out.InstancesChecked;
    const RunResult &Run = Runs[I];
    View InitialView = Instances[I].Initial.viewFor(rootThread());
    Out.ConfigsExplored += Run.ConfigsExplored;
    Out.ActionSteps += Run.ActionSteps;
    Out.EnvSteps += Run.EnvSteps;
    Out.DedupHits += Run.DedupHits;

    if (!Run.Safe) {
      Out.Holds = false;
      Out.FailureNote =
          formatString("%s: safety violation: %s", S.Name.c_str(),
                       Run.FailureNote.c_str());
      if (!Run.FailureTrace.empty())
        Out.FailureNote +=
            "\ncounterexample schedule:\n" + Run.renderTrace();
      return Out;
    }
    if (Run.Exhausted) {
      Out.Holds = false;
      Out.FailureNote = formatString(
          "%s: state space exceeded the exploration bound "
          "(MaxConfigs=%llu, %llu configs explored, ~%llu frontier "
          "configurations pending at abort, partial-order reduction %s)",
          S.Name.c_str(),
          static_cast<unsigned long long>(Run.MaxConfigsBound),
          static_cast<unsigned long long>(Run.ConfigsExplored),
          static_cast<unsigned long long>(Run.FrontierAtAbort),
          Run.PorReduced ? "on" : "off");
      return Out;
    }
    for (const Terminal &Term : Run.Terminals) {
      ++Out.TerminalsChecked;
      if (!S.Post(Term.Result, InitialView, Term.FinalView)) {
        Out.Holds = false;
        Out.FailureNote = formatString(
            "%s: postcondition %s fails for result %s;\ninitial view:\n%s"
            "final view:\n%s",
            S.Name.c_str(), S.PostName.c_str(),
            Term.Result.toString().c_str(),
            InitialView.toString().c_str(),
            Term.FinalView.toString().c_str());
        return Out;
      }
    }
  }
  return Out;
}
