//===- spec/Stability.cpp - Stability under interference -------------------===//
//
// Part of fcsl-cpp. See Stability.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "spec/Stability.h"

#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>

using namespace fcsl;

namespace {

struct ViewHash {
  size_t operator()(const View &V) const {
    size_t Seed = 0;
    V.hashInto(Seed);
    return Seed;
  }
};

/// The assertion-independent half of stableInterior: the env-reachable
/// closure with its successor relation.
using ClosureGraph = std::vector<std::pair<View, std::vector<View>>>;

/// Memo key: concurroid identity, exact seed views, and the bound. Seeds
/// are compared by View's total order, so the key is value-based and a
/// re-built identical seed set still hits. The key holds the ConcurroidRef
/// (not a raw pointer) so a cached concurroid cannot be destroyed and its
/// address recycled by an unrelated one.
struct ClosureKey {
  ConcurroidRef C;
  uint64_t MaxStates;
  std::vector<View> Seeds;

  friend bool operator<(const ClosureKey &A, const ClosureKey &B) {
    if (A.C.get() != B.C.get())
      return A.C.get() < B.C.get();
    if (A.MaxStates != B.MaxStates)
      return A.MaxStates < B.MaxStates;
    return std::lexicographical_compare(A.Seeds.begin(), A.Seeds.end(),
                                        B.Seeds.begin(), B.Seeds.end());
  }
};

struct ClosureCache {
  std::mutex M;
  std::map<ClosureKey, std::shared_ptr<const ClosureGraph>> Entries;
  StableInteriorCacheStats Stats;
};

ClosureCache &closureCache() {
  static ClosureCache Cache;
  return Cache;
}

/// Keeps the cache from growing without bound across long sessions; the
/// working set per verification session is a handful of (concurroid,
/// seeds) pairs, far below the cap.
constexpr size_t ClosureCacheCap = 64;

} // namespace

StabilityReport fcsl::checkStability(const Assertion &A, const Concurroid &C,
                                     const std::vector<View> &Seeds,
                                     uint64_t MaxStates) {
  StabilityReport Report;
  std::unordered_set<View, ViewHash> Visited;
  std::deque<View> Queue;

  for (const View &Seed : Seeds) {
    if (!C.coherent(Seed) || !A.holds(Seed))
      continue;
    if (Visited.insert(Seed).second)
      Queue.push_back(Seed);
  }

  while (!Queue.empty()) {
    if (Report.StatesVisited >= MaxStates)
      break;
    View S = std::move(Queue.front());
    Queue.pop_front();
    ++Report.StatesVisited;

    for (const View &Next : C.envSuccessors(S)) {
      ++Report.EnvStepsTaken;
      if (!A.holds(Next)) {
        Report.Stable = false;
        Report.CounterExample = formatString(
            "assertion %s destabilized by interference; pre-state:\n%s"
            "post-state:\n%s",
            A.name().c_str(), S.toString().c_str(),
            Next.toString().c_str());
        return Report;
      }
      if (Visited.insert(Next).second)
        Queue.push_back(Next);
    }
  }
  return Report;
}

Assertion fcsl::stableInterior(const Assertion &P, const ConcurroidRef &C,
                               const std::vector<View> &Seeds,
                               uint64_t MaxStates) {
  // The closure graph depends only on (concurroid, seeds, bound), not on
  // P — look it up before rebuilding.
  ClosureKey Key{C, MaxStates, Seeds};
  std::shared_ptr<const ClosureGraph> Cached;
  {
    ClosureCache &Cache = closureCache();
    std::lock_guard<std::mutex> Lock(Cache.M);
    auto It = Cache.Entries.find(Key);
    if (It != Cache.Entries.end()) {
      ++Cache.Stats.Hits;
      Cached = It->second;
    } else {
      ++Cache.Stats.Misses;
    }
  }

  if (!Cached) {
    // Build the env-reachable closure with its successor relation.
    std::unordered_set<View, ViewHash> Closure;
    std::deque<View> Queue;
    for (const View &Seed : Seeds) {
      if (!C->coherent(Seed))
        continue;
      if (Closure.insert(Seed).second)
        Queue.push_back(Seed);
    }
    auto Graph = std::make_shared<ClosureGraph>();
    while (!Queue.empty() && Closure.size() < MaxStates) {
      View S = std::move(Queue.front());
      Queue.pop_front();
      std::vector<View> Succs = C->envSuccessors(S);
      for (const View &Next : Succs)
        if (Closure.insert(Next).second)
          Queue.push_back(Next);
      Graph->emplace_back(std::move(S), std::move(Succs));
    }
    Cached = Graph;
    ClosureCache &Cache = closureCache();
    std::lock_guard<std::mutex> Lock(Cache.M);
    if (Cache.Entries.size() >= ClosureCacheCap)
      Cache.Entries.clear();
    Cache.Entries.emplace(std::move(Key), Cached);
  }
  const ClosureGraph &Graph = *Cached;

  // Greatest fixpoint: start from the P-states and peel off any state
  // with an env successor outside the candidate set.
  auto InSet = std::make_shared<std::unordered_set<View, ViewHash>>();
  for (const auto &Node : Graph)
    if (P.holds(Node.first))
      InSet->insert(Node.first);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &Node : Graph) {
      if (!InSet->count(Node.first))
        continue;
      for (const View &Succ : Node.second) {
        if (!InSet->count(Succ)) {
          InSet->erase(Node.first);
          Changed = true;
          break;
        }
      }
    }
  }

  return Assertion("stable interior of " + P.name(),
                   [InSet](const View &S) {
                     return InSet->count(S) != 0;
                   });
}

StableInteriorCacheStats fcsl::stableInteriorCacheStats() {
  ClosureCache &Cache = closureCache();
  std::lock_guard<std::mutex> Lock(Cache.M);
  return Cache.Stats;
}

StabilityReport fcsl::checkRelationStability(
    const std::function<bool(const View &, const View &)> &R,
    const std::string &Name, const Concurroid &C,
    const std::vector<View> &Seeds, uint64_t MaxStates) {
  StabilityReport Report;
  for (const View &Seed : Seeds) {
    if (!C.coherent(Seed) || !R(Seed, Seed))
      continue;
    std::unordered_set<View, ViewHash> Visited{Seed};
    std::deque<View> Queue{Seed};
    while (!Queue.empty()) {
      if (Report.StatesVisited >= MaxStates)
        break;
      View S = std::move(Queue.front());
      Queue.pop_front();
      ++Report.StatesVisited;
      for (const View &Next : C.envSuccessors(S)) {
        ++Report.EnvStepsTaken;
        if (!R(Seed, Next)) {
          Report.Stable = false;
          Report.CounterExample = formatString(
              "relation %s is not monotone under env steps", Name.c_str());
          return Report;
        }
        if (Visited.insert(Next).second)
          Queue.push_back(Next);
      }
    }
  }
  return Report;
}
