//===- spec/Stability.h - Stability under interference ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stability (Section 2.2.3): an assertion is stable when it is invariant
/// under every transition the environment may take. The paper discharges
/// one stability lemma per intermediate assertion; we decide stability by
/// closing a set of seed views under environment successors and checking
/// the assertion on the closure. The check also serves as the analogue of
/// the paper's `subgraph_steps`-style lemmas ("property P is monotone wrt.
/// env_steps").
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_STABILITY_H
#define FCSL_SPEC_STABILITY_H

#include "concurroid/Concurroid.h"
#include "spec/Assertion.h"

namespace fcsl {

/// Result of a stability check.
struct StabilityReport {
  bool Stable = true;
  uint64_t StatesVisited = 0;
  uint64_t EnvStepsTaken = 0;
  std::string CounterExample; ///< empty when Stable.
};

/// Checks that \p A is stable under \p C's environment transitions, from
/// the given seed views: for every view reachable from a seed by env steps,
/// if the assertion held at the seed it keeps holding along the closure.
/// \p MaxStates bounds the closure.
StabilityReport checkStability(const Assertion &A, const Concurroid &C,
                               const std::vector<View> &Seeds,
                               uint64_t MaxStates = 100000);

/// Checks that a *relation* R(seed, s) between the seed view and reachable
/// views is monotone under env steps (the shape of the paper's
/// `subgraph_steps` lemma: env_steps s1 s2 -> subgraph g1 g2).
StabilityReport checkRelationStability(
    const std::function<bool(const View &Seed, const View &S)> &R,
    const std::string &Name, const Concurroid &C,
    const std::vector<View> &Seeds, uint64_t MaxStates = 100000);

/// Automation for stability facts (the paper's future-work item
/// "implement proof automation for stability-related facts via lemma
/// overloading"): computes the *stable interior* of \p P — the largest
/// strengthening of P that is invariant under \p C's interference —
/// over the environment-reachable closure of \p Seeds, as a greatest
/// fixpoint. The result is a decidable Assertion (true exactly on the
/// closure states in the fixpoint), so an unstable precondition can be
/// automatically weakened-into-stable instead of hand-strengthened.
Assertion stableInterior(const Assertion &P, const ConcurroidRef &C,
                         const std::vector<View> &Seeds,
                         uint64_t MaxStates = 100000);

/// `stableInterior` memoizes the env-reachable closure graph (the
/// expensive, assertion-independent half of the computation) keyed on the
/// concurroid, the seed views, and the bound; repeated interiors over the
/// same interference — the common case when a session discharges many
/// spec obligations against one concurroid — only pay for the greatest
/// fixpoint. These counters expose the cache for tests and diagnostics.
struct StableInteriorCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};
StableInteriorCacheStats stableInteriorCacheStats();

} // namespace fcsl

#endif // FCSL_SPEC_STABILITY_H
