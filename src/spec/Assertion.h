//===- spec/Assertion.h - Assertions over subjective states -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-class assertions: named predicates over subjective Views, with the
/// usual connectives. In the paper assertions are CIC propositions; here
/// they are executable predicates so that stability and Hoare-triple
/// validity become decidable over finite state spaces.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_ASSERTION_H
#define FCSL_SPEC_ASSERTION_H

#include "state/View.h"

#include <functional>

namespace fcsl {

/// A named predicate over views.
class Assertion {
public:
  using PredFn = std::function<bool(const View &)>;

  Assertion() = default;
  Assertion(std::string Name, PredFn Pred);

  const std::string &name() const { return Name; }
  bool holds(const View &S) const;
  explicit operator bool() const { return static_cast<bool>(Pred); }

private:
  std::string Name;
  PredFn Pred;
};

/// Connectives.
Assertion operator&&(const Assertion &A, const Assertion &B);
Assertion operator||(const Assertion &A, const Assertion &B);
Assertion operator!(const Assertion &A);

/// True everywhere.
Assertion assertTrue();

/// "self at L equals V".
Assertion selfIs(Label L, PCMVal V);

/// "x \in dom (joint L)".
Assertion jointContains(Label L, Ptr P);

/// "self \+ other is defined at L" (basic well-formedness).
Assertion contributionsCompatible(Label L);

} // namespace fcsl

#endif // FCSL_SPEC_ASSERTION_H
