//===- spec/Verifier.h - Hoare-triple verification --------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verification of `{Pre} prog {Post}` judgments: for every initial state
/// satisfying the precondition, every interleaving of the program with
/// environment interference must (a) never apply an atomic action outside
/// its safe states — the paper's "natural safety predicate" (Section 5.1,
/// footnote 5) — and (b) satisfy the postcondition at every terminal
/// state. This is the model-checking discharge of what FCSL proves
/// deductively; on the finite instances explored it is exhaustive.
///
/// With `EngineOptions::Jobs > 1`, `verifyTriple` and `inferPre` fan the
/// independent instances out across worker threads (inner explorations
/// then run serially); results and counters are aggregated in instance
/// order and are identical to the serial run.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SPEC_VERIFIER_H
#define FCSL_SPEC_VERIFIER_H

#include "prog/Engine.h"
#include "spec/Spec.h"

namespace fcsl {

/// One verification instance: the program with a concrete initial state
/// (the logical variables of the paper's specs become the quantification
/// over instances).
struct VerifyInstance {
  GlobalState Initial;
  VarEnv InitialEnv; ///< program-level arguments (e.g. the root pointer x).
};

/// Outcome of verifying a triple.
struct VerifyResult {
  bool Holds = true;
  std::string FailureNote;
  uint64_t InstancesChecked = 0;
  uint64_t ConfigsExplored = 0;
  uint64_t ActionSteps = 0;
  uint64_t EnvSteps = 0;
  uint64_t TerminalsChecked = 0;
  uint64_t DedupHits = 0;

  /// The aggregated engine counters in the detached form obligation
  /// results carry (and the verdict cache persists for `--stats` replay).
  EngineCounters counters() const {
    EngineCounters C;
    C.Configs = ConfigsExplored;
    C.ActionSteps = ActionSteps;
    C.EnvSteps = EnvSteps;
    C.Terminals = TerminalsChecked;
    C.DedupHits = DedupHits;
    return C;
  }
};

/// Verifies `{Spec.Pre} Prog {Spec.Post}` over all \p Instances whose
/// initial root-thread view satisfies the precondition (instances failing
/// the precondition are skipped — they are outside the triple's domain).
VerifyResult verifyTriple(const ProgRef &Prog, const Spec &S,
                          const std::vector<VerifyInstance> &Instances,
                          const EngineOptions &Opts);

/// The synthesized strongest postcondition of Section 5.1 ("each FCSL
/// command is packaged together with its weakest pre- and strongest
/// postconditions"): for one instance, the exact set of reachable
/// terminal (result, final view) pairs. std::nullopt if the program is
/// unsafe from this instance or the exploration was exhausted.
std::optional<std::vector<Terminal>>
strongestPost(const ProgRef &Prog, const VerifyInstance &Instance,
              const EngineOptions &Opts);

/// Precondition inference, the model-checking counterpart of Section
/// 5.2's spec weakening: among \p Candidates, returns the indices of the
/// initial states from which `{*} Prog {Post}` holds (safe, complete and
/// postcondition-satisfying). The assertion "initial state is one of the
/// returned candidates" is then a valid precondition for the triple.
std::vector<size_t>
inferPre(const ProgRef &Prog, const PostFn &Post,
         const std::vector<VerifyInstance> &Candidates,
         const EngineOptions &Opts);

} // namespace fcsl

#endif // FCSL_SPEC_VERIFIER_H
