//===- service/Listener.cpp - Connection acceptor abstraction --------------===//
//
// Part of fcsl-cpp. See Listener.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/Listener.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::service;

namespace {

class UnixListener : public Listener {
public:
  UnixListener(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}

  ~UnixListener() override {
    shutdown();
    ::unlink(Path.c_str());
  }

  int accept() override {
    while (!Down.load(std::memory_order_acquire)) {
      int C = ::accept(Fd, nullptr, nullptr);
      if (C >= 0)
        return C;
      if (errno == EINTR)
        continue;
      return -1; // listener closed under us, or a fatal error.
    }
    return -1;
  }

  void shutdown() override {
    if (Down.exchange(true, std::memory_order_acq_rel))
      return;
    // shutdown(2) unblocks a blocked accept(2) (it returns with an
    // error); close releases the descriptor.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }

  std::string endpoint() const override { return "unix:" + Path; }

private:
  int Fd;
  std::string Path;
  std::atomic<bool> Down{false};
};

} // namespace

std::unique_ptr<Listener> service::makeUnixListener(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof Addr.sun_path)
    return nullptr;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return nullptr;
  ::unlink(Path.c_str()); // a stale socket from a dead daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0 ||
      ::listen(Fd, 64) != 0) {
    ::close(Fd);
    return nullptr;
  }
  return std::make_unique<UnixListener>(Fd, Path);
}
