//===- service/Server.cpp - Long-lived verification daemon -----------------===//
//
// Part of fcsl-cpp. See Server.h for the architecture overview.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "prog/Engine.h"
#include "spec/Session.h"
#include "structures/Suite.h"

#include <future>

using namespace fcsl;
using namespace fcsl::service;
using namespace fcsl::dist;

namespace {

/// The daemon's startup mode defaults, captured once in start() — the
/// resolution target for requests whose mode bytes are Default (0).
/// Captured, not re-read: session workers install each request's modes as
/// the process globals, so the globals drift with traffic.
struct StartupModes {
  PorMode Por = PorMode::Off;
  SymMode Sym = SymMode::Off;
  cache::CacheMode Cache = cache::CacheMode::Off;
};

StartupModes GStartup;

/// A request's fully-resolved execution modes.
struct ResolvedModes {
  PorMode Por;
  SymMode Sym;
  cache::CacheMode Cache;
  uint64_t key() const {
    uint64_t K = fpString("fcsl-service-mode");
    K = fpCombine(K, static_cast<uint64_t>(Por));
    K = fpCombine(K, static_cast<uint64_t>(Sym));
    K = fpCombine(K, static_cast<uint64_t>(Cache));
    return K;
  }
};

/// Resolves and validates a submit's mode bytes. False on an
/// out-of-range byte (a confused or newer client — reject loudly).
bool resolveModes(const SubmitSessionMsg &Req, ResolvedModes &Out) {
  if (Req.Por > static_cast<uint8_t>(PorMode::CheckDynamic) ||
      Req.Symmetry > static_cast<uint8_t>(SymMode::Check) ||
      Req.Cache > static_cast<uint8_t>(cache::CacheMode::Check))
    return false;
  Out.Por = Req.Por == 0 ? GStartup.Por : static_cast<PorMode>(Req.Por);
  Out.Sym = Req.Symmetry == 0 ? GStartup.Sym
                              : static_cast<SymMode>(Req.Symmetry);
  Out.Cache = Req.Cache == 0 ? GStartup.Cache
                             : static_cast<cache::CacheMode>(Req.Cache);
  return true;
}

/// The registered session under \p Name, or nullptr.
const CaseEntry *findSession(const std::vector<CaseEntry> &Registry,
                             const std::string &Name) {
  for (const CaseEntry &Case : Registry)
    if (Case.Name == Name)
      return &Case;
  return nullptr;
}

uint64_t elapsedUs(std::chrono::steady_clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Since)
          .count());
}

/// Wraps a session ProgressFn so completions stream to the client as
/// Progress frames. Send failures are ignored — the session must finish
/// and its verdicts reach the store even if the client vanished.
ProgressFn progressSink(FdChannel &Ch, bool Wanted) {
  if (!Wanted)
    return {};
  return [&Ch](const ObligationProgress &P) {
    ProgressMsg M;
    M.Completed = static_cast<uint32_t>(P.Completed);
    M.Total = static_cast<uint32_t>(P.Total);
    M.Category = static_cast<uint8_t>(P.Category);
    M.Name = P.Name;
    M.Passed = P.Passed;
    M.FromCache = P.FromCache;
    M.ElapsedUs = static_cast<uint64_t>(P.ElapsedMs * 1000.0);
    Ch.send(frameProgress(M));
  };
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Queue(Opts.QueueCapacity ? Opts.QueueCapacity : 1) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
}

Server::~Server() {
  requestShutdown();
  wait();
}

std::string Server::endpoint() const { return L ? L->endpoint() : ""; }

bool Server::start() {
  // Resolve the startup defaults once (concrete, never Default) and warm
  // the store: opening it here loads the whole index before the first
  // request, so warm hits are pure in-memory serves from request one.
  GStartup.Por = defaultPorMode();
  GStartup.Sym = defaultSymmetryMode();
  GStartup.Cache = cache::defaultCacheMode();
  cache::activeStore();

  L = makeUnixListener(Opts.SocketPath);
  if (!L)
    return false;
  Started = std::chrono::steady_clock::now();

  for (unsigned I = 0; I != Opts.Workers; ++I)
    SessionWorkers.emplace_back([this] {
      while (std::optional<Job> J = Queue.pop()) {
        J->Run();
        Queue.done();
      }
    });
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    int Fd = L->accept();
    if (Fd < 0)
      break;
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Connections.emplace_back([this, Fd] { handleConnection(Fd); });
  }
}

void Server::requestShutdown() {
  if (Stopping.exchange(true, std::memory_order_acq_rel))
    return;
  Draining.store(true, std::memory_order_release);
  Queue.close();
  Queue.waitDrained();
  if (L)
    L->shutdown();
}

void Server::wait() {
  if (Acceptor.joinable())
    Acceptor.join();
  for (std::thread &W : SessionWorkers)
    if (W.joinable())
      W.join();
  SessionWorkers.clear();
  // Connection threads exit on their own once Stopping is set (their
  // recv loop polls); join whatever is registered.
  while (true) {
    std::thread T;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (Connections.empty())
        break;
      T = std::move(Connections.back());
      Connections.pop_back();
    }
    if (T.joinable())
      T.join();
  }
}

void Server::handleConnection(int Fd) {
  FdChannel Ch(Fd);
  if (!serverHandshake(Ch))
    return;
  const std::vector<CaseEntry> Registry = allVerifiableSessions();

  auto Reject = [&](const std::string &Why) {
    Stats.Rejected.fetch_add(1, std::memory_order_relaxed);
    ReportMsg R;
    R.Ok = false;
    R.Error = Why;
    Ch.send(frameReport(R));
  };

  while (!Stopping.load(std::memory_order_acquire)) {
    std::vector<uint8_t> Payload;
    // A finite poll window keeps the handler responsive to daemon
    // shutdown; Timeout just re-checks and resumes (partial frames stay
    // buffered in the channel).
    RecvStatus S = Ch.recv(Payload, /*TimeoutMs=*/200);
    if (S == RecvStatus::Timeout)
      continue;
    if (S == RecvStatus::Eof)
      return;
    if (S == RecvStatus::Error) {
      // Corrupt stream (bad length prefix) or transport failure: this
      // connection is unrecoverable, the daemon is fine.
      Stats.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // Frame-level triage. A malformed or unknown frame is rejected
    // LOUDLY — the client gets an error Report naming the problem — and
    // the connection survives (the framing itself was sound).
    FrameClass Cls = classifyFrame(Payload);
    if (Cls == FrameClass::Malformed) {
      Stats.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      Reject("malformed frame: bad codec header or version");
      continue;
    }
    if (Cls == FrameClass::UnknownType) {
      Stats.UnknownFrames.fetch_add(1, std::memory_order_relaxed);
      Reject("unknown message type (peer speaks a newer protocol?)");
      continue;
    }
    std::optional<WireMsg> M = decodeFrame(Payload);
    if (!M) {
      // Known tag, undecodable body: truncated or trailing garbage.
      Stats.MalformedFrames.fetch_add(1, std::memory_order_relaxed);
      Reject("malformed frame: truncated or oversized body");
      continue;
    }

    switch (M->Type) {
    case MsgType::Hello:
      Ch.send(frameHello(HelloMsg{})); // idempotent re-handshake.
      break;

    case MsgType::CacheStats: {
      CacheStatsMsg Out;
      Out.RequestsServed =
          Stats.RequestsServed.load(std::memory_order_relaxed);
      Out.SessionsRun = Stats.SessionsRun.load(std::memory_order_relaxed);
      Out.ServedFromCache =
          Stats.ServedFromCache.load(std::memory_order_relaxed);
      Out.ObligationsReplayed =
          Stats.ObligationsReplayed.load(std::memory_order_relaxed);
      Out.Rejected = Stats.Rejected.load(std::memory_order_relaxed);
      Out.UnknownFrames =
          Stats.UnknownFrames.load(std::memory_order_relaxed);
      Out.MalformedFrames =
          Stats.MalformedFrames.load(std::memory_order_relaxed);
      if (const cache::Store *St = cache::resolvedStore()) {
        Out.StoreRecords = St->records();
        Out.StoreBytes = St->fileBytes();
      }
      Out.UptimeUs = elapsedUs(Started);
      Ch.send(frameCacheStats(Out));
      break;
    }

    case MsgType::Shutdown: {
      // Graceful drain: refuse new work, wait out in-flight and queued
      // sessions, ack, and bring the daemon down.
      Draining.store(true, std::memory_order_release);
      Queue.close();
      Queue.waitDrained();
      ShutdownMsg Ack;
      Ack.Ack = true;
      Ch.send(frameShutdown(Ack));
      requestShutdown();
      return;
    }

    case MsgType::SubmitSession: {
      auto T0 = std::chrono::steady_clock::now();
      if (Draining.load(std::memory_order_acquire)) {
        Reject("daemon is draining for shutdown");
        break;
      }
      ResolvedModes Modes;
      if (!resolveModes(M->Submit, Modes)) {
        Reject("invalid mode byte in submit");
        break;
      }
      const CaseEntry *Entry = findSession(Registry, M->Submit.Session);
      if (!Entry) {
        Reject("unknown session '" + M->Submit.Session + "'");
        break;
      }

      // The microsecond fast path: with a consulting cache mode and a
      // warm store, the whole report replays from the in-memory index —
      // no engine, no queue, no mode installation (the flag fingerprint
      // alone selects the right verdicts). Check mode must re-discharge,
      // so it never takes this path.
      if (Modes.Cache == cache::CacheMode::Rw ||
          Modes.Cache == cache::CacheMode::Ro) {
        if (cache::Store *St = cache::resolvedStore()) {
          uint64_t FlagsFp = engineFlagsFingerprintFor(Modes.Por, Modes.Sym);
          VerificationSession Sess = Entry->MakeSession();
          if (std::optional<SessionReport> R = Sess.serveFromStore(
                  *St, FlagsFp,
                  progressSink(Ch, M->Submit.WantProgress))) {
            Stats.RequestsServed.fetch_add(1, std::memory_order_relaxed);
            Stats.ServedFromCache.fetch_add(1, std::memory_order_relaxed);
            Stats.ObligationsReplayed.fetch_add(
                R->Cache.Hits, std::memory_order_relaxed);
            ReportMsg Out;
            Out.Ok = true;
            Out.ServedFromCache = true;
            Out.Report = std::move(*R);
            Out.ElapsedUs = elapsedUs(T0);
            Ch.send(frameReport(Out));
            break;
          }
        }
      }

      // Cold (or partially warm, or check-mode) path: schedule on the
      // run queue. The connection thread parks on the job's completion —
      // the worker owns the channel while the session runs, so Progress
      // and Report frames never interleave with another read.
      std::promise<void> Done;
      std::future<void> DoneF = Done.get_future();
      SubmitSessionMsg Req = M->Submit;
      Job J;
      J.ModeKey = Modes.key();
      J.Run = [this, &Ch, Req, Modes, Entry, T0, &Done] {
        // Install the request's modes as the process defaults. Safe: the
        // queue's mode-key gate guarantees every concurrently running
        // session resolved to this same triple.
        setDefaultPorMode(Modes.Por);
        setDefaultSymmetryMode(Modes.Sym);
        cache::setDefaultCacheMode(Modes.Cache);
        Stats.SessionsRun.fetch_add(1, std::memory_order_relaxed);
        VerificationSession Sess = Entry->MakeSession();
        SessionReport R =
            Sess.run(Req.Jobs ? Req.Jobs : Opts.Jobs,
                     progressSink(Ch, Req.WantProgress));
        Stats.RequestsServed.fetch_add(1, std::memory_order_relaxed);
        ReportMsg Out;
        Out.Ok = true;
        Out.Report = std::move(R);
        Out.ElapsedUs = elapsedUs(T0);
        Ch.send(frameReport(Out));
        Done.set_value();
      };
      if (!Queue.push(std::move(J))) {
        Reject(Draining.load(std::memory_order_acquire)
                   ? "daemon is draining for shutdown"
                   : "run queue is full");
        break;
      }
      DoneF.wait();
      break;
    }

    default:
      // Progress / Report / server-to-client frames from a client, or
      // shard-fleet frames on a service socket: loudly out of place.
      Stats.UnknownFrames.fetch_add(1, std::memory_order_relaxed);
      Reject("unexpected message type on a service connection");
      break;
    }
  }
}
