//===- service/Client.h - Verification daemon client ------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the verification service (DESIGN.md §15): connect
/// to a running `fcsl-serve`, submit sessions by name, stream progress,
/// and collect the daemon's Report — which carries the same SessionReport
/// a direct `fcsl-verify` run produces, bit-identical on the wire.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SERVICE_CLIENT_H
#define FCSL_SERVICE_CLIENT_H

#include "dist/Wire.h"
#include "service/Protocol.h"

#include <functional>
#include <optional>
#include <string>

namespace fcsl {
namespace service {

/// Called once per streamed Progress frame during submit().
using ProgressSink = std::function<void(const dist::ProgressMsg &)>;

class ServiceClient {
public:
  /// Connects to the daemon's Unix socket and completes the Hello
  /// handshake. ok() is false (with error() set) on any failure.
  explicit ServiceClient(const std::string &SocketPath, int TimeoutMs = 5000);

  bool ok() const { return Ch && Ch->ok(); }
  const std::string &error() const { return Err; }

  /// Submits \p Session and blocks until the daemon's Report, invoking
  /// \p OnProgress for every Progress frame in between (pass a non-null
  /// sink to request streaming). Mode bytes follow SubmitSessionMsg:
  /// 0 = the daemon's default. Returns nullopt on a transport failure;
  /// a daemon-side rejection returns a ReportMsg with Ok false.
  std::optional<dist::ReportMsg> submit(const std::string &Session,
                                        uint8_t Por = 0, uint8_t Symmetry = 0,
                                        uint8_t Cache = 0, uint32_t Jobs = 0,
                                        const ProgressSink &OnProgress = {});

  /// Queries the daemon's serving counters.
  std::optional<dist::CacheStatsMsg> stats();

  /// Asks the daemon to drain and exit; true once the Ack arrives (the
  /// daemon has finished every in-flight session by then).
  bool shutdown();

  /// Per-request receive timeout for submit()/stats() (a running session
  /// sends nothing until its first Progress or the Report). Default 10
  /// minutes — generous enough for a cold serial Table-1 session.
  void setRequestTimeoutMs(int Ms) { RequestTimeoutMs = Ms; }

private:
  /// Receives frames until one decodes with \p Want, dispatching Progress
  /// frames to \p OnProgress along the way.
  std::optional<dist::WireMsg> recvUntil(dist::MsgType Want,
                                         const ProgressSink &OnProgress);

  std::optional<FdChannel> Ch;
  std::string Err;
  int RequestTimeoutMs = 600000;
};

} // namespace service
} // namespace fcsl

#endif // FCSL_SERVICE_CLIENT_H
