//===- service/RequestQueue.h - Bounded session run queue -------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's run queue (DESIGN.md §15): a bounded FIFO of submitted
/// sessions consumed by a pool of session workers. Submission is
/// fail-loud — a full queue rejects the request immediately (the client
/// gets an error Report) instead of buffering unboundedly.
///
/// The *mode-key gate*: the engine's POR/symmetry/cache modes are process
/// globals (prog/Engine.h, cache/Store.h), so two sessions may run
/// concurrently only when they resolve to the SAME mode triple. Each job
/// carries a mode key; pop() releases the head job only when no job is
/// running or the head's key matches every running job's (all runners
/// share one key by induction). Requests under one mode — the common CI
/// shape — parallelize fully; a mode switch drains before taking effect.
/// Head-of-line blocking is the cost, FIFO fairness the reward.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SERVICE_REQUEST_QUEUE_H
#define FCSL_SERVICE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace fcsl {
namespace service {

/// One scheduled unit of daemon work.
struct Job {
  /// Fingerprint of the resolved (POR, symmetry, cache) mode triple; jobs
  /// run concurrently only with equal keys.
  uint64_t ModeKey = 0;
  /// Runs on a session worker. Installs the job's modes as the process
  /// defaults (safe: the gate guarantees every concurrent runner agrees),
  /// runs the session, and writes frames back to the client.
  std::function<void()> Run;
};

class RequestQueue {
public:
  explicit RequestQueue(size_t Capacity) : Capacity(Capacity) {}

  /// Enqueues \p J. False when the queue is full or closed — the caller
  /// must reject the request loudly.
  bool push(Job J);

  /// Blocks for the next runnable job (FIFO head, mode-gated). Returns
  /// nullopt only when the queue is closed and empty — the worker exits.
  /// Every popped job MUST be followed by done() exactly once.
  std::optional<Job> pop();

  /// Marks a popped job finished, releasing the gate for a waiting head
  /// of a different mode key.
  void done();

  /// Stops accepting pushes; pop() drains the backlog then returns
  /// nullopt. Idempotent.
  void close();

  /// Blocks until every queued job has been popped AND finished (the
  /// graceful-Shutdown drain).
  void waitDrained();

  size_t depth() const;

private:
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<Job> Q;
  size_t Capacity;
  unsigned Running = 0;
  uint64_t ActiveKey = 0;
  bool Closed = false;
};

} // namespace service
} // namespace fcsl

#endif // FCSL_SERVICE_REQUEST_QUEUE_H
