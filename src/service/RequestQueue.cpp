//===- service/RequestQueue.cpp - Bounded session run queue ----------------===//
//
// Part of fcsl-cpp. See RequestQueue.h for the interface and the mode-key
// gate argument.
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

using namespace fcsl;
using namespace fcsl::service;

bool RequestQueue::push(Job J) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Closed || Q.size() >= Capacity)
      return false;
    Q.push_back(std::move(J));
  }
  CV.notify_all();
  return true;
}

std::optional<Job> RequestQueue::pop() {
  std::unique_lock<std::mutex> Lock(M);
  CV.wait(Lock, [this] {
    if (Closed && Q.empty())
      return true;
    // The gate: the FIFO head runs alongside the current runners only
    // when it needs the same process-global modes they installed.
    return !Q.empty() && (Running == 0 || Q.front().ModeKey == ActiveKey);
  });
  if (Q.empty())
    return std::nullopt; // closed and drained.
  Job J = std::move(Q.front());
  Q.pop_front();
  ++Running;
  ActiveKey = J.ModeKey;
  return J;
}

void RequestQueue::done() {
  {
    std::lock_guard<std::mutex> Lock(M);
    --Running;
  }
  CV.notify_all();
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
  }
  CV.notify_all();
}

void RequestQueue::waitDrained() {
  std::unique_lock<std::mutex> Lock(M);
  CV.wait(Lock, [this] { return Q.empty() && Running == 0; });
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> Lock(M);
  return Q.size();
}
