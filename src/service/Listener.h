//===- service/Listener.h - Connection acceptor abstraction -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Where client connections come from (DESIGN.md §15). The daemon accepts
/// through this interface so the transport is swappable: today a
/// Unix-domain socket (one host, filesystem-permission access control);
/// a TCP listener slots in behind the same accept()/shutdown() contract
/// when the service grows past one machine. Everything above — protocol,
/// scheduling, serving — is transport-blind.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SERVICE_LISTENER_H
#define FCSL_SERVICE_LISTENER_H

#include <memory>
#include <string>

namespace fcsl {
namespace service {

/// Accepts client connections, one connected fd at a time.
class Listener {
public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; returns the connected fd, or -1
  /// after shutdown() (or on a fatal listener error).
  virtual int accept() = 0;

  /// Unblocks any accept() in flight and makes all future ones fail.
  /// Callable from another thread (this is how the daemon stops serving).
  virtual void shutdown() = 0;

  /// The endpoint, for logs ("unix:/path").
  virtual std::string endpoint() const = 0;
};

/// Binds a Unix-domain stream socket at \p Path (unlinking a stale one).
/// Null on failure (path too long, bind/listen error).
std::unique_ptr<Listener> makeUnixListener(const std::string &Path);

} // namespace service
} // namespace fcsl

#endif // FCSL_SERVICE_LISTENER_H
