//===- service/Server.h - Long-lived verification daemon --------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification daemon behind `fcsl-serve` (DESIGN.md §15). One
/// process holds everything a cold `fcsl-verify` run pays to rebuild —
/// interned arenas, the warm obligation-store index, live threads — and
/// serves session requests over a Listener:
///
///   - Accepted connections handshake (Hello/Hello) and then submit
///     sessions by registered name (structures/Suite.h); per-request
///     POR/symmetry/cache flags resolve through the same fingerprints a
///     direct run uses, so daemon verdicts share the store with CLI runs.
///   - A fully-warm session is served straight from the in-memory store
///     index (VerificationSession::serveFromStore) — microseconds, and
///     the engine is never invoked (the stats frame proves it).
///   - Everything else is scheduled on the bounded RequestQueue and run
///     by session workers under the mode-key gate; Progress frames
///     stream to the client as obligations complete.
///   - Shutdown drains in-flight and queued sessions, acks, and exits.
///
/// Per-request *shards* are deliberately unsupported: sharding forks
/// worker processes, and forking this multi-threaded daemon is unsafe
/// (Session::run would clamp discharge to serial anyway). A sharded
/// corpus still serves warm — records are fingerprint-compatible.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SERVICE_SERVER_H
#define FCSL_SERVICE_SERVER_H

#include "service/Listener.h"
#include "service/Protocol.h"
#include "service/RequestQueue.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace fcsl {
namespace service {

struct ServerOptions {
  std::string SocketPath;   ///< Unix-domain socket to serve on.
  unsigned Workers = 2;     ///< session worker threads.
  size_t QueueCapacity = 64;///< queued (not yet running) session bound.
  unsigned Jobs = 0;        ///< default discharge jobs (0 = pool default).
};

/// The daemon's serving counters (atomics mirrored into CacheStatsMsg).
struct DaemonStats {
  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> SessionsRun{0};
  std::atomic<uint64_t> ServedFromCache{0};
  std::atomic<uint64_t> ObligationsReplayed{0};
  std::atomic<uint64_t> Rejected{0};
  std::atomic<uint64_t> UnknownFrames{0};
  std::atomic<uint64_t> MalformedFrames{0};
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  /// Binds the listener and starts the accept loop and session workers.
  /// The daemon's startup POR/symmetry/cache defaults are whatever the
  /// process globals hold when start() runs (fcsl-serve sets them from
  /// its flags); requests with Default mode bytes inherit them.
  bool start();

  /// Blocks until a client's Shutdown (or requestShutdown()) completes
  /// the drain and every thread exits.
  void wait();

  /// Programmatic shutdown: same drain as a client Shutdown frame.
  void requestShutdown();

  std::string endpoint() const;
  const DaemonStats &stats() const { return Stats; }

private:
  void acceptLoop();
  void handleConnection(int Fd);

  ServerOptions Opts;
  std::unique_ptr<Listener> L;
  RequestQueue Queue;
  DaemonStats Stats;
  std::chrono::steady_clock::time_point Started;
  std::atomic<bool> Draining{false};
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::vector<std::thread> SessionWorkers;
  std::mutex ConnMutex;
  std::vector<std::thread> Connections;
};

} // namespace service
} // namespace fcsl

#endif // FCSL_SERVICE_SERVER_H
