//===- service/Client.cpp - Verification daemon client ---------------------===//
//
// Part of fcsl-cpp. See Client.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::service;
using namespace fcsl::dist;

namespace {

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof Addr.sun_path)
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int Rc;
  do
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr);
  while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

ServiceClient::ServiceClient(const std::string &SocketPath, int TimeoutMs) {
  int Fd = connectUnix(SocketPath);
  if (Fd < 0) {
    Err = "cannot connect to " + SocketPath + ": " + std::strerror(errno);
    return;
  }
  Ch.emplace(Fd);
  if (!clientHandshake(*Ch, TimeoutMs)) {
    Err = "handshake with " + SocketPath + " failed";
    Ch->close();
  }
}

std::optional<WireMsg> ServiceClient::recvUntil(MsgType Want,
                                                const ProgressSink &OnProgress) {
  while (true) {
    std::vector<uint8_t> Payload;
    RecvStatus S = Ch->recv(Payload, RequestTimeoutMs);
    if (S != RecvStatus::Frame) {
      Err = S == RecvStatus::Timeout ? "timed out waiting for the daemon"
                                     : "connection to the daemon was lost";
      return std::nullopt;
    }
    std::optional<WireMsg> M = decodeFrame(Payload);
    if (!M) {
      Err = "undecodable frame from the daemon";
      return std::nullopt;
    }
    if (M->Type == MsgType::Progress) {
      if (OnProgress)
        OnProgress(M->Prog);
      continue;
    }
    if (M->Type == Want)
      return M;
    // Anything else mid-request means the two ends disagree about the
    // conversation state; bail rather than guess.
    Err = "unexpected frame from the daemon";
    return std::nullopt;
  }
}

std::optional<ReportMsg> ServiceClient::submit(const std::string &Session,
                                               uint8_t Por, uint8_t Symmetry,
                                               uint8_t Cache, uint32_t Jobs,
                                               const ProgressSink &OnProgress) {
  if (!ok())
    return std::nullopt;
  SubmitSessionMsg Req;
  Req.Session = Session;
  Req.Por = Por;
  Req.Symmetry = Symmetry;
  Req.Cache = Cache;
  Req.Jobs = Jobs;
  Req.WantProgress = static_cast<bool>(OnProgress);
  if (!Ch->send(frameSubmitSession(Req))) {
    Err = "connection to the daemon was lost";
    return std::nullopt;
  }
  std::optional<WireMsg> M = recvUntil(MsgType::Report, OnProgress);
  if (!M)
    return std::nullopt;
  return std::move(M->Rep);
}

std::optional<CacheStatsMsg> ServiceClient::stats() {
  if (!ok())
    return std::nullopt;
  CacheStatsMsg Q;
  Q.Query = true;
  if (!Ch->send(frameCacheStats(Q))) {
    Err = "connection to the daemon was lost";
    return std::nullopt;
  }
  std::optional<WireMsg> M = recvUntil(MsgType::CacheStats, {});
  if (!M)
    return std::nullopt;
  return std::move(M->CStats);
}

bool ServiceClient::shutdown() {
  if (!ok())
    return false;
  if (!Ch->send(frameShutdown(ShutdownMsg{}))) {
    Err = "connection to the daemon was lost";
    return false;
  }
  std::optional<WireMsg> M = recvUntil(MsgType::Shutdown, {});
  return M && M->Shut.Ack;
}
