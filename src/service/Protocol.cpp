//===- service/Protocol.cpp - Framed channel over a socket fd --------------===//
//
// Part of fcsl-cpp. See Protocol.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::service;
using namespace fcsl::dist;

FdChannel::~FdChannel() { close(); }

void FdChannel::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool FdChannel::send(const std::vector<uint8_t> &Frame) {
  if (Fd < 0)
    return false;
  size_t Done = 0;
  while (Done != Frame.size()) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE here, not as a
    // process-killing SIGPIPE in the daemon.
    ssize_t N = ::send(Fd, Frame.data() + Done, Frame.size() - Done,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

RecvStatus FdChannel::recv(std::vector<uint8_t> &Payload, int TimeoutMs) {
  if (Fd < 0 || In.corrupt())
    return RecvStatus::Error;
  if (std::optional<std::vector<uint8_t>> P = In.next()) {
    Payload = std::move(*P);
    return RecvStatus::Frame;
  }
  while (true) {
    pollfd Pfd{Fd, POLLIN, 0};
    int R = ::poll(&Pfd, 1, TimeoutMs);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return RecvStatus::Error;
    }
    if (R == 0)
      return RecvStatus::Timeout;
    uint8_t Buf[64 << 10];
    ssize_t N = ::recv(Fd, Buf, sizeof Buf, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return RecvStatus::Error;
    }
    if (N == 0)
      return RecvStatus::Eof;
    In.feed(Buf, static_cast<size_t>(N));
    if (In.corrupt())
      return RecvStatus::Error;
    if (std::optional<std::vector<uint8_t>> P = In.next()) {
      Payload = std::move(*P);
      return RecvStatus::Frame;
    }
    // A frame can span reads; keep polling until one completes.
  }
}

bool service::clientHandshake(FdChannel &Ch, int TimeoutMs) {
  if (!Ch.send(frameHello(HelloMsg{})))
    return false;
  std::vector<uint8_t> Payload;
  if (Ch.recv(Payload, TimeoutMs) != RecvStatus::Frame)
    return false;
  std::optional<WireMsg> M = decodeFrame(Payload);
  return M && M->Type == MsgType::Hello;
}

bool service::serverHandshake(FdChannel &Ch, int TimeoutMs) {
  std::vector<uint8_t> Payload;
  if (Ch.recv(Payload, TimeoutMs) != RecvStatus::Frame)
    return false;
  std::optional<WireMsg> M = decodeFrame(Payload);
  if (!M || M->Type != MsgType::Hello)
    return false;
  return Ch.send(frameHello(HelloMsg{}));
}
