//===- service/Protocol.h - Framed channel over a socket fd -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service side of the dist/Wire frame protocol (DESIGN.md §15): a
/// blocking, poll-timed channel that ships complete frames over one
/// connected socket and reassembles incoming ones through a FrameBuffer.
/// Both ends of a connection — the daemon's per-connection handler and
/// fcsl-client — speak through this class, so framing bugs cannot diverge
/// between them. The Hello exchange doubles as the protocol version
/// guard: the codec header inside every frame carries CodecVersion, and a
/// peer from another vintage fails decode before any body is trusted.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_SERVICE_PROTOCOL_H
#define FCSL_SERVICE_PROTOCOL_H

#include "dist/Wire.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace fcsl {
namespace service {

/// What one receive attempt yielded.
enum class RecvStatus : uint8_t {
  Frame,   ///< a complete frame payload was delivered.
  Timeout, ///< the poll window elapsed with no complete frame.
  Eof,     ///< the peer closed the connection cleanly.
  Error,   ///< a transport error, or the frame stream latched corrupt.
};

/// One connected socket speaking length-prefixed frames. Owns the
/// descriptor. Not thread-safe per direction: at most one sender and one
/// receiver at a time (the daemon guarantees this by construction — the
/// connection handler hands the socket to a session worker and waits).
class FdChannel {
public:
  explicit FdChannel(int Fd) : Fd(Fd) {}
  FdChannel(const FdChannel &) = delete;
  FdChannel &operator=(const FdChannel &) = delete;
  ~FdChannel();

  /// Sends one complete frame (length prefix + payload, as the dist::
  /// framers return). False on a transport error (peer gone).
  bool send(const std::vector<uint8_t> &Frame);

  /// Receives the next frame payload into \p Payload. \p TimeoutMs < 0
  /// blocks indefinitely; 0 polls. On Timeout, bytes read so far stay
  /// buffered — a later call resumes mid-frame.
  RecvStatus recv(std::vector<uint8_t> &Payload, int TimeoutMs = -1);

  int fd() const { return Fd; }
  bool ok() const { return Fd >= 0 && !In.corrupt(); }
  void close();

private:
  int Fd = -1;
  dist::FrameBuffer In;
};

/// Client-side handshake: send Hello, expect Hello back. False when the
/// peer is silent, closes, or answers with anything else (including a
/// frame from another codec version, which fails decode).
bool clientHandshake(FdChannel &Ch, int TimeoutMs = 5000);

/// Server-side handshake: expect Hello, answer Hello.
bool serverHandshake(FdChannel &Ch, int TimeoutMs = 5000);

} // namespace service
} // namespace fcsl

#endif // FCSL_SERVICE_PROTOCOL_H
