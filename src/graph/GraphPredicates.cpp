//===- graph/GraphPredicates.cpp - tree/front/maximal/subgraph -------------===//
//
// Part of fcsl-cpp. See GraphPredicates.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphPredicates.h"

#include <algorithm>
#include <deque>

using namespace fcsl;

namespace {

/// Counts simple paths from \p From to \p To along edges staying in \p T,
/// stopping early once more than one is found. The initial node is a path
/// of length zero when From == To.
unsigned countPathsWithin(const Heap &G, Ptr From, Ptr To, const PtrSet &T,
                          PtrSet &OnPath) {
  if (From == To)
    return 1;
  unsigned Count = 0;
  for (Ptr Next : succsOf(G, From)) {
    if (!T.count(Next) || OnPath.count(Next))
      continue;
    OnPath.insert(Next);
    Count += countPathsWithin(G, Next, To, T, OnPath);
    OnPath.erase(Next);
    if (Count > 1)
      return Count;
  }
  return Count;
}

} // namespace

bool fcsl::isTreeIn(const Heap &G, Ptr X, const PtrSet &T) {
  if (!T.count(X))
    return false;
  for (Ptr Node : T)
    if (!G.contains(Node))
      return false;
  for (Ptr Y : T) {
    PtrSet OnPath{X};
    if (countPathsWithin(G, X, Y, T, OnPath) != 1)
      return false;
  }
  return true;
}

bool fcsl::isFront(const Heap &G, const PtrSet &T, const PtrSet &TPrime) {
  for (Ptr Node : T)
    if (!TPrime.count(Node))
      return false;
  for (Ptr Node : T)
    for (Ptr Succ : succsOf(G, Node))
      if (!TPrime.count(Succ))
        return false;
  return true;
}

bool fcsl::isMaximal(const Heap &G, const PtrSet &T) {
  return isFront(G, T, T);
}

PtrSet fcsl::reachableFrom(const Heap &G, Ptr X) {
  PtrSet Seen;
  if (!G.contains(X))
    return Seen;
  std::deque<Ptr> Queue{X};
  Seen.insert(X);
  while (!Queue.empty()) {
    Ptr Node = Queue.front();
    Queue.pop_front();
    for (Ptr Succ : succsOf(G, Node))
      if (Seen.insert(Succ).second)
        Queue.push_back(Succ);
  }
  return Seen;
}

bool fcsl::isConnectedFrom(const Heap &G, Ptr X) {
  PtrSet Seen = reachableFrom(G, X);
  for (const auto &Cell : G)
    if (!Seen.count(Cell.first))
      return false;
  return true;
}

bool fcsl::isSubgraphEvolution(const Heap &G1, const Heap &G2) {
  if (G1.domain() != G2.domain())
    return false;
  for (const auto &Cell : G1) {
    const NodeCell &Before = Cell.second.getNode();
    const NodeCell &After = G2.lookup(Cell.first).getNode();
    // Marks only increase.
    if (Before.Marked && !After.Marked)
      return false;
    // Unmarked (in G2) nodes are untouched.
    if (!After.Marked && !(Before == After))
      return false;
    // Edges can only be nullified, never redirected.
    if (After.Left != Before.Left && !After.Left.isNull())
      return false;
    if (After.Right != Before.Right && !After.Right.isNull())
      return false;
  }
  return true;
}

bool fcsl::lemmaMaxTree2(const Heap &G, Ptr X, Ptr Y1, Ptr Y2,
                         const PtrSet &TY1, const PtrSet &TY2) {
  // Premises.
  std::vector<Ptr> Succs = succsOf(G, X);
  std::vector<Ptr> Expected;
  if (!Y1.isNull())
    Expected.push_back(Y1);
  if (!Y2.isNull() && Y2 != Y1)
    Expected.push_back(Y2);
  std::sort(Succs.begin(), Succs.end());
  std::sort(Expected.begin(), Expected.end());
  if (Succs != Expected)
    return true; // Premise fails: lemma vacuously true.
  if (!Y1.isNull() && (!isTreeIn(G, Y1, TY1) || !isMaximal(G, TY1)))
    return true;
  if (!Y2.isNull() && (!isTreeIn(G, Y2, TY2) || !isMaximal(G, TY2)))
    return true;
  // Disjointness (the paper's `valid (ty1 \+ ty2)`).
  for (Ptr Node : TY1)
    if (TY2.count(Node))
      return true;
  if (TY1.count(X) || TY2.count(X))
    return true;
  // Conclusion: #x \+ ty1 \+ ty2 is a tree rooted at x.
  PtrSet Union = TY1;
  Union.insert(TY2.begin(), TY2.end());
  Union.insert(X);
  return isTreeIn(G, X, Union);
}

bool fcsl::lemmaMaximalTreeSpans(const Heap &G, Ptr X, const PtrSet &T) {
  // Premises: T is a maximal tree rooted at X; G is connected from X.
  if (!isTreeIn(G, X, T) || !isMaximal(G, T) || !isConnectedFrom(G, X))
    return true; // Vacuous.
  for (const auto &Cell : G)
    if (!T.count(Cell.first))
      return false;
  return true;
}
