//===- graph/GraphPredicates.h - tree/front/maximal/subgraph ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph-theoretic predicates of the paper's Section 3.2, used in
/// span_tp and span_root_tp: `tree`, `front`, `maximal`, `connected`, and
/// the `subgraph` evolution relation; plus checkable analogues of the two
/// key lemmas `max_tree2` (disjoint maximal subtrees compose into a tree)
/// and the front-inclusion argument behind the spanning property. In Coq
/// these are proved once; here they are decision procedures over the small
/// graphs the model checker explores, and the lemma statements are
/// validated by property sweeps over random graphs.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_GRAPH_GRAPHPREDICATES_H
#define FCSL_GRAPH_GRAPHPREDICATES_H

#include "graph/HeapGraph.h"

namespace fcsl {

/// `tree x t`: t contains x and for every y in t there is exactly one path
/// from x to y along `edge` links that stays inside t.
bool isTreeIn(const Heap &G, Ptr X, const PtrSet &T);

/// `front t t'`: t is included in t', and every node reachable in one step
/// from t is in t'.
bool isFront(const Heap &G, const PtrSet &T, const PtrSet &TPrime);

/// `maximal t`: t includes its own front (cannot be extended).
bool isMaximal(const Heap &G, const PtrSet &T);

/// `connected x`: every node of the graph is reachable from x.
bool isConnectedFrom(const Heap &G, Ptr X);

/// The heap part of the paper's `subgraph s1 s2` relation: same node set,
/// unmarked nodes' contents unchanged, edges only nullified, marks only
/// added.
bool isSubgraphEvolution(const Heap &G1, const Heap &G2);

/// All nodes reachable from \p X (including X if in the graph).
PtrSet reachableFrom(const Heap &G, Ptr X);

/// Checkable instance of Lemma max_tree2: if X's successor set is exactly
/// {Y1, Y2}, TY1/TY2 are disjoint maximal trees rooted at Y1/Y2, and X is
/// in neither, then {X} u TY1 u TY2 is a tree rooted at X. Returns true
/// when the conclusion holds (callers establish the premises).
bool lemmaMaxTree2(const Heap &G, Ptr X, Ptr Y1, Ptr Y2, const PtrSet &TY1,
                   const PtrSet &TY2);

/// The spanning-tree argument of Section 2.1: if T is a maximal tree in G
/// rooted at X and G is connected from X, then T covers all of G's nodes.
bool lemmaMaximalTreeSpans(const Heap &G, Ptr X, const PtrSet &T);

} // namespace fcsl

#endif // FCSL_GRAPH_GRAPHPREDICATES_H
