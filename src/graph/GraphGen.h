//===- graph/GraphGen.h - Graph construction and generators -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for heap-represented graphs: explicit adjacency construction,
/// the exact five-node graph of the paper's Figure 2, and deterministic
/// random graph generation (optionally constrained to be connected from a
/// root) for property tests and benchmark sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_GRAPH_GRAPHGEN_H
#define FCSL_GRAPH_GRAPHGEN_H

#include "graph/HeapGraph.h"
#include "support/Rng.h"

namespace fcsl {

/// One node description for buildGraph.
struct GraphNode {
  Ptr Id;
  Ptr Left;  ///< null for no successor.
  Ptr Right; ///< null for no successor.
};

/// Builds an unmarked graph heap; asserts the result satisfies `graph`.
Heap buildGraph(const std::vector<GraphNode> &Nodes);

/// The five-node graph of Figure 2 (a=&1 ... e=&5): a -> (b, c),
/// b -> (d, e), c -> (e, c), d and e are leaves. Node c's right successor
/// is the self-loop the figure's stage (5) removes.
Heap figure2Graph();

/// Names the Figure 2 nodes for display ("a".."e").
std::string figure2NodeName(Ptr P);

/// Generates a pseudo-random graph over \p NumNodes nodes. When
/// \p ConnectedFromRoot, every node is made reachable from node &1 by
/// grafting stray nodes onto the reachable part.
Heap randomGraph(unsigned NumNodes, Rng &R, bool ConnectedFromRoot);

} // namespace fcsl

#endif // FCSL_GRAPH_GRAPHGEN_H
