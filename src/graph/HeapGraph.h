//===- graph/HeapGraph.h - Heap-represented binary graphs -------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary directed graphs laid out in a heap (Section 3.2): every cell maps
/// a pointer to a NodeCell triple (marked bit, left successor, right
/// successor), successors being null or in-heap pointers. This header
/// provides the paper's `graph` well-formedness predicate, the partial
/// accessor functions `mark`, `edgl`, `edgr`, `cont` (defaulting to
/// false/null outside the heap), the `edge` incidence relation, and the
/// physical transformers `mark_node` and `null_edge` used by the SpanTree
/// concurroid's transitions.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_GRAPH_HEAPGRAPH_H
#define FCSL_GRAPH_HEAPGRAPH_H

#include "heap/Heap.h"

#include <set>

namespace fcsl {

/// A set of graph nodes (the paper's ptr_set).
using PtrSet = std::set<Ptr>;

/// Which successor of a node an operation addresses.
enum class Side : uint8_t { Left, Right };

/// The paper's `graph h`: every cell stores a NodeCell whose successors are
/// null or within the heap's domain.
bool isGraphHeap(const Heap &H);

/// `mark g x`: the marked bit (false if x is outside the heap).
bool nodeMarked(const Heap &G, Ptr X);

/// `edgl g x` / `edgr g x`: successor pointers (null outside the heap).
Ptr succOf(const Heap &G, Ptr X, Side S);

/// `cont g x`: the whole triple (all-default outside the heap).
NodeCell nodeCont(const Heap &G, Ptr X);

/// The incidence relation `edge x y`: x is in the heap, y is non-null and
/// is one of x's successors.
bool hasEdge(const Heap &G, Ptr X, Ptr Y);

/// All (non-null) successors of X present in the graph.
std::vector<Ptr> succsOf(const Heap &G, Ptr X);

/// `mark_node g x`: sets the marked bit; asserts x is in the heap.
Heap markNode(const Heap &G, Ptr X);

/// `null_edge g c x`: nullifies x's successor on side \p S; asserts x is
/// in the heap.
Heap nullEdge(const Heap &G, Ptr X, Side S);

/// The set of marked nodes of the graph.
PtrSet markedNodes(const Heap &G);

} // namespace fcsl

#endif // FCSL_GRAPH_HEAPGRAPH_H
