//===- graph/HeapGraph.cpp - Heap-represented binary graphs ----------------===//
//
// Part of fcsl-cpp. See HeapGraph.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "graph/HeapGraph.h"

#include <cassert>

using namespace fcsl;

bool fcsl::isGraphHeap(const Heap &H) {
  for (const auto &Cell : H) {
    if (!Cell.second.isNode())
      return false;
    const NodeCell &Node = Cell.second.getNode();
    if (!Node.Left.isNull() && !H.contains(Node.Left))
      return false;
    if (!Node.Right.isNull() && !H.contains(Node.Right))
      return false;
  }
  return true;
}

bool fcsl::nodeMarked(const Heap &G, Ptr X) {
  const Val *Cell = G.tryLookup(X);
  return Cell && Cell->getNode().Marked;
}

Ptr fcsl::succOf(const Heap &G, Ptr X, Side S) {
  const Val *Cell = G.tryLookup(X);
  if (!Cell)
    return Ptr::null();
  const NodeCell &Node = Cell->getNode();
  return S == Side::Left ? Node.Left : Node.Right;
}

NodeCell fcsl::nodeCont(const Heap &G, Ptr X) {
  const Val *Cell = G.tryLookup(X);
  return Cell ? Cell->getNode() : NodeCell{};
}

bool fcsl::hasEdge(const Heap &G, Ptr X, Ptr Y) {
  if (!G.contains(X) || Y.isNull())
    return false;
  const NodeCell &Node = G.lookup(X).getNode();
  return Node.Left == Y || Node.Right == Y;
}

std::vector<Ptr> fcsl::succsOf(const Heap &G, Ptr X) {
  std::vector<Ptr> Out;
  const Val *Cell = G.tryLookup(X);
  if (!Cell)
    return Out;
  const NodeCell &Node = Cell->getNode();
  if (!Node.Left.isNull())
    Out.push_back(Node.Left);
  if (!Node.Right.isNull() && Node.Right != Node.Left)
    Out.push_back(Node.Right);
  return Out;
}

Heap fcsl::markNode(const Heap &G, Ptr X) {
  assert(G.contains(X) && "marking a node outside the graph");
  NodeCell Node = G.lookup(X).getNode();
  Node.Marked = true;
  Heap Out = G;
  Out.update(X, Val::node(Node.Marked, Node.Left, Node.Right));
  return Out;
}

Heap fcsl::nullEdge(const Heap &G, Ptr X, Side S) {
  assert(G.contains(X) && "nullifying an edge outside the graph");
  NodeCell Node = G.lookup(X).getNode();
  if (S == Side::Left)
    Node.Left = Ptr::null();
  else
    Node.Right = Ptr::null();
  Heap Out = G;
  Out.update(X, Val::node(Node.Marked, Node.Left, Node.Right));
  return Out;
}

PtrSet fcsl::markedNodes(const Heap &G) {
  PtrSet Out;
  for (const auto &Cell : G)
    if (Cell.second.getNode().Marked)
      Out.insert(Cell.first);
  return Out;
}
