//===- graph/GraphGen.cpp - Graph construction and generators --------------===//
//
// Part of fcsl-cpp. See GraphGen.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphGen.h"

#include "graph/GraphPredicates.h"

#include <cassert>

using namespace fcsl;

Heap fcsl::buildGraph(const std::vector<GraphNode> &Nodes) {
  Heap H;
  for (const GraphNode &Node : Nodes)
    H.insert(Node.Id, Val::node(false, Node.Left, Node.Right));
  assert(isGraphHeap(H) && "successors must stay within the graph");
  return H;
}

Heap fcsl::figure2Graph() {
  Ptr A(1), B(2), C(3), D(4), E(5);
  return buildGraph({GraphNode{A, B, C}, GraphNode{B, D, E},
                     GraphNode{C, E, C}, GraphNode{D, Ptr::null(),
                                                   Ptr::null()},
                     GraphNode{E, Ptr::null(), Ptr::null()}});
}

std::string fcsl::figure2NodeName(Ptr P) {
  assert(P.id() >= 1 && P.id() <= 5 && "not a Figure 2 node");
  return std::string(1, static_cast<char>('a' + P.id() - 1));
}

Heap fcsl::randomGraph(unsigned NumNodes, Rng &R, bool ConnectedFromRoot) {
  assert(NumNodes >= 1 && "graphs have at least one node");
  auto PickTarget = [&]() -> Ptr {
    // Roughly one in three successors is null.
    if (R.chance(1, 3))
      return Ptr::null();
    return Ptr(static_cast<uint32_t>(R.nextBelow(NumNodes) + 1));
  };

  std::vector<GraphNode> Nodes;
  Nodes.reserve(NumNodes);
  for (unsigned I = 1; I <= NumNodes; ++I)
    Nodes.push_back(GraphNode{Ptr(I), PickTarget(), PickTarget()});
  Heap G = buildGraph(Nodes);

  if (!ConnectedFromRoot)
    return G;

  // Graft unreachable nodes onto reachable ones until connected.
  Ptr Root(1);
  while (!isConnectedFrom(G, Root)) {
    PtrSet Seen = reachableFrom(G, Root);
    Ptr Stray;
    for (const auto &Cell : G)
      if (!Seen.count(Cell.first)) {
        Stray = Cell.first;
        break;
      }
    assert(!Stray.isNull());
    // Attach via a random reachable host with a free (or sacrificial) slot.
    std::vector<Ptr> Hosts(Seen.begin(), Seen.end());
    Ptr Host = Hosts[R.nextBelow(Hosts.size())];
    NodeCell Cell = G.lookup(Host).getNode();
    if (Cell.Left.isNull() || R.chance(1, 2))
      Cell.Left = Stray;
    else
      Cell.Right = Stray;
    G.update(Host, Val::node(Cell.Marked, Cell.Left, Cell.Right));
  }
  return G;
}
