//===- cache/Store.h - Content-addressed obligation verdict store -*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent obligation cache (DESIGN.md §13): a content-addressed
/// store mapping ObligationKey — the fingerprint of everything a proof
/// unit's verdict depends on — to the verdict, its check counts, and the
/// engine counters of the discharging run. Re-verifying a corpus after a
/// small edit then only re-discharges obligations whose inputs changed;
/// everything else is served from the store in microseconds.
///
/// The on-disk format is an append-only log written through the versioned
/// binary codec: the codec header (magic + version), a cache-record format
/// version, then one length-prefixed record v1 per appended verdict.
/// Decoding is fail-soft end to end — a truncated tail, a corrupt frame,
/// or a header from another codec version degrades to cache *misses*,
/// never to a wrong verdict. Appends go through O_APPEND-style semantics
/// (open in append mode, one fwrite per record), so concurrent writers
/// at worst produce a torn tail that the next load drops.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CACHE_STORE_H
#define FCSL_CACHE_STORE_H

#include "prog/Engine.h"
#include "support/Codec.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace fcsl {
namespace cache {

/// The canonical address of one proof obligation: `Content` fingerprints
/// the obligation's inputs (program, spec, instances, concurroid, kind,
/// bounds — computed from the interned arenas' canonical encodings, not
/// from session names or registration order), and `Flags` fingerprints the
/// engine-relevant process flags (resolved PorMode/SymMode). A verdict
/// recorded under one key never answers a query under another: a
/// `--por=dynamic` verdict cannot serve a `--por=off` run.
struct ObligationKey {
  uint64_t Content = 0;
  uint64_t Flags = 0;

  friend bool operator==(const ObligationKey &A, const ObligationKey &B) {
    return A.Content == B.Content && A.Flags == B.Flags;
  }
  friend bool operator!=(const ObligationKey &A, const ObligationKey &B) {
    return !(A == B);
  }
  friend bool operator<(const ObligationKey &A, const ObligationKey &B) {
    if (A.Content != B.Content)
      return A.Content < B.Content;
    return A.Flags < B.Flags;
  }
};

/// Bump when the record layout changes; old logs then load as all-miss.
constexpr uint32_t CacheRecordVersion = 1;

/// One cached verdict: everything needed to replay the obligation's
/// contribution to a session report (and `--stats`) without re-running it.
struct CacheRecord {
  ObligationKey Key;
  bool Passed = true;
  uint64_t Checks = 0;          ///< ObligationResult::Checks, bit-exact.
  EngineCounters Counters;      ///< engine counters of the cold discharge.
  uint64_t ElapsedUs = 0;       ///< cold discharge time, for stats.
  std::string Note;             ///< failure note when !Passed.

  friend bool operator==(const CacheRecord &A, const CacheRecord &B) {
    return A.Key == B.Key && A.Passed == B.Passed && A.Checks == B.Checks &&
           A.Counters == B.Counters && A.ElapsedUs == B.ElapsedUs &&
           A.Note == B.Note;
  }
};

/// Codec entry points for one record (no header, no length prefix — the
/// store and the wire layer add their own framing). Decode is fail-soft:
/// check `D.failed()` before trusting the result.
void encode(Encoder &E, const CacheRecord &R);
CacheRecord decodeCacheRecord(Decoder &D);

/// How sessions consult the store (`fcsl-verify --cache=...`).
enum class CacheMode : uint8_t {
  Default, ///< use the process default (setDefaultCacheMode / FCSL_CACHE).
  Off,     ///< no store: every obligation is discharged.
  Rw,      ///< serve hits, discharge misses, append their verdicts.
  Ro,      ///< serve hits, discharge misses, never write.
  Check,   ///< discharge everything; any hit whose stored verdict or
           ///< counts diverge from the fresh run fails loudly (the same
           ///< oracle pattern as --por=check). Misses are appended.
};

/// The persistent store: an append-only log file plus an in-memory index.
///
/// Hardened for multi-session daemon use (DESIGN.md §15): the log is held
/// as an `O_APPEND` file descriptor and every record goes out as ONE
/// `write(2)` of the complete frame (length prefix + body), so the kernel
/// serializes concurrent appends at the file offset — records from
/// different writers may interleave, but never tear. In-process, a striped
/// per-path mutex additionally serializes appends from distinct Store
/// objects sharing one log (the per-object mutex cannot see them).
class Store {
public:
  ~Store();

  /// Opens (and with \p Writable, creates) the log at \p Path, loading
  /// every decodable record into the index. Returns false when the file
  /// cannot be opened for the requested access; a corrupt or stale log is
  /// NOT an error — decoding stops at the first bad frame and the rest of
  /// the file is ignored (all-miss).
  bool open(const std::string &Path, bool Writable);

  /// The record under \p Key, or nullptr (a miss).
  const CacheRecord *lookup(const ObligationKey &Key) const;

  /// True when some record shares \p Content under *any* flags fingerprint
  /// — a miss with this true is "stale by flag", not a content change.
  bool hasContent(uint64_t Content) const;

  /// Indexes \p R and, when writable, appends it to the log. A key already
  /// present is left untouched (first verdict wins; identical by
  /// construction unless the corpus is non-deterministic).
  void append(const CacheRecord &R);

  /// Merges a batch of records (e.g. a CacheDelta from a shard fleet);
  /// returns how many were new to this store.
  size_t merge(const std::vector<CacheRecord> &Records);

  /// Records appended or merged into this store since the last drain —
  /// the payload a worker ships to its coordinator as a CacheDelta.
  std::vector<CacheRecord> drainPending();

  size_t records() const;
  uint64_t fileBytes() const; ///< current size of the log file (0 if none).
  const std::string &path() const { return Path; }

private:
  void appendLocked(const CacheRecord &R, bool TrackPending);
  void writeRecord(const CacheRecord &R);

  mutable std::mutex M;
  std::string Path;
  int OutFd = -1; ///< O_APPEND log descriptor when writable.
  std::map<ObligationKey, CacheRecord> Index;
  std::set<uint64_t> Contents; ///< every indexed Content fingerprint.
  std::vector<CacheRecord> Pending;
};

/// Sets the process-default CacheMode used when a session runs (exposed as
/// `fcsl-verify --cache=off|rw|ro|check`).
void setDefaultCacheMode(CacheMode M);

/// The process-default CacheMode: the last setDefaultCacheMode value, else
/// the `FCSL_CACHE` environment variable ("off"/"rw"/"ro"/"check"), else
/// Off.
CacheMode defaultCacheMode();

/// Parses a mode spelling; returns false (leaving \p Out untouched) on an
/// unknown value. Shared by the tool's flag parser and the env fallback so
/// both reject the same spellings.
bool parseCacheMode(const char *Text, CacheMode &Out);

/// Renders a mode as its flag spelling.
const char *cacheModeName(CacheMode M);

/// Overrides the store directory (else `FCSL_CACHE_DIR`, else
/// ".fcsl-cache" under the current directory). Empty string clears the
/// override. Takes effect at the next activeStore() after a reset.
void setCacheDir(std::string Dir);
std::string cacheDir();

/// The lazily-opened process store for cacheDir(), or nullptr when the
/// default mode is Off or the log cannot be opened (fail-soft: the session
/// then just discharges everything). Ro mode opens read-only.
Store *activeStore();

/// The already-resolved process store regardless of the current default
/// cache mode, or nullptr when no store has been opened yet. The service
/// daemon uses this for its warm fast path: workers flip the process mode
/// per request, but an open store stays valid until resetActiveStore().
Store *resolvedStore();

/// Closes the process store so the next activeStore() reopens it — used by
/// tests that switch directories or corrupt the log on disk.
void resetActiveStore();

/// Process-wide cache counters over every session run so far (reported by
/// `fcsl-verify --stats`).
struct CacheStats {
  uint64_t Hits = 0;           ///< obligations served from the store.
  uint64_t Misses = 0;         ///< keyed obligations not found.
  uint64_t StaleFlags = 0;     ///< misses whose content was present under
                               ///< different engine flags.
  uint64_t Stores = 0;         ///< records appended after a cold discharge.
  uint64_t CheckRuns = 0;      ///< hits re-discharged under --cache=check.
  uint64_t Divergences = 0;    ///< check re-runs that contradicted the store.
  uint64_t Unkeyed = 0;        ///< obligations with no content key (never
                               ///< cached).
  uint64_t ReplayedChecks = 0; ///< elementary checks replayed from records.
  uint64_t ReplayedConfigs = 0;///< engine configs replayed from records.
  uint64_t ReplayedUs = 0;     ///< cold wall-clock the hits avoided.
};
CacheStats cacheStats();

/// Internal: accumulate into the process-wide counters (Session::run).
void accumulateCacheStats(const CacheStats &Delta);

} // namespace cache
} // namespace fcsl

#endif // FCSL_CACHE_STORE_H
