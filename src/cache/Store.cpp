//===- cache/Store.cpp - Content-addressed obligation verdict store -------===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "cache/Store.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <functional>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace fcsl {
namespace cache {

//===----------------------------------------------------------------------===//
// Record codec
//===----------------------------------------------------------------------===//

void encode(Encoder &E, const CacheRecord &R) {
  E.u64(R.Key.Content);
  E.u64(R.Key.Flags);
  E.u8(R.Passed ? 1 : 0);
  E.u64(R.Checks);
  E.u64(R.Counters.Configs);
  E.u64(R.Counters.ActionSteps);
  E.u64(R.Counters.EnvSteps);
  E.u64(R.Counters.Terminals);
  E.u64(R.Counters.DedupHits);
  E.u64(R.ElapsedUs);
  E.str(R.Note);
}

CacheRecord decodeCacheRecord(Decoder &D) {
  CacheRecord R;
  R.Key.Content = D.u64();
  R.Key.Flags = D.u64();
  uint8_t Passed = D.u8();
  if (Passed > 1)
    D.fail();
  R.Passed = Passed == 1;
  R.Checks = D.u64();
  R.Counters.Configs = D.u64();
  R.Counters.ActionSteps = D.u64();
  R.Counters.EnvSteps = D.u64();
  R.Counters.Terminals = D.u64();
  R.Counters.DedupHits = D.u64();
  R.ElapsedUs = D.u64();
  R.Note = D.str();
  return R;
}

//===----------------------------------------------------------------------===//
// Store
//===----------------------------------------------------------------------===//

namespace {

/// Striped per-path append locks: distinct Store objects (daemon sessions,
/// tests) sharing one log file serialize their appends here — the
/// per-object mutex cannot see across objects, and interleaved buffered
/// writes would tear records. Stripes bound the table; a cross-path
/// collision costs only contention, never correctness.
std::mutex &pathStripe(const std::string &Path) {
  static std::mutex Stripes[16];
  return Stripes[std::hash<std::string>{}(Path) % 16];
}

/// One full write(2) of \p Buf, retrying EINTR. With O_APPEND the kernel
/// picks the offset atomically per call, so a complete single write never
/// interleaves with another appender's.
bool writeAll(int Fd, const std::vector<uint8_t> &Buf) {
  size_t Done = 0;
  while (Done != Buf.size()) {
    ssize_t N = ::write(Fd, Buf.data() + Done, Buf.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Store::~Store() {
  std::lock_guard<std::mutex> Lock(M);
  if (OutFd >= 0) {
    ::close(OutFd);
    OutFd = -1;
  }
}

bool Store::open(const std::string &LogPath, bool Writable) {
  std::lock_guard<std::mutex> Lock(M);
  Path = LogPath;
  Index.clear();
  Contents.clear();
  Pending.clear();
  if (OutFd >= 0) {
    ::close(OutFd);
    OutFd = -1;
  }

  // Load whatever is decodable. A missing file is an empty store (fine
  // when writable — the log is created below); any malformed frame stops
  // the load and the tail is ignored.
  std::vector<uint8_t> Bytes;
  bool Existed = false;
  if (std::FILE *In = std::fopen(LogPath.c_str(), "rb")) {
    Existed = true;
    uint8_t Chunk[1 << 16];
    size_t N;
    while ((N = std::fread(Chunk, 1, sizeof Chunk, In)) > 0)
      Bytes.insert(Bytes.end(), Chunk, Chunk + N);
    std::fclose(In);
  }

  // Clean means every byte of the file decoded: appending more frames
  // after the existing tail keeps the log well-formed. A foreign header,
  // stale version, or torn tail forces a rewrite (below, when writable)
  // so future appends stay readable.
  bool Clean = false;
  if (!Bytes.empty()) {
    Decoder D(Bytes);
    if (decodeHeader(D) && D.u32() == CacheRecordVersion && !D.failed()) {
      Clean = true;
      while (!D.atEnd()) {
        uint32_t Len = D.u32();
        if (D.failed() || Len > D.remaining()) {
          Clean = false; // torn tail: keep what loaded so far.
          break;
        }
        Decoder Frame(Bytes.data() + (Bytes.size() - D.remaining()), Len);
        CacheRecord R = decodeCacheRecord(Frame);
        if (Frame.failed() || !Frame.atEnd()) {
          Clean = false;
          break;
        }
        // Advance past the frame body.
        for (uint32_t I = 0; I != Len; ++I)
          D.u8();
        Index.emplace(R.Key, std::move(R));
      }
    }
  }
  for (const auto &KV : Index)
    Contents.insert(KV.first.Content);

  if (!Writable)
    return Existed;

  // All writes below go through the O_APPEND descriptor: one write(2)
  // per frame, serialized per path (in-process) by the stripe lock and
  // (cross-writer) by the kernel's atomic append offset.
  std::lock_guard<std::mutex> PathLock(pathStripe(LogPath));
  if (!Existed || !Clean) {
    // Fresh, foreign, or torn log: rewrite it with the records that
    // survived (none, for a foreign header) so the file is well-formed.
    OutFd = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                   0666);
    if (OutFd < 0)
      return false;
    Encoder E;
    encodeHeader(E);
    E.u32(CacheRecordVersion);
    if (!writeAll(OutFd, E.buffer()))
      return false;
    for (const auto &KV : Index)
      writeRecord(KV.second);
    return true;
  }
  OutFd = ::open(LogPath.c_str(), O_WRONLY | O_APPEND);
  return OutFd >= 0;
}

const CacheRecord *Store::lookup(const ObligationKey &Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Index.find(Key);
  return It == Index.end() ? nullptr : &It->second;
}

bool Store::hasContent(uint64_t Content) const {
  std::lock_guard<std::mutex> Lock(M);
  return Contents.count(Content) != 0;
}

void Store::append(const CacheRecord &R) {
  std::lock_guard<std::mutex> Lock(M);
  appendLocked(R, /*TrackPending=*/true);
}

size_t Store::merge(const std::vector<CacheRecord> &Records) {
  std::lock_guard<std::mutex> Lock(M);
  size_t Fresh = 0;
  for (const CacheRecord &R : Records) {
    if (Index.count(R.Key))
      continue;
    appendLocked(R, /*TrackPending=*/true);
    ++Fresh;
  }
  return Fresh;
}

std::vector<CacheRecord> Store::drainPending() {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<CacheRecord> Out;
  Out.swap(Pending);
  return Out;
}

size_t Store::records() const {
  std::lock_guard<std::mutex> Lock(M);
  return Index.size();
}

uint64_t Store::fileBytes() const {
  std::lock_guard<std::mutex> Lock(M);
  if (Path.empty())
    return 0;
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return static_cast<uint64_t>(St.st_size);
}

void Store::appendLocked(const CacheRecord &R, bool TrackPending) {
  auto Ins = Index.emplace(R.Key, R);
  if (!Ins.second)
    return; // first verdict wins.
  Contents.insert(R.Key.Content);
  if (TrackPending)
    Pending.push_back(R);
  if (OutFd >= 0) {
    std::lock_guard<std::mutex> PathLock(pathStripe(Path));
    writeRecord(R);
  }
}

void Store::writeRecord(const CacheRecord &R) {
  // The complete frame — length prefix AND body — in one buffer, shipped
  // as one write(2): concurrent appenders on the same O_APPEND log can
  // interleave whole records but never tear one.
  Encoder Body;
  encode(Body, R);
  Encoder Frame;
  Frame.u32(static_cast<uint32_t>(Body.buffer().size()));
  Frame.raw(Body.buffer());
  writeAll(OutFd, Frame.buffer());
}

//===----------------------------------------------------------------------===//
// Process defaults and the active store
//===----------------------------------------------------------------------===//

namespace {

std::mutex GlobalMutex;
CacheMode DefaultMode = CacheMode::Default; // Default = "not set yet".
std::string DirOverride;
std::unique_ptr<Store> Active;
bool ActiveResolved = false;
CacheStats GlobalStats;

} // namespace

void setDefaultCacheMode(CacheMode Mode) {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  DefaultMode = Mode;
}

CacheMode defaultCacheMode() {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  if (DefaultMode != CacheMode::Default)
    return DefaultMode;
  if (const char *Env = std::getenv("FCSL_CACHE")) {
    CacheMode M;
    if (parseCacheMode(Env, M) && M != CacheMode::Default)
      return M;
  }
  return CacheMode::Off;
}

bool parseCacheMode(const char *Text, CacheMode &OutMode) {
  if (!Text)
    return false;
  if (std::strcmp(Text, "off") == 0)
    OutMode = CacheMode::Off;
  else if (std::strcmp(Text, "rw") == 0)
    OutMode = CacheMode::Rw;
  else if (std::strcmp(Text, "ro") == 0)
    OutMode = CacheMode::Ro;
  else if (std::strcmp(Text, "check") == 0)
    OutMode = CacheMode::Check;
  else
    return false;
  return true;
}

const char *cacheModeName(CacheMode M) {
  switch (M) {
  case CacheMode::Default:
    return "default";
  case CacheMode::Off:
    return "off";
  case CacheMode::Rw:
    return "rw";
  case CacheMode::Ro:
    return "ro";
  case CacheMode::Check:
    return "check";
  }
  return "?";
}

void setCacheDir(std::string Dir) {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  DirOverride = std::move(Dir);
}

std::string cacheDir() {
  {
    std::lock_guard<std::mutex> Lock(GlobalMutex);
    if (!DirOverride.empty())
      return DirOverride;
  }
  if (const char *Env = std::getenv("FCSL_CACHE_DIR"))
    if (*Env)
      return Env;
  return ".fcsl-cache";
}

Store *activeStore() {
  CacheMode Mode = defaultCacheMode();
  if (Mode == CacheMode::Off || Mode == CacheMode::Default)
    return nullptr;
  std::string Dir = cacheDir();
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  if (ActiveResolved)
    return Active.get();
  ActiveResolved = true;
  bool Writable = Mode != CacheMode::Ro;
  if (Writable)
    ::mkdir(Dir.c_str(), 0777); // best-effort; open() reports failure.
  auto S = std::make_unique<Store>();
  if (!S->open(Dir + "/obligations.fcslcache", Writable))
    return nullptr; // fail-soft: session discharges everything.
  Active = std::move(S);
  return Active.get();
}

Store *resolvedStore() {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  return ActiveResolved ? Active.get() : nullptr;
}

void resetActiveStore() {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  Active.reset();
  ActiveResolved = false;
}

CacheStats cacheStats() {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  return GlobalStats;
}

void accumulateCacheStats(const CacheStats &Delta) {
  std::lock_guard<std::mutex> Lock(GlobalMutex);
  GlobalStats.Hits += Delta.Hits;
  GlobalStats.Misses += Delta.Misses;
  GlobalStats.StaleFlags += Delta.StaleFlags;
  GlobalStats.Stores += Delta.Stores;
  GlobalStats.CheckRuns += Delta.CheckRuns;
  GlobalStats.Divergences += Delta.Divergences;
  GlobalStats.Unkeyed += Delta.Unkeyed;
  GlobalStats.ReplayedChecks += Delta.ReplayedChecks;
  GlobalStats.ReplayedConfigs += Delta.ReplayedConfigs;
  GlobalStats.ReplayedUs += Delta.ReplayedUs;
}

} // namespace cache
} // namespace fcsl
