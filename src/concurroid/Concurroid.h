//===- concurroid/Concurroid.h - Concurrency protocols as STSs --*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurroids: the paper's state-transition systems describing custom
/// resource protocols (Section 2.2.1). A concurroid packages
///
///  - the labels it owns, with the PCM carrier of their self/other
///    components,
///  - a *coherence predicate* delimiting its state space (Section 3.3's
///    `coh`), and
///  - its transitions (plus the implicit idle transition).
///
/// The same object serves three purposes: the protocol that the verifier
/// uses to generate environment interference; the target that atomic
/// actions must correspond to; and a node of the library-dependency graph
/// from which Table 2 and Figure 5 are regenerated.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_CONCURROID_H
#define FCSL_CONCURROID_CONCURROID_H

#include "concurroid/Transition.h"

#include <memory>

namespace fcsl {

class Concurroid;
using ConcurroidRef = std::shared_ptr<const Concurroid>;

/// One labelled slice owned by a concurroid.
struct OwnedLabel {
  Label L;
  std::string Name;    ///< e.g. "sp", "pv", "lk".
  PCMTypeRef SelfType; ///< carrier of the self/other components.
};

/// An FCSL concurroid.
class Concurroid {
public:
  using CohFn = std::function<bool(const View &)>;

  Concurroid(std::string Name, std::vector<OwnedLabel> Labels, CohFn Coh);

  const std::string &name() const { return Name; }
  const std::vector<OwnedLabel> &ownedLabels() const { return Labels; }

  /// Process-stable content fingerprint: the name, every owned label (id,
  /// name, and the canonical codec encoding of its carrier type), and
  /// every registered transition's name and kind. The coherence predicate
  /// and transition step functions are opaque closures and contribute
  /// presence only — an obligation whose verdict depends on their *logic*
  /// must carry a revision tag (see ObligationInputs::rev).
  uint64_t fingerprint() const;

  /// Returns the owned label ids.
  std::vector<Label> labelIds() const;

  /// Looks up an owned label's metadata; asserts it is owned.
  const OwnedLabel &ownedLabel(Label L) const;

  /// The coherence predicate over full views.
  bool coherent(const View &S) const { return Coh(S); }

  /// Registers a transition (builder-style, before freezing behind a
  /// ConcurroidRef).
  void addTransition(Transition T);

  const std::vector<Transition> &transitions() const { return Transitions; }

  /// All environment-interference successors of \p S: for every
  /// env-enabled transition, the post-views of the *inverted* view (the
  /// environment plays self). Results are re-inverted back to the observing
  /// thread's perspective and filtered for coherence.
  std::vector<View> envSuccessors(const View &S) const;

  /// True if (Pre, Post) is covered by some transition (including idle).
  bool someTransitionCovers(const View &Pre, const View &Post) const;

  /// Swaps the self/other components at every owned label: reading the
  /// state from the environment's side.
  View invert(const View &S) const;

private:
  std::string Name;
  std::vector<OwnedLabel> Labels;
  CohFn Coh;
  std::vector<Transition> Transitions;
};

/// Convenience builder returning a mutable concurroid to populate.
std::shared_ptr<Concurroid> makeConcurroid(std::string Name,
                                           std::vector<OwnedLabel> Labels,
                                           Concurroid::CohFn Coh);

} // namespace fcsl

#endif // FCSL_CONCURROID_CONCURROID_H
