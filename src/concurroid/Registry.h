//===- concurroid/Registry.h - Library/concurroid registry ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of verified libraries: which primitive concurroids each one
/// employs (regenerating the paper's Table 2, including the `3L` marks for
/// concurroids reached through the abstract lock interface) and which other
/// libraries it builds on (regenerating Figure 5's dependency diagram).
/// Populated by the case-study constructors in src/structures, never by
/// static initializers.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_REGISTRY_H
#define FCSL_CONCURROID_REGISTRY_H

#include "support/Dot.h"

#include <string>
#include <vector>

namespace fcsl {

/// How a library employs a primitive concurroid.
struct ConcurroidUse {
  std::string Concurroid; ///< e.g. "Priv", "CLock", "Treiber".
  bool ViaLockInterface;  ///< the paper's "3L": reached through the
                          ///< abstract lock interface, so either lock
                          ///< concurroid is interchangeable here.
};

/// One verified library.
struct LibraryInfo {
  std::string Name;
  std::vector<ConcurroidUse> Uses;
  std::vector<std::string> DependsOn; ///< other libraries (Figure 5 edges).
};

/// The registry. Rows keep registration order so reports match the paper's
/// table ordering.
class Registry {
public:
  /// Registers or replaces (by name) a library entry.
  void registerLibrary(LibraryInfo Info);

  const std::vector<LibraryInfo> &libraries() const { return Libraries; }

  /// Column headings of Table 2, in first-use order.
  std::vector<std::string> concurroidColumns() const;

  /// Renders Table 2 ("3" / "3L" marks per cell).
  std::string renderTable2() const;

  /// Builds Figure 5's dependency digraph (edges point from a library to
  /// the libraries it depends on, drawn bottom-up like the paper).
  DotGraph dependencyGraph() const;

private:
  std::vector<LibraryInfo> Libraries;
};

/// The process-wide registry (function-local static; no global ctors).
Registry &globalRegistry();

} // namespace fcsl

#endif // FCSL_CONCURROID_REGISTRY_H
