//===- concurroid/Priv.h - Thread-local state concurroid --------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic `Priv pv` concurroid of Section 3.5: thread-local heaps. Its
/// self/other components live in the PCM of heaps; the joint component is
/// empty. A thread may freely mutate, allocate into and deallocate from its
/// own private heap (covered by the `priv_local` transition), while nobody
/// can touch another thread's private heap — so `Priv` generates no
/// environment interference on the observing thread's assertions.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_PRIV_H
#define FCSL_CONCURROID_PRIV_H

#include "concurroid/Concurroid.h"

namespace fcsl {

/// Builds the Priv concurroid instance at label \p Pv.
ConcurroidRef makePriv(Label Pv);

/// The paper's `pv_self` getter: the observing thread's private heap.
const Heap &pvSelfHeap(const View &S, Label Pv);

} // namespace fcsl

#endif // FCSL_CONCURROID_PRIV_H
