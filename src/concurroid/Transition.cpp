//===- concurroid/Transition.cpp - Concurroid transitions ------------------===//
//
// Part of fcsl-cpp. See Transition.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Transition.h"

#include <cassert>

using namespace fcsl;

Transition::Transition(std::string Name, TransitionKind Kind,
                       StepFn Enumerate, CoverFn Covers, bool EnvEnabled)
    : Name(std::move(Name)), Kind(Kind), Enumerate(std::move(Enumerate)),
      Covers(std::move(Covers)), EnvEnabled(EnvEnabled) {
  assert((this->Enumerate || this->Covers) &&
         "a transition needs an enumerator or a coverage predicate");
}

Transition &Transition::withFootprint(Footprint Static, FootprintFn Dyn) {
  StaticFp = std::move(Static);
  DynFp = std::move(Dyn);
  return *this;
}

Transition Transition::idle() {
  return Transition(
      "idle", TransitionKind::Internal,
      [](const View &Pre) { return std::vector<View>{Pre}; },
      [](const View &Pre, const View &Post) { return Pre == Post; });
}

std::vector<View> Transition::successors(const View &Pre) const {
  if (!Enumerate)
    return {};
  return Enumerate(Pre);
}

bool Transition::covers(const View &Pre, const View &Post) const {
  if (Covers)
    return Covers(Pre, Post);
  for (const View &Succ : successors(Pre))
    if (Succ == Post)
      return true;
  return false;
}
