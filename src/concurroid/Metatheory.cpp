//===- concurroid/Metatheory.cpp - Concurroid well-formedness --------------===//
//
// Part of fcsl-cpp. See Metatheory.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Metatheory.h"

#include "support/Format.h"

using namespace fcsl;

void MetaReport::absorb(const MetaReport &Other) {
  ChecksRun += Other.ChecksRun;
  if (Passed && !Other.Passed) {
    Passed = false;
    CounterExample = Other.CounterExample;
  }
}

MetaReport
fcsl::checkTransitionsPreserveCoherence(const Concurroid &C,
                                        const std::vector<View> &Sample) {
  MetaReport Report;
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const Transition &T : C.transitions()) {
      for (const View &Post : T.successors(Pre)) {
        ++Report.ChecksRun;
        if (!C.coherent(Post)) {
          Report.Passed = false;
          Report.CounterExample = formatString(
              "transition %s breaks coherence from state:\n%s",
              T.name().c_str(), Pre.toString().c_str());
          return Report;
        }
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkOtherFixity(const Concurroid &C,
                                  const std::vector<View> &Sample) {
  MetaReport Report;
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const Transition &T : C.transitions()) {
      for (const View &Post : T.successors(Pre)) {
        for (Label L : Pre.labels()) {
          ++Report.ChecksRun;
          if (!(Pre.other(L) == Post.other(L))) {
            Report.Passed = false;
            Report.CounterExample = formatString(
                "transition %s changes the other component at label %u",
                T.name().c_str(), L);
            return Report;
          }
        }
      }
    }
  }
  return Report;
}

MetaReport
fcsl::checkFootprintPreservation(const Concurroid &C,
                                 const std::vector<View> &Sample) {
  MetaReport Report;
  for (const View &Pre : Sample) {
    if (!C.coherent(Pre))
      continue;
    for (const Transition &T : C.transitions()) {
      if (T.kind() != TransitionKind::Internal)
        continue;
      for (const View &Post : T.successors(Pre)) {
        for (Label L : Pre.labels()) {
          ++Report.ChecksRun;
          if (Pre.joint(L).domain() != Post.joint(L).domain()) {
            Report.Passed = false;
            Report.CounterExample = formatString(
                "internal transition %s changes the joint footprint at "
                "label %u",
                T.name().c_str(), L);
            return Report;
          }
        }
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkForkJoinClosure(const Concurroid &C,
                                      const std::vector<View> &Sample,
                                      size_t SplitLimit) {
  MetaReport Report;
  for (const View &S : Sample) {
    if (!C.coherent(S))
      continue;
    for (const OwnedLabel &Owned : C.ownedLabels()) {
      if (!S.hasLabel(Owned.L))
        continue;
      // Move each sub-element of self into other ...
      for (const PCMVal &Delta :
           enumerateSubElements(S.self(Owned.L), SplitLimit)) {
        View Realigned = S;
        if (!Realigned.realignSelfToOther(Owned.L, Delta))
          continue;
        ++Report.ChecksRun;
        if (!C.coherent(Realigned)) {
          Report.Passed = false;
          Report.CounterExample = formatString(
              "coherence not closed under moving %s from self to other at "
              "label %u",
              Delta.toString().c_str(), Owned.L);
          return Report;
        }
      }
      // ... and each sub-element of other into self (the join direction).
      for (const PCMVal &Delta :
           enumerateSubElements(S.other(Owned.L), SplitLimit)) {
        View Inverted = C.invert(S);
        if (!Inverted.realignSelfToOther(Owned.L, Delta))
          continue;
        View Realigned = C.invert(Inverted);
        ++Report.ChecksRun;
        if (!C.coherent(Realigned)) {
          Report.Passed = false;
          Report.CounterExample = formatString(
              "coherence not closed under moving %s from other to self at "
              "label %u",
              Delta.toString().c_str(), Owned.L);
          return Report;
        }
      }
    }
  }
  return Report;
}

MetaReport fcsl::checkConcurroidWellFormed(const Concurroid &C,
                                           const std::vector<View> &Sample) {
  MetaReport Report;
  Report.absorb(checkTransitionsPreserveCoherence(C, Sample));
  Report.absorb(checkOtherFixity(C, Sample));
  Report.absorb(checkFootprintPreservation(C, Sample));
  Report.absorb(checkForkJoinClosure(C, Sample));
  return Report;
}
