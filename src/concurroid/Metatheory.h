//===- concurroid/Metatheory.h - Concurroid well-formedness -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FCSL metatheory requires every concurroid's coherence predicate and
/// transitions to satisfy several properties (Sections 3.3-3.4):
///
///  - the state space is closed under fork-join realignment of self/other,
///  - transitions preserve coherence,
///  - transitions preserve the other component,
///  - internal transitions preserve the heap footprint of the joint state.
///
/// In Coq these are proof obligations discharged once per concurroid; here
/// they are decision procedures over a finite sample of coherent views,
/// executed by the verification session. A failed report carries a
/// counterexample description.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_METATHEORY_H
#define FCSL_CONCURROID_METATHEORY_H

#include "concurroid/Concurroid.h"

namespace fcsl {

/// Outcome of one metatheory obligation.
struct MetaReport {
  bool Passed = true;
  uint64_t ChecksRun = 0;
  std::string CounterExample; ///< empty when Passed.

  /// Conjoins another report into this one.
  void absorb(const MetaReport &Other);
};

/// Every transition applied to every coherent sample view yields only
/// coherent views.
MetaReport checkTransitionsPreserveCoherence(const Concurroid &C,
                                             const std::vector<View> &Sample);

/// No transition changes the observing thread's other component.
MetaReport checkOtherFixity(const Concurroid &C,
                            const std::vector<View> &Sample);

/// Internal transitions neither allocate nor deallocate joint heap cells
/// (ownership exchange is the business of acquire/release connectors).
MetaReport checkFootprintPreservation(const Concurroid &C,
                                      const std::vector<View> &Sample);

/// The state space is closed under realigning self/other: for every sample
/// view and every way of moving a sub-element of self into other (and the
/// converse), the result stays coherent. \p SplitLimit caps the number of
/// sub-elements tried per label.
MetaReport checkForkJoinClosure(const Concurroid &C,
                                const std::vector<View> &Sample,
                                size_t SplitLimit = 64);

/// Runs all of the above.
MetaReport checkConcurroidWellFormed(const Concurroid &C,
                                     const std::vector<View> &Sample);

} // namespace fcsl

#endif // FCSL_CONCURROID_METATHEORY_H
