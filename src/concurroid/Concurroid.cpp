//===- concurroid/Concurroid.cpp - Concurrency protocols as STSs -----------===//
//
// Part of fcsl-cpp. See Concurroid.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Concurroid.h"

#include "support/Codec.h"
#include "support/Intern.h"

#include <cassert>

using namespace fcsl;

uint64_t Concurroid::fingerprint() const {
  uint64_t Fp = fpString("fcsl-concurroid");
  Fp = fpCombine(Fp, fpString(Name));
  Fp = fpCombine(Fp, Labels.size());
  for (const OwnedLabel &Owned : Labels) {
    Fp = fpCombine(Fp, Owned.L);
    Fp = fpCombine(Fp, fpString(Owned.Name));
    Encoder E;
    encode(E, Owned.SelfType);
    Fp = fpCombine(Fp, fpBytes(E.buffer().data(), E.buffer().size()));
  }
  Fp = fpCombine(Fp, Transitions.size());
  for (const Transition &T : Transitions) {
    Fp = fpCombine(Fp, fpString(T.name()));
    Fp = fpCombine(Fp, static_cast<uint64_t>(T.kind()));
  }
  return Fp;
}

Concurroid::Concurroid(std::string Name, std::vector<OwnedLabel> Labels,
                       CohFn Coh)
    : Name(std::move(Name)), Labels(std::move(Labels)), Coh(std::move(Coh)) {
  assert(this->Coh && "concurroid needs a coherence predicate");
  Transitions.push_back(Transition::idle());
}

std::vector<Label> Concurroid::labelIds() const {
  std::vector<Label> Out;
  Out.reserve(Labels.size());
  for (const OwnedLabel &L : Labels)
    Out.push_back(L.L);
  return Out;
}

const OwnedLabel &Concurroid::ownedLabel(Label L) const {
  for (const OwnedLabel &Owned : Labels)
    if (Owned.L == L)
      return Owned;
  assert(false && "label not owned by this concurroid");
  return Labels.front();
}

void Concurroid::addTransition(Transition T) {
  Transitions.push_back(std::move(T));
}

View Concurroid::invert(const View &S) const {
  View Out = S;
  for (const OwnedLabel &Owned : Labels) {
    if (!Out.hasLabel(Owned.L))
      continue;
    LabelSlice &Slice = Out.sliceMut(Owned.L);
    std::swap(Slice.Self, Slice.Other);
  }
  return Out;
}

std::vector<View> Concurroid::envSuccessors(const View &S) const {
  std::vector<View> Out;
  View Inverted = invert(S);
  for (const Transition &T : Transitions) {
    if (!T.isEnvEnabled() || T.name() == "idle")
      continue;
    for (const View &Post : T.successors(Inverted)) {
      View Back = invert(Post);
      if (coherent(Back))
        Out.push_back(std::move(Back));
    }
  }
  return Out;
}

bool Concurroid::someTransitionCovers(const View &Pre,
                                      const View &Post) const {
  for (const Transition &T : Transitions)
    if (T.covers(Pre, Post))
      return true;
  return false;
}

std::shared_ptr<Concurroid> fcsl::makeConcurroid(std::string Name,
                                                 std::vector<OwnedLabel>
                                                     Labels,
                                                 Concurroid::CohFn Coh) {
  return std::make_shared<Concurroid>(std::move(Name), std::move(Labels),
                                      std::move(Coh));
}
