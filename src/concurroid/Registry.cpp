//===- concurroid/Registry.cpp - Library/concurroid registry ---------------===//
//
// Part of fcsl-cpp. See Registry.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Registry.h"

#include "support/Format.h"

#include <algorithm>

using namespace fcsl;

void Registry::registerLibrary(LibraryInfo Info) {
  for (LibraryInfo &Existing : Libraries) {
    if (Existing.Name == Info.Name) {
      Existing = std::move(Info);
      return;
    }
  }
  Libraries.push_back(std::move(Info));
}

std::vector<std::string> Registry::concurroidColumns() const {
  std::vector<std::string> Columns;
  for (const LibraryInfo &Lib : Libraries)
    for (const ConcurroidUse &Use : Lib.Uses)
      if (std::find(Columns.begin(), Columns.end(), Use.Concurroid) ==
          Columns.end())
        Columns.push_back(Use.Concurroid);
  return Columns;
}

std::string Registry::renderTable2() const {
  std::vector<std::string> Columns = concurroidColumns();
  TextTable Table;
  std::vector<std::string> Header = {"Program"};
  Header.insert(Header.end(), Columns.begin(), Columns.end());
  Table.setHeader(std::move(Header));
  for (const LibraryInfo &Lib : Libraries) {
    // Interface-only nodes (e.g. "Abstract lock") appear in Figure 5 but
    // not in Table 2.
    if (Lib.Uses.empty())
      continue;
    std::vector<std::string> Row = {Lib.Name};
    for (const std::string &Column : Columns) {
      std::string Cell;
      for (const ConcurroidUse &Use : Lib.Uses)
        if (Use.Concurroid == Column)
          Cell = Use.ViaLockInterface ? "3L" : "3";
      Row.push_back(Cell);
    }
    Table.addRow(std::move(Row));
  }
  return Table.render();
}

DotGraph Registry::dependencyGraph() const {
  // Edges point from a dependency to its user, matching the paper's
  // Figure 5 (e.g. "CAS-lock -> Abstract lock -> CG increment").
  DotGraph G("library_dependencies");
  for (const LibraryInfo &Lib : Libraries) {
    G.addNode(Lib.Name);
    for (const std::string &Dep : Lib.DependsOn)
      G.addEdge(Dep, Lib.Name);
  }
  return G;
}

Registry &fcsl::globalRegistry() {
  static Registry R;
  return R;
}
