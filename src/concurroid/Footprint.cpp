//===- concurroid/Footprint.cpp - Step footprints for independence ---------===//
//
// Part of fcsl-cpp. See Footprint.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Footprint.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;

FpAtom FpAtom::selfAux(Label L) {
  FpAtom A;
  A.L = L;
  A.Comp = FpComp::SelfAux;
  return A;
}

FpAtom FpAtom::otherAux(Label L) {
  FpAtom A;
  A.L = L;
  A.Comp = FpComp::OtherAux;
  return A;
}

FpAtom FpAtom::joint(Label L, uint8_t Fields, FpRegion Region) {
  FpAtom A;
  A.L = L;
  A.Comp = FpComp::Joint;
  A.Fields = Fields;
  A.Region = Region;
  return A;
}

FpAtom FpAtom::jointCell(Label L, Ptr P, uint8_t Fields, FpRegion Region) {
  FpAtom A = joint(L, Fields, Region);
  A.AllCells = false;
  A.Cells.push_back(P);
  return A;
}

namespace {

/// Do the cell refinements of two joint atoms possibly intersect?
bool cellsIntersect(const FpAtom &A, const FpAtom &B) {
  if (A.AllCells || B.AllCells)
    return true;
  // Both sorted; walk in tandem.
  auto I = A.Cells.begin(), J = B.Cells.begin();
  while (I != A.Cells.end() && J != B.Cells.end()) {
    if (*I < *J)
      ++I;
    else if (*J < *I)
      ++J;
    else
      return true;
  }
  return false;
}

} // namespace

bool fcsl::fpAtomsClash(const FpAtom &A, const FpAtom &B, bool SameAgent) {
  if (A.L != B.L)
    return false; // Different labels: disjoint state components.

  bool AJoint = A.Comp == FpComp::Joint;
  bool BJoint = B.Comp == FpComp::Joint;
  if (AJoint != BJoint)
    return false; // Aux PCM values vs joint heap storage: disjoint.

  if (!AJoint) {
    if (SameAgent)
      // One agent's view: self and other are disjoint components, but two
      // touches of the *same* component (self/self or other/other) alias.
      return A.Comp == B.Comp;
    // Aux components of two *different* agents: their self contributions
    // are frame-disjoint (they join in the PCM), but each one's self is
    // part of the other's "other", and the two "other"s share all third
    // parties.
    if (A.Comp == FpComp::SelfAux && B.Comp == FpComp::SelfAux)
      return false;
    return true;
  }

  // Joint vs joint. Ownership regions of two different agents are
  // disjoint, and owned regions are disjoint from the unowned remainder;
  // one agent's two SelfOwned touches name the *same* region, though, and
  // fall through to the field/cell refinement.
  if (!(SameAgent && A.Region == FpRegion::SelfOwned &&
        B.Region == FpRegion::SelfOwned)) {
    if (A.Region == FpRegion::SelfOwned &&
        (B.Region == FpRegion::SelfOwned || B.Region == FpRegion::Unowned))
      return false;
    if (B.Region == FpRegion::SelfOwned && A.Region == FpRegion::Unowned)
      return false;
  }
  if ((A.Fields & B.Fields) == 0)
    return false; // Touch disjoint fields of any shared cell.
  return cellsIntersect(A, B);
}

Footprint Footprint::none() {
  Footprint F;
  F.Known = true;
  return F;
}

Footprint &Footprint::read(FpAtom A) {
  Known = true;
  assert((A.AllCells || std::is_sorted(A.Cells.begin(), A.Cells.end())) &&
         "cell refinements must be sorted");
  Reads.push_back(std::move(A));
  return *this;
}

Footprint &Footprint::write(FpAtom A) {
  Known = true;
  assert((A.AllCells || std::is_sorted(A.Cells.begin(), A.Cells.end())) &&
         "cell refinements must be sorted");
  Writes.push_back(std::move(A));
  return *this;
}

Footprint &Footprint::readWrite(const FpAtom &A) {
  read(A);
  return write(A);
}

size_t Footprint::approxBytes() const {
  size_t Bytes = sizeof(Footprint);
  for (const std::vector<FpAtom> *Side : {&Reads, &Writes})
    for (const FpAtom &A : *Side)
      Bytes += sizeof(FpAtom) + A.Cells.size() * sizeof(Ptr);
  return Bytes;
}

namespace {

bool anyClash(const std::vector<FpAtom> &Xs, const std::vector<FpAtom> &Ys,
              bool SameAgent) {
  for (const FpAtom &X : Xs)
    for (const FpAtom &Y : Ys)
      if (fpAtomsClash(X, Y, SameAgent))
        return true;
  return false;
}

} // namespace

bool fcsl::fpIndependent(const Footprint &A, const Footprint &B,
                         bool SameAgent) {
  if (!A.known() || !B.known())
    return false;
  return !anyClash(A.writes(), B.writes(), SameAgent) &&
         !anyClash(A.writes(), B.reads(), SameAgent) &&
         !anyClash(B.writes(), A.reads(), SameAgent);
}
