//===- concurroid/Entangle.cpp - Concurroid composition --------------------===//
//
// Part of fcsl-cpp. See Entangle.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Entangle.h"

#include <cassert>

using namespace fcsl;

ConcurroidRef fcsl::entangle(ConcurroidRef A, ConcurroidRef B,
                             std::vector<Transition> Connectors,
                             Concurroid::CohFn Glue) {
  assert(A && B && "entangle needs two concurroids");

  std::vector<OwnedLabel> Labels = A->ownedLabels();
  for (const OwnedLabel &L : B->ownedLabels()) {
    for (const OwnedLabel &Existing : Labels) {
      assert(Existing.L != L.L && "entangled concurroids share a label");
      (void)Existing;
    }
    Labels.push_back(L);
  }

  auto Coh = [A, B, Glue](const View &S) {
    if (!A->coherent(S) || !B->coherent(S))
      return false;
    return !Glue || Glue(S);
  };

  auto C = makeConcurroid(A->name() + " >< " + B->name(), std::move(Labels),
                          std::move(Coh));
  for (const Transition &T : A->transitions())
    if (T.name() != "idle")
      C->addTransition(T);
  for (const Transition &T : B->transitions())
    if (T.name() != "idle")
      C->addTransition(T);
  for (Transition &T : Connectors)
    C->addTransition(std::move(T));
  return C;
}
