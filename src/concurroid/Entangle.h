//===- concurroid/Entangle.h - Concurroid composition -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entanglement of concurroids (Section 4.1): composing two protocols into
/// one whose state space is the product of theirs, optionally interconnected
/// by channel-like *connector* transitions that exchange heap ownership
/// (e.g. the allocator handing a pointer to a thread's private heap). The
/// paper writes `entangle (Priv pv) ALock`; we write
/// `entangle(Priv, ALock, Connectors)`.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_ENTANGLE_H
#define FCSL_CONCURROID_ENTANGLE_H

#include "concurroid/Concurroid.h"

namespace fcsl {

/// Entangles \p A and \p B. Owned labels must be disjoint. The transitions
/// of the composition are those of A, those of B, and the supplied
/// \p Connectors (acquire/release pairs spanning both protocols). An
/// optional extra \p Glue predicate strengthens the product coherence.
ConcurroidRef entangle(ConcurroidRef A, ConcurroidRef B,
                       std::vector<Transition> Connectors = {},
                       Concurroid::CohFn Glue = nullptr);

} // namespace fcsl

#endif // FCSL_CONCURROID_ENTANGLE_H
