//===- concurroid/Transition.h - Concurroid transitions ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transitions of a concurroid: binary relations on subjective Views that
/// describe the state changes threads are allowed to perform (Section
/// 2.2.1). A transition exposes two capabilities:
///
///  - `successors(View)`: enumerate all post-views reachable in one step
///    (over all transition parameters). This drives environment-
///    interference generation and stability checking.
///  - `covers(Pre, Post)`: decide whether a concrete step is an instance of
///    this transition. This discharges the "every atomic action corresponds
///    to a transition" obligation of Section 3.4.
///
/// Transitions are *subjective*: the same relation read from a thread's
/// view or from the environment's view describes, respectively, a step by
/// the thread or interference by its environment.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_TRANSITION_H
#define FCSL_CONCURROID_TRANSITION_H

#include "concurroid/Footprint.h"
#include "state/View.h"

#include <functional>
#include <string>
#include <vector>

namespace fcsl {

/// Classifies transitions for the metatheory checks: internal transitions
/// preserve the label's heap footprint; acquire/release transitions
/// exchange heap ownership between entangled concurroids (Section 4.1).
enum class TransitionKind : uint8_t { Internal, Acquire, Release };

/// One named transition relation.
class Transition {
public:
  using StepFn = std::function<std::vector<View>(const View &)>;
  using CoverFn = std::function<bool(const View &, const View &)>;

  /// Creates a transition whose instances are produced by \p Enumerate.
  /// `covers` is derived by enumeration unless \p Covers is supplied.
  Transition(std::string Name, TransitionKind Kind, StepFn Enumerate,
             CoverFn Covers = nullptr, bool EnvEnabled = true);

  /// Creates the identity transition every concurroid has.
  static Transition idle();

  const std::string &name() const { return Name; }
  TransitionKind kind() const { return Kind; }

  /// True if the environment may take this transition during interference
  /// exploration. (Transitions whose parameter space is unbounded are
  /// checked by `covers` only.)
  bool isEnvEnabled() const { return EnvEnabled; }

  /// All post-views reachable from \p Pre by one instance of this
  /// transition. Must leave labels it does not own untouched.
  std::vector<View> successors(const View &Pre) const;

  /// Whether (Pre, Post) is an instance of this transition.
  bool covers(const View &Pre, const View &Post) const;

  /// Dynamic footprint generator: the components one step of this
  /// transition from the given pre-view may read/write (see Footprint.h
  /// for the honesty contract; the "agent" is the environment).
  using FootprintFn = std::function<Footprint(const View &)>;

  /// Attaches footprint metadata; returns *this so call sites can chain
  /// onto a freshly constructed transition. \p Static must cover every
  /// instance from every view; \p Dyn (optional) refines it per view.
  Transition &withFootprint(Footprint Static, FootprintFn Dyn = nullptr);

  /// The static footprint; unknown unless withFootprint was called.
  const Footprint &staticFootprint() const { return StaticFp; }

  /// The footprint of one step from \p Pre: the dynamic generator when
  /// present, else the static footprint.
  Footprint footprint(const View &Pre) const {
    return DynFp ? DynFp(Pre) : StaticFp;
  }

private:
  std::string Name;
  TransitionKind Kind;
  StepFn Enumerate;
  CoverFn Covers;
  bool EnvEnabled;
  Footprint StaticFp; ///< default-unknown: dependent on everything.
  FootprintFn DynFp;
};

} // namespace fcsl

#endif // FCSL_CONCURROID_TRANSITION_H
