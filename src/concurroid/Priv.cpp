//===- concurroid/Priv.cpp - Thread-local state concurroid -----------------===//
//
// Part of fcsl-cpp. See Priv.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "concurroid/Priv.h"

using namespace fcsl;

ConcurroidRef fcsl::makePriv(Label Pv) {
  auto Coh = [Pv](const View &S) {
    if (!S.hasLabel(Pv))
      return false;
    // The joint component of Priv is always empty; private heaps of
    // different threads must be disjoint.
    if (!S.joint(Pv).isEmpty())
      return false;
    if (S.self(Pv).kind() != PCMKind::HeapPCM ||
        S.other(Pv).kind() != PCMKind::HeapPCM)
      return false;
    return S.selfOtherJoin(Pv).has_value();
  };

  auto C = makeConcurroid(
      "Priv", {OwnedLabel{Pv, "pv", PCMType::heap()}}, Coh);

  // priv_local: the observing thread rearranges its own private heap
  // arbitrarily (write/alloc/dealloc). The parameter space is unbounded, so
  // the transition is coverage-only; it also generates no environment
  // successors because another thread's private writes are invisible in the
  // observing thread's self and joint components. Note the *other*
  // component legitimately changes across env steps of Priv; specs in this
  // development never constrain pv_other, so eliding those env steps does
  // not weaken any checked property (mirrors the paper, where Priv's
  // interference is handled once in the metatheory).
  C->addTransition(Transition(
      "priv_local", TransitionKind::Internal,
      /*Enumerate=*/nullptr,
      [Pv](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Pv) || !Post.hasLabel(Pv))
          return false;
        if (!(Pre.other(Pv) == Post.other(Pv)))
          return false;
        if (!Post.joint(Pv).isEmpty())
          return false;
        // All non-Priv labels must be untouched.
        for (Label L : Pre.labels())
          if (L != Pv && (!Post.hasLabel(L) ||
                          !(Pre.slice(L) == Post.slice(L))))
            return false;
        return Post.self(Pv).kind() == PCMKind::HeapPCM;
      },
      /*EnvEnabled=*/false));
  return C;
}

const Heap &fcsl::pvSelfHeap(const View &S, Label Pv) {
  return S.self(Pv).getHeap();
}
