//===- concurroid/Footprint.h - Step footprints for independence -*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative footprint descriptors for atomic actions and concurroid
/// transitions, and the independence relation between them. This is the
/// metadata layer behind the engine's partial-order reduction (DESIGN.md
/// §9): two steps taken by *different* agents commute — executing them in
/// either order yields the same state and the same outcomes — whenever
/// their footprints are independent.
///
/// A footprint lists the state components a step may read and those it may
/// write, as atoms. Each atom names a label and one subjective component:
///
///  - `Joint`:    the label's shared real heap. Joint atoms can be refined
///                by a cell list (instead of "all cells"), a field mask
///                (graph cells have independent Left/Right/Marked fields;
///                scalar cells use `FpFieldsAll`), and a *region*:
///                `SelfOwned` marks cells governed by the executing agent's
///                own PCM contribution. Because self contributions of
///                distinct agents are disjoint (that is what makes them a
///                PCM), two SelfOwned atoms of different agents never refer
///                to the same cell, and a SelfOwned atom never refers to a
///                cell in the `Unowned` region.
///  - `SelfAux`:  the executing agent's own auxiliary PCM contribution at
///                the label. Different agents' self contributions join, so
///                they are frame-disjoint: X's SelfAux never clashes with
///                Y's SelfAux. It *does* clash with another agent's
///                OtherAux (X's self is part of Y's other).
///  - `OtherAux`: the combined contributions of all other agents. Two
///                OtherAux atoms of different agents overlap (each contains
///                the third parties), so they always clash.
///
/// The environment counts as one more agent: a transition's SelfAux is the
/// environment's own contribution, and its OtherAux covers every thread.
///
/// Honesty contract (what makes the reduction sound): a step's footprint
/// must cover every component its enabledness, its safety, and its set of
/// outcomes depend on (reads), and every component any outcome may change
/// (writes) — including cells whose *presence* in a joint heap changes
/// (domain changes count as whole-cell writes). A field-masked write
/// promises the outcome leaves the cell's other fields at their pre-state
/// values. A dynamic footprint (computed from the pre-view and arguments)
/// must cover every instance enabled *at that view*, and the step's
/// enabledness, safety, and outcomes must be functions of the components it
/// reads — then the footprint remains an honest description in any state
/// that differs only on components outside it, which is what lets the
/// engine commute the step across independent ones. It need *not*
/// anticipate instances that only become enabled later through unread
/// components (a helper transition gaining a new request, say): wherever
/// the engine must remember a step across many subsequent states — sleep
/// entries — it records the static, all-instance footprint instead. When
/// in doubt, return `Footprint()` (unknown): unknown footprints are
/// dependent on everything, which only costs reduction, never soundness.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_CONCURROID_FOOTPRINT_H
#define FCSL_CONCURROID_FOOTPRINT_H

#include "heap/Ptr.h"
#include "state/View.h"

#include <cstdint>
#include <vector>

namespace fcsl {

/// Which subjective component of a label an atom touches.
enum class FpComp : uint8_t { Joint, SelfAux, OtherAux };

/// Ownership region of a Joint atom, from the executing agent's
/// perspective. `Any` is the conservative default.
enum class FpRegion : uint8_t {
  Any,       ///< no ownership claim: may alias anything at the label.
  SelfOwned, ///< cells governed by the agent's own PCM contribution.
  Unowned    ///< cells governed by no agent's contribution.
};

/// Field mask covering every field of a cell (scalar cells only have one).
inline constexpr uint8_t FpFieldsAll = 0xFF;

/// One footprint atom: a (label, component) pair with optional joint-heap
/// refinements.
struct FpAtom {
  Label L = 0;
  FpComp Comp = FpComp::Joint;
  FpRegion Region = FpRegion::Any; ///< meaningful for Joint atoms only.
  uint8_t Fields = FpFieldsAll;    ///< meaningful for Joint atoms only.
  bool AllCells = true;            ///< false: restricted to `Cells`.
  std::vector<Ptr> Cells;          ///< sorted; meaningful when !AllCells.

  static FpAtom selfAux(Label L);
  static FpAtom otherAux(Label L);
  static FpAtom joint(Label L, uint8_t Fields = FpFieldsAll,
                      FpRegion Region = FpRegion::Any);
  static FpAtom jointCell(Label L, Ptr P, uint8_t Fields = FpFieldsAll,
                          FpRegion Region = FpRegion::Any);

  friend bool operator==(const FpAtom &A, const FpAtom &B) {
    return A.L == B.L && A.Comp == B.Comp && A.Region == B.Region &&
           A.Fields == B.Fields && A.AllCells == B.AllCells &&
           A.Cells == B.Cells;
  }
};

/// May two atoms refer to overlapping state? Conservative: true unless
/// disjointness is guaranteed. By default the atoms are claimed by two
/// *different* agents (distinct threads, or a thread vs. the environment);
/// \p SameAgent switches to the one-agent reading — e.g. two environment
/// transitions — where SelfAux/SelfAux and SelfOwned/SelfOwned name the
/// *same* component or region instead of frame-disjoint ones.
bool fpAtomsClash(const FpAtom &A, const FpAtom &B, bool SameAgent = false);

/// The read/write footprint of one step. Default-constructed footprints
/// are *unknown* (dependent on everything).
class Footprint {
public:
  Footprint() = default;

  /// A known footprint touching nothing. Extend with read()/write().
  static Footprint none();

  bool known() const { return Known; }
  const std::vector<FpAtom> &reads() const { return Reads; }
  const std::vector<FpAtom> &writes() const { return Writes; }

  /// Fluent builders; calling either marks the footprint known.
  Footprint &read(FpAtom A);
  Footprint &write(FpAtom A);
  /// Declares A both read and written.
  Footprint &readWrite(const FpAtom &A);

  /// Rough retained size, for visited-set accounting.
  size_t approxBytes() const;

private:
  bool Known = false;
  std::vector<FpAtom> Reads;
  std::vector<FpAtom> Writes;
};

/// Structural equality (atom order matters), used by the wire codec's
/// round-trip checks.
inline bool operator==(const Footprint &A, const Footprint &B) {
  return A.known() == B.known() && A.reads() == B.reads() &&
         A.writes() == B.writes();
}

/// Independence of two steps: each side's writes are disjoint from the
/// other side's reads and writes. Unknown footprints are independent of
/// nothing. Independent steps commute: neither enables, disables, nor
/// changes the outcomes of the other, and both execution orders reach the
/// same state. Pass \p SameAgent when both steps belong to one agent
/// (two environment transitions; see fpAtomsClash).
bool fpIndependent(const Footprint &A, const Footprint &B,
                   bool SameAgent = false);

} // namespace fcsl

#endif // FCSL_CONCURROID_FOOTPRINT_H
