//===- dist/Shard.cpp - Worker-side transport for sharded runs -------------===//
//
// Part of fcsl-cpp. See Shard.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "dist/Shard.h"

#include <cerrno>
#include <cstdlib>
#include <sys/socket.h>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::dist;

namespace {

/// Flush a destination's outbox once it holds this many configs...
constexpr size_t FlushConfigs = 64;
/// ...or this many payload bytes, whichever comes first.
constexpr size_t FlushBytes = 256u << 10;
/// A buffered config older than this is flushed on the next pump even if
/// the batch is small and the shard busy: bounds the latency a peer waits
/// on work we are sitting on, without reverting to per-successor frames.
constexpr auto FlushStaleness = std::chrono::microseconds(200);
/// Minimum interval between busy-state stats reports.
constexpr auto ReportInterval = std::chrono::milliseconds(20);

} // namespace

SocketShardIo::SocketShardIo(int Fd, unsigned ShardId, unsigned NShards)
    : Fd(Fd), Id(ShardId), Compress(distCompressEnabled()), Out(NShards),
      PeerDicts(NShards) {
  for (unsigned I = 0; I != NShards; ++I) {
    Out[I].Batch.Dest = I;
    Out[I].Batch.Src = ShardId;
    Out[I].Batch.Dict = Compress;
  }
  HelloMsg Hello;
  Hello.ShardId = ShardId;
  writeAll(frameHello(Hello));
}

SocketShardIo::~SocketShardIo() {
  if (Fd >= 0)
    ::close(Fd);
}

void SocketShardIo::writeAll(const std::vector<uint8_t> &Bytes) {
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // The coordinator is gone (EPIPE/ECONNRESET): an orphaned worker
      // has nobody to report to. Exit loudly; the coordinator-side EOF
      // handling (or the crash diagnostic) takes it from here.
      std::_Exit(3);
    }
    Off += static_cast<size_t>(N);
  }
}

void SocketShardIo::flushOutbox(unsigned Dest) {
  Outbox &O = Out[Dest];
  if (O.Batch.Configs.empty())
    return;
  if (Compress) {
    O.Batch.Defs = O.PendingDefs.take();
    O.PendingDefs = Encoder();
    DictDefBytes += O.Batch.Defs.size();
  }
  std::vector<uint8_t> Frame = frameBatch(O.Batch);
  ++SentBatches;
  SentBytes += Frame.size();
  writeAll(Frame);
  O.Batch.Configs.clear();
  O.Batch.Fps.clear();
  O.Batch.Defs.clear();
  O.Bytes = 0;
}

void SocketShardIo::flushAll() {
  for (unsigned I = 0; I != Out.size(); ++I)
    flushOutbox(I);
}

void SocketShardIo::send(unsigned Dest, FrontierConfig FC, uint64_t Fp) {
  Outbox &O = Out[Dest];
  std::vector<uint8_t> Body;
  if (Compress) {
    // Encode against this connection's dictionary: nodes the peer has
    // already seen become references; new ones append to the pending
    // definition stream that rides in the next flushed frame.
    Encoder Refs;
    O.Dict.encodeConfig(O.PendingDefs, Refs, FC);
    Body = Refs.take();
    DictRefBytes += Body.size();
  } else {
    // Legacy A/B baseline: the standalone encoding, produced here so the
    // engine pays no serialization cost when compression is on.
    Encoder E;
    encode(E, FC);
    Body = E.take();
  }
  if (O.Batch.Configs.empty())
    O.Oldest = std::chrono::steady_clock::now();
  O.Bytes += Body.size();
  O.Batch.Fps.push_back(Fp);
  O.Batch.Configs.push_back(std::move(Body));
  if (O.Batch.Configs.size() >= FlushConfigs || O.Bytes >= FlushBytes ||
      (Compress ? O.PendingDefs.buffer().size() : 0) >= FlushBytes)
    flushOutbox(Dest);
}

ShardCommand SocketShardIo::pump(const ShardStatus &Status,
                                 std::vector<ShardDelivery> &Incoming) {
  // Adaptive coalescing: flush when the shard has quiesced (batches must
  // precede the idle stats report that counts them as sent — the socket
  // is FIFO, so the coordinator's received-counts catch up before it
  // weighs the report), on drain, or when a buffered config has waited
  // past the staleness bound. Otherwise let batches grow toward the size
  // thresholds instead of framing every successor.
  bool Quiesced = Status.Idle || Status.Failed || Status.Exhausted;
  if (Quiesced || DrainSeen) {
    flushAll();
  } else {
    auto Now = std::chrono::steady_clock::now();
    for (unsigned I = 0; I != Out.size(); ++I)
      if (!Out[I].Batch.Configs.empty() &&
          Now - Out[I].Oldest >= FlushStaleness)
        flushOutbox(I);
  }

  // Drain the socket without blocking.
  uint8_t Buf[64 << 10];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      In.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF or hard error: coordinator gone. Stop exploring; the Verdict
    // write will fail and exit the worker.
    DrainSeen = true;
    break;
  }

  while (std::optional<std::vector<uint8_t>> Payload = In.next()) {
    std::optional<WireMsg> M = decodeFrame(*Payload);
    if (!M) {
      // An unknown-but-well-framed type means a versioned peer is
      // speaking a protocol this worker does not: surface it as a
      // malformed delivery so the run fails loudly instead of silently
      // dropping fleet traffic. A genuinely malformed frame stays
      // fail-soft (the stream itself may still carry good frames).
      if (classifyFrame(*Payload) == FrameClass::UnknownType) {
        ShardDelivery Delivery;
        Delivery.Malformed = true;
        Incoming.push_back(std::move(Delivery));
      }
      continue;
    }
    if (M->Type == MsgType::FrontierBatch ||
        M->Type == MsgType::FrontierBatchDict) {
      FrontierBatchMsg &B = M->Batch;
      NodeDictDecoder *Dict = nullptr;
      bool BatchBad = false;
      if (B.Dict) {
        if (B.Src >= PeerDicts.size()) {
          BatchBad = true;
        } else {
          Dict = &PeerDicts[B.Src];
          // The definition stream extends the (Src -> here) connection
          // dictionary; a malformed stream poisons it permanently, so
          // every config in this and later batches from Src is
          // undeliverable — surface each as Malformed (the engine fails
          // the run; per-config entries keep received-counts balanced).
          if (!Dict->feedDefs(B.Defs.data(), B.Defs.size()))
            BatchBad = true;
        }
      }
      for (size_t I = 0; I != B.Configs.size(); ++I) {
        ShardDelivery Delivery;
        Delivery.Fp = I < B.Fps.size() ? B.Fps[I] : 0;
        if (BatchBad) {
          Delivery.Malformed = true;
        } else {
          Decoder D(B.Configs[I]);
          Delivery.Config =
              Dict ? Dict->decodeConfig(D) : decodeFrontierConfig(D);
          Delivery.Malformed = D.failed() || !D.atEnd();
        }
        Incoming.push_back(std::move(Delivery));
      }
    } else if (M->Type == MsgType::Drain) {
      DrainSeen = true;
      DrainExhausted |= M->Drain.Exhausted;
    }
  }
  if (In.corrupt())
    DrainSeen = true;

  // Report status when it changed: eagerly when quiescent (termination
  // detection is waiting on it), rate-limited while busy.
  StatsReportMsg Report;
  Report.ShardId = Id;
  Report.Idle = Status.Idle;
  Report.Failed = Status.Failed;
  Report.Exhausted = Status.Exhausted;
  Report.Expanded = Status.Expanded;
  Report.SentConfigs = Status.SentConfigs;
  Report.RecvConfigs = Status.RecvConfigs;
  Report.SentBatches = SentBatches;
  Report.SentBytes = SentBytes;
  Report.SuppressedSends = Status.SuppressedSends;
  auto Now = std::chrono::steady_clock::now();
  bool Changed = !Reported || !(Report == LastReport);
  bool Due = !Reported || Report.Idle || Report.Failed || Report.Exhausted ||
             Now - LastReportTime >= ReportInterval;
  if (Changed && Due && !DrainSeen) {
    writeAll(frameStats(Report));
    LastReport = Report;
    Reported = true;
    LastReportTime = Now;
  }

  if (DrainSeen)
    return DrainExhausted ? ShardCommand::DrainExhausted
                          : ShardCommand::Drain;
  return ShardCommand::Continue;
}

VerdictMsg SocketShardIo::makeVerdict(const RunResult &R) const {
  VerdictMsg V;
  V.ShardId = Id;
  V.Safe = R.Safe;
  V.Exhausted = R.Exhausted;
  V.PorReduced = R.PorReduced;
  V.FailureNote = R.FailureNote;
  V.FailureTrace = R.FailureTrace;
  V.Terminals = R.Terminals;
  V.ConfigsExplored = R.ConfigsExplored;
  V.ActionSteps = R.ActionSteps;
  V.EnvSteps = R.EnvSteps;
  V.DedupHits = R.DedupHits;
  V.VisitedNodes = R.VisitedNodes;
  V.VisitedBytes = R.VisitedBytes;
  V.FrontierAtAbort = R.FrontierAtAbort;
  // The engine's exchange counters live in its status snapshots; the last
  // reported one is exact once the fleet has quiesced (stats only).
  V.SentConfigs = LastReport.SentConfigs;
  V.RecvConfigs = LastReport.RecvConfigs;
  V.SentBatches = SentBatches;
  V.SentBytes = SentBytes;
  V.SuppressedSends = LastReport.SuppressedSends;
  for (const Outbox &O : Out)
    V.DictNodes += O.Dict.size();
  V.DictDefBytes = DictDefBytes;
  V.DictRefBytes = DictRefBytes;
  return V;
}

void SocketShardIo::sendCacheDelta(const CacheDeltaMsg &M) {
  if (M.Records.empty())
    return;
  writeAll(frameCacheDelta(M));
}

void SocketShardIo::sendVerdict(const VerdictMsg &M) {
  flushAll();
  writeAll(frameVerdict(M));
}
