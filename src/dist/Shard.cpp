//===- dist/Shard.cpp - Worker-side transport for sharded runs -------------===//
//
// Part of fcsl-cpp. See Shard.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "dist/Shard.h"

#include <cerrno>
#include <cstdlib>
#include <sys/socket.h>
#include <unistd.h>

using namespace fcsl;
using namespace fcsl::dist;

namespace {

/// Flush a destination's outbox once it holds this many configs...
constexpr size_t FlushConfigs = 64;
/// ...or this many payload bytes, whichever comes first.
constexpr size_t FlushBytes = 256u << 10;
/// Minimum interval between busy-state stats reports.
constexpr auto ReportInterval = std::chrono::milliseconds(20);

} // namespace

SocketShardIo::SocketShardIo(int Fd, unsigned ShardId, unsigned NShards)
    : Fd(Fd), Id(ShardId), Outbox(NShards), OutboxBytes(NShards, 0) {
  for (unsigned I = 0; I != NShards; ++I)
    Outbox[I].Dest = I;
  HelloMsg Hello;
  Hello.ShardId = ShardId;
  writeAll(frameHello(Hello));
}

SocketShardIo::~SocketShardIo() {
  if (Fd >= 0)
    ::close(Fd);
}

void SocketShardIo::writeAll(const std::vector<uint8_t> &Bytes) {
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // The coordinator is gone (EPIPE/ECONNRESET): an orphaned worker
      // has nobody to report to. Exit loudly; the coordinator-side EOF
      // handling (or the crash diagnostic) takes it from here.
      std::_Exit(3);
    }
    Off += static_cast<size_t>(N);
  }
}

void SocketShardIo::flushOutbox(unsigned Dest) {
  FrontierBatchMsg &B = Outbox[Dest];
  if (B.Configs.empty())
    return;
  std::vector<uint8_t> Frame = frameBatch(B);
  ++SentBatches;
  SentBytes += Frame.size();
  writeAll(Frame);
  B.Configs.clear();
  OutboxBytes[Dest] = 0;
}

void SocketShardIo::flushAll() {
  for (unsigned I = 0; I != Outbox.size(); ++I)
    flushOutbox(I);
}

void SocketShardIo::send(unsigned Dest, std::vector<uint8_t> ConfigBytes) {
  OutboxBytes[Dest] += ConfigBytes.size();
  Outbox[Dest].Configs.push_back(std::move(ConfigBytes));
  if (Outbox[Dest].Configs.size() >= FlushConfigs ||
      OutboxBytes[Dest] >= FlushBytes)
    flushOutbox(Dest);
}

ShardCommand SocketShardIo::pump(const ShardStatus &Status,
                                 std::vector<std::vector<uint8_t>> &Incoming) {
  // Outboxes first: batches must precede the stats report that counts
  // them as sent, so the coordinator's received-counts can catch up
  // before it weighs the report (the socket is FIFO).
  flushAll();

  // Drain the socket without blocking.
  uint8_t Buf[64 << 10];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      In.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    // EOF or hard error: coordinator gone. Stop exploring; the Verdict
    // write will fail and exit the worker.
    DrainSeen = true;
    break;
  }

  while (std::optional<std::vector<uint8_t>> Payload = In.next()) {
    std::optional<WireMsg> M = decodeFrame(*Payload);
    if (!M)
      continue; // Fail-soft: skip malformed frames.
    if (M->Type == MsgType::FrontierBatch) {
      for (std::vector<uint8_t> &C : M->Batch.Configs)
        Incoming.push_back(std::move(C));
    } else if (M->Type == MsgType::Drain) {
      DrainSeen = true;
      DrainExhausted |= M->Drain.Exhausted;
    }
  }
  if (In.corrupt())
    DrainSeen = true;

  // Report status when it changed: eagerly when quiescent (termination
  // detection is waiting on it), rate-limited while busy.
  StatsReportMsg Report;
  Report.ShardId = Id;
  Report.Idle = Status.Idle;
  Report.Failed = Status.Failed;
  Report.Exhausted = Status.Exhausted;
  Report.Expanded = Status.Expanded;
  Report.SentConfigs = Status.SentConfigs;
  Report.RecvConfigs = Status.RecvConfigs;
  Report.SentBatches = SentBatches;
  Report.SentBytes = SentBytes;
  auto Now = std::chrono::steady_clock::now();
  bool Changed = !Reported || !(Report == LastReport);
  bool Due = !Reported || Report.Idle || Report.Failed || Report.Exhausted ||
             Now - LastReportTime >= ReportInterval;
  if (Changed && Due && !DrainSeen) {
    writeAll(frameStats(Report));
    LastReport = Report;
    Reported = true;
    LastReportTime = Now;
  }

  if (DrainSeen)
    return DrainExhausted ? ShardCommand::DrainExhausted
                          : ShardCommand::Drain;
  return ShardCommand::Continue;
}

VerdictMsg SocketShardIo::makeVerdict(const RunResult &R) const {
  VerdictMsg V;
  V.ShardId = Id;
  V.Safe = R.Safe;
  V.Exhausted = R.Exhausted;
  V.PorReduced = R.PorReduced;
  V.FailureNote = R.FailureNote;
  V.FailureTrace = R.FailureTrace;
  V.Terminals = R.Terminals;
  V.ConfigsExplored = R.ConfigsExplored;
  V.ActionSteps = R.ActionSteps;
  V.EnvSteps = R.EnvSteps;
  V.DedupHits = R.DedupHits;
  V.VisitedNodes = R.VisitedNodes;
  V.VisitedBytes = R.VisitedBytes;
  V.FrontierAtAbort = R.FrontierAtAbort;
  // The engine's exchange counters live in its status snapshots; the last
  // reported one is exact once the fleet has quiesced (stats only).
  V.SentConfigs = LastReport.SentConfigs;
  V.RecvConfigs = LastReport.RecvConfigs;
  V.SentBatches = SentBatches;
  V.SentBytes = SentBytes;
  return V;
}

void SocketShardIo::sendCacheDelta(const CacheDeltaMsg &M) {
  if (M.Records.empty())
    return;
  writeAll(frameCacheDelta(M));
}

void SocketShardIo::sendVerdict(const VerdictMsg &M) {
  flushAll();
  writeAll(frameVerdict(M));
}
