//===- dist/Wire.h - Frame protocol for sharded exploration -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer of the multi-process sharded exploration (DESIGN.md
/// §10): a length-prefixed frame protocol over `support/Codec`. Every
/// frame is a u32 little-endian payload length followed by the payload —
/// the codec header (magic + version), a message-type tag, and the typed
/// body. Decoding is fail-soft end to end: a malformed payload yields
/// `std::nullopt`, never a crash, and an implausible frame length latches
/// the stream as corrupt.
///
/// Message flow (coordinator C, workers W0..Wn-1, one socket pair each):
///
///   W -> C   Hello          once, immediately after fork
///   W -> C   FrontierBatch  non-owned successors, addressed by shard id
///   C -> W   FrontierBatch  relayed to the owning shard
///   W -> C   StatsReport    idle/failed/exhausted + sent/received counts
///   C -> W   Drain          stop exploring and report
///   W -> C   CacheDelta     obligation-cache records appended worker-side
///   W -> C   Verdict        the shard's RunResult, then exit
///
/// The verification service (src/service/, DESIGN.md §15) speaks the same
/// frame protocol over a client connection (client L, daemon S):
///
///   L -> S   Hello          handshake; the codec header is the version
///                           guard — a peer from another codec version
///                           fails decode and is rejected up front
///   S -> L   Hello          handshake acknowledgement
///   L -> S   SubmitSession  run a registered session under request flags
///   S -> L   Progress       one frame per completed obligation
///   S -> L   Report         the SessionReport (or a loud reject)
///   L -> S   CacheStats     query the daemon's serving counters
///   S -> L   CacheStats     the counters
///   L -> S   Shutdown       drain in-flight sessions and exit
///   S -> L   Shutdown       drained; the daemon is about to exit
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_DIST_WIRE_H
#define FCSL_DIST_WIRE_H

#include "cache/Store.h"
#include "prog/Engine.h"
#include "spec/Session.h"
#include "support/Codec.h"

#include <optional>

namespace fcsl {
namespace dist {

enum class MsgType : uint8_t {
  Hello = 1,
  FrontierBatch = 2,
  StatsReport = 3,
  Drain = 4,
  Verdict = 5,
  CacheDelta = 6,
  /// A dictionary-compressed frontier batch (DESIGN.md §14): same
  /// envelope as FrontierBatch plus a NodeDef stream; config bodies are
  /// varint references into the sender's per-connection dictionary.
  FrontierBatchDict = 7,
  // -- Verification-service frames (src/service/, DESIGN.md §15) --
  SubmitSession = 8,
  Progress = 9,
  Report = 10,
  CacheStats = 11,
  Shutdown = 12,
};

/// The highest tag decodeFrame understands; anything above is an unknown
/// (but possibly well-framed) message from a newer peer.
inline constexpr uint8_t MaxKnownMsgTag =
    static_cast<uint8_t>(MsgType::Shutdown);

/// How a received frame payload classifies, *before* a full body decode.
/// The split matters for error handling (see the satellite contract in
/// dist_test.cpp): a malformed frame means the stream cannot be trusted,
/// while an unknown-but-well-framed type means a versioned peer sent a
/// message this build does not speak — the service path rejects that one
/// frame loudly and keeps the connection; the shard path surfaces it as a
/// malformed delivery so the run fails loudly instead of silently
/// dropping protocol traffic.
enum class FrameClass : uint8_t {
  Malformed,   ///< bad codec header (or no tag byte at all).
  UnknownType, ///< valid header, tag outside [Hello, Shutdown].
  Known,       ///< valid header and a tag this build decodes.
};

/// Classifies a frame payload from its header and tag alone (the body is
/// not decoded — a Known frame can still fail decodeFrame on a truncated
/// body).
FrameClass classifyFrame(const std::vector<uint8_t> &Payload);

/// Process-wide switch for the dictionary-compressed frontier encoding
/// (`--dist-compress`, `FCSL_DIST_COMPRESS`). Resolved by the coordinator
/// before forking so the whole fleet agrees; receivers are tag-driven and
/// accept both encodings regardless. Default on.
void setDistCompress(bool Enabled);
bool distCompressEnabled();

/// Announces a worker's shard id on its channel.
struct HelloMsg {
  uint32_t ShardId = 0;

  friend bool operator==(const HelloMsg &A, const HelloMsg &B) {
    return A.ShardId == B.ShardId;
  }
};

/// A batch of encoded frontier configs sent by shard \p Src and addressed
/// to shard \p Dest, with one ownership fingerprint per config (so the
/// coordinator can dedup relays without decoding bodies). In the legacy
/// encoding (Dict false) each config blob is an encodeFrontierConfigPrefix
/// buffer; in the dictionary encoding (Dict true) \p Defs carries the
/// NodeDef stream extending the (Src, Dest) connection dictionary and each
/// config blob is a NodeDictEncoder reference stream.
struct FrontierBatchMsg {
  uint32_t Dest = 0;
  uint32_t Src = 0;
  bool Dict = false;
  std::vector<uint64_t> Fps;
  std::vector<uint8_t> Defs;
  std::vector<std::vector<uint8_t>> Configs;

  friend bool operator==(const FrontierBatchMsg &A,
                         const FrontierBatchMsg &B) {
    return A.Dest == B.Dest && A.Src == B.Src && A.Dict == B.Dict &&
           A.Fps == B.Fps && A.Defs == B.Defs && A.Configs == B.Configs;
  }
};

/// A shard's status snapshot, feeding the coordinator's termination
/// detection (see Coordinator.h for the argument).
struct StatsReportMsg {
  uint32_t ShardId = 0;
  bool Idle = false;
  bool Failed = false;
  bool Exhausted = false;
  uint64_t Expanded = 0;
  uint64_t SentConfigs = 0;
  uint64_t RecvConfigs = 0;
  uint64_t SentBatches = 0;
  uint64_t SentBytes = 0;
  uint64_t SuppressedSends = 0;

  friend bool operator==(const StatsReportMsg &A, const StatsReportMsg &B) {
    return A.ShardId == B.ShardId && A.Idle == B.Idle &&
           A.Failed == B.Failed && A.Exhausted == B.Exhausted &&
           A.Expanded == B.Expanded && A.SentConfigs == B.SentConfigs &&
           A.RecvConfigs == B.RecvConfigs &&
           A.SentBatches == B.SentBatches && A.SentBytes == B.SentBytes &&
           A.SuppressedSends == B.SuppressedSends;
  }
};

/// Coordinator -> worker: stop exploring and send a Verdict. With
/// \p Exhausted set the fleet hit the config bound, so the worker reports
/// an incomplete run.
struct DrainMsg {
  bool Exhausted = false;

  friend bool operator==(const DrainMsg &A, const DrainMsg &B) {
    return A.Exhausted == B.Exhausted;
  }
};

/// A shard's final RunResult, flattened for the wire, plus its transport
/// statistics.
struct VerdictMsg {
  uint32_t ShardId = 0;
  bool Safe = true;
  bool Exhausted = false;
  bool PorReduced = false;
  std::string FailureNote;
  std::vector<std::string> FailureTrace;
  std::vector<Terminal> Terminals; ///< sorted ascending, like RunResult.
  uint64_t ConfigsExplored = 0;
  uint64_t ActionSteps = 0;
  uint64_t EnvSteps = 0;
  uint64_t DedupHits = 0;
  uint64_t VisitedNodes = 0;
  uint64_t VisitedBytes = 0;
  uint64_t FrontierAtAbort = 0;
  uint64_t SentConfigs = 0;
  uint64_t RecvConfigs = 0;
  uint64_t SentBatches = 0;
  uint64_t SentBytes = 0;
  uint64_t SuppressedSends = 0;
  uint64_t DictNodes = 0;    ///< distinct nodes in all send dictionaries.
  uint64_t DictDefBytes = 0; ///< definition-stream bytes shipped.
  uint64_t DictRefBytes = 0; ///< reference-stream bytes shipped.

  friend bool operator==(const VerdictMsg &A, const VerdictMsg &B) {
    if (A.Terminals.size() != B.Terminals.size())
      return false;
    for (size_t I = 0, N = A.Terminals.size(); I != N; ++I)
      if (A.Terminals[I] < B.Terminals[I] ||
          B.Terminals[I] < A.Terminals[I])
        return false;
    return A.ShardId == B.ShardId && A.Safe == B.Safe &&
           A.Exhausted == B.Exhausted && A.PorReduced == B.PorReduced &&
           A.FailureNote == B.FailureNote &&
           A.FailureTrace == B.FailureTrace &&
           A.ConfigsExplored == B.ConfigsExplored &&
           A.ActionSteps == B.ActionSteps && A.EnvSteps == B.EnvSteps &&
           A.DedupHits == B.DedupHits &&
           A.VisitedNodes == B.VisitedNodes &&
           A.VisitedBytes == B.VisitedBytes &&
           A.FrontierAtAbort == B.FrontierAtAbort &&
           A.SentConfigs == B.SentConfigs &&
           A.RecvConfigs == B.RecvConfigs &&
           A.SentBatches == B.SentBatches && A.SentBytes == B.SentBytes &&
           A.SuppressedSends == B.SuppressedSends &&
           A.DictNodes == B.DictNodes &&
           A.DictDefBytes == B.DictDefBytes &&
           A.DictRefBytes == B.DictRefBytes;
  }
};

/// Obligation-cache records a worker appended during its run, shipped to
/// the coordinator before the Verdict so the fleet shares one store (the
/// coordinator merges them into its own). The body carries the cache
/// record format version: a delta from a worker running a different
/// record layout decodes as empty, never as garbage records.
struct CacheDeltaMsg {
  uint32_t ShardId = 0;
  std::vector<cache::CacheRecord> Records;

  friend bool operator==(const CacheDeltaMsg &A, const CacheDeltaMsg &B) {
    return A.ShardId == B.ShardId && A.Records == B.Records;
  }
};

//===----------------------------------------------------------------------===//
// Verification-service frames (src/service/, DESIGN.md §15)
//===----------------------------------------------------------------------===//

/// Client -> daemon: run one registered session. The engine-relevant
/// request flags resolve into the same ObligationKey flag fingerprint the
/// cache uses (spec/Session.h engineFlagsFingerprintFor), so a request's
/// verdicts share the store with direct `fcsl-verify` runs under the same
/// modes. Mode bytes carry the raw enum values; `Default` (0) means "use
/// the daemon's startup default".
struct SubmitSessionMsg {
  std::string Session;          ///< registered case-study name.
  uint8_t Por = 0;              ///< PorMode, Default = daemon default.
  uint8_t Symmetry = 0;         ///< SymMode, Default = daemon default.
  uint8_t Cache = 0;            ///< cache::CacheMode, Default = daemon's.
  uint32_t Jobs = 0;            ///< discharge workers, 0 = daemon default.
  bool WantProgress = false;    ///< stream Progress frames while running.

  friend bool operator==(const SubmitSessionMsg &A,
                         const SubmitSessionMsg &B) {
    return A.Session == B.Session && A.Por == B.Por &&
           A.Symmetry == B.Symmetry && A.Cache == B.Cache &&
           A.Jobs == B.Jobs && A.WantProgress == B.WantProgress;
  }
};

/// Daemon -> client: one obligation of the submitted session completed.
/// Completion order follows the scheduler, not registration order (the
/// final Report aggregates in registration order regardless).
struct ProgressMsg {
  uint32_t Completed = 0; ///< completion ordinal, 1-based.
  uint32_t Total = 0;     ///< total obligations in the session.
  uint8_t Category = 0;   ///< ObCategory raw value.
  std::string Name;       ///< obligation name.
  bool Passed = true;
  bool FromCache = false; ///< replayed from the store, not discharged.
  uint64_t ElapsedUs = 0; ///< discharge time (0 for replayed hits).

  friend bool operator==(const ProgressMsg &A, const ProgressMsg &B) {
    return A.Completed == B.Completed && A.Total == B.Total &&
           A.Category == B.Category && A.Name == B.Name &&
           A.Passed == B.Passed && A.FromCache == B.FromCache &&
           A.ElapsedUs == B.ElapsedUs;
  }
};

/// Daemon -> client: the outcome of a request. With Ok false the request
/// was rejected (unknown session, unknown frame type, draining daemon,
/// full queue, malformed body) and Error names the reason loudly; the
/// SessionReport is meaningful only when Ok.
struct ReportMsg {
  bool Ok = true;
  std::string Error;
  bool ServedFromCache = false; ///< whole session answered by the warm
                                ///< fast path; the engine never ran.
  uint64_t ElapsedUs = 0;       ///< daemon-side handling time.
  SessionReport Report;

  friend bool operator==(const ReportMsg &A, const ReportMsg &B);
};

/// Daemon serving counters; the client sends one with Query set as the
/// request, the daemon answers with the fields filled. ServedFromCache /
/// SessionsRun are what the verify.sh service stage asserts on: a warm
/// corpus must be all fast-path serves with zero engine sessions.
struct CacheStatsMsg {
  bool Query = false;             ///< true on the client->daemon request.
  uint64_t RequestsServed = 0;    ///< submits answered with a Report.
  uint64_t SessionsRun = 0;       ///< sessions dispatched to the engine.
  uint64_t ServedFromCache = 0;   ///< sessions served by the warm fast path.
  uint64_t ObligationsReplayed = 0; ///< store hits inside fast-path serves.
  uint64_t Rejected = 0;          ///< loud rejects (any reason).
  uint64_t UnknownFrames = 0;     ///< unknown-type frames rejected.
  uint64_t MalformedFrames = 0;   ///< malformed/truncated frames seen.
  uint64_t StoreRecords = 0;      ///< records in the daemon's store.
  uint64_t StoreBytes = 0;        ///< bytes of the daemon's store log.
  uint64_t UptimeUs = 0;          ///< daemon uptime at answer time.

  friend bool operator==(const CacheStatsMsg &A, const CacheStatsMsg &B) {
    return A.Query == B.Query && A.RequestsServed == B.RequestsServed &&
           A.SessionsRun == B.SessionsRun &&
           A.ServedFromCache == B.ServedFromCache &&
           A.ObligationsReplayed == B.ObligationsReplayed &&
           A.Rejected == B.Rejected &&
           A.UnknownFrames == B.UnknownFrames &&
           A.MalformedFrames == B.MalformedFrames &&
           A.StoreRecords == B.StoreRecords &&
           A.StoreBytes == B.StoreBytes && A.UptimeUs == B.UptimeUs;
  }
};

/// Graceful shutdown: the client's frame has Ack false; the daemon drains
/// every in-flight and queued session, then answers with Ack true and
/// exits its serve loop.
struct ShutdownMsg {
  bool Ack = false;

  friend bool operator==(const ShutdownMsg &A, const ShutdownMsg &B) {
    return A.Ack == B.Ack;
  }
};

/// A decoded frame: the type tag plus the matching body (the other bodies
/// stay default-constructed).
struct WireMsg {
  MsgType Type = MsgType::Hello;
  HelloMsg Hello;
  FrontierBatchMsg Batch;
  StatsReportMsg Stats;
  DrainMsg Drain;
  VerdictMsg Verdict;
  CacheDeltaMsg Delta;
  SubmitSessionMsg Submit;
  ProgressMsg Prog;
  ReportMsg Rep;
  CacheStatsMsg CStats;
  ShutdownMsg Shut;
};

/// Frames larger than this are treated as stream corruption, not as a
/// request to allocate gigabytes.
inline constexpr uint32_t MaxFrameBytes = 1u << 30;

// Each framer returns the complete wire frame: u32 length + payload.
std::vector<uint8_t> frameHello(const HelloMsg &M);
std::vector<uint8_t> frameBatch(const FrontierBatchMsg &M);
std::vector<uint8_t> frameStats(const StatsReportMsg &M);
std::vector<uint8_t> frameDrain(const DrainMsg &M);
std::vector<uint8_t> frameVerdict(const VerdictMsg &M);
std::vector<uint8_t> frameCacheDelta(const CacheDeltaMsg &M);
std::vector<uint8_t> frameSubmitSession(const SubmitSessionMsg &M);
std::vector<uint8_t> frameProgress(const ProgressMsg &M);
std::vector<uint8_t> frameReport(const ReportMsg &M);
std::vector<uint8_t> frameCacheStats(const CacheStatsMsg &M);
std::vector<uint8_t> frameShutdown(const ShutdownMsg &M);

/// Decodes one frame payload (the bytes after the length prefix).
/// Returns nullopt on any malformation: bad header, unknown type tag,
/// truncated body, or trailing garbage.
std::optional<WireMsg> decodeFrame(const std::vector<uint8_t> &Payload);

/// The frame's type tag, without decoding the body (header is still
/// validated). The coordinator uses this to relay batch frames as raw
/// bytes instead of re-expanding them.
std::optional<MsgType> peekFrameTag(const std::vector<uint8_t> &Payload);

/// A batch frame's routing envelope — dest, src, per-config ownership
/// fingerprints — read without touching the config bodies.
struct BatchPeek {
  MsgType Type = MsgType::FrontierBatch;
  uint32_t Dest = 0;
  uint32_t Src = 0;
  std::vector<uint64_t> Fps;
};
std::optional<BatchPeek> peekBatch(const std::vector<uint8_t> &Payload);

/// Rebuilds a complete frame (length prefix + payload) from a batch frame
/// payload, keeping only the configs whose \p Keep bit is set. The
/// definition stream of a dictionary frame is ALWAYS kept — later frames
/// on the connection reference it. Returns nullopt on malformation or a
/// Keep size mismatch.
std::optional<std::vector<uint8_t>>
filterBatchFrame(const std::vector<uint8_t> &Payload,
                 const std::vector<bool> &Keep);

/// Wraps a frame payload back into a complete wire frame (length prefix +
/// payload) for raw relay.
std::vector<uint8_t> frameFromPayload(const std::vector<uint8_t> &Payload);

/// Reassembles frames from a byte stream delivered in arbitrary chunks.
/// feed() appends bytes; next() yields the next complete frame payload,
/// or nullopt when none is buffered. An implausible length prefix
/// latches corrupt(): the stream cannot be resynchronized.
class FrameBuffer {
public:
  void feed(const uint8_t *Data, size_t N);
  std::optional<std::vector<uint8_t>> next();
  bool corrupt() const { return Corrupt; }

private:
  std::vector<uint8_t> Buf;
  size_t Consumed = 0;
  bool Corrupt = false;
};

} // namespace dist
} // namespace fcsl

#endif // FCSL_DIST_WIRE_H
