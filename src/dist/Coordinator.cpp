//===- dist/Coordinator.cpp - Fork/relay hub for sharded runs --------------===//
//
// Part of fcsl-cpp. See Coordinator.h for the interface and the
// termination-detection argument.
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"

#include "dist/Shard.h"
#include "dist/Wire.h"
#include "support/Format.h"

#include <array>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <mutex>
#include <poll.h>
#include <set>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <unordered_set>

using namespace fcsl;
using namespace fcsl::dist;

namespace {

std::mutex FleetMutex;
FleetStats FleetTotals;

/// The hub's view of one worker process.
struct WorkerCh {
  pid_t Pid = -1;
  int Fd = -1;
  FrameBuffer In;
  std::vector<uint8_t> OutPending; ///< frames queued for a busy socket.
  size_t OutOffset = 0;
  bool SawHello = false;
  bool HasReport = false;
  bool Done = false; ///< Verdict received.
  bool Eof = false;
  bool Reaped = false;
  StatsReportMsg Report;
  VerdictMsg Verdict;
  uint64_t RecvFromConfigs = 0; ///< configs the hub received from this worker.
  uint64_t RelayedToConfigs = 0; ///< configs the hub queued toward it.
  int ExitStatus = 0;
  uint64_t MaxRssKb = 0;
};

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

/// Harvests a worker's exit status and peak RSS.
void reap(WorkerCh &W, int Flags = 0) {
  if (W.Reaped || W.Pid < 0)
    return;
  int Status = 0;
  struct rusage Ru;
  pid_t R = ::wait4(W.Pid, &Status, Flags, &Ru);
  if (R == W.Pid) {
    W.Reaped = true;
    W.ExitStatus = Status;
    W.MaxRssKb = static_cast<uint64_t>(Ru.ru_maxrss); // KB on Linux.
  }
}

} // namespace

FleetStats dist::fleetTotals() {
  std::lock_guard<std::mutex> Lock(FleetMutex);
  return FleetTotals;
}

RunResult dist::distributedExplore(const ProgRef &Root,
                                   const GlobalState &Initial,
                                   const EngineOptions &Opts,
                                   const VarEnv &InitialEnv,
                                   unsigned NShards) {
  assert(Root && "distributedExplore needs a program");
  if (NShards == 0)
    NShards = 1;

  // Resolve the reduction mode once, in the parent, so every shard (and
  // the ownership-compatible merge) agrees on it. Check mode never
  // reaches here: explore() expands it into two resolved sub-runs first.
  EngineOptions RunOpts = Opts;
  if (RunOpts.Por == PorMode::Default)
    RunOpts.Por = defaultPorMode();
  assert(RunOpts.Por != PorMode::Check &&
         "explore() resolves Check before dispatching to the coordinator");
  if (RunOpts.Por == PorMode::Check)
    RunOpts.Por = PorMode::Off;
  RunOpts.Shards = NShards;

  // Latch the frontier-encoding choice in the parent so every forked
  // worker inherits the same resolved value.
  (void)distCompressEnabled();

  // Crash-injection hook for the worker-loss diagnostic test.
  long CrashShard = -1;
  if (const char *E = std::getenv("FCSL_DIST_CRASH_SHARD"))
    CrashShard = std::strtol(E, nullptr, 10);
  // Protocol-injection hook for the unknown-message diagnostic test: the
  // named shard sends one well-framed frame with an unrecognized tag.
  long UnknownShard = -1;
  if (const char *E = std::getenv("FCSL_DIST_UNKNOWN_SHARD"))
    UnknownShard = std::strtol(E, nullptr, 10);

  std::vector<WorkerCh> Workers(NShards);
  std::vector<std::array<int, 2>> Pairs(NShards,
                                        std::array<int, 2>{{-1, -1}});

  auto Fallback = [&](const char *Why) -> RunResult {
    std::fprintf(stderr,
                 "fcsl-verify: sharded exploration unavailable (%s); "
                 "falling back to the in-process engine\n",
                 Why);
    for (auto &P : Pairs) {
      closeFd(P[0]);
      closeFd(P[1]);
    }
    EngineOptions Fb = Opts;
    Fb.Shards = 1; // 1 shard never re-enters the coordinator hook.
    return explore(Root, Initial, Fb, InitialEnv);
  };

  for (unsigned I = 0; I != NShards; ++I) {
    int Sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) != 0)
      return Fallback("socketpair failed");
    Pairs[I] = {Sv[0], Sv[1]};
  }

  // Workers inherit the parent's address space: the same Prog nodes, the
  // same ProgTable, the same interned arenas. Flush stdio first so forked
  // children do not replay buffered output.
  std::fflush(stdout);
  std::fflush(stderr);

  for (unsigned I = 0; I != NShards; ++I) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      for (unsigned J = 0; J != I; ++J)
        ::kill(Workers[J].Pid, SIGKILL);
      for (unsigned J = 0; J != I; ++J)
        reap(Workers[J]); // Pairs[] still owns the fds; Fallback closes.
      return Fallback("fork failed");
    }
    if (Pid == 0) {
      // Child: keep only this worker's end of its own pair.
      for (unsigned J = 0; J != NShards; ++J) {
        closeFd(Pairs[J][0]);
        if (J != I)
          closeFd(Pairs[J][1]);
      }
      {
        SocketShardIo Io(Pairs[I][1], I, NShards);
        if (CrashShard == static_cast<long>(I))
          std::_Exit(42); // After Hello, before any Verdict.
        if (UnknownShard == static_cast<long>(I)) {
          // A frame from a protocol this build does not speak: valid
          // codec header, tag one past the known range. Single-threaded
          // child, nothing else in flight on the fd yet.
          Encoder Body;
          encodeHeader(Body);
          Body.u8(static_cast<uint8_t>(MaxKnownMsgTag) + 1);
          Encoder Frame;
          Frame.u32(static_cast<uint32_t>(Body.buffer().size()));
          Frame.raw(Body.buffer());
          const std::vector<uint8_t> &Bytes = Frame.buffer();
          for (size_t Off = 0; Off < Bytes.size();) {
            ssize_t N = ::write(Pairs[I][1], Bytes.data() + Off,
                                Bytes.size() - Off);
            if (N <= 0)
              break;
            Off += static_cast<size_t>(N);
          }
        }
        // Drop cache records inherited from the parent at fork: only
        // verdicts this worker itself appends belong in its delta.
        if (cache::Store *S = cache::activeStore())
          S->drainPending();
        RunResult R =
            exploreShard(Root, Initial, RunOpts, InitialEnv, I, NShards, Io);
        if (cache::Store *S = cache::activeStore()) {
          CacheDeltaMsg Delta;
          Delta.ShardId = I;
          Delta.Records = S->drainPending();
          Io.sendCacheDelta(Delta);
        }
        Io.sendVerdict(Io.makeVerdict(R));
      }
      std::_Exit(0);
    }
    Workers[I].Pid = Pid;
  }

  // Parent: keep the hub ends, close the worker ends, go non-blocking.
  for (unsigned I = 0; I != NShards; ++I) {
    closeFd(Pairs[I][1]);
    Workers[I].Fd = Pairs[I][0];
    Pairs[I][0] = -1;
    int Flags = ::fcntl(Workers[I].Fd, F_GETFL, 0);
    ::fcntl(Workers[I].Fd, F_SETFL, Flags | O_NONBLOCK);
  }

  bool Draining = false;
  bool DrainExhausted = false;
  std::string LostShardNote;
  uint64_t Messages = 0, Bytes = 0, Configs = 0, CacheMerged = 0;
  uint64_t DroppedDupes = 0;
  std::array<uint64_t, 16> RecvFrames{}, RecvBytes{};

  // Fleet-wide relay dedup, sound exactly when the reduction mode is Off:
  // without POR there is no wake payload to merge and no Counts=false
  // edges, so the owner's handling of the second copy of a fingerprint is
  // always "count one dedup hit, discard". The hub can do that itself and
  // drop the relay; together with the engine's sender-side filter this
  // guarantees each distinct config crosses the wire at most once
  // fleet-wide (exchanged <= explored). Under POR a duplicate may carry a
  // payload the owner still needs, so the hub relays everything.
  const bool FleetDedup = RunOpts.Por == PorMode::Off;
  std::unordered_set<uint64_t> RelayedFps;

  auto QueueFrame = [&](WorkerCh &W, std::vector<uint8_t> Frame) {
    if (W.Eof)
      return;
    W.OutPending.insert(W.OutPending.end(), Frame.begin(), Frame.end());
  };

  auto Broadcast = [&](const std::vector<uint8_t> &Frame) {
    for (WorkerCh &W : Workers)
      QueueFrame(W, Frame);
  };

  auto StartDrain = [&](bool Exhausted) {
    if (Draining)
      return;
    Draining = true;
    DrainExhausted = Exhausted;
    DrainMsg D;
    D.Exhausted = Exhausted;
    Broadcast(frameDrain(D));
  };

  auto HandleFrame = [&](unsigned From, WireMsg &M) {
    WorkerCh &W = Workers[From];
    switch (M.Type) {
    case MsgType::Hello:
      W.SawHello = true;
      break;
    case MsgType::StatsReport:
      W.Report = M.Stats;
      W.HasReport = true;
      if (M.Stats.Failed)
        StartDrain(false);
      if (M.Stats.Exhausted)
        StartDrain(true);
      break;
    case MsgType::FrontierBatch:
    case MsgType::FrontierBatchDict:
      break; // Batch frames take the raw-relay path in HandlePayload.
    case MsgType::Verdict:
      W.Verdict = M.Verdict;
      W.Done = true;
      if (!M.Verdict.Safe)
        StartDrain(false);
      if (M.Verdict.Exhausted)
        StartDrain(true);
      break;
    case MsgType::CacheDelta:
      // The fleet shares one obligation store: records a worker appended
      // fold into the hub's (first verdict wins, so a parent-side record
      // never gets overwritten).
      if (cache::Store *S = cache::activeStore())
        CacheMerged += S->merge(M.Delta.Records);
      break;
    case MsgType::Drain:
      break; // Workers never send Drain.
    case MsgType::SubmitSession:
    case MsgType::Progress:
    case MsgType::Report:
    case MsgType::CacheStats:
    case MsgType::Shutdown:
      break; // Service frames; workers never send these.
    }
  };

  // One frame payload off a worker's stream. Batch frames are relayed as
  // raw bytes — the hub reads only the routing envelope (dest, src,
  // fingerprints) and never re-expands or re-encodes the config bodies,
  // so a dictionary-compressed frame crosses the hub untouched and the
  // per-connection definition streams stay in FIFO order end to end.
  auto HandlePayload = [&](unsigned From, std::vector<uint8_t> &Payload) {
    WorkerCh &W = Workers[From];
    std::optional<MsgType> Tag = peekFrameTag(Payload);
    if (!Tag) {
      // A well-framed message of a type this build does not speak means a
      // worker from a different protocol vintage — a real bug, not line
      // noise. Drain as exhausted (like a dead shard) so the run fails
      // loudly instead of silently dropping traffic; genuinely malformed
      // frames stay fail-soft.
      if (classifyFrame(Payload) == FrameClass::UnknownType &&
          LostShardNote.empty()) {
        LostShardNote =
            "unknown message type from shard " + std::to_string(From) +
            "; the distributed exploration is incomplete";
        StartDrain(true);
      }
      return;
    }
    RecvFrames[static_cast<size_t>(*Tag)] += 1;
    RecvBytes[static_cast<size_t>(*Tag)] += Payload.size();
    if (*Tag != MsgType::FrontierBatch &&
        *Tag != MsgType::FrontierBatchDict) {
      std::optional<WireMsg> M = decodeFrame(Payload);
      if (M)
        HandleFrame(From, *M);
      return;
    }
    std::optional<BatchPeek> P = peekBatch(Payload);
    if (!P)
      return;
    size_t Count = P->Fps.size();
    W.RecvFromConfigs += Count;
    size_t Kept = Count;
    std::vector<bool> Keep;
    if (FleetDedup && Count != 0) {
      Keep.assign(Count, true);
      Kept = 0;
      for (size_t I = 0; I != Count; ++I) {
        if (RelayedFps.insert(P->Fps[I]).second)
          ++Kept;
        else
          Keep[I] = false;
      }
      DroppedDupes += Count - Kept;
    }
    // After a drain decision, relaying more work would only delay the
    // fleet's shutdown; the delivery counters still balance because the
    // destination never learns about the dropped configs.
    if (Draining || P->Dest >= Workers.size() || Workers[P->Dest].Eof)
      return;
    // An emptied legacy frame carries nothing; an emptied dictionary
    // frame still carries its definition stream, which later frames on
    // the connection reference — it must flow.
    if (Kept == 0 && *Tag == MsgType::FrontierBatch)
      return;
    std::vector<uint8_t> Frame;
    if (Kept == Count) {
      Frame = frameFromPayload(Payload);
    } else {
      std::optional<std::vector<uint8_t>> Filtered =
          filterBatchFrame(Payload, Keep);
      if (!Filtered)
        return;
      Frame = std::move(*Filtered);
    }
    Workers[P->Dest].RelayedToConfigs += Kept;
    ++Messages;
    Bytes += Frame.size();
    Configs += Kept;
    QueueFrame(Workers[P->Dest], std::move(Frame));
  };

  // The relay loop: poll every live socket, relay batches, weigh
  // termination, and stop once every worker is Done or lost.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  while (true) {
    bool AllSettled = true;
    for (const WorkerCh &W : Workers)
      AllSettled &= W.Done || W.Eof;
    if (AllSettled)
      break;
    if (std::chrono::steady_clock::now() > Deadline) {
      // Safety net: a wedged fleet (bug, not a workload property) must
      // not hang verification forever.
      for (WorkerCh &W : Workers)
        if (!W.Done && !W.Eof)
          ::kill(W.Pid, SIGKILL);
      if (LostShardNote.empty())
        LostShardNote = "distributed exploration timed out; workers were "
                        "killed before reporting verdicts";
      break;
    }

    std::vector<pollfd> Pfds;
    std::vector<unsigned> PfdOwner;
    for (unsigned I = 0; I != NShards; ++I) {
      WorkerCh &W = Workers[I];
      if (W.Eof)
        continue;
      pollfd P;
      P.fd = W.Fd;
      P.events = POLLIN;
      if (W.OutOffset < W.OutPending.size())
        P.events |= POLLOUT;
      P.revents = 0;
      Pfds.push_back(P);
      PfdOwner.push_back(I);
    }
    if (Pfds.empty())
      break;
    ::poll(Pfds.data(), Pfds.size(), 50);

    for (size_t PI = 0; PI != Pfds.size(); ++PI) {
      WorkerCh &W = Workers[PfdOwner[PI]];
      if (Pfds[PI].revents & POLLOUT) {
        while (W.OutOffset < W.OutPending.size()) {
          ssize_t N = ::send(W.Fd, W.OutPending.data() + W.OutOffset,
                             W.OutPending.size() - W.OutOffset,
                             MSG_NOSIGNAL);
          if (N > 0) {
            W.OutOffset += static_cast<size_t>(N);
            continue;
          }
          if (N < 0 && errno == EINTR)
            continue;
          break; // EAGAIN (retry next round) or a dead peer (EOF soon).
        }
        if (W.OutOffset == W.OutPending.size()) {
          W.OutPending.clear();
          W.OutOffset = 0;
        }
      }
      if (Pfds[PI].revents & (POLLIN | POLLHUP | POLLERR)) {
        uint8_t Buf[64 << 10];
        while (true) {
          ssize_t N = ::recv(W.Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
          if (N > 0) {
            W.In.feed(Buf, static_cast<size_t>(N));
            continue;
          }
          if (N < 0 && errno == EINTR)
            continue;
          if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
          // EOF (or hard error): the worker is gone.
          W.Eof = true;
          break;
        }
        while (std::optional<std::vector<uint8_t>> Payload = W.In.next())
          HandlePayload(PfdOwner[PI], *Payload);
        if (W.Eof) {
          closeFd(W.Fd);
          if (!W.Done) {
            // Crash: the shard died before reporting. The exploration is
            // incomplete no matter what the survivors say.
            reap(W);
            std::string Cause =
                W.Reaped
                    ? (WIFSIGNALED(W.ExitStatus)
                           ? formatString("killed by signal %d",
                                          WTERMSIG(W.ExitStatus))
                           : formatString("exit status %d",
                                          WEXITSTATUS(W.ExitStatus)))
                    : std::string("unknown cause");
            if (LostShardNote.empty())
              LostShardNote = formatString(
                  "shard %u of %u died before reporting a verdict (%s); "
                  "the distributed exploration is incomplete",
                  PfdOwner[PI], NShards, Cause.c_str());
            StartDrain(true);
          }
        }
      }
    }

    // Distributed termination: every worker idle, every exchange counter
    // balanced in both directions (see Coordinator.h).
    if (!Draining) {
      bool Terminated = true;
      for (const WorkerCh &W : Workers) {
        if (W.Done)
          continue; // Already reported; its counters are final.
        if (!W.SawHello || !W.HasReport || !W.Report.Idle ||
            W.Report.Failed || W.Report.Exhausted ||
            W.Report.SentConfigs != W.RecvFromConfigs ||
            W.Report.RecvConfigs != W.RelayedToConfigs) {
          Terminated = false;
          break;
        }
      }
      if (Terminated) {
        StartDrain(false);
      } else {
        // Fleet-level exhaustion: each shard bounds its own tickets by
        // MaxConfigs, so the fleet could otherwise expand up to N times
        // the bound before any single shard trips it.
        uint64_t TotalExpanded = 0;
        for (const WorkerCh &W : Workers)
          TotalExpanded +=
              W.Done ? W.Verdict.ConfigsExplored : W.Report.Expanded;
        if (TotalExpanded >= Opts.MaxConfigs)
          StartDrain(true);
      }
    }
  }

  for (WorkerCh &W : Workers) {
    closeFd(W.Fd);
    reap(W);
  }

  // Merge the per-shard verdicts into one RunResult, exactly the shape
  // the in-process engine produces: AND of Safe, OR of Exhausted, summed
  // counters, terminals deduplicated into one sorted set.
  RunResult Out;
  Out.MaxConfigsBound = Opts.MaxConfigs;
  Out.PorReduced = RunOpts.Por == PorMode::On;
  std::set<Terminal> Merged;
  bool FailPicked = false;
  for (unsigned I = 0; I != NShards; ++I) {
    WorkerCh &W = Workers[I];
    if (!W.Done) {
      Out.Exhausted = true;
      continue;
    }
    const VerdictMsg &V = W.Verdict;
    Out.Safe = Out.Safe && V.Safe;
    Out.Exhausted = Out.Exhausted || V.Exhausted;
    if (!V.Safe && !FailPicked) {
      FailPicked = true;
      Out.FailureNote = V.FailureNote;
      Out.FailureTrace = V.FailureTrace;
    }
    Out.ConfigsExplored += V.ConfigsExplored;
    Out.ActionSteps += V.ActionSteps;
    Out.EnvSteps += V.EnvSteps;
    Out.DedupHits += V.DedupHits;
    Out.VisitedNodes += V.VisitedNodes;
    Out.VisitedBytes += V.VisitedBytes;
    Out.FrontierAtAbort += V.FrontierAtAbort;
    Merged.insert(V.Terminals.begin(), V.Terminals.end());
  }
  Out.Terminals.assign(Merged.begin(), Merged.end());
  // Duplicates the hub dropped are exactly the dedup hits their owners
  // would have counted (FleetDedup is only active when the counter-parity
  // argument holds — see HandlePayload).
  Out.DedupHits += DroppedDupes;
  if (!LostShardNote.empty() && !FailPicked)
    Out.FailureNote = LostShardNote;
  if (Out.PorReduced)
    Out.ConfigsReduced = Out.ConfigsExplored;
  else
    Out.ConfigsFull = Out.ConfigsExplored;

  // Fleet statistics (reported by --stats and the benchmarks).
  {
    std::lock_guard<std::mutex> Lock(FleetMutex);
    FleetTotals.Fleets += 1;
    FleetTotals.Messages += Messages;
    FleetTotals.Bytes += Bytes;
    FleetTotals.Configs += Configs;
    FleetTotals.CacheRecordsMerged += CacheMerged;
    FleetTotals.RelayDroppedDupes += DroppedDupes;
    for (size_t I = 0; I != RecvFrames.size(); ++I) {
      FleetTotals.RecvFrames[I] += RecvFrames[I];
      FleetTotals.RecvBytes[I] += RecvBytes[I];
    }
    uint64_t RssSum = 0;
    FleetTotals.LastRun.clear();
    for (unsigned I = 0; I != NShards; ++I) {
      const WorkerCh &W = Workers[I];
      ShardExchange X;
      X.ShardId = I;
      X.Expanded = W.Done ? W.Verdict.ConfigsExplored : W.Report.Expanded;
      X.SentConfigs = W.Done ? W.Verdict.SentConfigs : W.Report.SentConfigs;
      X.RecvConfigs = W.Done ? W.Verdict.RecvConfigs : W.Report.RecvConfigs;
      X.SentBatches = W.Done ? W.Verdict.SentBatches : W.Report.SentBatches;
      X.SentBytes = W.Done ? W.Verdict.SentBytes : W.Report.SentBytes;
      X.SuppressedSends =
          W.Done ? W.Verdict.SuppressedSends : W.Report.SuppressedSends;
      X.DictNodes = W.Done ? W.Verdict.DictNodes : 0;
      X.DictDefBytes = W.Done ? W.Verdict.DictDefBytes : 0;
      X.DictRefBytes = W.Done ? W.Verdict.DictRefBytes : 0;
      X.MaxRssKb = W.MaxRssKb;
      RssSum += W.MaxRssKb;
      if (W.MaxRssKb > FleetTotals.ChildRssKbMax)
        FleetTotals.ChildRssKbMax = W.MaxRssKb;
      FleetTotals.LastRun.push_back(X);
    }
    if (RssSum > FleetTotals.ChildRssKbSum)
      FleetTotals.ChildRssKbSum = RssSum;
  }
  return Out;
}

void dist::installDistributedEngine() {
  setShardedExploreHook(&distributedExplore);
}
