//===- dist/Wire.cpp - Frame protocol for sharded exploration --------------===//
//
// Part of fcsl-cpp. See Wire.h for the interface and frame layout.
//
//===----------------------------------------------------------------------===//

#include "dist/Wire.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace fcsl;
using namespace fcsl::dist;

namespace {

std::atomic<int> DistCompress{-1}; // -1 unresolved, 0 off, 1 on

} // namespace

void dist::setDistCompress(bool Enabled) {
  DistCompress.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

bool dist::distCompressEnabled() {
  int V = DistCompress.load(std::memory_order_relaxed);
  if (V < 0) {
    const char *Env = std::getenv("FCSL_DIST_COMPRESS");
    V = (Env && (std::string(Env) == "off" || std::string(Env) == "0")) ? 0
                                                                        : 1;
    DistCompress.store(V, std::memory_order_relaxed);
  }
  return V != 0;
}

namespace {

Encoder startFrame(MsgType T) {
  Encoder E;
  encodeHeader(E);
  E.u8(static_cast<uint8_t>(T));
  return E;
}

std::vector<uint8_t> finishFrame(Encoder &&E) {
  std::vector<uint8_t> Payload = E.take();
  std::vector<uint8_t> Frame;
  Frame.reserve(4 + Payload.size());
  uint32_t N = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I)
    Frame.push_back(static_cast<uint8_t>(N >> (8 * I)));
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return Frame;
}

void encodeBlob(Encoder &E, const std::vector<uint8_t> &Blob) {
  E.u32(static_cast<uint32_t>(Blob.size()));
  for (uint8_t B : Blob)
    E.u8(B);
}

std::vector<uint8_t> decodeBlob(Decoder &D) {
  std::string S = D.str();
  return std::vector<uint8_t>(S.begin(), S.end());
}

} // namespace

std::vector<uint8_t> dist::frameHello(const HelloMsg &M) {
  Encoder E = startFrame(MsgType::Hello);
  E.u32(M.ShardId);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameBatch(const FrontierBatchMsg &M) {
  Encoder E = startFrame(M.Dict ? MsgType::FrontierBatchDict
                                : MsgType::FrontierBatch);
  E.u32(M.Dest);
  E.u32(M.Src);
  E.u32(static_cast<uint32_t>(M.Configs.size()));
  for (size_t I = 0, N = M.Configs.size(); I != N; ++I)
    E.u64(I < M.Fps.size() ? M.Fps[I] : 0);
  if (M.Dict)
    encodeBlob(E, M.Defs);
  for (const std::vector<uint8_t> &C : M.Configs)
    encodeBlob(E, C);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameStats(const StatsReportMsg &M) {
  Encoder E = startFrame(MsgType::StatsReport);
  E.u32(M.ShardId);
  E.u8(M.Idle);
  E.u8(M.Failed);
  E.u8(M.Exhausted);
  E.u64(M.Expanded);
  E.u64(M.SentConfigs);
  E.u64(M.RecvConfigs);
  E.u64(M.SentBatches);
  E.u64(M.SentBytes);
  E.u64(M.SuppressedSends);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameDrain(const DrainMsg &M) {
  Encoder E = startFrame(MsgType::Drain);
  E.u8(M.Exhausted);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameVerdict(const VerdictMsg &M) {
  Encoder E = startFrame(MsgType::Verdict);
  E.u32(M.ShardId);
  E.u8(M.Safe);
  E.u8(M.Exhausted);
  E.u8(M.PorReduced);
  E.str(M.FailureNote);
  E.u32(static_cast<uint32_t>(M.FailureTrace.size()));
  for (const std::string &S : M.FailureTrace)
    E.str(S);
  E.u32(static_cast<uint32_t>(M.Terminals.size()));
  for (const Terminal &T : M.Terminals) {
    encode(E, T.Result);
    encode(E, T.FinalView);
  }
  E.u64(M.ConfigsExplored);
  E.u64(M.ActionSteps);
  E.u64(M.EnvSteps);
  E.u64(M.DedupHits);
  E.u64(M.VisitedNodes);
  E.u64(M.VisitedBytes);
  E.u64(M.FrontierAtAbort);
  E.u64(M.SentConfigs);
  E.u64(M.RecvConfigs);
  E.u64(M.SentBatches);
  E.u64(M.SentBytes);
  E.u64(M.SuppressedSends);
  E.u64(M.DictNodes);
  E.u64(M.DictDefBytes);
  E.u64(M.DictRefBytes);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameCacheDelta(const CacheDeltaMsg &M) {
  Encoder E = startFrame(MsgType::CacheDelta);
  E.u32(M.ShardId);
  E.u32(cache::CacheRecordVersion);
  E.u32(static_cast<uint32_t>(M.Records.size()));
  for (const cache::CacheRecord &R : M.Records)
    cache::encode(E, R);
  return finishFrame(std::move(E));
}

namespace fcsl {
namespace dist {

bool operator==(const ReportMsg &A, const ReportMsg &B) {
  // Reports compare through the codec: two reports are equal exactly when
  // they are bit-identical on the wire, which is the service's contract.
  Encoder EA, EB;
  encode(EA, A.Report);
  encode(EB, B.Report);
  return A.Ok == B.Ok && A.Error == B.Error &&
         A.ServedFromCache == B.ServedFromCache &&
         A.ElapsedUs == B.ElapsedUs && EA.take() == EB.take();
}

} // namespace dist
} // namespace fcsl

std::vector<uint8_t> dist::frameSubmitSession(const SubmitSessionMsg &M) {
  Encoder E = startFrame(MsgType::SubmitSession);
  E.str(M.Session);
  E.u8(M.Por);
  E.u8(M.Symmetry);
  E.u8(M.Cache);
  E.u32(M.Jobs);
  E.u8(M.WantProgress);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameProgress(const ProgressMsg &M) {
  Encoder E = startFrame(MsgType::Progress);
  E.u32(M.Completed);
  E.u32(M.Total);
  E.u8(M.Category);
  E.str(M.Name);
  E.u8(M.Passed);
  E.u8(M.FromCache);
  E.u64(M.ElapsedUs);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameReport(const ReportMsg &M) {
  Encoder E = startFrame(MsgType::Report);
  E.u8(M.Ok);
  E.str(M.Error);
  E.u8(M.ServedFromCache);
  E.u64(M.ElapsedUs);
  encode(E, M.Report);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameCacheStats(const CacheStatsMsg &M) {
  Encoder E = startFrame(MsgType::CacheStats);
  E.u8(M.Query);
  E.u64(M.RequestsServed);
  E.u64(M.SessionsRun);
  E.u64(M.ServedFromCache);
  E.u64(M.ObligationsReplayed);
  E.u64(M.Rejected);
  E.u64(M.UnknownFrames);
  E.u64(M.MalformedFrames);
  E.u64(M.StoreRecords);
  E.u64(M.StoreBytes);
  E.u64(M.UptimeUs);
  return finishFrame(std::move(E));
}

std::vector<uint8_t> dist::frameShutdown(const ShutdownMsg &M) {
  Encoder E = startFrame(MsgType::Shutdown);
  E.u8(M.Ack);
  return finishFrame(std::move(E));
}

std::optional<WireMsg> dist::decodeFrame(const std::vector<uint8_t> &Payload) {
  Decoder D(Payload);
  if (!decodeHeader(D))
    return std::nullopt;
  uint8_t Tag = D.u8();
  if (Tag < static_cast<uint8_t>(MsgType::Hello) || Tag > MaxKnownMsgTag)
    return std::nullopt;
  WireMsg M;
  M.Type = static_cast<MsgType>(Tag);
  switch (M.Type) {
  case MsgType::Hello:
    M.Hello.ShardId = D.u32();
    break;
  case MsgType::FrontierBatch:
  case MsgType::FrontierBatchDict: {
    M.Batch.Dict = M.Type == MsgType::FrontierBatchDict;
    M.Batch.Dest = D.u32();
    M.Batch.Src = D.u32();
    uint32_t Count = D.u32();
    if (static_cast<uint64_t>(Count) * 8 > D.remaining()) {
      D.fail(); // Implausible count: don't reserve gigabytes.
      break;
    }
    for (uint32_t I = 0; I != Count && !D.failed(); ++I)
      M.Batch.Fps.push_back(D.u64());
    if (M.Batch.Dict)
      M.Batch.Defs = decodeBlob(D);
    for (uint32_t I = 0; I != Count && !D.failed(); ++I)
      M.Batch.Configs.push_back(decodeBlob(D));
    break;
  }
  case MsgType::StatsReport:
    M.Stats.ShardId = D.u32();
    M.Stats.Idle = D.u8() != 0;
    M.Stats.Failed = D.u8() != 0;
    M.Stats.Exhausted = D.u8() != 0;
    M.Stats.Expanded = D.u64();
    M.Stats.SentConfigs = D.u64();
    M.Stats.RecvConfigs = D.u64();
    M.Stats.SentBatches = D.u64();
    M.Stats.SentBytes = D.u64();
    M.Stats.SuppressedSends = D.u64();
    break;
  case MsgType::Drain:
    M.Drain.Exhausted = D.u8() != 0;
    break;
  case MsgType::Verdict: {
    M.Verdict.ShardId = D.u32();
    M.Verdict.Safe = D.u8() != 0;
    M.Verdict.Exhausted = D.u8() != 0;
    M.Verdict.PorReduced = D.u8() != 0;
    M.Verdict.FailureNote = D.str();
    uint32_t NumTrace = D.u32();
    for (uint32_t I = 0; I != NumTrace && !D.failed(); ++I)
      M.Verdict.FailureTrace.push_back(D.str());
    uint32_t NumTerm = D.u32();
    for (uint32_t I = 0; I != NumTerm && !D.failed(); ++I) {
      Terminal T;
      T.Result = decodeVal(D);
      T.FinalView = decodeView(D);
      M.Verdict.Terminals.push_back(std::move(T));
    }
    M.Verdict.ConfigsExplored = D.u64();
    M.Verdict.ActionSteps = D.u64();
    M.Verdict.EnvSteps = D.u64();
    M.Verdict.DedupHits = D.u64();
    M.Verdict.VisitedNodes = D.u64();
    M.Verdict.VisitedBytes = D.u64();
    M.Verdict.FrontierAtAbort = D.u64();
    M.Verdict.SentConfigs = D.u64();
    M.Verdict.RecvConfigs = D.u64();
    M.Verdict.SentBatches = D.u64();
    M.Verdict.SentBytes = D.u64();
    M.Verdict.SuppressedSends = D.u64();
    M.Verdict.DictNodes = D.u64();
    M.Verdict.DictDefBytes = D.u64();
    M.Verdict.DictRefBytes = D.u64();
    break;
  }
  case MsgType::CacheDelta: {
    M.Delta.ShardId = D.u32();
    if (D.u32() != cache::CacheRecordVersion)
      return std::nullopt; // Foreign record layout: drop the whole delta.
    uint32_t Count = D.u32();
    for (uint32_t I = 0; I != Count && !D.failed(); ++I)
      M.Delta.Records.push_back(cache::decodeCacheRecord(D));
    break;
  }
  case MsgType::SubmitSession:
    M.Submit.Session = D.str();
    M.Submit.Por = D.u8();
    M.Submit.Symmetry = D.u8();
    M.Submit.Cache = D.u8();
    M.Submit.Jobs = D.u32();
    M.Submit.WantProgress = D.u8() != 0;
    break;
  case MsgType::Progress:
    M.Prog.Completed = D.u32();
    M.Prog.Total = D.u32();
    M.Prog.Category = D.u8();
    M.Prog.Name = D.str();
    M.Prog.Passed = D.u8() != 0;
    M.Prog.FromCache = D.u8() != 0;
    M.Prog.ElapsedUs = D.u64();
    break;
  case MsgType::Report:
    M.Rep.Ok = D.u8() != 0;
    M.Rep.Error = D.str();
    M.Rep.ServedFromCache = D.u8() != 0;
    M.Rep.ElapsedUs = D.u64();
    M.Rep.Report = decodeSessionReport(D);
    break;
  case MsgType::CacheStats:
    M.CStats.Query = D.u8() != 0;
    M.CStats.RequestsServed = D.u64();
    M.CStats.SessionsRun = D.u64();
    M.CStats.ServedFromCache = D.u64();
    M.CStats.ObligationsReplayed = D.u64();
    M.CStats.Rejected = D.u64();
    M.CStats.UnknownFrames = D.u64();
    M.CStats.MalformedFrames = D.u64();
    M.CStats.StoreRecords = D.u64();
    M.CStats.StoreBytes = D.u64();
    M.CStats.UptimeUs = D.u64();
    break;
  case MsgType::Shutdown:
    M.Shut.Ack = D.u8() != 0;
    break;
  }
  if (D.failed() || !D.atEnd())
    return std::nullopt;
  return M;
}

std::optional<MsgType> dist::peekFrameTag(const std::vector<uint8_t> &Payload) {
  Decoder D(Payload);
  if (!decodeHeader(D))
    return std::nullopt;
  uint8_t Tag = D.u8();
  if (D.failed() || Tag < static_cast<uint8_t>(MsgType::Hello) ||
      Tag > MaxKnownMsgTag)
    return std::nullopt;
  return static_cast<MsgType>(Tag);
}

FrameClass dist::classifyFrame(const std::vector<uint8_t> &Payload) {
  Decoder D(Payload);
  if (!decodeHeader(D))
    return FrameClass::Malformed;
  uint8_t Tag = D.u8();
  if (D.failed())
    return FrameClass::Malformed;
  if (Tag < static_cast<uint8_t>(MsgType::Hello) || Tag > MaxKnownMsgTag)
    return FrameClass::UnknownType;
  return FrameClass::Known;
}

std::optional<BatchPeek> dist::peekBatch(const std::vector<uint8_t> &Payload) {
  Decoder D(Payload);
  if (!decodeHeader(D))
    return std::nullopt;
  uint8_t Tag = D.u8();
  if (Tag != static_cast<uint8_t>(MsgType::FrontierBatch) &&
      Tag != static_cast<uint8_t>(MsgType::FrontierBatchDict))
    return std::nullopt;
  BatchPeek P;
  P.Type = static_cast<MsgType>(Tag);
  P.Dest = D.u32();
  P.Src = D.u32();
  uint32_t Count = D.u32();
  if (D.failed() || static_cast<uint64_t>(Count) * 8 > D.remaining())
    return std::nullopt;
  for (uint32_t I = 0; I != Count && !D.failed(); ++I)
    P.Fps.push_back(D.u64());
  if (D.failed())
    return std::nullopt;
  return P;
}

std::optional<std::vector<uint8_t>>
dist::filterBatchFrame(const std::vector<uint8_t> &Payload,
                       const std::vector<bool> &Keep) {
  std::optional<WireMsg> M = decodeFrame(Payload);
  if (!M || (M->Type != MsgType::FrontierBatch &&
             M->Type != MsgType::FrontierBatchDict))
    return std::nullopt;
  FrontierBatchMsg &B = M->Batch;
  if (Keep.size() != B.Configs.size() || B.Fps.size() != B.Configs.size())
    return std::nullopt;
  FrontierBatchMsg Out;
  Out.Dest = B.Dest;
  Out.Src = B.Src;
  Out.Dict = B.Dict;
  Out.Defs = std::move(B.Defs); // definitions survive filtering, always.
  for (size_t I = 0, N = B.Configs.size(); I != N; ++I) {
    if (!Keep[I])
      continue;
    Out.Fps.push_back(B.Fps[I]);
    Out.Configs.push_back(std::move(B.Configs[I]));
  }
  return frameBatch(Out);
}

std::vector<uint8_t>
dist::frameFromPayload(const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Frame;
  Frame.reserve(4 + Payload.size());
  uint32_t N = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I)
    Frame.push_back(static_cast<uint8_t>(N >> (8 * I)));
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return Frame;
}

void FrameBuffer::feed(const uint8_t *Data, size_t N) {
  if (Corrupt)
    return;
  Buf.insert(Buf.end(), Data, Data + N);
}

std::optional<std::vector<uint8_t>> FrameBuffer::next() {
  if (Corrupt)
    return std::nullopt;
  size_t Avail = Buf.size() - Consumed;
  if (Avail < 4)
    return std::nullopt;
  uint32_t Len = 0;
  for (int I = 0; I != 4; ++I)
    Len |= static_cast<uint32_t>(Buf[Consumed + I]) << (8 * I);
  if (Len > MaxFrameBytes) {
    Corrupt = true;
    return std::nullopt;
  }
  if (Avail - 4 < Len)
    return std::nullopt;
  std::vector<uint8_t> Payload(Buf.begin() + Consumed + 4,
                               Buf.begin() + Consumed + 4 + Len);
  Consumed += 4 + static_cast<size_t>(Len);
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound across a long exchange.
  if (Consumed == Buf.size()) {
    Buf.clear();
    Consumed = 0;
  } else if (Consumed > (1u << 20)) {
    Buf.erase(Buf.begin(), Buf.begin() + Consumed);
    Consumed = 0;
  }
  return Payload;
}
