//===- dist/Shard.h - Worker-side transport for sharded runs ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker-process side of the multi-process sharded exploration
/// (DESIGN.md §10, §14): a ShardIo implementation over one Unix-domain
/// socket to the coordinator. Non-owned successors accumulate in
/// per-destination outboxes — dictionary-encoded on the way in, so each
/// interned node crosses the connection once as a NodeDef and thereafter
/// as a varint reference — and are flushed as batch frames when a batch
/// grows past a size threshold, when the shard quiesces, or when the
/// oldest buffered config exceeds a small staleness bound (adaptive
/// coalescing: no more per-successor chatter). Status reports are sent
/// when the snapshot changes, rate-limited while busy but eagerly when
/// idle so the coordinator's termination detection converges.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_DIST_SHARD_H
#define FCSL_DIST_SHARD_H

#include "dist/Wire.h"

#include <chrono>

namespace fcsl {
namespace dist {

class SocketShardIo final : public ShardIo {
public:
  /// Takes ownership of \p Fd (the worker's end of the socket pair) and
  /// announces itself with a Hello frame. The frontier encoding follows
  /// distCompressEnabled() (resolved by the coordinator before forking).
  SocketShardIo(int Fd, unsigned ShardId, unsigned NShards);
  ~SocketShardIo() override;

  void send(unsigned Dest, FrontierConfig FC, uint64_t Fp) override;
  ShardCommand pump(const ShardStatus &Status,
                    std::vector<ShardDelivery> &Incoming) override;

  /// Flattens \p R into a Verdict carrying this transport's counters and
  /// shard id.
  VerdictMsg makeVerdict(const RunResult &R) const;

  /// Ships obligation-cache records this worker appended (drainPending on
  /// its store) so the coordinator can merge them. Call before
  /// sendVerdict; an empty delta is not sent.
  void sendCacheDelta(const CacheDeltaMsg &M);

  /// Flushes the outboxes and writes the final Verdict frame.
  void sendVerdict(const VerdictMsg &M);

private:
  /// One destination shard's pending batch plus its connection state: the
  /// send dictionary persists across batches (the peer's decoder replays
  /// every definition stream in order), the pending definition bytes ride
  /// in the next flushed frame.
  struct Outbox {
    FrontierBatchMsg Batch;
    size_t Bytes = 0;
    std::chrono::steady_clock::time_point Oldest{};
    NodeDictEncoder Dict;
    Encoder PendingDefs;
  };

  void flushOutbox(unsigned Dest);
  void flushAll();
  /// Blocking write of a whole buffer. A worker whose coordinator is gone
  /// has no one to report to: it exits with status 3 rather than explore
  /// an orphaned shard forever.
  void writeAll(const std::vector<uint8_t> &Bytes);

  int Fd;
  unsigned Id;
  bool Compress;
  std::vector<Outbox> Out;           ///< one per destination shard.
  std::vector<NodeDictDecoder> PeerDicts; ///< one per source shard.
  FrameBuffer In;
  bool DrainSeen = false;
  bool DrainExhausted = false;
  StatsReportMsg LastReport;
  bool Reported = false;
  std::chrono::steady_clock::time_point LastReportTime;
  uint64_t SentBatches = 0;
  uint64_t SentBytes = 0;
  uint64_t DictDefBytes = 0;
  uint64_t DictRefBytes = 0;
};

} // namespace dist
} // namespace fcsl

#endif // FCSL_DIST_SHARD_H
