//===- dist/Shard.h - Worker-side transport for sharded runs ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker-process side of the multi-process sharded exploration
/// (DESIGN.md §10): a ShardIo implementation over one Unix-domain socket
/// to the coordinator. Non-owned successors accumulate in per-destination
/// outboxes and are flushed as FrontierBatch frames when a batch grows
/// past a size threshold or on the next pump; status reports are sent
/// when the snapshot changes, rate-limited while busy but eagerly when
/// idle so the coordinator's termination detection converges.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_DIST_SHARD_H
#define FCSL_DIST_SHARD_H

#include "dist/Wire.h"

#include <chrono>

namespace fcsl {
namespace dist {

class SocketShardIo final : public ShardIo {
public:
  /// Takes ownership of \p Fd (the worker's end of the socket pair) and
  /// announces itself with a Hello frame.
  SocketShardIo(int Fd, unsigned ShardId, unsigned NShards);
  ~SocketShardIo() override;

  void send(unsigned Dest, std::vector<uint8_t> ConfigBytes) override;
  ShardCommand pump(const ShardStatus &Status,
                    std::vector<std::vector<uint8_t>> &Incoming) override;

  /// Flattens \p R into a Verdict carrying this transport's counters and
  /// shard id.
  VerdictMsg makeVerdict(const RunResult &R) const;

  /// Ships obligation-cache records this worker appended (drainPending on
  /// its store) so the coordinator can merge them. Call before
  /// sendVerdict; an empty delta is not sent.
  void sendCacheDelta(const CacheDeltaMsg &M);

  /// Flushes the outboxes and writes the final Verdict frame.
  void sendVerdict(const VerdictMsg &M);

private:
  void flushOutbox(unsigned Dest);
  void flushAll();
  /// Blocking write of a whole buffer. A worker whose coordinator is gone
  /// has no one to report to: it exits with status 3 rather than explore
  /// an orphaned shard forever.
  void writeAll(const std::vector<uint8_t> &Bytes);

  int Fd;
  unsigned Id;
  std::vector<FrontierBatchMsg> Outbox; ///< one per destination shard.
  std::vector<size_t> OutboxBytes;
  FrameBuffer In;
  bool DrainSeen = false;
  bool DrainExhausted = false;
  StatsReportMsg LastReport;
  bool Reported = false;
  std::chrono::steady_clock::time_point LastReportTime;
  uint64_t SentBatches = 0;
  uint64_t SentBytes = 0;
};

} // namespace dist
} // namespace fcsl

#endif // FCSL_DIST_SHARD_H
