//===- dist/Coordinator.h - Fork/relay hub for sharded runs -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator of the multi-process sharded exploration (DESIGN.md
/// §10). distributedExplore() forks N worker processes — each running
/// exploreShard() over one socket pair — relays FrontierBatch frames
/// between them, detects distributed termination, and merges the per-
/// shard Verdicts into one RunResult that is bit-identical to the
/// in-process engine's for complete explorations.
///
/// Termination detection is Mattern-style counting adapted to the star
/// topology: the hub counts, per worker w, the configs it has received
/// from w (RecvFrom[w]) and the configs it has queued toward w
/// (RelayedTo[w]). The fleet has terminated when every worker's latest
/// report says Idle with SentConfigs == RecvFrom[w] and RecvConfigs ==
/// RelayedTo[w]. Soundness: sockets are FIFO and a worker flushes its
/// outboxes before the report that counts them, so when the equalities
/// hold there is no config in flight in either direction — every sent
/// config was relayed, every relayed config was injected, and every
/// injected config was either deduplicated or fully expanded (the worker
/// is idle). No new message can be generated, so idleness is stable.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_DIST_COORDINATOR_H
#define FCSL_DIST_COORDINATOR_H

#include "prog/Engine.h"

#include <array>

namespace fcsl {
namespace dist {

/// Per-shard exchange statistics of the most recent distributed run.
struct ShardExchange {
  uint32_t ShardId = 0;
  uint64_t Expanded = 0;
  uint64_t SentConfigs = 0;
  uint64_t RecvConfigs = 0;
  uint64_t SentBatches = 0;
  uint64_t SentBytes = 0;
  uint64_t SuppressedSends = 0; ///< re-sends the sender filter swallowed.
  uint64_t DictNodes = 0;       ///< distinct nodes in its send dictionaries.
  uint64_t DictDefBytes = 0;    ///< definition-stream bytes it shipped.
  uint64_t DictRefBytes = 0;    ///< reference-stream bytes it shipped.
  uint64_t MaxRssKb = 0; ///< the worker process's peak RSS (ru_maxrss).
};

/// Process-wide transport statistics over every distributed run so far
/// (reported by `fcsl-verify --shards=N --stats` and the benchmarks).
struct FleetStats {
  uint64_t Fleets = 0;   ///< distributed runs completed.
  uint64_t Configs = 0;  ///< frontier configs relayed between shards.
  uint64_t Messages = 0; ///< batch frames relayed.
  uint64_t Bytes = 0;    ///< relayed frame bytes.
  uint64_t CacheRecordsMerged = 0; ///< worker cache records folded into
                                   ///< the hub's obligation store.
  /// Duplicate configs the hub dropped instead of relaying (fleet-wide
  /// fingerprint dedup, active when the reduction mode is Off — each drop
  /// is booked as the dedup hit the owner would have counted).
  uint64_t RelayDroppedDupes = 0;
  /// Frames/bytes the hub received, indexed by MsgType tag (1 ..
  /// MaxKnownMsgTag; index 0 unused). The full wire table `--stats`
  /// prints.
  std::array<uint64_t, 16> RecvFrames{};
  std::array<uint64_t, 16> RecvBytes{};
  /// Peak over runs of the *sum* of the run's child peak RSS values — the
  /// fleet's aggregate footprint — and of a single child's peak.
  uint64_t ChildRssKbSum = 0;
  uint64_t ChildRssKbMax = 0;
  std::vector<ShardExchange> LastRun; ///< per-shard view of the last run.
};
FleetStats fleetTotals();

/// Explores \p Root across \p NShards forked worker processes. Same
/// contract as fcsl::explore(); `Opts.Por` may still be Default (it is
/// resolved once, before forking, so every shard agrees). Falls back to
/// the in-process engine if workers cannot be forked. A worker that dies
/// before reporting a Verdict yields an *incomplete* result: Exhausted
/// is set and FailureNote names the lost shard, so verification sessions
/// fail loudly instead of trusting a partial exploration.
RunResult distributedExplore(const ProgRef &Root, const GlobalState &Initial,
                             const EngineOptions &Opts,
                             const VarEnv &InitialEnv, unsigned NShards);

/// Registers distributedExplore as the engine's sharded-exploration hook,
/// making `EngineOptions::Shards > 1` (or --shards / FCSL_SHARDS) take
/// effect on every explore() call.
void installDistributedEngine();

} // namespace dist
} // namespace fcsl

#endif // FCSL_DIST_COORDINATOR_H
