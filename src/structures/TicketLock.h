//===- structures/TicketLock.h - Ticketed lock (TLock) ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ticketed lock of Table 1 (after Dinsdale-Young et al.): the joint
/// heap holds `owner` and `next` counters plus a serving bit; threads draw
/// tickets (fetch-and-increment of `next`) into their self component — a
/// disjoint set of ticket tokens, the paper's "disjoint sets" PCM — and
/// enter the critical section when `owner` reaches their ticket.
/// Implements the same abstract lock interface as the CAS lock, which is
/// what lets clients switch implementations (Table 2's `3L`).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_TICKETLOCK_H
#define FCSL_STRUCTURES_TICKETLOCK_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// Builds a ticketed-lock protocol instance over labels \p Pv and \p Lk.
LockProtocol makeTicketLock(Label Pv, Label Lk, const ResourceModel &Model);

/// The LockFactory for the ticketed lock (Table 2's TLock column).
LockFactory ticketLockFactory();

/// The "Ticketed lock" row of Table 1.
VerificationSession makeTicketLockSession();

/// Registers the library in the global registry (Table 2 / Figure 5).
void registerTicketLockLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_TICKETLOCK_H
