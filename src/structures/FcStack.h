//===- structures/FcStack.h - Stack via flat combining ----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "FC-stack" row of Table 1: the flat combiner instantiated with a
/// sequential stack, "showing that the result has the same spec as a
/// concurrent stack implementation" (Section 4.2). Two clients run
/// flat_combine concurrently — each owning one publication slot — and the
/// combined history records both operations, whichever thread ended up
/// combining.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_FCSTACK_H
#define FCSL_STRUCTURES_FCSTACK_H

#include "structures/FlatCombiner.h"

namespace fcsl {

/// The "FC-stack" Table 1 row.
VerificationSession makeFcStackSession();

void registerFcStackLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_FCSTACK_H
