//===- structures/SpanTree.cpp - Concurrent spanning tree ------------------===//
//
// Part of fcsl-cpp. See SpanTree.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/SpanTree.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

#include <algorithm>

using namespace fcsl;

namespace {

/// The marked-node sets in a view at label sp.
PtrSet selfMarked(const View &S, Label Sp) {
  return S.self(Sp).getPtrSet();
}

PtrSet unionSets(const PtrSet &A, const PtrSet &B) {
  PtrSet Out = A;
  Out.insert(B.begin(), B.end());
  return Out;
}

/// Footprint field masks for graph cells (NodeCell has three independent
/// fields; see Footprint.h on field-masked joint atoms).
constexpr uint8_t FpLeft = 1;
constexpr uint8_t FpRight = 2;
constexpr uint8_t FpMarked = 4;

} // namespace

SpanTreeCase fcsl::makeSpanTreeCase(Label Pv, Label Sp) {
  SpanTreeCase Case;
  Case.Pv = Pv;
  Case.Sp = Sp;

  // --- Coherence (the paper's coh, Section 3.3) --------------------------
  auto Coh = [Sp](const View &S) {
    if (!S.hasLabel(Sp))
      return false;
    if (S.self(Sp).kind() != PCMKind::PtrSet ||
        S.other(Sp).kind() != PCMKind::PtrSet)
      return false;
    std::optional<PCMVal> Total = S.selfOtherJoin(Sp);
    if (!Total)
      return false;
    const Heap &G = S.joint(Sp);
    if (!isGraphHeap(G))
      return false;
    // x \in self \+ other  <->  mark g x.
    return markedNodes(G) == Total->getPtrSet();
  };

  auto Span = makeConcurroid(
      "SpanTree", {OwnedLabel{Sp, "sp", PCMType::ptrSet()}}, Coh);

  // --- marknode_trans -----------------------------------------------------
  // Footprint (the agent is the environment): scans every cell's Marked
  // bit, marks one, and grows its own contribution — Left/Right fields
  // are never touched, so marking commutes with edge nullification.
  Transition MarkT(
      "marknode_trans", TransitionKind::Internal,
      [Sp](const View &Pre) -> std::vector<View> {
        std::vector<View> Out;
        if (!Pre.hasLabel(Sp))
          return Out;
        const Heap &G = Pre.joint(Sp);
        for (const auto &Cell : G) {
          if (Cell.second.getNode().Marked)
            continue;
          View Post = Pre;
          Post.setJoint(Sp, markNode(G, Cell.first));
          PtrSet Mine = Pre.self(Sp).getPtrSet();
          Mine.insert(Cell.first);
          Post.setSelf(Sp, PCMVal::ofPtrSet(std::move(Mine)));
          Out.push_back(std::move(Post));
        }
        return Out;
      });
  MarkT.withFootprint(Footprint::none()
                          .readWrite(FpAtom::joint(Sp, FpMarked))
                          .readWrite(FpAtom::selfAux(Sp)));
  Span->addTransition(std::move(MarkT));

  // --- nullify_trans -------------------------------------------------------
  // Footprint: reads its own marked set and reads/writes the Left/Right
  // fields of cells it owns (x in the agent's self set is governed by that
  // contribution, and distinct agents' ptrset contributions are disjoint).
  Transition NullT(
      "nullify_trans", TransitionKind::Internal,
      [Sp](const View &Pre) -> std::vector<View> {
        std::vector<View> Out;
        if (!Pre.hasLabel(Sp))
          return Out;
        const Heap &G = Pre.joint(Sp);
        for (Ptr X : Pre.self(Sp).getPtrSet()) {
          for (Side S : {Side::Left, Side::Right}) {
            if (succOf(G, X, S).isNull())
              continue;
            View Post = Pre;
            Post.setJoint(Sp, nullEdge(G, X, S));
            Out.push_back(std::move(Post));
          }
        }
        return Out;
      });
  NullT.withFootprint(
      Footprint::none()
          .read(FpAtom::selfAux(Sp))
          .readWrite(FpAtom::joint(Sp, FpLeft | FpRight,
                                   FpRegion::SelfOwned)));
  Span->addTransition(std::move(NullT));

  ConcurroidRef PrivC = makePriv(Pv);
  Case.Span = Span;
  Case.Open = entangle(PrivC, Span);
  Case.PrivOnly = PrivC;

  // --- Actions (Section 3.4) ----------------------------------------------
  Case.TryMark = makeAction(
      "trymark", Case.Open, 1,
      [Sp](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        Ptr X = Args[0].getPtr();
        const Heap &G = Pre.joint(Sp);
        if (!G.contains(X))
          return std::nullopt; // Precondition: x \in dom (joint s1).
        if (G.lookup(X).getNode().Marked)
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        View Post = Pre;
        Post.setJoint(Sp, markNode(G, X));
        PtrSet Mine = Pre.self(Sp).getPtrSet();
        Mine.insert(X);
        Post.setSelf(Sp, PCMVal::ofPtrSet(std::move(Mine)));
        return std::vector<ActOutcome>{{Val::ofBool(true), std::move(Post)}};
      },
      // Static: may touch any cell's Marked bit plus own contribution.
      // Dynamically the cell is known, but stays FpRegion::Any — x may be
      // another agent's node (that is the whole point of trymark's race).
      Footprint::none()
          .readWrite(FpAtom::joint(Sp, FpMarked))
          .readWrite(FpAtom::selfAux(Sp)),
      [Sp](const View &, const std::vector<Val> &Args) -> Footprint {
        if (!Args[0].isPtr())
          return Footprint::none(); // Unsafe in every state: no footprint.
        return Footprint::none()
            .readWrite(FpAtom::jointCell(Sp, Args[0].getPtr(), FpMarked))
            .readWrite(FpAtom::selfAux(Sp));
      });

  auto MakeReadChild = [Sp, &Case](const char *Name, Side S) {
    return makeAction(
        Name, Case.Open, 1,
        [Sp, S](const View &Pre, const std::vector<Val> &Args)
            -> std::optional<std::vector<ActOutcome>> {
          if (!Args[0].isPtr())
            return std::nullopt;
          Ptr X = Args[0].getPtr();
          if (!Pre.self(Sp).getPtrSet().count(X))
            return std::nullopt; // Precondition: x \in self.
          return std::vector<ActOutcome>{
              {Val::ofPtr(succOf(Pre.joint(Sp), X, S)), Pre}};
        },
        // Safety needs only the own marked set; the edge read is confined
        // to one Left/Right field of a cell the agent owns (x in self).
        Footprint::none()
            .read(FpAtom::selfAux(Sp))
            .read(FpAtom::joint(Sp, FpLeft | FpRight, FpRegion::SelfOwned)),
        [Sp, S](const View &, const std::vector<Val> &Args) -> Footprint {
          if (!Args[0].isPtr())
            return Footprint::none();
          return Footprint::none()
              .read(FpAtom::selfAux(Sp))
              .read(FpAtom::jointCell(Sp, Args[0].getPtr(),
                                      S == Side::Left ? FpLeft : FpRight,
                                      FpRegion::SelfOwned));
        });
  };
  Case.ReadChildL = MakeReadChild("read_child_l", Side::Left);
  Case.ReadChildR = MakeReadChild("read_child_r", Side::Right);

  auto MakeNullify = [Sp, &Case](const char *Name, Side S) {
    return makeAction(
        Name, Case.Open, 1,
        [Sp, S](const View &Pre, const std::vector<Val> &Args)
            -> std::optional<std::vector<ActOutcome>> {
          if (!Args[0].isPtr())
            return std::nullopt;
          Ptr X = Args[0].getPtr();
          if (!Pre.self(Sp).getPtrSet().count(X))
            return std::nullopt; // Precondition: x \in self.
          View Post = Pre;
          Post.setJoint(Sp, nullEdge(Pre.joint(Sp), X, S));
          return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
        },
        Footprint::none()
            .read(FpAtom::selfAux(Sp))
            .readWrite(
                FpAtom::joint(Sp, FpLeft | FpRight, FpRegion::SelfOwned)),
        [Sp, S](const View &, const std::vector<Val> &Args) -> Footprint {
          if (!Args[0].isPtr())
            return Footprint::none();
          return Footprint::none()
              .read(FpAtom::selfAux(Sp))
              .readWrite(FpAtom::jointCell(Sp, Args[0].getPtr(),
                                           S == Side::Left ? FpLeft : FpRight,
                                           FpRegion::SelfOwned));
        });
  };
  Case.NullifyL = MakeNullify("nullify_l", Side::Left);
  Case.NullifyR = MakeNullify("nullify_r", Side::Right);

  // --- The span program (Figure 3) ----------------------------------------
  ExprRef X = Expr::var("x");
  ProgRef MarkedBranch = Prog::bind(
      Prog::act(Case.ReadChildL, {X}), "xl",
      Prog::bind(
          Prog::act(Case.ReadChildR, {X}), "xr",
          Prog::bind(
              Prog::par(Prog::call("span", {Expr::var("xl")}),
                        Prog::call("span", {Expr::var("xr")})),
              "rs",
              Prog::seq(
                  Prog::ifThenElse(Expr::notE(Expr::fst(Expr::var("rs"))),
                                   Prog::act(Case.NullifyL, {X}),
                                   Prog::retUnit()),
                  Prog::seq(
                      Prog::ifThenElse(
                          Expr::notE(Expr::snd(Expr::var("rs"))),
                          Prog::act(Case.NullifyR, {X}),
                          Prog::retUnit()),
                      Prog::ret(Expr::litBool(true)))))));

  ProgRef SpanBody = Prog::ifThenElse(
      Expr::isNull(X), Prog::ret(Expr::litBool(false)),
      Prog::bind(Prog::act(Case.TryMark, {X}), "b",
                 Prog::ifThenElse(Expr::var("b"), MarkedBranch,
                                  Prog::ret(Expr::litBool(false)))));
  Case.Defs.define("span", FuncDef{{"x"}, SpanBody});
  return Case;
}

GlobalState fcsl::spanOpenState(const SpanTreeCase &C, const Heap &G,
                                const PtrSet &EnvMarked) {
  Heap Marked = G;
  for (Ptr X : EnvMarked)
    Marked = markNode(Marked, X);
  GlobalState GS;
  GS.addLabel(C.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(C.Sp, PCMType::ptrSet(), std::move(Marked),
              PCMVal::ofPtrSet(EnvMarked), /*EnvClosed=*/false);
  return GS;
}

GlobalState fcsl::spanRootState(const SpanTreeCase &C, const Heap &G) {
  GlobalState GS;
  GS.addLabel(C.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.setSelf(C.Pv, rootThread(), PCMVal::ofHeap(G));
  return GS;
}

ProgRef fcsl::makeSpanRootProg(const SpanTreeCase &C, Ptr Root) {
  HideSpec Spec;
  Spec.Pv = C.Pv;
  Spec.Hidden = C.Sp;
  Spec.SelfType = PCMType::ptrSet();
  Spec.Installed = C.Span;
  // The decoration predicate of span_root (graph_dec): donate the whole
  // private heap, provided it is graph-shaped.
  Spec.ChooseDonation = [](const Heap &Mine) -> std::optional<Heap> {
    if (!isGraphHeap(Mine))
      return std::nullopt;
    return Mine;
  };
  Spec.InitSelf = PCMVal::ofPtrSet({});
  return Prog::hide(std::move(Spec),
                    Prog::call("span", {Expr::litPtr(Root)}));
}

bool fcsl::spanSubgraphRel(Label Sp, const View &S1, const View &S2) {
  if (!S1.hasLabel(Sp) || !S2.hasLabel(Sp))
    return false;
  const Heap &G1 = S1.joint(Sp);
  const Heap &G2 = S2.joint(Sp);
  if (!isSubgraphEvolution(G1, G2))
    return false;
  // Self- and other-marked sets only grow.
  for (Ptr X : S1.self(Sp).getPtrSet())
    if (!S2.self(Sp).getPtrSet().count(X))
      return false;
  for (Ptr X : S1.other(Sp).getPtrSet())
    if (!S2.other(Sp).getPtrSet().count(X))
      return false;
  return true;
}

bool fcsl::spanTpPost(const SpanTreeCase &C, Ptr X, const Val &R,
                      const View &I, const View &F) {
  if (!R.isBool())
    return false;
  if (!spanSubgraphRel(C.Sp, I, F))
    return false;
  const Heap &G1 = I.joint(C.Sp);
  const Heap &G2 = F.joint(C.Sp);
  const PtrSet SelfI = selfMarked(I, C.Sp);
  const PtrSet SelfF = selfMarked(F, C.Sp);

  if (!R.getBool()) {
    // r = false: x is null or already marked; nothing newly self-marked.
    if (!(X.isNull() || nodeMarked(G2, X)))
      return false;
    return SelfF == SelfI;
  }

  // r = true: the freshly marked nodes t form a maximal tree with root x,
  // whose front in the initial graph is marked (by someone).
  if (X.isNull())
    return false;
  PtrSet T;
  for (Ptr N : SelfF)
    if (!SelfI.count(N))
      T.insert(N);
  if (!std::includes(SelfF.begin(), SelfF.end(), SelfI.begin(),
                     SelfI.end()))
    return false;
  if (!isTreeIn(G2, X, T) || !isMaximal(G2, T))
    return false;
  PtrSet MarkedF = unionSets(SelfF, F.other(C.Sp).getPtrSet());
  for (Ptr N : T)
    for (Ptr Succ : succsOf(G1, N))
      if (!MarkedF.count(Succ))
        return false;
  return true;
}

std::vector<View> fcsl::spanSampleViews(const SpanTreeCase &C,
                                        const Heap &G) {
  std::vector<View> Out;
  std::vector<Ptr> Nodes = G.domain();
  size_t N = Nodes.size();
  assert(N <= 10 && "sample views need a small graph");
  // Each node is unmarked (0), self-marked (1) or other-marked (2).
  std::vector<unsigned> Assign(N, 0);
  while (true) {
    Heap Marked = G;
    PtrSet Mine, Theirs;
    for (size_t I = 0; I < N; ++I) {
      if (Assign[I] == 0)
        continue;
      Marked = markNode(Marked, Nodes[I]);
      (Assign[I] == 1 ? Mine : Theirs).insert(Nodes[I]);
    }
    View S;
    S.addLabel(C.Pv, LabelSlice{PCMVal::ofHeap(Heap()), Heap(),
                                PCMVal::ofHeap(Heap())});
    S.addLabel(C.Sp, LabelSlice{PCMVal::ofPtrSet(std::move(Mine)),
                                std::move(Marked),
                                PCMVal::ofPtrSet(std::move(Theirs))});
    Out.push_back(std::move(S));
    // Next ternary assignment.
    size_t I = 0;
    while (I < N && Assign[I] == 2)
      Assign[I++] = 0;
    if (I == N)
      break;
    ++Assign[I];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label SpLbl = 2;

/// A three-node test graph with a diamond-ish shape and a back edge:
/// 1 -> (2, 3), 2 -> (3, null), 3 -> (1, null).
Heap threeNodeGraph() {
  return buildGraph({GraphNode{Ptr(1), Ptr(2), Ptr(3)},
                     GraphNode{Ptr(2), Ptr(3), Ptr::null()},
                     GraphNode{Ptr(3), Ptr(1), Ptr::null()}});
}

} // namespace

VerificationSession fcsl::makeSpanTreeSession() {
  VerificationSession Session("Spanning tree");
  auto Case = std::make_shared<SpanTreeCase>(makeSpanTreeCase(PvLbl, SpLbl));
  auto Samples = std::make_shared<std::vector<View>>(
      spanSampleViews(*Case, threeNodeGraph()));

  // --- Libs: the graph library lemmas (Section 3.2) ----------------------
  std::vector<PCMVal> LawSample = {
      PCMVal::ofPtrSet({}), PCMVal::singletonPtr(Ptr(1)),
      PCMVal::singletonPtr(Ptr(2)), PCMVal::ofPtrSet({Ptr(1), Ptr(2)}),
      PCMVal::ofPtrSet({Ptr(2), Ptr(3)})};
  Session.addObligation(
      ObCategory::Libs, "ptrset_pcm_laws",
      pcmLawInputs(PCMType::ptrSet(), LawSample, 1).text("cancellative"),
      [LawSample] {
        PCMLawReport R = checkPCMLaws(*PCMType::ptrSet(), LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  Session.addObligation(ObCategory::Libs, "lemma_max_tree2",
                        ObligationInputs(ObKind::Check)
                            .text("lemma_max_tree2")
                            .num(0xfc51)
                            .num(60)
                            .num(5)
                            .rev(1),
                        [] {
    // Sweep the lemma over random graphs and candidate subtree pairs.
    Rng R(0xfc51);
    ObligationResult O;
    for (unsigned Iter = 0; Iter < 60; ++Iter) {
      Heap G = randomGraph(5, R, /*ConnectedFromRoot=*/false);
      for (const auto &Cell : G) {
        Ptr X = Cell.first;
        Ptr Y1 = Cell.second.getNode().Left;
        Ptr Y2 = Cell.second.getNode().Right;
        PtrSet TY1 = Y1.isNull() ? PtrSet{} : reachableFrom(G, Y1);
        PtrSet TY2 = Y2.isNull() ? PtrSet{} : reachableFrom(G, Y2);
        ++O.Checks;
        if (!lemmaMaxTree2(G, X, Y1, Y2, TY1, TY2)) {
          O.Passed = false;
          O.Note = "max_tree2 counterexample found";
          return O;
        }
      }
    }
    return O;
  });

  Session.addObligation(ObCategory::Libs, "lemma_maximal_tree_spans",
                        ObligationInputs(ObKind::Check)
                            .text("lemma_maximal_tree_spans")
                            .num(0x51ab)
                            .num(60)
                            .num(5)
                            .rev(1),
                        [] {
    Rng R(0x51ab);
    ObligationResult O;
    for (unsigned Iter = 0; Iter < 60; ++Iter) {
      Heap G = randomGraph(5, R, /*ConnectedFromRoot=*/true);
      PtrSet All = reachableFrom(G, Ptr(1));
      ++O.Checks;
      if (!lemmaMaximalTreeSpans(G, Ptr(1), All)) {
        O.Passed = false;
        O.Note = "maximal-tree-spans counterexample";
        return O;
      }
    }
    return O;
  });

  // --- Conc: SpanTree metatheory ------------------------------------------
  Session.addObligation(ObCategory::Conc, "spantree_metatheory",
                        sampleInputs(ObKind::Metatheory, *Case->Open,
                                     *Samples, 1),
                        [Case, Samples] {
    return toObligation(checkConcurroidWellFormed(*Case->Open, *Samples));
  });

  // --- Acts ----------------------------------------------------------------
  std::vector<ActionArgs> NodeArgs;
  for (uint32_t I = 0; I <= 3; ++I)
    NodeArgs.push_back({Val::ofPtr(Ptr(I))});

  Session.addObligation(ObCategory::Acts, "trymark_wf",
                        actionInputs(*Case->TryMark, *Samples, NodeArgs, 1)
                            .text("wf"),
                        [Case, Samples, NodeArgs] {
    return toObligation(
        checkActionWellFormed(*Case->TryMark, *Samples, NodeArgs));
  });
  Session.addObligation(ObCategory::Acts, "trymark_total_on_nodes",
                        actionInputs(*Case->TryMark, *Samples, NodeArgs, 1)
                            .text("total"),
                        [Case, Samples, NodeArgs] {
    Label Sp = Case->Sp;
    return toObligation(checkActionTotality(
        *Case->TryMark, *Samples, NodeArgs,
        [Sp](const View &S, const ActionArgs &Args) {
          return Args[0].isPtr() && S.joint(Sp).contains(Args[0].getPtr());
        }));
  });
  Session.addObligation(ObCategory::Acts, "read_child_wf",
                        actionInputs(*Case->ReadChildL, *Samples,
                                     NodeArgs, 1)
                            .text(Case->ReadChildR->name())
                            .num(Case->ReadChildR->arity())
                            .text("wf"),
                        [Case, Samples, NodeArgs] {
    MetaReport R;
    R.absorb(checkActionWellFormed(*Case->ReadChildL, *Samples, NodeArgs));
    R.absorb(checkActionWellFormed(*Case->ReadChildR, *Samples, NodeArgs));
    return toObligation(R);
  });
  Session.addObligation(ObCategory::Acts, "nullify_wf",
                        actionInputs(*Case->NullifyL, *Samples, NodeArgs, 1)
                            .text(Case->NullifyR->name())
                            .num(Case->NullifyR->arity())
                            .text("wf"),
                        [Case, Samples, NodeArgs] {
    MetaReport R;
    R.absorb(checkActionWellFormed(*Case->NullifyL, *Samples, NodeArgs));
    R.absorb(checkActionWellFormed(*Case->NullifyR, *Samples, NodeArgs));
    return toObligation(R);
  });

  // --- Stab -----------------------------------------------------------------
  Assertion NodeInDom = jointContains(Case->Sp, Ptr(2));
  Session.addObligation(ObCategory::Stab, "node_in_dom_stable",
                        stabilityInputs(*Case->Open, NodeInDom.name(),
                                        *Samples, 1),
                        [Case, Samples, NodeInDom] {
    return toObligation(checkStability(NodeInDom, *Case->Open, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "subgraph_steps",
                        stabilityInputs(*Case->Open, "subgraph",
                                        *Samples, 1),
                        [Case, Samples] {
    // Lemma subgraph_steps: env_steps s1 s2 -> subgraph g1 g2.
    Label Sp = Case->Sp;
    return toObligation(checkRelationStability(
        [Sp](const View &Seed, const View &S) {
          return spanSubgraphRel(Sp, Seed, S);
        },
        "subgraph", *Case->Open, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "my_marks_stay_mine",
                        stabilityInputs(*Case->Open,
                                        "node 1 is self-marked",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Sp = Case->Sp;
    Assertion Mine("node 1 is self-marked", [Sp](const View &S) {
      return S.self(Sp).getPtrSet().count(Ptr(1)) != 0;
    });
    return toObligation(checkStability(Mine, *Case->Open, *Samples));
  });

  // --- Main: span_tp (open world) and span_root_tp (hidden) ----------------
  // Composite units (several triples under one verdict): the declared
  // inputs enumerate exactly the (start ptr, initial state) grid the
  // closure sweeps.
  ObligationInputs SpanTpIn(ObKind::Triple);
  SpanTpIn.text("span_tp");
  SpanTpIn.mix(Case->Open->fingerprint());
  SpanTpIn.mix(fpOfDefs(Case->Defs));
  for (Ptr X : {Ptr::null(), Ptr(1), Ptr(2)})
    for (const PtrSet &EnvMarked :
         {PtrSet{}, PtrSet{Ptr(3)}, PtrSet{Ptr(2), Ptr(3)}}) {
      SpanTpIn.mix(codecFp(Val::ofPtr(X)));
      SpanTpIn.mix(
          codecFp(spanOpenState(*Case, threeNodeGraph(), EnvMarked)));
    }
  SpanTpIn.rev(1);
  Session.addObligation(ObCategory::Main, "span_tp_open_world", SpanTpIn,
                        [Case] {
    VerifyResult Sum;
    EngineCounters Counters;
    Heap G = threeNodeGraph();
    for (Ptr X : {Ptr::null(), Ptr(1), Ptr(2)}) {
      for (const PtrSet &EnvMarked :
           {PtrSet{}, PtrSet{Ptr(3)}, PtrSet{Ptr(2), Ptr(3)}}) {
        Spec S;
        S.Name = "span_tp";
        S.C = Case->Open;
        Label Sp = Case->Sp;
        S.Pre = Assertion("x null or in graph", [Sp, X](const View &V) {
          return X.isNull() || V.joint(Sp).contains(X);
        });
        S.PostName = "Figure 4 postcondition";
        S.Post = [Case, X](const Val &R, const View &I, const View &F) {
          return spanTpPost(*Case, X, R, I, F);
        };
        ProgRef Main = Prog::call("span", {Expr::litPtr(X)});
        EngineOptions Opts;
        Opts.Ambient = Case->Open;
        Opts.EnvInterference = true;
        Opts.Defs = &Case->Defs;
        VerifyResult R = verifyTriple(
            Main, S, {VerifyInstance{spanOpenState(*Case, G, EnvMarked),
                                     {}}},
            Opts);
        Sum.ConfigsExplored += R.ConfigsExplored;
        Sum.TerminalsChecked += R.TerminalsChecked;
        Counters += R.counters();
        if (!R.Holds) {
          ObligationResult O;
          O.Passed = false;
          O.Checks = Sum.ConfigsExplored;
          O.Note = R.FailureNote;
          O.Counters = Counters;
          return O;
        }
      }
    }
    ObligationResult O;
    O.Checks = Sum.ConfigsExplored;
    O.Counters = Counters;
    return O;
  });

  std::vector<Heap> RootGraphs = {figure2Graph(), threeNodeGraph()};
  {
    Rng R(0x5eed);
    RootGraphs.push_back(randomGraph(4, R, /*ConnectedFromRoot=*/true));
  }
  ObligationInputs SpanRootIn(ObKind::Triple);
  SpanRootIn.text("span_root_tp");
  SpanRootIn.mix(Case->PrivOnly->fingerprint());
  SpanRootIn.mix(fpOfDefs(Case->Defs));
  SpanRootIn.mix(makeSpanRootProg(*Case, Ptr(1))->fingerprint());
  for (const Heap &G : RootGraphs)
    SpanRootIn.mix(codecFp(spanRootState(*Case, G)));
  SpanRootIn.rev(1);
  Session.addObligation(ObCategory::Main, "span_root_spanning_tree",
                        SpanRootIn, [Case, RootGraphs] {
    uint64_t Checks = 0;
    EngineCounters Counters;
    const std::vector<Heap> &Graphs = RootGraphs;
    for (const Heap &G : Graphs) {
      Spec S;
      S.Name = "span_root_tp";
      S.C = Case->PrivOnly;
      Label Pv = Case->Pv;
      Heap G1 = G;
      S.Pre = Assertion("private graph, connected from root",
                        [Pv, G1](const View &V) {
                          return V.self(Pv).getHeap() == G1 &&
                                 isConnectedFrom(G1, Ptr(1));
                        });
      S.PostName = "the private heap is a spanning tree of the input";
      S.Post = [Pv, G1](const Val &Res, const View &, const View &F) {
        if (!Res.isBool() || !Res.getBool())
          return false;
        const Heap &G2 = F.self(Pv).getHeap();
        if (G1.domain() != G2.domain())
          return false;
        // Edges only nullified.
        for (const auto &Cell : G1) {
          const NodeCell &Before = Cell.second.getNode();
          const NodeCell &After = G2.lookup(Cell.first).getNode();
          if (After.Left != Before.Left && !After.Left.isNull())
            return false;
          if (After.Right != Before.Right && !After.Right.isNull())
            return false;
        }
        // The final topology is a tree covering every node.
        PtrSet All;
        for (const auto &Cell : G2)
          All.insert(Cell.first);
        return isTreeIn(G2, Ptr(1), All);
      };
      ProgRef Main = makeSpanRootProg(*Case, Ptr(1));
      EngineOptions Opts;
      Opts.Ambient = Case->PrivOnly;
      Opts.EnvInterference = false;
      Opts.Defs = &Case->Defs;
      VerifyResult VR = verifyTriple(
          Main, S, {VerifyInstance{spanRootState(*Case, G), {}}}, Opts);
      Checks += VR.ConfigsExplored;
      Counters += VR.counters();
      if (!VR.Holds) {
        ObligationResult O;
        O.Passed = false;
        O.Checks = Checks;
        O.Note = VR.FailureNote;
        O.Counters = Counters;
        return O;
      }
    }
    ObligationResult O;
    O.Checks = Checks;
    O.Counters = Counters;
    return O;
  });

  return Session;
}

void fcsl::registerSpanTreeLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Spanning tree",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"SpanTree", false}},
      {}});
}
