//===- structures/FlatCombiner.cpp - Flat combining ------------------------===//
//
// Part of fcsl-cpp. See FlatCombiner.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/FlatCombiner.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

using namespace fcsl;

namespace {

const int64_t EnvPushValue = 5;

/// self = (mutex, (slots, hist)) accessors.
PCMVal mxOf(const PCMVal &Self) { return Self.first(); }
const std::set<Ptr> &slotsOf(const PCMVal &Self) {
  return Self.second().first().getPtrSet();
}
const History &histOf(const PCMVal &Self) {
  return Self.second().second().getHist();
}

PCMVal makeSelf(PCMVal Mx, std::set<Ptr> Slots, History H) {
  return PCMVal::makePair(
      std::move(Mx), PCMVal::makePair(PCMVal::ofPtrSet(std::move(Slots)),
                                      PCMVal::ofHist(std::move(H))));
}

bool isIdleSlot(const Val &V) { return V.isUnit(); }
bool isRequestSlot(const Val &V) {
  return V.isPair() && V.first().isInt();
}
bool isDoneSlot(const Val &V) { return V.isPair() && V.first().isBool(); }

Val makeRequest(int64_t Op, Val Arg) {
  return Val::pair(Val::ofInt(Op), std::move(Arg));
}

Val makeDone(Val Result, uint64_t Stamp, Val Before, Val After) {
  return Val::pair(
      Val::ofBool(true),
      Val::pair(std::move(Result),
                Val::pair(Val::ofInt(static_cast<int64_t>(Stamp)),
                          Val::pair(std::move(Before), std::move(After)))));
}

struct DoneParts {
  Val Result;
  uint64_t Stamp;
  HistEntry Entry;
};

std::optional<DoneParts> parseDone(const Val &V) {
  if (!isDoneSlot(V))
    return std::nullopt;
  const Val &Payload = V.second();
  if (!Payload.isPair() || !Payload.second().isPair() ||
      !Payload.second().first().isInt() ||
      !Payload.second().second().isPair())
    return std::nullopt;
  DoneParts Out;
  Out.Result = Payload.first();
  Out.Stamp =
      static_cast<uint64_t>(Payload.second().first().getInt());
  Out.Entry = HistEntry{Payload.second().second().first(),
                        Payload.second().second().second()};
  return Out;
}

/// Applies a sequential-stack operation to an abstract cons-list state.
std::pair<Val, Val> applyOp(int64_t Op, const Val &Arg, const Val &State) {
  if (Op == FcPush)
    return {Val::unit(), Val::pair(Arg, State)};
  assert(Op == FcPop && "unknown operation");
  if (State.isUnit())
    return {Val::ofInt(0), State}; // Pop on empty: marker 0, no change.
  return {State.first(), State.second()};
}

/// Checks the cons-list shape of the abstract stack value.
bool isStackVal(const Val &V) {
  Val Cur = V;
  while (Cur.isPair()) {
    if (!Cur.first().isInt())
      return false;
    Cur = Cur.second();
  }
  return Cur.isUnit();
}

} // namespace

FlatCombinerCase fcsl::makeFlatCombinerCase(Label Fc, uint64_t EnvHistCap) {
  FlatCombinerCase Case;
  Case.Fc = Fc;
  Case.LockCell = Ptr(9600 + Fc);
  Case.Slot1 = Ptr(9601 + Fc);
  Case.Slot2 = Ptr(9602 + Fc);
  Case.StackCell = Ptr(9603 + Fc);
  Case.FullCell = Ptr(9604 + Fc);
  Ptr LockP = Case.LockCell, S1 = Case.Slot1, S2 = Case.Slot2,
      StkP = Case.StackCell, FullP = Case.FullCell;

  PCMTypeRef SelfType = PCMType::pairOf(
      PCMType::mutex(),
      PCMType::pairOf(PCMType::ptrSet(), PCMType::hist()));

  /// Collects the entries parked in Done slots.
  auto PendingEntries =
      [S1, S2](const Heap &Joint) -> std::vector<std::pair<uint64_t,
                                                           HistEntry>> {
    std::vector<std::pair<uint64_t, HistEntry>> Out;
    for (Ptr Slot : {S1, S2}) {
      const Val *Cell = Joint.tryLookup(Slot);
      if (!Cell)
        continue;
      std::optional<DoneParts> Done = parseDone(*Cell);
      if (Done)
        Out.emplace_back(Done->Stamp, Done->Entry);
    }
    return Out;
  };

  /// The full history: both contributions plus parked entries; nullopt on
  /// stamp clashes.
  auto FullHistory = [Fc, PendingEntries](
                         const View &S) -> std::optional<History> {
    std::optional<History> Combined =
        History::join(histOf(S.self(Fc)), histOf(S.other(Fc)));
    if (!Combined)
      return std::nullopt;
    for (const auto &Parked : PendingEntries(S.joint(Fc))) {
      if (Combined->contains(Parked.first))
        return std::nullopt;
      Combined->add(Parked.first, Parked.second);
    }
    return Combined;
  };

  auto Coh = [Fc, LockP, S1, S2, StkP, FullP, SelfType,
              FullHistory](const View &S) {
    if (!S.hasLabel(Fc))
      return false;
    if (!SelfType->admits(S.self(Fc)) || !SelfType->admits(S.other(Fc)))
      return false;
    std::optional<PCMVal> Total = S.selfOtherJoin(Fc);
    if (!Total)
      return false;
    const Heap &Joint = S.joint(Fc);
    if (Joint.size() != 5)
      return false;
    const Val *Lock = Joint.tryLookup(LockP);
    const Val *Stack = Joint.tryLookup(StkP);
    const Val *Slot1V = Joint.tryLookup(S1);
    const Val *Slot2V = Joint.tryLookup(S2);
    const Val *FullV = Joint.tryLookup(FullP);
    if (!Lock || !Stack || !Slot1V || !Slot2V || !Lock->isBool())
      return false;
    if (!FullV || !FullV->isInt() || FullV->getInt() < 0)
      return false;
    if (!isStackVal(*Stack))
      return false;
    for (const Val *Slot : {Slot1V, Slot2V})
      if (!isIdleSlot(*Slot) && !isRequestSlot(*Slot) &&
          !parseDone(*Slot))
        return false;
    // The lock bit matches the ownership token.
    if (Lock->getBool() != mxOf(*Total).isOwn())
      return false;
    // Slots are partitioned between self and other.
    if (slotsOf(*Total) != std::set<Ptr>{S1, S2})
      return false;
    // The full history is continuous and tracks the stack state; the
    // entry counter equals its size (entries are created by combines and
    // only move between slots and self histories, never vanish).
    std::optional<History> Full = FullHistory(S);
    if (!Full || !Full->isContinuous())
      return false;
    if (static_cast<uint64_t>(FullV->getInt()) != Full->size())
      return false;
    if (!Full->isEmpty() &&
        !(Full->tryLookup(1)->Before == Val::unit()))
      return false;
    Val Last = Full->isEmpty() ? Val::unit()
                               : Full->tryLookup(Full->lastStamp())->After;
    return Last == *Stack;
  };

  auto FcC = makeConcurroid(
      "FlatCombine", {OwnedLabel{Fc, "fc", SelfType}}, Coh);

  // --- Commit helpers ------------------------------------------------------

  // Publishing a request into one of my idle slots.
  auto PublishCommit = [Fc](const View &Pre, Ptr Slot, int64_t Op,
                            Val Arg) -> std::optional<View> {
    if (!slotsOf(Pre.self(Fc)).count(Slot))
      return std::nullopt;
    const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
    if (!Cell || !isIdleSlot(*Cell))
      return std::nullopt;
    View Post = Pre;
    Heap Joint = Pre.joint(Fc);
    Joint.update(Slot, makeRequest(Op, std::move(Arg)));
    Post.setJoint(Fc, std::move(Joint));
    return Post;
  };

  // Combining one slot's request (the combiner holds the lock). The
  // abstract pre-state and the fresh stamp come from the stack cell and
  // the entry counter — coherence pins both to the full history, and
  // reading them instead keeps the commit's footprint off the histories
  // and the other slot.
  auto CombineCommit = [Fc, StkP, FullP](const View &Pre,
                                         Ptr Slot) -> std::optional<View> {
    if (!mxOf(Pre.self(Fc)).isOwn())
      return std::nullopt;
    const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
    if (!Cell || !isRequestSlot(*Cell))
      return std::nullopt;
    const Val *Stack = Pre.joint(Fc).tryLookup(StkP);
    const Val *Count = Pre.joint(Fc).tryLookup(FullP);
    if (!Stack || !Count || !Count->isInt() || Count->getInt() < 0)
      return std::nullopt;
    Val Before = *Stack;
    uint64_t Stamp = static_cast<uint64_t>(Count->getInt()) + 1;
    auto [Result, After] =
        applyOp(Cell->first().getInt(), Cell->second(), Before);
    View Post = Pre;
    Heap Joint = Pre.joint(Fc);
    Joint.update(StkP, After);
    Joint.update(FullP, Val::ofInt(static_cast<int64_t>(Stamp)));
    Joint.update(Slot, makeDone(Result, Stamp, Before, After));
    Post.setJoint(Fc, std::move(Joint));
    return Post;
  };

  // Collecting a Done slot: the helping hand-off — the parked entry moves
  // into the *requester's* self history.
  auto CollectCommit = [Fc](const View &Pre,
                            Ptr Slot) -> std::optional<View> {
    if (!slotsOf(Pre.self(Fc)).count(Slot))
      return std::nullopt;
    const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
    if (!Cell)
      return std::nullopt;
    std::optional<DoneParts> Done = parseDone(*Cell);
    if (!Done)
      return std::nullopt;
    View Post = Pre;
    Heap Joint = Pre.joint(Fc);
    Joint.update(Slot, Val::unit());
    Post.setJoint(Fc, std::move(Joint));
    History Mine = histOf(Pre.self(Fc));
    Mine.add(Done->Stamp, Done->Entry);
    Post.setSelf(Fc, makeSelf(mxOf(Pre.self(Fc)),
                              slotsOf(Pre.self(Fc)), std::move(Mine)));
    return Post;
  };

  auto LockCommit = [Fc, LockP](const View &Pre) -> std::optional<View> {
    const Val *Lock = Pre.joint(Fc).tryLookup(LockP);
    if (!Lock || Lock->getBool())
      return std::nullopt;
    View Post = Pre;
    Heap Joint = Pre.joint(Fc);
    Joint.update(LockP, Val::ofBool(true));
    Post.setJoint(Fc, std::move(Joint));
    Post.setSelf(Fc, makeSelf(PCMVal::mutexOwn(), slotsOf(Pre.self(Fc)),
                              histOf(Pre.self(Fc))));
    return Post;
  };

  auto ReleaseCommit = [Fc, LockP](const View &Pre) -> std::optional<View> {
    if (!mxOf(Pre.self(Fc)).isOwn())
      return std::nullopt;
    View Post = Pre;
    Heap Joint = Pre.joint(Fc);
    Joint.update(LockP, Val::ofBool(false));
    Post.setJoint(Fc, std::move(Joint));
    Post.setSelf(Fc, makeSelf(PCMVal::mutexFree(), slotsOf(Pre.self(Fc)),
                              histOf(Pre.self(Fc))));
    return Post;
  };

  // The entry counter, for the publish cap: one scalar read instead of
  // joining histories and scanning slots.
  auto FullCount = [Fc, FullP](const View &S) -> uint64_t {
    const Val *Count = S.joint(Fc).tryLookup(FullP);
    if (!Count || !Count->isInt() || Count->getInt() < 0)
      return UINT64_MAX;
    return static_cast<uint64_t>(Count->getInt());
  };

  // --- Footprints ----------------------------------------------------------
  // Slot cells are governed by the ptr-set component of the owner's
  // contribution, so an agent's own-slot touches carry the SelfOwned
  // region: two agents' publishes/collects never alias. The combiner
  // helps whichever slot holds a request, so its slot atoms stay Any.
  auto OwnSlot = [Fc](Ptr Slot) {
    return FpAtom::jointCell(Fc, Slot, FpFieldsAll, FpRegion::SelfOwned);
  };
  Footprint PublishStaticFp = Footprint::none()
                                  .read(FpAtom::selfAux(Fc))
                                  .read(FpAtom::jointCell(Fc, FullP))
                                  .readWrite(OwnSlot(S1))
                                  .readWrite(OwnSlot(S2));
  Footprint LockFp = Footprint::none()
                         .readWrite(FpAtom::jointCell(Fc, LockP))
                         .readWrite(FpAtom::selfAux(Fc));
  Footprint CombineStaticFp = Footprint::none()
                                  .read(FpAtom::selfAux(Fc))
                                  .readWrite(FpAtom::jointCell(Fc, S1))
                                  .readWrite(FpAtom::jointCell(Fc, S2))
                                  .readWrite(FpAtom::jointCell(Fc, StkP))
                                  .readWrite(FpAtom::jointCell(Fc, FullP));
  Footprint CollectStaticFp = Footprint::none()
                                  .readWrite(FpAtom::selfAux(Fc))
                                  .readWrite(OwnSlot(S1))
                                  .readWrite(OwnSlot(S2));

  // --- Transitions -----------------------------------------------------------
  FcC->addTransition(Transition(
      "fc_publish", TransitionKind::Internal,
      [PublishCommit, FullCount, Fc, EnvHistCap](const View &Pre)
          -> std::vector<View> {
        std::vector<View> Out;
        if (FullCount(Pre) >= EnvHistCap)
          return Out;
        for (Ptr Slot : slotsOf(Pre.self(Fc))) {
          std::optional<View> Push = PublishCommit(
              Pre, Slot, FcPush, Val::ofInt(EnvPushValue));
          if (Push)
            Out.push_back(std::move(*Push));
          std::optional<View> Pop =
              PublishCommit(Pre, Slot, FcPop, Val::ofInt(0));
          if (Pop)
            Out.push_back(std::move(*Pop));
        }
        return Out;
      },
      [PublishCommit, Fc](const View &Pre, const View &Post) {
        for (Ptr Slot : slotsOf(Pre.self(Fc))) {
          const Val *NewCell = Post.joint(Fc).tryLookup(Slot);
          if (!NewCell || !isRequestSlot(*NewCell))
            continue;
          std::optional<View> Candidate =
              PublishCommit(Pre, Slot, NewCell->first().getInt(),
                            NewCell->second());
          if (Candidate && *Candidate == Post)
            return true;
        }
        return false;
      }).withFootprint(
          PublishStaticFp,
          // Instances publish into the agent's own idle slots; the cap
          // check reads the entry counter.
          [Fc, FullP, OwnSlot](const View &Pre) {
            Footprint Fp = Footprint::none()
                               .read(FpAtom::selfAux(Fc))
                               .read(FpAtom::jointCell(Fc, FullP));
            for (Ptr Slot : slotsOf(Pre.self(Fc))) {
              const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
              if (Cell && isIdleSlot(*Cell))
                Fp.readWrite(OwnSlot(Slot));
            }
            return Fp;
          }));

  FcC->addTransition(Transition(
      "fc_lock", TransitionKind::Internal,
      [LockCommit](const View &Pre) -> std::vector<View> {
        std::optional<View> Post = LockCommit(Pre);
        if (!Post)
          return {};
        return {std::move(*Post)};
      }).withFootprint(LockFp));

  FcC->addTransition(Transition(
      "fc_combine", TransitionKind::Internal,
      [CombineCommit, S1, S2](const View &Pre) -> std::vector<View> {
        std::vector<View> Out;
        for (Ptr Slot : {S1, S2}) {
          std::optional<View> Post = CombineCommit(Pre, Slot);
          if (Post)
            Out.push_back(std::move(*Post));
        }
        return Out;
      }).withFootprint(
          CombineStaticFp,
          // Instances exist per request-holding slot; slots that may
          // gain requests later are the static footprint's concern
          // (Footprint.h's honesty contract is per-instance).
          [Fc, S1, S2, StkP, FullP](const View &Pre) {
            Footprint Fp = Footprint::none()
                               .read(FpAtom::selfAux(Fc))
                               .readWrite(FpAtom::jointCell(Fc, StkP))
                               .readWrite(FpAtom::jointCell(Fc, FullP));
            for (Ptr Slot : {S1, S2}) {
              const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
              if (Cell && isRequestSlot(*Cell))
                Fp.readWrite(FpAtom::jointCell(Fc, Slot));
            }
            return Fp;
          }));

  FcC->addTransition(Transition(
      "fc_release", TransitionKind::Internal,
      [ReleaseCommit](const View &Pre) -> std::vector<View> {
        std::optional<View> Post = ReleaseCommit(Pre);
        if (!Post)
          return {};
        return {std::move(*Post)};
      }).withFootprint(LockFp));

  FcC->addTransition(Transition(
      "fc_collect", TransitionKind::Internal,
      [CollectCommit, Fc](const View &Pre) -> std::vector<View> {
        std::vector<View> Out;
        for (Ptr Slot : slotsOf(Pre.self(Fc))) {
          std::optional<View> Post = CollectCommit(Pre, Slot);
          if (Post)
            Out.push_back(std::move(*Post));
        }
        return Out;
      }).withFootprint(
          CollectStaticFp,
          // Instances collect the agent's own Done slots; only a combine
          // (which writes the slot) can mint a new one.
          [Fc, OwnSlot](const View &Pre) {
            Footprint Fp =
                Footprint::none().readWrite(FpAtom::selfAux(Fc));
            for (Ptr Slot : slotsOf(Pre.self(Fc))) {
              const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
              if (Cell && parseDone(*Cell))
                Fp.readWrite(OwnSlot(Slot));
            }
            return Fp;
          }));

  Case.C = FcC;

  // --- Actions -----------------------------------------------------------
  // The action's static footprint drops the transition's entry-counter
  // read: thread publishes are uncapped (the program text bounds them).
  Case.Publish = makeAction(
      "fc_publish", Case.C, 3,
      [PublishCommit](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr() || !Args[1].isInt())
          return std::nullopt;
        std::optional<View> Post = PublishCommit(
            Pre, Args[0].getPtr(), Args[1].getInt(), Args[2]);
        if (!Post)
          return std::nullopt;
        return std::vector<ActOutcome>{{Val::unit(), std::move(*Post)}};
      },
      Footprint::none()
          .read(FpAtom::selfAux(Fc))
          .readWrite(OwnSlot(S1))
          .readWrite(OwnSlot(S2)),
      [Fc, OwnSlot](const View &,
                    const std::vector<Val> &Args) -> Footprint {
        Footprint Fp = Footprint::none().read(FpAtom::selfAux(Fc));
        if (Args.size() == 3 && Args[0].isPtr())
          Fp.readWrite(OwnSlot(Args[0].getPtr()));
        return Fp;
      });

  Case.TryLockFc = makeAction(
      "fc_try_lock", Case.C, 0,
      [LockCommit, Fc, LockP](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *Lock = Pre.joint(Fc).tryLookup(LockP);
        if (!Lock)
          return std::nullopt;
        if (Lock->getBool())
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        std::optional<View> Post = LockCommit(Pre);
        if (!Post)
          return std::nullopt;
        return std::vector<ActOutcome>{
            {Val::ofBool(true), std::move(*Post)}};
      },
      LockFp,
      // A failed probe only observes the held lock bit, mirroring the
      // failed-CAS treatment: steps independent of that read cannot
      // release the lock.
      [Fc, LockP, LockFp](const View &Pre,
                          const std::vector<Val> &) -> Footprint {
        if (Pre.hasLabel(Fc)) {
          const Val *Lock = Pre.joint(Fc).tryLookup(LockP);
          if (Lock && Lock->isBool() && Lock->getBool())
            return Footprint::none().read(FpAtom::jointCell(Fc, LockP));
        }
        return LockFp;
      });

  Case.CombineSlot = makeAction(
      "fc_combine_slot", Case.C, 1,
      [CombineCommit, Fc](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        if (!mxOf(Pre.self(Fc)).isOwn())
          return std::nullopt; // Combining without the lock: unsafe.
        std::optional<View> Post = CombineCommit(Pre, Args[0].getPtr());
        if (!Post)
          return std::vector<ActOutcome>{{Val::unit(), Pre}}; // No request.
        return std::vector<ActOutcome>{{Val::unit(), std::move(*Post)}};
      },
      CombineStaticFp,
      // Helping a slot with no request is a no-op that reads the slot
      // and the lock token; only the requester could change its own slot
      // under us, and it is spinning on us instead.
      [Fc, StkP, FullP, CombineStaticFp](
          const View &Pre, const std::vector<Val> &Args) -> Footprint {
        if (!Pre.hasLabel(Fc) || Args.size() != 1 || !Args[0].isPtr())
          return CombineStaticFp;
        Ptr Slot = Args[0].getPtr();
        Footprint Fp = Footprint::none().read(FpAtom::selfAux(Fc));
        const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
        if (!Cell)
          return CombineStaticFp;
        if (!isRequestSlot(*Cell))
          return Fp.read(FpAtom::jointCell(Fc, Slot));
        return Fp.readWrite(FpAtom::jointCell(Fc, Slot))
            .readWrite(FpAtom::jointCell(Fc, StkP))
            .readWrite(FpAtom::jointCell(Fc, FullP));
      });

  Case.ReleaseFc = makeAction(
      "fc_release", Case.C, 0,
      [ReleaseCommit](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        std::optional<View> Post = ReleaseCommit(Pre);
        if (!Post)
          return std::nullopt; // Releasing without holding: unsafe.
        return std::vector<ActOutcome>{{Val::unit(), std::move(*Post)}};
      },
      LockFp);

  Case.TryCollect = makeAction(
      "fc_try_collect", Case.C, 1,
      [CollectCommit, Fc](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr() ||
            !slotsOf(Pre.self(Fc)).count(Args[0].getPtr()))
          return std::nullopt;
        const Val *Cell = Pre.joint(Fc).tryLookup(Args[0].getPtr());
        if (!Cell || isIdleSlot(*Cell))
          return std::nullopt; // Collect before publish: unsafe.
        if (isRequestSlot(*Cell))
          return std::vector<ActOutcome>{
              {Val::pair(Val::ofBool(false), Val::ofInt(0)), Pre}};
        std::optional<DoneParts> Done = parseDone(*Cell);
        std::optional<View> Post = CollectCommit(Pre, Args[0].getPtr());
        if (!Done || !Post)
          return std::nullopt;
        return std::vector<ActOutcome>{
            {Val::pair(Val::ofBool(true), Done->Result),
             std::move(*Post)}};
      },
      CollectStaticFp,
      // Probing a still-pending request reads only the slot (and the
      // ownership witness): steps independent of that read cannot park a
      // result there. A successful collect rewrites the slot and grows
      // the agent's history.
      [Fc, OwnSlot, CollectStaticFp](
          const View &Pre, const std::vector<Val> &Args) -> Footprint {
        if (!Pre.hasLabel(Fc) || Args.size() != 1 || !Args[0].isPtr())
          return CollectStaticFp;
        Ptr Slot = Args[0].getPtr();
        const Val *Cell = Pre.joint(Fc).tryLookup(Slot);
        if (!Cell)
          return CollectStaticFp;
        if (isRequestSlot(*Cell))
          return Footprint::none()
              .read(FpAtom::selfAux(Fc))
              .read(OwnSlot(Slot));
        return Footprint::none()
            .readWrite(FpAtom::selfAux(Fc))
            .readWrite(OwnSlot(Slot));
      });

  // --- flat_combine(slot, op, arg) -----------------------------------------
  // fcwait(slot) :=
  //   c <-- try_collect(slot);
  //   if c.1 then ret c.2
  //   else b <-- fc_try_lock;
  //        if b then { combine(s1);; combine(s2);; release;; fcwait(slot) }
  //        else fcwait(slot).
  Case.Defs.define(
      "fcwait",
      FuncDef{{"slot"},
              Prog::bind(
                  Prog::act(Case.TryCollect, {Expr::var("slot")}), "c",
                  Prog::ifThenElse(
                      Expr::fst(Expr::var("c")),
                      Prog::ret(Expr::snd(Expr::var("c"))),
                      Prog::bind(
                          Prog::act(Case.TryLockFc, {}), "b",
                          Prog::ifThenElse(
                              Expr::var("b"),
                              Prog::seq(
                                  Prog::act(Case.CombineSlot,
                                            {Expr::litPtr(S1)}),
                                  Prog::seq(
                                      Prog::act(Case.CombineSlot,
                                                {Expr::litPtr(S2)}),
                                      Prog::seq(
                                          Prog::act(Case.ReleaseFc, {}),
                                          Prog::call(
                                              "fcwait",
                                              {Expr::var("slot")})))),
                              Prog::call("fcwait",
                                         {Expr::var("slot")})))))});
  Case.Defs.define(
      "flat_combine",
      FuncDef{{"slot", "op", "arg"},
              Prog::seq(Prog::act(Case.Publish,
                                  {Expr::var("slot"), Expr::var("op"),
                                   Expr::var("arg")}),
                        Prog::call("fcwait", {Expr::var("slot")}))});
  return Case;
}

GlobalState fcsl::flatCombinerState(const FlatCombinerCase &C,
                                    unsigned MySlots) {
  assert(MySlots <= 2);
  Heap Joint;
  Joint.insert(C.LockCell, Val::ofBool(false));
  Joint.insert(C.Slot1, Val::unit());
  Joint.insert(C.Slot2, Val::unit());
  Joint.insert(C.StackCell, Val::unit());
  Joint.insert(C.FullCell, Val::ofInt(0));

  std::set<Ptr> Mine, Envs;
  if (MySlots >= 1)
    Mine.insert(C.Slot1);
  else
    Envs.insert(C.Slot1);
  if (MySlots >= 2)
    Mine.insert(C.Slot2);
  else
    Envs.insert(C.Slot2);

  PCMTypeRef SelfType = PCMType::pairOf(
      PCMType::mutex(),
      PCMType::pairOf(PCMType::ptrSet(), PCMType::hist()));
  GlobalState GS;
  GS.addLabel(C.Fc, SelfType, std::move(Joint),
              makeSelf(PCMVal::mutexFree(), std::move(Envs), History()),
              /*EnvClosed=*/false);
  GS.setSelf(C.Fc, rootThread(),
             makeSelf(PCMVal::mutexFree(), std::move(Mine), History()));
  return GS;
}

std::vector<View> fcsl::flatCombinerSampleViews(const FlatCombinerCase &C) {
  std::vector<View> Out;
  // Fresh structure (I own slot 1).
  GlobalState Fresh = flatCombinerState(C, 1);
  Out.push_back(Fresh.viewFor(rootThread()));

  // My request published.
  {
    GlobalState GS = flatCombinerState(C, 1);
    Heap Joint = GS.joint(C.Fc);
    Joint.update(C.Slot1, makeRequest(FcPush, Val::ofInt(4)));
    GS.setJoint(C.Fc, std::move(Joint));
    Out.push_back(GS.viewFor(rootThread()));
  }
  // Env combined my request while holding the lock (helping in flight).
  {
    GlobalState GS = flatCombinerState(C, 1);
    Heap Joint = GS.joint(C.Fc);
    Joint.update(C.LockCell, Val::ofBool(true));
    Val After = Val::pair(Val::ofInt(4), Val::unit());
    Joint.update(C.Slot1,
                 makeDone(Val::unit(), 1, Val::unit(), After));
    Joint.update(C.StackCell, After);
    Joint.update(C.FullCell, Val::ofInt(1));
    GS.setJoint(C.Fc, std::move(Joint));
    GS.setEnvSelf(C.Fc, makeSelf(PCMVal::mutexOwn(), {C.Slot2},
                                 History()));
    Out.push_back(GS.viewFor(rootThread()));
  }
  // I collected: the entry is mine now, lock released by env.
  {
    GlobalState GS = flatCombinerState(C, 1);
    Heap Joint = GS.joint(C.Fc);
    Val After = Val::pair(Val::ofInt(4), Val::unit());
    Joint.update(C.StackCell, After);
    Joint.update(C.FullCell, Val::ofInt(1));
    GS.setJoint(C.Fc, std::move(Joint));
    History Mine;
    Mine.add(1, HistEntry{Val::unit(), After});
    GS.setSelf(C.Fc, rootThread(),
               makeSelf(PCMVal::mutexFree(), {C.Slot1}, std::move(Mine)));
    Out.push_back(GS.viewFor(rootThread()));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {
constexpr Label FcLbl = 1;
} // namespace

VerificationSession fcsl::makeFlatCombinerSession() {
  VerificationSession Session("Flat combiner");
  auto Case = std::make_shared<FlatCombinerCase>(
      makeFlatCombinerCase(FcLbl, /*EnvHistCap=*/4));
  auto Samples =
      std::make_shared<std::vector<View>>(flatCombinerSampleViews(*Case));

  PCMTypeRef LawType = PCMType::pairOf(
      PCMType::mutex(),
      PCMType::pairOf(PCMType::ptrSet(), PCMType::hist()));
  std::vector<PCMVal> LawSample;
  {
    History H;
    H.add(1, HistEntry{Val::unit(), Val::ofInt(1)});
    for (bool Own : {false, true}) {
      LawSample.push_back(makeSelf(
          Own ? PCMVal::mutexOwn() : PCMVal::mutexFree(), {}, History()));
      LawSample.push_back(makeSelf(
          Own ? PCMVal::mutexOwn() : PCMVal::mutexFree(), {Ptr(9601 + 1)},
          H));
    }
  }
  Session.addObligation(ObCategory::Libs, "fc_carrier_pcm_laws",
                        pcmLawInputs(LawType, LawSample, 1),
                        [LawType, LawSample] {
    PCMLawReport R = checkPCMLaws(*LawType, LawSample);
    return lawObligation(R.allHold(), R.JoinsEvaluated);
  });

  Session.addObligation(ObCategory::Conc, "fc_metatheory",
                        sampleInputs(ObKind::Metatheory, *Case->C,
                                     *Samples, 1),
                        [Case, Samples] {
    return toObligation(checkConcurroidWellFormed(*Case->C, *Samples));
  });

  std::vector<ActionArgs> PublishArgs = {
      {Val::ofPtr(Case->Slot1), Val::ofInt(FcPush), Val::ofInt(4)},
      {Val::ofPtr(Case->Slot1), Val::ofInt(FcPop), Val::ofInt(0)},
      {Val::ofPtr(Case->Slot2), Val::ofInt(FcPush), Val::ofInt(4)}};
  std::vector<ActionArgs> SlotArgs = {{Val::ofPtr(Case->Slot1)},
                                      {Val::ofPtr(Case->Slot2)}};

  Session.addObligation(ObCategory::Acts, "publish_wf",
                        actionInputs(*Case->Publish, *Samples,
                                     PublishArgs, 1)
                            .text("wf"),
                        [Case, Samples, PublishArgs] {
    return toObligation(
        checkActionWellFormed(*Case->Publish, *Samples, PublishArgs));
  });
  Session.addObligation(ObCategory::Acts, "lock_release_wf",
                        actionInputs(*Case->TryLockFc, *Samples, {{}}, 1)
                            .text(Case->ReleaseFc->name())
                            .num(Case->ReleaseFc->arity())
                            .text("wf"),
                        [Case, Samples] {
    MetaReport R;
    R.absorb(checkActionWellFormed(*Case->TryLockFc, *Samples, {{}}));
    R.absorb(checkActionWellFormed(*Case->ReleaseFc, *Samples, {{}}));
    return toObligation(R);
  });
  Session.addObligation(ObCategory::Acts, "combine_wf",
                        actionInputs(*Case->CombineSlot, *Samples,
                                     SlotArgs, 1)
                            .text("wf"),
                        [Case, Samples, SlotArgs] {
    return toObligation(
        checkActionWellFormed(*Case->CombineSlot, *Samples, SlotArgs));
  });
  Session.addObligation(ObCategory::Acts, "collect_wf",
                        actionInputs(*Case->TryCollect, *Samples,
                                     SlotArgs, 1)
                            .text("wf"),
                        [Case, Samples, SlotArgs] {
    return toObligation(
        checkActionWellFormed(*Case->TryCollect, *Samples, SlotArgs));
  });

  Session.addObligation(ObCategory::Stab, "my_slot_stays_mine",
                        stabilityInputs(*Case->C, "slot 1 is mine",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Fc = Case->Fc;
    Ptr S1 = Case->Slot1;
    Assertion MySlot("slot 1 is mine", [Fc, S1](const View &S) {
      return slotsOf(S.self(Fc)).count(S1) != 0;
    });
    return toObligation(checkStability(MySlot, *Case->C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "collected_history_stable",
                        stabilityInputs(*Case->C, "stamp 1 ascribed to me",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Fc = Case->Fc;
    Assertion MyHist("stamp 1 ascribed to me", [Fc](const View &S) {
      return histOf(S.self(Fc)).contains(1);
    });
    return toObligation(checkStability(MyHist, *Case->C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "done_result_preserved",
                        stabilityInputs(*Case->C, "my Done slot is frozen",
                                        *Samples, 1),
                        [Case, Samples] {
    // Once my request is Done with a result, interference cannot alter it
    // (only I may collect my slot).
    Label Fc = Case->Fc;
    Ptr S1 = Case->Slot1;
    return toObligation(checkRelationStability(
        [Fc, S1](const View &Seed, const View &S) {
          const Val *Before = Seed.joint(Fc).tryLookup(S1);
          const Val *After = S.joint(Fc).tryLookup(S1);
          if (!Before || !parseDone(*Before))
            return true; // Vacuous unless Done at the seed.
          if (!Seed.self(Fc).second().first().getPtrSet().count(S1))
            return true; // Only interesting for my own slot.
          return After && *After == *Before;
        },
        "my Done slot is frozen", *Case->C, *Samples));
  });

  {
    TripleCase TC;
    TC.Main = Prog::call(
        "flat_combine",
        {Expr::litPtr(Case->Slot1), Expr::litInt(FcPush),
         Expr::litInt(4)});
    TC.S.Name = "flat_combine(push, 4)";
    TC.S.C = Case->C;
    Label Fc = Case->Fc;
    Ptr S1 = Case->Slot1;
    TC.S.Pre = Assertion("slot 1 mine and idle", [Fc, S1](const View &V) {
      const Val *Cell = V.joint(Fc).tryLookup(S1);
      return Cell && isIdleSlot(*Cell) &&
             slotsOf(V.self(Fc)).count(S1) != 0;
    });
    TC.S.PostName = "the push is ascribed to me, whoever combined it";
    TC.S.Post = [Fc](const Val &R, const View &I, const View &F) {
      if (!R.isUnit())
        return false;
      const History &Before = histOf(I.self(Fc));
      const History &After = histOf(F.self(Fc));
      if (After.size() != Before.size() + 1)
        return false;
      for (const auto &Entry : After) {
        if (Before.contains(Entry.first))
          continue;
        return Entry.second.After ==
               Val::pair(Val::ofInt(4), Entry.second.Before);
      }
      return false;
    };
    TC.Instances.push_back(
        VerifyInstance{flatCombinerState(*Case, 1), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "flat_combine_push_spec", std::move(TC));
  }

  {
    TripleCase TC;
    TC.Main = Prog::call(
        "flat_combine",
        {Expr::litPtr(Case->Slot1), Expr::litInt(FcPop), Expr::litInt(0)});
    TC.S.Name = "flat_combine(pop)";
    TC.S.C = Case->C;
    Label Fc = Case->Fc;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "a pop entry is ascribed to me";
    TC.S.Post = [Fc](const Val &R, const View &I, const View &F) {
      const History &Before = histOf(I.self(Fc));
      const History &After = histOf(F.self(Fc));
      if (After.size() != Before.size() + 1)
        return false;
      for (const auto &Entry : After) {
        if (Before.contains(Entry.first))
          continue;
        if (Entry.second.Before.isUnit())
          return R.isInt() && R.getInt() == 0 &&
                 Entry.second.After.isUnit();
        return Entry.second.Before == Val::pair(R, Entry.second.After);
      }
      return false;
    };
    TC.Instances.push_back(
        VerifyInstance{flatCombinerState(*Case, 1), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "flat_combine_pop_spec", std::move(TC));
  }

  return Session;
}

void fcsl::registerFlatCombinerLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Flat combiner",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"FlatCombine", false}},
      {"Abstract lock"}});
}
