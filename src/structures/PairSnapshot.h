//===- structures/PairSnapshot.h - Atomic pair snapshot ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic pair snapshot of Table 1 (after Qadeer et al. / Liang&Feng):
/// two cells x and y carry (value, version) pairs; writers bump the
/// version, and the wait-free reader `readPair` retries until the version
/// of x is unchanged across its two reads, which guarantees the returned
/// pair (vx, vy) was simultaneously present at the moment y was read.
/// Specified — as in the paper — with a PCM of time-stamped histories of
/// the abstract pair state: the snapshot spec says the returned pair
/// appears as some state of the history between invocation and return.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_PAIRSNAPSHOT_H
#define FCSL_STRUCTURES_PAIRSNAPSHOT_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// The packaged pair-snapshot setup.
struct PairSnapCase {
  Label Rp;
  Ptr CellX;
  Ptr CellY;
  ConcurroidRef C; ///< the ReadPair concurroid (no Priv needed).
  ActionRef ReadX; ///< () -> (value, version) of x.
  ActionRef ReadY; ///< () -> (value, version) of y.
  ActionRef WriteX; ///< (v) -> unit.
  ActionRef WriteY; ///< (v) -> unit.
  DefTable Defs;   ///< contains `readPair`.
};

/// Builds the case; env writes (bounded by \p EnvHistCap history entries)
/// store the fixed values 9 into x and 8 into y.
PairSnapCase makePairSnapCase(Label Rp, uint64_t EnvHistCap);

/// Initial state with x = y = 0, versions 0, empty history.
GlobalState pairSnapState(const PairSnapCase &C);

/// Sample coherent views.
std::vector<View> pairSnapSampleViews(const PairSnapCase &C);

/// The "Pair snapshot" Table 1 row.
VerificationSession makePairSnapshotSession();

void registerPairSnapshotLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_PAIRSNAPSHOT_H
