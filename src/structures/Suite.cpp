//===- structures/Suite.cpp - The full case-study suite --------------------===//
//
// Part of fcsl-cpp. See Suite.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/Suite.h"

#include "structures/CgAllocator.h"
#include "structures/CgIncrement.h"
#include "structures/FcStack.h"
#include "structures/FlatCombiner.h"
#include "structures/PairSnapshot.h"
#include "structures/ProdCons.h"
#include "structures/SeqStack.h"
#include "structures/SpanTree.h"
#include "structures/SpinLock.h"
#include "structures/StackIface.h"
#include "structures/TicketLock.h"
#include "structures/TreiberStack.h"

using namespace fcsl;

std::vector<CaseEntry> fcsl::allCaseStudies() {
  return {
      CaseEntry{"CAS-lock", makeSpinLockSession},
      CaseEntry{"Ticketed lock", makeTicketLockSession},
      CaseEntry{"CG increment", makeCgIncrementSession},
      CaseEntry{"CG allocator", makeCgAllocatorSession},
      CaseEntry{"Pair snapshot", makePairSnapshotSession},
      CaseEntry{"Treiber stack", makeTreiberSession},
      CaseEntry{"Spanning tree", makeSpanTreeSession},
      CaseEntry{"Flat combiner", makeFlatCombinerSession},
      CaseEntry{"Seq. stack", makeSeqStackSession},
      CaseEntry{"FC-stack", makeFcStackSession},
      CaseEntry{"Prod/Cons", makeProdConsSession},
  };
}

std::vector<CaseEntry> fcsl::allVerifiableSessions() {
  std::vector<CaseEntry> Cases = allCaseStudies();
  Cases.push_back(CaseEntry{"Abstract stack", makeStackIfaceSession});
  return Cases;
}

void fcsl::registerAllLibraries() {
  registerSpinLockLibrary();
  registerTicketLockLibrary();
  registerCgIncrementLibrary();
  registerCgAllocatorLibrary();
  registerPairSnapshotLibrary();
  registerTreiberLibrary();
  registerSpanTreeLibrary();
  registerFlatCombinerLibrary();
  registerSeqStackLibrary();
  registerFcStackLibrary();
  registerProdConsLibrary();
  // Extension beyond the paper: the abstract stack interface (the
  // unification Section 6 leaves as an exercise).
  registerStackIfaceLibrary();
}
