//===- structures/CgAllocator.cpp - Coarse-grained allocator ---------------===//
//
// Part of fcsl-cpp. See CgAllocator.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/CgAllocator.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"
#include "structures/SpinLock.h"
#include "structures/TicketLock.h"

using namespace fcsl;

bool fcsl::isPoolCell(Ptr P) {
  return !P.isNull() && P.id() <= AllocPoolSize;
}

namespace {

/// The pool cells sitting in \p H.
Heap poolCellsIn(const Heap &H, unsigned PoolSize) {
  Heap Out;
  for (const auto &Cell : H)
    if (Cell.first.id() <= PoolSize)
      Out.insert(Cell.first, Cell.second);
  return Out;
}

} // namespace

ResourceModel fcsl::allocatorResourceModel(Label Pv, Label Lk,
                                           unsigned PoolSize) {
  ResourceModel Model;
  Model.ClientType = PCMType::nat();
  Model.Invariant = [PoolSize](const Heap &Res, const PCMVal &Total) {
    if (Res.size() + Total.getNat() != PoolSize)
      return false;
    for (const auto &Cell : Res)
      if (Cell.first.id() > PoolSize || !Cell.second.isInt())
        return false;
    return true;
  };
  Model.EnvReleaseOptions =
      [Pv, Lk, PoolSize](const View &EnvView)
      -> std::vector<std::pair<Heap, PCMVal>> {
    std::vector<std::pair<Heap, PCMVal>> Out;
    Heap Pool = poolCellsIn(EnvView.self(Pv).getHeap(), PoolSize);
    uint64_t Mine = EnvView.self(Lk).second().getNat();
    // Release untouched (idles are pruned by configuration dedup) ...
    Out.emplace_back(Pool, PCMVal::ofNat(Mine));
    // ... or withdraw the smallest pool cell. The env withdraws at most
    // one cell so the bounded pool cannot be exhausted under the
    // verified client (bounded-interference instance).
    if (!Pool.isEmpty() && Mine < 1) {
      Ptr Smallest = Pool.domain().front();
      Out.emplace_back(Pool.without({Smallest}), PCMVal::ofNat(Mine + 1));
    }
    return Out;
  };
  return Model;
}

void fcsl::defineAllocProgram(const LockProtocol &P, DefTable &Defs,
                              unsigned PoolSize) {
  P.DefineLock(Defs, "lock");

  // pick_pool_cell: () -> ptr. Reads (without removing) the smallest pool
  // cell from the caller's private heap; unsafe when the pool is empty —
  // the Table 1 instance sizes programs so exhaustion cannot happen, and
  // the exhaustion test exercises the unsafe case deliberately.
  Label Pv = P.Pv;
  ActionRef Pick = makeAction(
      "pick_pool_cell", P.C, 0,
      [Pv, PoolSize](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        Heap Pool = poolCellsIn(Pre.self(Pv).getHeap(), PoolSize);
        if (Pool.isEmpty())
          return std::nullopt;
        return std::vector<ActOutcome>{
            {Val::ofPtr(Pool.domain().front()), Pre}};
      },
      // Reads only the caller's private heap (the pool cells live there
      // while the lock is held) and changes nothing.
      Footprint::none().read(FpAtom::selfAux(Pv)));

  auto ClientSelf = P.ClientSelf;
  ActionRef Unlock = P.MakeUnlock(
      "unlock_alloc", 1, // Arg: the withdrawn pointer.
      [Pv, PoolSize, ClientSelf](const View &S, const std::vector<Val> &Args)
          -> std::optional<std::pair<Heap, PCMVal>> {
        if (!Args[0].isPtr())
          return std::nullopt;
        Heap Pool = poolCellsIn(S.self(Pv).getHeap(), PoolSize);
        if (!Pool.contains(Args[0].getPtr()))
          return std::nullopt;
        return std::make_pair(Pool.without({Args[0].getPtr()}),
                              PCMVal::ofNat(ClientSelf(S).getNat() + 1));
      });

  // alloc() := lock(); r <-- pick_pool_cell; unlock_alloc(r); ret r.
  Defs.define(
      "alloc",
      FuncDef{{},
              Prog::seq(Prog::call("lock", {}),
                        Prog::bind(Prog::act(Pick, {}), "r",
                                   Prog::seq(Prog::act(Unlock,
                                                       {Expr::var("r")}),
                                             Prog::ret(Expr::var("r")))))});
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label LkLbl = 2;

Heap fullPool(unsigned PoolSize) {
  Heap Pool;
  for (unsigned I = 1; I <= PoolSize; ++I)
    Pool.insert(Ptr(I), Val::ofInt(0));
  return Pool;
}

GlobalState allocInitialState(const LockProtocol &P,
                              PCMTypeRef LockSelfType) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(P.Lk, LockSelfType, P.InitialJoint(fullPool(AllocPoolSize)),
              LockSelfType->unit(), /*EnvClosed=*/false);
  return GS;
}

TripleCase allocCaseWith(const LockFactory &Factory, PCMTypeRef TokenType,
                         bool EnvInterference) {
  ResourceModel Model =
      allocatorResourceModel(PvLbl, LkLbl, AllocPoolSize);
  LockProtocol P = Factory(PvLbl, LkLbl, Model);
  auto Defs = std::make_shared<DefTable>();
  defineAllocProgram(P, *Defs, AllocPoolSize);

  TripleCase TC;
  TC.Main = Prog::call("alloc", {});
  TC.S.Name = "alloc";
  TC.S.C = P.C;
  TC.S.Pre = Assertion("pool installed, not holding", [P](const View &V) {
    return V.hasLabel(P.Lk) && !P.HoldsLock(V);
  });
  TC.S.PostName = "returns a pool pointer now owned privately; count grew";
  Label Pv = P.Pv;
  auto ClientSelf = P.ClientSelf;
  TC.S.Post = [Pv, ClientSelf](const Val &R, const View &I, const View &F) {
    if (!R.isPtr() || !isPoolCell(R.getPtr()))
      return false;
    // The allocated cell moved into my private heap ...
    if (!F.self(Pv).getHeap().contains(R.getPtr()))
      return false;
    // ... and my allocation count grew by one.
    return ClientSelf(F).getNat() == ClientSelf(I).getNat() + 1;
  };

  TC.Instances.push_back(VerifyInstance{
      allocInitialState(P, PCMType::pairOf(TokenType, PCMType::nat())),
      {}});

  TC.Opts.Ambient = P.C;
  TC.Opts.EnvInterference = EnvInterference;
  TC.Defs = Defs;
  return TC;
}

} // namespace

VerificationSession fcsl::makeCgAllocatorSession() {
  VerificationSession Session("CG allocator");

  PCMTypeRef LawType = PCMType::heap();
  std::vector<PCMVal> LawSample = {
      PCMVal::ofHeap(Heap()),
      PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(0))),
      PCMVal::ofHeap(Heap::singleton(Ptr(2), Val::ofInt(0))),
      PCMVal::ofHeap(Heap::singleton(Ptr(1), Val::ofInt(7))),
      PCMVal::ofHeap(fullPool(AllocPoolSize))};
  Session.addObligation(
      ObCategory::Libs, "heap_pcm_laws",
      pcmLawInputs(LawType, LawSample, 1).text("cancellative"), [LawSample] {
        PCMLawReport R = checkPCMLaws(*PCMType::heap(), LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  addTriple(Session, "alloc_with_cas_lock",
            allocCaseWith(casLockFactory(), PCMType::mutex(),
                          /*EnvInterference=*/true));
  addTriple(Session, "alloc_with_ticket_lock",
            allocCaseWith(ticketLockFactory(), PCMType::ptrSet(),
                          /*EnvInterference=*/true));
  {
    // par(alloc, alloc): the two pointers are distinct (closed world).
    ResourceModel Model =
        allocatorResourceModel(PvLbl, LkLbl, AllocPoolSize);
    LockProtocol P = makeCasLock(PvLbl, LkLbl, Model);
    auto Defs = std::make_shared<DefTable>();
    defineAllocProgram(P, *Defs, AllocPoolSize);
    TripleCase TC;
    TC.Main = Prog::par(Prog::call("alloc", {}), Prog::call("alloc", {}));
    TC.S.Name = "parallel_alloc";
    TC.S.C = P.C;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "distinct pool pointers";
    TC.S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first().isPtr() && R.second().isPtr() &&
             R.first().getPtr() != R.second().getPtr();
    };
    TC.Instances.push_back(VerifyInstance{
        allocInitialState(P, PCMType::pairOf(PCMType::mutex(),
                                             PCMType::nat())),
        {}});
    TC.Opts.Ambient = P.C;
    TC.Opts.EnvInterference = false;
    TC.Defs = Defs;
    addTriple(Session, "two_allocs_disjoint", std::move(TC));
  }

  return Session;
}

void fcsl::registerCgAllocatorLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "CG allocator",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}},
      {"Abstract lock"}});
}
