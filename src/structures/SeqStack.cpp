//===- structures/SeqStack.cpp - Sequential stack via hiding ---------------===//
//
// Part of fcsl-cpp. See SeqStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/SeqStack.h"

#include "concurroid/Registry.h"

using namespace fcsl;

namespace {

constexpr Label PvLbl = 1;
constexpr Label TrLbl = 2;

/// Initial state: the Treiber layout (sentinel cell) and two node cells
/// all sit in the root thread's private heap; nothing is installed yet.
GlobalState seqStackInitialState(const TreiberCase &C) {
  Heap Mine;
  Mine.insert(C.Sentinel, Val::ofPtr(Ptr::null()));
  Mine.insert(Ptr(20), Val::pair(Val::ofInt(0), Val::ofPtr(Ptr::null())));
  Mine.insert(Ptr(21), Val::pair(Val::ofInt(0), Val::ofPtr(Ptr::null())));
  GlobalState GS;
  GS.addLabel(PvLbl, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.setSelf(PvLbl, rootThread(), PCMVal::ofHeap(std::move(Mine)));
  return GS;
}

/// hide { push 1; push 2; a <-- pop; b <-- pop; ret (a, b) }.
ProgRef seqStackProg(const TreiberCase &C) {
  HideSpec Spec;
  Spec.Pv = C.Pv;
  Spec.Hidden = C.Tr;
  Spec.SelfType = PCMType::hist();
  Spec.Installed = C.Treiber;
  Ptr Snt = C.Sentinel;
  // Decoration: donate the sentinel cell (an empty stack layout); node
  // cells stay private until pushed.
  Spec.ChooseDonation = [Snt](const Heap &Mine) -> std::optional<Heap> {
    const Val *Head = Mine.tryLookup(Snt);
    if (!Head || !Head->isPtr() || !Head->getPtr().isNull())
      return std::nullopt;
    return Heap::singleton(Snt, *Head);
  };
  Spec.InitSelf = PCMVal::ofHist(History());

  ProgRef Body = Prog::seq(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
      Prog::seq(
          Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}),
          Prog::bind(
              Prog::call("pop", {}), "a",
              Prog::bind(Prog::call("pop", {}), "b",
                         Prog::ret(Expr::mkPair(
                             Expr::snd(Expr::var("a")),
                             Expr::snd(Expr::var("b"))))))));
  return Prog::hide(std::move(Spec), std::move(Body));
}

} // namespace

VerificationSession fcsl::makeSeqStackSession() {
  VerificationSession Session("Seq. stack");
  auto Case = std::make_shared<TreiberCase>(
      makeTreiberCase(PvLbl, TrLbl, /*EnvHistCap=*/0));

  // Libs: the client-side list lemma — the abstract stack read off any
  // list-shaped joint heap is unique and LIFO-consistent with the cell
  // chain (exercised over a family of layouts).
  std::vector<std::vector<int64_t>> Layouts = {
      {}, {1}, {2, 1}, {3, 2, 1}, {5, 5}};
  ObligationInputs ListIn(ObKind::Check);
  ListIn.text("list_abstraction");
  for (const std::vector<int64_t> &Elems : Layouts)
    ListIn.mix(codecFp(treiberState(*Case, Elems, 0, 0)));
  ListIn.rev(1);
  Session.addObligation(ObCategory::Libs, "list_abstraction_lemma", ListIn,
                        [Case, Layouts] {
    ObligationResult O;
    for (const std::vector<int64_t> &Elems : Layouts) {
      GlobalState GS = treiberState(*Case, Elems, 0, 0);
      std::optional<Val> Abs =
          treiberAbstractStack(*Case, GS.joint(TrLbl));
      ++O.Checks;
      if (!Abs) {
        O.Passed = false;
        O.Note = "list abstraction undefined";
        return O;
      }
      // Peel the cons list and compare element by element.
      Val Cur = *Abs;
      for (int64_t E : Elems) {
        if (!Cur.isPair() || Cur.first() != Val::ofInt(E)) {
          O.Passed = false;
          O.Note = "list abstraction mismatch";
          return O;
        }
        Cur = Cur.second();
        ++O.Checks;
      }
      if (!Cur.isUnit()) {
        O.Passed = false;
        O.Note = "list tail not nil";
        return O;
      }
    }
    return O;
  });

  {
    TripleCase TC;
    TC.Main = seqStackProg(*Case);
    TC.S.Name = "seq_stack";
    TC.S.C = Case->C;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "LIFO: push 1; push 2; pop = 2; pop = 1";
    TC.S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first() == Val::ofInt(2) &&
             R.second() == Val::ofInt(1);
    };
    TC.Instances.push_back(
        VerifyInstance{seqStackInitialState(*Case), {}});
    // The ambient protocol outside the hide is just Priv; the Treiber
    // concurroid only exists inside the hidden scope.
    TC.Opts.Ambient = makePriv(PvLbl);
    TC.Opts.EnvInterference = true; // Priv generates no interference anyway.
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "lifo_under_hiding", std::move(TC));
  }

  {
    // hide { a <-- pop; ret a } on the empty stack observes emptiness.
    HideSpec Spec;
    Spec.Pv = Case->Pv;
    Spec.Hidden = Case->Tr;
    Spec.SelfType = PCMType::hist();
    Spec.Installed = Case->Treiber;
    Ptr Snt = Case->Sentinel;
    Spec.ChooseDonation = [Snt](const Heap &Mine) -> std::optional<Heap> {
      const Val *Head = Mine.tryLookup(Snt);
      if (!Head)
        return std::nullopt;
      return Heap::singleton(Snt, *Head);
    };
    Spec.InitSelf = PCMVal::ofHist(History());

    TripleCase TC;
    TC.Main = Prog::hide(std::move(Spec), Prog::call("pop", {}));
    TC.S.Name = "seq_stack_empty_pop";
    TC.S.C = Case->C;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "pop on the empty stack reports empty";
    TC.S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first() == Val::ofBool(false);
    };
    TC.Instances.push_back(
        VerifyInstance{seqStackInitialState(*Case), {}});
    TC.Opts.Ambient = makePriv(PvLbl);
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "pop_empty_after_hiding", std::move(TC));
  }

  return Session;
}

void fcsl::registerSeqStackLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Seq. stack",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"Treiber", false}},
      {"Treiber stack"}});
}
