//===- structures/SeqStack.cpp - Sequential stack via hiding ---------------===//
//
// Part of fcsl-cpp. See SeqStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/SeqStack.h"

#include "concurroid/Registry.h"

using namespace fcsl;

namespace {

constexpr Label PvLbl = 1;
constexpr Label TrLbl = 2;

/// Initial state: the Treiber layout (sentinel cell) and two node cells
/// all sit in the root thread's private heap; nothing is installed yet.
GlobalState seqStackInitialState(const TreiberCase &C) {
  Heap Mine;
  Mine.insert(C.Sentinel, Val::ofPtr(Ptr::null()));
  Mine.insert(Ptr(20), Val::pair(Val::ofInt(0), Val::ofPtr(Ptr::null())));
  Mine.insert(Ptr(21), Val::pair(Val::ofInt(0), Val::ofPtr(Ptr::null())));
  GlobalState GS;
  GS.addLabel(PvLbl, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.setSelf(PvLbl, rootThread(), PCMVal::ofHeap(std::move(Mine)));
  return GS;
}

/// hide { push 1; push 2; a <-- pop; b <-- pop; ret (a, b) }.
ProgRef seqStackProg(const TreiberCase &C) {
  HideSpec Spec;
  Spec.Pv = C.Pv;
  Spec.Hidden = C.Tr;
  Spec.SelfType = PCMType::hist();
  Spec.Installed = C.Treiber;
  Ptr Snt = C.Sentinel;
  // Decoration: donate the sentinel cell (an empty stack layout); node
  // cells stay private until pushed.
  Spec.ChooseDonation = [Snt](const Heap &Mine) -> std::optional<Heap> {
    const Val *Head = Mine.tryLookup(Snt);
    if (!Head || !Head->isPtr() || !Head->getPtr().isNull())
      return std::nullopt;
    return Heap::singleton(Snt, *Head);
  };
  Spec.InitSelf = PCMVal::ofHist(History());

  ProgRef Body = Prog::seq(
      Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
      Prog::seq(
          Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}),
          Prog::bind(
              Prog::call("pop", {}), "a",
              Prog::bind(Prog::call("pop", {}), "b",
                         Prog::ret(Expr::mkPair(
                             Expr::snd(Expr::var("a")),
                             Expr::snd(Expr::var("b"))))))));
  return Prog::hide(std::move(Spec), std::move(Body));
}

} // namespace

VerificationSession fcsl::makeSeqStackSession() {
  VerificationSession Session("Seq. stack");
  auto Case = std::make_shared<TreiberCase>(
      makeTreiberCase(PvLbl, TrLbl, /*EnvHistCap=*/0));

  // Libs: the client-side list lemma — the abstract stack read off any
  // list-shaped joint heap is unique and LIFO-consistent with the cell
  // chain (exercised over a family of layouts).
  Session.addObligation(ObCategory::Libs, "list_abstraction_lemma",
                        [Case] {
    uint64_t Checks = 0;
    for (const std::vector<int64_t> &Elems :
         std::vector<std::vector<int64_t>>{
             {}, {1}, {2, 1}, {3, 2, 1}, {5, 5}}) {
      GlobalState GS = treiberState(*Case, Elems, 0, 0);
      std::optional<Val> Abs =
          treiberAbstractStack(*Case, GS.joint(TrLbl));
      ++Checks;
      if (!Abs)
        return ObligationResult{false, Checks,
                                "list abstraction undefined"};
      // Peel the cons list and compare element by element.
      Val Cur = *Abs;
      for (int64_t E : Elems) {
        if (!Cur.isPair() || Cur.first() != Val::ofInt(E))
          return ObligationResult{false, Checks,
                                  "list abstraction mismatch"};
        Cur = Cur.second();
        ++Checks;
      }
      if (!Cur.isUnit())
        return ObligationResult{false, Checks, "list tail not nil"};
    }
    return ObligationResult{true, Checks, ""};
  });

  Session.addObligation(ObCategory::Main, "lifo_under_hiding", [Case] {
    Spec S;
    S.Name = "seq_stack";
    S.C = Case->C;
    S.Pre = assertTrue();
    S.PostName = "LIFO: push 1; push 2; pop = 2; pop = 1";
    S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first() == Val::ofInt(2) &&
             R.second() == Val::ofInt(1);
    };
    ProgRef Main = seqStackProg(*Case);
    EngineOptions Opts;
    // The ambient protocol outside the hide is just Priv; the Treiber
    // concurroid only exists inside the hidden scope.
    Opts.Ambient = makePriv(PvLbl);
    Opts.EnvInterference = true; // Priv generates no interference anyway.
    Opts.Defs = &Case->Defs;
    return toObligation(verifyTriple(
        Main, S, {VerifyInstance{seqStackInitialState(*Case), {}}}, Opts));
  });

  Session.addObligation(ObCategory::Main, "pop_empty_after_hiding",
                        [Case] {
    // hide { a <-- pop; ret a } on the empty stack observes emptiness.
    HideSpec Spec;
    Spec.Pv = Case->Pv;
    Spec.Hidden = Case->Tr;
    Spec.SelfType = PCMType::hist();
    Spec.Installed = Case->Treiber;
    Ptr Snt = Case->Sentinel;
    Spec.ChooseDonation = [Snt](const Heap &Mine) -> std::optional<Heap> {
      const Val *Head = Mine.tryLookup(Snt);
      if (!Head)
        return std::nullopt;
      return Heap::singleton(Snt, *Head);
    };
    Spec.InitSelf = PCMVal::ofHist(History());
    ProgRef Main = Prog::hide(std::move(Spec), Prog::call("pop", {}));

    struct Spec S;
    S.Name = "seq_stack_empty_pop";
    S.C = Case->C;
    S.Pre = assertTrue();
    S.PostName = "pop on the empty stack reports empty";
    S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first() == Val::ofBool(false);
    };
    EngineOptions Opts;
    Opts.Ambient = makePriv(PvLbl);
    Opts.EnvInterference = true;
    Opts.Defs = &Case->Defs;
    return toObligation(verifyTriple(
        Main, S, {VerifyInstance{seqStackInitialState(*Case), {}}}, Opts));
  });

  return Session;
}

void fcsl::registerSeqStackLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Seq. stack",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"Treiber", false}},
      {"Treiber stack"}});
}
