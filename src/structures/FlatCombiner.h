//===- structures/FlatCombiner.h - Flat combining ---------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat combiner of Section 4.2 (after Hendler et al.): a higher-order
/// structure whose `flat_combine(f, v)` registers the request (f, v) in a
/// publication slot; some thread then becomes the *combiner* by taking the
/// lock and executes every registered request on the protected sequential
/// structure (here: a sequential stack), writing results back into the
/// slots. This is the paper's showcase of the *helping* pattern: the
/// history entry for an operation executed by the combiner is ascribed to
/// the *requesting* thread — it parks in the slot (as joint state) until
/// the requester collects it into its self history.
///
/// Slot protocol (values of the slot cells):
///   unit                          — Idle
///   pair(int op, arg)             — Request (op 1 = push, 2 = pop)
///   pair(true, (res,(t,(b,a))))   — Done: result, stamp, before, after
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_FLATCOMBINER_H
#define FCSL_STRUCTURES_FLATCOMBINER_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// Operation codes of the sequential structure.
enum FcOp : int64_t { FcPush = 1, FcPop = 2 };

/// The packaged flat-combiner setup.
struct FlatCombinerCase {
  Label Fc;
  Ptr LockCell;
  Ptr Slot1;
  Ptr Slot2;
  Ptr StackCell; ///< holds the sequential structure's whole state.
  /// Joint counter of history entries ever created (committed plus parked
  /// in Done slots). Coherence pins it to the full history's size, so it
  /// adds no states; it exists so combines draw their stamp — and publish
  /// caps draw their bound — from one scalar cell instead of scanning
  /// both histories and both slots, which narrows every footprint.
  Ptr FullCell;
  ConcurroidRef C;
  ActionRef Publish;    ///< (slot, op, arg) -> unit.
  ActionRef TryLockFc;  ///< () -> bool.
  ActionRef CombineSlot;///< (slot) -> unit (no-op unless Request).
  ActionRef ReleaseFc;  ///< () -> unit.
  ActionRef TryCollect; ///< (slot) -> pair(bool, result).
  DefTable Defs;        ///< contains `flat_combine(slot, op, arg)`.
};

/// Builds the case; environment requests are bounded by \p EnvHistCap
/// total history entries (committed plus parked in slots).
FlatCombinerCase makeFlatCombinerCase(Label Fc, uint64_t EnvHistCap);

/// Initial state: empty stack, idle slots; the root thread owns \p MySlots
/// of the two slots (the env owns the rest).
GlobalState flatCombinerState(const FlatCombinerCase &C, unsigned MySlots);

/// Sample coherent views.
std::vector<View> flatCombinerSampleViews(const FlatCombinerCase &C);

/// The "Flat combiner" Table 1 row.
VerificationSession makeFlatCombinerSession();

void registerFlatCombinerLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_FLATCOMBINER_H
