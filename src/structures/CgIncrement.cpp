//===- structures/CgIncrement.cpp - Coarse-grained increment ---------------===//
//
// Part of fcsl-cpp. See CgIncrement.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/CgIncrement.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"
#include "structures/SpinLock.h"
#include "structures/TicketLock.h"

using namespace fcsl;

Ptr fcsl::counterResourceCell() { return Ptr(1); }

ResourceModel fcsl::counterResourceModel(Label Lk, uint64_t EnvCap) {
  ResourceModel Model;
  Model.ClientType = PCMType::nat();
  Model.Invariant = [](const Heap &Res, const PCMVal &Total) {
    if (Res.size() != 1 || !Res.contains(counterResourceCell()))
      return false;
    const Val &Cell = Res.lookup(counterResourceCell());
    return Cell.isInt() &&
           Cell.getInt() == static_cast<int64_t>(Total.getNat());
  };
  Model.EnvReleaseOptions =
      [Lk, EnvCap](const View &EnvView)
      -> std::vector<std::pair<Heap, PCMVal>> {
    std::vector<std::pair<Heap, PCMVal>> Out;
    uint64_t Mine = EnvView.self(Lk).second().getNat();
    uint64_t Others = EnvView.other(Lk).second().getNat();
    if (Mine + 1 > EnvCap)
      return Out;
    Out.emplace_back(
        Heap::singleton(counterResourceCell(),
                        Val::ofInt(static_cast<int64_t>(Mine + 1 + Others))),
        PCMVal::ofNat(Mine + 1));
    return Out;
  };
  return Model;
}

ActionRef fcsl::defineIncrProgram(const LockProtocol &P, DefTable &Defs) {
  P.DefineLock(Defs, "lock");

  ActionRef Read = makePrivRead(P.C, P.Pv);
  ActionRef Write = makePrivWrite(P.C, P.Pv);

  // unlock_incr: returns the (updated) counter cell and bumps the caller's
  // contribution by one.
  Label Pv = P.Pv;
  auto ClientSelf = P.ClientSelf;
  ActionRef Unlock = P.MakeUnlock(
      "unlock_incr", 0,
      [Pv, ClientSelf](const View &S, const std::vector<Val> &)
          -> std::optional<std::pair<Heap, PCMVal>> {
        const Heap &Mine = S.self(Pv).getHeap();
        const Val *Cell = Mine.tryLookup(counterResourceCell());
        if (!Cell)
          return std::nullopt;
        return std::make_pair(
            Heap::singleton(counterResourceCell(), *Cell),
            PCMVal::ofNat(ClientSelf(S).getNat() + 1));
      });

  // incr() := lock(); v <-- read p; write p (v + 1); unlock_incr().
  ExprRef Cell = Expr::litPtr(counterResourceCell());
  Defs.define(
      "incr",
      FuncDef{{},
              Prog::seq(
                  Prog::call("lock", {}),
                  Prog::bind(
                      Prog::act(Read, {Cell}), "v",
                      Prog::seq(
                          Prog::act(Write,
                                    {Cell, Expr::add(Expr::var("v"),
                                                     Expr::litInt(1))}),
                          Prog::act(Unlock, {}))))});
  return Unlock;
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label LkLbl = 2;

GlobalState incrInitialState(const LockProtocol &P, uint64_t EnvTotal,
                             PCMTypeRef LockSelfType) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  PCMVal EnvSelf = LockSelfType->unit();
  EnvSelf = PCMVal::makePair(EnvSelf.first(), PCMVal::ofNat(EnvTotal));
  GS.addLabel(P.Lk, LockSelfType,
              P.InitialJoint(Heap::singleton(
                  counterResourceCell(),
                  Val::ofInt(static_cast<int64_t>(EnvTotal)))),
              std::move(EnvSelf), /*EnvClosed=*/false);
  return GS;
}

/// The {self = c} incr() {self = c + delta} triple with the given lock
/// factory, in registration-time form so the proof unit is content-keyed.
TripleCase incrCaseWith(const LockFactory &Factory, PCMTypeRef TokenType,
                        bool Parallel, bool EnvInterference) {
  ResourceModel Model = counterResourceModel(LkLbl, /*EnvCap=*/1);
  LockProtocol P = Factory(PvLbl, LkLbl, Model);
  auto Defs = std::make_shared<DefTable>();
  defineIncrProgram(P, *Defs);

  TripleCase TC;
  TC.Main = Parallel ? Prog::par(Prog::call("incr", {}),
                                 Prog::call("incr", {}))
                     : Prog::call("incr", {});
  uint64_t Delta = Parallel ? 2 : 1;

  TC.S.Name = Parallel ? "parallel_incr" : "incr";
  TC.S.C = P.C;
  TC.S.Pre = Assertion("counter resource installed", [P](const View &V) {
    return V.hasLabel(P.Lk) && !P.HoldsLock(V);
  });
  TC.S.PostName = "self contribution grew by the number of increments";
  auto ClientSelf = P.ClientSelf;
  Label Lk = P.Lk;
  TC.S.Post = [ClientSelf, Delta, Lk](const Val &R, const View &I,
                                      const View &F) {
    if (!R.isUnit() && !R.isPair())
      return false;
    if (ClientSelf(F).getNat() != ClientSelf(I).getNat() + Delta)
      return false;
    // When the lock is free in the final state, the counter cell equals
    // the combined contribution (the resource invariant, observable).
    const Val *Cell = F.joint(Lk).tryLookup(counterResourceCell());
    if (Cell) {
      std::optional<PCMVal> Total = F.selfOtherJoin(Lk);
      if (!Total ||
          Cell->getInt() !=
              static_cast<int64_t>(Total->second().getNat()))
        return false;
    }
    return true;
  };

  for (uint64_t EnvTotal : {uint64_t{0}, uint64_t{1}})
    TC.Instances.push_back(
        VerifyInstance{incrInitialState(P, EnvTotal,
                                        PCMType::pairOf(TokenType,
                                                        PCMType::nat())),
                       {}});

  TC.Opts.Ambient = P.C;
  TC.Opts.EnvInterference = EnvInterference;
  TC.Defs = Defs;
  return TC;
}

} // namespace

VerificationSession fcsl::makeCgIncrementSession() {
  VerificationSession Session("CG increment");

  // Libs: the nat-PCM addition laws this client's reasoning leans on.
  PCMTypeRef LawType = PCMType::nat();
  std::vector<PCMVal> LawSample;
  for (uint64_t N = 0; N <= 4; ++N)
    LawSample.push_back(PCMVal::ofNat(N));
  Session.addObligation(
      ObCategory::Libs, "nat_pcm_laws",
      pcmLawInputs(LawType, LawSample, 1).text("cancellative"), [LawSample] {
        PCMLawReport R = checkPCMLaws(*PCMType::nat(), LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  // Main: sequential increment under interference, with both locks; then
  // the parallel client (closed world so the +2 outcome is exact).
  addTriple(Session, "incr_with_cas_lock",
            incrCaseWith(casLockFactory(), PCMType::mutex(),
                         /*Parallel=*/false, /*EnvInterference=*/true));
  addTriple(Session, "incr_with_ticket_lock",
            incrCaseWith(ticketLockFactory(), PCMType::ptrSet(),
                         /*Parallel=*/false, /*EnvInterference=*/true));
  addTriple(Session, "parallel_incr_cas_lock",
            incrCaseWith(casLockFactory(), PCMType::mutex(),
                         /*Parallel=*/true, /*EnvInterference=*/false));
  addTriple(Session, "parallel_incr_ticket_lock",
            incrCaseWith(ticketLockFactory(), PCMType::ptrSet(),
                         /*Parallel=*/true, /*EnvInterference=*/false));

  return Session;
}

void fcsl::registerCgIncrementLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "CG increment",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}},
      {"Abstract lock"}});
}
