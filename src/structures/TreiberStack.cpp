//===- structures/TreiberStack.cpp - Treiber's lock-free stack -------------===//
//
// Part of fcsl-cpp. See TreiberStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/TreiberStack.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

using namespace fcsl;

namespace {

/// The value environment pushes carry (fixing it bounds interference
/// enumeration without losing interference *shapes*).
const int64_t EnvPushValue = 7;

/// Builds the cons-list encoding of a stack (top first).
Val listVal(const std::vector<int64_t> &Elems) {
  Val Out = Val::unit();
  for (auto It = Elems.rbegin(); It != Elems.rend(); ++It)
    Out = Val::pair(Val::ofInt(*It), Out);
  return Out;
}

/// The combined history's final abstract state (empty stack if none).
Val lastAbstractState(const History &Combined) {
  if (Combined.isEmpty())
    return Val::unit();
  return Combined.tryLookup(Combined.lastStamp())->After;
}

/// One push entry appended to a self history.
History appendEntry(const History &H, uint64_t Stamp, Val Before,
                    Val After) {
  History Out = H;
  Out.add(Stamp, HistEntry{std::move(Before), std::move(After)});
  return Out;
}

/// Conservative footprint shared by the stack's commit steps: the Treiber
/// joint heap (cells enter and leave on push/pop, and the sentinel is
/// rewritten), the agent's history contribution at Tr, the agent's private
/// heap at Pv (push consumes a node, pop deposits one), and a read of the
/// other agents' histories (the abstract Before state and the interference
/// cap both come from the combined history).
Footprint treiberFootprint(Label Pv, Label Tr) {
  return Footprint::none()
      .readWrite(FpAtom::joint(Tr))
      .readWrite(FpAtom::selfAux(Tr))
      .readWrite(FpAtom::selfAux(Pv))
      .read(FpAtom::otherAux(Tr));
}

} // namespace

std::optional<Val> fcsl::treiberAbstractStack(const TreiberCase &C,
                                              const Heap &Joint) {
  const Val *Head = Joint.tryLookup(C.Sentinel);
  if (!Head || !Head->isPtr())
    return std::nullopt;
  std::vector<int64_t> Elems;
  std::set<Ptr> Seen;
  Ptr Cur = Head->getPtr();
  while (!Cur.isNull()) {
    if (!Seen.insert(Cur).second)
      return std::nullopt; // Cycle.
    const Val *Cell = Joint.tryLookup(Cur);
    if (!Cell || !Cell->isPair() || !Cell->first().isInt() ||
        !Cell->second().isPtr())
      return std::nullopt;
    Elems.push_back(Cell->first().getInt());
    Cur = Cell->second().getPtr();
  }
  // No junk cells: sentinel + list nodes account for the whole heap.
  if (Seen.size() + 1 != Joint.size())
    return std::nullopt;
  return listVal(Elems);
}

TreiberCase fcsl::makeTreiberCase(Label Pv, Label Tr, uint64_t EnvHistCap) {
  TreiberCase Case;
  Case.Pv = Pv;
  Case.Tr = Tr;
  Case.Sentinel = Ptr(9400 + Tr);
  Ptr Snt = Case.Sentinel;

  // --- Coherence -----------------------------------------------------------
  auto Coh = [Snt, Tr, Pv](const View &S) {
    if (!S.hasLabel(Tr) || !S.hasLabel(Pv))
      return false;
    if (S.self(Tr).kind() != PCMKind::Hist ||
        S.other(Tr).kind() != PCMKind::Hist)
      return false;
    std::optional<History> Combined =
        History::join(S.self(Tr).getHist(), S.other(Tr).getHist());
    if (!Combined || !Combined->isContinuous())
      return false;
    if (!Combined->isEmpty() &&
        !(Combined->tryLookup(1)->Before == Val::unit()))
      return false;
    // Walk the concrete list.
    const Val *Head = S.joint(Tr).tryLookup(Snt);
    if (!Head || !Head->isPtr())
      return false;
    std::vector<int64_t> Elems;
    std::set<Ptr> Seen;
    Ptr Cur = Head->getPtr();
    while (!Cur.isNull()) {
      if (!Seen.insert(Cur).second)
        return false;
      const Val *Cell = S.joint(Tr).tryLookup(Cur);
      if (!Cell || !Cell->isPair() || !Cell->first().isInt() ||
          !Cell->second().isPtr())
        return false;
      Elems.push_back(Cell->first().getInt());
      Cur = Cell->second().getPtr();
    }
    if (Seen.size() + 1 != S.joint(Tr).size())
      return false;
    return lastAbstractState(*Combined) == listVal(Elems);
  };

  auto Treiber = makeConcurroid(
      "Treiber", {OwnedLabel{Tr, "tr", PCMType::hist()}}, Coh);

  // Shared commit logic for pushes (transition enumeration and action).
  auto PushCommit = [Snt, Tr, Pv](const View &Pre, Ptr Node,
                                  int64_t V) -> std::optional<View> {
    const Heap &Mine = Pre.self(Pv).getHeap();
    if (!Mine.contains(Node))
      return std::nullopt;
    Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
    std::optional<History> Combined =
        History::join(Pre.self(Tr).getHist(), Pre.other(Tr).getHist());
    if (!Combined)
      return std::nullopt;
    Val Before = lastAbstractState(*Combined);
    Val After = Val::pair(Val::ofInt(V), Before);
    View Post = Pre;
    Heap Joint = Pre.joint(Tr);
    Joint.update(Snt, Val::ofPtr(Node));
    Joint.insert(Node, Val::pair(Val::ofInt(V), Val::ofPtr(Head)));
    Post.setJoint(Tr, std::move(Joint));
    Heap NewMine = Mine;
    NewMine.remove(Node);
    Post.setSelf(Pv, PCMVal::ofHeap(std::move(NewMine)));
    Post.setSelf(Tr, PCMVal::ofHist(appendEntry(
                         Pre.self(Tr).getHist(), Combined->lastStamp() + 1,
                         std::move(Before), std::move(After))));
    return Post;
  };

  auto PopCommit = [Snt, Tr, Pv](const View &Pre) -> std::optional<View> {
    Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
    if (Head.isNull())
      return std::nullopt;
    const Val &Cell = Pre.joint(Tr).lookup(Head);
    std::optional<History> Combined =
        History::join(Pre.self(Tr).getHist(), Pre.other(Tr).getHist());
    if (!Combined)
      return std::nullopt;
    Val Before = lastAbstractState(*Combined);
    if (!Before.isPair())
      return std::nullopt;
    Val After = Before.second();
    View Post = Pre;
    Heap Joint = Pre.joint(Tr);
    Joint.update(Snt, Cell.second());
    Joint.remove(Head);
    Post.setJoint(Tr, std::move(Joint));
    std::optional<Heap> Mine =
        Heap::join(Pre.self(Pv).getHeap(), Heap::singleton(Head, Cell));
    if (!Mine)
      return std::nullopt;
    Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
    Post.setSelf(Tr, PCMVal::ofHist(appendEntry(
                         Pre.self(Tr).getHist(), Combined->lastStamp() + 1,
                         std::move(Before), std::move(After))));
    return Post;
  };

  auto HistSize = [Tr](const View &S) {
    return S.self(Tr).getHist().size() + S.other(Tr).getHist().size();
  };

  // --- tr_push (acquire: the node cell enters the shared structure) -----
  Treiber->addTransition(Transition(
      "treiber_push", TransitionKind::Acquire,
      [PushCommit, HistSize, Pv, EnvHistCap](const View &Pre)
          -> std::vector<View> {
        std::vector<View> Out;
        if (HistSize(Pre) >= EnvHistCap)
          return Out; // Bounded interference.
        for (const auto &Cell : Pre.self(Pv).getHeap()) {
          std::optional<View> Post =
              PushCommit(Pre, Cell.first, EnvPushValue);
          if (Post)
            Out.push_back(std::move(*Post));
        }
        return Out;
      },
      // Thread pushes may carry any value; coverage is structural: the
      // pushed node and value are read off the post-state head.
      [PushCommit, Snt, Tr, Pv](const View &Pre, const View &Post) {
        if (!Post.hasLabel(Tr))
          return false;
        const Val *Head = Post.joint(Tr).tryLookup(Snt);
        if (!Head || !Head->isPtr() || Head->getPtr().isNull())
          return false;
        Ptr Node = Head->getPtr();
        if (!Pre.self(Pv).getHeap().contains(Node))
          return false;
        const Val *Cell = Post.joint(Tr).tryLookup(Node);
        if (!Cell || !Cell->isPair() || !Cell->first().isInt())
          return false;
        std::optional<View> Candidate =
            PushCommit(Pre, Node, Cell->first().getInt());
        return Candidate && *Candidate == Post;
      }).withFootprint(treiberFootprint(Pv, Tr)));

  // --- tr_pop (release: the head cell leaves) ----------------------------
  Treiber->addTransition(Transition(
      "treiber_pop", TransitionKind::Release,
      [PopCommit, HistSize, EnvHistCap](const View &Pre)
          -> std::vector<View> {
        std::vector<View> Out;
        if (HistSize(Pre) >= EnvHistCap)
          return Out;
        std::optional<View> Post = PopCommit(Pre);
        if (Post)
          Out.push_back(std::move(*Post));
        return Out;
      },
      [PopCommit](const View &Pre, const View &Post) {
        std::optional<View> Candidate = PopCommit(Pre);
        return Candidate && *Candidate == Post;
      }).withFootprint(treiberFootprint(Pv, Tr)));

  ConcurroidRef PrivC = makePriv(Pv);
  Case.Treiber = Treiber;
  Case.C = entangle(PrivC, Treiber);

  // --- Actions --------------------------------------------------------------
  Case.ReadHead = makeAction(
      "read_head", Case.C, 0,
      [Snt, Tr](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        const Val *Head = Pre.joint(Tr).tryLookup(Snt);
        if (!Head)
          return std::nullopt;
        return std::vector<ActOutcome>{{*Head, Pre}};
      },
      Footprint::none().read(FpAtom::jointCell(Tr, Snt)));

  Case.TryPush = makeAction(
      "try_push", Case.C, 3,
      [Snt, Tr, PushCommit](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr() || !Args[1].isInt() || !Args[2].isPtr())
          return std::nullopt;
        Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
        if (Head != Args[2].getPtr())
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        std::optional<View> Post =
            PushCommit(Pre, Args[0].getPtr(), Args[1].getInt());
        if (!Post)
          return std::nullopt; // Node not privately owned: unsafe.
        return std::vector<ActOutcome>{{Val::ofBool(true),
                                        std::move(*Post)}};
      },
      treiberFootprint(Pv, Tr),
      // A failed CAS only observes the sentinel: as long as the head stays
      // different from the expected snapshot, the step reads one joint
      // cell and changes nothing. Steps independent of that read cannot
      // make the comparison succeed.
      [Snt, Tr, Pv](const View &Pre,
                    const std::vector<Val> &Args) -> Footprint {
        if (Pre.hasLabel(Tr) && Args.size() == 3 && Args[2].isPtr()) {
          const Val *Head = Pre.joint(Tr).tryLookup(Snt);
          if (Head && Head->isPtr() && Head->getPtr() != Args[2].getPtr())
            return Footprint::none().read(FpAtom::jointCell(Tr, Snt));
        }
        return treiberFootprint(Pv, Tr);
      });

  Case.TryPop = makeAction(
      "try_pop", Case.C, 1,
      [Snt, Tr, PopCommit](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Args[0].isPtr() || Args[0].getPtr().isNull())
          return std::nullopt;
        Ptr Head = Pre.joint(Tr).lookup(Snt).getPtr();
        if (Head != Args[0].getPtr())
          return std::vector<ActOutcome>{
              {Val::pair(Val::ofBool(false), Val::ofInt(0)), Pre}};
        const Val &Cell = Pre.joint(Tr).lookup(Head);
        std::optional<View> Post = PopCommit(Pre);
        if (!Post)
          return std::nullopt;
        return std::vector<ActOutcome>{
            {Val::pair(Val::ofBool(true), Cell.first()),
             std::move(*Post)}};
      },
      treiberFootprint(Pv, Tr),
      // Mirrors try_push: a failed pop CAS reads only the sentinel.
      [Snt, Tr, Pv](const View &Pre,
                    const std::vector<Val> &Args) -> Footprint {
        if (Pre.hasLabel(Tr) && Args.size() == 1 && Args[0].isPtr()) {
          const Val *Head = Pre.joint(Tr).tryLookup(Snt);
          if (Head && Head->isPtr() && Head->getPtr() != Args[0].getPtr())
            return Footprint::none().read(FpAtom::jointCell(Tr, Snt));
        }
        return treiberFootprint(Pv, Tr);
      });

  // --- Programs ---------------------------------------------------------
  // push(p, v) := h <-- read_head; b <-- try_push(p, v, h);
  //               if b then ret () else push(p, v).
  Case.Defs.define(
      "push",
      FuncDef{{"p", "v"},
              Prog::bind(
                  Prog::act(Case.ReadHead, {}), "h",
                  Prog::bind(
                      Prog::act(Case.TryPush,
                                {Expr::var("p"), Expr::var("v"),
                                 Expr::var("h")}),
                      "b",
                      Prog::ifThenElse(Expr::var("b"), Prog::retUnit(),
                                       Prog::call("push",
                                                  {Expr::var("p"),
                                                   Expr::var("v")}))))});
  // pop() := h <-- read_head;
  //          if h == null then ret (false, 0)
  //          else r <-- try_pop(h); if r.1 then ret (true, r.2) else pop().
  Case.Defs.define(
      "pop",
      FuncDef{{},
              Prog::bind(
                  Prog::act(Case.ReadHead, {}), "h",
                  Prog::ifThenElse(
                      Expr::isNull(Expr::var("h")),
                      Prog::ret(Expr::mkPair(Expr::litBool(false),
                                             Expr::litInt(0))),
                      Prog::bind(
                          Prog::act(Case.TryPop, {Expr::var("h")}), "r",
                          Prog::ifThenElse(
                              Expr::fst(Expr::var("r")),
                              Prog::ret(Expr::mkPair(
                                  Expr::litBool(true),
                                  Expr::snd(Expr::var("r")))),
                              Prog::call("pop", {})))))});
  return Case;
}

GlobalState fcsl::treiberState(const TreiberCase &C,
                               const std::vector<int64_t> &Elems,
                               unsigned MyCells, unsigned EnvCells) {
  // Build the concrete list (cells 40, 41, ...) and the priming history,
  // ascribed to the environment.
  Heap Joint;
  Ptr Head = Ptr::null();
  for (size_t I = Elems.size(); I-- > 0;) {
    Ptr Node(static_cast<uint32_t>(40 + I));
    Joint.insert(Node, Val::pair(Val::ofInt(Elems[I]), Val::ofPtr(Head)));
    Head = Node;
  }
  Joint.insert(C.Sentinel, Val::ofPtr(Head));

  History EnvHist;
  {
    Val State = Val::unit();
    uint64_t Stamp = 1;
    for (size_t I = Elems.size(); I-- > 0; ++Stamp) {
      Val Next = Val::pair(Val::ofInt(Elems[I]), State);
      EnvHist.add(Stamp, HistEntry{State, Next});
      State = Next;
    }
  }

  GlobalState GS;
  GS.addLabel(C.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(C.Tr, PCMType::hist(), std::move(Joint),
              PCMVal::ofHist(std::move(EnvHist)), /*EnvClosed=*/false);

  Heap Mine;
  for (unsigned I = 0; I < MyCells; ++I)
    Mine.insert(Ptr(20 + I), Val::pair(Val::ofInt(0), Val::ofPtr({})));
  GS.setSelf(C.Pv, rootThread(), PCMVal::ofHeap(std::move(Mine)));

  Heap EnvMine;
  for (unsigned I = 0; I < EnvCells; ++I)
    EnvMine.insert(Ptr(30 + I), Val::pair(Val::ofInt(0), Val::ofPtr({})));
  GS.setEnvSelf(C.Pv, PCMVal::ofHeap(std::move(EnvMine)));
  return GS;
}

std::vector<View> fcsl::treiberSampleViews(const TreiberCase &C) {
  std::vector<View> Out;
  auto FromState = [&](const std::vector<int64_t> &Elems, unsigned MyCells,
                       bool HistIsMine) {
    GlobalState GS = treiberState(C, Elems, MyCells, /*EnvCells=*/1);
    if (HistIsMine) {
      // Re-ascribe the priming history to the observing thread.
      PCMVal H = GS.envSelf(C.Tr);
      GS.setEnvSelf(C.Tr, PCMType::hist()->unit());
      GS.setSelf(C.Tr, rootThread(), std::move(H));
    }
    Out.push_back(GS.viewFor(rootThread()));
  };
  FromState({}, 0, false);
  FromState({}, 1, false);
  FromState({5}, 1, false);
  FromState({5}, 1, true);
  FromState({7, 5}, 0, false);
  FromState({7, 5}, 2, true);
  return Out;
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label TrLbl = 2;

/// self-history delta of exactly one entry; returns it.
std::optional<std::pair<uint64_t, HistEntry>>
selfHistDelta(const View &I, const View &F, Label Tr) {
  const History &Before = I.self(Tr).getHist();
  const History &After = F.self(Tr).getHist();
  if (After.size() != Before.size() + 1)
    return std::nullopt;
  for (const auto &Entry : After) {
    const HistEntry *Old = Before.tryLookup(Entry.first);
    if (Old) {
      if (!(*Old == Entry.second))
        return std::nullopt;
      continue;
    }
    return std::make_pair(Entry.first, Entry.second);
  }
  return std::nullopt;
}

} // namespace

VerificationSession fcsl::makeTreiberSession() {
  VerificationSession Session("Treiber stack");
  auto Case = std::make_shared<TreiberCase>(
      makeTreiberCase(PvLbl, TrLbl, /*EnvHistCap=*/3));
  auto Samples =
      std::make_shared<std::vector<View>>(treiberSampleViews(*Case));

  std::vector<PCMVal> LawSample;
  LawSample.push_back(PCMVal::ofHist(History()));
  {
    History H1, H2, H12;
    H1.add(1, HistEntry{Val::unit(), Val::ofInt(1)});
    H2.add(2, HistEntry{Val::ofInt(1), Val::ofInt(2)});
    H12.add(1, HistEntry{Val::unit(), Val::ofInt(1)});
    H12.add(2, HistEntry{Val::ofInt(1), Val::ofInt(2)});
    LawSample.push_back(PCMVal::ofHist(H1));
    LawSample.push_back(PCMVal::ofHist(H2));
    LawSample.push_back(PCMVal::ofHist(H12));
  }
  Session.addObligation(
      ObCategory::Libs, "hist_pcm_laws",
      pcmLawInputs(PCMType::hist(), LawSample, 1).text("cancellative"),
      [LawSample] {
        PCMLawReport R = checkPCMLaws(*PCMType::hist(), LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  Session.addObligation(ObCategory::Conc, "treiber_metatheory",
                        sampleInputs(ObKind::Metatheory, *Case->C,
                                     *Samples, 1),
                        [Case, Samples] {
    return toObligation(checkConcurroidWellFormed(*Case->C, *Samples));
  });

  std::vector<ActionArgs> PushArgs = {
      {Val::ofPtr(Ptr(20)), Val::ofInt(1), Val::ofPtr(Ptr::null())},
      {Val::ofPtr(Ptr(20)), Val::ofInt(2), Val::ofPtr(Ptr(40))},
      {Val::ofPtr(Ptr(21)), Val::ofInt(3), Val::ofPtr(Ptr(41))}};
  std::vector<ActionArgs> PopArgs = {{Val::ofPtr(Ptr(40))},
                                     {Val::ofPtr(Ptr(41))}};

  Session.addObligation(ObCategory::Acts, "read_head_wf",
                        actionInputs(*Case->ReadHead, *Samples, {{}}, 1)
                            .text("wf"),
                        [Case, Samples] {
    return toObligation(
        checkActionWellFormed(*Case->ReadHead, *Samples, {{}}));
  });
  Session.addObligation(ObCategory::Acts, "try_push_wf",
                        actionInputs(*Case->TryPush, *Samples, PushArgs, 1)
                            .text("wf"),
                        [Case, Samples, PushArgs] {
    return toObligation(
        checkActionWellFormed(*Case->TryPush, *Samples, PushArgs));
  });
  Session.addObligation(ObCategory::Acts, "try_pop_wf",
                        actionInputs(*Case->TryPop, *Samples, PopArgs, 1)
                            .text("wf"),
                        [Case, Samples, PopArgs] {
    return toObligation(
        checkActionWellFormed(*Case->TryPop, *Samples, PopArgs));
  });

  Session.addObligation(ObCategory::Stab, "my_history_stable",
                        stabilityInputs(*Case->C,
                                        "my history contains stamp 1",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Tr = Case->Tr;
    Assertion MyHist("my history contains stamp 1", [Tr](const View &S) {
      return S.self(Tr).getHist().contains(1);
    });
    return toObligation(checkStability(MyHist, *Case->C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "history_only_grows",
                        stabilityInputs(*Case->C,
                                        "the combined history is append-only",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Tr = Case->Tr;
    return toObligation(checkRelationStability(
        [Tr](const View &Seed, const View &S) {
          std::optional<History> A = History::join(
              Seed.self(Tr).getHist(), Seed.other(Tr).getHist());
          std::optional<History> B = History::join(
              S.self(Tr).getHist(), S.other(Tr).getHist());
          if (!A || !B || B->size() < A->size())
            return false;
          for (const auto &Entry : *A) {
            const HistEntry *E = B->tryLookup(Entry.first);
            if (!E || !(*E == Entry.second))
              return false;
          }
          return true;
        },
        "the combined history is append-only", *Case->C, *Samples));
  });

  {
    TripleCase TC;
    TC.Main = Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(4)});
    TC.S.Name = "push";
    TC.S.C = Case->C;
    Label Pv = Case->Pv, Tr = Case->Tr;
    TC.S.Pre = Assertion("node cell owned", [Pv](const View &V) {
      return V.self(Pv).getHeap().contains(Ptr(20));
    });
    TC.S.PostName = "my history gained exactly the push entry";
    TC.S.Post = [Tr](const Val &R, const View &I, const View &F) {
      if (!R.isUnit())
        return false;
      auto Delta = selfHistDelta(I, F, Tr);
      return Delta &&
             Delta->second.After ==
                 Val::pair(Val::ofInt(4), Delta->second.Before);
    };
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {}, 1, 1), {}});
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {5}, 1, 1), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "push_spec", std::move(TC));
  }

  {
    TripleCase TC;
    TC.Main = Prog::call("pop", {});
    TC.S.Name = "pop";
    TC.S.C = Case->C;
    Label Tr = Case->Tr;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "pop entry recorded, or empty observed with no entry";
    TC.S.Post = [Tr](const Val &R, const View &I, const View &F) {
      if (!R.isPair() || !R.first().isBool())
        return false;
      if (!R.first().getBool())
        return I.self(Tr).getHist() == F.self(Tr).getHist();
      auto Delta = selfHistDelta(I, F, Tr);
      return Delta &&
             Delta->second.Before ==
                 Val::pair(R.second(), Delta->second.After);
    };
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {}, 0, 1), {}});
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {5}, 0, 1), {}});
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {7, 5}, 0, 1), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "pop_spec", std::move(TC));
  }

  {
    // par(push(20, 1), push(21, 2)) in a closed world: both entries land.
    TripleCase TC;
    TC.S.Name = "parallel_push";
    TC.S.C = Case->C;
    Label Tr = Case->Tr;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "both pushes recorded in my joined history";
    TC.S.Post = [Tr](const Val &R, const View &I, const View &F) {
      if (!R.isPair())
        return false;
      const History &Mine = F.self(Tr).getHist();
      if (Mine.size() != I.self(Tr).getHist().size() + 2)
        return false;
      bool Saw1 = false, Saw2 = false;
      for (const auto &Entry : Mine) {
        if (Entry.second.After ==
            Val::pair(Val::ofInt(1), Entry.second.Before))
          Saw1 = true;
        if (Entry.second.After ==
            Val::pair(Val::ofInt(2), Entry.second.Before))
          Saw2 = true;
      }
      return Saw1 && Saw2;
    };
    // Children split the private cells: node 20 left, node 21 right.
    Label Pv = Case->Pv;
    SplitFn Split = [Pv](const View &V)
        -> std::map<Label, std::pair<PCMVal, PCMVal>> {
      Heap Mine = V.self(Pv).getHeap();
      Heap Left, Right;
      for (const auto &Cell : Mine)
        (Cell.first == Ptr(20) ? Left : Right)
            .insert(Cell.first, Cell.second);
      return {{Pv, {PCMVal::ofHeap(std::move(Left)),
                    PCMVal::ofHeap(std::move(Right))}}};
    };
    TC.Main = Prog::par(
        Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
        Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}),
        Split);
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {}, 2, 0), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = false;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "parallel_pushes", std::move(TC));
  }

  return Session;
}

void fcsl::registerTreiberLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Treiber stack",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"Treiber", false}},
      {"CG allocator"}});
}
