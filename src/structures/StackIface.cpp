//===- structures/StackIface.cpp - The abstract stack interface ------------===//
//
// Part of fcsl-cpp. See StackIface.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/StackIface.h"

#include "concurroid/Registry.h"
#include "structures/FlatCombiner.h"
#include "structures/TreiberStack.h"

using namespace fcsl;

namespace {

constexpr Label PvLbl = 1;
constexpr Label TrLbl = 2;
constexpr Label FcLbl = 1;

} // namespace

StackProtocol fcsl::treiberStackProtocol() {
  TreiberCase Case = makeTreiberCase(PvLbl, TrLbl, /*EnvHistCap=*/0);

  StackProtocol P;
  P.Name = "Treiber";
  P.C = Case.C;
  P.Defs = std::make_shared<DefTable>(std::move(Case.Defs));
  // s_push(tok, v) := push(tok, v); the token is the private node cell.
  P.Defs->define("s_push",
                 FuncDef{{"tok", "v"},
                         Prog::call("push",
                                    {Expr::var("tok"), Expr::var("v")})});
  // s_pop(tok) := pop(); Treiber pops need no token.
  P.Defs->define("s_pop", FuncDef{{"tok"}, Prog::call("pop", {})});

  P.Initial = treiberState(Case, {}, /*MyCells=*/2, /*EnvCells=*/0);
  P.TokenLeft = Val::ofPtr(Ptr(20));
  P.TokenRight = Val::ofPtr(Ptr(21));

  Label Pv = Case.Pv;
  P.Split = [Pv](const View &V)
      -> std::map<Label, std::pair<PCMVal, PCMVal>> {
    Heap Mine = V.self(Pv).getHeap();
    Heap Left, Right;
    for (const auto &Cell : Mine)
      (Cell.first == Ptr(21) ? Right : Left)
          .insert(Cell.first, Cell.second);
    return {{Pv, {PCMVal::ofHeap(std::move(Left)),
                  PCMVal::ofHeap(std::move(Right))}}};
  };

  Label Tr = Case.Tr;
  P.SelfHist = [Tr](const View &S) { return S.self(Tr).getHist(); };
  return P;
}

StackProtocol fcsl::fcStackProtocol() {
  FlatCombinerCase Case = makeFlatCombinerCase(FcLbl, /*EnvHistCap=*/0);

  StackProtocol P;
  P.Name = "FC";
  P.C = Case.C;
  P.Defs = std::make_shared<DefTable>(std::move(Case.Defs));
  // s_push(tok, v) := flat_combine(tok, push, v); the token is the
  // caller's publication slot.
  P.Defs->define(
      "s_push",
      FuncDef{{"tok", "v"},
              Prog::seq(Prog::call("flat_combine",
                                   {Expr::var("tok"),
                                    Expr::litInt(FcPush),
                                    Expr::var("v")}),
                        Prog::retUnit())});
  // s_pop(tok) := r <-- flat_combine(tok, pop, 0);
  //               ret (~~(r == 0), r)  -- 0 is the empty marker.
  P.Defs->define(
      "s_pop",
      FuncDef{{"tok"},
              Prog::bind(Prog::call("flat_combine",
                                    {Expr::var("tok"),
                                     Expr::litInt(FcPop),
                                     Expr::litInt(0)}),
                         "r",
                         Prog::ret(Expr::mkPair(
                             Expr::notE(Expr::eq(Expr::var("r"),
                                                 Expr::litInt(0))),
                             Expr::var("r"))))});

  P.Initial = flatCombinerState(Case, /*MySlots=*/2);
  P.TokenLeft = Val::ofPtr(Case.Slot1);
  P.TokenRight = Val::ofPtr(Case.Slot2);

  Label Fc = Case.Fc;
  Ptr S2 = Case.Slot2;
  P.Split = [Fc, S2](const View &V)
      -> std::map<Label, std::pair<PCMVal, PCMVal>> {
    const PCMVal &Self = V.self(Fc);
    std::set<Ptr> Left, Right;
    for (Ptr Slot : Self.second().first().getPtrSet())
      (Slot == S2 ? Right : Left).insert(Slot);
    PCMVal L = PCMVal::makePair(
        Self.first(),
        PCMVal::makePair(PCMVal::ofPtrSet(std::move(Left)),
                         PCMVal::ofHist(Self.second().second().getHist())));
    PCMVal R = PCMVal::makePair(
        PCMVal::mutexFree(),
        PCMVal::makePair(PCMVal::ofPtrSet(std::move(Right)),
                         PCMVal::ofHist(History())));
    return {{Fc, {std::move(L), std::move(R)}}};
  };

  P.SelfHist = [Fc](const View &S) {
    return S.self(Fc).second().second().getHist();
  };
  return P;
}

ObligationResult fcsl::verifyUnifiedPushPair(const StackProtocol &P,
                                             int64_t A, int64_t B) {
  Spec S;
  S.Name = P.Name + "/unified_push_pair";
  S.C = P.C;
  S.Pre = assertTrue();
  S.PostName = "both pushes recorded in the joined self history";
  auto SelfHist = P.SelfHist;
  S.Post = [SelfHist, A, B](const Val &R, const View &, const View &F) {
    if (!R.isPair())
      return false;
    History Mine = SelfHist(F);
    if (Mine.size() != 2)
      return false;
    bool SawA = false, SawB = false;
    for (const auto &Entry : Mine) {
      if (Entry.second.After ==
          Val::pair(Val::ofInt(A), Entry.second.Before))
        SawA = true;
      if (Entry.second.After ==
          Val::pair(Val::ofInt(B), Entry.second.Before))
        SawB = true;
    }
    return SawA && SawB;
  };

  ProgRef Main = Prog::par(
      Prog::call("s_push", {Expr::lit(P.TokenLeft), Expr::litInt(A)}),
      Prog::call("s_push", {Expr::lit(P.TokenRight), Expr::litInt(B)}),
      P.Split);
  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = P.Defs.get();
  return toObligation(
      verifyTriple(Main, S, {VerifyInstance{P.Initial, {}}}, Opts));
}

ObligationResult fcsl::verifyUnifiedPushPop(const StackProtocol &P,
                                            int64_t V) {
  Spec S;
  S.Name = P.Name + "/unified_push_pop";
  S.C = P.C;
  S.Pre = assertTrue();
  S.PostName = "pop sees the pushed value or emptiness; push recorded";
  auto SelfHist = P.SelfHist;
  S.Post = [SelfHist, V](const Val &R, const View &, const View &F) {
    if (!R.isPair() || !R.second().isPair())
      return false;
    const Val &PopRes = R.second();
    if (!PopRes.first().isBool())
      return false;
    if (PopRes.first().getBool() && PopRes.second() != Val::ofInt(V))
      return false;
    // The push is always recorded, whoever executed it.
    History Mine = SelfHist(F);
    for (const auto &Entry : Mine)
      if (Entry.second.After ==
          Val::pair(Val::ofInt(V), Entry.second.Before))
        return true;
    return false;
  };

  ProgRef Main = Prog::par(
      Prog::call("s_push", {Expr::lit(P.TokenLeft), Expr::litInt(V)}),
      Prog::call("s_pop", {Expr::lit(P.TokenRight)}), P.Split);
  EngineOptions Opts;
  Opts.Ambient = P.C;
  Opts.EnvInterference = false;
  Opts.Defs = P.Defs.get();
  return toObligation(
      verifyTriple(Main, S, {VerifyInstance{P.Initial, {}}}, Opts));
}

namespace {

/// Declares the inputs of a unified-client obligation: everything the
/// theorem reads off the protocol (concurroid, s_push/s_pop definitions,
/// initial state, tokens) plus the theorem's name and integer arguments.
/// The Split/SelfHist closures are opaque; the site revision stands in
/// for their logic.
ObligationInputs unifiedInputs(const StackProtocol &P,
                               std::string_view Theorem,
                               std::initializer_list<int64_t> Args) {
  ObligationInputs In(ObKind::Triple);
  In.mix(P.C->fingerprint());
  In.text(P.Name);
  In.text(Theorem);
  In.mix(fpOfDefs(*P.Defs));
  In.mix(codecFp(P.Initial));
  In.mix(codecFp(P.TokenLeft));
  In.mix(codecFp(P.TokenRight));
  for (int64_t A : Args)
    In.num(A);
  In.rev(1);
  return In;
}

} // namespace

VerificationSession fcsl::makeStackIfaceSession() {
  VerificationSession Session("Abstract stack");
  auto Treiber = std::make_shared<StackProtocol>(treiberStackProtocol());
  auto Fc = std::make_shared<StackProtocol>(fcStackProtocol());

  Session.addObligation(ObCategory::Main, "push_pair_treiber",
                        unifiedInputs(*Treiber, "push_pair", {1, 2}),
                        [Treiber] {
    return verifyUnifiedPushPair(*Treiber, 1, 2);
  });
  Session.addObligation(ObCategory::Main, "push_pair_fc",
                        unifiedInputs(*Fc, "push_pair", {1, 2}), [Fc] {
    return verifyUnifiedPushPair(*Fc, 1, 2);
  });
  Session.addObligation(ObCategory::Main, "push_pop_treiber",
                        unifiedInputs(*Treiber, "push_pop", {9}),
                        [Treiber] {
    return verifyUnifiedPushPop(*Treiber, 9);
  });
  Session.addObligation(ObCategory::Main, "push_pop_fc",
                        unifiedInputs(*Fc, "push_pop", {9}), [Fc] {
    return verifyUnifiedPushPop(*Fc, 9);
  });
  return Session;
}

void fcsl::registerStackIfaceLibrary() {
  // The interface node the paper left as an exercise: realized by both
  // stack implementations.
  globalRegistry().registerLibrary(LibraryInfo{
      "Abstract stack", {}, {"Treiber stack", "FC-stack"}});
}
