//===- structures/SpinLock.h - CAS-based spinlock (CLock) -------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CAS-based spinlock of the paper's Section 6 ("CAS-lock" row of
/// Table 1): a concurroid `CLock lk` whose joint heap holds a lock bit and,
/// while the lock is free, the protected resource heap. Its self/other
/// carrier is mutex x client PCM: the mutual-exclusion token plus the
/// client's contribution (the "mutual exclusion PCM" and "client-provided
/// PCMs" of the paper's PCM inventory). Acquisition transfers the resource
/// into the caller's private heap across the Priv entanglement.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_SPINLOCK_H
#define FCSL_STRUCTURES_SPINLOCK_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// Builds a CAS-lock protocol instance over labels \p Pv (Priv) and \p Lk.
LockProtocol makeCasLock(Label Pv, Label Lk, const ResourceModel &Model);

/// The LockFactory for the CAS lock (Table 2's CLock column).
LockFactory casLockFactory();

/// The "CAS-lock" row of Table 1: verifies the lock's own obligations and
/// the lock();unlock() round-trip spec against a one-cell resource.
VerificationSession makeSpinLockSession();

/// Registers the library in the global registry (Table 2 / Figure 5).
void registerSpinLockLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_SPINLOCK_H
