//===- structures/LockIface.h - The abstract lock interface -----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract lock interface of the paper's Section 6 / Figure 5: "both
/// lock implementations are instances of the abstract lock interface,
/// which is used to implement and verify the allocator" (and the
/// coarse-grained incrementor). A lock protects a *resource*: a heap
/// satisfying a client-chosen invariant I(resource, total), where `total`
/// is the combined client-PCM contribution of all threads. Acquiring the
/// lock transfers the resource heap into the caller's private heap (via
/// entanglement with Priv); releasing returns a new resource and may
/// augment the caller's client contribution, subject to I.
///
/// Two factories implement the interface: the CAS spinlock (SpinLock.h)
/// and the ticketed lock (TicketLock.h). Clients — CG increment and the CG
/// allocator — are written only against LockProtocol, which is exactly
/// what makes them verifiable with either lock (Table 2's `3L` marks).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_LOCKIFACE_H
#define FCSL_STRUCTURES_LOCKIFACE_H

#include "action/AtomicAction.h"
#include "concurroid/Entangle.h"
#include "concurroid/Priv.h"
#include "prog/Prog.h"

namespace fcsl {

/// The client side of the abstract lock: what the lock protects.
struct ResourceModel {
  /// Carrier of per-thread client contributions (e.g. nat for increment).
  PCMTypeRef ClientType;

  /// The resource invariant I(resource heap, total client contribution),
  /// required whenever the lock is free.
  std::function<bool(const Heap &Resource, const PCMVal &TotalClient)>
      Invariant;

  /// Finite enumeration of environment release options: given the
  /// environment's view *while it holds the lock*, the (new resource, new
  /// env client contribution) pairs it may release with. Bounding this set
  /// bounds interference, keeping exploration finite; each option must
  /// re-establish the invariant and draw its cells from the env's private
  /// heap.
  std::function<std::vector<std::pair<Heap, PCMVal>>(const View &EnvView)>
      EnvReleaseOptions;
};

/// How a client computes its release payload: from the caller's view and
/// the unlock action's arguments, the (new resource heap, new client self)
/// pair; std::nullopt makes the unlock unsafe (precondition violation).
using ReleaseFn = std::function<std::optional<std::pair<Heap, PCMVal>>(
    const View &, const std::vector<Val> &)>;

/// A lock implementation, packaged for clients.
struct LockProtocol {
  std::string Name; ///< "CLock" or "TLock" (Table 2 column names).
  ConcurroidRef C;  ///< entangle(Priv pv, <lock>) — clients may entangle
                    ///< further.
  Label Pv = 0;
  Label Lk = 0;
  PCMTypeRef ClientType;

  /// tryLock: () -> bool. True means acquired: the resource heap is now in
  /// the caller's private heap and the caller's lock token is Own. (The
  /// ticketed lock has no single-action tryLock; it leaves this null and
  /// clients must go through DefineLock.)
  ActionRef TryLock;

  /// Registers a blocking `lock()` program under \p FnName: the CAS lock
  /// spins on tryLock, the ticketed lock takes a ticket and waits for its
  /// turn. This is the entry point clients program against.
  std::function<void(DefTable &Defs, const std::string &FnName)> DefineLock;

  /// Builds the client-specific unlock action: requires the caller to hold
  /// the lock; applies \p Release.
  std::function<ActionRef(std::string Name, unsigned Arity,
                          ReleaseFn Release)>
      MakeUnlock;

  /// Whether the observing thread holds the lock in view \p S.
  std::function<bool(const View &S)> HoldsLock;

  /// The observing thread's client contribution in view \p S.
  std::function<PCMVal(const View &S)> ClientSelf;

  /// Initial joint heap for the lock's label (free lock + \p Resource).
  std::function<Heap(const Heap &Resource)> InitialJoint;

  /// Unit self value for the lock label (NotOwn x client unit, or the
  /// ticket-lock analogue).
  std::function<PCMVal()> UnitSelf;
};

/// A lock factory: both lock implementations have this shape, which is the
/// interface clients are parameterized by.
using LockFactory =
    std::function<LockProtocol(Label Pv, Label Lk, const ResourceModel &)>;

/// Builds the spin-lock program `lock()`: loop { b <-- tryLock; if b then
/// ret () else retry }, registered in \p Defs under \p FnName.
void defineLockLoop(DefTable &Defs, const std::string &FnName,
                    const ActionRef &TryLock);

} // namespace fcsl

#endif // FCSL_STRUCTURES_LOCKIFACE_H
