//===- structures/FcStack.cpp - Stack via flat combining -------------------===//
//
// Part of fcsl-cpp. See FcStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/FcStack.h"

#include "concurroid/Registry.h"

using namespace fcsl;

namespace {

constexpr Label FcLbl = 1;

/// Splits slot ownership between the two parallel clients: slot 1 left,
/// slot 2 right. Lock token and histories stay left (both are unit
/// initially anyway).
SplitFn slotSplit(const FlatCombinerCase &C) {
  Label Fc = C.Fc;
  Ptr S1 = C.Slot1, S2 = C.Slot2;
  return [Fc, S1, S2](const View &V)
             -> std::map<Label, std::pair<PCMVal, PCMVal>> {
    const PCMVal &Self = V.self(Fc);
    std::set<Ptr> Mine = Self.second().first().getPtrSet();
    std::set<Ptr> Left, Right;
    for (Ptr P : Mine)
      (P == S2 ? Right : Left).insert(P);
    PCMVal L = PCMVal::makePair(
        Self.first(),
        PCMVal::makePair(PCMVal::ofPtrSet(std::move(Left)),
                         PCMVal::ofHist(Self.second().second().getHist())));
    PCMVal R = PCMVal::makePair(
        PCMVal::mutexFree(),
        PCMVal::makePair(PCMVal::ofPtrSet(std::move(Right)),
                         PCMVal::ofHist(History())));
    return {{Fc, {std::move(L), std::move(R)}}};
  };
}

} // namespace

VerificationSession fcsl::makeFcStackSession() {
  VerificationSession Session("FC-stack");
  auto Case = std::make_shared<FlatCombinerCase>(
      makeFlatCombinerCase(FcLbl, /*EnvHistCap=*/0));

  // Libs: the fc_R relation instance for the sequential stack — the
  // validity predicate relating operation, argument, result and history
  // contribution (Section 4.2): push entries grow the state by their
  // argument, pop entries shrink it by their result.
  Session.addObligation(ObCategory::Libs, "fc_R_stack_instance",
                        ObligationInputs(ObKind::Check)
                            .text("fc_R_stack_instance")
                            .num(FcPush)
                            .num(FcPop)
                            .rev(1),
                        [] {
    auto FcR = [](int64_t Op, const Val &Arg, const Val &Res,
                  const HistEntry &G) {
      if (Op == FcPush)
        return Res.isUnit() && G.After == Val::pair(Arg, G.Before);
      if (G.Before.isUnit()) // Pop on empty.
        return Res == Val::ofInt(0) && G.After == G.Before;
      return G.Before == Val::pair(Res, G.After);
    };
    ObligationResult O;
    // Positive instances.
    Val S0 = Val::unit();
    Val S1 = Val::pair(Val::ofInt(4), S0);
    O.Checks += 4;
    O.Passed = false;
    if (!FcR(FcPush, Val::ofInt(4), Val::unit(), HistEntry{S0, S1})) {
      O.Note = "push instance rejected";
      return O;
    }
    if (!FcR(FcPop, Val::ofInt(0), Val::ofInt(4), HistEntry{S1, S0})) {
      O.Note = "pop instance rejected";
      return O;
    }
    if (!FcR(FcPop, Val::ofInt(0), Val::ofInt(0), HistEntry{S0, S0})) {
      O.Note = "empty pop rejected";
      return O;
    }
    // Negative instance: a pop that invents a value.
    if (FcR(FcPop, Val::ofInt(0), Val::ofInt(9), HistEntry{S1, S0})) {
      O.Note = "bogus pop accepted";
      return O;
    }
    O.Passed = true;
    return O;
  });

  {
    // par(flat_combine(slot1, push, 1), flat_combine(slot2, push, 2)):
    // both pushes are recorded; the stack holds both values (closed
    // world, no external env).
    TripleCase TC;
    TC.S.Name = "fc_stack_parallel_push";
    TC.S.C = Case->C;
    Label Fc = Case->Fc;
    Ptr StkP = Case->StackCell;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "both pushes recorded; stack holds {1, 2}";
    TC.S.Post = [Fc, StkP](const Val &R, const View &, const View &F) {
      if (!R.isPair())
        return false;
      // Joined self history has both push entries.
      const History &Mine = F.self(Fc).second().second().getHist();
      if (Mine.size() != 2)
        return false;
      bool Saw1 = false, Saw2 = false;
      for (const auto &Entry : Mine) {
        if (Entry.second.After ==
            Val::pair(Val::ofInt(1), Entry.second.Before))
          Saw1 = true;
        if (Entry.second.After ==
            Val::pair(Val::ofInt(2), Entry.second.Before))
          Saw2 = true;
      }
      if (!Saw1 || !Saw2)
        return false;
      // The final stack contains exactly {1, 2} in some order.
      const Val *Stack = F.joint(Fc).tryLookup(StkP);
      if (!Stack || !Stack->isPair() || !Stack->second().isPair() ||
          !Stack->second().second().isUnit())
        return false;
      int64_t Top = Stack->first().getInt();
      int64_t Below = Stack->second().first().getInt();
      return (Top == 1 && Below == 2) || (Top == 2 && Below == 1);
    };
    TC.Main = Prog::par(
        Prog::call("flat_combine",
                   {Expr::litPtr(Case->Slot1), Expr::litInt(FcPush),
                    Expr::litInt(1)}),
        Prog::call("flat_combine",
                   {Expr::litPtr(Case->Slot2), Expr::litInt(FcPush),
                    Expr::litInt(2)}),
        slotSplit(*Case));
    TC.Instances.push_back(
        VerifyInstance{flatCombinerState(*Case, 2), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = false;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "concurrent_pushes_via_fc", std::move(TC));
  }

  {
    // par(flat_combine(push 3), flat_combine(pop)): the pop either helps
    // itself to 3 or observes emptiness, but the push always lands.
    TripleCase TC;
    TC.S.Name = "fc_stack_push_pop";
    TC.S.C = Case->C;
    Label Fc = Case->Fc;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "pop returns 3 or empty-marker 0; push always recorded";
    TC.S.Post = [Fc](const Val &R, const View &, const View &F) {
      if (!R.isPair() || !R.second().isInt())
        return false;
      int64_t Popped = R.second().getInt();
      if (Popped != 0 && Popped != 3)
        return false;
      const History &Mine = F.self(Fc).second().second().getHist();
      bool SawPush = false;
      for (const auto &Entry : Mine)
        if (Entry.second.After ==
            Val::pair(Val::ofInt(3), Entry.second.Before))
          SawPush = true;
      return SawPush && Mine.size() == 2;
    };
    TC.Main = Prog::par(
        Prog::call("flat_combine",
                   {Expr::litPtr(Case->Slot1), Expr::litInt(FcPush),
                    Expr::litInt(3)}),
        Prog::call("flat_combine",
                   {Expr::litPtr(Case->Slot2), Expr::litInt(FcPop),
                    Expr::litInt(0)}),
        slotSplit(*Case));
    TC.Instances.push_back(
        VerifyInstance{flatCombinerState(*Case, 2), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = false;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "push_pop_pair_via_fc", std::move(TC));
  }

  return Session;
}

void fcsl::registerFcStackLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "FC-stack",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"FlatCombine", false}},
      {"Flat combiner"}});
}
