//===- structures/CgIncrement.h - Coarse-grained increment ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "CG increment" row of Table 1: concurrent incrementation of a
/// shared counter protected by the abstract lock interface (after
/// Ley-Wild & Nanevski's subjective auxiliary state). Each thread's
/// contribution lives in the PCM of naturals under addition; the lock's
/// resource invariant ties the counter cell to the *combined*
/// contribution, so the parallel-increment client can conclude that two
/// increments add two — the textbook subjectivity example. The program
/// needs no concurroid of its own (the `-` cells of Table 1): it reuses
/// Priv and a lock through the interface, so it verifies unchanged with
/// either the CAS lock or the ticketed lock (Table 2's `3L`).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_CGINCREMENT_H
#define FCSL_STRUCTURES_CGINCREMENT_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// The shared counter's resource model over \p Lk (cell &1 holds the total
/// contribution; environment releases add exactly one, up to \p EnvCap).
ResourceModel counterResourceModel(Label Lk, uint64_t EnvCap);

/// The counter cell protected by the lock.
Ptr counterResourceCell();

/// Builds the increment client over a lock produced by \p Factory:
/// registers `lock` (+ helpers) and `incr` in \p Defs and returns the
/// unlock action used by `incr`.
ActionRef defineIncrProgram(const LockProtocol &P, DefTable &Defs);

/// The "CG increment" Table 1 row. Verifies incr with the CAS lock and the
/// ticketed lock, plus the parallel-increment client.
VerificationSession makeCgIncrementSession();

void registerCgIncrementLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_CGINCREMENT_H
