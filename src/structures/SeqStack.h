//===- structures/SeqStack.h - Sequential stack via hiding ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Seq. stack" row of Table 1: "a sequential stack (obtained from
/// Treiber stack via hiding)". The client installs the Treiber concurroid
/// over its own private heap with `hide`, shielding it from all
/// interference; under that closed-world assumption the fine-grained stack
/// enjoys the purely sequential LIFO specification.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_SEQSTACK_H
#define FCSL_STRUCTURES_SEQSTACK_H

#include "structures/TreiberStack.h"

namespace fcsl {

/// The "Seq. stack" Table 1 row.
VerificationSession makeSeqStackSession();

void registerSeqStackLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_SEQSTACK_H
