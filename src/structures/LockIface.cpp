//===- structures/LockIface.cpp - The abstract lock interface --------------===//
//
// Part of fcsl-cpp. See LockIface.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/LockIface.h"

using namespace fcsl;

void fcsl::defineLockLoop(DefTable &Defs, const std::string &FnName,
                          const ActionRef &TryLock) {
  // lock() := b <-- tryLock; if b then ret () else lock().
  ProgRef Body = Prog::bind(
      Prog::act(TryLock, {}), "b",
      Prog::ifThenElse(Expr::var("b"), Prog::retUnit(),
                       Prog::call(FnName, {})));
  Defs.define(FnName, FuncDef{{}, std::move(Body)});
}
