//===- structures/ProdCons.h - Producer/Consumer over Treiber ---*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Prod/Cons" row of Table 1: a Treiber-stack-based producer/consumer
/// client. The producer pushes a fixed sequence of values; the consumer
/// loops popping until it has received as many. The triple proves exact
/// delivery: the consumer receives precisely the produced multiset.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_PRODCONS_H
#define FCSL_STRUCTURES_PRODCONS_H

#include "structures/TreiberStack.h"

namespace fcsl {

/// The "Prod/Cons" Table 1 row.
VerificationSession makeProdConsSession();

void registerProdConsLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_PRODCONS_H
