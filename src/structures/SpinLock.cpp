//===- structures/SpinLock.cpp - CAS-based spinlock (CLock) ----------------===//
//
// Part of fcsl-cpp. See SpinLock.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/SpinLock.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

using namespace fcsl;

namespace {

/// The lock bit's pointer, kept away from small resource pointers.
Ptr lockPtrFor(Label Lk) { return Ptr(9000 + Lk); }

/// The resource part of the lock's joint heap (everything but the bit).
Heap resourcePart(const Heap &Joint, Ptr LockPtr) {
  return Joint.without({LockPtr});
}

bool lockBit(const Heap &Joint, Ptr LockPtr) {
  const Val *Cell = Joint.tryLookup(LockPtr);
  assert(Cell && "lock joint heap lost its lock bit");
  return Cell->getBool();
}

/// Removes the cells of dom(R) from \p Mine; nullopt if some are missing.
/// Values need not match: the releasing thread may have updated the cells
/// while it owned them.
std::optional<Heap> subtractByDomain(const Heap &Mine, const Heap &R) {
  Heap Out = Mine;
  for (const auto &Cell : R) {
    if (!Out.contains(Cell.first))
      return std::nullopt;
    Out.remove(Cell.first);
  }
  return Out;
}

/// Conservative footprint shared by the lock's transitions and actions:
/// the lock's joint heap (bit plus resource cells, whose *domain* changes
/// on acquire/release), the agent's mutex token and client contribution
/// at Lk, the agent's private heap at Pv (resource cells move in and
/// out), and a read of the other agents' Lk contribution (release
/// re-checks the resource invariant against it, and the env release
/// options depend on it).
Footprint lockFootprint(Label Pv, Label Lk) {
  return Footprint::none()
      .readWrite(FpAtom::joint(Lk))
      .readWrite(FpAtom::selfAux(Lk))
      .readWrite(FpAtom::selfAux(Pv))
      .read(FpAtom::otherAux(Lk));
}

/// The view update shared by the acquire transition and tryLock's success
/// branch: move the resource into pv-self, flip the bit, take Own.
View acquireEffect(const View &Pre, Label Pv, Label Lk, Ptr LockPtr) {
  Heap Res = resourcePart(Pre.joint(Lk), LockPtr);
  View Post = Pre;
  Post.setJoint(Lk, Heap::singleton(LockPtr, Val::ofBool(true)));
  Post.setSelf(Lk, PCMVal::makePair(PCMVal::mutexOwn(),
                                    Pre.self(Lk).second()));
  std::optional<Heap> Mine =
      Heap::join(Pre.self(Pv).getHeap(), Res);
  assert(Mine && "resource cells clash with the private heap");
  Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
  return Post;
}

/// The release view update; nullopt when R is not in the private heap.
std::optional<View> releaseEffect(const View &Pre, Label Pv, Label Lk,
                                  Ptr LockPtr, const Heap &R,
                                  const PCMVal &NewClient) {
  std::optional<Heap> Mine =
      subtractByDomain(Pre.self(Pv).getHeap(), R);
  if (!Mine)
    return std::nullopt;
  std::optional<Heap> NewJoint =
      Heap::join(Heap::singleton(LockPtr, Val::ofBool(false)), R);
  if (!NewJoint)
    return std::nullopt;
  View Post = Pre;
  Post.setJoint(Lk, std::move(*NewJoint));
  Post.setSelf(Lk, PCMVal::makePair(PCMVal::mutexFree(), NewClient));
  Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
  return Post;
}

} // namespace

LockProtocol fcsl::makeCasLock(Label Pv, Label Lk,
                               const ResourceModel &Model) {
  Ptr LockPtr = lockPtrFor(Lk);
  PCMTypeRef SelfType = PCMType::pairOf(PCMType::mutex(), Model.ClientType);
  auto Invariant = Model.Invariant;

  // --- Coherence of the CLock slice -------------------------------------
  auto LockCoh = [Pv, Lk, LockPtr, SelfType, Invariant](const View &S) {
    if (!S.hasLabel(Lk) || !S.hasLabel(Pv))
      return false;
    if (!SelfType->admits(S.self(Lk)) || !SelfType->admits(S.other(Lk)))
      return false;
    std::optional<PCMVal> Total = S.selfOtherJoin(Lk);
    if (!Total)
      return false;
    const Heap &Joint = S.joint(Lk);
    if (!Joint.contains(LockPtr) || !Joint.lookup(LockPtr).isBool())
      return false;
    bool Locked = Joint.lookup(LockPtr).getBool();
    bool SomeoneOwns = Total->first().isOwn();
    if (Locked != SomeoneOwns)
      return false;
    if (Locked)
      return Joint.size() == 1; // The resource is with the owner.
    return Invariant(resourcePart(Joint, LockPtr), Total->second());
  };

  auto Lock = makeConcurroid(
      "CLock", {OwnedLabel{Lk, "lk", SelfType}}, LockCoh);

  // --- acquire: bit false -> true, resource to pv-self, token to Own ----
  Lock->addTransition(Transition(
      "clock_acquire", TransitionKind::Acquire,
      [Pv, Lk, LockPtr](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return {};
        if (lockBit(Pre.joint(Lk), LockPtr))
          return {};
        return {acquireEffect(Pre, Pv, Lk, LockPtr)};
      }).withFootprint(lockFootprint(Pv, Lk)));

  // --- release: bit true -> false, new resource from pv-self ------------
  auto EnvOptions = Model.EnvReleaseOptions;
  Lock->addTransition(Transition(
      "clock_release", TransitionKind::Release,
      [Pv, Lk, LockPtr, EnvOptions, Invariant](const View &Pre)
          -> std::vector<View> {
        std::vector<View> Out;
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return Out;
        if (!lockBit(Pre.joint(Lk), LockPtr) ||
            !Pre.self(Lk).first().isOwn())
          return Out;
        for (const auto &Option : EnvOptions(Pre)) {
          std::optional<PCMVal> Total =
              PCMVal::join(Option.second, Pre.other(Lk).second());
          if (!Total || !Invariant(Option.first, *Total))
            continue;
          std::optional<View> Post = releaseEffect(
              Pre, Pv, Lk, LockPtr, Option.first, Option.second);
          if (Post)
            Out.push_back(std::move(*Post));
        }
        return Out;
      },
      // Thread-side unlocks may release payloads outside the enumerated
      // environment options, so coverage is structural.
      [Pv, Lk, LockPtr, Invariant, SelfType](const View &Pre,
                                             const View &Post) {
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return false;
        for (Label L : Pre.labels())
          if (L != Lk && L != Pv && !(Pre.slice(L) == Post.slice(L)))
            return false;
        if (!(Pre.other(Lk) == Post.other(Lk)) ||
            !(Pre.other(Pv) == Post.other(Pv)))
          return false;
        if (!lockBit(Pre.joint(Lk), LockPtr) ||
            !Pre.self(Lk).first().isOwn())
          return false;
        if (lockBit(Post.joint(Lk), LockPtr))
          return false;
        if (Post.self(Lk).first().isOwn() ||
            !SelfType->admits(Post.self(Lk)))
          return false;
        Heap R = resourcePart(Post.joint(Lk), LockPtr);
        std::optional<Heap> Mine =
            subtractByDomain(Pre.self(Pv).getHeap(), R);
        if (!Mine || !(*Mine == Post.self(Pv).getHeap()))
          return false;
        std::optional<PCMVal> Total =
            PCMVal::join(Post.self(Lk).second(), Post.other(Lk).second());
        return Total && Invariant(R, *Total);
      }).withFootprint(lockFootprint(Pv, Lk)));

  ConcurroidRef Priv = makePriv(Pv);
  ConcurroidRef Entangled = entangle(Priv, Lock);

  // --- Package as a LockProtocol ----------------------------------------
  LockProtocol P;
  P.Name = "CLock";
  P.C = Entangled;
  P.Pv = Pv;
  P.Lk = Lk;
  P.ClientType = Model.ClientType;

  P.TryLock = makeAction(
      "try_lock", Entangled, 0,
      [Pv, Lk, LockPtr](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Pre.hasLabel(Lk) || !Pre.joint(Lk).contains(LockPtr))
          return std::nullopt;
        if (lockBit(Pre.joint(Lk), LockPtr))
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        return std::vector<ActOutcome>{
            {Val::ofBool(true), acquireEffect(Pre, Pv, Lk, LockPtr)}};
      },
      lockFootprint(Pv, Lk),
      // A failed try_lock only observes the bit: as long as the bit stays
      // set, the step reads one joint cell and changes nothing. Steps
      // independent of that read cannot clear the bit.
      [Pv, Lk, LockPtr](const View &Pre,
                        const std::vector<Val> &) -> Footprint {
        if (Pre.hasLabel(Lk)) {
          const Val *Cell = Pre.joint(Lk).tryLookup(LockPtr);
          if (Cell && Cell->isBool() && Cell->getBool())
            return Footprint::none().read(FpAtom::jointCell(Lk, LockPtr));
        }
        return lockFootprint(Pv, Lk);
      });

  ActionRef TryLock = P.TryLock;
  P.DefineLock = [TryLock](DefTable &Defs, const std::string &FnName) {
    defineLockLoop(Defs, FnName, TryLock);
  };

  P.MakeUnlock = [Entangled, Pv, Lk, LockPtr,
                  Invariant](std::string Name, unsigned Arity,
                             ReleaseFn Release) {
    return makeAction(
        std::move(Name), Entangled, Arity,
        [Pv, Lk, LockPtr, Invariant, Release](
            const View &Pre, const std::vector<Val> &Args)
            -> std::optional<std::vector<ActOutcome>> {
          if (!Pre.hasLabel(Lk) || !Pre.joint(Lk).contains(LockPtr))
            return std::nullopt;
          if (!lockBit(Pre.joint(Lk), LockPtr) ||
              !Pre.self(Lk).first().isOwn())
            return std::nullopt; // Unlock without holding the lock.
          std::optional<std::pair<Heap, PCMVal>> Payload =
              Release(Pre, Args);
          if (!Payload)
            return std::nullopt;
          std::optional<PCMVal> Total =
              PCMVal::join(Payload->second, Pre.other(Lk).second());
          if (!Total || !Invariant(Payload->first, *Total))
            return std::nullopt; // Release would break the invariant.
          std::optional<View> Post = releaseEffect(
              Pre, Pv, Lk, LockPtr, Payload->first, Payload->second);
          if (!Post)
            return std::nullopt;
          return std::vector<ActOutcome>{{Val::unit(), std::move(*Post)}};
        },
        lockFootprint(Pv, Lk));
  };

  P.HoldsLock = [Lk](const View &S) {
    return S.hasLabel(Lk) && S.self(Lk).first().isOwn();
  };
  P.ClientSelf = [Lk](const View &S) { return S.self(Lk).second(); };
  P.InitialJoint = [LockPtr](const Heap &Resource) {
    std::optional<Heap> Joint =
        Heap::join(Heap::singleton(LockPtr, Val::ofBool(false)), Resource);
    assert(Joint && "resource clashes with the lock bit");
    return *Joint;
  };
  P.UnitSelf = [SelfType]() { return SelfType->unit(); };
  return P;
}

LockFactory fcsl::casLockFactory() {
  return [](Label Pv, Label Lk, const ResourceModel &Model) {
    return makeCasLock(Pv, Lk, Model);
  };
}

//===----------------------------------------------------------------------===//
// The "CAS-lock" Table 1 row: a one-cell counter resource.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label LkLbl = 2;
const uint64_t EnvClientCap = 2;

Ptr counterCell() { return Ptr(1); }

/// The counter resource: cell &1 holds the total contribution.
ResourceModel counterResource() {
  ResourceModel Model;
  Model.ClientType = PCMType::nat();
  Model.Invariant = [](const Heap &Res, const PCMVal &Total) {
    if (Res.size() != 1 || !Res.contains(counterCell()))
      return false;
    const Val &Cell = Res.lookup(counterCell());
    return Cell.isInt() &&
           Cell.getInt() == static_cast<int64_t>(Total.getNat());
  };
  Model.EnvReleaseOptions =
      [](const View &EnvView) -> std::vector<std::pair<Heap, PCMVal>> {
    std::vector<std::pair<Heap, PCMVal>> Out;
    // The env releases after adding 0 or 1 to the counter (bounded
    // interference keeps the exploration finite).
    uint64_t Mine = EnvView.self(LkLbl).second().getNat();
    uint64_t Others = EnvView.other(LkLbl).second().getNat();
    for (uint64_t Delta = 0; Delta <= 1; ++Delta) {
      uint64_t NewMine = Mine + Delta;
      if (NewMine > EnvClientCap)
        continue;
      Heap R = Heap::singleton(
          counterCell(),
          Val::ofInt(static_cast<int64_t>(NewMine + Others)));
      Out.emplace_back(std::move(R), PCMVal::ofNat(NewMine));
    }
    return Out;
  };
  return Model;
}

/// Sample coherent (and a few incoherent) views for the checks.
std::vector<View> lockSampleViews(const LockProtocol &P) {
  std::vector<View> Out;
  auto Mk = [&](bool Locked, bool IOwn, uint64_t MyC, uint64_t OtherC,
                Heap MyPriv) {
    View S;
    Heap Joint = Locked ? Heap::singleton(lockPtrFor(LkLbl),
                                          Val::ofBool(true))
                        : P.InitialJoint(Heap::singleton(
                              counterCell(),
                              Val::ofInt(static_cast<int64_t>(MyC +
                                                              OtherC))));
    PCMVal Self = PCMVal::makePair(
        IOwn ? PCMVal::mutexOwn() : PCMVal::mutexFree(),
        PCMVal::ofNat(MyC));
    PCMVal Other = PCMVal::makePair(
        (Locked && !IOwn) ? PCMVal::mutexOwn() : PCMVal::mutexFree(),
        PCMVal::ofNat(OtherC));
    S.addLabel(PvLbl, LabelSlice{PCMVal::ofHeap(std::move(MyPriv)), Heap(),
                                 PCMVal::ofHeap(Heap())});
    S.addLabel(LkLbl, LabelSlice{std::move(Self), std::move(Joint),
                                 std::move(Other)});
    return S;
  };

  for (uint64_t MyC = 0; MyC <= 2; ++MyC)
    for (uint64_t OtherC = 0; OtherC <= 2; ++OtherC) {
      // Free lock.
      Out.push_back(Mk(false, false, MyC, OtherC, Heap()));
      // Held by me, resource in my private heap (possibly updated).
      for (int64_t CellVal = 0; CellVal <= 4; ++CellVal)
        Out.push_back(Mk(true, true, MyC, OtherC,
                         Heap::singleton(counterCell(),
                                         Val::ofInt(CellVal))));
      // Held by the environment.
      Out.push_back(Mk(true, false, MyC, OtherC, Heap()));
    }
  return Out;
}

GlobalState lockInitialState(const LockProtocol &P, uint64_t Total) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(P.Lk, PCMType::pairOf(PCMType::mutex(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(
                  counterCell(), Val::ofInt(static_cast<int64_t>(Total)))),
              PCMVal::makePair(PCMVal::mutexFree(), PCMVal::ofNat(Total)),
              /*EnvClosed=*/false);
  return GS;
}

} // namespace

VerificationSession fcsl::makeSpinLockSession() {
  VerificationSession Session("CAS-lock");
  LockProtocol P = makeCasLock(PvLbl, LkLbl, counterResource());
  auto Samples = std::make_shared<std::vector<View>>(lockSampleViews(P));
  ConcurroidRef C = P.C;

  // --- Libs: PCM laws of the lock's carrier -----------------------------
  PCMTypeRef LawType = PCMType::pairOf(PCMType::mutex(), PCMType::nat());
  std::vector<PCMVal> LawSample;
  for (bool Own : {false, true})
    for (uint64_t N = 0; N <= 2; ++N)
      LawSample.push_back(PCMVal::makePair(
          Own ? PCMVal::mutexOwn() : PCMVal::mutexFree(),
          PCMVal::ofNat(N)));
  Session.addObligation(
      ObCategory::Libs, "mutex_x_nat_pcm_laws",
      pcmLawInputs(LawType, LawSample, 1).text("cancellative"),
      [LawType, LawSample] {
        PCMLawReport R = checkPCMLaws(*LawType, LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  // --- Conc: metatheory of the entangled concurroid ---------------------
  Session.addObligation(ObCategory::Conc, "clock_metatheory",
                        sampleInputs(ObKind::Metatheory, *C, *Samples, 1),
                        [C, Samples] {
    return toObligation(checkConcurroidWellFormed(*C, *Samples));
  });

  // --- Acts: tryLock and unlock obligations -----------------------------
  ActionRef Unlock = P.MakeUnlock(
      "unlock_id", 0,
      [P](const View &S,
          const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        const Heap &Mine = S.self(P.Pv).getHeap();
        const Val *Cell = Mine.tryLookup(counterCell());
        if (!Cell)
          return std::nullopt;
        return std::make_pair(Heap::singleton(counterCell(), *Cell),
                              P.ClientSelf(S));
      });

  Session.addObligation(ObCategory::Acts, "try_lock_wf",
                        actionInputs(*P.TryLock, *Samples, {{}}, 1).text("wf"),
                        [P, Samples] {
    return toObligation(checkActionWellFormed(*P.TryLock, *Samples, {{}}));
  });
  Session.addObligation(
      ObCategory::Acts, "try_lock_total",
      actionInputs(*P.TryLock, *Samples, {{}}, 1).text("total"),
      [P, Samples] {
        return toObligation(checkActionTotality(
            *P.TryLock, *Samples, {{}},
            [](const View &, const ActionArgs &) { return true; }));
      });
  Session.addObligation(ObCategory::Acts, "unlock_wf",
                        actionInputs(*Unlock, *Samples, {{}}, 1).text("wf"),
                        [Unlock, Samples] {
    return toObligation(checkActionWellFormed(*Unlock, *Samples, {{}}));
  });

  // --- Stab: key assertions stable under interference -------------------
  Session.addObligation(ObCategory::Stab, "holding_is_stable",
                        stabilityInputs(*C, "I hold the lock", *Samples, 1),
                        [C, P, Samples] {
    Assertion Holding("I hold the lock", P.HoldsLock);
    return toObligation(checkStability(Holding, *C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "client_self_stable",
                        stabilityInputs(*C, "client self is 1", *Samples, 1),
                        [C, P, Samples] {
    // My contribution is mine alone: interference cannot change it.
    Assertion SelfFixed(
        "client self is 1",
        [P](const View &S) { return P.ClientSelf(S).getNat() == 1; });
    return toObligation(checkStability(SelfFixed, *C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "unheld_resource_coherent",
                        stabilityInputs(*C, "coherence", *Samples, 1),
                        [C, Samples] {
    return toObligation(checkStability(
        Assertion("coherence", [C](const View &S) { return C->coherent(S); }),
        *C, *Samples));
  });

  // --- Main: lock(); unlock() round trip --------------------------------
  {
    auto Defs = std::make_shared<DefTable>();
    defineLockLoop(*Defs, "lock", P.TryLock);
    TripleCase TC;
    TC.Main = Prog::seq(Prog::call("lock", {}), Prog::act(Unlock, {}));
    TC.S.Name = "clock_lock_unlock";
    TC.S.C = C;
    TC.S.Pre = Assertion("not holding",
                         [P](const View &V) { return !P.HoldsLock(V); });
    TC.S.PostName = "released, client contribution unchanged";
    TC.S.Post = [P](const Val &R, const View &I, const View &F) {
      return R.isUnit() && !P.HoldsLock(F) &&
             P.ClientSelf(F) == P.ClientSelf(I);
    };
    for (uint64_t Total : {uint64_t{0}, uint64_t{1}})
      TC.Instances.push_back(VerifyInstance{lockInitialState(P, Total), {}});
    TC.Opts.Ambient = C;
    TC.Opts.EnvInterference = true;
    TC.Defs = Defs;
    addTriple(Session, "lock_unlock_spec", std::move(TC));
  }

  return Session;
}

void fcsl::registerSpinLockLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "CAS-lock",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", false}},
      {}});
  // The interface node (Figure 5): realized by both lock implementations.
  globalRegistry().registerLibrary(LibraryInfo{
      "Abstract lock", {}, {"CAS-lock", "Ticketed lock"}});
}
