//===- structures/TreiberStack.h - Treiber's lock-free stack ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Treiber's non-blocking stack (Table 1's "Treiber stack"), specified —
/// as in the paper — "via a PCM of time-stamped action histories in the
/// spirit of linearizability": each thread's self component is the history
/// of the push/pop steps it performed on the abstract stack; coherence
/// ties the combined history's last state to the concrete linked list in
/// the joint heap. Push transfers a privately-prepared node cell into the
/// shared structure (an acquire across the Priv entanglement); pop
/// transfers the head cell back out.
///
/// Abstract stacks are encoded as cons lists over Val: unit is the empty
/// stack and pair(v, rest) is v pushed onto rest.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_TREIBERSTACK_H
#define FCSL_STRUCTURES_TREIBERSTACK_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// The packaged Treiber-stack verification setup.
struct TreiberCase {
  Label Pv;
  Label Tr;
  Ptr Sentinel;       ///< cell holding the head pointer.
  ConcurroidRef Treiber; ///< the Treiber concurroid alone.
  ConcurroidRef C;    ///< entangle(Priv, Treiber).
  ActionRef ReadHead; ///< () -> ptr.
  ActionRef TryPush;  ///< (node, value, expectedHead) -> bool.
  ActionRef TryPop;   ///< (expectedHead) -> pair(bool, value).
  DefTable Defs;      ///< contains `push(p, v)` and `pop()`.
};

/// Builds the Treiber case. Environment interference performs pushes of
/// the value 7 from pre-seeded private cells and arbitrary pops, bounded
/// by \p EnvHistCap history entries.
TreiberCase makeTreiberCase(Label Pv, Label Tr, uint64_t EnvHistCap);

/// The abstract stack contents as a cons list read from the joint heap;
/// std::nullopt when the heap is not list-shaped.
std::optional<Val> treiberAbstractStack(const TreiberCase &C,
                                        const Heap &Joint);

/// Builds an initial state: joint list of \p Elems (top first), the root
/// thread's private heap seeded with \p MyCells fresh node cells, and the
/// env's private heap with \p EnvCells cells (fuel for env pushes). All
/// prior history is ascribed to the environment.
GlobalState treiberState(const TreiberCase &C,
                         const std::vector<int64_t> &Elems,
                         unsigned MyCells, unsigned EnvCells);

/// Sample coherent views for the obligations.
std::vector<View> treiberSampleViews(const TreiberCase &C);

/// The "Treiber stack" Table 1 row.
VerificationSession makeTreiberSession();

void registerTreiberLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_TREIBERSTACK_H
