//===- structures/StackIface.h - The abstract stack interface ---*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 remarks: "In principle, we could implement an
/// abstract interface for stacks, too, to unify the Treiber stack and the
/// FC-stack, although we didn't carry out this exercise." This module
/// carries out that exercise: a StackProtocol packages an implementation-
/// agnostic `s_push(tok, v)` / `s_pop(tok)` program pair plus the
/// history projection needed to state the unified history-based spec.
/// Both the Treiber stack and the FC-stack instantiate it, and the
/// unified client theorem ("a parallel push pair records both entries in
/// the joined self history") is verified once against the interface and
/// holds for both implementations — the stack analogue of Table 2's
/// interchangeable-locks `3L`.
///
/// The implementation-specific resource a thread needs to run an
/// operation (a privately-owned node cell for Treiber, an owned
/// publication slot for FC) is abstracted as an opaque per-thread
/// *token* supplied by the protocol.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_STACKIFACE_H
#define FCSL_STRUCTURES_STACKIFACE_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// A stack implementation, packaged for interface-level clients.
struct StackProtocol {
  std::string Name; ///< "Treiber" or "FC".
  ConcurroidRef C;
  /// Shared definition table containing:
  ///   s_push(tok, v) — pushes v using the caller's token; returns unit.
  ///   s_pop(tok)     — pops; returns pair(bool found, value).
  std::shared_ptr<DefTable> Defs;
  /// Initial state for a two-client run: the root thread holds both
  /// tokens; no environment interference budget.
  GlobalState Initial;
  /// The two per-thread tokens (left client, right client).
  Val TokenLeft;
  Val TokenRight;
  /// Splits the root thread's contributions so the left/right `par`
  /// children own their respective tokens.
  SplitFn Split;
  /// Projects the observing thread's operation history out of a view.
  std::function<History(const View &)> SelfHist;
};

/// The Treiber instantiation of the interface.
StackProtocol treiberStackProtocol();

/// The flat-combiner instantiation of the interface.
StackProtocol fcStackProtocol();

/// The unified client theorem, stated once against StackProtocol:
/// par(s_push(tokL, A), s_push(tokR, B)) records entries for both A and
/// B in the joined self history. Returns the verification outcome.
ObligationResult verifyUnifiedPushPair(const StackProtocol &P, int64_t A,
                                       int64_t B);

/// The unified push/pop client: par(s_push(tokL, V), s_pop(tokR)); the
/// pop returns V or reports empty, and the push entry is always recorded.
ObligationResult verifyUnifiedPushPop(const StackProtocol &P, int64_t V);

/// The "Abstract stack" extension row (not in the paper's Table 1; see
/// DESIGN.md section on extensions).
VerificationSession makeStackIfaceSession();

void registerStackIfaceLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_STACKIFACE_H
