//===- structures/CgAllocator.h - Coarse-grained allocator ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "CG allocator" row of Table 1 and Section 4.1's `alloc` example: a
/// lock-protected pool of free cells. Acquiring the lock brings the whole
/// pool into the caller's private heap; the caller withdraws one cell and
/// releases the rest, bumping its allocation count — "the pointer is
/// logically transferred from the concurroid ALock" to Priv. Like CG
/// increment, it needs no concurroid of its own (Table 1's `-` cells) and
/// verifies against either lock implementation.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_CGALLOCATOR_H
#define FCSL_STRUCTURES_CGALLOCATOR_H

#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// Number of cells in the allocator pool for the Table 1 instance.
constexpr unsigned AllocPoolSize = 2;

/// True if \p P is one of the pool's cells.
bool isPoolCell(Ptr P);

/// The pool resource model: invariant |pool| = PoolSize - total allocated.
/// \p Pv locates the environment's private heap for release enumeration.
ResourceModel allocatorResourceModel(Label Pv, Label Lk, unsigned PoolSize);

/// Registers `lock` and `alloc` in \p Defs over lock protocol \p P.
/// `alloc()` returns a pointer freshly withdrawn from the pool (it loops
/// on the lock like the paper's spin-looping `alloc`).
void defineAllocProgram(const LockProtocol &P, DefTable &Defs,
                        unsigned PoolSize);

/// The "CG allocator" Table 1 row.
VerificationSession makeCgAllocatorSession();

void registerCgAllocatorLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_CGALLOCATOR_H
