//===- structures/Suite.h - The full case-study suite -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates the eleven case studies of the paper's Table 1, in the
/// table's row order, and populates the library registry that regenerates
/// Table 2 and Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_SUITE_H
#define FCSL_STRUCTURES_SUITE_H

#include "structures/CaseCommon.h"

namespace fcsl {

/// All Table 1 rows, in order.
std::vector<CaseEntry> allCaseStudies();

/// Registers every library in the global registry (idempotent).
void registerAllLibraries();

} // namespace fcsl

#endif // FCSL_STRUCTURES_SUITE_H
