//===- structures/Suite.h - The full case-study suite -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates the eleven case studies of the paper's Table 1, in the
/// table's row order, and populates the library registry that regenerates
/// Table 2 and Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_SUITE_H
#define FCSL_STRUCTURES_SUITE_H

#include "structures/CaseCommon.h"

namespace fcsl {

/// All Table 1 rows, in order.
std::vector<CaseEntry> allCaseStudies();

/// Every session a name can resolve to: the Table 1 rows plus the
/// abstract-stack extension. The registry shared by `fcsl-verify verify`
/// and the verification daemon (src/service/) — both must resolve the
/// same names to the same sessions for daemon-served reports to be
/// bit-identical to direct runs.
std::vector<CaseEntry> allVerifiableSessions();

/// Registers every library in the global registry (idempotent).
void registerAllLibraries();

} // namespace fcsl

#endif // FCSL_STRUCTURES_SUITE_H
