//===- structures/CaseCommon.h - Case-study plumbing ------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for assembling the case studies of Table 1: adapters
/// from the metatheory/stability/verifier report types into session
/// obligations, and small view/state builders.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_CASECOMMON_H
#define FCSL_STRUCTURES_CASECOMMON_H

#include "action/ActionChecks.h"
#include "concurroid/Metatheory.h"
#include "spec/Session.h"
#include "spec/Stability.h"
#include "spec/Verifier.h"

namespace fcsl {

/// Adapts a MetaReport into an ObligationResult.
inline ObligationResult toObligation(const MetaReport &R) {
  return ObligationResult{R.Passed, R.ChecksRun, R.CounterExample};
}

/// Adapts a StabilityReport into an ObligationResult.
inline ObligationResult toObligation(const StabilityReport &R) {
  return ObligationResult{R.Stable, R.StatesVisited + R.EnvStepsTaken,
                          R.CounterExample};
}

/// Adapts a VerifyResult into an ObligationResult.
inline ObligationResult toObligation(const VerifyResult &R) {
  return ObligationResult{R.Holds,
                          R.ConfigsExplored + R.TerminalsChecked,
                          R.FailureNote};
}

/// Builds a one-label view.
inline View makeView(Label L, PCMVal Self, Heap Joint, PCMVal Other) {
  View S;
  S.addLabel(L, LabelSlice{std::move(Self), std::move(Joint),
                           std::move(Other)});
  return S;
}

/// A named case study for the suite/bench harness.
struct CaseEntry {
  std::string Name;
  std::function<VerificationSession()> MakeSession;
};

} // namespace fcsl

#endif // FCSL_STRUCTURES_CASECOMMON_H
