//===- structures/CaseCommon.h - Case-study plumbing ------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for assembling the case studies of Table 1: adapters
/// from the metatheory/stability/verifier report types into session
/// obligations, content-fingerprint builders for the obligation cache
/// (every registration site declares what its verdict depends on — see
/// ObligationInputs in spec/Session.h and DESIGN.md §13), and small
/// view/state builders.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_CASECOMMON_H
#define FCSL_STRUCTURES_CASECOMMON_H

#include "action/ActionChecks.h"
#include "concurroid/Metatheory.h"
#include "spec/Session.h"
#include "spec/Stability.h"
#include "spec/Verifier.h"
#include "support/Codec.h"

#include <memory>

namespace fcsl {

/// Adapts a MetaReport into an ObligationResult.
inline ObligationResult toObligation(const MetaReport &R) {
  ObligationResult O;
  O.Passed = R.Passed;
  O.Checks = R.ChecksRun;
  O.Note = R.CounterExample;
  return O;
}

/// Adapts a StabilityReport into an ObligationResult. The closure walk is
/// not an engine exploration, but its volume maps naturally onto the
/// config/env-step counters so `--stats` replay covers it.
inline ObligationResult toObligation(const StabilityReport &R) {
  ObligationResult O;
  O.Passed = R.Stable;
  O.Checks = R.StatesVisited + R.EnvStepsTaken;
  O.Note = R.CounterExample;
  O.Counters.Configs = R.StatesVisited;
  O.Counters.EnvSteps = R.EnvStepsTaken;
  return O;
}

/// Builds the ObligationResult of a PCM-law obligation.
inline ObligationResult lawObligation(bool Passed, uint64_t Checks) {
  ObligationResult O;
  O.Passed = Passed;
  O.Checks = Checks;
  O.Note = "PCM law violated";
  return O;
}

/// Adapts a VerifyResult into an ObligationResult.
inline ObligationResult toObligation(const VerifyResult &R) {
  ObligationResult O;
  O.Passed = R.Holds;
  O.Checks = R.ConfigsExplored + R.TerminalsChecked;
  O.Note = R.FailureNote;
  O.Counters = R.counters();
  return O;
}

//===----------------------------------------------------------------------===//
// Content fingerprints (obligation-cache keys)
//===----------------------------------------------------------------------===//

/// Fingerprint of a value's canonical codec encoding: a process-stable
/// content address for any serializable state type (View, GlobalState,
/// PCMVal, PCMTypeRef, Val, Heap, ...).
template <typename T> uint64_t codecFp(const T &V) {
  Encoder E;
  encode(E, V);
  return fpBytes(E.buffer().data(), E.buffer().size());
}

/// Folds a sample of views (order-sensitively — samples are built
/// deterministically at registration).
inline uint64_t fpOfViews(const std::vector<View> &Views) {
  uint64_t Fp = fpString("views");
  for (const View &V : Views)
    Fp = fpCombine(Fp, codecFp(V));
  return Fp;
}

/// Folds a set of action argument vectors.
inline uint64_t fpOfArgSets(const std::vector<ActionArgs> &ArgSets) {
  uint64_t Fp = fpString("args");
  for (const ActionArgs &Args : ArgSets) {
    Fp = fpCombine(Fp, Args.size());
    for (const Val &V : Args)
      Fp = fpCombine(Fp, codecFp(V));
  }
  return Fp;
}

/// Folds a definition table: sorted names, parameter lists, and the
/// structural fingerprints of the bodies.
inline uint64_t fpOfDefs(const DefTable &Defs) {
  uint64_t Fp = fpString("defs");
  for (const std::string &Name : Defs.names()) {
    const FuncDef &Def = Defs.lookup(Name);
    Fp = fpCombine(Fp, fpString(Name));
    for (const std::string &P : Def.Params)
      Fp = fpCombine(Fp, fpString(P));
    Fp = fpCombine(Fp, Def.Body->fingerprint());
  }
  return Fp;
}

/// Folds one verification instance: the initial global state and the
/// root-thread argument environment.
inline uint64_t fpOfInstance(const VerifyInstance &I) {
  uint64_t Fp = fpCombine(fpString("instance"), codecFp(I.Initial));
  for (const auto &KV : I.InitialEnv) {
    Fp = fpCombine(Fp, fpString(KV.first));
    Fp = fpCombine(Fp, codecFp(KV.second));
  }
  return Fp;
}

/// Folds a PCM-value sample (order-sensitively).
inline uint64_t fpOfPCMSample(const std::vector<PCMVal> &Sample) {
  uint64_t Fp = fpString("pcm-sample");
  for (const PCMVal &V : Sample)
    Fp = fpCombine(Fp, codecFp(V));
  return Fp;
}

/// Declares the inputs of a PCM-law obligation: the algebra under test and
/// the sample it is exercised over. Two sessions may test the *same* type
/// over different samples, so the sample is part of the key. Sites that
/// additionally check cancellativity append `.text("cancellative")`.
inline ObligationInputs pcmLawInputs(const PCMTypeRef &T,
                                     const std::vector<PCMVal> &Sample,
                                     uint64_t Rev) {
  return ObligationInputs(ObKind::Check)
      .mix(codecFp(T))
      .mix(fpOfPCMSample(Sample))
      .rev(Rev);
}

/// Declares the inputs of a metatheory/PCM obligation discharged over a
/// sample of views against one concurroid.
inline ObligationInputs sampleInputs(ObKind Kind, const Concurroid &C,
                                     const std::vector<View> &Sample,
                                     uint64_t Rev) {
  return ObligationInputs(Kind)
      .mix(C.fingerprint())
      .mix(fpOfViews(Sample))
      .rev(Rev);
}

/// Declares the inputs of an atomic-action obligation: the action's name
/// and arity, its concurroid, and the sampled views/arguments it is
/// exercised over. Sites discharging *different checks* over the same
/// action (well-formedness vs totality) must append a distinguishing
/// `.text(...)` so the verdicts do not share a key.
inline ObligationInputs actionInputs(const AtomicAction &A,
                                     const std::vector<View> &Sample,
                                     const std::vector<ActionArgs> &ArgSets,
                                     uint64_t Rev) {
  return ObligationInputs(ObKind::Action)
      .mix(A.concurroid()->fingerprint())
      .text(A.name())
      .num(A.arity())
      .mix(fpOfViews(Sample))
      .mix(fpOfArgSets(ArgSets))
      .rev(Rev);
}

/// Declares the inputs of a stability obligation: the assertion is an
/// opaque predicate, so its *name* plus the site revision stand in for it
/// (DESIGN.md §13 staleness rules).
inline ObligationInputs stabilityInputs(const Concurroid &C,
                                        std::string_view AssertionName,
                                        const std::vector<View> &Seeds,
                                        uint64_t Rev) {
  return ObligationInputs(ObKind::Stability)
      .mix(C.fingerprint())
      .text(AssertionName)
      .mix(fpOfViews(Seeds))
      .rev(Rev);
}

//===----------------------------------------------------------------------===//
// Hoare-triple proof units
//===----------------------------------------------------------------------===//

/// A Main obligation in registration-time form: everything verifyTriple
/// needs, built *before* the session runs so the unit's content can be
/// fingerprinted from the interned program and instance states instead of
/// from names. `Defs` owns the definition table the options point into.
struct TripleCase {
  ProgRef Main;
  Spec S;
  std::vector<VerifyInstance> Instances;
  EngineOptions Opts;
  std::shared_ptr<const DefTable> Defs; ///< null when the program has no calls.
  uint64_t Rev = 1; ///< bump when spec-closure logic changes (Pre/Post
                    ///< are opaque predicates; their names are hashed,
                    ///< their logic is not).
};

/// The declared inputs of a triple unit: the program's structural
/// fingerprint, the spec's name/pre/post names, every instance's initial
/// state and arguments, the definition table, and the engine-relevant
/// bounds (ambient concurroid, interference, MaxConfigs).
inline ObligationInputs tripleInputs(const TripleCase &TC) {
  ObligationInputs In(ObKind::Triple);
  In.mix(TC.Main->fingerprint());
  In.text(TC.S.Name);
  In.text(TC.S.Pre ? TC.S.Pre.name() : "<no-pre>");
  In.text(TC.S.PostName);
  In.num(TC.Instances.size());
  for (const VerifyInstance &I : TC.Instances)
    In.mix(fpOfInstance(I));
  if (TC.Defs)
    In.mix(fpOfDefs(*TC.Defs));
  if (TC.Opts.Ambient)
    In.mix(TC.Opts.Ambient->fingerprint());
  In.flag(TC.Opts.EnvInterference);
  In.num(TC.Opts.MaxConfigs);
  In.rev(TC.Rev);
  return In;
}

/// Registers a Main proof unit for \p TC.
inline void addTriple(VerificationSession &Session, std::string Name,
                      TripleCase TC) {
  ObligationInputs In = tripleInputs(TC);
  auto Shared = std::make_shared<TripleCase>(std::move(TC));
  Session.addObligation(
      ObCategory::Main, std::move(Name), In, [Shared]() {
        EngineOptions Opts = Shared->Opts;
        if (Shared->Defs)
          Opts.Defs = Shared->Defs.get();
        return toObligation(
            verifyTriple(Shared->Main, Shared->S, Shared->Instances, Opts));
      });
}

/// Builds a one-label view.
inline View makeView(Label L, PCMVal Self, Heap Joint, PCMVal Other) {
  View S;
  S.addLabel(L, LabelSlice{std::move(Self), std::move(Joint),
                           std::move(Other)});
  return S;
}

/// A named case study for the suite/bench harness.
struct CaseEntry {
  std::string Name;
  std::function<VerificationSession()> MakeSession;
};

} // namespace fcsl

#endif // FCSL_STRUCTURES_CASECOMMON_H
