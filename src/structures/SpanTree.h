//===- structures/SpanTree.h - Concurrent spanning tree ---------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Sections 2-3): in-place concurrent
/// spanning-tree construction over a heap-represented binary graph. This
/// module packages
///
///  - the `SpanTree sp` concurroid: joint = the graph heap, self/other =
///    disjoint sets of nodes marked by the observing thread / its
///    environment, with transitions `marknode_trans` and `nullify_trans`
///    (Section 3.3);
///  - the atomic actions `trymark` (erases to CAS), `read_child` and
///    `nullify` (Section 3.4);
///  - the `span` program of Figure 3, written in the embedded DSL;
///  - the `span_tp` spec of Figure 4 as a checkable triple, and the
///    closed-world `span_root_tp` via `hide` (Section 3.5).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_STRUCTURES_SPANTREE_H
#define FCSL_STRUCTURES_SPANTREE_H

#include "graph/GraphGen.h"
#include "graph/GraphPredicates.h"
#include "structures/CaseCommon.h"
#include "structures/LockIface.h"

namespace fcsl {

/// The packaged spanning-tree verification setup.
struct SpanTreeCase {
  Label Pv;             ///< Priv label (for span_root's hide).
  Label Sp;             ///< SpanTree label.
  ConcurroidRef Span;   ///< the SpanTree concurroid alone.
  ConcurroidRef Open;   ///< entangle(Priv, SpanTree) for open-world runs.
  ConcurroidRef PrivOnly; ///< ambient for the hidden (closed-world) run.
  ActionRef TryMark;
  ActionRef ReadChildL;
  ActionRef ReadChildR;
  ActionRef NullifyL;
  ActionRef NullifyR;
  DefTable Defs; ///< contains `span`.
};

/// Builds the spanning-tree case over labels \p Pv and \p Sp.
SpanTreeCase makeSpanTreeCase(Label Pv, Label Sp);

/// Initial open-world state: graph \p G installed at sp, nothing marked by
/// the root thread, \p EnvMarked pre-marked by the environment.
GlobalState spanOpenState(const SpanTreeCase &C, const Heap &G,
                          const PtrSet &EnvMarked);

/// Initial closed-world state: graph \p G sits in the root thread's
/// private heap, ready for `hide`.
GlobalState spanRootState(const SpanTreeCase &C, const Heap &G);

/// The program `span_root(x)` = hide { span(x) } (Section 3.5).
ProgRef makeSpanRootProg(const SpanTreeCase &C, Ptr Root);

/// The open-world span_tp postcondition of Figure 4 as a checkable
/// relation over (result, initial view, final view).
bool spanTpPost(const SpanTreeCase &C, Ptr X, const Val &R, const View &I,
                const View &F);

/// The paper's `subgraph s1 s2` relation over views at label sp.
bool spanSubgraphRel(Label Sp, const View &S1, const View &S2);

/// Sample coherent views over \p G for the metatheory/action/stability
/// obligations (marking subsets distributed between self and other).
std::vector<View> spanSampleViews(const SpanTreeCase &C, const Heap &G);

/// The "Spanning tree" Table 1 row.
VerificationSession makeSpanTreeSession();

void registerSpanTreeLibrary();

} // namespace fcsl

#endif // FCSL_STRUCTURES_SPANTREE_H
