//===- structures/ProdCons.cpp - Producer/Consumer over Treiber ------------===//
//
// Part of fcsl-cpp. See ProdCons.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/ProdCons.h"

#include "concurroid/Registry.h"

using namespace fcsl;

namespace {

constexpr Label PvLbl = 1;
constexpr Label TrLbl = 2;

/// pop_until() := r <-- pop(); if r.1 then ret r.2 else pop_until().
void definePopUntil(const TreiberCase &, DefTable &Defs) {
  Defs.define("pop_until",
              FuncDef{{},
                      Prog::bind(
                          Prog::call("pop", {}), "r",
                          Prog::ifThenElse(
                              Expr::fst(Expr::var("r")),
                              Prog::ret(Expr::snd(Expr::var("r"))),
                              Prog::call("pop_until", {})))});
}

} // namespace

VerificationSession fcsl::makeProdConsSession() {
  VerificationSession Session("Prod/Cons");
  auto Case = std::make_shared<TreiberCase>(
      makeTreiberCase(PvLbl, TrLbl, /*EnvHistCap=*/0));
  definePopUntil(*Case, Case->Defs);

  // Libs: the history-classification lemma the delivery theorem leans
  // on — every entry of a stack history is exactly one of push/pop, and
  // the classification is mutually exclusive.
  Session.addObligation(ObCategory::Libs, "history_classification",
                        ObligationInputs(ObKind::Check)
                            .text("history_classification")
                            .rev(1),
                        [] {
    ObligationResult O;
    std::vector<HistEntry> Pushes, Pops;
    Val S0 = Val::unit();
    Val S1 = Val::pair(Val::ofInt(1), S0);
    Val S2 = Val::pair(Val::ofInt(2), S1);
    Pushes.push_back(HistEntry{S0, S1});
    Pushes.push_back(HistEntry{S1, S2});
    Pops.push_back(HistEntry{S2, S1});
    Pops.push_back(HistEntry{S1, S0});
    auto IsPush = [](const HistEntry &E) {
      return E.After.isPair() && E.After.second() == E.Before;
    };
    auto IsPop = [](const HistEntry &E) {
      return E.Before.isPair() && E.Before.second() == E.After;
    };
    for (const HistEntry &E : Pushes) {
      ++O.Checks;
      if (!IsPush(E) || IsPop(E)) {
        O.Passed = false;
        O.Note = "push entry misclassified";
        return O;
      }
    }
    for (const HistEntry &E : Pops) {
      ++O.Checks;
      if (IsPush(E) || !IsPop(E)) {
        O.Passed = false;
        O.Note = "pop entry misclassified";
        return O;
      }
    }
    return O;
  });

  // The two Main clients share the same program; only the postcondition
  // differs (value-level vs history-level delivery).
  auto MakeProdConsMain = [Case] {
    ProgRef Producer = Prog::seq(
        Prog::call("push", {Expr::litPtr(Ptr(20)), Expr::litInt(1)}),
        Prog::call("push", {Expr::litPtr(Ptr(21)), Expr::litInt(2)}));
    ProgRef Consumer = Prog::bind(
        Prog::call("pop_until", {}), "a",
        Prog::bind(Prog::call("pop_until", {}), "b",
                   Prog::ret(Expr::mkPair(Expr::var("a"),
                                          Expr::var("b")))));
    // The producer needs the node cells: split the private heap to it.
    Label Pv = Case->Pv;
    SplitFn Split = [Pv](const View &V)
        -> std::map<Label, std::pair<PCMVal, PCMVal>> {
      return {{Pv, {V.self(Pv), PCMVal::ofHeap(Heap())}}};
    };
    return Prog::par(std::move(Producer), std::move(Consumer), Split);
  };

  {
    // par(producer: push 1; push 2 || consumer: pop_until; pop_until):
    // the consumer receives exactly {1, 2} (in either order).
    TripleCase TC;
    TC.Main = MakeProdConsMain();
    TC.S.Name = "prod_cons";
    TC.S.C = Case->C;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "the consumer receives exactly the produced multiset";
    TC.S.Post = [](const Val &R, const View &, const View &) {
      if (!R.isPair() || !R.second().isPair())
        return false;
      int64_t A = R.second().first().getInt();
      int64_t B = R.second().second().getInt();
      return (A == 1 && B == 2) || (A == 2 && B == 1);
    };
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {}, 2, 0), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = false;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "exact_delivery", std::move(TC));
  }

  {
    // Same client, but the postcondition is stated on histories: the
    // combined history interleaves two pushes and two pops that transfer
    // exactly the pushed values.
    TripleCase TC;
    TC.Main = MakeProdConsMain();
    TC.S.Name = "prod_cons_histories";
    TC.S.C = Case->C;
    Label Tr = Case->Tr;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "combined history: 2 pushes and 2 pops, values {1,2}";
    TC.S.Post = [Tr](const Val &R, const View &, const View &F) {
      (void)R;
      std::optional<History> Combined = History::join(
          F.self(Tr).getHist(), F.other(Tr).getHist());
      if (!Combined || Combined->size() != 4)
        return false;
      unsigned Pushes = 0, Pops = 0;
      for (const auto &Entry : *Combined) {
        bool IsPush = Entry.second.After.isPair() &&
                      Entry.second.After.second() == Entry.second.Before;
        bool IsPop = Entry.second.Before.isPair() &&
                     Entry.second.Before.second() == Entry.second.After;
        if (IsPush)
          ++Pushes;
        else if (IsPop)
          ++Pops;
        else
          return false;
      }
      return Pushes == 2 && Pops == 2;
    };
    TC.Instances.push_back(
        VerifyInstance{treiberState(*Case, {}, 2, 0), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = false;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "delivery_histories_agree", std::move(TC));
  }

  return Session;
}

void fcsl::registerProdConsLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Prod/Cons",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"CLock", true},
       ConcurroidUse{"TLock", true}, ConcurroidUse{"Treiber", false}},
      {"Treiber stack"}});
}
