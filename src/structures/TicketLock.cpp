//===- structures/TicketLock.cpp - Ticketed lock (TLock) -------------------===//
//
// Part of fcsl-cpp. See TicketLock.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/TicketLock.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

using namespace fcsl;

namespace {

Ptr ownerPtrFor(Label Lk) { return Ptr(9100 + Lk); }
Ptr nextPtrFor(Label Lk) { return Ptr(9200 + Lk); }
Ptr servingPtrFor(Label Lk) { return Ptr(9300 + Lk); }

/// Tickets are encoded as pointer tokens in the disjoint-set PCM.
Ptr ticketToken(int64_t Ticket) {
  return Ptr(static_cast<uint32_t>(8000 + Ticket));
}

/// Caps the number of outstanding (taken, unserved) environment tickets so
/// interference enumeration stays finite.
const int64_t PendingCap = 2;

/// Absolute cap on environment-drawn ticket numbers: without it, idling
/// env lock/unlock cycles would advance owner/next forever and the state
/// space would be infinite (each cycle is a *new* state, unlike the CAS
/// lock where idling cycles revisit old states and are pruned).
const int64_t EnvTicketCap = 6;

struct TLockCells {
  int64_t Owner = 0;
  int64_t Next = 0;
  bool Serving = false; ///< true while the resource is checked out.
};

std::optional<TLockCells> readCells(const Heap &Joint, Label Lk) {
  const Val *Owner = Joint.tryLookup(ownerPtrFor(Lk));
  const Val *Next = Joint.tryLookup(nextPtrFor(Lk));
  const Val *Serving = Joint.tryLookup(servingPtrFor(Lk));
  if (!Owner || !Next || !Serving || !Owner->isInt() || !Next->isInt() ||
      !Serving->isBool())
    return std::nullopt;
  return TLockCells{Owner->getInt(), Next->getInt(), Serving->getBool()};
}

Heap controlCells(Label Lk, const TLockCells &Cells) {
  Heap H;
  H.insert(ownerPtrFor(Lk), Val::ofInt(Cells.Owner));
  H.insert(nextPtrFor(Lk), Val::ofInt(Cells.Next));
  H.insert(servingPtrFor(Lk), Val::ofBool(Cells.Serving));
  return H;
}

Heap resourcePart(const Heap &Joint, Label Lk) {
  return Joint.without({ownerPtrFor(Lk), nextPtrFor(Lk),
                        servingPtrFor(Lk)});
}

bool holdsTicket(const PCMVal &Self, int64_t Ticket) {
  return Self.first().getPtrSet().count(ticketToken(Ticket)) != 0;
}

/// Footprint of drawing a ticket: bump `next`, validate the other control
/// cells, extend the agent's ticket set. The resource cells are untouched.
Footprint takeFootprint(Label Lk) {
  return Footprint::none()
      .read(FpAtom::jointCell(Lk, ownerPtrFor(Lk)))
      .read(FpAtom::jointCell(Lk, servingPtrFor(Lk)))
      .readWrite(FpAtom::jointCell(Lk, nextPtrFor(Lk)))
      .readWrite(FpAtom::selfAux(Lk));
}

/// Footprint of entering (checking the resource out): the whole lock joint
/// heap changes domain (resource cells move into the agent's private
/// heap), the ticket set is only read.
Footprint enterFootprint(Label Pv, Label Lk) {
  return Footprint::none()
      .readWrite(FpAtom::joint(Lk))
      .read(FpAtom::selfAux(Lk))
      .readWrite(FpAtom::selfAux(Pv));
}

/// Footprint of leaving: on top of enter's effects the ticket set and
/// client contribution change, and the resource invariant is re-checked
/// against the other agents' contribution.
Footprint leaveFootprint(Label Pv, Label Lk) {
  return Footprint::none()
      .readWrite(FpAtom::joint(Lk))
      .readWrite(FpAtom::selfAux(Lk))
      .readWrite(FpAtom::selfAux(Pv))
      .read(FpAtom::otherAux(Lk));
}

} // namespace

LockProtocol fcsl::makeTicketLock(Label Pv, Label Lk,
                                  const ResourceModel &Model) {
  PCMTypeRef SelfType = PCMType::pairOf(PCMType::ptrSet(),
                                        Model.ClientType);
  auto Invariant = Model.Invariant;

  // --- Coherence ---------------------------------------------------------
  auto LockCoh = [Pv, Lk, SelfType, Invariant](const View &S) {
    if (!S.hasLabel(Lk) || !S.hasLabel(Pv))
      return false;
    if (!SelfType->admits(S.self(Lk)) || !SelfType->admits(S.other(Lk)))
      return false;
    std::optional<PCMVal> Total = S.selfOtherJoin(Lk);
    if (!Total)
      return false;
    std::optional<TLockCells> Cells = readCells(S.joint(Lk), Lk);
    if (!Cells || Cells->Owner > Cells->Next)
      return false;
    // Outstanding tickets are exactly {owner..next-1}.
    const std::set<Ptr> &Tickets = Total->first().getPtrSet();
    if (static_cast<int64_t>(Tickets.size()) != Cells->Next - Cells->Owner)
      return false;
    for (int64_t T = Cells->Owner; T < Cells->Next; ++T)
      if (!Tickets.count(ticketToken(T)))
        return false;
    if (Cells->Serving) {
      // Resource checked out: only the control cells remain, and the
      // serving ticket is outstanding.
      return resourcePart(S.joint(Lk), Lk).isEmpty() &&
             Tickets.count(ticketToken(Cells->Owner)) != 0;
    }
    return Invariant(resourcePart(S.joint(Lk), Lk), Total->second());
  };

  auto Lock = makeConcurroid(
      "TLock", {OwnedLabel{Lk, "tlk", SelfType}}, LockCoh);

  // --- tl_take: draw a ticket (fetch-and-increment of next) -------------
  Lock->addTransition(Transition(
      "tlock_take", TransitionKind::Internal,
      [Lk](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Lk))
          return {};
        std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
        if (!Cells || Cells->Next - Cells->Owner >= PendingCap ||
            Cells->Next >= EnvTicketCap)
          return {}; // Bounded environment contention.
        View Post = Pre;
        Heap Joint = Pre.joint(Lk);
        Joint.update(nextPtrFor(Lk), Val::ofInt(Cells->Next + 1));
        Post.setJoint(Lk, std::move(Joint));
        std::set<Ptr> Mine = Pre.self(Lk).first().getPtrSet();
        Mine.insert(ticketToken(Cells->Next));
        Post.setSelf(Lk, PCMVal::makePair(PCMVal::ofPtrSet(std::move(Mine)),
                                          Pre.self(Lk).second()));
        return {Post};
      },
      // Thread-side takes ignore the pending cap (the fetch-and-increment
      // hardware op is total), so coverage is structural.
      [Lk](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Lk))
          return false;
        for (Label L : Pre.labels())
          if (L != Lk && !(Pre.slice(L) == Post.slice(L)))
            return false;
        std::optional<TLockCells> Before = readCells(Pre.joint(Lk), Lk);
        std::optional<TLockCells> After = readCells(Post.joint(Lk), Lk);
        if (!Before || !After)
          return false;
        if (After->Next != Before->Next + 1 ||
            After->Owner != Before->Owner ||
            After->Serving != Before->Serving)
          return false;
        if (!(resourcePart(Pre.joint(Lk), Lk) ==
              resourcePart(Post.joint(Lk), Lk)))
          return false;
        std::set<Ptr> Expected = Pre.self(Lk).first().getPtrSet();
        Expected.insert(ticketToken(Before->Next));
        return Post.self(Lk).first().getPtrSet() == Expected &&
               Post.self(Lk).second() == Pre.self(Lk).second() &&
               Pre.other(Lk) == Post.other(Lk);
      }).withFootprint(takeFootprint(Lk)));

  // --- tl_enter: my turn; check the resource out -------------------------
  Lock->addTransition(Transition(
      "tlock_enter", TransitionKind::Acquire,
      [Pv, Lk](const View &Pre) -> std::vector<View> {
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return {};
        std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
        if (!Cells || Cells->Serving ||
            !holdsTicket(Pre.self(Lk), Cells->Owner))
          return {};
        Heap Res = resourcePart(Pre.joint(Lk), Lk);
        View Post = Pre;
        TLockCells NewCells = *Cells;
        NewCells.Serving = true;
        Post.setJoint(Lk, controlCells(Lk, NewCells));
        std::optional<Heap> Mine = Heap::join(Pre.self(Pv).getHeap(), Res);
        if (!Mine)
          return {};
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
        return {Post};
      }).withFootprint(enterFootprint(Pv, Lk)));

  // --- tl_leave: return the resource, pass the baton ---------------------
  auto EnvOptions = Model.EnvReleaseOptions;
  Lock->addTransition(Transition(
      "tlock_leave", TransitionKind::Release,
      [Pv, Lk, EnvOptions, Invariant](const View &Pre) -> std::vector<View> {
        std::vector<View> Out;
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return Out;
        std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
        if (!Cells || !Cells->Serving ||
            !holdsTicket(Pre.self(Lk), Cells->Owner))
          return Out;
        for (const auto &Option : EnvOptions(Pre)) {
          std::optional<PCMVal> Total =
              PCMVal::join(Option.second, Pre.other(Lk).second());
          if (!Total || !Invariant(Option.first, *Total))
            continue;
          Heap Mine = Pre.self(Pv).getHeap();
          bool Missing = false;
          for (const auto &Cell : Option.first) {
            if (!Mine.contains(Cell.first)) {
              Missing = true;
              break;
            }
            Mine.remove(Cell.first);
          }
          if (Missing)
            continue;
          TLockCells NewCells = *Cells;
          NewCells.Serving = false;
          NewCells.Owner = Cells->Owner + 1;
          std::optional<Heap> Joint =
              Heap::join(controlCells(Lk, NewCells), Option.first);
          if (!Joint)
            continue;
          View Post = Pre;
          Post.setJoint(Lk, std::move(*Joint));
          std::set<Ptr> Tickets = Pre.self(Lk).first().getPtrSet();
          Tickets.erase(ticketToken(Cells->Owner));
          Post.setSelf(Lk, PCMVal::makePair(
                               PCMVal::ofPtrSet(std::move(Tickets)),
                               Option.second));
          Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
          Out.push_back(std::move(Post));
        }
        return Out;
      },
      [Pv, Lk, Invariant, SelfType](const View &Pre, const View &Post) {
        if (!Pre.hasLabel(Lk) || !Pre.hasLabel(Pv))
          return false;
        for (Label L : Pre.labels())
          if (L != Lk && L != Pv && !(Pre.slice(L) == Post.slice(L)))
            return false;
        if (!(Pre.other(Lk) == Post.other(Lk)) ||
            !(Pre.other(Pv) == Post.other(Pv)))
          return false;
        std::optional<TLockCells> Before = readCells(Pre.joint(Lk), Lk);
        std::optional<TLockCells> After = readCells(Post.joint(Lk), Lk);
        if (!Before || !After || !Before->Serving || After->Serving)
          return false;
        if (!holdsTicket(Pre.self(Lk), Before->Owner))
          return false;
        if (After->Owner != Before->Owner + 1 ||
            After->Next != Before->Next)
          return false;
        Heap R = resourcePart(Post.joint(Lk), Lk);
        Heap Mine = Pre.self(Pv).getHeap();
        for (const auto &Cell : R) {
          if (!Mine.contains(Cell.first))
            return false;
          Mine.remove(Cell.first);
        }
        if (!(Mine == Post.self(Pv).getHeap()))
          return false;
        std::set<Ptr> Tickets = Pre.self(Lk).first().getPtrSet();
        Tickets.erase(ticketToken(Before->Owner));
        if (Post.self(Lk).first().getPtrSet() != Tickets ||
            !SelfType->admits(Post.self(Lk)))
          return false;
        std::optional<PCMVal> Total =
            PCMVal::join(Post.self(Lk).second(), Post.other(Lk).second());
        return Total && Invariant(R, *Total);
      }).withFootprint(leaveFootprint(Pv, Lk)));

  ConcurroidRef Priv = makePriv(Pv);
  ConcurroidRef Entangled = entangle(Priv, Lock);

  // --- Actions ------------------------------------------------------------
  ActionRef TakeTicket = makeAction(
      "take_ticket", Entangled, 0,
      [Lk](const View &Pre, const std::vector<Val> &)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Pre.hasLabel(Lk))
          return std::nullopt;
        std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
        if (!Cells)
          return std::nullopt;
        View Post = Pre;
        Heap Joint = Pre.joint(Lk);
        Joint.update(nextPtrFor(Lk), Val::ofInt(Cells->Next + 1));
        Post.setJoint(Lk, std::move(Joint));
        std::set<Ptr> Mine = Pre.self(Lk).first().getPtrSet();
        Mine.insert(ticketToken(Cells->Next));
        Post.setSelf(Lk, PCMVal::makePair(PCMVal::ofPtrSet(std::move(Mine)),
                                          Pre.self(Lk).second()));
        return std::vector<ActOutcome>{
            {Val::ofInt(Cells->Next), std::move(Post)}};
      },
      takeFootprint(Lk));

  ActionRef TryEnter = makeAction(
      "try_enter", Entangled, 1, // Arg: my ticket number.
      [Pv, Lk](const View &Pre, const std::vector<Val> &Args)
          -> std::optional<std::vector<ActOutcome>> {
        if (!Pre.hasLabel(Lk) || !Args[0].isInt())
          return std::nullopt;
        int64_t MyTicket = Args[0].getInt();
        if (!holdsTicket(Pre.self(Lk), MyTicket))
          return std::nullopt; // Entering without a ticket: unsafe.
        std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
        if (!Cells)
          return std::nullopt;
        if (Cells->Owner != MyTicket)
          return std::vector<ActOutcome>{{Val::ofBool(false), Pre}};
        if (Cells->Serving)
          return std::nullopt; // I am being served twice: protocol bug.
        Heap Res = resourcePart(Pre.joint(Lk), Lk);
        TLockCells NewCells = *Cells;
        NewCells.Serving = true;
        View Post = Pre;
        Post.setJoint(Lk, controlCells(Lk, NewCells));
        std::optional<Heap> Mine = Heap::join(Pre.self(Pv).getHeap(), Res);
        if (!Mine)
          return std::nullopt;
        Post.setSelf(Pv, PCMVal::ofHeap(std::move(*Mine)));
        return std::vector<ActOutcome>{{Val::ofBool(true), std::move(Post)}};
      },
      enterFootprint(Pv, Lk),
      // While it is not my turn, try_enter only observes the control cells
      // and my own ticket set, and changes nothing. Steps independent of
      // those reads cannot advance `owner` to my ticket.
      [Pv, Lk](const View &Pre, const std::vector<Val> &Args) -> Footprint {
        if (Pre.hasLabel(Lk) && Args.size() == 1 && Args[0].isInt() &&
            holdsTicket(Pre.self(Lk), Args[0].getInt())) {
          std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
          if (Cells && Cells->Owner != Args[0].getInt())
            return Footprint::none()
                .read(FpAtom::jointCell(Lk, ownerPtrFor(Lk)))
                .read(FpAtom::jointCell(Lk, nextPtrFor(Lk)))
                .read(FpAtom::jointCell(Lk, servingPtrFor(Lk)))
                .read(FpAtom::selfAux(Lk));
        }
        return enterFootprint(Pv, Lk);
      });

  LockProtocol P;
  P.Name = "TLock";
  P.C = Entangled;
  P.Pv = Pv;
  P.Lk = Lk;
  P.ClientType = Model.ClientType;
  P.TryLock = nullptr;

  P.DefineLock = [TakeTicket, TryEnter](DefTable &Defs,
                                        const std::string &FnName) {
    // lock() := t <-- take_ticket; wait(t)
    // wait(t) := b <-- try_enter(t); if b then ret () else wait(t).
    std::string WaitFn = FnName + "_wait";
    Defs.define(WaitFn,
                FuncDef{{"t"},
                        Prog::bind(Prog::act(TryEnter, {Expr::var("t")}),
                                   "b",
                                   Prog::ifThenElse(
                                       Expr::var("b"), Prog::retUnit(),
                                       Prog::call(WaitFn,
                                                  {Expr::var("t")})))});
    Defs.define(FnName,
                FuncDef{{},
                        Prog::bind(Prog::act(TakeTicket, {}), "t",
                                   Prog::call(WaitFn, {Expr::var("t")}))});
  };

  P.MakeUnlock = [Entangled, Pv, Lk, Invariant](std::string Name,
                                                unsigned Arity,
                                                ReleaseFn Release) {
    return makeAction(
        std::move(Name), Entangled, Arity,
        [Pv, Lk, Invariant, Release](const View &Pre,
                                     const std::vector<Val> &Args)
            -> std::optional<std::vector<ActOutcome>> {
          if (!Pre.hasLabel(Lk))
            return std::nullopt;
          std::optional<TLockCells> Cells = readCells(Pre.joint(Lk), Lk);
          if (!Cells || !Cells->Serving ||
              !holdsTicket(Pre.self(Lk), Cells->Owner))
            return std::nullopt; // Unlock without being served: unsafe.
          std::optional<std::pair<Heap, PCMVal>> Payload =
              Release(Pre, Args);
          if (!Payload)
            return std::nullopt;
          std::optional<PCMVal> Total =
              PCMVal::join(Payload->second, Pre.other(Lk).second());
          if (!Total || !Invariant(Payload->first, *Total))
            return std::nullopt;
          Heap Mine = Pre.self(Pv).getHeap();
          for (const auto &Cell : Payload->first) {
            if (!Mine.contains(Cell.first))
              return std::nullopt;
            Mine.remove(Cell.first);
          }
          TLockCells NewCells = *Cells;
          NewCells.Serving = false;
          NewCells.Owner = Cells->Owner + 1;
          std::optional<Heap> Joint =
              Heap::join(controlCells(Lk, NewCells), Payload->first);
          if (!Joint)
            return std::nullopt;
          View Post = Pre;
          Post.setJoint(Lk, std::move(*Joint));
          std::set<Ptr> Tickets = Pre.self(Lk).first().getPtrSet();
          Tickets.erase(ticketToken(Cells->Owner));
          Post.setSelf(Lk, PCMVal::makePair(
                               PCMVal::ofPtrSet(std::move(Tickets)),
                               Payload->second));
          Post.setSelf(Pv, PCMVal::ofHeap(std::move(Mine)));
          return std::vector<ActOutcome>{{Val::unit(), std::move(Post)}};
        },
        leaveFootprint(Pv, Lk));
  };

  P.HoldsLock = [Lk](const View &S) {
    if (!S.hasLabel(Lk))
      return false;
    std::optional<TLockCells> Cells = readCells(S.joint(Lk), Lk);
    return Cells && Cells->Serving && holdsTicket(S.self(Lk), Cells->Owner);
  };
  P.ClientSelf = [Lk](const View &S) { return S.self(Lk).second(); };
  P.InitialJoint = [Lk](const Heap &Resource) {
    std::optional<Heap> Joint =
        Heap::join(controlCells(Lk, TLockCells{}), Resource);
    assert(Joint && "resource clashes with the ticket-lock control cells");
    return *Joint;
  };
  P.UnitSelf = [SelfType]() { return SelfType->unit(); };
  return P;
}

LockFactory fcsl::ticketLockFactory() {
  return [](Label Pv, Label Lk, const ResourceModel &Model) {
    return makeTicketLock(Pv, Lk, Model);
  };
}

//===----------------------------------------------------------------------===//
// The "Ticketed lock" Table 1 row.
//===----------------------------------------------------------------------===//

namespace {

constexpr Label PvLbl = 1;
constexpr Label LkLbl = 2;
const uint64_t EnvClientCap = 2;

Ptr counterCell() { return Ptr(1); }

ResourceModel ticketCounterResource() {
  ResourceModel Model;
  Model.ClientType = PCMType::nat();
  Model.Invariant = [](const Heap &Res, const PCMVal &Total) {
    if (Res.size() != 1 || !Res.contains(counterCell()))
      return false;
    const Val &Cell = Res.lookup(counterCell());
    return Cell.isInt() &&
           Cell.getInt() == static_cast<int64_t>(Total.getNat());
  };
  // Strictly progressing releases bound the number of env lock cycles
  // (each cycle advances owner/next, so idling cycles would make the state
  // space infinite).
  Model.EnvReleaseOptions =
      [](const View &EnvView) -> std::vector<std::pair<Heap, PCMVal>> {
    std::vector<std::pair<Heap, PCMVal>> Out;
    uint64_t Mine = EnvView.self(LkLbl).second().getNat();
    uint64_t Others = EnvView.other(LkLbl).second().getNat();
    if (Mine + 1 > EnvClientCap)
      return Out;
    Out.emplace_back(Heap::singleton(counterCell(),
                                     Val::ofInt(static_cast<int64_t>(
                                         Mine + 1 + Others))),
                     PCMVal::ofNat(Mine + 1));
    return Out;
  };
  return Model;
}

std::vector<View> ticketSampleViews(const LockProtocol &) {
  std::vector<View> Out;
  auto Mk = [&](TLockCells Cells, std::set<int64_t> MyTickets,
                uint64_t MyC, uint64_t OtherC, Heap MyPriv) {
    View S;
    std::set<Ptr> Mine, Others;
    for (int64_t T = Cells.Owner; T < Cells.Next; ++T) {
      if (MyTickets.count(T))
        Mine.insert(ticketToken(T));
      else
        Others.insert(ticketToken(T));
    }
    Heap Joint = controlCells(LkLbl, Cells);
    if (!Cells.Serving) {
      std::optional<Heap> WithRes = Heap::join(
          Joint, Heap::singleton(counterCell(),
                                 Val::ofInt(static_cast<int64_t>(
                                     MyC + OtherC))));
      Joint = *WithRes;
    }
    S.addLabel(PvLbl, LabelSlice{PCMVal::ofHeap(std::move(MyPriv)), Heap(),
                                 PCMVal::ofHeap(Heap())});
    S.addLabel(LkLbl,
               LabelSlice{PCMVal::makePair(PCMVal::ofPtrSet(std::move(Mine)),
                                           PCMVal::ofNat(MyC)),
                          std::move(Joint),
                          PCMVal::makePair(
                              PCMVal::ofPtrSet(std::move(Others)),
                              PCMVal::ofNat(OtherC))});
    return S;
  };

  for (uint64_t MyC = 0; MyC <= 1; ++MyC)
    for (uint64_t OtherC = 0; OtherC <= 1; ++OtherC) {
      // Free, no outstanding tickets.
      Out.push_back(Mk(TLockCells{2, 2, false}, {}, MyC, OtherC, Heap()));
      // Free, two waiters (me first / me second).
      Out.push_back(Mk(TLockCells{1, 3, false}, {1}, MyC, OtherC, Heap()));
      Out.push_back(Mk(TLockCells{1, 3, false}, {2}, MyC, OtherC, Heap()));
      // Serving me (resource in my private heap).
      Out.push_back(Mk(TLockCells{1, 2, true}, {1}, MyC, OtherC,
                       Heap::singleton(counterCell(), Val::ofInt(3))));
      // Serving the environment.
      Out.push_back(Mk(TLockCells{1, 2, true}, {}, MyC, OtherC, Heap()));
      // Serving the environment while I wait.
      Out.push_back(Mk(TLockCells{1, 3, true}, {2}, MyC, OtherC, Heap()));
    }
  return Out;
}

GlobalState ticketInitialState(const LockProtocol &P, uint64_t Total) {
  GlobalState GS;
  GS.addLabel(P.Pv, PCMType::heap(), Heap(), PCMVal::ofHeap(Heap()),
              /*EnvClosed=*/false);
  GS.addLabel(P.Lk, PCMType::pairOf(PCMType::ptrSet(), PCMType::nat()),
              P.InitialJoint(Heap::singleton(
                  counterCell(), Val::ofInt(static_cast<int64_t>(Total)))),
              PCMVal::makePair(PCMVal::ofPtrSet({}), PCMVal::ofNat(Total)),
              /*EnvClosed=*/false);
  return GS;
}

} // namespace

VerificationSession fcsl::makeTicketLockSession() {
  VerificationSession Session("Ticketed lock");
  LockProtocol P = makeTicketLock(PvLbl, LkLbl, ticketCounterResource());
  auto Samples = std::make_shared<std::vector<View>>(ticketSampleViews(P));
  ConcurroidRef C = P.C;

  PCMTypeRef LawType = PCMType::pairOf(PCMType::ptrSet(), PCMType::nat());
  std::vector<PCMVal> LawSample;
  for (uint64_t N = 0; N <= 1; ++N) {
    LawSample.push_back(
        PCMVal::makePair(PCMVal::ofPtrSet({}), PCMVal::ofNat(N)));
    LawSample.push_back(PCMVal::makePair(
        PCMVal::singletonPtr(ticketToken(1)), PCMVal::ofNat(N)));
    LawSample.push_back(PCMVal::makePair(
        PCMVal::ofPtrSet({ticketToken(1), ticketToken(2)}),
        PCMVal::ofNat(N)));
  }
  Session.addObligation(
      ObCategory::Libs, "ticketset_x_nat_pcm_laws",
      pcmLawInputs(LawType, LawSample, 1).text("cancellative"),
      [LawType, LawSample] {
        PCMLawReport R = checkPCMLaws(*LawType, LawSample);
        return lawObligation(R.allHold() && checkCancellativity(LawSample),
                             R.JoinsEvaluated);
      });

  Session.addObligation(ObCategory::Conc, "tlock_metatheory",
                        sampleInputs(ObKind::Metatheory, *C, *Samples, 1),
                        [C, Samples] {
    return toObligation(checkConcurroidWellFormed(*C, *Samples));
  });

  // Actions: exercise with plausible ticket arguments.
  auto Defs = std::make_shared<DefTable>();
  P.DefineLock(*Defs, "lock");
  ActionRef Unlock = P.MakeUnlock(
      "unlock_id", 0,
      [P](const View &S,
          const std::vector<Val> &) -> std::optional<std::pair<Heap, PCMVal>> {
        const Heap &Mine = S.self(P.Pv).getHeap();
        const Val *Cell = Mine.tryLookup(counterCell());
        if (!Cell)
          return std::nullopt;
        return std::make_pair(Heap::singleton(counterCell(), *Cell),
                              P.ClientSelf(S));
      });

  Session.addObligation(ObCategory::Acts, "unlock_wf",
                        actionInputs(*Unlock, *Samples, {{}}, 1).text("wf"),
                        [Unlock, Samples] {
    return toObligation(checkActionWellFormed(*Unlock, *Samples, {{}}));
  });
  Session.addObligation(
      ObCategory::Acts, "unlock_corresponds",
      actionInputs(*Unlock, *Samples, {{}}, 1).text("corresponds"),
      [Unlock, Samples] {
        return toObligation(
            checkActionCorrespondence(*Unlock, *Samples, {{}}));
      });

  Session.addObligation(ObCategory::Stab, "serving_me_is_stable",
                        stabilityInputs(*C, "the lock serves me", *Samples, 1),
                        [C, P, Samples] {
    Assertion Holding("the lock serves me", P.HoldsLock);
    return toObligation(checkStability(Holding, *C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "my_ticket_stays_mine",
                        stabilityInputs(*C, "I hold ticket 2", *Samples, 1),
                        [C, Samples] {
    Assertion MyTicket("I hold ticket 2", [](const View &S) {
      return S.hasLabel(LkLbl) && holdsTicket(S.self(LkLbl), 2);
    });
    return toObligation(checkStability(MyTicket, *C, *Samples));
  });
  Session.addObligation(
      ObCategory::Stab, "owner_only_grows",
      stabilityInputs(*C, "owner/next are monotone", *Samples, 1),
      [C, Samples] {
        return toObligation(checkRelationStability(
            [](const View &Seed, const View &S) {
              std::optional<TLockCells> Before =
                  readCells(Seed.joint(LkLbl), LkLbl);
              std::optional<TLockCells> After =
                  readCells(S.joint(LkLbl), LkLbl);
              return Before && After && After->Owner >= Before->Owner &&
                     After->Next >= Before->Next;
            },
            "owner/next are monotone", *C, *Samples));
      });

  {
    TripleCase TC;
    TC.Main = Prog::seq(Prog::call("lock", {}), Prog::act(Unlock, {}));
    TC.S.Name = "tlock_lock_unlock";
    TC.S.C = C;
    TC.S.Pre = Assertion("not holding",
                         [P](const View &V) { return !P.HoldsLock(V); });
    TC.S.PostName = "released, client contribution unchanged";
    TC.S.Post = [P](const Val &R, const View &I, const View &F) {
      return R.isUnit() && !P.HoldsLock(F) &&
             P.ClientSelf(F) == P.ClientSelf(I);
    };
    for (uint64_t Total : {uint64_t{0}, uint64_t{1}})
      TC.Instances.push_back(
          VerifyInstance{ticketInitialState(P, Total), {}});
    TC.Opts.Ambient = C;
    TC.Opts.EnvInterference = true;
    TC.Defs = Defs;
    addTriple(Session, "lock_unlock_spec", std::move(TC));
  }

  return Session;
}

void fcsl::registerTicketLockLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Ticketed lock",
      {ConcurroidUse{"Priv", false}, ConcurroidUse{"TLock", false}},
      {}});
}
