//===- structures/PairSnapshot.cpp - Atomic pair snapshot ------------------===//
//
// Part of fcsl-cpp. See PairSnapshot.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "structures/PairSnapshot.h"

#include "concurroid/Registry.h"
#include "pcm/Algebra.h"

using namespace fcsl;

namespace {

const int64_t EnvWriteXValue = 9;
const int64_t EnvWriteYValue = 8;

/// Reads the (value, version) pair of a cell.
std::optional<std::pair<int64_t, int64_t>> readCell(const Heap &Joint,
                                                    Ptr P) {
  const Val *Cell = Joint.tryLookup(P);
  if (!Cell || !Cell->isPair() || !Cell->first().isInt() ||
      !Cell->second().isInt())
    return std::nullopt;
  return std::make_pair(Cell->first().getInt(), Cell->second().getInt());
}

/// The abstract pair state (x value, y value).
Val pairState(int64_t X, int64_t Y) {
  return Val::pair(Val::ofInt(X), Val::ofInt(Y));
}

Val lastState(const History &Combined) {
  if (Combined.isEmpty())
    return pairState(0, 0);
  return Combined.tryLookup(Combined.lastStamp())->After;
}

/// Footprint of one write commit: the written cell is read and rewritten,
/// the sibling cell is only read (its value enters the abstract After
/// state), the agent's history gains an entry, and the other agents'
/// histories supply the Before state and the interference cap. Reads and
/// writes to *different* cells of the pair are therefore independent.
Footprint writeFootprint(Label Rp, Ptr Target, Ptr Sibling) {
  return Footprint::none()
      .readWrite(FpAtom::jointCell(Rp, Target))
      .read(FpAtom::jointCell(Rp, Sibling))
      .readWrite(FpAtom::selfAux(Rp))
      .read(FpAtom::otherAux(Rp));
}

} // namespace

PairSnapCase fcsl::makePairSnapCase(Label Rp, uint64_t EnvHistCap) {
  PairSnapCase Case;
  Case.Rp = Rp;
  Case.CellX = Ptr(9500 + Rp);
  Case.CellY = Ptr(9501 + Rp);
  Ptr PX = Case.CellX, PY = Case.CellY;

  auto Coh = [Rp, PX, PY](const View &S) {
    if (!S.hasLabel(Rp))
      return false;
    if (S.self(Rp).kind() != PCMKind::Hist ||
        S.other(Rp).kind() != PCMKind::Hist)
      return false;
    std::optional<History> Combined =
        History::join(S.self(Rp).getHist(), S.other(Rp).getHist());
    if (!Combined || !Combined->isContinuous())
      return false;
    if (!Combined->isEmpty() &&
        !(Combined->tryLookup(1)->Before == pairState(0, 0)))
      return false;
    if (S.joint(Rp).size() != 2)
      return false;
    auto X = readCell(S.joint(Rp), PX);
    auto Y = readCell(S.joint(Rp), PY);
    if (!X || !Y || X->second < 0 || Y->second < 0)
      return false;
    // Each write bumps exactly one version and appends one entry.
    if (static_cast<uint64_t>(X->second + Y->second) != Combined->size())
      return false;
    return lastState(*Combined) == pairState(X->first, Y->first);
  };

  auto ReadPair = makeConcurroid(
      "ReadPair", {OwnedLabel{Rp, "rp", PCMType::hist()}}, Coh);

  // Shared commit for writes.
  auto WriteCommit = [Rp, PX, PY](const View &Pre, bool ToX,
                                  int64_t V) -> std::optional<View> {
    auto X = readCell(Pre.joint(Rp), PX);
    auto Y = readCell(Pre.joint(Rp), PY);
    if (!X || !Y)
      return std::nullopt;
    std::optional<History> Combined =
        History::join(Pre.self(Rp).getHist(), Pre.other(Rp).getHist());
    if (!Combined)
      return std::nullopt;
    Val Before = lastState(*Combined);
    Val After = ToX ? pairState(V, Y->first) : pairState(X->first, V);
    View Post = Pre;
    Heap Joint = Pre.joint(Rp);
    if (ToX)
      Joint.update(PX, Val::pair(Val::ofInt(V), Val::ofInt(X->second + 1)));
    else
      Joint.update(PY, Val::pair(Val::ofInt(V), Val::ofInt(Y->second + 1)));
    Post.setJoint(Rp, std::move(Joint));
    History Mine = Pre.self(Rp).getHist();
    Mine.add(Combined->lastStamp() + 1, HistEntry{Before, After});
    Post.setSelf(Rp, PCMVal::ofHist(std::move(Mine)));
    return Post;
  };

  auto HistSize = [Rp](const View &S) {
    return S.self(Rp).getHist().size() + S.other(Rp).getHist().size();
  };

  for (bool ToX : {true, false}) {
    ReadPair->addTransition(Transition(
        ToX ? "writeX_trans" : "writeY_trans", TransitionKind::Internal,
        [WriteCommit, HistSize, ToX, EnvHistCap](const View &Pre)
            -> std::vector<View> {
          std::vector<View> Out;
          if (HistSize(Pre) >= EnvHistCap)
            return Out;
          std::optional<View> Post = WriteCommit(
              Pre, ToX, ToX ? EnvWriteXValue : EnvWriteYValue);
          if (Post)
            Out.push_back(std::move(*Post));
          return Out;
        },
        // Structural coverage for arbitrary written values.
        [WriteCommit, Rp, PX, PY, ToX](const View &Pre, const View &Post) {
          if (!Post.hasLabel(Rp))
            return false;
          auto Cell = readCell(Post.joint(Rp), ToX ? PX : PY);
          if (!Cell)
            return false;
          std::optional<View> Candidate =
              WriteCommit(Pre, ToX, Cell->first);
          return Candidate && *Candidate == Post;
        }).withFootprint(writeFootprint(Rp, ToX ? PX : PY,
                                        ToX ? PY : PX)));
  }

  Case.C = ReadPair;

  auto MakeRead = [Rp, &Case](const char *Name, Ptr P) {
    return makeAction(
        Name, Case.C, 0,
        [Rp, P](const View &Pre, const std::vector<Val> &)
            -> std::optional<std::vector<ActOutcome>> {
          auto Cell = readCell(Pre.joint(Rp), P);
          if (!Cell)
            return std::nullopt;
          return std::vector<ActOutcome>{
              {Val::pair(Val::ofInt(Cell->first),
                         Val::ofInt(Cell->second)),
               Pre}};
        },
        Footprint::none().read(FpAtom::jointCell(Rp, P)));
  };
  Case.ReadX = MakeRead("readX", PX);
  Case.ReadY = MakeRead("readY", PY);

  auto MakeWrite = [WriteCommit, Rp, PX, PY, &Case](const char *Name,
                                                    bool ToX) {
    return makeAction(
        Name, Case.C, 1,
        [WriteCommit, ToX](const View &Pre, const std::vector<Val> &Args)
            -> std::optional<std::vector<ActOutcome>> {
          if (!Args[0].isInt())
            return std::nullopt;
          std::optional<View> Post =
              WriteCommit(Pre, ToX, Args[0].getInt());
          if (!Post)
            return std::nullopt;
          return std::vector<ActOutcome>{{Val::unit(), std::move(*Post)}};
        },
        writeFootprint(Rp, ToX ? PX : PY, ToX ? PY : PX));
  };
  Case.WriteX = MakeWrite("writeX", true);
  Case.WriteY = MakeWrite("writeY", false);

  // readPair() := a <-- readX; b <-- readY; a2 <-- readX;
  //               if a.2 == a2.2 then ret (a.1, b.1) else readPair().
  Case.Defs.define(
      "readPair",
      FuncDef{{},
              Prog::bind(
                  Prog::act(Case.ReadX, {}), "a",
                  Prog::bind(
                      Prog::act(Case.ReadY, {}), "b",
                      Prog::bind(
                          Prog::act(Case.ReadX, {}), "a2",
                          Prog::ifThenElse(
                              Expr::eq(Expr::snd(Expr::var("a")),
                                       Expr::snd(Expr::var("a2"))),
                              Prog::ret(Expr::mkPair(
                                  Expr::fst(Expr::var("a")),
                                  Expr::fst(Expr::var("b")))),
                              Prog::call("readPair", {})))))});
  return Case;
}

GlobalState fcsl::pairSnapState(const PairSnapCase &C) {
  Heap Joint;
  Joint.insert(C.CellX, Val::pair(Val::ofInt(0), Val::ofInt(0)));
  Joint.insert(C.CellY, Val::pair(Val::ofInt(0), Val::ofInt(0)));
  GlobalState GS;
  GS.addLabel(C.Rp, PCMType::hist(), std::move(Joint),
              PCMVal::ofHist(History()), /*EnvClosed=*/false);
  return GS;
}

std::vector<View> fcsl::pairSnapSampleViews(const PairSnapCase &C) {
  std::vector<View> Out;
  // Fresh structure.
  Out.push_back(pairSnapState(C).viewFor(rootThread()));
  // After one env write to x and one self write to y.
  {
    GlobalState GS = pairSnapState(C);
    View Env = GS.viewForEnv();
    // Simulate: env writes x := 9, then "we" write y := 3.
    Heap Joint = Env.joint(C.Rp);
    Joint.update(C.CellX, Val::pair(Val::ofInt(9), Val::ofInt(1)));
    Joint.update(C.CellY, Val::pair(Val::ofInt(3), Val::ofInt(1)));
    History EnvH, MineH;
    EnvH.add(1, HistEntry{pairState(0, 0), pairState(9, 0)});
    MineH.add(2, HistEntry{pairState(9, 0), pairState(9, 3)});
    GS.setJoint(C.Rp, std::move(Joint));
    GS.setEnvSelf(C.Rp, PCMVal::ofHist(std::move(EnvH)));
    GS.setSelf(C.Rp, rootThread(), PCMVal::ofHist(std::move(MineH)));
    Out.push_back(GS.viewFor(rootThread()));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The Table 1 row.
//===----------------------------------------------------------------------===//

namespace {
constexpr Label RpLbl = 1;
} // namespace

VerificationSession fcsl::makePairSnapshotSession() {
  VerificationSession Session("Pair snapshot");
  auto Case = std::make_shared<PairSnapCase>(
      makePairSnapCase(RpLbl, /*EnvHistCap=*/3));
  auto Samples =
      std::make_shared<std::vector<View>>(pairSnapSampleViews(*Case));

  std::vector<PCMVal> LawSample;
  LawSample.push_back(PCMVal::ofHist(History()));
  {
    History H1, H2;
    H1.add(1, HistEntry{pairState(0, 0), pairState(9, 0)});
    H2.add(2, HistEntry{pairState(9, 0), pairState(9, 3)});
    LawSample.push_back(PCMVal::ofHist(H1));
    LawSample.push_back(PCMVal::ofHist(H2));
  }
  Session.addObligation(ObCategory::Libs, "snapshot_hist_pcm_laws",
                        pcmLawInputs(PCMType::hist(), LawSample, 1),
                        [LawSample] {
    PCMLawReport R = checkPCMLaws(*PCMType::hist(), LawSample);
    return lawObligation(R.allHold(), R.JoinsEvaluated);
  });

  Session.addObligation(ObCategory::Conc, "readpair_metatheory",
                        sampleInputs(ObKind::Metatheory, *Case->C,
                                     *Samples, 1),
                        [Case, Samples] {
    return toObligation(checkConcurroidWellFormed(*Case->C, *Samples));
  });

  std::vector<ActionArgs> WriteArgs = {{Val::ofInt(3)}, {Val::ofInt(5)}};
  Session.addObligation(ObCategory::Acts, "reads_wf",
                        actionInputs(*Case->ReadX, *Samples, {{}}, 1)
                            .text(Case->ReadY->name())
                            .num(Case->ReadY->arity())
                            .text("wf"),
                        [Case, Samples] {
    MetaReport R;
    R.absorb(checkActionWellFormed(*Case->ReadX, *Samples, {{}}));
    R.absorb(checkActionWellFormed(*Case->ReadY, *Samples, {{}}));
    return toObligation(R);
  });
  Session.addObligation(ObCategory::Acts, "writes_wf",
                        actionInputs(*Case->WriteX, *Samples, WriteArgs, 1)
                            .text(Case->WriteY->name())
                            .num(Case->WriteY->arity())
                            .text("wf"),
                        [Case, Samples, WriteArgs] {
    MetaReport R;
    R.absorb(checkActionWellFormed(*Case->WriteX, *Samples, WriteArgs));
    R.absorb(checkActionWellFormed(*Case->WriteY, *Samples, WriteArgs));
    return toObligation(R);
  });

  Session.addObligation(ObCategory::Stab, "versions_monotone",
                        stabilityInputs(*Case->C, "versions are monotone",
                                        *Samples, 1),
                        [Case, Samples] {
    Label Rp = Case->Rp;
    Ptr PX = Case->CellX, PY = Case->CellY;
    return toObligation(checkRelationStability(
        [Rp, PX, PY](const View &Seed, const View &S) {
          auto XA = readCell(Seed.joint(Rp), PX);
          auto XB = readCell(S.joint(Rp), PX);
          auto YA = readCell(Seed.joint(Rp), PY);
          auto YB = readCell(S.joint(Rp), PY);
          return XA && XB && YA && YB && XB->second >= XA->second &&
                 YB->second >= YA->second;
        },
        "versions are monotone", *Case->C, *Samples));
  });
  Session.addObligation(ObCategory::Stab, "same_version_same_value",
                        stabilityInputs(
                            *Case->C,
                            "unchanged version implies unchanged value",
                            *Samples, 1),
                        [Case, Samples] {
    // The key reader lemma: if x's version is unchanged, so is its value.
    Label Rp = Case->Rp;
    Ptr PX = Case->CellX;
    return toObligation(checkRelationStability(
        [Rp, PX](const View &Seed, const View &S) {
          auto A = readCell(Seed.joint(Rp), PX);
          auto B = readCell(S.joint(Rp), PX);
          if (!A || !B)
            return false;
          return B->second != A->second || B->first == A->first;
        },
        "unchanged version implies unchanged value", *Case->C, *Samples));
  });

  {
    TripleCase TC;
    TC.Main = Prog::call("readPair", {});
    TC.S.Name = "readPair";
    TC.S.C = Case->C;
    Label Rp = Case->Rp;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "the returned pair was an actual state of the history";
    TC.S.Post = [Rp](const Val &R, const View &I, const View &F) {
      if (!R.isPair() || !R.first().isInt() || !R.second().isInt())
        return false;
      std::optional<History> CI =
          History::join(I.self(Rp).getHist(), I.other(Rp).getHist());
      std::optional<History> CF =
          History::join(F.self(Rp).getHist(), F.other(Rp).getHist());
      if (!CI || !CF)
        return false;
      // Candidate states between invocation and return: the state at
      // invocation plus every state the history went through afterwards.
      std::vector<Val> States = {lastState(*CI)};
      for (const auto &Entry : *CF)
        if (Entry.first > CI->lastStamp())
          States.push_back(Entry.second.After);
      for (const Val &State : States)
        if (State == Val::pair(R.first(), R.second()))
          return true;
      return false;
    };
    TC.Instances.push_back(VerifyInstance{pairSnapState(*Case), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "readpair_spec", std::move(TC));
  }

  {
    // writeX(3); readPair() returns a pair whose x is 3 or a later write.
    TripleCase TC;
    TC.Main = Prog::seq(Prog::act(Case->WriteX, {Expr::litInt(3)}),
                        Prog::call("readPair", {}));
    TC.S.Name = "writeX_then_readPair";
    TC.S.C = Case->C;
    TC.S.Pre = assertTrue();
    TC.S.PostName = "snapshot.x reflects my write or a later one";
    TC.S.Post = [](const Val &R, const View &, const View &) {
      return R.isPair() && R.first().isInt() &&
             (R.first().getInt() == 3 || R.first().getInt() == 9);
    };
    TC.Instances.push_back(VerifyInstance{pairSnapState(*Case), {}});
    TC.Opts.Ambient = Case->C;
    TC.Opts.EnvInterference = true;
    TC.Defs = std::shared_ptr<const DefTable>(Case, &Case->Defs);
    addTriple(Session, "write_then_read_spec", std::move(TC));
  }

  return Session;
}

void fcsl::registerPairSnapshotLibrary() {
  globalRegistry().registerLibrary(LibraryInfo{
      "Pair snapshot", {ConcurroidUse{"ReadPair", false}}, {}});
}
