//===- runtime/RtSpanTree.h - Executable concurrent spanning ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified spanning-tree construction
/// (Figure 1): graph nodes carry atomic mark bits; `span` CASes the mark,
/// spawns real threads for its children up to a parallel depth, and prunes
/// the edges whose targets were already claimed. The paper's verified
/// property — the surviving edges form a spanning tree of the reachable
/// component — is asserted by the examples and tests after every run.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTSPANTREE_H
#define FCSL_RUNTIME_RTSPANTREE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace fcsl {

/// A binary directed graph with atomically markable nodes. Node ids are
/// dense indices; -1 is "no successor".
class RtGraph {
public:
  explicit RtGraph(unsigned NumNodes);

  unsigned size() const { return static_cast<unsigned>(Nodes.size()); }
  void setEdges(unsigned Node, int Left, int Right);
  int left(unsigned Node) const { return Nodes[Node].Left; }
  int right(unsigned Node) const { return Nodes[Node].Right; }
  bool isMarked(unsigned Node) const;

  /// CAS on the mark bit; true if this call marked the node.
  bool tryMark(unsigned Node);

  void nullifyLeft(unsigned Node) { Nodes[Node].Left = -1; }
  void nullifyRight(unsigned Node) { Nodes[Node].Right = -1; }

  /// Resets all marks (edges stay as pruned).
  void clearMarks();

private:
  struct Node {
    std::atomic<bool> Marked{false};
    int Left = -1;
    int Right = -1;
  };
  std::vector<Node> Nodes;
};

/// Runs the concurrent spanning-tree construction from \p Root, spawning
/// real threads for recursive calls while depth < \p ParallelDepth.
/// Returns false iff the root was null/already marked.
bool rtSpan(RtGraph &G, int Root, unsigned ParallelDepth = 4);

/// Checks that the surviving edges of \p G form a tree rooted at \p Root
/// covering exactly the originally-reachable nodes (all marked).
bool rtIsSpanningTree(const RtGraph &G, unsigned Root);

} // namespace fcsl

#endif // FCSL_RUNTIME_RTSPANTREE_H
