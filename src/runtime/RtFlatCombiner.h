//===- runtime/RtFlatCombiner.h - Executable flat combiner ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified flat combiner (after Hendler
/// et al., SPAA'10): per-thread publication slots and a combiner lock; the
/// lock holder executes everyone's pending requests against a sequential
/// structure. Instantiated here with a sequential stack, yielding the
/// FC-stack of the benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTFLATCOMBINER_H
#define FCSL_RUNTIME_RTFLATCOMBINER_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace fcsl {

/// A flat-combined LIFO stack of 64-bit values for a fixed number of
/// threads (each thread uses its own slot index).
class RtFcStack {
public:
  explicit RtFcStack(unsigned NumThreads);
  ~RtFcStack();
  RtFcStack(const RtFcStack &) = delete;
  RtFcStack &operator=(const RtFcStack &) = delete;

  /// Pushes \p Value on behalf of \p ThreadIndex.
  void push(unsigned ThreadIndex, int64_t Value);

  /// Pops on behalf of \p ThreadIndex (nullopt on empty).
  std::optional<int64_t> pop(unsigned ThreadIndex);

private:
  enum OpKind : uint32_t { OpNone = 0, OpPush = 1, OpPop = 2 };

  struct alignas(64) Slot {
    std::atomic<uint32_t> Kind{OpNone};
    std::atomic<int64_t> Arg{0};
    std::atomic<int64_t> Result{0};
    std::atomic<bool> Done{false};
  };

  /// Publishes a request and waits, combining opportunistically.
  int64_t runOp(unsigned ThreadIndex, OpKind Kind, int64_t Arg);

  /// Executes every pending request (caller holds the combiner lock).
  void combineAll();

  std::atomic<bool> CombinerLock{false};
  std::vector<Slot> Slots;
  std::vector<int64_t> Data; // The protected sequential stack.
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTFLATCOMBINER_H
