//===- runtime/RtPairSnapshot.cpp - Executable pair snapshot ---------------===//
//
// Part of fcsl-cpp. See RtPairSnapshot.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtPairSnapshot.h"

using namespace fcsl;

void RtPairSnapshot::bumpCell(std::atomic<uint64_t> &Cell, uint32_t Value) {
  uint64_t Cur = Cell.load(std::memory_order_relaxed);
  while (true) {
    uint64_t Version = (Cur >> 32) + 1;
    uint64_t Next = (Version << 32) | Value;
    if (Cell.compare_exchange_weak(Cur, Next, std::memory_order_release,
                                   std::memory_order_relaxed))
      return;
  }
}

void RtPairSnapshot::writeX(uint32_t Value) { bumpCell(X, Value); }
void RtPairSnapshot::writeY(uint32_t Value) { bumpCell(Y, Value); }

std::pair<uint32_t, uint32_t> RtPairSnapshot::readPair() {
  while (true) {
    uint64_t X1 = X.load(std::memory_order_acquire);
    uint64_t YV = Y.load(std::memory_order_acquire);
    uint64_t X2 = X.load(std::memory_order_acquire);
    // If x's version is unchanged, (x, y) was simultaneously present at
    // the moment y was read (the argument verified on the model).
    if ((X1 >> 32) == (X2 >> 32))
      return {static_cast<uint32_t>(X1), static_cast<uint32_t>(YV)};
  }
}
