//===- runtime/RtLockedStack.h - Coarse-grained locked stack ----*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coarse-grained baseline of Section 1: a stack protected by a single
/// lock. Benchmarked against the Treiber stack and the FC-stack.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTLOCKEDSTACK_H
#define FCSL_RUNTIME_RTLOCKEDSTACK_H

#include "runtime/RtSpinLock.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace fcsl {

/// A lock-protected LIFO stack of 64-bit values.
class RtLockedStack {
public:
  void push(int64_t Value);
  std::optional<int64_t> pop();
  bool isEmpty();

private:
  RtSpinLock Lock;
  std::vector<int64_t> Data;
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTLOCKEDSTACK_H
