//===- runtime/RtTreiberStack.h - Executable Treiber stack ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified Treiber stack. Nodes popped
/// under contention are retired to a per-stack free list only at
/// destruction (no reclamation while threads run), which sidesteps ABA
/// without hazard pointers; the verified model mirrors this by moving
/// popped cells to the popping thread's private heap.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTTREIBERSTACK_H
#define FCSL_RUNTIME_RTTREIBERSTACK_H

#include <atomic>
#include <cstdint>
#include <optional>

namespace fcsl {

/// A lock-free LIFO stack of 64-bit values.
class RtTreiberStack {
public:
  RtTreiberStack() = default;
  ~RtTreiberStack();
  RtTreiberStack(const RtTreiberStack &) = delete;
  RtTreiberStack &operator=(const RtTreiberStack &) = delete;

  void push(int64_t Value);
  std::optional<int64_t> pop();
  bool isEmpty() const;

private:
  struct Node {
    int64_t Value;
    Node *Next;
  };

  std::atomic<Node *> Head{nullptr};
  std::atomic<Node *> Retired{nullptr};

  void retire(Node *N);
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTTREIBERSTACK_H
