//===- runtime/RtTicketLock.h - Executable ticketed lock --------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified ticketed-lock model: FIFO
/// fairness via fetch-and-increment tickets.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTTICKETLOCK_H
#define FCSL_RUNTIME_RTTICKETLOCK_H

#include <atomic>
#include <cstdint>

namespace fcsl {

/// A ticket lock.
class RtTicketLock {
public:
  void lock();
  void unlock();

  /// Draws a ticket (exposed for fairness experiments).
  uint64_t takeTicket();
  /// Spins until \p Ticket is served.
  void waitFor(uint64_t Ticket);

private:
  std::atomic<uint64_t> Next{0};
  std::atomic<uint64_t> Owner{0};
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTTICKETLOCK_H
