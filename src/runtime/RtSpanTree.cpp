//===- runtime/RtSpanTree.cpp - Executable concurrent spanning -------------===//
//
// Part of fcsl-cpp. See RtSpanTree.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtSpanTree.h"

#include <cassert>
#include <deque>
#include <set>
#include <thread>

using namespace fcsl;

RtGraph::RtGraph(unsigned NumNodes) : Nodes(NumNodes) {}

void RtGraph::setEdges(unsigned Node, int Left, int Right) {
  assert(Node < Nodes.size());
  Nodes[Node].Left = Left;
  Nodes[Node].Right = Right;
}

bool RtGraph::isMarked(unsigned Node) const {
  return Nodes[Node].Marked.load(std::memory_order_acquire);
}

bool RtGraph::tryMark(unsigned Node) {
  bool Expected = false;
  return Nodes[Node].Marked.compare_exchange_strong(
      Expected, true, std::memory_order_acq_rel);
}

void RtGraph::clearMarks() {
  for (Node &N : Nodes)
    N.Marked.store(false, std::memory_order_relaxed);
}

bool fcsl::rtSpan(RtGraph &G, int Root, unsigned ParallelDepth) {
  if (Root < 0)
    return false;
  unsigned Node = static_cast<unsigned>(Root);
  if (!G.tryMark(Node))
    return false;

  int Left = G.left(Node);
  int Right = G.right(Node);
  bool GotLeft = false, GotRight = false;
  if (ParallelDepth > 0) {
    // Figure 1 line 6: two parallel child calls.
    std::thread LeftThread(
        [&] { GotLeft = rtSpan(G, Left, ParallelDepth - 1); });
    GotRight = rtSpan(G, Right, ParallelDepth - 1);
    LeftThread.join();
  } else {
    GotLeft = rtSpan(G, Left, 0);
    GotRight = rtSpan(G, Right, 0);
  }
  if (!GotLeft)
    G.nullifyLeft(Node); // Line 7.
  if (!GotRight)
    G.nullifyRight(Node); // Line 8.
  return true;
}

bool fcsl::rtIsSpanningTree(const RtGraph &G, unsigned Root) {
  // All marked nodes must be reachable via surviving edges, exactly once.
  std::set<unsigned> Visited;
  std::deque<unsigned> Queue;
  if (!G.isMarked(Root))
    return false;
  Queue.push_back(Root);
  Visited.insert(Root);
  while (!Queue.empty()) {
    unsigned Node = Queue.front();
    Queue.pop_front();
    for (int Succ : {G.left(Node), G.right(Node)}) {
      if (Succ < 0)
        continue;
      // Tree property: no node has two parents and no back edges.
      if (!Visited.insert(static_cast<unsigned>(Succ)).second)
        return false;
      Queue.push_back(static_cast<unsigned>(Succ));
    }
  }
  // Every marked node is in the tree; no unmarked node is.
  for (unsigned I = 0; I < G.size(); ++I)
    if (G.isMarked(I) != (Visited.count(I) != 0))
      return false;
  return true;
}
