//===- runtime/RtTreiberStack.cpp - Executable Treiber stack ---------------===//
//
// Part of fcsl-cpp. See RtTreiberStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtTreiberStack.h"

using namespace fcsl;

RtTreiberStack::~RtTreiberStack() {
  for (Node *Cur = Head.load(); Cur;) {
    Node *Next = Cur->Next;
    delete Cur;
    Cur = Next;
  }
  for (Node *Cur = Retired.load(); Cur;) {
    Node *Next = Cur->Next;
    delete Cur;
    Cur = Next;
  }
}

void RtTreiberStack::push(int64_t Value) {
  Node *N = new Node{Value, Head.load(std::memory_order_relaxed)};
  while (!Head.compare_exchange_weak(N->Next, N,
                                     std::memory_order_release,
                                     std::memory_order_relaxed))
    ;
}

std::optional<int64_t> RtTreiberStack::pop() {
  Node *Cur = Head.load(std::memory_order_acquire);
  while (Cur) {
    if (Head.compare_exchange_weak(Cur, Cur->Next,
                                   std::memory_order_acquire,
                                   std::memory_order_acquire)) {
      int64_t Value = Cur->Value;
      retire(Cur);
      return Value;
    }
  }
  return std::nullopt;
}

bool RtTreiberStack::isEmpty() const {
  return Head.load(std::memory_order_acquire) == nullptr;
}

void RtTreiberStack::retire(Node *N) {
  N->Next = Retired.load(std::memory_order_relaxed);
  while (!Retired.compare_exchange_weak(N->Next, N,
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
    ;
}
