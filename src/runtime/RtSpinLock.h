//===- runtime/RtSpinLock.h - Executable CAS spinlock -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified CAS lock model: a
/// test-and-test-and-set spinlock over std::atomic. Used by the perf
/// benches that regenerate the paper's motivating coarse- vs fine-grained
/// comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTSPINLOCK_H
#define FCSL_RUNTIME_RTSPINLOCK_H

#include <atomic>

namespace fcsl {

/// A TTAS spinlock.
class RtSpinLock {
public:
  void lock();
  bool tryLock();
  void unlock();

private:
  std::atomic<bool> Locked{false};
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTSPINLOCK_H
