//===- runtime/RtPairSnapshot.h - Executable pair snapshot ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of the verified pair snapshot: two versioned
/// cells, a wait-free-in-practice reader that validates x's version across
/// its reads. Value and version are packed into one 64-bit atomic so a
/// cell read is a single atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_RUNTIME_RTPAIRSNAPSHOT_H
#define FCSL_RUNTIME_RTPAIRSNAPSHOT_H

#include <atomic>
#include <cstdint>
#include <utility>

namespace fcsl {

/// A two-cell versioned snapshot structure over 32-bit values.
class RtPairSnapshot {
public:
  void writeX(uint32_t Value);
  void writeY(uint32_t Value);

  /// Returns a consistent (x, y) snapshot.
  std::pair<uint32_t, uint32_t> readPair();

private:
  // Layout: high 32 bits version, low 32 bits value.
  std::atomic<uint64_t> X{0};
  std::atomic<uint64_t> Y{0};

  static void bumpCell(std::atomic<uint64_t> &Cell, uint32_t Value);
};

} // namespace fcsl

#endif // FCSL_RUNTIME_RTPAIRSNAPSHOT_H
