//===- runtime/RtLockedStack.cpp - Coarse-grained locked stack -------------===//
//
// Part of fcsl-cpp. See RtLockedStack.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtLockedStack.h"

using namespace fcsl;

void RtLockedStack::push(int64_t Value) {
  Lock.lock();
  Data.push_back(Value);
  Lock.unlock();
}

std::optional<int64_t> RtLockedStack::pop() {
  Lock.lock();
  std::optional<int64_t> Out;
  if (!Data.empty()) {
    Out = Data.back();
    Data.pop_back();
  }
  Lock.unlock();
  return Out;
}

bool RtLockedStack::isEmpty() {
  Lock.lock();
  bool Empty = Data.empty();
  Lock.unlock();
  return Empty;
}
