//===- runtime/RtTicketLock.cpp - Executable ticketed lock -----------------===//
//
// Part of fcsl-cpp. See RtTicketLock.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtTicketLock.h"

#include <thread>

using namespace fcsl;

uint64_t RtTicketLock::takeTicket() {
  return Next.fetch_add(1, std::memory_order_relaxed);
}

void RtTicketLock::waitFor(uint64_t Ticket) {
  while (Owner.load(std::memory_order_acquire) != Ticket)
    std::this_thread::yield();
}

void RtTicketLock::lock() { waitFor(takeTicket()); }

void RtTicketLock::unlock() {
  Owner.fetch_add(1, std::memory_order_release);
}
