//===- runtime/RtFlatCombiner.cpp - Executable flat combiner ---------------===//
//
// Part of fcsl-cpp. See RtFlatCombiner.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtFlatCombiner.h"

#include <cassert>
#include <thread>

using namespace fcsl;

RtFcStack::RtFcStack(unsigned NumThreads) : Slots(NumThreads) {}

RtFcStack::~RtFcStack() = default;

void RtFcStack::push(unsigned ThreadIndex, int64_t Value) {
  runOp(ThreadIndex, OpPush, Value);
}

std::optional<int64_t> RtFcStack::pop(unsigned ThreadIndex) {
  int64_t R = runOp(ThreadIndex, OpPop, 0);
  if (R == INT64_MIN)
    return std::nullopt;
  return R;
}

int64_t RtFcStack::runOp(unsigned ThreadIndex, OpKind Kind, int64_t Arg) {
  assert(ThreadIndex < Slots.size() && "unregistered thread");
  Slot &Mine = Slots[ThreadIndex];
  Mine.Arg.store(Arg, std::memory_order_relaxed);
  Mine.Done.store(false, std::memory_order_relaxed);
  Mine.Kind.store(Kind, std::memory_order_release);

  while (true) {
    if (Mine.Done.load(std::memory_order_acquire))
      return Mine.Result.load(std::memory_order_relaxed);
    bool Expected = false;
    if (CombinerLock.compare_exchange_weak(Expected, true,
                                           std::memory_order_acquire)) {
      combineAll();
      CombinerLock.store(false, std::memory_order_release);
      if (Mine.Done.load(std::memory_order_acquire))
        return Mine.Result.load(std::memory_order_relaxed);
    } else {
      std::this_thread::yield();
    }
  }
}

void RtFcStack::combineAll() {
  for (Slot &S : Slots) {
    uint32_t Kind = S.Kind.load(std::memory_order_acquire);
    if (Kind == OpNone || S.Done.load(std::memory_order_relaxed))
      continue;
    int64_t Result = 0;
    if (Kind == OpPush) {
      Data.push_back(S.Arg.load(std::memory_order_relaxed));
    } else {
      if (Data.empty()) {
        Result = INT64_MIN; // Empty marker.
      } else {
        Result = Data.back();
        Data.pop_back();
      }
    }
    S.Result.store(Result, std::memory_order_relaxed);
    S.Kind.store(OpNone, std::memory_order_relaxed);
    S.Done.store(true, std::memory_order_release);
  }
}
