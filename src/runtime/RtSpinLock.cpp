//===- runtime/RtSpinLock.cpp - Executable CAS spinlock --------------------===//
//
// Part of fcsl-cpp. See RtSpinLock.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "runtime/RtSpinLock.h"

#include <thread>

using namespace fcsl;

void RtSpinLock::lock() {
  while (true) {
    // Test-and-test-and-set: spin on loads to avoid cacheline ping-pong;
    // yield so oversubscribed (or single-core) machines make progress.
    while (Locked.load(std::memory_order_relaxed))
      std::this_thread::yield();
    if (tryLock())
      return;
  }
}

bool RtSpinLock::tryLock() {
  bool Expected = false;
  return Locked.compare_exchange_strong(Expected, true,
                                        std::memory_order_acquire);
}

void RtSpinLock::unlock() {
  Locked.store(false, std::memory_order_release);
}
