//===- prog/Engine.h - Exhaustive interleaving engine -----------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational counterpart of the paper's denotational action-tree
/// semantics (Section 5.1, after Brookes): an explicit-state exploration of
/// every interleaving of a program's atomic actions with each other and
/// with environment interference drawn from the ambient concurroid's
/// transitions.
///
/// Administrative steps (bind, conditionals, calls, fork/join bookkeeping,
/// and the operationally-no-op hide) are performed eagerly — only atomic
/// actions and environment transitions are scheduling points, which is
/// sound because administrative steps commute with every other thread's
/// steps. Revisited configurations are pruned; since `STsep` specs are
/// partial correctness, cutting cycles (e.g. spin loops) loses no
/// terminating behaviours.
///
/// The same commutation argument generalizes to atomic actions through
/// footprint metadata (concurroid/Footprint.h): with partial-order
/// reduction enabled, a thread whose pending action is independent of
/// every step any other agent could ever take explores alone, and sleep
/// sets prune the second order of already-commuted pairs (DESIGN.md §9).
/// Reduction preserves the Safe verdict, the sorted Terminals, and
/// failure detection, and stays bit-identical across job counts; the
/// `Check` mode cross-validates this at runtime by running both
/// explorations and comparing.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PROG_ENGINE_H
#define FCSL_PROG_ENGINE_H

#include "prog/Prog.h"
#include "state/GlobalState.h"
#include "support/Codec.h"

namespace fcsl {

/// Partial-order reduction mode for an exploration.
enum class PorMode : uint8_t {
  Default, ///< use the process default (setDefaultPorMode / FCSL_POR).
  Off,     ///< full interleaving exploration.
  On,      ///< static ample-set + sleep-set reduction.
  Dynamic, ///< `On` plus dynamic ample sets from observed footprints
           ///< (env-future closure; DESIGN.md §12).
  Check,   ///< run Off and On, assert identical verdicts and terminals.
  CheckDynamic ///< run Off and Dynamic, assert identical results.
};

/// Symmetry-reduction mode for an exploration (DESIGN.md §11).
enum class SymMode : uint8_t {
  Default, ///< use the process default (setDefaultSymmetryMode /
           ///< FCSL_SYMMETRY).
  Off,     ///< explore configurations as constructed.
  On,      ///< canonicalize each configuration to its orbit representative.
  Check    ///< run Off and On, assert identical verdicts and terminals.
};

/// Exploration parameters.
struct EngineOptions {
  /// The ambient concurroid: source of coherence checking and of
  /// environment interference.
  ConcurroidRef Ambient;
  /// Interleave environment transitions (open-world). Under a top-level
  /// `hide`, turn off for closed-world runs.
  bool EnvInterference = true;
  /// Hard bound on distinct configurations (guards against blow-up).
  uint64_t MaxConfigs = 1u << 22;
  /// Program definitions for `call`.
  const DefTable *Defs = nullptr;
  /// Re-check coherence after every action step (catches buggy actions).
  bool CheckStepCoherence = true;
  /// Worker threads for the exploration. 0 = the process default
  /// (`FCSL_JOBS` / `setDefaultJobs`, see support/ThreadPool.h); 1 =
  /// serial. Results are bit-identical across job counts: terminals are
  /// merged and sorted deterministically, and for complete explorations
  /// every counter is order-independent.
  unsigned Jobs = 0;
  /// Partial-order reduction (see PorMode). `Default` resolves to the
  /// process default, which is Off unless overridden by `--por` /
  /// `FCSL_POR` / setDefaultPorMode.
  PorMode Por = PorMode::Default;
  /// Multi-process sharded exploration (src/dist/, DESIGN.md §10). 0 = the
  /// process default (`FCSL_SHARDS` / setDefaultShards); 1 = in-process
  /// only. With N > 1 and a sharded-exploration hook installed
  /// (installDistributedEngine), explore() forks N worker processes that
  /// partition the config space by `fingerprint % N` and exchange frontier
  /// configs; verdicts, terminals, and counters are bit-identical to the
  /// in-process engine for complete explorations.
  unsigned Shards = 0;
  /// Symmetry reduction (see SymMode). `Default` resolves to the process
  /// default, which is Off unless overridden by `--symmetry` /
  /// `FCSL_SYMMETRY` / setDefaultSymmetryMode. Composes with POR and
  /// sharding: canonicalization happens before dedup, sleep-set keying and
  /// shard routing, so all three reductions multiply.
  SymMode Symmetry = SymMode::Default;
};

/// The order-independent work counters of one (or several aggregated)
/// exploration runs, split out of RunResult so other layers can carry them
/// around without the full result: an ObligationResult records the
/// counters its discharge cost, and the obligation cache (cache/Store.h)
/// persists them so a warm run replays `--stats` faithfully.
struct EngineCounters {
  uint64_t Configs = 0;
  uint64_t ActionSteps = 0;
  uint64_t EnvSteps = 0;
  uint64_t Terminals = 0;
  uint64_t DedupHits = 0;

  EngineCounters &operator+=(const EngineCounters &O) {
    Configs += O.Configs;
    ActionSteps += O.ActionSteps;
    EnvSteps += O.EnvSteps;
    Terminals += O.Terminals;
    DedupHits += O.DedupHits;
    return *this;
  }
  friend bool operator==(const EngineCounters &A, const EngineCounters &B) {
    return A.Configs == B.Configs && A.ActionSteps == B.ActionSteps &&
           A.EnvSteps == B.EnvSteps && A.Terminals == B.Terminals &&
           A.DedupHits == B.DedupHits;
  }
  friend bool operator!=(const EngineCounters &A, const EngineCounters &B) {
    return !(A == B);
  }
};

/// A terminal execution: the program's result and final state.
struct Terminal {
  Val Result;
  View FinalView; ///< the root thread's final subjective view.

  friend bool operator<(const Terminal &A, const Terminal &B) {
    if (A.Result != B.Result)
      return A.Result < B.Result;
    return A.FinalView < B.FinalView;
  }
};

/// The outcome of an exploration.
struct RunResult {
  bool Safe = true;       ///< no action was applied outside its safe states.
  bool Exhausted = false; ///< MaxConfigs was hit: exploration incomplete.
  std::string FailureNote;
  /// The schedule leading to the failure: one human-readable line per
  /// scheduling decision ("thread 2: trymark -> true", "env: ...").
  /// Empty unless a safety violation occurred.
  std::vector<std::string> FailureTrace;
  std::vector<Terminal> Terminals; ///< deduplicated, sorted ascending.
  uint64_t ConfigsExplored = 0;
  uint64_t ActionSteps = 0;
  uint64_t EnvSteps = 0;
  uint64_t DedupHits = 0;
  /// Final (= peak, the set only grows) visited-set size for this run.
  /// Bytes are an approximation of container overhead; interned nodes are
  /// shared process-wide and counted by support/Intern.h, not here.
  uint64_t VisitedNodes = 0;
  uint64_t VisitedBytes = 0;
  /// Exhaustion diagnostics: the MaxConfigs bound that was in effect and,
  /// when it was hit, how many frontier configurations were still pending
  /// at abort (scheduling-dependent; a magnitude, not an exact count).
  uint64_t MaxConfigsBound = 0;
  uint64_t FrontierAtAbort = 0;
  /// Partial-order reduction provenance: whether this run explored the
  /// reduced state space, and — in Check mode — both runs' config counts
  /// and whether they disagreed (a mismatch also forces Safe = false).
  bool PorReduced = false;
  bool PorDynamic = false; ///< the reduced run used dynamic ample sets.
  bool PorChecked = false;
  bool PorMismatch = false;
  uint64_t ConfigsFull = 0;    ///< Check mode: the full run's configs.
  uint64_t ConfigsReduced = 0; ///< Check/On/Dynamic: the reduced run's.
  /// Symmetry-reduction provenance, mirroring the POR fields: whether this
  /// run canonicalized configs to orbit representatives, and — in Check
  /// mode — both runs' config counts and whether they disagreed (a
  /// mismatch also forces Safe = false).
  bool SymReduced = false;
  bool SymChecked = false;
  bool SymMismatch = false;
  uint64_t SymConfigsFull = 0;      ///< Check mode: the full run's configs.
  uint64_t SymConfigsCanonical = 0; ///< Check/On: the canonical run's.

  bool complete() const { return Safe && !Exhausted; }
  /// Renders the failure trace, one step per line.
  std::string renderTrace() const;
  /// This run's work counters in the detached form the cache persists.
  EngineCounters counters() const {
    EngineCounters C;
    C.Configs = ConfigsExplored;
    C.ActionSteps = ActionSteps;
    C.EnvSteps = EnvSteps;
    C.Terminals = Terminals.size();
    C.DedupHits = DedupHits;
    return C;
  }
};

/// Explores every interleaving of \p Root from \p Initial. The root
/// program runs as thread 1; its variable environment starts from
/// \p InitialEnv (handy for parameterizing a spec's logical variables).
/// With `Opts.Jobs > 1` the frontier is explored by a work-stealing
/// worker team over a lock-striped visited set; the returned result is
/// identical to the serial one (terminals sorted, exact counters), except
/// that when a safety violation exists the reported counterexample is
/// whichever violating schedule a worker reached first.
RunResult explore(const ProgRef &Root, const GlobalState &Initial,
                  const EngineOptions &Opts, const VarEnv &InitialEnv = {});

/// Outcome of a single simulated schedule.
struct SimResult {
  bool Safe = true;
  bool Terminated = false; ///< false: step budget exhausted (livelock?).
  std::string FailureNote;
  Val Result;
  View FinalView;
  uint64_t Steps = 0;
};

/// Executes ONE schedule of \p Root, choosing the next thread (or
/// environment) step pseudo-randomly from \p Seed. This is the
/// reproduction's stand-in for the paper's future-work "program
/// extraction": the same verified model program runs at scales the
/// exhaustive explorer cannot reach, as a randomized test. The engine
/// invariants (action safety, per-step coherence) are still enforced on
/// the sampled path. \p MaxSteps bounds the walk.
SimResult simulate(const ProgRef &Root, const GlobalState &Initial,
                   const EngineOptions &Opts, uint64_t Seed,
                   uint64_t MaxSteps = 1u << 20,
                   const VarEnv &InitialEnv = {});

/// Process-wide high-water marks over every exploration run so far
/// (reported by `fcsl-verify --stats` and the benchmarks).
uint64_t peakVisitedNodes();
uint64_t peakVisitedBytes();

/// Cumulative configurations explored across every run so far. Benchmarks
/// read deltas around a workload to attribute state-space volume to it.
uint64_t totalConfigsExplored();

/// Sets the process-default PorMode used when `EngineOptions::Por` is
/// `Default` (exposed as `fcsl-verify --por=off|on|dynamic|check|...`).
void setDefaultPorMode(PorMode M);

/// The process-default PorMode: the last setDefaultPorMode value, else the
/// `FCSL_POR` environment variable ("off"/"on"/"dynamic"/"check"/
/// "check-dynamic"), else Off.
PorMode defaultPorMode();

/// Cumulative full/reduced config counts over every Check-mode run so far
/// (the cross-check harness prints the aggregate reduction ratio).
struct PorCheckTotals {
  uint64_t Full = 0;
  uint64_t Reduced = 0;
};
PorCheckTotals porCheckTotals();

/// Process-wide partial-order-reduction counters over every POR-reduced
/// run so far (reported by `fcsl-verify --stats`): dynamic races that
/// blocked an ample singleton, backtracking points (forced full
/// expansions after a failed dynamic-ample attempt), wakeup replays
/// (re-expansions after a revisit shrank a sleep set or grew a close
/// mask) with the peak number of candidates replayed at once, sleep-set
/// hits (candidates pruned because a commuted order was already taken),
/// and full-expansion fallbacks (no ample singleton at all).
struct PorStats {
  uint64_t RacesDetected = 0;
  uint64_t BacktrackPoints = 0;
  uint64_t WakeupReplays = 0;
  uint64_t WakeupPeak = 0;
  uint64_t SleepHits = 0;
  uint64_t FullExpansions = 0;
};
PorStats porStats();

/// Sets the process-default SymMode used when `EngineOptions::Symmetry` is
/// `Default` (exposed as `fcsl-verify --symmetry=off|on|check`).
void setDefaultSymmetryMode(SymMode M);

/// The process-default SymMode: the last setDefaultSymmetryMode value, else
/// the `FCSL_SYMMETRY` environment variable ("off"/"on"/"check"), else Off.
SymMode defaultSymmetryMode();

/// Cumulative full/canonical config counts over every symmetry Check-mode
/// run so far (mirrors porCheckTotals for the `--symmetry=check` harness).
struct SymCheckTotals {
  uint64_t Full = 0;
  uint64_t Canonical = 0;
};
SymCheckTotals symCheckTotals();

/// Process-wide orbit-cache counters over every symmetry-reduced run so
/// far (reported by `fcsl-verify --stats`): cache probes, probe hits, and
/// how many canonicalizations actually changed the configuration (a proxy
/// for orbit sizes > 1).
struct SymmetryStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Changed = 0;
};
SymmetryStats symmetryStats();

//===----------------------------------------------------------------------===//
// Multi-process sharded exploration (implemented by src/dist/)
//===----------------------------------------------------------------------===//

/// A shard's status snapshot, handed to its transport on every pump. The
/// counters feed the coordinator's Mattern-style termination detection:
/// the fleet is done when every shard is idle and every config counted as
/// sent has been counted as received at its destination.
struct ShardStatus {
  bool Idle = false;      ///< no local work pending or in flight.
  bool Failed = false;    ///< a safety violation was found locally.
  bool Exhausted = false; ///< the local MaxConfigs ticket bound was hit.
  uint64_t Expanded = 0;     ///< configs expanded locally so far.
  uint64_t SentConfigs = 0;  ///< non-owned successors routed out.
  uint64_t RecvConfigs = 0;  ///< configs received and injected locally.
  /// Re-sends the engine's sender-side fingerprint filter proved redundant
  /// and swallowed (each one counted as a DedupHit instead, exactly as the
  /// in-process engine would have).
  uint64_t SuppressedSends = 0;
};

/// What the transport tells the shard to do after a pump.
enum class ShardCommand : uint8_t {
  Continue,       ///< keep exploring.
  Drain,          ///< stop now and report (fleet terminated or failed).
  DrainExhausted  ///< stop and report as an exhausted (incomplete) run.
};

/// One config delivered by the transport. The transport owns wire
/// decoding (it knows which peer dictionary the bytes reference); the
/// engine only sees decoded configs. A transport that detects a framing
/// or dictionary error it cannot attribute mid-stream delivers one entry
/// with Malformed set so the engine fails the run loudly instead of
/// dropping work.
struct ShardDelivery {
  FrontierConfig Config;
  /// The sender's dedup fingerprint for this config (the full identity
  /// hash it computed before shipping). Every process runs the same
  /// forked binary, so the receiver adopts it instead of re-walking the
  /// whole structure to recompute it; 0 means "absent — recompute".
  uint64_t Fp = 0;
  bool Malformed = false;
};

/// The transport a sharded exploration talks to. `send` routes one
/// frontier config toward the shard that owns it: \p FC is the decoded
/// form and \p Fp its ownership fingerprint. The transport owns wire
/// encoding end to end — dictionary-streamed by default, plain
/// encodeFrontierConfigPrefix bytes when compression is off (the two
/// produce identical decoded configs, so the engine never needs to
/// know which is active). `pump` flushes outboxes, reports \p Status,
/// and delivers any configs routed here. Both are called under one
/// lock, so implementations need not be thread-safe.
class ShardIo {
public:
  virtual ~ShardIo() = default;
  virtual void send(unsigned Dest, FrontierConfig FC, uint64_t Fp) = 0;
  virtual ShardCommand pump(const ShardStatus &Status,
                            std::vector<ShardDelivery> &Incoming) = 0;
};

/// Runs shard \p ShardId of an \p NShards-way partitioned exploration:
/// identical to explore() except that only configs whose ownership
/// fingerprint maps to this shard are inserted locally — every other
/// successor is encoded and handed to \p Io. `Opts.Por` must already be
/// resolved (not Default or Check) so all shards agree on the reduction.
RunResult exploreShard(const ProgRef &Root, const GlobalState &Initial,
                       const EngineOptions &Opts, const VarEnv &InitialEnv,
                       unsigned ShardId, unsigned NShards, ShardIo &Io);

/// The coordinator entry point explore() dispatches to when sharding is
/// requested. Registered by dist::installDistributedEngine(); the
/// indirection keeps the core engine free of process-management code.
using ShardedExploreFn = RunResult (*)(const ProgRef &Root,
                                       const GlobalState &Initial,
                                       const EngineOptions &Opts,
                                       const VarEnv &InitialEnv,
                                       unsigned NShards);
void setShardedExploreHook(ShardedExploreFn Fn);

/// Sets the process-default shard count used when `EngineOptions::Shards`
/// is 0 (exposed as `fcsl-verify --shards=N`). 0 clears the override.
void setDefaultShards(unsigned N);

/// The process-default shard count: the last setDefaultShards value, else
/// the `FCSL_SHARDS` environment variable, else 1.
unsigned defaultShards();

} // namespace fcsl

#endif // FCSL_PROG_ENGINE_H
