//===- prog/Engine.cpp - Exhaustive interleaving engine --------------------===//
//
// Part of fcsl-cpp. See Engine.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "prog/Engine.h"

#include "support/Format.h"
#include "support/Rng.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace fcsl;

namespace {

/// One continuation frame of a thread's control stack.
struct Frame {
  enum class Kind : uint8_t {
    Run,      ///< execute Node under Env.
    BindCont, ///< awaiting a value; binds Var and runs Rest under Env.
    HideExit  ///< awaiting the hide body's value; uninstalls Node's spec.
  };

  Kind K;
  const Prog *Node = nullptr; // Run: command; HideExit: the Hide node.
  const Prog *Rest = nullptr; // BindCont continuation.
  std::string Var;            // BindCont variable ("_" to drop).
  VarEnv Env;

  friend bool operator==(const Frame &A, const Frame &B) {
    return A.K == B.K && A.Node == B.Node && A.Rest == B.Rest &&
           A.Var == B.Var && A.Env == B.Env;
  }

  void hashInto(size_t &Seed) const {
    hashValue(Seed, static_cast<uint8_t>(K));
    hashValue(Seed, reinterpret_cast<uintptr_t>(Node));
    hashValue(Seed, reinterpret_cast<uintptr_t>(Rest));
    hashValue(Seed, Var);
    hashValue(Seed, Env.size());
    for (const auto &Binding : Env) {
      hashValue(Seed, Binding.first);
      Binding.second.hashInto(Seed);
    }
  }
};

Frame runFrame(const Prog *Node, VarEnv Env) {
  Frame F;
  F.K = Frame::Kind::Run;
  F.Node = Node;
  F.Env = std::move(Env);
  return F;
}

/// One thread of the configuration.
struct ThreadCtx {
  std::vector<Frame> Stack;
  bool Waiting = false; ///< suspended on a `par` until children finish.
  std::optional<Val> Done;

  friend bool operator==(const ThreadCtx &A, const ThreadCtx &B) {
    return A.Waiting == B.Waiting && A.Done == B.Done && A.Stack == B.Stack;
  }

  void hashInto(size_t &Seed) const {
    hashValue(Seed, Waiting);
    hashValue(Seed, Done.has_value());
    if (Done)
      Done->hashInto(Seed);
    hashValue(Seed, Stack.size());
    for (const Frame &F : Stack)
      F.hashInto(Seed);
  }
};

/// A whole configuration: instrumented state plus all thread stacks.
struct Config {
  GlobalState GS;
  std::map<ThreadId, ThreadCtx> Threads;

  friend bool operator==(const Config &A, const Config &B) {
    return A.GS == B.GS && A.Threads == B.Threads;
  }

  size_t hash() const {
    size_t Seed = 0;
    GS.hashInto(Seed);
    hashValue(Seed, Threads.size());
    for (const auto &Entry : Threads) {
      hashValue(Seed, Entry.first);
      Entry.second.hashInto(Seed);
    }
    return Seed;
  }
};

struct ConfigHash {
  size_t operator()(const Config &C) const { return C.hash(); }
};

struct ConfigEq {
  bool operator()(const Config &A, const Config &B) const { return A == B; }
};

/// The exploration driver.
class Explorer {
public:
  Explorer(const EngineOptions &Opts, RunResult &Res)
      : Opts(Opts), Res(Res) {}

  void run(const ProgRef &Root, const GlobalState &Initial,
           const VarEnv &InitialEnv) {
    RootNode = Root.get();
    Config C0;
    C0.GS = Initial;
    ThreadCtx Main;
    Main.Stack.push_back(runFrame(RootNode, InitialEnv));
    C0.Threads.emplace(rootThread(), std::move(Main));

    if (!normalize(C0))
      return;
    enqueue(std::move(C0), nullptr, "");

    while (!Queue.empty() && Res.Safe) {
      if (Res.ConfigsExplored >= Opts.MaxConfigs) {
        Res.Exhausted = true;
        return;
      }
      const Config *C = Queue.front();
      Queue.pop_front();
      ++Res.ConfigsExplored;
      if (!expand(*C))
        return;
    }
  }

  /// Executes one pseudo-random schedule (see fcsl::simulate).
  SimResult simulateRun(const ProgRef &Root, const GlobalState &Initial,
                        const VarEnv &InitialEnv, uint64_t Seed,
                        uint64_t MaxSteps) {
    SimResult Sim;
    RootNode = Root.get();
    Config C;
    C.GS = Initial;
    ThreadCtx Main;
    Main.Stack.push_back(runFrame(RootNode, InitialEnv));
    C.Threads.emplace(rootThread(), std::move(Main));
    Rng Random(Seed);

    auto FailOut = [&] {
      Sim.Safe = false;
      Sim.FailureNote = Res.FailureNote;
      return Sim;
    };

    if (!normalize(C))
      return FailOut();

    for (Sim.Steps = 0; Sim.Steps < MaxSteps; ++Sim.Steps) {
      const ThreadCtx &MainCtx = C.Threads.at(rootThread());
      if (MainCtx.Done) {
        Sim.Terminated = true;
        Sim.Result = *MainCtx.Done;
        Sim.FinalView = C.GS.viewFor(rootThread());
        return Sim;
      }

      // One candidate per runnable thread, plus one for the environment.
      std::vector<ThreadId> Runnable;
      for (const auto &Entry : C.Threads)
        if (!Entry.second.Done && !Entry.second.Waiting)
          Runnable.push_back(Entry.first);
      bool WithEnv = Opts.EnvInterference && Opts.Ambient;
      size_t Choices = Runnable.size() + (WithEnv ? 1 : 0);
      if (Choices == 0)
        break; // Deadlock: report as non-termination.
      size_t Pick = static_cast<size_t>(Random.nextBelow(Choices));

      if (Pick < Runnable.size()) {
        ThreadId T = Runnable[Pick];
        const Frame &Top = C.Threads.at(T).Stack.back();
        const AtomicAction &A = *Top.Node->action();
        std::vector<Val> Args;
        for (const ExprRef &E : Top.Node->args())
          Args.push_back(E->eval(Top.Env));
        View Pre = C.GS.viewFor(T);
        std::optional<std::vector<ActOutcome>> Outcomes =
            A.step(Pre, Args);
        if (!Outcomes) {
          fail(formatString("action %s is unsafe in the sampled schedule",
                            A.name().c_str()));
          return FailOut();
        }
        const ActOutcome &O =
            (*Outcomes)[Random.nextBelow(Outcomes->size())];
        C.GS.applyThread(T, Pre, O.Post);
        if (Opts.CheckStepCoherence && Opts.Ambient &&
            !Opts.Ambient->coherent(C.GS.viewFor(T))) {
          fail(formatString("action %s broke coherence",
                            A.name().c_str()));
          return FailOut();
        }
        C.Threads.at(T).Stack.pop_back();
        if (!deliver(C, T, O.Result) || !normalize(C))
          return FailOut();
      } else {
        // One random environment step (if any is enabled).
        View EnvView = C.GS.viewForEnv();
        std::vector<View> Posts;
        for (const Transition &T : Opts.Ambient->transitions()) {
          if (!T.isEnvEnabled() || T.name() == "idle")
            continue;
          for (const View &Post : T.successors(EnvView))
            if (Opts.Ambient->coherent(Post))
              Posts.push_back(Post);
        }
        if (!Posts.empty())
          C.GS.applyEnv(EnvView,
                        Posts[Random.nextBelow(Posts.size())]);
      }
    }
    return Sim; // Budget exhausted without termination.
  }

private:
  /// Delivers \p Value to thread \p T's continuation, unwinding HideExit
  /// frames. Returns false on an engine-level failure.
  bool deliver(Config &C, ThreadId T, Val Value) {
    ThreadCtx &Ctx = C.Threads.at(T);
    while (true) {
      if (Ctx.Stack.empty()) {
        Ctx.Done = std::move(Value);
        return true;
      }
      Frame F = std::move(Ctx.Stack.back());
      Ctx.Stack.pop_back();
      switch (F.K) {
      case Frame::Kind::BindCont: {
        VarEnv Env = std::move(F.Env);
        if (F.Var != "_")
          Env[F.Var] = std::move(Value);
        Ctx.Stack.push_back(runFrame(F.Rest, std::move(Env)));
        return true;
      }
      case Frame::Kind::HideExit: {
        // Scoped deinstallation: the hidden joint heap flows back into the
        // caller's private heap; hidden auxiliary state is discarded
        // (it was logical-only).
        const HideSpec &Spec = F.Node->hideSpec();
        Heap Hidden = C.GS.removeLabel(Spec.Hidden);
        Heap Mine = C.GS.selfOf(Spec.Pv, T).getHeap();
        std::optional<Heap> Joined = Heap::join(Mine, Hidden);
        assert(Joined && "hidden heap clashes with the private heap");
        C.GS.setSelf(Spec.Pv, T, PCMVal::ofHeap(std::move(*Joined)));
        continue; // Keep delivering the same value outward.
      }
      case Frame::Kind::Run:
        assert(false && "delivering a value onto a Run frame");
        return false;
      }
    }
  }

  /// Fails the exploration with a note.
  bool fail(std::string Note) {
    Res.Safe = false;
    Res.FailureNote = std::move(Note);
    return false;
  }

  /// Applies administrative steps until every thread is Done, Waiting, or
  /// stopped at an atomic action. Returns false on failure.
  bool normalize(Config &C) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      // Collect ids first: admin steps add/remove threads.
      std::vector<ThreadId> Ids;
      Ids.reserve(C.Threads.size());
      for (const auto &Entry : C.Threads)
        Ids.push_back(Entry.first);

      for (ThreadId T : Ids) {
        auto It = C.Threads.find(T);
        if (It == C.Threads.end())
          continue; // Joined away meanwhile.
        ThreadCtx &Ctx = It->second;

        if (Ctx.Done)
          continue;

        if (Ctx.Waiting) {
          auto LeftIt = C.Threads.find(leftChild(T));
          auto RightIt = C.Threads.find(rightChild(T));
          assert(LeftIt != C.Threads.end() && RightIt != C.Threads.end() &&
                 "waiting thread lost its children");
          if (!LeftIt->second.Done || !RightIt->second.Done)
            continue;
          Val Result =
              Val::pair(*LeftIt->second.Done, *RightIt->second.Done);
          C.GS.joinChildren(T, leftChild(T), rightChild(T));
          C.Threads.erase(leftChild(T));
          C.Threads.erase(rightChild(T));
          C.Threads.at(T).Waiting = false;
          if (!deliver(C, T, std::move(Result)))
            return false;
          Progress = true;
          continue;
        }

        assert(!Ctx.Stack.empty() && "running thread with empty stack");
        Frame &Top = Ctx.Stack.back();
        if (Top.K != Frame::Kind::Run)
          continue; // BindCont/HideExit only surface via deliver.
        const Prog *Node = Top.Node;

        switch (Node->kind()) {
        case Prog::Kind::Ret: {
          Val V = Node->retExpr()->eval(Top.Env);
          Ctx.Stack.pop_back();
          if (!deliver(C, T, std::move(V)))
            return false;
          Progress = true;
          break;
        }
        case Prog::Kind::Act:
          break; // Scheduling point; handled by expand().
        case Prog::Kind::Bind: {
          Frame Cont;
          Cont.K = Frame::Kind::BindCont;
          Cont.Var = Node->bindVar();
          Cont.Rest = Node->rest().get();
          Cont.Env = Top.Env;
          const Prog *First = Node->first().get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(std::move(Cont));
          Ctx.Stack.push_back(runFrame(First, std::move(Env)));
          Progress = true;
          break;
        }
        case Prog::Kind::If: {
          bool Taken = Node->cond()->eval(Top.Env).getBool();
          const Prog *Branch =
              (Taken ? Node->thenProg() : Node->elseProg()).get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(runFrame(Branch, std::move(Env)));
          Progress = true;
          break;
        }
        case Prog::Kind::Call: {
          assert(Opts.Defs && "call without a definition table");
          const FuncDef &Def = Opts.Defs->lookup(Node->callee());
          assert(Def.Params.size() == Node->args().size() &&
                 "call arity mismatch");
          VarEnv CalleeEnv;
          for (size_t I = 0, N = Def.Params.size(); I != N; ++I)
            CalleeEnv[Def.Params[I]] = Node->args()[I]->eval(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(runFrame(Def.Body.get(),
                                       std::move(CalleeEnv)));
          Progress = true;
          break;
        }
        case Prog::Kind::Par: {
          const Prog *Left = Node->left().get();
          const Prog *Right = Node->right().get();
          std::map<Label, std::pair<PCMVal, PCMVal>> Splits;
          if (const SplitFn &Split = Node->split())
            Splits = Split(C.GS.viewFor(T));
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Waiting = true;
          C.GS.fork(T, leftChild(T), rightChild(T), Splits);
          ThreadCtx L, R;
          L.Stack.push_back(runFrame(Left, Env));
          R.Stack.push_back(runFrame(Right, std::move(Env)));
          C.Threads.emplace(leftChild(T), std::move(L));
          C.Threads.emplace(rightChild(T), std::move(R));
          Progress = true;
          break;
        }
        case Prog::Kind::Hide: {
          const HideSpec &Spec = Node->hideSpec();
          View Pre = C.GS.viewFor(T);
          const Heap &Mine = Pre.self(Spec.Pv).getHeap();
          std::optional<Heap> Donation = Spec.ChooseDonation(Mine);
          if (!Donation)
            return fail(formatString(
                "hide: the private heap does not satisfy the decoration "
                "predicate (thread %llu)",
                static_cast<unsigned long long>(T)));
          std::optional<PCMVal> Rest = pcmSubtract(
              PCMVal::ofHeap(Mine), PCMVal::ofHeap(*Donation));
          if (!Rest)
            return fail("hide: decoration selected cells outside the "
                        "private heap");
          C.GS.setSelf(Spec.Pv, T, std::move(*Rest));
          C.GS.addLabel(Spec.Hidden, Spec.SelfType, std::move(*Donation),
                        Spec.SelfType->unit(), /*EnvClosed=*/true);
          C.GS.setSelf(Spec.Hidden, T, Spec.InitSelf);
          if (Spec.Installed &&
              !Spec.Installed->coherent(C.GS.viewFor(T)))
            return fail("hide: the decorated donation does not establish "
                        "the installed concurroid's coherence");
          const Prog *Body = Node->body().get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Frame Exit;
          Exit.K = Frame::Kind::HideExit;
          Exit.Node = Node;
          Ctx.Stack.push_back(std::move(Exit));
          Ctx.Stack.push_back(runFrame(Body, std::move(Env)));
          Progress = true;
          break;
        }
        }
      }
    }
    return true;
  }

  /// Records a terminal configuration.
  void recordTerminal(const Config &C) {
    const ThreadCtx &Main = C.Threads.at(rootThread());
    Terminal Term{*Main.Done, C.GS.viewFor(rootThread())};
    if (SeenTerminals.insert(Term).second)
      Res.Terminals.push_back(std::move(Term));
  }

  void enqueue(Config C, const Config *Parent, std::string Step) {
    auto [It, Inserted] = Visited.insert(std::move(C));
    if (!Inserted) {
      ++Res.DedupHits;
      return;
    }
    const Config *Canonical = &*It;
    Provenance.emplace(Canonical,
                       std::make_pair(Parent, std::move(Step)));
    Queue.push_back(Canonical);
  }

  /// Reconstructs the schedule reaching \p C (plus the failing step) into
  /// the result's FailureTrace.
  void buildTrace(const Config *C, std::string FailingStep) {
    std::vector<std::string> Steps;
    if (!FailingStep.empty())
      Steps.push_back(std::move(FailingStep));
    for (const Config *Cur = C; Cur;) {
      auto It = Provenance.find(Cur);
      if (It == Provenance.end())
        break;
      if (!It->second.second.empty())
        Steps.push_back(It->second.second);
      Cur = It->second.first;
    }
    Res.FailureTrace.assign(Steps.rbegin(), Steps.rend());
  }

  /// Generates all successors of a normalized configuration.
  bool expand(const Config &C) {
    const ThreadCtx &Main = C.Threads.at(rootThread());
    if (Main.Done) {
      recordTerminal(C);
      return true;
    }

    // Thread action steps.
    for (const auto &Entry : C.Threads) {
      ThreadId T = Entry.first;
      const ThreadCtx &Ctx = Entry.second;
      if (Ctx.Done || Ctx.Waiting)
        continue;
      assert(!Ctx.Stack.empty());
      const Frame &Top = Ctx.Stack.back();
      assert(Top.K == Frame::Kind::Run &&
             Top.Node->kind() == Prog::Kind::Act &&
             "normalized thread must sit at an atomic action");
      const AtomicAction &A = *Top.Node->action();
      std::vector<Val> Args;
      Args.reserve(Top.Node->args().size());
      for (const ExprRef &E : Top.Node->args())
        Args.push_back(E->eval(Top.Env));
      std::string ArgText;
      for (size_t I = 0, N = Args.size(); I != N; ++I)
        ArgText += (I ? ", " : "") + Args[I].toString();

      View Pre = C.GS.viewFor(T);
      std::optional<std::vector<ActOutcome>> Outcomes = A.step(Pre, Args);
      if (!Outcomes) {
        buildTrace(&C, formatString("thread %llu: %s(%s)  <-- UNSAFE",
                                    static_cast<unsigned long long>(T),
                                    A.name().c_str(), ArgText.c_str()));
        return fail(formatString(
            "action %s is unsafe in the reached state (thread %llu):\n%s",
            A.name().c_str(), static_cast<unsigned long long>(T),
            Pre.toString().c_str()));
      }

      for (const ActOutcome &O : *Outcomes) {
        ++Res.ActionSteps;
        std::string Step = formatString(
            "thread %llu: %s(%s) -> %s",
            static_cast<unsigned long long>(T), A.name().c_str(),
            ArgText.c_str(), O.Result.toString().c_str());
        Config Next = C;
        Next.GS.applyThread(T, Pre, O.Post);
        if (Opts.CheckStepCoherence && Opts.Ambient &&
            !Opts.Ambient->coherent(Next.GS.viewFor(T))) {
          buildTrace(&C, Step + "  <-- BREAKS COHERENCE");
          return fail(formatString(
              "action %s broke coherence of %s", A.name().c_str(),
              Opts.Ambient->name().c_str()));
        }
        Next.Threads.at(T).Stack.pop_back();
        if (!deliver(Next, T, O.Result))
          return false;
        if (!normalize(Next)) {
          buildTrace(&C, Step + "  <-- FAILS DURING UNWINDING");
          return false;
        }
        enqueue(std::move(Next), &C, std::move(Step));
      }
    }

    // Environment interference steps.
    if (Opts.EnvInterference && Opts.Ambient) {
      View EnvView = C.GS.viewForEnv();
      for (const Transition &T : Opts.Ambient->transitions()) {
        if (!T.isEnvEnabled() || T.name() == "idle")
          continue;
        for (const View &Post : T.successors(EnvView)) {
          if (!Opts.Ambient->coherent(Post))
            continue;
          ++Res.EnvSteps;
          Config Next = C;
          Next.GS.applyEnv(EnvView, Post);
          enqueue(std::move(Next), &C, "env: " + T.name());
        }
      }
    }
    return true;
  }

  const EngineOptions &Opts;
  RunResult &Res;
  const Prog *RootNode = nullptr;
  std::deque<const Config *> Queue;
  std::unordered_set<Config, ConfigHash, ConfigEq> Visited;
  std::unordered_map<const Config *,
                     std::pair<const Config *, std::string>>
      Provenance;
  std::set<Terminal> SeenTerminals;
};

} // namespace

std::string RunResult::renderTrace() const {
  std::string Out;
  for (size_t I = 0, N = FailureTrace.size(); I != N; ++I)
    Out += formatString("  %2zu. %s\n", I + 1, FailureTrace[I].c_str());
  return Out;
}

RunResult fcsl::explore(const ProgRef &Root, const GlobalState &Initial,
                        const EngineOptions &Opts, const VarEnv &InitialEnv) {
  assert(Root && "explore needs a program");
  RunResult Res;
  Explorer E(Opts, Res);
  E.run(Root, Initial, InitialEnv);
  return Res;
}

SimResult fcsl::simulate(const ProgRef &Root, const GlobalState &Initial,
                         const EngineOptions &Opts, uint64_t Seed,
                         uint64_t MaxSteps, const VarEnv &InitialEnv) {
  assert(Root && "simulate needs a program");
  RunResult Res;
  Explorer E(Opts, Res);
  return E.simulateRun(Root, Initial, InitialEnv, Seed, MaxSteps);
}
