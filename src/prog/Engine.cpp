//===- prog/Engine.cpp - Exhaustive interleaving engine --------------------===//
//
// Part of fcsl-cpp. See Engine.h for the interface.
//
// Exploration is a breadth-ish parallel frontier search: each worker owns
// a deque of pending configurations (FIFO for the owner, stolen LIFO from
// the back by idle peers) and the visited set is lock-striped across
// shards keyed by the configuration's cached hash. Determinism across job
// counts follows from three facts: the visited set is keyed by the full
// configuration (so the reachable set is schedule-independent), terminals
// are merged into a sorted set at the end, and for complete explorations
// every counter is a function of the reachable set alone.
//
//===----------------------------------------------------------------------===//

#include "prog/Engine.h"

#include "concurroid/Footprint.h"
#include "support/Codec.h"
#include "support/Format.h"
#include "support/Intern.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace fcsl;

namespace {

std::atomic<uint64_t> PeakVisitedNodesCounter{0};
std::atomic<uint64_t> PeakVisitedBytesCounter{0};

void atomicMax(std::atomic<uint64_t> &Counter, uint64_t V) {
  uint64_t Cur = Counter.load(std::memory_order_relaxed);
  while (Cur < V &&
         !Counter.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

/// Records one run's final visited-set size into the process-wide peaks.
void notePeakVisited(uint64_t Nodes, uint64_t Bytes) {
  atomicMax(PeakVisitedNodesCounter, Nodes);
  atomicMax(PeakVisitedBytesCounter, Bytes);
}

std::atomic<uint64_t> TotalConfigsCounter{0};
std::atomic<uint64_t> CheckFullCounter{0};
std::atomic<uint64_t> CheckReducedCounter{0};
std::atomic<int> DefaultPorSetting{-1}; ///< -1: fall back to FCSL_POR.

PorMode envPorMode() {
  const char *E = std::getenv("FCSL_POR");
  if (!E)
    return PorMode::Off;
  if (std::strcmp(E, "on") == 0 || std::strcmp(E, "1") == 0)
    return PorMode::On;
  if (std::strcmp(E, "dynamic") == 0)
    return PorMode::Dynamic;
  if (std::strcmp(E, "check") == 0)
    return PorMode::Check;
  if (std::strcmp(E, "check-dynamic") == 0)
    return PorMode::CheckDynamic;
  return PorMode::Off;
}

// Partial-order-reduction telemetry, process-wide across every reduced
// run (see PorStats in Engine.h for the meaning of each counter).
std::atomic<uint64_t> PorRacesCounter{0};
std::atomic<uint64_t> PorBacktracksCounter{0};
std::atomic<uint64_t> PorWakeupReplaysCounter{0};
std::atomic<uint64_t> PorWakeupPeakCounter{0};
std::atomic<uint64_t> PorSleepHitsCounter{0};
std::atomic<uint64_t> PorFullExpansionsCounter{0};

std::atomic<uint64_t> SymCheckFullCounter{0};
std::atomic<uint64_t> SymCheckCanonicalCounter{0};
std::atomic<int> DefaultSymSetting{-1}; ///< -1: fall back to FCSL_SYMMETRY.

SymMode envSymMode() {
  const char *E = std::getenv("FCSL_SYMMETRY");
  if (!E)
    return SymMode::Off;
  if (std::strcmp(E, "on") == 0 || std::strcmp(E, "1") == 0)
    return SymMode::On;
  if (std::strcmp(E, "check") == 0)
    return SymMode::Check;
  return SymMode::Off;
}

// Orbit-cache telemetry, process-wide across every symmetry-reduced run.
std::atomic<uint64_t> OrbitLookupsCounter{0};
std::atomic<uint64_t> OrbitHitsCounter{0};
std::atomic<uint64_t> OrbitChangedCounter{0};

std::atomic<int> DefaultShardsSetting{0}; ///< 0: fall back to FCSL_SHARDS.
std::atomic<ShardedExploreFn> ShardedHook{nullptr};

unsigned envShards() {
  const char *E = std::getenv("FCSL_SHARDS");
  if (!E)
    return 1;
  long V = std::strtol(E, nullptr, 10);
  return V > 1 ? static_cast<unsigned>(V) : 1;
}

} // namespace

uint64_t fcsl::peakVisitedNodes() {
  return PeakVisitedNodesCounter.load(std::memory_order_relaxed);
}

uint64_t fcsl::peakVisitedBytes() {
  return PeakVisitedBytesCounter.load(std::memory_order_relaxed);
}

uint64_t fcsl::totalConfigsExplored() {
  return TotalConfigsCounter.load(std::memory_order_relaxed);
}

void fcsl::setDefaultPorMode(PorMode M) {
  DefaultPorSetting.store(static_cast<int>(M), std::memory_order_relaxed);
}

PorMode fcsl::defaultPorMode() {
  int V = DefaultPorSetting.load(std::memory_order_relaxed);
  if (V >= 0 && static_cast<PorMode>(V) != PorMode::Default)
    return static_cast<PorMode>(V);
  return envPorMode();
}

PorCheckTotals fcsl::porCheckTotals() {
  return {CheckFullCounter.load(std::memory_order_relaxed),
          CheckReducedCounter.load(std::memory_order_relaxed)};
}

PorStats fcsl::porStats() {
  return {PorRacesCounter.load(std::memory_order_relaxed),
          PorBacktracksCounter.load(std::memory_order_relaxed),
          PorWakeupReplaysCounter.load(std::memory_order_relaxed),
          PorWakeupPeakCounter.load(std::memory_order_relaxed),
          PorSleepHitsCounter.load(std::memory_order_relaxed),
          PorFullExpansionsCounter.load(std::memory_order_relaxed)};
}

void fcsl::setDefaultSymmetryMode(SymMode M) {
  DefaultSymSetting.store(static_cast<int>(M), std::memory_order_relaxed);
}

SymMode fcsl::defaultSymmetryMode() {
  int V = DefaultSymSetting.load(std::memory_order_relaxed);
  if (V >= 0 && static_cast<SymMode>(V) != SymMode::Default)
    return static_cast<SymMode>(V);
  return envSymMode();
}

SymCheckTotals fcsl::symCheckTotals() {
  return {SymCheckFullCounter.load(std::memory_order_relaxed),
          SymCheckCanonicalCounter.load(std::memory_order_relaxed)};
}

SymmetryStats fcsl::symmetryStats() {
  return {OrbitLookupsCounter.load(std::memory_order_relaxed),
          OrbitHitsCounter.load(std::memory_order_relaxed),
          OrbitChangedCounter.load(std::memory_order_relaxed)};
}

void fcsl::setShardedExploreHook(ShardedExploreFn Fn) {
  ShardedHook.store(Fn, std::memory_order_relaxed);
}

void fcsl::setDefaultShards(unsigned N) {
  DefaultShardsSetting.store(static_cast<int>(N), std::memory_order_relaxed);
}

unsigned fcsl::defaultShards() {
  int V = DefaultShardsSetting.load(std::memory_order_relaxed);
  if (V > 0)
    return static_cast<unsigned>(V);
  return envShards();
}

namespace {

/// One continuation frame of a thread's control stack.
struct Frame {
  enum class Kind : uint8_t {
    Run,      ///< execute Node under Env.
    BindCont, ///< awaiting a value; binds Var and runs Rest under Env.
    HideExit  ///< awaiting the hide body's value; uninstalls Node's spec.
  };

  Kind K;
  const Prog *Node = nullptr; // Run: command; HideExit: the Hide node.
  const Prog *Rest = nullptr; // BindCont continuation.
  std::string Var;            // BindCont variable ("_" to drop).
  VarEnv Env;

  friend bool operator==(const Frame &A, const Frame &B) {
    return A.K == B.K && A.Node == B.Node && A.Rest == B.Rest &&
           A.Var == B.Var && A.Env == B.Env;
  }

  void hashInto(size_t &Seed) const {
    // Programs hash by structural fingerprint, not node address: addresses
    // vary run to run (and across processes), which would make config
    // hashes unstable — fatal for serialized frontiers and for comparing
    // hash-derived statistics across runs. Equality still compares node
    // pointers, so a fingerprint collision costs a probe, never soundness.
    hashValue(Seed, static_cast<uint8_t>(K));
    hashValue(Seed, Node ? Node->fingerprint() : 0);
    hashValue(Seed, Rest ? Rest->fingerprint() : 0);
    hashValue(Seed, Var);
    hashValue(Seed, Env.size());
    for (const auto &Binding : Env) {
      hashValue(Seed, Binding.first);
      Binding.second.hashInto(Seed);
    }
  }

  /// Approximate handle-level footprint (see GlobalState::approxBytes).
  size_t approxBytes() const {
    constexpr size_t MapNode = 48;
    size_t Bytes = sizeof(Frame) + Var.capacity();
    for (const auto &Binding : Env)
      Bytes += MapNode + Binding.first.capacity() + sizeof(Val);
    return Bytes;
  }
};

Frame runFrame(const Prog *Node, VarEnv Env) {
  Frame F;
  F.K = Frame::Kind::Run;
  F.Node = Node;
  F.Env = std::move(Env);
  return F;
}

/// One thread of the configuration.
struct ThreadCtx {
  std::vector<Frame> Stack;
  bool Waiting = false; ///< suspended on a `par` until children finish.
  /// Symmetry reduction: this thread waits on a `par` whose branches run
  /// equivalent programs from equal per-label contributions, so its two
  /// child subtrees are interchangeable agents — the canonicalizer may
  /// swap them (DESIGN.md §11). Part of configuration identity: it decides
  /// whether the join delivers both pair orders (see normalize).
  bool SymChildren = false;
  std::optional<Val> Done;

  friend bool operator==(const ThreadCtx &A, const ThreadCtx &B) {
    return A.Waiting == B.Waiting && A.SymChildren == B.SymChildren &&
           A.Done == B.Done && A.Stack == B.Stack;
  }

  void hashInto(size_t &Seed) const {
    hashValue(Seed, Waiting);
    hashValue(Seed, SymChildren);
    hashValue(Seed, Done.has_value());
    if (Done)
      Done->hashInto(Seed);
    hashValue(Seed, Stack.size());
    for (const Frame &F : Stack)
      F.hashInto(Seed);
  }
};

/// One suppressed scheduling alternative under partial-order reduction: a
/// step that was already explored at an ancestor configuration and has
/// commuted with every step on the path since, so re-exploring it here
/// would only re-derive states reached there. Identity (for config
/// equality and hashing) is the *step*, not the footprint: a thread entry
/// is (thread, action node) — a sleeping thread cannot move, so its
/// pending action is pinned — and an environment entry is the transition's
/// index in the ambient concurroid. The footprint recorded when the entry
/// went to sleep rides along for re-filtering against later steps; it is
/// deliberately excluded from identity (it is a function of the step and
/// the configuration already).
struct SleepEntry {
  bool IsEnv = false;
  ThreadId T = 0;
  const Prog *ActNode = nullptr; ///< thread entries: the pending Act node.
  size_t EnvIdx = 0;             ///< env entries: transition index.
  Footprint Fp; ///< dynamic footprint at sleep time; not identity.

  friend bool operator==(const SleepEntry &A, const SleepEntry &B) {
    return A.IsEnv == B.IsEnv && A.T == B.T && A.ActNode == B.ActNode &&
           A.EnvIdx == B.EnvIdx;
  }

  void hashInto(size_t &Seed) const {
    hashValue(Seed, IsEnv);
    hashValue(Seed, T);
    hashValue(Seed, ActNode ? ActNode->fingerprint() : 0);
    hashValue(Seed, EnvIdx);
  }
};

/// Canonical sleep-set order: thread entries ascending by id, then env
/// entries ascending by transition index (each kind's key is unique).
bool sleepLess(const SleepEntry &A, const SleepEntry &B) {
  if (A.IsEnv != B.IsEnv)
    return A.IsEnv < B.IsEnv;
  if (A.T != B.T)
    return A.T < B.T;
  return A.EnvIdx < B.EnvIdx;
}

/// A whole configuration: instrumented state plus all thread stacks. The
/// sleep set and the trailing-env close mask ride along as *payload*, not
/// identity: they are merged into the visited node on every revisit (the
/// sleep sets intersect, the masks union — see insertLocal), so the same
/// raw configuration is never split into several visited entries just
/// because different paths put different steps to sleep. The merge is
/// monotone over a finite lattice, so the fixpoint — and with it the
/// reachable node set and every counter — stays schedule-independent
/// across worker counts. The deep hash is computed once (`rehash`) when
/// the configuration is frozen for insertion into the visited set, so
/// probes and table rehashes never recompute it.
struct Config {
  GlobalState GS;
  std::map<ThreadId, ThreadCtx> Threads;
  std::vector<SleepEntry> Sleep; ///< sorted by sleepLess.
  /// POR only, and only ever nonzero on *terminal* configurations: bit i
  /// licenses trailing applications of the ambient's i-th transition at
  /// this terminal. Every step into a terminal is the program's last
  /// action `a` (env steps never finish a thread); an env transition
  /// independent of `a` commutes before it, so its trailing firing here is
  /// the final view of a real full-run trace "...env, then a". Without the
  /// closure those traces' views would be lost whenever the reduction
  /// (ample postponement or sleep-set pruning) explored `a` before the env
  /// step. Dependent transitions stay unlicensed: firing them after `a`
  /// would invent terminals the full exploration never reaches.
  uint32_t EnvCloseMask = 0;
  size_t Hash = 0; ///< cached; valid after rehash().
  /// Hash of the shared global state alone, cached by the same rehash().
  /// Multi-process sharding partitions on THIS value, not on Hash:
  /// configs differing only in thread-local control state co-locate, so
  /// the many successors produced by pure/local steps never cross a
  /// shard boundary (locality-preserving ownership). Still a pure
  /// function of config identity — same config, same owner, in every
  /// process — which is all dedup parity needs.
  size_t GSHash = 0;

  friend bool operator==(const Config &A, const Config &B) {
    return A.GS == B.GS && A.Threads == B.Threads;
  }

  void rehash() {
    size_t Seed = 0;
    GS.hashInto(Seed);
    GSHash = Seed;
    hashValue(Seed, Threads.size());
    for (const auto &Entry : Threads) {
      hashValue(Seed, Entry.first);
      Entry.second.hashInto(Seed);
    }
    Hash = Seed;
  }

  /// Hash of the identity *plus* the wake payload, for caches (the orbit
  /// cache) whose entries are only reusable when the payload matches too.
  size_t wakeHash() const {
    size_t Seed = Hash;
    hashValue(Seed, Sleep.size());
    for (const SleepEntry &E : Sleep)
      E.hashInto(Seed);
    hashValue(Seed, EnvCloseMask);
    return Seed;
  }

  /// Identity equality extended with the wake payload (see wakeHash).
  friend bool sameWithWake(const Config &A, const Config &B) {
    return A.EnvCloseMask == B.EnvCloseMask && A == B && A.Sleep == B.Sleep;
  }

  /// Approximate retained bytes of this configuration in the visited set
  /// (container overhead only — interned nodes are shared arena-wide).
  size_t approxBytes() const {
    constexpr size_t MapNode = 48;
    size_t Bytes = GS.approxBytes();
    for (const auto &Entry : Threads) {
      Bytes += MapNode + sizeof(ThreadId) + sizeof(ThreadCtx);
      for (const Frame &F : Entry.second.Stack)
        Bytes += F.approxBytes();
    }
    for (const SleepEntry &E : Sleep)
      Bytes += E.Fp.approxBytes();
    return Bytes;
  }
};

/// A visited configuration plus the provenance needed to reconstruct a
/// counterexample schedule: the parent it was reached from and the
/// human-readable scheduling step. Nodes live in node-based hash sets, so
/// their addresses are stable and parent chains stay valid across
/// insertions from any worker.
///
/// Under partial-order reduction the node also carries mutable *wake
/// state*, guarded by the owning visited-set stripe's mutex: the merged
/// sleep set (intersection over every arrival's payload), the merged
/// trailing-env close mask (union), the set of candidate steps already
/// executed here (so step counters count once per step across wakeup
/// replays), and the queueing flags that coalesce replays. Identity
/// (NodeHash/NodeEq) deliberately excludes all of it.
struct Node {
  Config C;
  const Node *Parent = nullptr;
  std::string Step; ///< empty for the initial configuration.
  mutable std::vector<SleepEntry> Sleep{}; ///< merged; sorted by sleepLess.
  mutable uint32_t CloseMask = 0;        ///< merged trailing-env licenses.
  mutable std::vector<uint64_t> Executed{}; ///< sorted candidate keys.
  mutable bool InQueue = false;      ///< queued for (re-)expansion.
  mutable bool ExpandedOnce = false; ///< has consumed its config ticket.
};

struct NodeHash {
  size_t operator()(const Node &N) const { return N.C.Hash; }
};

struct NodeEq {
  bool operator()(const Node &A, const Node &B) const { return A.C == B.C; }
};

/// The exploration driver.
class Explorer {
public:
  Explorer(const EngineOptions &Opts, RunResult &Res)
      : Opts(Opts), Res(Res) {}

  /// Configures this run as shard \p Id of an \p N-way partition talking
  /// to \p Transport (see exploreShard).
  void setDist(unsigned Id, unsigned N, ShardIo *Transport) {
    DistId = Id;
    DistN = N;
    Io = Transport;
  }

  void run(const ProgRef &Root, const GlobalState &Initial,
           const VarEnv &InitialEnv) {
    assert(Opts.Por != PorMode::Default && Opts.Por != PorMode::Check &&
           Opts.Por != PorMode::CheckDynamic &&
           "explore() resolves the POR mode before running");
    assert(Opts.Symmetry != SymMode::Default &&
           Opts.Symmetry != SymMode::Check &&
           "explore() resolves the symmetry mode before running");
    PorOn = Opts.Por == PorMode::On || Opts.Por == PorMode::Dynamic;
    DynOn = Opts.Por == PorMode::Dynamic;
    SymOn = Opts.Symmetry == SymMode::On;

    Config C0;
    C0.GS = Initial;
    ThreadCtx Main;
    Main.Stack.push_back(runFrame(Root.get(), InitialEnv));
    C0.Threads.emplace(rootThread(), std::move(Main));

    // Under symmetry, normalization of the seed can already cross a
    // symmetric join (a par of pure branches), in which case the mirrored
    // pair orders arrive as extra seed configurations.
    std::vector<Config> Extras;
    std::string Err;
    if (!normalize(C0, Err, SymOn ? &Extras : nullptr)) {
      Res.Safe = false;
      Res.FailureNote = std::move(Err);
      return;
    }

    if (PorOn)
      collectUniverse(Root);

    unsigned Jobs = resolveJobs(Opts.Jobs);
    NumShards = Jobs == 1 ? 1 : 64;
    Shards = std::vector<Shard>(NumShards);
    // Pre-size the visited set from the exploration bound (bounded so
    // tiny explorations do not pay for a four-million-bucket table).
    size_t Reserve = static_cast<size_t>(
        std::min<uint64_t>(Opts.MaxConfigs, 1u << 16));
    for (Shard &S : Shards)
      S.Set.reserve(Reserve / NumShards + 1);
    Workers.clear();
    for (unsigned I = 0; I != Jobs; ++I)
      Workers.push_back(std::make_unique<Worker>());

    if (DistN > 1)
      PT = std::make_unique<ProgTable>(Root.get(), Opts.Defs);
    std::vector<Config> Seeds;
    Seeds.push_back(std::move(C0));
    for (Config &X : Extras)
      Seeds.push_back(std::move(X));
    for (Config &Seed : Seeds) {
      Seed.rehash();
      // Canonicalize before the ownership decision so a whole orbit maps
      // to one shard (enqueue would also canonicalize, but the dist seed
      // path below bypasses it).
      canonicalize(Seed);
      if (DistN > 1) {
        // A seed configuration is inserted ONLY by its owner shard:
        // routing it would cost every other shard a dedup-hit and break
        // counter parity with the in-process engine. Ownership is the
        // process-stable global-state hash, same as enqueue.
        if (static_cast<unsigned>(Seed.GSHash % DistN) == DistId)
          insertLocal(std::move(Seed), nullptr, "", *Workers[0]);
      } else {
        enqueue(std::move(Seed), nullptr, "", *Workers[0]);
      }
    }

    if (DistN > 1 && Jobs == 1) {
      // A one-worker shard stays single-threaded: the main thread
      // interleaves expansion with the transport pump (soloShardLoop).
      // A dedicated pump thread buys nothing here and costs context
      // switches on machines with fewer cores than shard processes.
      soloShardLoop();
    } else if (DistN > 1) {
      // The main thread pumps the transport while the team explores.
      std::vector<std::thread> Team;
      Team.reserve(Jobs);
      for (unsigned I = 0; I != Jobs; ++I)
        Team.emplace_back([this, I] {
          ParallelRegionGuard Region;
          workerLoop(I);
        });
      ioLoop();
      for (std::thread &T : Team)
        T.join();
    } else if (Jobs == 1) {
      workerLoop(0);
    } else {
      std::vector<std::thread> Team;
      Team.reserve(Jobs);
      for (unsigned I = 0; I != Jobs; ++I)
        Team.emplace_back([this, I] {
          ParallelRegionGuard Region;
          workerLoop(I);
        });
      for (std::thread &T : Team)
        T.join();
    }

    Res.ConfigsExplored = Expanded.load();
    Res.Exhausted = ExhaustedFlag.load();
    if (Res.Exhausted) {
      uint64_t Frontier = 0;
      for (const std::unique_ptr<Worker> &W : Workers)
        Frontier += W->Queue.size();
      Res.FrontierAtAbort = Frontier;
    }
    std::set<Terminal> Merged;
    for (const std::unique_ptr<Worker> &W : Workers) {
      Res.ActionSteps += W->ActionSteps;
      Res.EnvSteps += W->EnvSteps;
      Res.DedupHits += W->DedupHits;
      Merged.insert(W->Terminals.begin(), W->Terminals.end());
    }
    Res.Terminals.assign(Merged.begin(), Merged.end());

    // The visited set only grows, so its final size is the run's peak.
    uint64_t Nodes = 0, Bytes = 0;
    for (Shard &S : Shards) {
      Nodes += S.Set.size();
      // 16 bytes: the hash-set node (next pointer + cached hash).
      for (const Node &N : S.Set)
        Bytes += sizeof(Node) + N.Step.capacity() + N.C.approxBytes() + 16;
    }
    Res.VisitedNodes = Nodes;
    Res.VisitedBytes = Bytes;
    notePeakVisited(Nodes, Bytes);
  }

  /// Executes one pseudo-random schedule (see fcsl::simulate).
  SimResult simulateRun(const ProgRef &Root, const GlobalState &Initial,
                        const VarEnv &InitialEnv, uint64_t Seed,
                        uint64_t MaxSteps) {
    SimResult Sim;
    Config C;
    C.GS = Initial;
    ThreadCtx Main;
    Main.Stack.push_back(runFrame(Root.get(), InitialEnv));
    C.Threads.emplace(rootThread(), std::move(Main));
    Rng Random(Seed);

    auto FailOut = [&](std::string Note) {
      Sim.Safe = false;
      Sim.FailureNote = std::move(Note);
      return Sim;
    };

    std::string Err;
    if (!normalize(C, Err))
      return FailOut(std::move(Err));

    for (Sim.Steps = 0; Sim.Steps < MaxSteps; ++Sim.Steps) {
      const ThreadCtx &MainCtx = C.Threads.at(rootThread());
      if (MainCtx.Done) {
        Sim.Terminated = true;
        Sim.Result = *MainCtx.Done;
        Sim.FinalView = C.GS.viewFor(rootThread());
        return Sim;
      }

      // One candidate per runnable thread, plus one for the environment.
      std::vector<ThreadId> Runnable;
      for (const auto &Entry : C.Threads)
        if (!Entry.second.Done && !Entry.second.Waiting)
          Runnable.push_back(Entry.first);
      bool WithEnv = Opts.EnvInterference && Opts.Ambient;
      size_t Choices = Runnable.size() + (WithEnv ? 1 : 0);
      if (Choices == 0)
        break; // Deadlock: report as non-termination.
      size_t Pick = static_cast<size_t>(Random.nextBelow(Choices));

      if (Pick < Runnable.size()) {
        ThreadId T = Runnable[Pick];
        const Frame &Top = C.Threads.at(T).Stack.back();
        const AtomicAction &A = *Top.Node->action();
        std::vector<Val> Args;
        for (const ExprRef &E : Top.Node->args())
          Args.push_back(E->eval(Top.Env));
        View Pre = C.GS.viewFor(T);
        std::optional<std::vector<ActOutcome>> Outcomes =
            A.step(Pre, Args);
        if (!Outcomes)
          return FailOut(
              formatString("action %s is unsafe in the sampled schedule",
                           A.name().c_str()));
        const ActOutcome &O =
            (*Outcomes)[Random.nextBelow(Outcomes->size())];
        C.GS.applyThread(T, Pre, O.Post);
        if (Opts.CheckStepCoherence && Opts.Ambient &&
            !Opts.Ambient->coherent(C.GS.viewFor(T)))
          return FailOut(formatString("action %s broke coherence",
                                      A.name().c_str()));
        C.Threads.at(T).Stack.pop_back();
        if (!deliver(C, T, O.Result, Err) || !normalize(C, Err))
          return FailOut(std::move(Err));
      } else {
        // One random environment step (if any is enabled).
        View EnvView = C.GS.viewForEnv();
        std::vector<View> Posts;
        for (const Transition &T : Opts.Ambient->transitions()) {
          if (!T.isEnvEnabled() || T.name() == "idle")
            continue;
          for (const View &Post : T.successors(EnvView))
            if (Opts.Ambient->coherent(Post))
              Posts.push_back(Post);
        }
        if (!Posts.empty())
          C.GS.applyEnv(EnvView,
                        Posts[Random.nextBelow(Posts.size())]);
      }
    }
    return Sim; // Budget exhausted without termination.
  }

private:
  /// One stripe of the visited set.
  struct Shard {
    std::mutex M;
    std::unordered_set<Node, NodeHash, NodeEq> Set;
  };

  /// Per-worker frontier and statistics; counters are summed and terminal
  /// sets merged (sorted) after the team joins.
  struct Worker {
    std::mutex M;
    std::deque<const Node *> Queue;
    uint64_t ActionSteps = 0;
    uint64_t EnvSteps = 0;
    uint64_t DedupHits = 0;
    std::set<Terminal> Terminals;
  };

  /// A consistent copy of a node's wake state, taken under the stripe
  /// mutex when the node is popped for expansion (see workerLoop).
  struct WakeSnapshot {
    std::vector<SleepEntry> Sleep;
    uint32_t CloseMask = 0;
    bool First = false; ///< this is the node's first expansion.
  };

  /// Delivers \p Value to thread \p T's continuation, unwinding HideExit
  /// frames. Returns false on an engine-level failure, with \p Err set.
  bool deliver(Config &C, ThreadId T, Val Value, std::string &Err) {
    ThreadCtx &Ctx = C.Threads.at(T);
    while (true) {
      if (Ctx.Stack.empty()) {
        Ctx.Done = std::move(Value);
        return true;
      }
      Frame F = std::move(Ctx.Stack.back());
      Ctx.Stack.pop_back();
      switch (F.K) {
      case Frame::Kind::BindCont: {
        VarEnv Env = std::move(F.Env);
        if (F.Var != "_")
          Env[F.Var] = std::move(Value);
        Ctx.Stack.push_back(runFrame(F.Rest, std::move(Env)));
        return true;
      }
      case Frame::Kind::HideExit: {
        // Scoped deinstallation: the hidden joint heap flows back into the
        // caller's private heap; hidden auxiliary state is discarded
        // (it was logical-only).
        const HideSpec &Spec = F.Node->hideSpec();
        Heap Hidden = C.GS.removeLabel(Spec.Hidden);
        Heap Mine = C.GS.selfOf(Spec.Pv, T).getHeap();
        std::optional<Heap> Joined = Heap::join(Mine, Hidden);
        assert(Joined && "hidden heap clashes with the private heap");
        C.GS.setSelf(Spec.Pv, T, PCMVal::ofHeap(std::move(*Joined)));
        continue; // Keep delivering the same value outward.
      }
      case Frame::Kind::Run:
        assert(false && "delivering a value onto a Run frame");
        Err = "internal: delivering a value onto a Run frame";
        return false;
      }
    }
  }

  /// Applies administrative steps until every thread is Done, Waiting, or
  /// stopped at an atomic action. Returns false on failure, with \p Err
  /// set.
  ///
  /// \p Extra (symmetry reduction only) receives mirror configurations:
  /// when a symmetric par joins children whose results differ, the
  /// canonicalizer has collapsed this configuration with its mirror image,
  /// so BOTH pair orders must be delivered to regenerate exactly the
  /// unreduced engine's post-join configurations (the PCM join of the
  /// children's contributions is commutative, so the two orders share one
  /// global state and differ only in the delivered value).
  bool normalize(Config &C, std::string &Err,
                 std::vector<Config> *Extra = nullptr) {
    bool Progress = true;
    while (Progress) {
      Progress = false;
      // Collect ids first: admin steps add/remove threads.
      std::vector<ThreadId> Ids;
      Ids.reserve(C.Threads.size());
      for (const auto &Entry : C.Threads)
        Ids.push_back(Entry.first);

      for (ThreadId T : Ids) {
        auto It = C.Threads.find(T);
        if (It == C.Threads.end())
          continue; // Joined away meanwhile.
        ThreadCtx &Ctx = It->second;

        if (Ctx.Done)
          continue;

        if (Ctx.Waiting) {
          auto LeftIt = C.Threads.find(leftChild(T));
          auto RightIt = C.Threads.find(rightChild(T));
          assert(LeftIt != C.Threads.end() && RightIt != C.Threads.end() &&
                 "waiting thread lost its children");
          if (!LeftIt->second.Done || !RightIt->second.Done)
            continue;
          Val LeftV = *LeftIt->second.Done;
          Val RightV = *RightIt->second.Done;
          if (Ctx.SymChildren && Extra && !(LeftV == RightV)) {
            // This configuration stands for its mirror image too (the
            // canonicalizer merged them), so the join must also deliver
            // the swapped pair order — as a separate configuration,
            // exactly like the unreduced engine's mirror-schedule join.
            Config M = C;
            M.GS.joinChildren(T, leftChild(T), rightChild(T));
            M.Threads.erase(leftChild(T));
            M.Threads.erase(rightChild(T));
            ThreadCtx &MCtx = M.Threads.at(T);
            MCtx.Waiting = false;
            MCtx.SymChildren = false;
            if (!deliver(M, T, Val::pair(RightV, LeftV), Err) ||
                !normalize(M, Err, Extra))
              return false;
            Extra->push_back(std::move(M));
          }
          Val Result = Val::pair(std::move(LeftV), std::move(RightV));
          C.GS.joinChildren(T, leftChild(T), rightChild(T));
          C.Threads.erase(leftChild(T));
          C.Threads.erase(rightChild(T));
          ThreadCtx &JCtx = C.Threads.at(T);
          JCtx.Waiting = false;
          JCtx.SymChildren = false;
          if (!deliver(C, T, std::move(Result), Err))
            return false;
          Progress = true;
          continue;
        }

        assert(!Ctx.Stack.empty() && "running thread with empty stack");
        Frame &Top = Ctx.Stack.back();
        if (Top.K != Frame::Kind::Run)
          continue; // BindCont/HideExit only surface via deliver.
        const Prog *Node = Top.Node;

        switch (Node->kind()) {
        case Prog::Kind::Ret: {
          Val V = Node->retExpr()->eval(Top.Env);
          Ctx.Stack.pop_back();
          if (!deliver(C, T, std::move(V), Err))
            return false;
          Progress = true;
          break;
        }
        case Prog::Kind::Act:
          break; // Scheduling point; handled by expand().
        case Prog::Kind::Bind: {
          Frame Cont;
          Cont.K = Frame::Kind::BindCont;
          Cont.Var = Node->bindVar();
          Cont.Rest = Node->rest().get();
          Cont.Env = Top.Env;
          const Prog *First = Node->first().get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(std::move(Cont));
          Ctx.Stack.push_back(runFrame(First, std::move(Env)));
          Progress = true;
          break;
        }
        case Prog::Kind::If: {
          bool Taken = Node->cond()->eval(Top.Env).getBool();
          const Prog *Branch =
              (Taken ? Node->thenProg() : Node->elseProg()).get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(runFrame(Branch, std::move(Env)));
          Progress = true;
          break;
        }
        case Prog::Kind::Call: {
          assert(Opts.Defs && "call without a definition table");
          const FuncDef &Def = Opts.Defs->lookup(Node->callee());
          assert(Def.Params.size() == Node->args().size() &&
                 "call arity mismatch");
          VarEnv CalleeEnv;
          for (size_t I = 0, N = Def.Params.size(); I != N; ++I)
            CalleeEnv[Def.Params[I]] = Node->args()[I]->eval(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Stack.push_back(runFrame(Def.Body.get(),
                                       std::move(CalleeEnv)));
          Progress = true;
          break;
        }
        case Prog::Kind::Par: {
          const Prog *Left = Node->left().get();
          const Prog *Right = Node->right().get();
          std::map<Label, std::pair<PCMVal, PCMVal>> Splits;
          if (const SplitFn &Split = Node->split())
            Splits = Split(C.GS.viewFor(T));
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Ctx.Waiting = true;
          C.GS.fork(T, leftChild(T), rightChild(T), Splits);
          if (SymOn && progEquivalent(Node->left(), Node->right())) {
            // The branches run equivalent programs; if the fork also gave
            // them equal contributions at every label, the two subtrees
            // are interchangeable agents. Mark the parent for the
            // canonicalizer and unify the right branch onto the left's
            // node so mirrored executions become structurally equal
            // (frames compare program node pointers). The rewrite is
            // injective on reachable configurations: a prog subtree never
            // migrates between threads, so no merged pair of distinct
            // off-mode configs can arise from it.
            bool EqualSelves = true;
            for (Label L : C.GS.labels())
              if (!(C.GS.selfOf(L, leftChild(T)) ==
                    C.GS.selfOf(L, rightChild(T)))) {
                EqualSelves = false;
                break;
              }
            if (EqualSelves) {
              C.Threads.at(T).SymChildren = true;
              Right = Left;
            }
          }
          ThreadCtx L, R;
          L.Stack.push_back(runFrame(Left, Env));
          R.Stack.push_back(runFrame(Right, std::move(Env)));
          C.Threads.emplace(leftChild(T), std::move(L));
          C.Threads.emplace(rightChild(T), std::move(R));
          Progress = true;
          break;
        }
        case Prog::Kind::Hide: {
          const HideSpec &Spec = Node->hideSpec();
          View Pre = C.GS.viewFor(T);
          const Heap &Mine = Pre.self(Spec.Pv).getHeap();
          std::optional<Heap> Donation = Spec.ChooseDonation(Mine);
          if (!Donation) {
            Err = formatString(
                "hide: the private heap does not satisfy the decoration "
                "predicate (thread %llu)",
                static_cast<unsigned long long>(T));
            return false;
          }
          std::optional<PCMVal> Rest = pcmSubtract(
              PCMVal::ofHeap(Mine), PCMVal::ofHeap(*Donation));
          if (!Rest) {
            Err = "hide: decoration selected cells outside the private "
                  "heap";
            return false;
          }
          C.GS.setSelf(Spec.Pv, T, std::move(*Rest));
          C.GS.addLabel(Spec.Hidden, Spec.SelfType, std::move(*Donation),
                        Spec.SelfType->unit(), /*EnvClosed=*/true);
          C.GS.setSelf(Spec.Hidden, T, Spec.InitSelf);
          if (Spec.Installed &&
              !Spec.Installed->coherent(C.GS.viewFor(T))) {
            Err = "hide: the decorated donation does not establish the "
                  "installed concurroid's coherence";
            return false;
          }
          const Prog *Body = Node->body().get();
          VarEnv Env = std::move(Top.Env);
          Ctx.Stack.pop_back();
          Frame Exit;
          Exit.K = Frame::Kind::HideExit;
          Exit.Node = Node;
          Ctx.Stack.push_back(std::move(Exit));
          Ctx.Stack.push_back(runFrame(Body, std::move(Env)));
          Progress = true;
          break;
        }
        }
      }
    }
    return true;
  }

  /// Lowers an in-memory configuration to its portable form: program
  /// pointers become ProgTable indices, which are identical in every
  /// process that built the same program (the coordinator forks workers,
  /// so the table — and even the pointers — match exactly). Consumes the
  /// config: a lowered config is about to be shipped and die, so the
  /// variable environments and the global state move instead of copying
  /// (the conversions bracket every exchange — they must stay cheap).
  FrontierConfig toFrontier(Config &&C) const {
    FrontierConfig F;
    F.GS = std::move(C.GS);
    for (auto &Entry : C.Threads) {
      FrontierThread T;
      T.Id = Entry.first;
      T.Waiting = Entry.second.Waiting;
      T.SymChildren = Entry.second.SymChildren;
      T.Done = std::move(Entry.second.Done);
      for (Frame &Fr : Entry.second.Stack) {
        FrontierFrame FF;
        FF.Kind = static_cast<uint8_t>(Fr.K);
        FF.Node = Fr.Node ? PT->indexOf(Fr.Node) : ProgTable::NoProg;
        FF.Rest = Fr.Rest ? PT->indexOf(Fr.Rest) : ProgTable::NoProg;
        FF.Var = std::move(Fr.Var);
        FF.Env = std::move(Fr.Env);
        T.Frames.push_back(std::move(FF));
      }
      F.Threads.push_back(std::move(T));
    }
    for (SleepEntry &S : C.Sleep) {
      FrontierSleep FS;
      FS.IsEnv = S.IsEnv;
      FS.T = S.T;
      FS.ActNode = S.ActNode ? PT->indexOf(S.ActNode) : ProgTable::NoProg;
      FS.EnvIdx = S.EnvIdx;
      FS.Fp = std::move(S.Fp);
      F.Sleep.push_back(std::move(FS));
    }
    F.EnvCloseMask = C.EnvCloseMask;
    return F;
  }

  /// The inverse lift, also consuming its argument for the same reason.
  Config fromFrontier(FrontierConfig &&F) const {
    Config C;
    C.GS = std::move(F.GS);
    for (FrontierThread &T : F.Threads) {
      ThreadCtx Ctx;
      Ctx.Waiting = T.Waiting;
      Ctx.SymChildren = T.SymChildren;
      Ctx.Done = std::move(T.Done);
      for (FrontierFrame &FF : T.Frames) {
        Frame Fr;
        Fr.K = static_cast<Frame::Kind>(FF.Kind);
        Fr.Node = FF.Node == ProgTable::NoProg ? nullptr
                                               : PT->progAt(FF.Node);
        Fr.Rest = FF.Rest == ProgTable::NoProg ? nullptr
                                               : PT->progAt(FF.Rest);
        Fr.Var = std::move(FF.Var);
        Fr.Env = std::move(FF.Env);
        Ctx.Stack.push_back(std::move(Fr));
      }
      C.Threads.emplace(T.Id, std::move(Ctx));
    }
    for (FrontierSleep &FS : F.Sleep) {
      SleepEntry S;
      S.IsEnv = FS.IsEnv;
      S.T = FS.T;
      S.ActNode = FS.ActNode == ProgTable::NoProg ? nullptr
                                                  : PT->progAt(FS.ActNode);
      S.EnvIdx = FS.EnvIdx;
      S.Fp = std::move(FS.Fp);
      C.Sleep.push_back(std::move(S));
    }
    C.EnvCloseMask = F.EnvCloseMask;
    return C;
  }

  //===--------------------------------------------------------------------===//
  // Symmetry reduction: orbit canonicalization (DESIGN.md §11)
  //===--------------------------------------------------------------------===//

  /// Total order on frames, by content only (program nodes enter via their
  /// process-stable fingerprints). Relabeling-invariant: swapping two
  /// subtrees never changes any frame's rank, which is what makes the
  /// canonicalization pass idempotent and order-independent. A fingerprint
  /// tie between distinct nodes reads as "equal", which merely suppresses
  /// a swap — never soundness.
  static int cmpFrame(const Frame &A, const Frame &B) {
    if (A.K != B.K)
      return A.K < B.K ? -1 : 1;
    uint64_t AN = A.Node ? A.Node->fingerprint() : 0;
    uint64_t BN = B.Node ? B.Node->fingerprint() : 0;
    if (AN != BN)
      return AN < BN ? -1 : 1;
    uint64_t AR = A.Rest ? A.Rest->fingerprint() : 0;
    uint64_t BR = B.Rest ? B.Rest->fingerprint() : 0;
    if (AR != BR)
      return AR < BR ? -1 : 1;
    if (A.Var != B.Var)
      return A.Var < B.Var ? -1 : 1;
    if (A.Env.size() != B.Env.size())
      return A.Env.size() < B.Env.size() ? -1 : 1;
    auto AIt = A.Env.begin(), BIt = B.Env.begin();
    for (; AIt != A.Env.end(); ++AIt, ++BIt) {
      if (AIt->first != BIt->first)
        return AIt->first < BIt->first ? -1 : 1;
      int Cmp = AIt->second.compare(BIt->second);
      if (Cmp != 0)
        return Cmp;
    }
    return 0;
  }

  /// Compares the whole subtrees rooted at threads \p A and \p B of \p C:
  /// control stack, completion state, per-label contributions, then the
  /// children recursively. Content-based (never reads thread ids), so the
  /// order is invariant under the relabeling swapSubtrees performs.
  int cmpThread(const Config &C, ThreadId A, ThreadId B) const {
    auto AIt = C.Threads.find(A), BIt = C.Threads.find(B);
    bool AHas = AIt != C.Threads.end(), BHas = BIt != C.Threads.end();
    if (AHas != BHas)
      return AHas ? -1 : 1;
    if (!AHas)
      return 0; // Neither exists, so neither has children.
    const ThreadCtx &X = AIt->second, &Y = BIt->second;
    if (X.Done.has_value() != Y.Done.has_value())
      return X.Done.has_value() ? -1 : 1;
    if (X.Done) {
      int Cmp = X.Done->compare(*Y.Done);
      if (Cmp != 0)
        return Cmp;
    }
    if (X.Waiting != Y.Waiting)
      return X.Waiting < Y.Waiting ? -1 : 1;
    if (X.SymChildren != Y.SymChildren)
      return X.SymChildren < Y.SymChildren ? -1 : 1;
    if (X.Stack.size() != Y.Stack.size())
      return X.Stack.size() < Y.Stack.size() ? -1 : 1;
    for (size_t I = 0, Sz = X.Stack.size(); I != Sz; ++I) {
      int Cmp = cmpFrame(X.Stack[I], Y.Stack[I]);
      if (Cmp != 0)
        return Cmp;
    }
    for (Label L : C.GS.labels()) {
      int Cmp = C.GS.selfOf(L, A).compare(C.GS.selfOf(L, B));
      if (Cmp != 0)
        return Cmp;
    }
    // Sleep membership is deliberately NOT compared: it is not content of
    // the subtree. Two mirror configs that differ only in which symmetric
    // thread sleeps may then miss a merge — a lost reduction, not a lost
    // soundness (sleep entries are renamed consistently by the swap).
    int Cmp = cmpThread(C, leftChild(A), leftChild(B));
    if (Cmp != 0)
      return Cmp;
    return cmpThread(C, rightChild(A), rightChild(B));
  }

  /// Relabels the two child subtrees of \p T into each other: every thread
  /// id under leftChild(T) maps to its mirror under rightChild(T) and vice
  /// versa, in the thread map, the per-label contributions, and the sleep
  /// set (whose canonical order is restored afterwards).
  void swapSubtrees(Config &C, ThreadId T) const {
    ThreadId A = leftChild(T), B = rightChild(T);
    auto MirrorOf = [&](ThreadId X) -> ThreadId {
      // Walk up to depth of the subtree roots; member iff the walk lands
      // exactly on A or B (ids are a binary heap numbering).
      ThreadId Y = X;
      unsigned D = 0;
      while (Y > B) {
        Y >>= 1;
        ++D;
      }
      if (Y != A && Y != B)
        return X;
      ThreadId Other = Y == A ? B : A;
      return (Other << D) | (X - (Y << D));
    };
    std::map<ThreadId, ThreadId> Rel;
    for (const auto &Entry : C.Threads) {
      ThreadId M = MirrorOf(Entry.first);
      if (M != Entry.first)
        Rel.emplace(Entry.first, M);
    }
    if (Rel.empty())
      return;
    std::map<ThreadId, ThreadCtx> Renamed;
    for (auto &Entry : C.Threads) {
      auto It = Rel.find(Entry.first);
      Renamed.emplace(It == Rel.end() ? Entry.first : It->second,
                      std::move(Entry.second));
    }
    C.Threads = std::move(Renamed);
    C.GS.renameThreads(Rel);
    bool SleepChanged = false;
    for (SleepEntry &E : C.Sleep) {
      if (E.IsEnv)
        continue;
      auto It = Rel.find(E.T);
      if (It != Rel.end()) {
        E.T = It->second;
        SleepChanged = true;
      }
    }
    if (SleepChanged)
      std::sort(C.Sleep.begin(), C.Sleep.end(), sleepLess);
  }

  /// Rewrites \p C to its orbit representative: at every symmetric par
  /// (SymChildren, both children live) whose left subtree ranks after its
  /// right subtree, swap the subtrees. Parents are processed deepest-first
  /// so an outer swap sees already-canonical inner pairs; because the
  /// comparator is content-based (relabeling-invariant), one pass reaches
  /// a fixpoint and the result is independent of discovery order. Returns
  /// true when the configuration changed.
  bool canonicalizeConfig(Config &C) const {
    std::vector<ThreadId> Parents;
    for (const auto &Entry : C.Threads)
      if (Entry.second.Waiting && Entry.second.SymChildren &&
          C.Threads.count(leftChild(Entry.first)) != 0 &&
          C.Threads.count(rightChild(Entry.first)) != 0)
        Parents.push_back(Entry.first);
    std::sort(Parents.begin(), Parents.end(), std::greater<ThreadId>());
    bool Changed = false;
    for (ThreadId T : Parents)
      if (cmpThread(C, leftChild(T), rightChild(T)) > 0) {
        swapSubtrees(C, T);
        Changed = true;
      }
    return Changed;
  }

  /// Canonicalizes \p C in place through the orbit cache. Requires
  /// C.rehash() to have been called; re-hashes when the config changes.
  /// The cache stores verified (raw, canonical) pairs keyed by the raw
  /// *payload-extended* hash — config identity ignores the sleep/mask
  /// payload, but the canonical form's payload is a function of the raw
  /// payload (swapSubtrees renames sleep entries), so a cached mapping is
  /// only reusable when the payload matches too. A hash collision falls
  /// back to recomputing, never to a wrong representative.
  void canonicalize(Config &C) {
    if (!SymOn)
      return;
    OrbitLookupsCounter.fetch_add(1, std::memory_order_relaxed);
    size_t Key = C.wakeHash();
    OrbitStripe &S = Orbit[Key % OrbitStripeCount];
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(Key);
      if (It != S.Map.end() && sameWithWake(It->second.Raw, C)) {
        OrbitHitsCounter.fetch_add(1, std::memory_order_relaxed);
        if (It->second.Canon) {
          C = *It->second.Canon;
          OrbitChangedCounter.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
    }
    Config Raw = C;
    bool Changed = canonicalizeConfig(C);
    if (Changed) {
      C.rehash();
      OrbitChangedCounter.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Map.size() >= OrbitCapPerStripe)
      S.Map.clear();
    S.Map[Key] = OrbitEntry{
        std::move(Raw),
        Changed ? std::optional<Config>(C) : std::nullopt};
  }

  /// Inserts \p C into the sharded visited set and, when new, hands it to
  /// \p W's frontier. Under multi-process sharding, a config owned by a
  /// different shard is shipped there instead — the owner performs the
  /// single insert attempt, preserving counter parity with the in-process
  /// engine. \p Counts is false when the generating step is a wakeup
  /// *re-execution* (see expandPor): the edge was already produced and
  /// counted once, so it must not count a second dedup hit — that keeps
  /// DedupHits a function of the first-execution edge set, which is
  /// schedule-independent. Requires C.rehash() to have been called.
  void enqueue(Config C, const Node *Parent, std::string Step, Worker &W,
               bool Counts = true) {
    // Canonicalize BEFORE dedup and shard routing: the canonical identity
    // hash is what ownership is derived from, so `Hash % N` dedups whole
    // orbits across processes.
    canonicalize(C);
    if (DistN > 1) {
      // Both hashes are built from structural fingerprints and payload
      // bytes only (see Frame::hashInto) — never node addresses — so they
      // are stable across the forked fleet. Ownership partitions on the
      // global-state hash (locality: thread-local steps stay put); the
      // full identity hash is the dedup fingerprint the wire carries.
      // Deciding ownership costs zero serialization work either way.
      uint64_t Fp = C.Hash;
      unsigned Owner = static_cast<unsigned>(C.GSHash % DistN);
      if (Owner != DistId) {
        std::lock_guard<std::mutex> Lock(IoMutex);
        // Sender-side fingerprint filter: the owner performs exactly one
        // visited-set insert per fingerprint; every further copy of the
        // same identity only contributes a dedup hit plus (under POR) a
        // wake-payload merge. A re-send whose payload the owner has
        // provably already absorbed — its sleep set contains the
        // intersection of everything shipped, its close mask adds no new
        // bits — would be a no-op there, so it is swallowed here and the
        // dedup hit booked locally. FIFO delivery guarantees the first
        // copy reaches the owner before any suppressed edge would have.
        auto [It, FirstSend] = Shipped.try_emplace(Fp);
        if (!FirstSend) {
          bool NoOp = true;
          if (PorOn) {
            NoOp = std::includes(C.Sleep.begin(), C.Sleep.end(),
                                 It->second.SleepLower.begin(),
                                 It->second.SleepLower.end(), sleepLess) &&
                   (C.EnvCloseMask & ~It->second.MaskUpper) == 0;
            if (!NoOp) {
              std::vector<SleepEntry> Lower;
              std::set_intersection(It->second.SleepLower.begin(),
                                    It->second.SleepLower.end(),
                                    C.Sleep.begin(), C.Sleep.end(),
                                    std::back_inserter(Lower), sleepLess);
              It->second.SleepLower = std::move(Lower);
              It->second.MaskUpper |= C.EnvCloseMask;
            }
          }
          if (NoOp) {
            if (Counts)
              ++W.DedupHits;
            SuppressedSendsCtr.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        } else if (PorOn) {
          It->second.SleepLower = C.Sleep;
          It->second.MaskUpper = C.EnvCloseMask;
        }
        SentConfigs.fetch_add(1, std::memory_order_relaxed);
        FrontierConfig FC = toFrontier(std::move(C));
        FC.Counts = Counts;
        Io->send(Owner, std::move(FC), Fp);
        return;
      }
    }
    insertLocal(std::move(C), Parent, std::move(Step), W, Counts);
  }

  void insertLocal(Config C, const Node *Parent, std::string Step, Worker &W,
                   bool Counts = true) {
    // The incoming wake payload, preserved across the move below: on a
    // revisit it is merged into the visited node — the sleep sets
    // intersect, the close masks union. The merge only moves *down* a
    // finite lattice, so chaotic iteration over any worker schedule
    // reaches the same least fixpoint; a merge that changed the node's
    // wake state re-queues it for re-expansion (a "wakeup": steps a
    // previous visit suppressed are now permitted here).
    std::vector<SleepEntry> InSleep = C.Sleep;
    uint32_t InMask = C.EnvCloseMask;
    Shard &S = Shards[C.Hash % NumShards];
    const Node *Target = nullptr;
    bool Replay = false;
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto [It, IsNew] =
          S.Set.insert(Node{std::move(C), Parent, std::move(Step)});
      const Node &N = *It;
      if (IsNew) {
        N.Sleep = std::move(InSleep);
        N.CloseMask = InMask;
        N.InQueue = true;
        Target = &N;
      } else {
        if (Counts)
          ++W.DedupHits;
        if (!PorOn)
          return;
        uint64_t Woken = 0;
        if (!N.Sleep.empty()) {
          std::vector<SleepEntry> Merged;
          std::set_intersection(N.Sleep.begin(), N.Sleep.end(),
                                InSleep.begin(), InSleep.end(),
                                std::back_inserter(Merged), sleepLess);
          if (Merged.size() != N.Sleep.size()) {
            Woken += N.Sleep.size() - Merged.size();
            N.Sleep = std::move(Merged);
          }
        }
        uint32_t Mask = N.CloseMask | InMask;
        if (Mask != N.CloseMask) {
          Woken += static_cast<uint64_t>(
              __builtin_popcount(Mask ^ N.CloseMask));
          N.CloseMask = Mask;
        }
        if (Woken == 0 || N.InQueue)
          return;
        N.InQueue = true;
        Target = &N;
        Replay = true;
        atomicMax(PorWakeupPeakCounter, Woken);
      }
    }
    if (Replay)
      PorWakeupReplaysCounter.fetch_add(1, std::memory_order_relaxed);
    InFlight.fetch_add(1);
    std::lock_guard<std::mutex> Lock(W.M);
    W.Queue.push_back(Target);
  }

  /// Marks candidate \p Key of \p N as executed; returns true exactly on
  /// the first execution, across wakeup replays and concurrent expansions
  /// of the same node. Callers count steps and dedup stats only then, so
  /// the counters converge to functions of the wake-state fixpoint.
  bool markExecuted(const Node &N, uint64_t Key) {
    Shard &S = Shards[N.C.Hash % NumShards];
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = std::lower_bound(N.Executed.begin(), N.Executed.end(), Key);
    if (It != N.Executed.end() && *It == Key)
      return false;
    N.Executed.insert(It, Key);
    return true;
  }

  const Node *popLocal(Worker &W) {
    std::lock_guard<std::mutex> Lock(W.M);
    if (W.Queue.empty())
      return nullptr;
    const Node *N = W.Queue.front();
    W.Queue.pop_front();
    return N;
  }

  const Node *trySteal(unsigned Self) {
    for (size_t I = 1, N = Workers.size(); I != N; ++I) {
      Worker &Victim = *Workers[(Self + I) % N];
      std::lock_guard<std::mutex> Lock(Victim.M);
      if (Victim.Queue.empty())
        continue;
      const Node *Stolen = Victim.Queue.back();
      Victim.Queue.pop_back();
      return Stolen;
    }
    return nullptr;
  }

  void workerLoop(unsigned Id) {
    Worker &W = *Workers[Id];
    while (!Abort.load(std::memory_order_acquire)) {
      const Node *N = popLocal(W);
      if (!N && Workers.size() > 1)
        N = trySteal(Id);
      if (!N) {
        // Under multi-process sharding an idle worker may yet receive
        // work from a peer shard, so only the coordinator's Drain
        // (surfaced by ioLoop as Abort) ends the loop.
        if (InFlight.load(std::memory_order_acquire) == 0 && DistN <= 1)
          return;
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        continue;
      }
      expandPopped(N, W);
    }
  }

  /// Expands one node popped from a queue: snapshots its wake state,
  /// charges the config ticket on first expansion, and runs expand().
  /// On hitting the MaxConfigs bound it raises Abort/ExhaustedFlag
  /// instead — callers observe the flag on their next loop iteration.
  void expandPopped(const Node *N, Worker &W) {
    // Snapshot the node's wake state and clear its queue flag in one
    // critical section: any merge that lands after the snapshot finds
    // InQueue == false and re-queues the node, so no weakening is ever
    // lost. Only a node's *first* expansion consumes a config ticket —
    // wakeup replays revisit a config already counted.
    WakeSnapshot Snap;
    {
      Shard &S = Shards[N->C.Hash % NumShards];
      std::lock_guard<std::mutex> Lock(S.M);
      Snap.Sleep = N->Sleep;
      Snap.CloseMask = N->CloseMask;
      Snap.First = !N->ExpandedOnce;
      N->ExpandedOnce = true;
      N->InQueue = false;
    }
    if (Snap.First) {
      uint64_t Ticket = Expanded.fetch_add(1, std::memory_order_relaxed);
      if (Ticket >= Opts.MaxConfigs) {
        // The bound was hit with work still pending: exploration is
        // incomplete. Undo the overshoot so ConfigsExplored stays exact.
        Expanded.fetch_sub(1, std::memory_order_relaxed);
        ExhaustedFlag.store(true);
        Abort.store(true, std::memory_order_release);
        return;
      }
    }
    expand(*N, Snap, W);
    InFlight.fetch_sub(1, std::memory_order_release);
  }

  /// The transport pump, run by the main thread of a sharded exploration
  /// while the worker team explores: reports status, injects configs
  /// routed here by peer shards, and reacts to the coordinator's Drain.
  ///
  /// Snapshot ordering matters for termination detection: InFlight is
  /// read *before* the counters, so a snapshot that claims Idle has final
  /// Sent/Recv values for that quiescent period — every send happens
  /// during an expansion, i.e. while InFlight > 0, and the release
  /// decrement of InFlight publishes it.
  void ioLoop() {
    size_t NextWorker = 0;
    while (true) {
      bool GotWork = false;
      if (pumpOnce(NextWorker, GotWork))
        return;
      if (!GotWork)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  /// A single-threaded shard: when a Jobs == 1 shard would otherwise run
  /// one worker thread plus the transport pump, interleave them on the
  /// main thread instead. On a box with fewer cores than shard processes
  /// the second thread buys no parallelism — it only costs context
  /// switches, IoMutex handoffs, and idle-wakeup churn. The pump runs
  /// whenever the queue drains and every PumpEvery expansions while busy,
  /// which bounds both delivery latency and outbox staleness.
  void soloShardLoop() {
    constexpr uint64_t PumpEvery = 32;
    Worker &W = *Workers[0];
    size_t NextWorker = 0;
    uint64_t SincePump = 0;
    while (true) {
      const Node *N =
          Abort.load(std::memory_order_acquire) ? nullptr : popLocal(W);
      if (!N) {
        // Idle (or aborted locally): keep pumping so peers' deliveries
        // are acknowledged and the coordinator's Drain is seen — only
        // its command ends a sharded run.
        bool GotWork = false;
        if (pumpOnce(NextWorker, GotWork))
          return;
        if (!GotWork)
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        SincePump = 0;
        continue;
      }
      expandPopped(N, W);
      if (++SincePump >= PumpEvery) {
        SincePump = 0;
        bool GotWork = false;
        if (pumpOnce(NextWorker, GotWork))
          return;
      }
    }
  }

  /// One transport-pump iteration: snapshot shard status, exchange frames
  /// with the coordinator, and inject routed deliveries into the local
  /// frontier. Returns true when the coordinator ended the run (Abort has
  /// been raised); GotWork reports whether any configs were delivered.
  bool pumpOnce(size_t &NextWorker, bool &GotWork) {
    ShardStatus St;
    bool Idle = InFlight.load(std::memory_order_acquire) == 0;
    St.Failed = FailWon.load(std::memory_order_acquire);
    St.Exhausted = ExhaustedFlag.load(std::memory_order_acquire);
    St.Idle = Idle || St.Failed || St.Exhausted;
    St.Expanded = Expanded.load(std::memory_order_relaxed);
    St.SentConfigs = SentConfigs.load(std::memory_order_relaxed);
    St.RecvConfigs = RecvConfigs.load(std::memory_order_relaxed);
    St.SuppressedSends = SuppressedSendsCtr.load(std::memory_order_relaxed);

    std::vector<ShardDelivery> Incoming;
    ShardCommand Cmd;
    {
      std::lock_guard<std::mutex> Lock(IoMutex);
      Cmd = Io->pump(St, Incoming);
    }
    GotWork = !Incoming.empty();

    for (ShardDelivery &Delivery : Incoming) {
      // Count every delivery, even ones dropped after a local abort:
      // the coordinator balances sent-vs-received before terminating.
      RecvConfigs.fetch_add(1, std::memory_order_relaxed);
      if (Abort.load(std::memory_order_acquire))
        continue;
      // The transport owns wire decoding (it holds the per-peer
      // dictionaries); a framing or dictionary error it detected
      // mid-stream arrives as a Malformed delivery and fails the run.
      if (Delivery.Malformed) {
        failGlobal(nullptr, "",
                   "malformed frontier config received from a peer "
                   "shard");
        continue;
      }
      bool Counts = Delivery.Config.Counts;
      Config C = fromFrontier(std::move(Delivery.Config));
      // The wire carries the sender's identity hash; the hash function
      // is process-stable and the fleet is one forked binary, so adopt
      // it rather than re-walking the structure. (rehash also refreshes
      // GSHash, but a received config is owned here by construction and
      // never re-routed, so that field is not needed.)
      if (Delivery.Fp != 0)
        C.Hash = Delivery.Fp;
      else
        C.rehash();
      // Senders ship canonical forms; canonicalizing again is an
      // idempotent no-op kept as a safety net for mixed-version peers.
      canonicalize(C);
      // Remote configs carry no parent chain: a failure found beyond
      // this point reports the local schedule suffix only. The sender's
      // Counts flag rides along so dedup accounting keeps parity with
      // the in-process engine (see enqueue).
      insertLocal(std::move(C), nullptr, "",
                  *Workers[NextWorker++ % Workers.size()], Counts);
    }

    if (Cmd != ShardCommand::Continue) {
      if (Cmd == ShardCommand::DrainExhausted)
        ExhaustedFlag.store(true);
      Abort.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Publishes the first safety failure: the winning worker records the
  /// note and reconstructs the schedule from its parent chain; everyone
  /// else just stops.
  void failGlobal(const Node *At, std::string FailingStep,
                  std::string Note) {
    bool Expected = false;
    if (FailWon.compare_exchange_strong(Expected, true)) {
      Res.Safe = false;
      Res.FailureNote = std::move(Note);
      std::vector<std::string> Steps;
      if (!FailingStep.empty())
        Steps.push_back(std::move(FailingStep));
      for (const Node *Cur = At; Cur; Cur = Cur->Parent)
        if (!Cur->Step.empty())
          Steps.push_back(Cur->Step);
      Res.FailureTrace.assign(Steps.rbegin(), Steps.rend());
    }
    Abort.store(true, std::memory_order_release);
  }

  /// The static-footprint universe for partial-order reduction: the
  /// footprints of every atomic action syntactically reachable from the
  /// root program (through binds, branches, pars, hides, and calls) plus
  /// every interference-enabled environment transition. A step whose
  /// dynamic footprint is independent of all of them is independent of
  /// anything any *other* agent could ever do — past or future — which is
  /// the condition for exploring it alone (a "local move", generalizing
  /// the administrative-step argument). The strong universal form needs no
  /// cycle proviso: it rules out the classic ignoring problem, because no
  /// deferred step can ever depend on an ample one.
  struct Universe {
    bool AllKnown = false;
    std::vector<Footprint> Fps;
  };

  void collectUniverse(const ProgRef &Root) {
    Uni.AllKnown = true;
    Uni.Fps.clear();
    std::set<std::string> Defined;
    if (Opts.Defs)
      for (const std::string &Name : Opts.Defs->names())
        Defined.insert(Name);
    std::unordered_set<const Prog *> Seen;
    std::set<std::string> SeenDefs;
    std::vector<const Prog *> Stack{Root.get()};
    while (!Stack.empty()) {
      const Prog *P = Stack.back();
      Stack.pop_back();
      if (!P || !Seen.insert(P).second)
        continue;
      switch (P->kind()) {
      case Prog::Kind::Ret:
        break;
      case Prog::Kind::Act: {
        const Footprint &F = P->action()->staticFootprint();
        if (F.known())
          Uni.Fps.push_back(F);
        else
          Uni.AllKnown = false;
        break;
      }
      case Prog::Kind::Bind:
        Stack.push_back(P->first().get());
        Stack.push_back(P->rest().get());
        break;
      case Prog::Kind::If:
        Stack.push_back(P->thenProg().get());
        Stack.push_back(P->elseProg().get());
        break;
      case Prog::Kind::Par:
        Stack.push_back(P->left().get());
        Stack.push_back(P->right().get());
        break;
      case Prog::Kind::Call:
        if (SeenDefs.insert(P->callee()).second) {
          if (Defined.count(P->callee()))
            Stack.push_back(Opts.Defs->lookup(P->callee()).Body.get());
          else
            Uni.AllKnown = false; // Engine would assert on execution.
        }
        break;
      case Prog::Kind::Hide:
        Stack.push_back(P->body().get());
        break;
      }
    }
    if (Opts.EnvInterference && Opts.Ambient) {
      for (const Transition &T : Opts.Ambient->transitions()) {
        if (!T.isEnvEnabled() || T.name() == "idle")
          continue;
        const Footprint &F = T.staticFootprint();
        if (F.known())
          Uni.Fps.push_back(F);
        else
          Uni.AllKnown = false;
      }
    }
  }

  /// Is \p F independent of every step any other agent could ever take?
  bool globallyIndependent(const Footprint &F) const {
    if (!Uni.AllKnown || !F.known())
      return false;
    for (const Footprint &U : Uni.Fps)
      if (!fpIndependent(F, U))
        return false;
    return true;
  }

  /// The dynamic counterpart of the static universe (DESIGN.md §12): the
  /// deduplicated *observed* footprints of every environment transition
  /// instance enabled anywhere in the env-only future of a global state.
  /// Environment transitions read and write only the instrumented state
  /// (never thread stacks), so the closure is a pure function of the
  /// GlobalState — which is what makes it memoizable. `Ok` is false when
  /// the closure left the state cap or met a transition with no dynamic
  /// footprint; both mean "never take a dynamic ample here".
  struct EnvClosure {
    bool Ok = false;
    std::vector<Footprint> Fps;
  };

  /// Computes the env-only closure of \p GS0: a BFS over applyEnv
  /// successors (coherence-filtered, like the explorer itself) that
  /// collects each enabled transition's dynamic footprint at each
  /// reachable state. Instances that merely repeat an already-collected
  /// footprint are deduplicated — the independence check downstream only
  /// cares about the footprint set.
  EnvClosure computeEnvClosure(const GlobalState &GS0) const {
    EnvClosure R;
    if (!Opts.EnvInterference || !Opts.Ambient) {
      R.Ok = true;
      return R;
    }
    std::unordered_map<size_t, std::vector<GlobalState>> Visited;
    auto Visit = [&](const GlobalState &G) {
      size_t H = 0;
      G.hashInto(H);
      std::vector<GlobalState> &Bucket = Visited[H];
      for (const GlobalState &X : Bucket)
        if (X == G)
          return false;
      Bucket.push_back(G);
      return true;
    };
    std::vector<GlobalState> Queue{GS0};
    Visit(GS0);
    const std::vector<Transition> &Ts = Opts.Ambient->transitions();
    size_t States = 0;
    while (!Queue.empty()) {
      if (++States > ClosureStateCap)
        return R; // Ok stays false: closure too large to certify.
      GlobalState G = std::move(Queue.back());
      Queue.pop_back();
      View EnvView = G.viewForEnv();
      for (const Transition &T : Ts) {
        if (!T.isEnvEnabled() || T.name() == "idle")
          continue;
        std::vector<View> Posts = T.successors(EnvView);
        if (Posts.empty())
          continue;
        Footprint F = T.footprint(EnvView);
        if (!F.known())
          return R; // An undescribed step in the future: never ample.
        bool Dup = false;
        for (const Footprint &X : R.Fps)
          if (X == F) {
            Dup = true;
            break;
          }
        if (!Dup)
          R.Fps.push_back(std::move(F));
        for (const View &Post : Posts) {
          if (!Opts.Ambient->coherent(Post))
            continue;
          GlobalState NG = G;
          NG.applyEnv(EnvView, Post);
          if (Visit(NG))
            Queue.push_back(std::move(NG));
        }
      }
    }
    R.Ok = true;
    return R;
  }

  /// Memoized computeEnvClosure: thread stacks vary far more than the
  /// instrumented state, so the same GlobalState recurs across many
  /// configurations. Striped and capped like the orbit cache; a hash
  /// collision recomputes, never returns a wrong closure.
  EnvClosure envClosureFor(const GlobalState &GS) {
    size_t H = 0;
    GS.hashInto(H);
    ClosureStripe &S = Closure[H % ClosureStripeCount];
    {
      std::lock_guard<std::mutex> Lock(S.M);
      auto It = S.Map.find(H);
      if (It != S.Map.end() && It->second.first == GS)
        return It->second.second;
    }
    EnvClosure R = computeEnvClosure(GS);
    std::lock_guard<std::mutex> Lock(S.M);
    if (S.Map.size() >= ClosureCapPerStripe)
      S.Map.clear();
    S.Map[H] = {GS, R};
    return R;
  }

  /// One successor built by a thread's action step, before enqueueing.
  struct BuiltSucc {
    Config Next;
    std::string Step;
    bool LabelsChanged; ///< the admin cascade installed/uninstalled a label.
    bool Mirror = false; ///< symmetry join-expansion extra: the swapped
                         ///< pair order of a symmetric join. Excluded from
                         ///< ActionSteps (it is the same action step).
  };

  /// Builds every successor of thread \p T's pending action (all
  /// outcomes), without counting or enqueueing. Returns false when a
  /// safety failure was published (the run is aborting).
  bool buildThreadSuccessors(const Node &N, ThreadId T, const View &Pre,
                             const AtomicAction &A,
                             const std::vector<Val> &Args,
                             const std::string &ArgText,
                             std::vector<BuiltSucc> &Out) {
    const Config &C = N.C;
    std::optional<std::vector<ActOutcome>> Outcomes = A.step(Pre, Args);
    if (!Outcomes) {
      failGlobal(&N,
                 formatString("thread %llu: %s(%s)  <-- UNSAFE",
                              static_cast<unsigned long long>(T),
                              A.name().c_str(), ArgText.c_str()),
                 formatString("action %s is unsafe in the reached state "
                              "(thread %llu):\n%s",
                              A.name().c_str(),
                              static_cast<unsigned long long>(T),
                              Pre.toString().c_str()));
      return false;
    }
    for (const ActOutcome &O : *Outcomes) {
      std::string Step = formatString(
          "thread %llu: %s(%s) -> %s",
          static_cast<unsigned long long>(T), A.name().c_str(),
          ArgText.c_str(), O.Result.toString().c_str());
      Config Next = C;
      Next.GS.applyThread(T, Pre, O.Post);
      if (Opts.CheckStepCoherence && Opts.Ambient &&
          !Opts.Ambient->coherent(Next.GS.viewFor(T))) {
        failGlobal(&N, Step + "  <-- BREAKS COHERENCE",
                   formatString("action %s broke coherence of %s",
                                A.name().c_str(),
                                Opts.Ambient->name().c_str()));
        return false;
      }
      Next.Threads.at(T).Stack.pop_back();
      std::string Err;
      std::vector<Config> Extras;
      if (!deliver(Next, T, O.Result, Err) ||
          !normalize(Next, Err, SymOn ? &Extras : nullptr)) {
        failGlobal(&N, Step + "  <-- FAILS DURING UNWINDING",
                   std::move(Err));
        return false;
      }
      bool LabelsChanged = Next.GS.labels() != C.GS.labels();
      std::string MirrorStep =
          Extras.empty() ? std::string() : Step + " [sym-mirror]";
      Out.push_back(BuiltSucc{std::move(Next), std::move(Step),
                              LabelsChanged, /*Mirror=*/false});
      for (Config &X : Extras) {
        bool XLabelsChanged = X.GS.labels() != C.GS.labels();
        Out.push_back(BuiltSucc{std::move(X), MirrorStep, XLabelsChanged,
                                /*Mirror=*/true});
      }
    }
    return true;
  }

  /// Reduced successor generation: ample singletons layered with sleep
  /// sets (DESIGN.md §9, §12). Candidates are gathered in canonical
  /// order — runnable threads ascending by id, then env transitions in
  /// declaration order. The ample choice is a function of the
  /// configuration alone (never of the sleep set), and step counters are
  /// charged once per (node, candidate) across wakeup replays: together
  /// with the monotone wake merge in insertLocal this makes the explored
  /// node set and every counter converge to the same fixpoint under any
  /// worker schedule.
  void expandPor(const Node &N, const WakeSnapshot &Snap, Worker &W) {
    const Config &C = N.C;
    const ThreadCtx &Main = C.Threads.at(rootThread());
    if (Main.Done) {
      W.Terminals.insert(
          Terminal{*Main.Done, C.GS.viewFor(rootThread())});
      // A terminal must keep stepping the env transitions its last action
      // commutes with: the reduction may have explored that action before
      // a postponed env step, and once the program terminates the
      // commuted traces "env before the last action" — and their distinct
      // final views — would otherwise be lost. Falling through (no
      // runnable threads remain, so only licensed env candidates arise
      // below) recovers exactly those traces' terminals; dependent or
      // unlicensed transitions stop here like the full engine does.
      if (Snap.CloseMask == 0 || !Opts.EnvInterference || !Opts.Ambient)
        return;
    }

    struct Candidate {
      bool IsEnv = false;
      ThreadId T = 0;
      const Prog *ActNode = nullptr;
      const AtomicAction *A = nullptr;
      std::vector<Val> Args;
      std::string ArgText;
      View Pre;
      size_t EnvIdx = 0;
      const Transition *Tr = nullptr;
      Footprint Fp;
      bool Sleeping = false;
    };

    auto SleepingThread = [&](ThreadId T) {
      for (const SleepEntry &E : Snap.Sleep)
        if (!E.IsEnv && E.T == T)
          return true;
      return false;
    };
    auto SleepingEnv = [&](size_t Idx) {
      for (const SleepEntry &E : Snap.Sleep)
        if (E.IsEnv && E.EnvIdx == Idx)
          return true;
      return false;
    };

    // Step-counter identity of a candidate at this node: a thread's
    // pending action is pinned by its stack, so the thread id suffices;
    // env candidates key by transition index.
    auto CandKey = [](const Candidate &K) -> uint64_t {
      return K.IsEnv ? ((uint64_t(1) << 63) | static_cast<uint64_t>(K.EnvIdx))
                     : static_cast<uint64_t>(K.T);
    };

    std::vector<Candidate> Cands;
    for (const auto &Entry : C.Threads) {
      ThreadId T = Entry.first;
      const ThreadCtx &Ctx = Entry.second;
      if (Ctx.Done || Ctx.Waiting)
        continue;
      assert(!Ctx.Stack.empty());
      const Frame &Top = Ctx.Stack.back();
      assert(Top.K == Frame::Kind::Run &&
             Top.Node->kind() == Prog::Kind::Act &&
             "normalized thread must sit at an atomic action");
      Candidate K;
      K.T = T;
      K.ActNode = Top.Node;
      K.A = Top.Node->action().get();
      K.Args.reserve(Top.Node->args().size());
      for (const ExprRef &E : Top.Node->args())
        K.Args.push_back(E->eval(Top.Env));
      for (size_t I = 0, Sz = K.Args.size(); I != Sz; ++I)
        K.ArgText += (I ? ", " : "") + K.Args[I].toString();
      K.Pre = C.GS.viewFor(T);
      K.Fp = K.A->footprint(K.Pre, K.Args);
      K.Sleeping = SleepingThread(T);
      Cands.push_back(std::move(K));
    }
    View EnvView;
    if (Opts.EnvInterference && Opts.Ambient) {
      EnvView = C.GS.viewForEnv();
      const std::vector<Transition> &Ts = Opts.Ambient->transitions();
      for (size_t I = 0, Sz = Ts.size(); I != Sz; ++I) {
        if (!Ts[I].isEnvEnabled() || Ts[I].name() == "idle")
          continue;
        // At a terminal, only transitions licensed by the last action's
        // (merged) close mask may keep firing (see Config::EnvCloseMask).
        if (Main.Done &&
            (I >= 32 || !((Snap.CloseMask >> I) & uint32_t(1))))
          continue;
        Candidate K;
        K.IsEnv = true;
        K.EnvIdx = I;
        K.Tr = &Ts[I];
        K.Fp = Ts[I].footprint(EnvView);
        K.Sleeping = SleepingEnv(I);
        Cands.push_back(std::move(K));
      }
    }

    // The close mask a step with footprint \p Fp grants its terminal
    // successors: one bit per ambient transition the step is independent
    // of (judged against the transition's static, all-instance
    // footprint).
    auto CloseMask = [&](const Footprint &Fp) -> uint32_t {
      if (!Fp.known() || !Opts.EnvInterference || !Opts.Ambient)
        return 0;
      uint32_t Mask = 0;
      const std::vector<Transition> &Ts = Opts.Ambient->transitions();
      size_t Sz = Ts.size() < 32 ? Ts.size() : 32;
      for (size_t I = 0; I != Sz; ++I) {
        if (!Ts[I].isEnvEnabled() || Ts[I].name() == "idle")
          continue;
        if (fpIndependent(Fp, Ts[I].staticFootprint()))
          Mask |= uint32_t(1) << I;
      }
      return Mask;
    };

    // Sleep entries persist across many later configurations, so they
    // record the *static* (all-instance) footprint: a dynamically
    // narrowed footprint describes only the instances enabled where the
    // step executed, and a later step independent of it may enable new
    // instances outside it (e.g. a combiner helping whichever slot holds
    // a request). The dynamic footprint keeps serving the instantaneous
    // sides — the wake filter and the ample checks — where only the step
    // as taken matters (Footprint.h).
    auto StaticFpOf = [](const Candidate &K) -> const Footprint & {
      return K.IsEnv ? K.Tr->staticFootprint() : K.A->staticFootprint();
    };
    auto ToSleepEntry = [&](const Candidate &K) {
      SleepEntry E;
      E.IsEnv = K.IsEnv;
      E.T = K.T;
      E.ActNode = K.ActNode;
      E.EnvIdx = K.EnvIdx;
      E.Fp = StaticFpOf(K);
      return E;
    };

    // How many threads can still act. A waiting thread is pinned until
    // its descendants finish (ids are a binary heap: a parent joins only
    // after both child subtrees are Done), so when exactly one thread is
    // runnable no other *thread* step can precede that thread's next
    // action — every deferred step is an environment step, and the
    // env-only future closure (envClosureFor) describes all of them.
    // That is the dynamic-ample condition below.
    size_t RunnableThreads = 0;
    for (const Candidate &K : Cands)
      if (!K.IsEnv)
        ++RunnableThreads;

    // Ample singleton: the first thread candidate whose step is a local
    // move — statically (independent of the whole universe) or, under
    // --por=dynamic, dynamically (independent of every footprint the
    // environment can ever exhibit from here) — explores alone; the
    // sleep set survives filtered by independence with the chosen step.
    //
    // The choice deliberately ignores the sleep set: eligibility must be
    // a function of the configuration alone so wakeup replays (which only
    // shrink the sleep set) re-derive the same decision and the explored
    // set stays schedule-independent. When the chosen candidate *is*
    // sleeping, nothing is expanded at all — the persistent singleton
    // minus the sleep set is empty, i.e. every continuation from here was
    // already explored where the step went to sleep (Godefroid's
    // persistent/sleep combination).
    //
    // If any outcome's admin cascade changes the label set (hide
    // install/uninstall — a state effect the action's footprint does not
    // describe), fall back to full expansion. A *dynamic-only* ample is
    // also refused when an outcome terminates the program: the trailing
    // close mask may only license statically independent transitions
    // (a dynamic license could fire an instance the pre-action state
    // never enabled), so the last action always expands fully against
    // its env closure instead.
    for (Candidate &K : Cands) {
      if (K.IsEnv)
        continue;
      bool DynAmple = false;
      if (!globallyIndependent(K.Fp)) {
        if (!DynOn || RunnableThreads != 1 || !K.Fp.known())
          continue;
        EnvClosure Cl = envClosureFor(C.GS);
        if (!Cl.Ok)
          continue;
        bool Indep = true;
        for (const Footprint &F : Cl.Fps)
          if (!fpIndependent(K.Fp, F)) {
            Indep = false;
            PorRacesCounter.fetch_add(1, std::memory_order_relaxed);
          }
        if (!Indep) {
          PorBacktracksCounter.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        DynAmple = true;
      }
      std::vector<BuiltSucc> Succ;
      if (!buildThreadSuccessors(N, K.T, K.Pre, *K.A, K.Args, K.ArgText,
                                 Succ))
        return;
      bool LabelsChanged = false;
      bool TerminalSucc = false;
      for (const BuiltSucc &B : Succ) {
        LabelsChanged |= B.LabelsChanged;
        TerminalSucc |= B.Next.Threads.at(rootThread()).Done.has_value();
      }
      if (LabelsChanged)
        break;
      if (DynAmple && TerminalSucc) {
        PorBacktracksCounter.fetch_add(1, std::memory_order_relaxed);
        break; // RunnableThreads == 1: no other thread candidate exists.
      }
      if (K.Sleeping) {
        PorSleepHitsCounter.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      bool Fresh = markExecuted(N, CandKey(K));
      std::vector<SleepEntry> NextSleep;
      for (const SleepEntry &E : Snap.Sleep)
        if (fpIndependent(E.Fp, K.Fp))
          NextSleep.push_back(E);
      if (Fresh)
        for (const BuiltSucc &B : Succ)
          if (!B.Mirror)
            ++W.ActionSteps;
      for (BuiltSucc &B : Succ) {
        B.Next.Sleep = NextSleep;
        // License trailing-env closure on terminal successors: postponed
        // independent env transitions still commute before this step.
        B.Next.EnvCloseMask =
            B.Next.Threads.at(rootThread()).Done.has_value()
                ? CloseMask(K.Fp)
                : 0;
        B.Next.rehash();
        enqueue(std::move(B.Next), &N, std::move(B.Step), W, Fresh);
      }
      return;
    }

    // Full expansion with sleep sets: sleeping candidates are skipped
    // outright (their outcomes were explored where they entered the sleep
    // set and, by independence of everything since, are unchanged here);
    // each executed step puts every earlier independent sibling and every
    // surviving inherited entry to sleep in its successors. Steps whose
    // cascade changes the label set have effects beyond their footprint,
    // so they are treated as dependent on everything.
    PorFullExpansionsCounter.fetch_add(1, std::memory_order_relaxed);
    std::vector<SleepEntry> Taken;
    for (Candidate &K : Cands) {
      if (K.Sleeping) {
        PorSleepHitsCounter.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      bool Fresh = markExecuted(N, CandKey(K));
      std::vector<SleepEntry> NextSleep;
      auto ComputeSleep = [&]() {
        if (!K.Fp.known())
          return;
        // Two env transitions are steps of the *same* agent (the
        // environment): their self/self and owned-region touches alias.
        for (const SleepEntry &E : Snap.Sleep)
          if (fpIndependent(E.Fp, K.Fp, E.IsEnv && K.IsEnv))
            NextSleep.push_back(E);
        for (const SleepEntry &E : Taken)
          if (fpIndependent(E.Fp, K.Fp, E.IsEnv && K.IsEnv))
            NextSleep.push_back(E);
        std::sort(NextSleep.begin(), NextSleep.end(), sleepLess);
      };
      if (!K.IsEnv) {
        std::vector<BuiltSucc> Succ;
        if (!buildThreadSuccessors(N, K.T, K.Pre, *K.A, K.Args, K.ArgText,
                                   Succ))
          return;
        bool LabelsChanged = false;
        for (const BuiltSucc &B : Succ)
          LabelsChanged |= B.LabelsChanged;
        if (!LabelsChanged)
          ComputeSleep();
        if (Fresh)
          for (const BuiltSucc &B : Succ)
            if (!B.Mirror)
              ++W.ActionSteps;
        for (BuiltSucc &B : Succ) {
          B.Next.Sleep = NextSleep;
          B.Next.EnvCloseMask =
              (!LabelsChanged &&
               B.Next.Threads.at(rootThread()).Done.has_value())
                  ? CloseMask(K.Fp)
                  : 0;
          B.Next.rehash();
          enqueue(std::move(B.Next), &N, std::move(B.Step), W, Fresh);
        }
        if (!LabelsChanged && StaticFpOf(K).known())
          Taken.push_back(ToSleepEntry(K));
      } else {
        ComputeSleep();
        for (const View &Post : K.Tr->successors(EnvView)) {
          if (!Opts.Ambient->coherent(Post))
            continue;
          if (Fresh)
            ++W.EnvSteps;
          Config Next = C;
          Next.GS.applyEnv(EnvView, Post);
          Next.Sleep = NextSleep;
          // Trailing-env steps at a terminal stay terminal; the merged
          // close mask keeps licensing further commuting transitions.
          Next.EnvCloseMask = Main.Done ? Snap.CloseMask : 0;
          Next.rehash();
          enqueue(std::move(Next), &N, "env: " + K.Tr->name(), W, Fresh);
        }
        if (StaticFpOf(K).known())
          Taken.push_back(ToSleepEntry(K));
      }
    }
  }

  /// Generates all successors of a normalized configuration.
  void expand(const Node &N, const WakeSnapshot &Snap, Worker &W) {
    if (PorOn)
      return expandPor(N, Snap, W);

    const Config &C = N.C;
    const ThreadCtx &Main = C.Threads.at(rootThread());
    if (Main.Done) {
      W.Terminals.insert(
          Terminal{*Main.Done, C.GS.viewFor(rootThread())});
      return;
    }

    // Thread action steps.
    for (const auto &Entry : C.Threads) {
      ThreadId T = Entry.first;
      const ThreadCtx &Ctx = Entry.second;
      if (Ctx.Done || Ctx.Waiting)
        continue;
      assert(!Ctx.Stack.empty());
      const Frame &Top = Ctx.Stack.back();
      assert(Top.K == Frame::Kind::Run &&
             Top.Node->kind() == Prog::Kind::Act &&
             "normalized thread must sit at an atomic action");
      const AtomicAction &A = *Top.Node->action();
      std::vector<Val> Args;
      Args.reserve(Top.Node->args().size());
      for (const ExprRef &E : Top.Node->args())
        Args.push_back(E->eval(Top.Env));
      std::string ArgText;
      for (size_t I = 0, Sz = Args.size(); I != Sz; ++I)
        ArgText += (I ? ", " : "") + Args[I].toString();

      View Pre = C.GS.viewFor(T);
      std::vector<BuiltSucc> Succ;
      if (!buildThreadSuccessors(N, T, Pre, A, Args, ArgText, Succ))
        return;
      for (BuiltSucc &B : Succ) {
        if (!B.Mirror)
          ++W.ActionSteps;
        B.Next.rehash();
        enqueue(std::move(B.Next), &N, std::move(B.Step), W);
      }
    }

    // Environment interference steps.
    if (Opts.EnvInterference && Opts.Ambient) {
      View EnvView = C.GS.viewForEnv();
      for (const Transition &T : Opts.Ambient->transitions()) {
        if (!T.isEnvEnabled() || T.name() == "idle")
          continue;
        for (const View &Post : T.successors(EnvView)) {
          if (!Opts.Ambient->coherent(Post))
            continue;
          ++W.EnvSteps;
          Config Next = C;
          Next.GS.applyEnv(EnvView, Post);
          Next.rehash();
          enqueue(std::move(Next), &N, "env: " + T.name(), W);
        }
      }
    }
  }

  const EngineOptions &Opts;
  RunResult &Res;
  bool PorOn = false;
  bool DynOn = false;
  bool SymOn = false;
  Universe Uni;

  /// The env-closure memo (see envClosureFor): striped, verified, capped.
  struct ClosureStripe {
    std::mutex M;
    std::unordered_map<size_t, std::pair<GlobalState, EnvClosure>> Map;
  };
  static constexpr size_t ClosureStripeCount = 16;
  static constexpr size_t ClosureCapPerStripe = 4096;
  static constexpr size_t ClosureStateCap = 4096;
  ClosureStripe Closure[ClosureStripeCount];

  /// The orbit cache: striped, verified, capped. Entries map a raw config
  /// to its canonical form (nullopt when the raw form is already
  /// canonical — the common case, kept cheap).
  struct OrbitEntry {
    Config Raw;
    std::optional<Config> Canon;
  };
  struct OrbitStripe {
    std::mutex M;
    std::unordered_map<size_t, OrbitEntry> Map;
  };
  static constexpr size_t OrbitStripeCount = 16;
  static constexpr size_t OrbitCapPerStripe = 4096;
  OrbitStripe Orbit[OrbitStripeCount];
  unsigned NumShards = 1;
  std::vector<Shard> Shards;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<uint64_t> Expanded{0};
  std::atomic<int64_t> InFlight{0};
  std::atomic<bool> Abort{false};
  std::atomic<bool> ExhaustedFlag{false};
  std::atomic<bool> FailWon{false};

  // Multi-process sharding state (inert when DistN == 1).
  unsigned DistId = 0;
  unsigned DistN = 1;
  ShardIo *Io = nullptr;
  std::unique_ptr<ProgTable> PT;
  std::mutex IoMutex; ///< serializes workers' send() against ioLoop's pump().
  std::atomic<uint64_t> SentConfigs{0};
  std::atomic<uint64_t> RecvConfigs{0};
  std::atomic<uint64_t> SuppressedSendsCtr{0};
  /// What this shard has already shipped per remote-owned fingerprint:
  /// the intersection of all sent sleep sets and the union of all sent
  /// close masks (guarded by IoMutex). A candidate re-send inside this
  /// envelope would be a guaranteed no-op at the owner and is swallowed.
  struct ShippedState {
    std::vector<SleepEntry> SleepLower;
    uint32_t MaskUpper = 0;
  };
  std::unordered_map<uint64_t, ShippedState> Shipped;
};

} // namespace

std::string RunResult::renderTrace() const {
  std::string Out;
  for (size_t I = 0, N = FailureTrace.size(); I != N; ++I)
    Out += formatString("  %2zu. %s\n", I + 1, FailureTrace[I].c_str());
  return Out;
}

namespace {

/// Terminal sets are sorted; equality via the strict weak order.
bool sameTerminals(const std::vector<Terminal> &A,
                   const std::vector<Terminal> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (A[I] < B[I] || B[I] < A[I])
      return false;
  return true;
}

} // namespace

RunResult fcsl::explore(const ProgRef &Root, const GlobalState &Initial,
                        const EngineOptions &Opts, const VarEnv &InitialEnv) {
  assert(Root && "explore needs a program");
  PorMode Mode = Opts.Por == PorMode::Default ? defaultPorMode() : Opts.Por;

  if (Mode == PorMode::Check || Mode == PorMode::CheckDynamic) {
    // The soundness cross-check harness: run both explorations and demand
    // the same verdict — and, when both complete, the same terminals. The
    // full run's result is returned (it is the ground truth); a mismatch
    // forces Safe = false so verification sessions fail loudly. Check
    // cross-validates the static reduction, CheckDynamic the dynamic one.
    EngineOptions Sub = Opts;
    Sub.Por = PorMode::Off;
    RunResult Full = explore(Root, Initial, Sub, InitialEnv);
    Sub.Por =
        Mode == PorMode::CheckDynamic ? PorMode::Dynamic : PorMode::On;
    RunResult Reduced = explore(Root, Initial, Sub, InitialEnv);
    CheckFullCounter.fetch_add(Full.ConfigsExplored,
                               std::memory_order_relaxed);
    CheckReducedCounter.fetch_add(Reduced.ConfigsExplored,
                                  std::memory_order_relaxed);
    RunResult Res = Full;
    Res.PorChecked = true;
    Res.PorDynamic = Mode == PorMode::CheckDynamic;
    Res.ConfigsFull = Full.ConfigsExplored;
    Res.ConfigsReduced = Reduced.ConfigsExplored;
    bool Agree =
        Full.Safe == Reduced.Safe && Full.Exhausted == Reduced.Exhausted &&
        (!Full.complete() ||
         sameTerminals(Full.Terminals, Reduced.Terminals));
    if (!Agree) {
      Res.PorMismatch = true;
      Res.Safe = false;
      Res.FailureNote = formatString(
          "partial-order reduction soundness cross-check failed: full "
          "exploration (safe=%d exhausted=%d, %zu terminals, %llu configs) "
          "disagrees with reduced exploration (safe=%d exhausted=%d, %zu "
          "terminals, %llu configs)",
          int(Full.Safe), int(Full.Exhausted), Full.Terminals.size(),
          static_cast<unsigned long long>(Full.ConfigsExplored),
          int(Reduced.Safe), int(Reduced.Exhausted),
          Reduced.Terminals.size(),
          static_cast<unsigned long long>(Reduced.ConfigsExplored));
    }
    return Res;
  }

  SymMode Sym =
      Opts.Symmetry == SymMode::Default ? defaultSymmetryMode() : Opts.Symmetry;
  if (Sym == SymMode::Check) {
    // Symmetry soundness cross-check, mirroring the POR harness above: the
    // full (uncanonicalized) exploration is ground truth; the canonical run
    // must agree on the verdict and, when both complete, on the terminal
    // set. Runs under whatever POR mode was resolved, so `check` also
    // exercises the POR x symmetry composition.
    EngineOptions Sub = Opts;
    Sub.Por = Mode;
    Sub.Symmetry = SymMode::Off;
    RunResult Full = explore(Root, Initial, Sub, InitialEnv);
    Sub.Symmetry = SymMode::On;
    RunResult Canonical = explore(Root, Initial, Sub, InitialEnv);
    SymCheckFullCounter.fetch_add(Full.ConfigsExplored,
                                  std::memory_order_relaxed);
    SymCheckCanonicalCounter.fetch_add(Canonical.ConfigsExplored,
                                       std::memory_order_relaxed);
    RunResult Res = Full;
    Res.SymChecked = true;
    Res.SymConfigsFull = Full.ConfigsExplored;
    Res.SymConfigsCanonical = Canonical.ConfigsExplored;
    bool Agree =
        Full.Safe == Canonical.Safe &&
        Full.Exhausted == Canonical.Exhausted &&
        (!Full.complete() ||
         sameTerminals(Full.Terminals, Canonical.Terminals));
    if (!Agree) {
      Res.SymMismatch = true;
      Res.Safe = false;
      Res.FailureNote = formatString(
          "symmetry reduction soundness cross-check failed: full "
          "exploration (safe=%d exhausted=%d, %zu terminals, %llu configs) "
          "disagrees with canonical exploration (safe=%d exhausted=%d, %zu "
          "terminals, %llu configs)",
          int(Full.Safe), int(Full.Exhausted), Full.Terminals.size(),
          static_cast<unsigned long long>(Full.ConfigsExplored),
          int(Canonical.Safe), int(Canonical.Exhausted),
          Canonical.Terminals.size(),
          static_cast<unsigned long long>(Canonical.ConfigsExplored));
    }
    return Res;
  }

  EngineOptions RunOpts = Opts;
  RunOpts.Por = Mode;
  RunOpts.Symmetry = Sym;

  // Multi-process sharding: hand the whole run to the coordinator hook.
  // Refused inside a parallel region — forking requires a single-threaded
  // parent, and obligation fan-outs already clamp to serial when shards
  // are configured (Session/Verifier).
  unsigned NShards = RunOpts.Shards ? RunOpts.Shards : defaultShards();
  ShardedExploreFn Hook = ShardedHook.load(std::memory_order_relaxed);
  if (NShards > 1 && Hook && !inParallelRegion()) {
    RunOpts.Shards = NShards;
    RunResult Res = Hook(Root, Initial, RunOpts, InitialEnv, NShards);
    Res.MaxConfigsBound = Opts.MaxConfigs;
    Res.PorReduced = Mode == PorMode::On || Mode == PorMode::Dynamic;
    Res.PorDynamic = Mode == PorMode::Dynamic;
    if (Res.PorReduced)
      Res.ConfigsReduced = Res.ConfigsExplored;
    else
      Res.ConfigsFull = Res.ConfigsExplored;
    Res.SymReduced = Sym == SymMode::On;
    if (Res.SymReduced)
      Res.SymConfigsCanonical = Res.ConfigsExplored;
    else
      Res.SymConfigsFull = Res.ConfigsExplored;
    notePeakVisited(Res.VisitedNodes, Res.VisitedBytes);
    TotalConfigsCounter.fetch_add(Res.ConfigsExplored,
                                  std::memory_order_relaxed);
    return Res;
  }

  RunResult Res;
  Res.MaxConfigsBound = Opts.MaxConfigs;
  Res.PorReduced = Mode == PorMode::On || Mode == PorMode::Dynamic;
  Res.PorDynamic = Mode == PorMode::Dynamic;
  Res.SymReduced = Sym == SymMode::On;
  Explorer E(RunOpts, Res);
  E.run(Root, Initial, InitialEnv);
  if (Res.PorReduced)
    Res.ConfigsReduced = Res.ConfigsExplored;
  else
    Res.ConfigsFull = Res.ConfigsExplored;
  if (Res.SymReduced)
    Res.SymConfigsCanonical = Res.ConfigsExplored;
  else
    Res.SymConfigsFull = Res.ConfigsExplored;
  TotalConfigsCounter.fetch_add(Res.ConfigsExplored,
                                std::memory_order_relaxed);
  return Res;
}

RunResult fcsl::exploreShard(const ProgRef &Root, const GlobalState &Initial,
                             const EngineOptions &Opts,
                             const VarEnv &InitialEnv, unsigned ShardId,
                             unsigned NShards, ShardIo &Io) {
  assert(Root && "exploreShard needs a program");
  assert(NShards > 0 && ShardId < NShards && "bad shard coordinates");
  PorMode Mode = Opts.Por == PorMode::Default ? defaultPorMode() : Opts.Por;
  assert(Mode != PorMode::Check && Mode != PorMode::CheckDynamic &&
         "the coordinator resolves Check before sharding");
  if (Mode == PorMode::Check || Mode == PorMode::CheckDynamic)
    Mode = PorMode::Off;
  SymMode Sym =
      Opts.Symmetry == SymMode::Default ? defaultSymmetryMode() : Opts.Symmetry;
  assert(Sym != SymMode::Check &&
         "the coordinator resolves symmetry Check before sharding");
  if (Sym == SymMode::Check)
    Sym = SymMode::Off;
  RunResult Res;
  Res.MaxConfigsBound = Opts.MaxConfigs;
  Res.PorReduced = Mode == PorMode::On || Mode == PorMode::Dynamic;
  Res.PorDynamic = Mode == PorMode::Dynamic;
  Res.SymReduced = Sym == SymMode::On;
  EngineOptions RunOpts = Opts;
  RunOpts.Por = Mode;
  RunOpts.Symmetry = Sym;
  Explorer E(RunOpts, Res);
  E.setDist(ShardId, NShards, &Io);
  E.run(Root, Initial, InitialEnv);
  if (Res.PorReduced)
    Res.ConfigsReduced = Res.ConfigsExplored;
  else
    Res.ConfigsFull = Res.ConfigsExplored;
  if (Res.SymReduced)
    Res.SymConfigsCanonical = Res.ConfigsExplored;
  else
    Res.SymConfigsFull = Res.ConfigsExplored;
  // No TotalConfigsCounter update: the shard runs in a forked child whose
  // counters die with it; the coordinator accounts the merged run in the
  // parent (see explore()'s hook path).
  return Res;
}

SimResult fcsl::simulate(const ProgRef &Root, const GlobalState &Initial,
                         const EngineOptions &Opts, uint64_t Seed,
                         uint64_t MaxSteps, const VarEnv &InitialEnv) {
  assert(Root && "simulate needs a program");
  RunResult Res;
  Explorer E(Opts, Res);
  return E.simulateRun(Root, Initial, InitialEnv, Seed, MaxSteps);
}
