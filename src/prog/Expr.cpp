//===- prog/Expr.cpp - Pure expressions of the embedded language ----------===//
//
// Part of fcsl-cpp. See Expr.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "prog/Expr.h"

#include "support/Intern.h"

#include <cassert>

using namespace fcsl;

namespace {

uint64_t exprSalt() {
  static const uint64_t Salt = fpString("fcsl.expr");
  return Salt;
}

uint64_t fpKind(Expr::Kind K) {
  return fpCombine(exprSalt(), static_cast<uint64_t>(K));
}

} // namespace

std::shared_ptr<Expr> Expr::makeNode(Kind K) {
  return std::shared_ptr<Expr>(new Expr(K));
}

ExprRef Expr::lit(Val V) {
  auto E = makeNode(Kind::Lit);
  E->Fp = fpCombine(fpKind(Kind::Lit), V.fingerprint());
  E->Literal = std::move(V);
  return E;
}

ExprRef Expr::var(std::string Name) {
  auto E = makeNode(Kind::Var);
  E->Fp = fpCombine(fpKind(Kind::Var), fpString(Name));
  E->Name = std::move(Name);
  return E;
}

ExprRef Expr::makeUnary(Kind K, ExprRef A) {
  assert(A && "unary expression needs an operand");
  auto E = makeNode(K);
  E->Fp = fpCombine(fpKind(K), A->Fp);
  E->A = std::move(A);
  return E;
}

ExprRef Expr::makeBinary(Kind K, ExprRef A, ExprRef B) {
  assert(A && B && "binary expression needs two operands");
  auto E = makeNode(K);
  E->Fp = fpCombine(fpCombine(fpKind(K), A->Fp), B->Fp);
  E->A = std::move(A);
  E->B = std::move(B);
  return E;
}

ExprRef Expr::fst(ExprRef E) { return makeUnary(Kind::Fst, std::move(E)); }
ExprRef Expr::snd(ExprRef E) { return makeUnary(Kind::Snd, std::move(E)); }
ExprRef Expr::notE(ExprRef E) { return makeUnary(Kind::Not, std::move(E)); }
ExprRef Expr::isNull(ExprRef E) {
  return makeUnary(Kind::IsNull, std::move(E));
}
ExprRef Expr::eq(ExprRef A, ExprRef B) {
  return makeBinary(Kind::Eq, std::move(A), std::move(B));
}
ExprRef Expr::mkPair(ExprRef A, ExprRef B) {
  return makeBinary(Kind::MkPair, std::move(A), std::move(B));
}
ExprRef Expr::add(ExprRef A, ExprRef B) {
  return makeBinary(Kind::Add, std::move(A), std::move(B));
}
ExprRef Expr::lt(ExprRef A, ExprRef B) {
  return makeBinary(Kind::Lt, std::move(A), std::move(B));
}

Val Expr::eval(const VarEnv &Env) const {
  switch (K) {
  case Kind::Lit:
    return Literal;
  case Kind::Var: {
    auto It = Env.find(Name);
    assert(It != Env.end() && "unbound variable in embedded program");
    return It->second;
  }
  case Kind::Fst:
    return A->eval(Env).first();
  case Kind::Snd:
    return A->eval(Env).second();
  case Kind::Not:
    return Val::ofBool(!A->eval(Env).getBool());
  case Kind::Eq:
    return Val::ofBool(A->eval(Env) == B->eval(Env));
  case Kind::IsNull:
    return Val::ofBool(A->eval(Env).getPtr().isNull());
  case Kind::MkPair:
    return Val::pair(A->eval(Env), B->eval(Env));
  case Kind::Add:
    return Val::ofInt(A->eval(Env).getInt() + B->eval(Env).getInt());
  case Kind::Lt:
    return Val::ofBool(A->eval(Env).getInt() < B->eval(Env).getInt());
  }
  assert(false && "unknown expression kind");
  return Val();
}

std::string Expr::toString() const {
  switch (K) {
  case Kind::Lit:
    return Literal.toString();
  case Kind::Var:
    return Name;
  case Kind::Fst:
    return A->toString() + ".1";
  case Kind::Snd:
    return A->toString() + ".2";
  case Kind::Not:
    return "~~" + A->toString();
  case Kind::Eq:
    return "(" + A->toString() + " == " + B->toString() + ")";
  case Kind::IsNull:
    return "(" + A->toString() + " == null)";
  case Kind::MkPair:
    return "(" + A->toString() + ", " + B->toString() + ")";
  case Kind::Add:
    return "(" + A->toString() + " + " + B->toString() + ")";
  case Kind::Lt:
    return "(" + A->toString() + " < " + B->toString() + ")";
  }
  assert(false && "unknown expression kind");
  return "<?>";
}
