//===- prog/Prog.h - The FCSL command language ------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The monadic command layer of the embedded language, mirroring the
/// combinators of the paper's Figure 3: `ret`, atomic-action invocation,
/// monadic bind (`x <-- e1; e2`), conditionals, parallel composition
/// (`par`, with an explicit subjective split of the self contribution),
/// general recursion (`ffix`, realized as calls into a definition table),
/// and scoped concurroid installation (`hide`, Section 3.5).
///
/// Programs are immutable shared ASTs. Recursive calls re-enter the same
/// nodes, which lets the interleaving engine detect cycles (spin loops) by
/// configuration equality — the operational counterpart of the paper's
/// partial-correctness (STsep) reading of specifications.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PROG_PROG_H
#define FCSL_PROG_PROG_H

#include "action/AtomicAction.h"
#include "prog/Expr.h"

namespace fcsl {

class Prog;
using ProgRef = std::shared_ptr<const Prog>;

/// How `par` distributes the parent's self contribution between children:
/// given the parent's view, returns per-label (left, right) splits; labels
/// not mentioned give everything to the left child. The split must
/// recombine to the parent's contribution (checked by the engine).
using SplitFn = std::function<std::map<Label, std::pair<PCMVal, PCMVal>>(
    const View &)>;

/// The static data of a `hide` block (the paper's decoration \Phi and
/// initial auxiliary value, Section 3.5).
struct HideSpec {
  Label Pv = 0;          ///< Priv label donating the heap.
  Label Hidden = 0;      ///< label at which the concurroid is installed.
  PCMTypeRef SelfType;   ///< carrier of the hidden self component.
  ConcurroidRef Installed; ///< protocol governing the hidden label.
  /// The decoration: picks the sub-heap of the caller's private heap to
  /// donate as the hidden joint state. Returning std::nullopt means the
  /// private heap does not satisfy the decoration (a verification failure).
  std::function<std::optional<Heap>(const Heap &)> ChooseDonation;
  PCMVal InitSelf;       ///< initial self value (the paper's \;).
};

/// A named, parameterized program definition (the paper's ffix bodies).
struct FuncDef {
  std::vector<std::string> Params;
  ProgRef Body;
};

/// The table of program definitions; `call` resolves here. Recursion is
/// simply a call to the enclosing definition.
class DefTable {
public:
  void define(std::string Name, FuncDef Def);
  const FuncDef &lookup(const std::string &Name) const;
  bool contains(const std::string &Name) const;

  /// All defined names, sorted (map order). Used by the codec's program
  /// table to enumerate every reachable Prog node deterministically.
  std::vector<std::string> names() const;

private:
  std::map<std::string, FuncDef> Defs;
};

/// A command of the embedded language.
class Prog {
public:
  enum class Kind : uint8_t { Ret, Act, Bind, If, Par, Call, Hide };

  static ProgRef ret(ExprRef E);
  static ProgRef retUnit() { return ret(Expr::unit()); }
  static ProgRef act(ActionRef A, std::vector<ExprRef> Args);
  /// x <-- First; Rest (Var may be "_" for sequencing).
  static ProgRef bind(ProgRef First, std::string Var, ProgRef Rest);
  static ProgRef seq(ProgRef First, ProgRef Rest);
  static ProgRef ifThenElse(ExprRef Cond, ProgRef Then, ProgRef Else);
  static ProgRef par(ProgRef Left, ProgRef Right, SplitFn Split = nullptr);
  static ProgRef call(std::string Fn, std::vector<ExprRef> Args);
  static ProgRef hide(HideSpec Spec, ProgRef Body);

  Kind kind() const { return K; }

  /// Process-stable structural fingerprint, precomputed at construction.
  /// Par splits and hide decorations are opaque closures, so they
  /// contribute only their presence — the fingerprint is a hash key, not
  /// an identity (frames still compare programs by node pointer).
  uint64_t fingerprint() const { return Fp; }

  // Accessors (assert on kind mismatch).
  const ExprRef &retExpr() const;
  const ActionRef &action() const;
  const std::vector<ExprRef> &args() const;
  const ProgRef &first() const;
  const std::string &bindVar() const;
  const ProgRef &rest() const;
  const ExprRef &cond() const;
  const ProgRef &thenProg() const;
  const ProgRef &elseProg() const;
  const ProgRef &left() const;
  const ProgRef &right() const;
  const SplitFn &split() const;
  const std::string &callee() const;
  const HideSpec &hideSpec() const;
  const ProgRef &body() const;

  /// Pretty-prints with the given indentation.
  std::string toString(unsigned Indent = 0) const;

private:
  explicit Prog(Kind K) : K(K) {}
  static std::shared_ptr<Prog> makeNode(Kind K);

  Kind K;
  uint64_t Fp = 0;
  ExprRef E;                 // Ret, If cond
  ActionRef A;               // Act
  std::vector<ExprRef> Args; // Act, Call
  ProgRef P1;                // Bind first / If then / Par left / Hide body
  ProgRef P2;                // Bind rest / If else / Par right
  std::string Name;          // Bind var, Call fn
  SplitFn Split;             // Par
  HideSpec Spec;             // Hide
};

/// Structural equivalence of commands, used by the symmetry layer to decide
/// whether the two branches of a `par` run the same program. Conservative:
/// nodes holding opaque closures (Par splits, Hide decorations) are
/// equivalent only when they are the same node, so a `false` answer merely
/// forgoes reduction, never soundness.
bool progEquivalent(const ProgRef &A, const ProgRef &B);

} // namespace fcsl

#endif // FCSL_PROG_PROG_H
