//===- prog/Expr.h - Pure expressions of the embedded language --*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure (state-free) expressions of the embedded programming fragment. In
/// the paper the host language Coq supplies the pure fragment for free;
/// here we embed a small expression language with variables bound by the
/// monadic `bind` of the command layer. Expressions are shared immutable
/// AST nodes, so engine configurations can be hashed by node identity.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_PROG_EXPR_H
#define FCSL_PROG_EXPR_H

#include "heap/Val.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fcsl {

/// A variable environment: bind-introduced names to values.
using VarEnv = std::map<std::string, Val>;

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// A pure expression.
class Expr {
public:
  enum class Kind : uint8_t {
    Lit,    ///< A constant value.
    Var,    ///< A bound variable.
    Fst,    ///< First projection of a pair.
    Snd,    ///< Second projection of a pair.
    Not,    ///< Boolean negation.
    Eq,     ///< Structural equality (yields Bool).
    IsNull, ///< Pointer null test.
    MkPair, ///< Pair constructor.
    Add,    ///< Integer addition.
    Lt      ///< Integer comparison.
  };

  static ExprRef lit(Val V);
  static ExprRef unit() { return lit(Val::unit()); }
  static ExprRef litInt(int64_t I) { return lit(Val::ofInt(I)); }
  static ExprRef litBool(bool B) { return lit(Val::ofBool(B)); }
  static ExprRef litPtr(Ptr P) { return lit(Val::ofPtr(P)); }
  static ExprRef var(std::string Name);
  static ExprRef fst(ExprRef E);
  static ExprRef snd(ExprRef E);
  static ExprRef notE(ExprRef E);
  static ExprRef eq(ExprRef A, ExprRef B);
  static ExprRef isNull(ExprRef E);
  static ExprRef mkPair(ExprRef A, ExprRef B);
  static ExprRef add(ExprRef A, ExprRef B);
  static ExprRef lt(ExprRef A, ExprRef B);

  Kind kind() const { return K; }

  /// Process-stable structural fingerprint, precomputed at construction.
  /// Structurally equal expressions get equal fingerprints even when they
  /// are distinct AST nodes.
  uint64_t fingerprint() const { return Fp; }

  /// Evaluates under \p Env; asserts on unbound variables and kind errors
  /// (the embedded programs are written by this library's case studies, so
  /// such errors are programming bugs, not verification failures).
  Val eval(const VarEnv &Env) const;

  /// Pretty-prints the expression.
  std::string toString() const;

private:
  explicit Expr(Kind K) : K(K) {}

  static std::shared_ptr<Expr> makeNode(Kind K);
  static ExprRef makeUnary(Kind K, ExprRef A);
  static ExprRef makeBinary(Kind K, ExprRef A, ExprRef B);

  Kind K;
  uint64_t Fp = 0;
  Val Literal;
  std::string Name;
  ExprRef A;
  ExprRef B;
};

} // namespace fcsl

#endif // FCSL_PROG_EXPR_H
