//===- prog/Prog.cpp - The FCSL command language ---------------------------===//
//
// Part of fcsl-cpp. See Prog.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "prog/Prog.h"

#include "support/Intern.h"

#include <cassert>

using namespace fcsl;

namespace {

uint64_t progSalt() {
  static const uint64_t Salt = fpString("fcsl.prog");
  return Salt;
}

uint64_t fpKind(Prog::Kind K) {
  return fpCombine(progSalt(), static_cast<uint64_t>(K));
}

uint64_t fpArgs(uint64_t Fp, const std::vector<ExprRef> &Args) {
  Fp = fpCombine(Fp, Args.size());
  for (const ExprRef &Arg : Args)
    Fp = fpCombine(Fp, Arg->fingerprint());
  return Fp;
}

} // namespace

void DefTable::define(std::string Name, FuncDef Def) {
  assert(Def.Body && "definition needs a body");
  Defs[std::move(Name)] = std::move(Def);
}

const FuncDef &DefTable::lookup(const std::string &Name) const {
  auto It = Defs.find(Name);
  assert(It != Defs.end() && "call to an undefined program");
  return It->second;
}

bool DefTable::contains(const std::string &Name) const {
  return Defs.count(Name) != 0;
}

std::vector<std::string> DefTable::names() const {
  std::vector<std::string> Out;
  Out.reserve(Defs.size());
  for (const auto &Entry : Defs)
    Out.push_back(Entry.first);
  return Out;
}

std::shared_ptr<Prog> Prog::makeNode(Kind K) {
  return std::shared_ptr<Prog>(new Prog(K));
}

ProgRef Prog::ret(ExprRef E) {
  assert(E && "ret needs an expression");
  auto P = makeNode(Kind::Ret);
  P->Fp = fpCombine(fpKind(Kind::Ret), E->fingerprint());
  P->E = std::move(E);
  return P;
}

ProgRef Prog::act(ActionRef A, std::vector<ExprRef> Args) {
  assert(A && "act needs an action");
  assert(A->arity() == Args.size() && "action arity mismatch");
  auto P = makeNode(Kind::Act);
  P->Fp = fpArgs(fpCombine(fpKind(Kind::Act), fpString(A->name())), Args);
  P->A = std::move(A);
  P->Args = std::move(Args);
  return P;
}

ProgRef Prog::bind(ProgRef First, std::string Var, ProgRef Rest) {
  assert(First && Rest && "bind needs two commands");
  auto P = makeNode(Kind::Bind);
  P->Fp = fpCombine(fpCombine(fpCombine(fpKind(Kind::Bind), fpString(Var)),
                              First->fingerprint()),
                    Rest->fingerprint());
  P->P1 = std::move(First);
  P->Name = std::move(Var);
  P->P2 = std::move(Rest);
  return P;
}

ProgRef Prog::seq(ProgRef First, ProgRef Rest) {
  return bind(std::move(First), "_", std::move(Rest));
}

ProgRef Prog::ifThenElse(ExprRef Cond, ProgRef Then, ProgRef Else) {
  assert(Cond && Then && Else && "if needs a condition and two branches");
  auto P = makeNode(Kind::If);
  P->Fp = fpCombine(fpCombine(fpCombine(fpKind(Kind::If), Cond->fingerprint()),
                              Then->fingerprint()),
                    Else->fingerprint());
  P->E = std::move(Cond);
  P->P1 = std::move(Then);
  P->P2 = std::move(Else);
  return P;
}

ProgRef Prog::par(ProgRef Left, ProgRef Right, SplitFn Split) {
  assert(Left && Right && "par needs two commands");
  auto P = makeNode(Kind::Par);
  P->Fp = fpCombine(fpCombine(fpCombine(fpKind(Kind::Par), Left->fingerprint()),
                              Right->fingerprint()),
                    Split != nullptr);
  P->P1 = std::move(Left);
  P->P2 = std::move(Right);
  P->Split = std::move(Split);
  return P;
}

ProgRef Prog::call(std::string Fn, std::vector<ExprRef> Args) {
  auto P = makeNode(Kind::Call);
  P->Fp = fpArgs(fpCombine(fpKind(Kind::Call), fpString(Fn)), Args);
  P->Name = std::move(Fn);
  P->Args = std::move(Args);
  return P;
}

ProgRef Prog::hide(HideSpec Spec, ProgRef Body) {
  assert(Body && "hide needs a body");
  assert(Spec.SelfType && Spec.ChooseDonation && "incomplete hide spec");
  auto P = makeNode(Kind::Hide);
  P->Fp = fpCombine(
      fpCombine(fpCombine(fpCombine(fpKind(Kind::Hide), Spec.Pv), Spec.Hidden),
                Spec.InitSelf.fingerprint()),
      Body->fingerprint());
  P->Spec = std::move(Spec);
  P->P1 = std::move(Body);
  return P;
}

const ExprRef &Prog::retExpr() const {
  assert(K == Kind::Ret && "not a ret");
  return E;
}
const ActionRef &Prog::action() const {
  assert(K == Kind::Act && "not an action invocation");
  return A;
}
const std::vector<ExprRef> &Prog::args() const {
  assert((K == Kind::Act || K == Kind::Call) && "no arguments here");
  return Args;
}
const ProgRef &Prog::first() const {
  assert(K == Kind::Bind && "not a bind");
  return P1;
}
const std::string &Prog::bindVar() const {
  assert(K == Kind::Bind && "not a bind");
  return Name;
}
const ProgRef &Prog::rest() const {
  assert(K == Kind::Bind && "not a bind");
  return P2;
}
const ExprRef &Prog::cond() const {
  assert(K == Kind::If && "not a conditional");
  return E;
}
const ProgRef &Prog::thenProg() const {
  assert(K == Kind::If && "not a conditional");
  return P1;
}
const ProgRef &Prog::elseProg() const {
  assert(K == Kind::If && "not a conditional");
  return P2;
}
const ProgRef &Prog::left() const {
  assert(K == Kind::Par && "not a parallel composition");
  return P1;
}
const ProgRef &Prog::right() const {
  assert(K == Kind::Par && "not a parallel composition");
  return P2;
}
const SplitFn &Prog::split() const {
  assert(K == Kind::Par && "not a parallel composition");
  return Split;
}
const std::string &Prog::callee() const {
  assert(K == Kind::Call && "not a call");
  return Name;
}
const HideSpec &Prog::hideSpec() const {
  assert(K == Kind::Hide && "not a hide");
  return Spec;
}
const ProgRef &Prog::body() const {
  assert(K == Kind::Hide && "not a hide");
  return P1;
}

namespace {

bool exprEquivalent(const ExprRef &A, const ExprRef &B) {
  return A == B || A->fingerprint() == B->fingerprint();
}

bool argsEquivalent(const std::vector<ExprRef> &A,
                    const std::vector<ExprRef> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, N = A.size(); I != N; ++I)
    if (!exprEquivalent(A[I], B[I]))
      return false;
  return true;
}

} // namespace

bool fcsl::progEquivalent(const ProgRef &A, const ProgRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Prog::Kind::Ret:
    return exprEquivalent(A->retExpr(), B->retExpr());
  case Prog::Kind::Act:
    return A->action() == B->action() && argsEquivalent(A->args(), B->args());
  case Prog::Kind::Bind:
    return A->bindVar() == B->bindVar() &&
           progEquivalent(A->first(), B->first()) &&
           progEquivalent(A->rest(), B->rest());
  case Prog::Kind::If:
    return exprEquivalent(A->cond(), B->cond()) &&
           progEquivalent(A->thenProg(), B->thenProg()) &&
           progEquivalent(A->elseProg(), B->elseProg());
  case Prog::Kind::Call:
    return A->callee() == B->callee() && argsEquivalent(A->args(), B->args());
  case Prog::Kind::Par:
  case Prog::Kind::Hide:
    // Opaque closures (splits, decorations) admit no structural comparison;
    // distinct nodes stay inequivalent. Pointer equality was handled above.
    return false;
  }
  assert(false && "unknown command kind");
  return false;
}

std::string Prog::toString(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  switch (K) {
  case Kind::Ret:
    return Pad + "ret " + E->toString();
  case Kind::Act: {
    std::string Out = Pad + A->name() + "(";
    for (size_t I = 0, N = Args.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I]->toString();
    }
    return Out + ")";
  }
  case Kind::Bind:
    if (Name == "_")
      return P1->toString(Indent) + ";;\n" + P2->toString(Indent);
    return Pad + Name + " <-- \n" + P1->toString(Indent + 2) + ";\n" +
           P2->toString(Indent);
  case Kind::If:
    return Pad + "if " + E->toString() + " then\n" +
           P1->toString(Indent + 2) + "\n" + Pad + "else\n" +
           P2->toString(Indent + 2);
  case Kind::Par:
    return Pad + "par(\n" + P1->toString(Indent + 2) + "\n" + Pad + "||\n" +
           P2->toString(Indent + 2) + "\n" + Pad + ")";
  case Kind::Call: {
    std::string Out = Pad + Name + "(";
    for (size_t I = 0, N = Args.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I]->toString();
    }
    return Out + ")";
  }
  case Kind::Hide:
    return Pad + "hide {\n" + P1->toString(Indent + 2) + "\n" + Pad + "}";
  }
  assert(false && "unknown command kind");
  return "<?>";
}
