//===- heap/Val.cpp - Runtime values of the modeled language --------------===//
//
// Part of fcsl-cpp. See Val.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "heap/Val.h"

#include "support/Format.h"
#include "support/Intern.h"

using namespace fcsl;
using fcsl::detail::ValNode;

namespace {

detail::InternArena<ValNode> &arena() {
  // Deliberately leaked: canonical node pointers must outlive every static.
  static auto *A = new detail::InternArena<ValNode>("val");
  return *A;
}

/// Domain-separation salt so Val fingerprints never collide with other
/// node families by construction.
uint64_t valSalt() {
  static const uint64_t Salt = fpString("fcsl.val");
  return Salt;
}

uint64_t fpOf(const ValNode &V) {
  uint64_t Fp = fpCombine(valSalt(), static_cast<uint64_t>(V.K));
  switch (V.K) {
  case Val::Kind::Unit:
    break;
  case Val::Kind::Int:
    Fp = fpCombine(Fp, static_cast<uint64_t>(V.IntVal));
    break;
  case Val::Kind::Bool:
    Fp = fpCombine(Fp, V.BoolVal);
    break;
  case Val::Kind::Pointer:
    Fp = fpCombine(Fp, V.PtrVal.id());
    break;
  case Val::Kind::Node:
    Fp = fpCombine(Fp, V.Node.Marked);
    Fp = fpCombine(Fp, V.Node.Left.id());
    Fp = fpCombine(Fp, V.Node.Right.id());
    break;
  case Val::Kind::Pair:
    Fp = fpCombine(Fp, V.FirstN->Fp);
    Fp = fpCombine(Fp, V.SecondN->Fp);
    break;
  }
  return Fp;
}

const ValNode *intern(ValNode &&V) {
  V.Fp = fpOf(V);
  return arena().intern(std::move(V));
}

} // namespace

bool ValNode::samePayload(const ValNode &O) const {
  if (Fp != O.Fp || K != O.K)
    return false;
  switch (K) {
  case Val::Kind::Unit:
    return true;
  case Val::Kind::Int:
    return IntVal == O.IntVal;
  case Val::Kind::Bool:
    return BoolVal == O.BoolVal;
  case Val::Kind::Pointer:
    return PtrVal == O.PtrVal;
  case Val::Kind::Node:
    return Node == O.Node;
  case Val::Kind::Pair:
    return FirstN == O.FirstN && SecondN == O.SecondN;
  }
  return false;
}

const ValNode *fcsl::detail::valUnitNode() {
  static const ValNode *N = [] {
    ValNode V;
    V.K = Val::Kind::Unit;
    return intern(std::move(V));
  }();
  return N;
}

Val Val::ofInt(int64_t I) {
  ValNode V;
  V.K = Kind::Int;
  V.IntVal = I;
  return Val(intern(std::move(V)));
}

Val Val::ofBool(bool B) {
  ValNode V;
  V.K = Kind::Bool;
  V.BoolVal = B;
  return Val(intern(std::move(V)));
}

Val Val::ofPtr(Ptr P) {
  ValNode V;
  V.K = Kind::Pointer;
  V.PtrVal = P;
  return Val(intern(std::move(V)));
}

Val Val::node(bool Marked, Ptr Left, Ptr Right) {
  ValNode V;
  V.K = Kind::Node;
  V.Node = NodeCell{Marked, Left, Right};
  return Val(intern(std::move(V)));
}

Val Val::pair(Val First, Val Second) {
  ValNode V;
  V.K = Kind::Pair;
  V.FirstN = First.N;
  V.SecondN = Second.N;
  return Val(intern(std::move(V)));
}

Val Val::renamePtrs(const std::map<Ptr, Ptr> &M) const {
  auto Map = [&M](Ptr P) {
    auto It = M.find(P);
    return It == M.end() ? P : It->second;
  };
  switch (N->K) {
  case Kind::Unit:
  case Kind::Int:
  case Kind::Bool:
    return *this;
  case Kind::Pointer: {
    Ptr P = Map(N->PtrVal);
    return P == N->PtrVal ? *this : ofPtr(P);
  }
  case Kind::Node: {
    Ptr L = Map(N->Node.Left), R = Map(N->Node.Right);
    if (L == N->Node.Left && R == N->Node.Right)
      return *this;
    return node(N->Node.Marked, L, R);
  }
  case Kind::Pair: {
    Val First = Val(N->FirstN).renamePtrs(M);
    Val Second = Val(N->SecondN).renamePtrs(M);
    if (First.N == N->FirstN && Second.N == N->SecondN)
      return *this;
    return pair(First, Second);
  }
  }
  assert(false && "unknown value kind");
  return *this;
}

int Val::compare(const Val &Other) const {
  if (N == Other.N)
    return 0;
  if (N->K != Other.N->K)
    return N->K < Other.N->K ? -1 : 1;
  switch (N->K) {
  case Kind::Unit:
    return 0;
  case Kind::Int:
    if (N->IntVal != Other.N->IntVal)
      return N->IntVal < Other.N->IntVal ? -1 : 1;
    return 0;
  case Kind::Bool:
    if (N->BoolVal != Other.N->BoolVal)
      return N->BoolVal < Other.N->BoolVal ? -1 : 1;
    return 0;
  case Kind::Pointer:
    if (N->PtrVal != Other.N->PtrVal)
      return N->PtrVal < Other.N->PtrVal ? -1 : 1;
    return 0;
  case Kind::Node:
    if (!(N->Node == Other.N->Node))
      return N->Node < Other.N->Node ? -1 : 1;
    return 0;
  case Kind::Pair: {
    int First = Val(N->FirstN).compare(Val(Other.N->FirstN));
    if (First != 0)
      return First;
    return Val(N->SecondN).compare(Val(Other.N->SecondN));
  }
  }
  assert(false && "unknown value kind");
  return 0;
}

std::string Val::toString() const {
  switch (N->K) {
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return formatString("%lld", static_cast<long long>(N->IntVal));
  case Kind::Bool:
    return N->BoolVal ? "true" : "false";
  case Kind::Pointer:
    return N->PtrVal.toString();
  case Kind::Node:
    return formatString("{%c, %s, %s}", N->Node.Marked ? 'M' : 'u',
                        N->Node.Left.toString().c_str(),
                        N->Node.Right.toString().c_str());
  case Kind::Pair:
    return "(" + first().toString() + ", " + second().toString() + ")";
  }
  assert(false && "unknown value kind");
  return "<?>";
}
