//===- heap/Val.cpp - Runtime values of the modeled language --------------===//
//
// Part of fcsl-cpp. See Val.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "heap/Val.h"

#include "support/Format.h"

using namespace fcsl;

Val Val::ofInt(int64_t I) {
  Val V;
  V.K = Kind::Int;
  V.IntVal = I;
  return V;
}

Val Val::ofBool(bool B) {
  Val V;
  V.K = Kind::Bool;
  V.BoolVal = B;
  return V;
}

Val Val::ofPtr(Ptr P) {
  Val V;
  V.K = Kind::Pointer;
  V.PtrVal = P;
  return V;
}

Val Val::node(bool Marked, Ptr Left, Ptr Right) {
  Val V;
  V.K = Kind::Node;
  V.Node = NodeCell{Marked, Left, Right};
  return V;
}

Val Val::pair(Val First, Val Second) {
  Val V;
  V.K = Kind::Pair;
  V.PairVal = std::make_shared<const std::pair<Val, Val>>(std::move(First),
                                                          std::move(Second));
  return V;
}

int Val::compare(const Val &Other) const {
  if (K != Other.K)
    return K < Other.K ? -1 : 1;
  switch (K) {
  case Kind::Unit:
    return 0;
  case Kind::Int:
    if (IntVal != Other.IntVal)
      return IntVal < Other.IntVal ? -1 : 1;
    return 0;
  case Kind::Bool:
    if (BoolVal != Other.BoolVal)
      return BoolVal < Other.BoolVal ? -1 : 1;
    return 0;
  case Kind::Pointer:
    if (PtrVal != Other.PtrVal)
      return PtrVal < Other.PtrVal ? -1 : 1;
    return 0;
  case Kind::Node:
    if (!(Node == Other.Node))
      return Node < Other.Node ? -1 : 1;
    return 0;
  case Kind::Pair: {
    int First = PairVal->first.compare(Other.PairVal->first);
    if (First != 0)
      return First;
    return PairVal->second.compare(Other.PairVal->second);
  }
  }
  assert(false && "unknown value kind");
  return 0;
}

void Val::hashInto(std::size_t &Seed) const {
  hashValue(Seed, static_cast<uint8_t>(K));
  switch (K) {
  case Kind::Unit:
    break;
  case Kind::Int:
    hashValue(Seed, IntVal);
    break;
  case Kind::Bool:
    hashValue(Seed, BoolVal);
    break;
  case Kind::Pointer:
    hashValue(Seed, PtrVal.id());
    break;
  case Kind::Node:
    hashValue(Seed, Node.Marked);
    hashValue(Seed, Node.Left.id());
    hashValue(Seed, Node.Right.id());
    break;
  case Kind::Pair:
    PairVal->first.hashInto(Seed);
    PairVal->second.hashInto(Seed);
    break;
  }
}

std::string Val::toString() const {
  switch (K) {
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return formatString("%lld", static_cast<long long>(IntVal));
  case Kind::Bool:
    return BoolVal ? "true" : "false";
  case Kind::Pointer:
    return PtrVal.toString();
  case Kind::Node:
    return formatString("{%c, %s, %s}", Node.Marked ? 'M' : 'u',
                        Node.Left.toString().c_str(),
                        Node.Right.toString().c_str());
  case Kind::Pair:
    return "(" + PairVal->first.toString() + ", " +
           PairVal->second.toString() + ")";
  }
  assert(false && "unknown value kind");
  return "<?>";
}
