//===- heap/Heap.cpp - Heaps as finite maps with disjoint union -----------===//
//
// Part of fcsl-cpp. See Heap.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;

Heap Heap::singleton(Ptr P, Val V) {
  Heap H;
  H.insert(P, std::move(V));
  return H;
}

const Val *Heap::tryLookup(Ptr P) const {
  auto It = Cells.find(P);
  return It == Cells.end() ? nullptr : &It->second;
}

const Val &Heap::lookup(Ptr P) const {
  const Val *V = tryLookup(P);
  assert(V && "lookup of a pointer outside the heap domain");
  return *V;
}

void Heap::update(Ptr P, Val V) {
  auto It = Cells.find(P);
  assert(It != Cells.end() && "update of a pointer outside the heap domain");
  It->second = std::move(V);
}

void Heap::insert(Ptr P, Val V) {
  assert(!P.isNull() && "cannot allocate the null pointer");
  bool Inserted = Cells.emplace(P, std::move(V)).second;
  assert(Inserted && "insert of an already-allocated pointer");
  (void)Inserted;
}

void Heap::remove(Ptr P) {
  size_t Erased = Cells.erase(P);
  assert(Erased == 1 && "free of a pointer outside the heap domain");
  (void)Erased;
}

std::vector<Ptr> Heap::domain() const {
  std::vector<Ptr> Dom;
  Dom.reserve(Cells.size());
  for (const auto &Cell : Cells)
    Dom.push_back(Cell.first);
  return Dom;
}

Ptr Heap::freshPtr() const {
  uint32_t Candidate = 1;
  for (const auto &Cell : Cells) {
    if (Cell.first.id() != Candidate)
      break;
    ++Candidate;
  }
  return Ptr(Candidate);
}

std::optional<Heap> Heap::join(const Heap &A, const Heap &B) {
  if (!disjoint(A, B))
    return std::nullopt;
  Heap Out = A;
  for (const auto &Cell : B.Cells)
    Out.Cells.emplace(Cell.first, Cell.second);
  return Out;
}

Heap Heap::without(const std::vector<Ptr> &Doomed) const {
  Heap Out = *this;
  for (Ptr P : Doomed)
    Out.Cells.erase(P);
  return Out;
}

bool Heap::disjoint(const Heap &A, const Heap &B) {
  const Heap &Small = A.size() <= B.size() ? A : B;
  const Heap &Large = A.size() <= B.size() ? B : A;
  for (const auto &Cell : Small.Cells)
    if (Large.contains(Cell.first))
      return false;
  return true;
}

int Heap::compare(const Heap &Other) const {
  auto AIt = Cells.begin(), AEnd = Cells.end();
  auto BIt = Other.Cells.begin(), BEnd = Other.Cells.end();
  for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return AIt->first < BIt->first ? -1 : 1;
    int ValCmp = AIt->second.compare(BIt->second);
    if (ValCmp != 0)
      return ValCmp;
  }
  if (AIt != AEnd)
    return 1;
  if (BIt != BEnd)
    return -1;
  return 0;
}

void Heap::hashInto(std::size_t &Seed) const {
  hashValue(Seed, Cells.size());
  for (const auto &Cell : Cells) {
    hashValue(Seed, Cell.first.id());
    Cell.second.hashInto(Seed);
  }
}

std::string Heap::toString() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &Cell : Cells) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Cell.first.toString() + " :-> " + Cell.second.toString();
  }
  Out += "}";
  return Out;
}
