//===- heap/Heap.cpp - Heaps as finite maps with disjoint union -----------===//
//
// Part of fcsl-cpp. See Heap.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "heap/Heap.h"

#include "support/Intern.h"

#include <algorithm>
#include <cassert>

using namespace fcsl;
using fcsl::detail::HeapNode;

namespace {

detail::InternArena<HeapNode> &arena() {
  static auto *A = new detail::InternArena<HeapNode>("heap");
  return *A;
}

uint64_t heapSalt() {
  static const uint64_t Salt = fpString("fcsl.heap");
  return Salt;
}

const HeapNode *intern(std::map<Ptr, Val> Cells) {
  HeapNode H;
  uint64_t Fp = fpCombine(heapSalt(), Cells.size());
  for (const auto &Cell : Cells) {
    Fp = fpCombine(Fp, Cell.first.id());
    Fp = fpCombine(Fp, Cell.second.fingerprint());
  }
  H.Cells = std::move(Cells);
  H.Fp = Fp;
  return arena().intern(std::move(H));
}

} // namespace

const HeapNode *fcsl::detail::heapEmptyNode() {
  static const HeapNode *N = intern({});
  return N;
}

Heap Heap::singleton(Ptr P, Val V) {
  Heap H;
  H.insert(P, std::move(V));
  return H;
}

const Val *Heap::tryLookup(Ptr P) const {
  auto It = N->Cells.find(P);
  return It == N->Cells.end() ? nullptr : &It->second;
}

const Val &Heap::lookup(Ptr P) const {
  const Val *V = tryLookup(P);
  assert(V && "lookup of a pointer outside the heap domain");
  return *V;
}

void Heap::update(Ptr P, Val V) {
  std::map<Ptr, Val> Cells = N->Cells;
  auto It = Cells.find(P);
  assert(It != Cells.end() && "update of a pointer outside the heap domain");
  It->second = std::move(V);
  N = intern(std::move(Cells));
}

void Heap::insert(Ptr P, Val V) {
  assert(!P.isNull() && "cannot allocate the null pointer");
  std::map<Ptr, Val> Cells = N->Cells;
  bool Inserted = Cells.emplace(P, std::move(V)).second;
  assert(Inserted && "insert of an already-allocated pointer");
  (void)Inserted;
  N = intern(std::move(Cells));
}

void Heap::remove(Ptr P) {
  std::map<Ptr, Val> Cells = N->Cells;
  size_t Erased = Cells.erase(P);
  assert(Erased == 1 && "free of a pointer outside the heap domain");
  (void)Erased;
  N = intern(std::move(Cells));
}

std::vector<Ptr> Heap::domain() const {
  std::vector<Ptr> Dom;
  Dom.reserve(N->Cells.size());
  for (const auto &Cell : N->Cells)
    Dom.push_back(Cell.first);
  return Dom;
}

Ptr Heap::freshPtr() const {
  uint32_t Candidate = 1;
  for (const auto &Cell : N->Cells) {
    if (Cell.first.id() != Candidate)
      break;
    ++Candidate;
  }
  return Ptr(Candidate);
}

std::optional<Heap> Heap::join(const Heap &A, const Heap &B) {
  if (!disjoint(A, B))
    return std::nullopt;
  if (A.isEmpty())
    return B;
  if (B.isEmpty())
    return A;
  std::map<Ptr, Val> Cells = A.N->Cells;
  for (const auto &Cell : B.N->Cells)
    Cells.emplace(Cell.first, Cell.second);
  return Heap(intern(std::move(Cells)));
}

Heap Heap::without(const std::vector<Ptr> &Doomed) const {
  std::map<Ptr, Val> Cells = N->Cells;
  for (Ptr P : Doomed)
    Cells.erase(P);
  return Heap(intern(std::move(Cells)));
}

bool Heap::disjoint(const Heap &A, const Heap &B) {
  const Heap &Small = A.size() <= B.size() ? A : B;
  const Heap &Large = A.size() <= B.size() ? B : A;
  for (const auto &Cell : Small.N->Cells)
    if (Large.contains(Cell.first))
      return false;
  return true;
}

Heap Heap::renamePtrs(const std::map<Ptr, Ptr> &M) const {
  if (M.empty() || isEmpty())
    return *this;
  auto Map = [&M](Ptr P) {
    auto It = M.find(P);
    return It == M.end() ? P : It->second;
  };
  std::map<Ptr, Val> Cells;
  bool Changed = false;
  for (const auto &Cell : N->Cells) {
    Ptr P = Map(Cell.first);
    Val V = Cell.second.renamePtrs(M);
    Changed |= P != Cell.first || V != Cell.second;
    bool Inserted = Cells.emplace(P, std::move(V)).second;
    assert(Inserted && "pointer renaming must stay injective on the domain");
    (void)Inserted;
  }
  return Changed ? Heap(intern(std::move(Cells))) : *this;
}

int Heap::compare(const Heap &Other) const {
  if (N == Other.N)
    return 0;
  auto AIt = N->Cells.begin(), AEnd = N->Cells.end();
  auto BIt = Other.N->Cells.begin(), BEnd = Other.N->Cells.end();
  for (; AIt != AEnd && BIt != BEnd; ++AIt, ++BIt) {
    if (AIt->first != BIt->first)
      return AIt->first < BIt->first ? -1 : 1;
    int ValCmp = AIt->second.compare(BIt->second);
    if (ValCmp != 0)
      return ValCmp;
  }
  if (AIt != AEnd)
    return 1;
  if (BIt != BEnd)
    return -1;
  return 0;
}

std::string Heap::toString() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &Cell : N->Cells) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Cell.first.toString() + " :-> " + Cell.second.toString();
  }
  Out += "}";
  return Out;
}
