//===- heap/Ptr.cpp - Abstract heap pointers ------------------------------===//
//
// Part of fcsl-cpp. See Ptr.h for the interface.
//
//===----------------------------------------------------------------------===//

#include "heap/Ptr.h"

#include "support/Format.h"

using namespace fcsl;

std::string Ptr::toString() const {
  if (isNull())
    return "null";
  return formatString("&%u", Id);
}
