//===- heap/Heap.h - Heaps as finite maps with disjoint union ---*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heaps are finite maps from pointers to values, forming a PCM under
/// disjoint union with the empty heap as unit (the paper's `heap` PCM,
/// written `\+`). A Heap object is always a valid map; joining overlapping
/// heaps is the *undefined* element and is reported as std::nullopt, which
/// mirrors the partiality of the monoid operation.
///
/// A Heap is a handle to a hash-consed node (support/Intern.h): structurally
/// equal heaps share one canonical node, so copies are O(1) and equality is
/// pointer comparison. The mutating operations build the updated cell map
/// and re-intern it — heaps in the modeled programs are small, and the
/// visited-set probes this makes cheap dominate exploration cost.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_HEAP_HEAP_H
#define FCSL_HEAP_HEAP_H

#include "heap/Val.h"

#include <map>
#include <optional>
#include <vector>

namespace fcsl {

namespace detail {
struct HeapNode;
}

/// A valid heap: a finite map from non-null pointers to values.
class Heap {
public:
  /// Constructs the empty heap (the PCM unit).
  Heap();

  /// Returns a heap with a single cell P :-> V.
  static Heap singleton(Ptr P, Val V);

  bool isEmpty() const;
  size_t size() const;

  /// Returns true if \p P is in the domain.
  bool contains(Ptr P) const;

  /// Returns the cell contents, or nullptr if \p P is not in the domain.
  /// The pointee lives in the arena, so it stays valid even after this
  /// handle is reassigned.
  const Val *tryLookup(Ptr P) const;

  /// Returns the cell contents; asserts that \p P is in the domain.
  const Val &lookup(Ptr P) const;

  /// Writes \p V into cell \p P; asserts the cell exists (no implicit alloc).
  void update(Ptr P, Val V);

  /// Adds a fresh cell P :-> V; asserts \p P is non-null and not present.
  void insert(Ptr P, Val V);

  /// Removes cell \p P (the paper's `free x h`); asserts it exists.
  void remove(Ptr P);

  /// Returns the sorted domain of the heap.
  std::vector<Ptr> domain() const;

  /// Returns the smallest pointer id not in the domain (for allocation).
  Ptr freshPtr() const;

  /// Disjoint union; std::nullopt when the domains overlap (undefinedness of
  /// the PCM join).
  static std::optional<Heap> join(const Heap &A, const Heap &B);

  /// Returns the sub-heap of this heap whose domain is disjoint from \p B's
  /// removal set, i.e. this heap minus the cells listed in \p Doomed.
  Heap without(const std::vector<Ptr> &Doomed) const;

  /// Returns true when the two heaps have disjoint domains.
  static bool disjoint(const Heap &A, const Heap &B);

  /// Rewrites every pointer — domain cells and pointers inside values —
  /// through \p M (pointers absent from the map are kept). Asserts the
  /// renaming stays injective on the domain. Used by the symmetry layer's
  /// canonical renaming of fresh heap names (DESIGN.md §11).
  Heap renamePtrs(const std::map<Ptr, Ptr> &M) const;

  int compare(const Heap &Other) const;
  friend bool operator==(const Heap &A, const Heap &B) { return A.N == B.N; }
  friend bool operator!=(const Heap &A, const Heap &B) { return A.N != B.N; }
  friend bool operator<(const Heap &A, const Heap &B) {
    return A.compare(B) < 0;
  }

  /// The precomputed structural fingerprint (process-stable).
  uint64_t fingerprint() const;

  void hashInto(std::size_t &Seed) const;

  /// Renders as "{&1 :-> v, &2 :-> w}".
  std::string toString() const;

  /// Iteration over (pointer, value) cells in pointer order.
  std::map<Ptr, Val>::const_iterator begin() const;
  std::map<Ptr, Val>::const_iterator end() const;

private:
  explicit Heap(const detail::HeapNode *N) : N(N) {}

  const detail::HeapNode *N; ///< never null; owned by the intern arena.
};

namespace detail {

/// The interned payload of a Heap.
struct HeapNode {
  std::map<Ptr, Val> Cells;
  uint64_t Fp = 0;

  bool samePayload(const HeapNode &O) const {
    // Cell values are canonical handles, so map equality costs one pointer
    // comparison per cell.
    return Fp == O.Fp && Cells == O.Cells;
  }
};

const HeapNode *heapEmptyNode();

} // namespace detail

inline Heap::Heap() : N(detail::heapEmptyNode()) {}
inline bool Heap::isEmpty() const { return N->Cells.empty(); }
inline size_t Heap::size() const { return N->Cells.size(); }
inline bool Heap::contains(Ptr P) const { return N->Cells.count(P) != 0; }
inline uint64_t Heap::fingerprint() const { return N->Fp; }
inline void Heap::hashInto(std::size_t &Seed) const {
  hashCombine(Seed, static_cast<std::size_t>(N->Fp));
}
inline std::map<Ptr, Val>::const_iterator Heap::begin() const {
  return N->Cells.begin();
}
inline std::map<Ptr, Val>::const_iterator Heap::end() const {
  return N->Cells.end();
}

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::Heap> {
  size_t operator()(const fcsl::Heap &H) const {
    return static_cast<size_t>(H.fingerprint());
  }
};
} // namespace std

#endif // FCSL_HEAP_HEAP_H
