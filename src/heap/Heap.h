//===- heap/Heap.h - Heaps as finite maps with disjoint union ---*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heaps are finite maps from pointers to values, forming a PCM under
/// disjoint union with the empty heap as unit (the paper's `heap` PCM,
/// written `\+`). A Heap object is always a valid map; joining overlapping
/// heaps is the *undefined* element and is reported as std::nullopt, which
/// mirrors the partiality of the monoid operation.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_HEAP_HEAP_H
#define FCSL_HEAP_HEAP_H

#include "heap/Val.h"

#include <map>
#include <optional>
#include <vector>

namespace fcsl {

/// A valid heap: a finite map from non-null pointers to values.
class Heap {
public:
  /// Constructs the empty heap (the PCM unit).
  Heap() = default;

  /// Returns a heap with a single cell P :-> V.
  static Heap singleton(Ptr P, Val V);

  bool isEmpty() const { return Cells.empty(); }
  size_t size() const { return Cells.size(); }

  /// Returns true if \p P is in the domain.
  bool contains(Ptr P) const { return Cells.count(P) != 0; }

  /// Returns the cell contents, or nullptr if \p P is not in the domain.
  const Val *tryLookup(Ptr P) const;

  /// Returns the cell contents; asserts that \p P is in the domain.
  const Val &lookup(Ptr P) const;

  /// Writes \p V into cell \p P; asserts the cell exists (no implicit alloc).
  void update(Ptr P, Val V);

  /// Adds a fresh cell P :-> V; asserts \p P is non-null and not present.
  void insert(Ptr P, Val V);

  /// Removes cell \p P (the paper's `free x h`); asserts it exists.
  void remove(Ptr P);

  /// Returns the sorted domain of the heap.
  std::vector<Ptr> domain() const;

  /// Returns the smallest pointer id not in the domain (for allocation).
  Ptr freshPtr() const;

  /// Disjoint union; std::nullopt when the domains overlap (undefinedness of
  /// the PCM join).
  static std::optional<Heap> join(const Heap &A, const Heap &B);

  /// Returns the sub-heap of this heap whose domain is disjoint from \p B's
  /// removal set, i.e. this heap minus the cells listed in \p Doomed.
  Heap without(const std::vector<Ptr> &Doomed) const;

  /// Returns true when the two heaps have disjoint domains.
  static bool disjoint(const Heap &A, const Heap &B);

  int compare(const Heap &Other) const;
  friend bool operator==(const Heap &A, const Heap &B) {
    return A.compare(B) == 0;
  }
  friend bool operator!=(const Heap &A, const Heap &B) {
    return A.compare(B) != 0;
  }
  friend bool operator<(const Heap &A, const Heap &B) {
    return A.compare(B) < 0;
  }

  void hashInto(std::size_t &Seed) const;

  /// Renders as "{&1 :-> v, &2 :-> w}".
  std::string toString() const;

  /// Iteration over (pointer, value) cells in pointer order.
  auto begin() const { return Cells.begin(); }
  auto end() const { return Cells.end(); }

private:
  std::map<Ptr, Val> Cells;
};

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::Heap> {
  size_t operator()(const fcsl::Heap &H) const {
    size_t Seed = 0;
    H.hashInto(Seed);
    return Seed;
  }
};
} // namespace std

#endif // FCSL_HEAP_HEAP_H
