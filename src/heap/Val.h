//===- heap/Val.h - Runtime values of the modeled language ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value universe of the embedded programming fragment and of heap cells:
/// unit, integers, booleans, pointers, graph-node triples (marked bit plus
/// left/right successors, Section 3.2 of the paper), and pairs (results of
/// parallel composition). Values are immutable and totally ordered so they
/// can key the model checker's visited-state sets.
///
/// A Val is a handle to a hash-consed node in the process-wide intern arena
/// (support/Intern.h): structurally equal values share one canonical node,
/// so copies are O(1), equality is pointer comparison, and hashing reads the
/// node's precomputed structural fingerprint.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_HEAP_VAL_H
#define FCSL_HEAP_VAL_H

#include "heap/Ptr.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace fcsl {

namespace detail {
struct ValNode;
}

/// A graph node cell: the "marked" bit plus left/right successor pointers.
/// This is the triple (b, xl, xr) of the paper's `graph` predicate.
struct NodeCell {
  bool Marked = false;
  Ptr Left;
  Ptr Right;

  friend bool operator==(const NodeCell &A, const NodeCell &B) {
    return A.Marked == B.Marked && A.Left == B.Left && A.Right == B.Right;
  }
  friend bool operator<(const NodeCell &A, const NodeCell &B) {
    if (A.Marked != B.Marked)
      return A.Marked < B.Marked;
    if (A.Left != B.Left)
      return A.Left < B.Left;
    return A.Right < B.Right;
  }
};

/// An immutable runtime value (a canonical interned handle).
class Val {
public:
  enum class Kind : uint8_t { Unit, Int, Bool, Pointer, Node, Pair };

  /// Constructs the unit value.
  Val();

  static Val unit() { return Val(); }
  static Val ofInt(int64_t I);
  static Val ofBool(bool B);
  static Val ofPtr(Ptr P);
  static Val node(bool Marked, Ptr Left, Ptr Right);
  static Val pair(Val First, Val Second);

  Kind kind() const;
  bool isUnit() const { return kind() == Kind::Unit; }
  bool isInt() const { return kind() == Kind::Int; }
  bool isBool() const { return kind() == Kind::Bool; }
  bool isPtr() const { return kind() == Kind::Pointer; }
  bool isNode() const { return kind() == Kind::Node; }
  bool isPair() const { return kind() == Kind::Pair; }

  int64_t getInt() const;
  bool getBool() const;
  Ptr getPtr() const;
  const NodeCell &getNode() const;
  Val first() const;
  Val second() const;

  /// Total order across kinds (kind tag first, then payload).
  int compare(const Val &Other) const;

  /// Rewrites every pointer in this value through \p M (pointers absent
  /// from the map are kept). Used by the symmetry layer's canonical
  /// renaming of fresh heap names (DESIGN.md §11); the result is interned
  /// like any other value.
  Val renamePtrs(const std::map<Ptr, Ptr> &M) const;

  /// Canonicity makes structural equality a pointer comparison.
  friend bool operator==(const Val &A, const Val &B) { return A.N == B.N; }
  friend bool operator!=(const Val &A, const Val &B) { return A.N != B.N; }
  friend bool operator<(const Val &A, const Val &B) {
    return A.compare(B) < 0;
  }

  /// The precomputed structural fingerprint: stable across runs and
  /// processes (never derived from addresses or std::hash).
  uint64_t fingerprint() const;

  /// Mixes this value's fingerprint into \p Seed.
  void hashInto(std::size_t &Seed) const;

  std::string toString() const;

private:
  explicit Val(const detail::ValNode *N) : N(N) {}

  const detail::ValNode *N; ///< never null; owned by the intern arena.
};

namespace detail {

/// The interned payload of a Val. Children of pairs are held as canonical
/// node pointers, so payload equality over children is pointer equality.
struct ValNode {
  Val::Kind K = Val::Kind::Unit;
  int64_t IntVal = 0;
  bool BoolVal = false;
  Ptr PtrVal;
  NodeCell Node;
  const ValNode *FirstN = nullptr;  ///< Pair
  const ValNode *SecondN = nullptr; ///< Pair
  uint64_t Fp = 0;

  bool samePayload(const ValNode &O) const;
};

/// The canonical unit node (also the moral zero of default construction).
const ValNode *valUnitNode();

} // namespace detail

inline Val::Val() : N(detail::valUnitNode()) {}
inline Val::Kind Val::kind() const { return N->K; }

inline int64_t Val::getInt() const {
  assert(isInt() && "not an integer value");
  return N->IntVal;
}
inline bool Val::getBool() const {
  assert(isBool() && "not a boolean value");
  return N->BoolVal;
}
inline Ptr Val::getPtr() const {
  assert(isPtr() && "not a pointer value");
  return N->PtrVal;
}
inline const NodeCell &Val::getNode() const {
  assert(isNode() && "not a node value");
  return N->Node;
}
inline Val Val::first() const {
  assert(isPair() && "not a pair value");
  return Val(N->FirstN);
}
inline Val Val::second() const {
  assert(isPair() && "not a pair value");
  return Val(N->SecondN);
}
inline uint64_t Val::fingerprint() const { return N->Fp; }
inline void Val::hashInto(std::size_t &Seed) const {
  hashCombine(Seed, static_cast<std::size_t>(N->Fp));
}

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::Val> {
  size_t operator()(const fcsl::Val &V) const {
    return static_cast<size_t>(V.fingerprint());
  }
};
} // namespace std

#endif // FCSL_HEAP_VAL_H
