//===- heap/Val.h - Runtime values of the modeled language ------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value universe of the embedded programming fragment and of heap cells:
/// unit, integers, booleans, pointers, graph-node triples (marked bit plus
/// left/right successors, Section 3.2 of the paper), and pairs (results of
/// parallel composition). Values are immutable and totally ordered so they
/// can key the model checker's visited-state sets.
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_HEAP_VAL_H
#define FCSL_HEAP_VAL_H

#include "heap/Ptr.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace fcsl {

/// A graph node cell: the "marked" bit plus left/right successor pointers.
/// This is the triple (b, xl, xr) of the paper's `graph` predicate.
struct NodeCell {
  bool Marked = false;
  Ptr Left;
  Ptr Right;

  friend bool operator==(const NodeCell &A, const NodeCell &B) {
    return A.Marked == B.Marked && A.Left == B.Left && A.Right == B.Right;
  }
  friend bool operator<(const NodeCell &A, const NodeCell &B) {
    if (A.Marked != B.Marked)
      return A.Marked < B.Marked;
    if (A.Left != B.Left)
      return A.Left < B.Left;
    return A.Right < B.Right;
  }
};

/// An immutable runtime value.
class Val {
public:
  enum class Kind : uint8_t { Unit, Int, Bool, Pointer, Node, Pair };

  /// Constructs the unit value.
  Val() : K(Kind::Unit) {}

  static Val unit() { return Val(); }
  static Val ofInt(int64_t I);
  static Val ofBool(bool B);
  static Val ofPtr(Ptr P);
  static Val node(bool Marked, Ptr Left, Ptr Right);
  static Val pair(Val First, Val Second);

  Kind kind() const { return K; }
  bool isUnit() const { return K == Kind::Unit; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isPtr() const { return K == Kind::Pointer; }
  bool isNode() const { return K == Kind::Node; }
  bool isPair() const { return K == Kind::Pair; }

  int64_t getInt() const {
    assert(isInt() && "not an integer value");
    return IntVal;
  }
  bool getBool() const {
    assert(isBool() && "not a boolean value");
    return BoolVal;
  }
  Ptr getPtr() const {
    assert(isPtr() && "not a pointer value");
    return PtrVal;
  }
  const NodeCell &getNode() const {
    assert(isNode() && "not a node value");
    return Node;
  }
  const Val &first() const {
    assert(isPair() && "not a pair value");
    return PairVal->first;
  }
  const Val &second() const {
    assert(isPair() && "not a pair value");
    return PairVal->second;
  }

  /// Total order across kinds (kind tag first, then payload).
  int compare(const Val &Other) const;

  friend bool operator==(const Val &A, const Val &B) {
    return A.compare(B) == 0;
  }
  friend bool operator!=(const Val &A, const Val &B) {
    return A.compare(B) != 0;
  }
  friend bool operator<(const Val &A, const Val &B) {
    return A.compare(B) < 0;
  }

  /// Mixes this value into \p Seed.
  void hashInto(std::size_t &Seed) const;

  std::string toString() const;

private:
  Kind K;
  int64_t IntVal = 0;
  bool BoolVal = false;
  Ptr PtrVal;
  NodeCell Node;
  std::shared_ptr<const std::pair<Val, Val>> PairVal;
};

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::Val> {
  size_t operator()(const fcsl::Val &V) const {
    size_t Seed = 0;
    V.hashInto(Seed);
    return Seed;
  }
};
} // namespace std

#endif // FCSL_HEAP_VAL_H
