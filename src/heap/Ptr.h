//===- heap/Ptr.h - Abstract heap pointers ----------------------*- C++ -*-===//
//
// Part of fcsl-cpp, a C++ reproduction of "Mechanized Verification of
// Fine-grained Concurrent Programs" (Sergey, Nanevski, Banerjee; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract pointers into the modeled heap. FCSL heaps are finite maps from
/// pointers to values; we model pointers as small integer ids with 0 reserved
/// for null, exactly mirroring the paper's `ptr` type (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef FCSL_HEAP_PTR_H
#define FCSL_HEAP_PTR_H

#include "support/Hashing.h"

#include <cstdint>
#include <string>

namespace fcsl {

/// A pointer in the modeled heap; id 0 is null.
class Ptr {
public:
  /// Constructs the null pointer.
  constexpr Ptr() : Id(0) {}

  /// Constructs the pointer with the given nonzero id (0 yields null).
  constexpr explicit Ptr(uint32_t Id) : Id(Id) {}

  /// Returns the null pointer.
  static constexpr Ptr null() { return Ptr(); }

  bool isNull() const { return Id == 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Ptr A, Ptr B) { return A.Id == B.Id; }
  friend bool operator!=(Ptr A, Ptr B) { return A.Id != B.Id; }
  friend bool operator<(Ptr A, Ptr B) { return A.Id < B.Id; }

  /// Renders as "null" or "&N".
  std::string toString() const;

private:
  uint32_t Id;
};

} // namespace fcsl

namespace std {
template <> struct hash<fcsl::Ptr> {
  size_t operator()(fcsl::Ptr P) const { return hash<uint32_t>{}(P.id()); }
};
} // namespace std

#endif // FCSL_HEAP_PTR_H
