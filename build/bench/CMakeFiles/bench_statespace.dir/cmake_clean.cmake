file(REMOVE_RECURSE
  "CMakeFiles/bench_statespace.dir/bench_statespace.cpp.o"
  "CMakeFiles/bench_statespace.dir/bench_statespace.cpp.o.d"
  "bench_statespace"
  "bench_statespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
