file(REMOVE_RECURSE
  "CMakeFiles/flat_combining_demo.dir/flat_combining_demo.cpp.o"
  "CMakeFiles/flat_combining_demo.dir/flat_combining_demo.cpp.o.d"
  "flat_combining_demo"
  "flat_combining_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_combining_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
