# Empty dependencies file for flat_combining_demo.
# This may be replaced when dependencies are built.
