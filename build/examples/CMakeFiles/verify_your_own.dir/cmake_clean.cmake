file(REMOVE_RECURSE
  "CMakeFiles/verify_your_own.dir/verify_your_own.cpp.o"
  "CMakeFiles/verify_your_own.dir/verify_your_own.cpp.o.d"
  "verify_your_own"
  "verify_your_own.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_your_own.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
