# Empty compiler generated dependencies file for verify_your_own.
# This may be replaced when dependencies are built.
