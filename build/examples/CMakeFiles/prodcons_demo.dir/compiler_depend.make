# Empty compiler generated dependencies file for prodcons_demo.
# This may be replaced when dependencies are built.
