file(REMOVE_RECURSE
  "CMakeFiles/prodcons_demo.dir/prodcons_demo.cpp.o"
  "CMakeFiles/prodcons_demo.dir/prodcons_demo.cpp.o.d"
  "prodcons_demo"
  "prodcons_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prodcons_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
