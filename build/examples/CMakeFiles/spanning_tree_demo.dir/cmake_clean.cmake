file(REMOVE_RECURSE
  "CMakeFiles/spanning_tree_demo.dir/spanning_tree_demo.cpp.o"
  "CMakeFiles/spanning_tree_demo.dir/spanning_tree_demo.cpp.o.d"
  "spanning_tree_demo"
  "spanning_tree_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_tree_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
