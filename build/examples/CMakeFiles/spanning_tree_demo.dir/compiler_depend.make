# Empty compiler generated dependencies file for spanning_tree_demo.
# This may be replaced when dependencies are built.
