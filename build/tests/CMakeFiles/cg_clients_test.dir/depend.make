# Empty dependencies file for cg_clients_test.
# This may be replaced when dependencies are built.
