file(REMOVE_RECURSE
  "CMakeFiles/cg_clients_test.dir/cg_clients_test.cpp.o"
  "CMakeFiles/cg_clients_test.dir/cg_clients_test.cpp.o.d"
  "cg_clients_test"
  "cg_clients_test.pdb"
  "cg_clients_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
