file(REMOVE_RECURSE
  "CMakeFiles/stackiface_test.dir/stackiface_test.cpp.o"
  "CMakeFiles/stackiface_test.dir/stackiface_test.cpp.o.d"
  "stackiface_test"
  "stackiface_test.pdb"
  "stackiface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stackiface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
