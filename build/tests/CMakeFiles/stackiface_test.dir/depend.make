# Empty dependencies file for stackiface_test.
# This may be replaced when dependencies are built.
