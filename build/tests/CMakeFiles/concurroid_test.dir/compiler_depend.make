# Empty compiler generated dependencies file for concurroid_test.
# This may be replaced when dependencies are built.
