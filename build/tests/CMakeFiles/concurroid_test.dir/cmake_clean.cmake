file(REMOVE_RECURSE
  "CMakeFiles/concurroid_test.dir/concurroid_test.cpp.o"
  "CMakeFiles/concurroid_test.dir/concurroid_test.cpp.o.d"
  "concurroid_test"
  "concurroid_test.pdb"
  "concurroid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurroid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
