# Empty dependencies file for pairsnapshot_test.
# This may be replaced when dependencies are built.
