file(REMOVE_RECURSE
  "CMakeFiles/pairsnapshot_test.dir/pairsnapshot_test.cpp.o"
  "CMakeFiles/pairsnapshot_test.dir/pairsnapshot_test.cpp.o.d"
  "pairsnapshot_test"
  "pairsnapshot_test.pdb"
  "pairsnapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairsnapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
