file(REMOVE_RECURSE
  "CMakeFiles/threadpool_test.dir/threadpool_test.cpp.o"
  "CMakeFiles/threadpool_test.dir/threadpool_test.cpp.o.d"
  "threadpool_test"
  "threadpool_test.pdb"
  "threadpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
