# Empty dependencies file for derived_clients_test.
# This may be replaced when dependencies are built.
