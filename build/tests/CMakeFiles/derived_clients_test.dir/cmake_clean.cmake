file(REMOVE_RECURSE
  "CMakeFiles/derived_clients_test.dir/derived_clients_test.cpp.o"
  "CMakeFiles/derived_clients_test.dir/derived_clients_test.cpp.o.d"
  "derived_clients_test"
  "derived_clients_test.pdb"
  "derived_clients_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_clients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
