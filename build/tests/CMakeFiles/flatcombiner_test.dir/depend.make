# Empty dependencies file for flatcombiner_test.
# This may be replaced when dependencies are built.
