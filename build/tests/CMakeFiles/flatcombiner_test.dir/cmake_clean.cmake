file(REMOVE_RECURSE
  "CMakeFiles/flatcombiner_test.dir/flatcombiner_test.cpp.o"
  "CMakeFiles/flatcombiner_test.dir/flatcombiner_test.cpp.o.d"
  "flatcombiner_test"
  "flatcombiner_test.pdb"
  "flatcombiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatcombiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
