# Empty dependencies file for lincheck_test.
# This may be replaced when dependencies are built.
