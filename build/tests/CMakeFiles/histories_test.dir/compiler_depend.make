# Empty compiler generated dependencies file for histories_test.
# This may be replaced when dependencies are built.
