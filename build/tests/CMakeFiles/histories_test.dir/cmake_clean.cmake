file(REMOVE_RECURSE
  "CMakeFiles/histories_test.dir/histories_test.cpp.o"
  "CMakeFiles/histories_test.dir/histories_test.cpp.o.d"
  "histories_test"
  "histories_test.pdb"
  "histories_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histories_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
