file(REMOVE_RECURSE
  "CMakeFiles/prog_test.dir/prog_test.cpp.o"
  "CMakeFiles/prog_test.dir/prog_test.cpp.o.d"
  "prog_test"
  "prog_test.pdb"
  "prog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
