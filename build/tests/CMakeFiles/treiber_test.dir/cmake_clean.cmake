file(REMOVE_RECURSE
  "CMakeFiles/treiber_test.dir/treiber_test.cpp.o"
  "CMakeFiles/treiber_test.dir/treiber_test.cpp.o.d"
  "treiber_test"
  "treiber_test.pdb"
  "treiber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treiber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
