file(REMOVE_RECURSE
  "CMakeFiles/spantree_test.dir/spantree_test.cpp.o"
  "CMakeFiles/spantree_test.dir/spantree_test.cpp.o.d"
  "spantree_test"
  "spantree_test.pdb"
  "spantree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spantree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
