# Empty compiler generated dependencies file for spantree_test.
# This may be replaced when dependencies are built.
