file(REMOVE_RECURSE
  "CMakeFiles/ticketlock_test.dir/ticketlock_test.cpp.o"
  "CMakeFiles/ticketlock_test.dir/ticketlock_test.cpp.o.d"
  "ticketlock_test"
  "ticketlock_test.pdb"
  "ticketlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticketlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
