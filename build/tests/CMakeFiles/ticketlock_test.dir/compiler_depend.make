# Empty compiler generated dependencies file for ticketlock_test.
# This may be replaced when dependencies are built.
